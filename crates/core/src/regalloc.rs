//! The register file: tracking which value part occupies which register
//! during the single code-generation pass.
//!
//! Register allocation in TPDE is strictly local and greedy (§3.4.5): when a
//! register is needed and one is free, the lowest-numbered free register is
//! used; otherwise an arbitrary evictable register is chosen round-robin and
//! its value is spilled by the code generator. Locked registers (operands of
//! the current instruction) and fixed registers (innermost-loop values) are
//! never evicted.

use crate::adapter::ValueRef;
use crate::regs::{Reg, RegBank, RegSet};

/// Who currently owns a register.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RegOwner {
    /// A value part.
    Value(ValueRef, u32),
    /// A temporary (scratch) register requested by an instruction compiler.
    Scratch,
}

#[derive(Copy, Clone, Debug, Default)]
struct RegState {
    owner: Option<RegOwner>,
    lock_count: u32,
    fixed: bool,
    allocatable: bool,
}

/// Tracks the state of every register of both banks.
#[derive(Debug)]
pub struct RegFile {
    state: [RegState; 64],
    allocatable: [Vec<Reg>; 2],
    clock: [usize; 2],
}

impl Default for RegFile {
    /// An empty register file with no allocatable registers; configure it
    /// with [`RegFile::configure`] before use.
    fn default() -> RegFile {
        RegFile::new(&[], &[])
    }
}

impl RegFile {
    /// Creates a register file with the given allocatable registers per bank
    /// (in allocation preference order).
    pub fn new(gp: &[Reg], fp: &[Reg]) -> RegFile {
        let mut f = RegFile {
            state: [RegState::default(); 64],
            allocatable: [Vec::new(), Vec::new()],
            clock: [0, 0],
        };
        f.configure(gp, fp);
        f
    }

    /// Reconfigures the register file for a (possibly different) target,
    /// clearing all ownership state but keeping buffer capacity. Used by
    /// compile sessions that reuse one `RegFile` across functions.
    pub fn configure(&mut self, gp: &[Reg], fp: &[Reg]) {
        self.state = [RegState::default(); 64];
        self.allocatable[0].clear();
        self.allocatable[0].extend_from_slice(gp);
        self.allocatable[1].clear();
        self.allocatable[1].extend_from_slice(fp);
        for &r in gp.iter().chain(fp.iter()) {
            self.state[r.compact()].allocatable = true;
        }
        self.clock = [0, 0];
    }

    /// Clears ownership, locks and pinning of every register (start of a new
    /// function), keeping the allocatable sets.
    pub fn reset(&mut self) {
        for s in self.state.iter_mut() {
            s.owner = None;
            s.lock_count = 0;
            s.fixed = false;
        }
        self.clock = [0, 0];
    }

    /// The allocatable registers of a bank, in allocation order.
    pub fn allocatable(&self, bank: RegBank) -> &[Reg] {
        &self.allocatable[bank.index()]
    }

    /// Current owner of a register.
    pub fn owner(&self, r: Reg) -> Option<RegOwner> {
        self.state[r.compact()].owner
    }

    /// Whether the register is currently locked (operand of the instruction
    /// being compiled).
    pub fn is_locked(&self, r: Reg) -> bool {
        self.state[r.compact()].lock_count > 0
    }

    /// Whether the register is pinned to a value for its whole live range.
    pub fn is_fixed(&self, r: Reg) -> bool {
        self.state[r.compact()].fixed
    }

    /// Marks `r` as owned by `owner`. Does not touch lock state.
    pub fn set_owner(&mut self, r: Reg, owner: RegOwner) {
        self.state[r.compact()].owner = Some(owner);
    }

    /// Marks `r` as owned by a value part and pinned (never evicted).
    pub fn set_fixed(&mut self, r: Reg, v: ValueRef, part: u32) {
        let s = &mut self.state[r.compact()];
        s.owner = Some(RegOwner::Value(v, part));
        s.fixed = true;
    }

    /// Clears ownership (and pinning) of a register.
    pub fn clear(&mut self, r: Reg) {
        let s = &mut self.state[r.compact()];
        s.owner = None;
        s.fixed = false;
        s.lock_count = 0;
    }

    /// Increments the lock count of a register.
    pub fn lock(&mut self, r: Reg) {
        self.state[r.compact()].lock_count += 1;
    }

    /// Decrements the lock count of a register.
    pub fn unlock(&mut self, r: Reg) {
        let s = &mut self.state[r.compact()];
        debug_assert!(s.lock_count > 0, "unlock of unlocked register {r}");
        s.lock_count = s.lock_count.saturating_sub(1);
    }

    /// Releases all locks (end of instruction).
    pub fn unlock_all(&mut self) {
        for s in self.state.iter_mut() {
            s.lock_count = 0;
        }
    }

    /// Finds a free allocatable register of `bank`, preferring the lowest
    /// allocation-order index, excluding registers in `exclude` and, if
    /// `within` is non-empty, restricting the choice to `within`.
    pub fn find_free(&self, bank: RegBank, exclude: RegSet, within: Option<RegSet>) -> Option<Reg> {
        self.allocatable[bank.index()].iter().copied().find(|&r| {
            let s = &self.state[r.compact()];
            s.owner.is_none() && !exclude.contains(r) && within.is_none_or(|w| w.contains(r))
        })
    }

    /// Chooses a register of `bank` to evict, round-robin, skipping locked,
    /// fixed and excluded registers. Returns `None` if every candidate is
    /// unavailable.
    pub fn pick_eviction(
        &mut self,
        bank: RegBank,
        exclude: RegSet,
        within: Option<RegSet>,
    ) -> Option<Reg> {
        let regs = &self.allocatable[bank.index()];
        if regs.is_empty() {
            return None;
        }
        let n = regs.len();
        let start = self.clock[bank.index()] % n;
        for i in 0..n {
            let r = regs[(start + i) % n];
            let s = &self.state[r.compact()];
            if s.lock_count == 0
                && !s.fixed
                && !exclude.contains(r)
                && within.is_none_or(|w| w.contains(r))
            {
                self.clock[bank.index()] = (start + i + 1) % n;
                return Some(r);
            }
        }
        None
    }

    /// All registers currently owned by value parts (used when spilling
    /// before branches or calls).
    pub fn value_owned_regs(&self) -> Vec<(Reg, ValueRef, u32)> {
        let mut out = Vec::new();
        self.value_owned_into(&mut out);
        out
    }

    /// Appends all registers currently owned by value parts to `out`
    /// (allocation-free variant of [`RegFile::value_owned_regs`] for callers
    /// with a reusable scratch buffer).
    pub fn value_owned_into(&self, out: &mut Vec<(Reg, ValueRef, u32)>) {
        for bank in RegBank::ALL {
            for &r in &self.allocatable[bank.index()] {
                if let Some(RegOwner::Value(v, p)) = self.state[r.compact()].owner {
                    out.push((r, v, p));
                }
            }
        }
    }

    /// Clears ownership of every non-fixed register (register state reset at
    /// block boundaries with unknown predecessors). Returns the cleared
    /// registers and their owners so the caller can update assignments.
    pub fn reset_non_fixed(&mut self) -> Vec<(Reg, RegOwner)> {
        let mut cleared = Vec::new();
        self.reset_non_fixed_into(&mut cleared);
        cleared
    }

    /// Allocation-free variant of [`RegFile::reset_non_fixed`]: appends the
    /// cleared registers and their owners to `out`.
    pub fn reset_non_fixed_into(&mut self, out: &mut Vec<(Reg, RegOwner)>) {
        for bank in RegBank::ALL {
            for &r in &self.allocatable[bank.index()] {
                let s = &mut self.state[r.compact()];
                if !s.fixed {
                    if let Some(o) = s.owner.take() {
                        out.push((r, o));
                    }
                    s.lock_count = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gp(i: u8) -> Reg {
        Reg::new(RegBank::GP, i)
    }

    fn file() -> RegFile {
        RegFile::new(&[gp(0), gp(1), gp(2)], &[Reg::new(RegBank::FP, 0)])
    }

    #[test]
    fn find_free_prefers_lowest() {
        let mut f = file();
        assert_eq!(f.find_free(RegBank::GP, RegSet::empty(), None), Some(gp(0)));
        f.set_owner(gp(0), RegOwner::Scratch);
        assert_eq!(f.find_free(RegBank::GP, RegSet::empty(), None), Some(gp(1)));
        let mut excl = RegSet::empty();
        excl.insert(gp(1));
        assert_eq!(f.find_free(RegBank::GP, excl, None), Some(gp(2)));
    }

    #[test]
    fn find_free_with_constraint_set() {
        let f = file();
        let mut within = RegSet::empty();
        within.insert(gp(2));
        assert_eq!(
            f.find_free(RegBank::GP, RegSet::empty(), Some(within)),
            Some(gp(2))
        );
    }

    #[test]
    fn eviction_is_round_robin_and_skips_locked_fixed() {
        let mut f = file();
        for i in 0..3 {
            f.set_owner(gp(i), RegOwner::Value(ValueRef(i as u32), 0));
        }
        f.lock(gp(0));
        f.set_fixed(gp(1), ValueRef(1), 0);
        // only gp2 is evictable
        assert_eq!(
            f.pick_eviction(RegBank::GP, RegSet::empty(), None),
            Some(gp(2))
        );
        f.unlock(gp(0));
        // round robin continues after gp2 -> wraps to gp0
        assert_eq!(
            f.pick_eviction(RegBank::GP, RegSet::empty(), None),
            Some(gp(0))
        );
        // all locked -> none
        f.lock(gp(0));
        f.lock(gp(2));
        assert_eq!(f.pick_eviction(RegBank::GP, RegSet::empty(), None), None);
    }

    #[test]
    fn reset_non_fixed_keeps_fixed() {
        let mut f = file();
        f.set_owner(gp(0), RegOwner::Value(ValueRef(0), 0));
        f.set_fixed(gp(1), ValueRef(1), 0);
        let cleared = f.reset_non_fixed();
        assert_eq!(cleared.len(), 1);
        assert_eq!(f.owner(gp(0)), None);
        assert_eq!(f.owner(gp(1)), Some(RegOwner::Value(ValueRef(1), 0)));
        assert!(f.is_fixed(gp(1)));
    }

    #[test]
    fn value_owned_regs_lists_only_values() {
        let mut f = file();
        f.set_owner(gp(0), RegOwner::Scratch);
        f.set_owner(gp(2), RegOwner::Value(ValueRef(7), 1));
        let owned = f.value_owned_regs();
        assert_eq!(owned, vec![(gp(2), ValueRef(7), 1)]);
    }

    #[test]
    fn lock_unlock_balance() {
        let mut f = file();
        f.lock(gp(0));
        f.lock(gp(0));
        assert!(f.is_locked(gp(0)));
        f.unlock(gp(0));
        assert!(f.is_locked(gp(0)));
        f.unlock(gp(0));
        assert!(!f.is_locked(gp(0)));
        f.lock(gp(1));
        f.unlock_all();
        assert!(!f.is_locked(gp(1)));
    }
}
