//! The register file: tracking which value part occupies which register
//! during the single code-generation pass.
//!
//! Register allocation in TPDE is strictly local and greedy (§3.4.5): when a
//! register is needed and one is free, the lowest-numbered free register is
//! used; otherwise an arbitrary evictable register is chosen round-robin and
//! its value is spilled by the code generator. Locked registers (operands of
//! the current instruction) and fixed registers (innermost-loop values) are
//! never evicted.
//!
//! Free/locked/fixed state is mirrored in one `u64` bitmask per bank,
//! indexed by *allocation-order position*, so the common allocation queries
//! (`find_free`, `pick_eviction` without constraint sets) are a couple of
//! bit operations plus a trailing-zeros count instead of a linear scan. The
//! semantics are unchanged: `find_free` still prefers the earliest register
//! in allocation-preference order, and eviction still rotates round-robin.

use crate::adapter::ValueRef;
use crate::regs::{Reg, RegBank, RegSet};

/// Who currently owns a register.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RegOwner {
    /// A value part.
    Value(ValueRef, u32),
    /// A temporary (scratch) register requested by an instruction compiler.
    Scratch,
}

#[derive(Copy, Clone, Debug, Default)]
struct RegState {
    owner: Option<RegOwner>,
    lock_count: u32,
    fixed: bool,
    allocatable: bool,
}

/// Sentinel for "register is not allocatable" in the position table.
const NO_POS: u8 = u8::MAX;

/// Tracks the state of every register of both banks.
#[derive(Debug)]
pub struct RegFile {
    state: [RegState; 64],
    allocatable: [Vec<Reg>; 2],
    clock: [usize; 2],
    /// Compact register number → allocation-order position (`NO_POS` if the
    /// register is not allocatable).
    pos_of: [u8; 64],
    /// Bit per allocation-order position: register has no owner.
    free: [u64; 2],
    /// Bit per allocation-order position: `lock_count > 0`.
    locked: [u64; 2],
    /// Bit per allocation-order position: pinned to a value (never evicted).
    pinned: [u64; 2],
    /// Bit per allocation-order position: position exists.
    all: [u64; 2],
}

impl Default for RegFile {
    /// An empty register file with no allocatable registers; configure it
    /// with [`RegFile::configure`] before use.
    fn default() -> RegFile {
        RegFile::new(&[], &[])
    }
}

impl RegFile {
    /// Creates a register file with the given allocatable registers per bank
    /// (in allocation preference order).
    pub fn new(gp: &[Reg], fp: &[Reg]) -> RegFile {
        let mut f = RegFile {
            state: [RegState::default(); 64],
            allocatable: [Vec::new(), Vec::new()],
            clock: [0, 0],
            pos_of: [NO_POS; 64],
            free: [0, 0],
            locked: [0, 0],
            pinned: [0, 0],
            all: [0, 0],
        };
        f.configure(gp, fp);
        f
    }

    /// Reconfigures the register file for a (possibly different) target,
    /// clearing all ownership state but keeping buffer capacity. Used by
    /// compile sessions that reuse one `RegFile` across functions.
    pub fn configure(&mut self, gp: &[Reg], fp: &[Reg]) {
        self.state = [RegState::default(); 64];
        self.pos_of = [NO_POS; 64];
        self.allocatable[0].clear();
        self.allocatable[0].extend_from_slice(gp);
        self.allocatable[1].clear();
        self.allocatable[1].extend_from_slice(fp);
        for bank in 0..2 {
            assert!(
                self.allocatable[bank].len() <= 64,
                "more than 64 allocatable registers in one bank"
            );
            for (i, &r) in self.allocatable[bank].iter().enumerate() {
                self.state[r.compact()].allocatable = true;
                self.pos_of[r.compact()] = i as u8;
            }
            let n = self.allocatable[bank].len();
            self.all[bank] = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
            self.free[bank] = self.all[bank];
        }
        self.locked = [0, 0];
        self.pinned = [0, 0];
        self.clock = [0, 0];
    }

    /// Bank index and position mask bit of a register, if it is allocatable.
    #[inline]
    fn pos_bit(&self, r: Reg) -> Option<(usize, u64)> {
        let pos = self.pos_of[r.compact()];
        if pos == NO_POS {
            None
        } else {
            Some((r.bank().index(), 1u64 << pos))
        }
    }

    /// Clears ownership, locks and pinning of every register (start of a new
    /// function), keeping the allocatable sets.
    pub fn reset(&mut self) {
        for s in self.state.iter_mut() {
            s.owner = None;
            s.lock_count = 0;
            s.fixed = false;
        }
        self.free = self.all;
        self.locked = [0, 0];
        self.pinned = [0, 0];
        self.clock = [0, 0];
    }

    /// The allocatable registers of a bank, in allocation order.
    pub fn allocatable(&self, bank: RegBank) -> &[Reg] {
        &self.allocatable[bank.index()]
    }

    /// Current owner of a register.
    pub fn owner(&self, r: Reg) -> Option<RegOwner> {
        self.state[r.compact()].owner
    }

    /// Whether the register is currently locked (operand of the instruction
    /// being compiled).
    pub fn is_locked(&self, r: Reg) -> bool {
        self.state[r.compact()].lock_count > 0
    }

    /// Whether the register is pinned to a value for its whole live range.
    pub fn is_fixed(&self, r: Reg) -> bool {
        self.state[r.compact()].fixed
    }

    /// Marks `r` as owned by `owner`. Does not touch lock state.
    pub fn set_owner(&mut self, r: Reg, owner: RegOwner) {
        self.state[r.compact()].owner = Some(owner);
        if let Some((b, bit)) = self.pos_bit(r) {
            self.free[b] &= !bit;
        }
    }

    /// Marks `r` as owned by a value part and pinned (never evicted).
    pub fn set_fixed(&mut self, r: Reg, v: ValueRef, part: u32) {
        let s = &mut self.state[r.compact()];
        s.owner = Some(RegOwner::Value(v, part));
        s.fixed = true;
        if let Some((b, bit)) = self.pos_bit(r) {
            self.free[b] &= !bit;
            self.pinned[b] |= bit;
        }
    }

    /// Clears ownership (and pinning) of a register.
    pub fn clear(&mut self, r: Reg) {
        let s = &mut self.state[r.compact()];
        s.owner = None;
        s.fixed = false;
        s.lock_count = 0;
        if let Some((b, bit)) = self.pos_bit(r) {
            self.free[b] |= bit;
            self.pinned[b] &= !bit;
            self.locked[b] &= !bit;
        }
    }

    /// Increments the lock count of a register.
    pub fn lock(&mut self, r: Reg) {
        self.state[r.compact()].lock_count += 1;
        if let Some((b, bit)) = self.pos_bit(r) {
            self.locked[b] |= bit;
        }
    }

    /// Decrements the lock count of a register.
    pub fn unlock(&mut self, r: Reg) {
        let s = &mut self.state[r.compact()];
        debug_assert!(s.lock_count > 0, "unlock of unlocked register {r}");
        s.lock_count = s.lock_count.saturating_sub(1);
        if s.lock_count == 0 {
            if let Some((b, bit)) = self.pos_bit(r) {
                self.locked[b] &= !bit;
            }
        }
    }

    /// Releases all locks (end of instruction).
    pub fn unlock_all(&mut self) {
        for s in self.state.iter_mut() {
            s.lock_count = 0;
        }
        self.locked = [0, 0];
    }

    /// Restricts a position mask by the `exclude`/`within` register sets
    /// (slow path; both are usually trivial on the hot path).
    fn restrict_mask(
        &self,
        bank: RegBank,
        mut mask: u64,
        exclude: RegSet,
        within: Option<RegSet>,
    ) -> u64 {
        if exclude.is_empty() && within.is_none() {
            return mask;
        }
        for (i, &r) in self.allocatable[bank.index()].iter().enumerate() {
            if exclude.contains(r) || within.is_some_and(|w| !w.contains(r)) {
                mask &= !(1u64 << i);
            }
        }
        mask
    }

    /// Finds a free allocatable register of `bank`, preferring the lowest
    /// allocation-order index, excluding registers in `exclude` and, if
    /// `within` is non-empty, restricting the choice to `within`. With no
    /// constraint sets this is a single trailing-zeros count on the bank's
    /// free mask.
    pub fn find_free(&self, bank: RegBank, exclude: RegSet, within: Option<RegSet>) -> Option<Reg> {
        let m = self.restrict_mask(bank, self.free[bank.index()], exclude, within);
        if m == 0 {
            None
        } else {
            Some(self.allocatable[bank.index()][m.trailing_zeros() as usize])
        }
    }

    /// Chooses a register of `bank` to evict, round-robin, skipping locked,
    /// fixed and excluded registers. Returns `None` if every candidate is
    /// unavailable.
    pub fn pick_eviction(
        &mut self,
        bank: RegBank,
        exclude: RegSet,
        within: Option<RegSet>,
    ) -> Option<Reg> {
        let bi = bank.index();
        let n = self.allocatable[bi].len();
        if n == 0 {
            return None;
        }
        let base = self.all[bi] & !self.locked[bi] & !self.pinned[bi];
        let m = self.restrict_mask(bank, base, exclude, within);
        if m == 0 {
            return None;
        }
        // First candidate at or after the clock hand, wrapping around.
        let start = self.clock[bi] % n;
        let rotated = m & (u64::MAX << start);
        let pos = if rotated != 0 { rotated } else { m }.trailing_zeros() as usize;
        self.clock[bi] = (pos + 1) % n;
        Some(self.allocatable[bi][pos])
    }

    /// Appends all registers currently owned by value parts to `out` (used
    /// when spilling before branches or calls; callers keep a reusable
    /// scratch buffer so the query is allocation-free).
    pub fn value_owned_into(&self, out: &mut Vec<(Reg, ValueRef, u32)>) {
        for bank in RegBank::ALL {
            let bi = bank.index();
            // owned = allocatable positions that are not free
            let mut owned = self.all[bi] & !self.free[bi];
            while owned != 0 {
                let pos = owned.trailing_zeros() as usize;
                owned &= owned - 1;
                let r = self.allocatable[bi][pos];
                if let Some(RegOwner::Value(v, p)) = self.state[r.compact()].owner {
                    out.push((r, v, p));
                }
            }
        }
    }

    /// Clears ownership of every non-fixed register (register state reset at
    /// block boundaries with unknown predecessors), appending the cleared
    /// registers and their owners to `out` so the caller can update
    /// assignments.
    pub fn reset_non_fixed_into(&mut self, out: &mut Vec<(Reg, RegOwner)>) {
        for bank in RegBank::ALL {
            let bi = bank.index();
            let mut owned = self.all[bi] & !self.free[bi] & !self.pinned[bi];
            while owned != 0 {
                let pos = owned.trailing_zeros() as usize;
                owned &= owned - 1;
                let r = self.allocatable[bi][pos];
                let s = &mut self.state[r.compact()];
                if let Some(o) = s.owner.take() {
                    out.push((r, o));
                }
                s.lock_count = 0;
            }
            // Also release locks on non-fixed registers that had no owner.
            let mut stale = self.all[bi] & self.locked[bi] & !self.pinned[bi];
            while stale != 0 {
                let pos = stale.trailing_zeros() as usize;
                stale &= stale - 1;
                self.state[self.allocatable[bi][pos].compact()].lock_count = 0;
            }
            // Every non-fixed register is now unowned; fixed registers keep
            // their owners (set_fixed implies an owner, so pinned ⟹ !free).
            self.free[bi] = self.all[bi] & !self.pinned[bi];
            self.locked[bi] &= self.pinned[bi];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gp(i: u8) -> Reg {
        Reg::new(RegBank::GP, i)
    }

    fn file() -> RegFile {
        RegFile::new(&[gp(0), gp(1), gp(2)], &[Reg::new(RegBank::FP, 0)])
    }

    fn value_owned(f: &RegFile) -> Vec<(Reg, ValueRef, u32)> {
        let mut out = Vec::new();
        f.value_owned_into(&mut out);
        out
    }

    #[test]
    fn find_free_prefers_lowest() {
        let mut f = file();
        assert_eq!(f.find_free(RegBank::GP, RegSet::empty(), None), Some(gp(0)));
        f.set_owner(gp(0), RegOwner::Scratch);
        assert_eq!(f.find_free(RegBank::GP, RegSet::empty(), None), Some(gp(1)));
        let mut excl = RegSet::empty();
        excl.insert(gp(1));
        assert_eq!(f.find_free(RegBank::GP, excl, None), Some(gp(2)));
    }

    #[test]
    fn find_free_prefers_allocation_order_not_register_number() {
        // allocation preference order deliberately not sorted by number
        let f = RegFile::new(&[gp(5), gp(1), gp(3)], &[]);
        assert_eq!(f.find_free(RegBank::GP, RegSet::empty(), None), Some(gp(5)));
        let mut excl = RegSet::empty();
        excl.insert(gp(5));
        assert_eq!(f.find_free(RegBank::GP, excl, None), Some(gp(1)));
    }

    #[test]
    fn find_free_with_constraint_set() {
        let f = file();
        let mut within = RegSet::empty();
        within.insert(gp(2));
        assert_eq!(
            f.find_free(RegBank::GP, RegSet::empty(), Some(within)),
            Some(gp(2))
        );
    }

    #[test]
    fn eviction_is_round_robin_and_skips_locked_fixed() {
        let mut f = file();
        for i in 0..3 {
            f.set_owner(gp(i), RegOwner::Value(ValueRef(i as u32), 0));
        }
        f.lock(gp(0));
        f.set_fixed(gp(1), ValueRef(1), 0);
        // only gp2 is evictable
        assert_eq!(
            f.pick_eviction(RegBank::GP, RegSet::empty(), None),
            Some(gp(2))
        );
        f.unlock(gp(0));
        // round robin continues after gp2 -> wraps to gp0
        assert_eq!(
            f.pick_eviction(RegBank::GP, RegSet::empty(), None),
            Some(gp(0))
        );
        // all locked -> none
        f.lock(gp(0));
        f.lock(gp(2));
        assert_eq!(f.pick_eviction(RegBank::GP, RegSet::empty(), None), None);
    }

    #[test]
    fn reset_non_fixed_keeps_fixed() {
        let mut f = file();
        f.set_owner(gp(0), RegOwner::Value(ValueRef(0), 0));
        f.set_fixed(gp(1), ValueRef(1), 0);
        let mut cleared = Vec::new();
        f.reset_non_fixed_into(&mut cleared);
        assert_eq!(cleared.len(), 1);
        assert_eq!(f.owner(gp(0)), None);
        assert_eq!(f.owner(gp(1)), Some(RegOwner::Value(ValueRef(1), 0)));
        assert!(f.is_fixed(gp(1)));
        // the cleared register is free again, the fixed one is not
        assert_eq!(f.find_free(RegBank::GP, RegSet::empty(), None), Some(gp(0)));
        let mut within = RegSet::empty();
        within.insert(gp(1));
        assert_eq!(
            f.find_free(RegBank::GP, RegSet::empty(), Some(within)),
            None
        );
    }

    #[test]
    fn value_owned_lists_only_values() {
        let mut f = file();
        f.set_owner(gp(0), RegOwner::Scratch);
        f.set_owner(gp(2), RegOwner::Value(ValueRef(7), 1));
        assert_eq!(value_owned(&f), vec![(gp(2), ValueRef(7), 1)]);
    }

    #[test]
    fn lock_unlock_balance() {
        let mut f = file();
        f.lock(gp(0));
        f.lock(gp(0));
        assert!(f.is_locked(gp(0)));
        f.unlock(gp(0));
        assert!(f.is_locked(gp(0)));
        f.unlock(gp(0));
        assert!(!f.is_locked(gp(0)));
        f.lock(gp(1));
        f.unlock_all();
        assert!(!f.is_locked(gp(1)));
    }

    #[test]
    fn masks_track_state_through_clear_and_reset() {
        let mut f = file();
        for i in 0..3 {
            f.set_owner(gp(i), RegOwner::Value(ValueRef(i as u32), 0));
        }
        assert_eq!(f.find_free(RegBank::GP, RegSet::empty(), None), None);
        f.clear(gp(1));
        assert_eq!(f.find_free(RegBank::GP, RegSet::empty(), None), Some(gp(1)));
        f.reset();
        assert_eq!(f.find_free(RegBank::GP, RegSet::empty(), None), Some(gp(0)));
        assert_eq!(value_owned(&f), vec![]);
    }

    #[test]
    fn full_bank_of_64_registers_is_supported() {
        let regs: Vec<Reg> = (0..32).map(gp).collect();
        let mut f = RegFile::new(&regs, &[]);
        for &r in &regs {
            f.set_owner(r, RegOwner::Scratch);
        }
        assert_eq!(f.find_free(RegBank::GP, RegSet::empty(), None), None);
        f.clear(gp(31));
        assert_eq!(
            f.find_free(RegBank::GP, RegSet::empty(), None),
            Some(gp(31))
        );
    }
}
