//! Calling-convention descriptions and argument assignment.
//!
//! The framework implements the two C calling conventions needed by the
//! back-ends: System V AMD64 and AAPCS64 (AArch64). A [`CallConv`] lists the
//! argument/return registers per bank and the caller/callee-saved sets;
//! [`CallConv::assign_args`] maps a sequence of value parts to argument
//! locations the same way for incoming parameters (prologue) and outgoing
//! call arguments.

use crate::regs::{Reg, RegBank, RegSet};

/// Location assigned to one value part of an argument or return value.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ArgLoc {
    /// Passed in a register.
    Reg(Reg),
    /// Passed on the stack at the given byte offset from the start of the
    /// outgoing argument area (i.e. from `sp` at the call site).
    Stack(u32),
}

/// A calling convention: argument/return registers and preserved registers.
#[derive(Clone, Debug)]
pub struct CallConv {
    /// General-purpose argument registers, in order.
    pub gp_args: Vec<Reg>,
    /// Floating-point argument registers, in order.
    pub fp_args: Vec<Reg>,
    /// General-purpose return registers, in order.
    pub gp_rets: Vec<Reg>,
    /// Floating-point return registers, in order.
    pub fp_rets: Vec<Reg>,
    /// Registers preserved across calls.
    pub callee_saved: RegSet,
    /// Registers clobbered by calls (complement of `callee_saved` within the
    /// allocatable set).
    pub caller_saved: RegSet,
    /// Required stack alignment at call sites, in bytes.
    pub stack_align: u32,
    /// Slot size for stack arguments, in bytes.
    pub stack_slot_size: u32,
}

/// Result of assigning arguments: one location per part, plus the total
/// number of stack bytes used.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ArgAssignment {
    /// One location per value part, in the order the parts were passed in.
    pub locs: Vec<ArgLoc>,
    /// Size of the outgoing stack argument area in bytes (unaligned).
    pub stack_bytes: u32,
}

impl CallConv {
    /// Assigns locations to a flat list of value parts `(bank, size)`.
    ///
    /// Each part is assigned independently: multi-part values (e.g. 128-bit
    /// integers) therefore occupy consecutive registers when available, which
    /// matches both SysV and AAPCS64 for the types the back-ends support.
    pub fn assign_args(&self, parts: &[(RegBank, u32)]) -> ArgAssignment {
        let mut locs = Vec::with_capacity(parts.len());
        let stack_bytes = self.assign_args_into(parts, &mut locs);
        ArgAssignment { locs, stack_bytes }
    }

    /// Allocation-free variant of [`CallConv::assign_args`]: appends one
    /// [`ArgLoc`] per part to `locs` and returns the unaligned stack-byte
    /// count. Callers on the hot path pass a reusable scratch buffer.
    pub fn assign_args_into(&self, parts: &[(RegBank, u32)], locs: &mut Vec<ArgLoc>) -> u32 {
        let mut next_gp = 0usize;
        let mut next_fp = 0usize;
        let mut stack_off = 0u32;
        for &(bank, size) in parts {
            let (regs, next) = match bank {
                RegBank::GP => (&self.gp_args, &mut next_gp),
                RegBank::FP => (&self.fp_args, &mut next_fp),
            };
            if *next < regs.len() {
                locs.push(ArgLoc::Reg(regs[*next]));
                *next += 1;
            } else {
                let slot = self.stack_slot_size.max(size.next_power_of_two());
                stack_off = (stack_off + slot - 1) & !(slot - 1);
                locs.push(ArgLoc::Stack(stack_off));
                stack_off += slot;
            }
        }
        stack_off
    }

    /// Assigns locations to return-value parts.
    ///
    /// Returns `None` if the value cannot be returned in registers (the
    /// back-ends handle such cases with an sret pointer instead).
    pub fn assign_rets(&self, parts: &[(RegBank, u32)]) -> Option<Vec<Reg>> {
        let mut out = Vec::with_capacity(parts.len());
        if self.assign_rets_into(parts, &mut out) {
            Some(out)
        } else {
            None
        }
    }

    /// Allocation-free variant of [`CallConv::assign_rets`]: appends one
    /// register per part to `out`. Returns `false` (leaving `out` in an
    /// unspecified state) if the parts do not fit in return registers.
    pub fn assign_rets_into(&self, parts: &[(RegBank, u32)], out: &mut Vec<Reg>) -> bool {
        let mut next_gp = 0usize;
        let mut next_fp = 0usize;
        for &(bank, _size) in parts {
            let (regs, next) = match bank {
                RegBank::GP => (&self.gp_rets, &mut next_gp),
                RegBank::FP => (&self.fp_rets, &mut next_fp),
            };
            if *next >= regs.len() {
                return false;
            }
            out.push(regs[*next]);
            *next += 1;
        }
        true
    }
}

/// x86-64 GP register numbers (architectural encoding order).
pub mod x64 {
    /// rax
    pub const RAX: u8 = 0;
    /// rcx
    pub const RCX: u8 = 1;
    /// rdx
    pub const RDX: u8 = 2;
    /// rbx
    pub const RBX: u8 = 3;
    /// rsp
    pub const RSP: u8 = 4;
    /// rbp
    pub const RBP: u8 = 5;
    /// rsi
    pub const RSI: u8 = 6;
    /// rdi
    pub const RDI: u8 = 7;
    /// r8
    pub const R8: u8 = 8;
    /// r9
    pub const R9: u8 = 9;
    /// r10
    pub const R10: u8 = 10;
    /// r11
    pub const R11: u8 = 11;
    /// r12
    pub const R12: u8 = 12;
    /// r13
    pub const R13: u8 = 13;
    /// r14
    pub const R14: u8 = 14;
    /// r15
    pub const R15: u8 = 15;
}

/// AArch64 register numbers.
pub mod a64 {
    /// Frame pointer x29.
    pub const FP: u8 = 29;
    /// Link register x30.
    pub const LR: u8 = 30;
    /// Stack pointer / zero register number (31).
    pub const SP: u8 = 31;
    /// Scratch register x16 (IP0).
    pub const IP0: u8 = 16;
    /// Scratch register x17 (IP1).
    pub const IP1: u8 = 17;
}

fn gp(i: u8) -> Reg {
    Reg::new(RegBank::GP, i)
}
fn fp(i: u8) -> Reg {
    Reg::new(RegBank::FP, i)
}

/// The System V AMD64 calling convention.
pub fn sysv_x64() -> CallConv {
    use x64::*;
    let gp_args = vec![gp(RDI), gp(RSI), gp(RDX), gp(RCX), gp(R8), gp(R9)];
    let fp_args: Vec<Reg> = (0..8).map(fp).collect();
    let gp_rets = vec![gp(RAX), gp(RDX)];
    let fp_rets = vec![fp(0), fp(1)];
    let callee_saved: RegSet = [RBX, RBP, R12, R13, R14, R15]
        .iter()
        .map(|&i| gp(i))
        .collect();
    let mut caller_saved = RegSet::empty();
    for i in 0..16u8 {
        let r = gp(i);
        if !callee_saved.contains(r) && i != RSP {
            caller_saved.insert(r);
        }
    }
    for i in 0..16u8 {
        caller_saved.insert(fp(i));
    }
    CallConv {
        gp_args,
        fp_args,
        gp_rets,
        fp_rets,
        callee_saved,
        caller_saved,
        stack_align: 16,
        stack_slot_size: 8,
    }
}

/// The AAPCS64 (AArch64 procedure call standard) calling convention.
pub fn aapcs_a64() -> CallConv {
    use a64::*;
    let gp_args: Vec<Reg> = (0..8).map(gp).collect();
    let fp_args: Vec<Reg> = (0..8).map(fp).collect();
    let gp_rets: Vec<Reg> = (0..2).map(gp).collect();
    let fp_rets: Vec<Reg> = (0..2).map(fp).collect();
    let mut callee_saved = RegSet::empty();
    for i in 19..=28u8 {
        callee_saved.insert(gp(i));
    }
    callee_saved.insert(gp(FP));
    for i in 8..=15u8 {
        callee_saved.insert(fp(i));
    }
    let mut caller_saved = RegSet::empty();
    for i in 0..31u8 {
        let r = gp(i);
        if !callee_saved.contains(r) && i != SP {
            caller_saved.insert(r);
        }
    }
    for i in 0..32u8 {
        let r = fp(i);
        if !callee_saved.contains(r) {
            caller_saved.insert(r);
        }
    }
    CallConv {
        gp_args,
        fp_args,
        gp_rets,
        fp_rets,
        callee_saved,
        caller_saved,
        stack_align: 16,
        stack_slot_size: 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sysv_integer_args_in_order() {
        let cc = sysv_x64();
        let parts = vec![(RegBank::GP, 8); 3];
        let a = cc.assign_args(&parts);
        assert_eq!(a.locs[0], ArgLoc::Reg(gp(x64::RDI)));
        assert_eq!(a.locs[1], ArgLoc::Reg(gp(x64::RSI)));
        assert_eq!(a.locs[2], ArgLoc::Reg(gp(x64::RDX)));
        assert_eq!(a.stack_bytes, 0);
    }

    #[test]
    fn sysv_overflow_goes_to_stack() {
        let cc = sysv_x64();
        let parts = vec![(RegBank::GP, 8); 8];
        let a = cc.assign_args(&parts);
        assert_eq!(a.locs[6], ArgLoc::Stack(0));
        assert_eq!(a.locs[7], ArgLoc::Stack(8));
        assert_eq!(a.stack_bytes, 16);
    }

    #[test]
    fn fp_and_gp_args_use_separate_sequences() {
        let cc = sysv_x64();
        let parts = vec![
            (RegBank::GP, 8),
            (RegBank::FP, 8),
            (RegBank::GP, 8),
            (RegBank::FP, 8),
        ];
        let a = cc.assign_args(&parts);
        assert_eq!(a.locs[0], ArgLoc::Reg(gp(x64::RDI)));
        assert_eq!(a.locs[1], ArgLoc::Reg(fp(0)));
        assert_eq!(a.locs[2], ArgLoc::Reg(gp(x64::RSI)));
        assert_eq!(a.locs[3], ArgLoc::Reg(fp(1)));
    }

    #[test]
    fn i128_uses_two_consecutive_gp_regs() {
        let cc = sysv_x64();
        let parts = vec![(RegBank::GP, 8), (RegBank::GP, 8)];
        let a = cc.assign_args(&parts);
        assert_eq!(a.locs[0], ArgLoc::Reg(gp(x64::RDI)));
        assert_eq!(a.locs[1], ArgLoc::Reg(gp(x64::RSI)));
    }

    #[test]
    fn returns_fit_or_not() {
        let cc = sysv_x64();
        assert!(cc
            .assign_rets(&[(RegBank::GP, 8), (RegBank::GP, 8)])
            .is_some());
        assert!(cc
            .assign_rets(&[(RegBank::GP, 8), (RegBank::GP, 8), (RegBank::GP, 8)])
            .is_none());
        let r = cc.assign_rets(&[(RegBank::FP, 8)]).unwrap();
        assert_eq!(r[0], fp(0));
    }

    #[test]
    fn aapcs_has_eight_gp_args_and_x19_callee_saved() {
        let cc = aapcs_a64();
        let parts = vec![(RegBank::GP, 8); 9];
        let a = cc.assign_args(&parts);
        assert_eq!(a.locs[7], ArgLoc::Reg(gp(7)));
        assert_eq!(a.locs[8], ArgLoc::Stack(0));
        assert!(cc.callee_saved.contains(gp(19)));
        assert!(!cc.callee_saved.contains(gp(0)));
        assert!(cc.caller_saved.contains(gp(0)));
    }

    #[test]
    fn callee_and_caller_saved_disjoint() {
        for cc in [sysv_x64(), aapcs_a64()] {
            assert!(cc.callee_saved.intersect(cc.caller_saved).is_empty());
        }
    }
}
