//! # tpde-core
//!
//! Core of the TPDE compiler back-end framework: a fast, adaptable,
//! single-pass code generator for SSA-form IRs.
//!
//! The framework is IR-agnostic. To compile an IR, a user provides:
//!
//! * an [`adapter::IrAdapter`] implementation, which exposes the IR data
//!   structures (functions, blocks, instructions, values) in a canonical way;
//! * *instruction compilers*, callbacks which generate machine code for a
//!   single IR instruction by calling back into the framework (operand
//!   handles, register allocation, scratch registers, instruction encoding).
//!
//! Compilation of a function happens in exactly two passes:
//!
//! 1. the [`analysis`] pass computes a loop forest, the block layout and
//!    coarse block-range liveness for every value;
//! 2. the [`codegen`] pass walks the blocks in layout order once and performs
//!    instruction selection, register allocation, spilling, phi handling and
//!    machine-code emission in a single sweep.
//!
//! Machine code is emitted into a [`codebuf::CodeBuffer`], which can then be
//! turned into an ELF relocatable object ([`obj`]) or mapped as an in-memory
//! JIT image ([`jit`]). On multi-core hosts a module's functions can be
//! compiled concurrently by the function-sharded [`parallel`] driver, whose
//! deterministic shard merge produces output byte-identical to the
//! sequential driver. Drivers serving a *stream* of modules (JIT-style
//! workloads) keep a persistent [`service::CompileService`], which pipelines
//! requests across a pool of long-lived workers and answers repeated
//! modules from a content-addressed cache, optionally backed by a
//! persistent on-disk artifact store ([`diskcache`]) that survives process
//! restarts and is shared between processes on one host.
//!
//! ```
//! // The `tpde-llvm` crate contains an LLVM-IR-like SSA IR with an adapter;
//! // see `crates/llvm/examples` for end-to-end usage.
//! use tpde_core::regs::{Reg, RegBank};
//! let r = Reg::new(RegBank::GP, 3);
//! assert_eq!(r.bank(), RegBank::GP);
//! assert_eq!(r.index(), 3);
//! ```

pub mod adapter;
pub mod analysis;
pub mod assignments;
pub mod bitset;
pub mod callconv;
pub mod codebuf;
pub mod codegen;
pub mod diskcache;
pub mod error;
pub mod faultpoint;
pub mod jit;
pub mod obj;
pub mod parallel;
pub mod regalloc;
pub mod regs;
pub mod rng;
pub mod service;
pub mod target;
pub mod timing;
pub mod verify;

pub use adapter::{BlockRef, FuncRef, IrAdapter, Linkage, ValueRef};
pub use analysis::{Analysis, Analyzer, LoopInfo};
pub use codegen::{CodeGen, CompileOptions, CompileSession, CompiledModule};
pub use diskcache::{DiskCache, DiskCacheConfig};
pub use error::{Error, Result};
pub use parallel::{ParallelDriver, WorkerPool};
pub use regs::{Reg, RegBank};
pub use rng::{SplitMix64, Xoshiro256};
pub use service::ring;
pub use service::{
    ClientId, CompileService, Priority, Request, ServiceBackend, ServiceConfig, ServiceResponse,
    SubmitOptions, Ticket, TicketRef, WakeupMode,
};
pub use timing::{ClientStats, RequestTiming, ServiceStats};
pub use verify::{Verifier, VerifyError};
