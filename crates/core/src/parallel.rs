//! Function-sharded parallel compilation.
//!
//! TPDE keeps all per-function compilation state self-contained: the
//! analysis scratch, assignment tables, register file and label/fixup pool
//! live in a [`CompileSession`], and a function's machine code never refers
//! to another function except through symbols and relocations. This module
//! exploits that to scale module compilation across cores:
//!
//! 1. A shared atomic index queue hands out function indices to worker
//!    threads. Each worker owns a full [`CompileSession`] plus a thread-local
//!    shard [`CodeBuffer`] and compiles every function it pulls with
//!    [`CodeGen::compile_func_into`], bracketing each function's output with
//!    [`CodeBuffer::mark`]s.
//! 2. After all workers drain the queue, the shards are merged: every
//!    function extent is appended to the output buffer **in function-index
//!    order** via [`CodeBuffer::merge_from`], which rebases relocations and
//!    remaps shard-local [`SymbolId`]s through a per-shard [`SymbolRemap`].
//!
//! # Determinism contract
//!
//! The merged output — text bytes, symbol table and relocations, and
//! therefore the ELF object and JIT image derived from it — is
//! **byte-identical to single-threaded compilation**, for any worker count
//! and any scheduling, provided cross-function references go through
//! relocations (never absolute text offsets). Shard buffers keep a
//! declaration log ([`CodeBuffer::enable_declare_log`]) so the merge
//! replays each function's symbol declarations in their exact order, and
//! per-extent alignment-event counts let the merge *reject* function
//! output whose data/bss padding depends on the shard base instead of
//! merging it wrongly. All in-tree back-ends compile under this contract;
//! it is pinned by the determinism suite in `crates/llvm/tests/parallel.rs`.

use crate::adapter::{FuncRef, IrAdapter};
use crate::codebuf::{CodeBuffer, SectionKind, ShardExtent, SymbolId, SymbolRemap};
use crate::codegen::{
    declare_func_symbols, CodeGen, CompileSession, CompileStats, CompiledModule, InstCompiler,
};
use crate::error::{Error, Result};
use crate::target::Target;
use crate::timing::PassTimings;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// One worker's shard: its buffer and the extents of the functions it
/// compiled. Shared with the persistent [`crate::service`] pipeline, whose
/// shard participants produce the same records from long-lived threads.
pub(crate) struct Shard {
    pub(crate) buf: CodeBuffer,
    pub(crate) records: Vec<(u32, ShardExtent)>,
}

/// Verifies the predeclare contract on a merged buffer: exactly one
/// uniquely named, undefined function symbol per function, in
/// function-index order (so function `i` ↔ `SymbolId(i)`).
pub(crate) fn check_predeclared_func_symbols(merged: &CodeBuffer, nfuncs: usize) -> Result<()> {
    if merged.symbols().len() != nfuncs {
        let n = merged.symbols().len();
        return Err(Error::Emit(format!(
            "parallel compilation requires one uniquely named symbol per \
             function ({n} declared for {nfuncs} functions)"
        )));
    }
    // The merge defines SymbolId(f) as function f's symbol, so the
    // predeclared prefix must really be the function symbols: undefined
    // function symbols, one per function, in function-index order.
    for i in 0..nfuncs as u32 {
        let sym = merged.symbol(SymbolId(i));
        if !sym.is_func || sym.section.is_some() {
            return Err(Error::Emit(format!(
                "predeclared symbol {i} ({:?}) is not an undefined \
                 function symbol; the function-index ↔ symbol-id \
                 correspondence would not hold",
                merged.symbol_name(SymbolId(i))
            )));
        }
    }
    Ok(())
}

/// Deterministic merge: appends every shard extent to `merged` in
/// function-index order, remapping shard-local symbols, and defines the
/// function symbols over the merged ranges. The result is independent of
/// how functions were distributed across the shards.
pub(crate) fn merge_shards(merged: &mut CodeBuffer, nfuncs: usize, shards: &[Shard]) -> Result<()> {
    let mut order: Vec<(u32, usize, usize)> = Vec::new();
    for (si, sh) in shards.iter().enumerate() {
        for (ri, &(f, _)) in sh.records.iter().enumerate() {
            order.push((f, si, ri));
        }
    }
    order.sort_unstable_by_key(|&(f, _, _)| f);
    let mut maps: Vec<SymbolRemap> = (0..shards.len())
        .map(|_| SymbolRemap::identity(nfuncs as u32))
        .collect();
    for (f, si, ri) in order {
        let (_, ext) = shards[si].records[ri];
        let off = merged.merge_from(&shards[si].buf, &ext, &mut maps[si])?;
        merged.define_symbol(SymbolId(f), SectionKind::Text, off, ext.text_len());
    }
    Ok(())
}

/// Compiles `nfuncs` function units across `states.len()` worker threads and
/// merges the shards deterministically. This is the IR-agnostic core of the
/// parallel pipeline, also used directly by the baseline back-ends.
///
/// * `predeclare` is applied to every shard buffer *and* the merged buffer;
///   it must declare exactly one symbol per function, in function-index
///   order (so function `i` ↔ `SymbolId(i)` in every buffer), which
///   requires unique function names.
/// * `compile` compiles one function into the worker's shard buffer using
///   the worker's state `S`. It returns `Ok(true)` if it emitted the
///   function, or `Ok(false)` to skip it (e.g. an external declaration).
///   Emitted output must be self-contained (see the module docs).
///
/// Functions are handed out through a shared atomic index queue, so workers
/// steal whatever is left regardless of how unevenly function sizes are
/// distributed. The merge concatenates extents in function-index order, so
/// the output is independent of the scheduling.
///
/// # Errors
///
/// If any function fails to compile, the error of the failing function with
/// the lowest index among the reported failures is returned. The symbol
/// contract above is verified on the merged buffer and violations reported
/// as [`Error::Emit`], as is an empty `states` vector with `nfuncs > 0`
/// (nothing would ever compile). The worker states are handed back in
/// worker order even when compilation fails, so pooled sessions survive
/// per-module errors.
pub fn compile_sharded<S, P, F>(
    nfuncs: usize,
    states: Vec<S>,
    predeclare: P,
    compile: F,
) -> (Vec<S>, Result<CodeBuffer>)
where
    S: Send,
    P: Fn(&mut CodeBuffer) + Sync,
    F: Fn(&mut S, &mut CodeBuffer, u32) -> Result<bool> + Sync,
{
    if states.is_empty() && nfuncs > 0 {
        return (
            states,
            Err(Error::Emit(
                "parallel compilation needs at least one worker".into(),
            )),
        );
    }
    let mut merged = CodeBuffer::new();
    predeclare(&mut merged);
    if let Err(e) = check_predeclared_func_symbols(&merged, nfuncs) {
        return (states, Err(e));
    }

    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    // Each worker hands its state back unconditionally; a compile failure is
    // reported alongside it as (function index, error).
    type WorkerResult<S> = (S, std::result::Result<Shard, (u32, Error)>);
    let run_worker = |mut state: S| -> WorkerResult<S> {
        let mut buf = CodeBuffer::new();
        // Record declaration order so the merge can reproduce the sequential
        // symbol table exactly (see the codebuf module docs). Enabled before
        // predeclare so every shard logs the identical prefix.
        buf.enable_declare_log();
        predeclare(&mut buf);
        let mut records = Vec::new();
        loop {
            if abort.load(Ordering::Relaxed) {
                break;
            }
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= nfuncs {
                break;
            }
            let start = buf.mark();
            match compile(&mut state, &mut buf, i as u32) {
                Ok(true) => records.push((
                    i as u32,
                    ShardExtent {
                        start,
                        end: buf.mark(),
                    },
                )),
                Ok(false) => {}
                Err(e) => {
                    abort.store(true, Ordering::Relaxed);
                    return (state, Err((i as u32, e)));
                }
            }
        }
        (state, Ok(Shard { buf, records }))
    };

    let results: Vec<WorkerResult<S>> = if states.len() <= 1 {
        // Single worker: run inline, no thread spawn. The merge below still
        // runs, so the 1-worker path exercises the same machinery.
        states.into_iter().map(run_worker).collect()
    } else {
        std::thread::scope(|scope| {
            let run = &run_worker;
            let handles: Vec<_> = states
                .into_iter()
                .map(|st| scope.spawn(move || run(st)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("compile worker panicked"))
                .collect()
        })
    };

    let mut states = Vec::with_capacity(results.len());
    let mut shards = Vec::with_capacity(results.len());
    let mut first_err: Option<(u32, Error)> = None;
    for (state, r) in results {
        states.push(state);
        match r {
            Ok(s) => shards.push(s),
            Err((i, e)) => {
                if first_err.as_ref().is_none_or(|(fi, _)| i < *fi) {
                    first_err = Some((i, e));
                }
            }
        }
    }
    if let Some((_, e)) = first_err {
        return (states, Err(e));
    }

    // Deterministic merge: extents in function-index order.
    if let Err(e) = merge_shards(&mut merged, nfuncs, &shards) {
        return (states, Err(e));
    }
    // Tiered compiles declare the tier tables inside function bodies; define
    // them once after the merge, exactly like the sequential driver does
    // after its function loop (a no-op for untiered compiles).
    merged.define_tier_tables(nfuncs);
    (states, Ok(merged))
}

/// Reusable per-worker [`CompileSession`]s. Like a single session for the
/// sequential driver, a pool lets JIT-style drivers compile many modules
/// with an allocation-free steady-state loop — each worker keeps reusing the
/// same analysis scratch, assignment tables and fixup pool.
///
/// Sessions are **target-agnostic**: every compile re-runs
/// [`CodeGen::prepare_session`], which reconfigures the register file from
/// scratch for the driver's target, so one pool can serve modules for
/// heterogeneous targets (x86-64 and AArch64 interleaved) without being
/// rebuilt — only the warm buffer capacities carry over. Pinned by the
/// cross-target pool test in `crates/llvm/tests/parallel.rs`.
#[derive(Debug, Default)]
pub struct WorkerPool {
    sessions: Vec<CompileSession>,
}

impl WorkerPool {
    /// Creates an empty pool; sessions are created on first use.
    pub fn new() -> WorkerPool {
        WorkerPool::default()
    }

    /// Number of sessions currently parked in the pool.
    pub fn sessions(&self) -> usize {
        self.sessions.len()
    }

    fn take(&mut self, n: usize) -> Vec<CompileSession> {
        while self.sessions.len() < n {
            self.sessions.push(CompileSession::new());
        }
        self.sessions.drain(..n).collect()
    }

    fn put_back(&mut self, sessions: impl IntoIterator<Item = CompileSession>) {
        self.sessions.extend(sessions);
    }
}

/// Per-worker state of a TPDE parallel compile.
struct Worker<A, C> {
    adapter: A,
    compiler: C,
    session: CompileSession,
    stats: CompileStats,
    timings: PassTimings,
}

/// The module-level parallel compilation driver: shards a module's functions
/// across worker threads, each owning a [`CompileSession`] and an adapter,
/// and merges the shard buffers into output byte-identical to
/// [`CodeGen::compile_module`] (see the module docs for the contract).
#[derive(Copy, Clone, Debug)]
pub struct ParallelDriver {
    threads: usize,
}

impl ParallelDriver {
    /// Creates a driver using up to `threads` workers (at least one). The
    /// effective worker count is additionally capped by the number of
    /// functions in the module being compiled.
    pub fn new(threads: usize) -> ParallelDriver {
        ParallelDriver {
            threads: threads.max(1),
        }
    }

    /// The configured maximum worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Compiles the module with fresh worker sessions. Drivers compiling
    /// many modules should reuse a [`WorkerPool`] via
    /// [`ParallelDriver::compile_module_with`] instead.
    ///
    /// `make_adapter` and `make_compiler` are invoked once per worker (plus
    /// one probe adapter for the module-level queries), so every worker
    /// pre-indexes functions into its own adapter and no IR state is shared
    /// mutably across threads.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors; see [`compile_sharded`].
    pub fn compile_module<T, A, C, MA, MC>(
        &self,
        cg: &CodeGen<T>,
        make_adapter: MA,
        make_compiler: MC,
    ) -> Result<CompiledModule>
    where
        T: Target + Sync,
        A: IrAdapter + Send + Sync,
        C: InstCompiler<A, T> + Send,
        MA: Fn() -> A + Sync,
        MC: Fn() -> C + Sync,
    {
        let mut pool = WorkerPool::new();
        self.compile_module_with(&mut pool, cg, make_adapter, make_compiler)
    }

    /// Compiles the module reusing the pool's worker sessions; the
    /// steady-state loop of each worker is allocation-free, as in the
    /// sequential [`CodeGen::compile_module_with`].
    ///
    /// # Errors
    ///
    /// Propagates compilation errors; see [`compile_sharded`].
    pub fn compile_module_with<T, A, C, MA, MC>(
        &self,
        pool: &mut WorkerPool,
        cg: &CodeGen<T>,
        make_adapter: MA,
        make_compiler: MC,
    ) -> Result<CompiledModule>
    where
        T: Target + Sync,
        A: IrAdapter + Send + Sync,
        C: InstCompiler<A, T> + Send,
        MA: Fn() -> A + Sync,
        MC: Fn() -> C + Sync,
    {
        let probe = make_adapter();
        let nfuncs = probe.func_count();
        let threads = self.threads.min(nfuncs.max(1));
        let mut sessions = pool.take(threads);
        for s in &mut sessions {
            cg.prepare_session(s);
        }
        let states: Vec<Worker<A, C>> = sessions
            .into_iter()
            .map(|session| Worker {
                adapter: make_adapter(),
                compiler: make_compiler(),
                session,
                stats: CompileStats::default(),
                timings: PassTimings::new(),
            })
            .collect();

        let predeclare = |buf: &mut CodeBuffer| {
            let _ = declare_func_symbols(&probe, buf);
        };
        let compile = |w: &mut Worker<A, C>, buf: &mut CodeBuffer, f: u32| -> Result<bool> {
            cg.compile_func_pooled(
                &mut w.session,
                &mut w.adapter,
                &mut w.compiler,
                buf,
                FuncRef(f),
                &mut w.stats,
                &mut w.timings,
            )
        };

        let (states, buf) = compile_sharded(nfuncs, states, predeclare, compile);
        // Hand the sessions back before propagating any error, so pooled
        // drivers keep their warm working memory across failing modules.
        let mut stats = CompileStats::default();
        let mut timings = PassTimings::new();
        pool.put_back(states.into_iter().map(|w| {
            stats.merge(&w.stats);
            timings.merge(&w.timings);
            w.session
        }));
        Ok(CompiledModule {
            buf: buf?,
            stats,
            timings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebuf::{assert_identical, Reloc, RelocKind, SymbolBinding};

    /// A synthetic "back-end": function `i` emits `i+1` marker bytes, a
    /// call-style relocation to function `(i+3) % n` and — for every third
    /// function — a relocation against a shared external declared at use.
    fn emit_fake_func(buf: &mut CodeBuffer, f: u32, nfuncs: usize) {
        for _ in 0..=f {
            buf.emit_u8(0x90 + (f as u8 & 0xf));
        }
        let callee = SymbolId((f as usize + 3) as u32 % nfuncs as u32);
        let off = buf.text_offset();
        buf.emit_u32(0);
        buf.add_reloc(Reloc {
            section: SectionKind::Text,
            offset: off,
            symbol: callee,
            kind: RelocKind::Pc32,
            addend: -4,
        });
        if f.is_multiple_of(3) {
            let ext = buf.declare_symbol("shared_ext", SymbolBinding::Global, true);
            let off = buf.text_offset();
            buf.emit_u32(0);
            buf.add_reloc(Reloc {
                section: SectionKind::Text,
                offset: off,
                symbol: ext,
                kind: RelocKind::Pc32,
                addend: -4,
            });
        }
    }

    fn run(nfuncs: usize, workers: usize) -> CodeBuffer {
        let predeclare = |buf: &mut CodeBuffer| {
            for i in 0..nfuncs {
                buf.declare_symbol(&format!("fn_{i}"), SymbolBinding::Global, true);
            }
        };
        let compile = |_: &mut (), buf: &mut CodeBuffer, f: u32| {
            emit_fake_func(buf, f, nfuncs);
            Ok(true)
        };
        let (_, buf) = compile_sharded(nfuncs, vec![(); workers], predeclare, compile);
        buf.unwrap()
    }

    #[test]
    fn sharded_output_is_worker_count_invariant() {
        let reference = run(13, 1);
        assert!(reference.section_size(SectionKind::Text) > 0);
        for workers in [2, 3, 4, 8] {
            let buf = run(13, workers);
            assert_identical(&reference, &buf, &format!("{workers} workers"));
        }
        // the shared external was interned exactly once, after the functions
        let ext = reference.symbol_by_name("shared_ext").unwrap();
        assert_eq!(ext, SymbolId(13));
    }

    #[test]
    fn skipped_functions_stay_undeclared_definitions() {
        let predeclare = |buf: &mut CodeBuffer| {
            for i in 0..4 {
                buf.declare_symbol(&format!("fn_{i}"), SymbolBinding::Global, true);
            }
        };
        let compile = |_: &mut (), buf: &mut CodeBuffer, f: u32| {
            if f == 2 {
                return Ok(false); // external declaration
            }
            buf.emit_u8(f as u8);
            Ok(true)
        };
        let (_, buf) = compile_sharded(4, vec![(); 2], predeclare, compile);
        let buf = buf.unwrap();
        assert_eq!(buf.text(), &[0, 1, 3]);
        assert!(buf.symbol(SymbolId(2)).section.is_none());
        assert_eq!(buf.symbol(SymbolId(3)).offset, 2);
    }

    #[test]
    fn compile_errors_propagate() {
        let predeclare = |buf: &mut CodeBuffer| {
            for i in 0..8 {
                buf.declare_symbol(&format!("fn_{i}"), SymbolBinding::Global, true);
            }
        };
        let compile = |_: &mut (), buf: &mut CodeBuffer, f: u32| {
            if f == 5 {
                return Err(Error::Unsupported("fn_5".into()));
            }
            buf.emit_u8(f as u8);
            Ok(true)
        };
        let (states, result) = compile_sharded(8, vec![(); 3], predeclare, compile);
        assert!(matches!(result.unwrap_err(), Error::Unsupported(_)));
        // worker states survive the failure (pooled sessions are recovered)
        assert_eq!(states.len(), 3);
    }

    #[test]
    fn zero_workers_with_functions_is_an_error() {
        let predeclare = |buf: &mut CodeBuffer| {
            buf.declare_symbol("f", SymbolBinding::Global, true);
        };
        let compile = |_: &mut (), _: &mut CodeBuffer, _: u32| Ok(true);
        let (_, result) = compile_sharded(1, Vec::<()>::new(), predeclare, compile);
        assert!(result.is_err());
    }

    #[test]
    fn duplicate_function_names_are_rejected() {
        let predeclare = |buf: &mut CodeBuffer| {
            for _ in 0..3 {
                buf.declare_symbol("same", SymbolBinding::Global, true);
            }
        };
        let compile = |_: &mut (), _: &mut CodeBuffer, _: u32| Ok(true);
        let (_, result) = compile_sharded(3, vec![(); 2], predeclare, compile);
        assert!(result.is_err());
    }

    #[test]
    fn worker_pool_reuses_sessions() {
        let mut pool = WorkerPool::new();
        let taken = pool.take(3);
        assert_eq!(taken.len(), 3);
        assert_eq!(pool.sessions(), 0);
        pool.put_back(taken);
        assert_eq!(pool.sessions(), 3);
        let again = pool.take(2);
        assert_eq!(again.len(), 2);
        assert_eq!(pool.sessions(), 1);
    }
}
