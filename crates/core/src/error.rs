//! Error type shared by all framework operations.

use std::fmt;

/// Errors produced by the TPDE framework.
///
/// Most errors indicate either an unsupported IR construct (the framework is
/// a *baseline* compiler and deliberately rejects exotic inputs) or an
/// internal resource limit (e.g. running out of registers for a single
/// instruction with too many constrained operands).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The IR uses a construct the framework or back-end does not support.
    Unsupported(String),
    /// The register allocator could not satisfy a request
    /// (e.g. all registers of a bank are locked by the current instruction).
    RegisterExhausted { bank: &'static str },
    /// An IR invariant required by the framework was violated
    /// (e.g. a use before the definition in layout order, malformed phi).
    InvalidIr(String),
    /// A label was used but never bound, or a fixup does not fit its encoding.
    Fixup(String),
    /// Error while emitting an object file or JIT image.
    Emit(String),
    /// The compile service shed the request at admission: the queue was at
    /// capacity. Carries the queue depth observed at rejection so callers
    /// can back off proportionally. Never silent — the ticket resolves
    /// immediately with this error.
    Rejected { queue_depth: u64 },
    /// The request's deadline expired before a worker started (or while a
    /// sharded compile was still running); the remaining work was skipped.
    DeadlineExceeded,
    /// The service watchdog condemned a hung worker and poisoned this
    /// request's ticket instead of letting the caller block forever.
    Timeout(String),
}

impl Error {
    /// Whether this error is an intentional load-shedding response
    /// (admission rejection or deadline expiry) rather than a compile
    /// failure.
    pub fn is_shed(&self) -> bool {
        matches!(self, Error::Rejected { .. } | Error::DeadlineExceeded)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Unsupported(what) => write!(f, "unsupported IR construct: {what}"),
            Error::RegisterExhausted { bank } => {
                write!(f, "register bank {bank} exhausted (too many locked values)")
            }
            Error::InvalidIr(what) => write!(f, "invalid IR: {what}"),
            Error::Fixup(what) => write!(f, "label/fixup error: {what}"),
            Error::Emit(what) => write!(f, "emission error: {what}"),
            Error::Rejected { queue_depth } => {
                write!(
                    f,
                    "request rejected: admission queue full (depth {queue_depth})"
                )
            }
            Error::DeadlineExceeded => write!(f, "deadline exceeded before completion"),
            Error::Timeout(what) => write!(f, "request timed out: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenient result alias used throughout the framework.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = Error::Unsupported("vector types".into());
        assert_eq!(e.to_string(), "unsupported IR construct: vector types");
        let e = Error::RegisterExhausted { bank: "gp" };
        assert!(e.to_string().contains("gp"));
    }

    #[test]
    fn shed_errors_are_classified() {
        assert!(Error::Rejected { queue_depth: 9 }.is_shed());
        assert!(Error::DeadlineExceeded.is_shed());
        assert!(!Error::Timeout("hung worker".into()).is_shed());
        assert!(!Error::Emit("bad".into()).is_shed());
        let e = Error::Rejected { queue_depth: 9 };
        assert!(e.to_string().contains("depth 9"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
