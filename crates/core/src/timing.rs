//! Lightweight per-pass timing used to reproduce the paper's Figure 6
//! (time distribution between preparation, analysis and code generation),
//! plus the service-side statistics types ([`ServiceStats`],
//! [`ClientStats`]) and the lock-free [`Reservoir`] sampler backing them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Compilation phases the framework distinguishes for timing purposes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// IR-specific preparation pass (e.g. value numbering, legalization).
    Prepare,
    /// The framework's analysis pass (loops, layout, liveness).
    Analysis,
    /// The single code-generation pass.
    CodeGen,
    /// Everything else (object emission, bookkeeping).
    Misc,
}

impl Phase {
    /// All phases in reporting order.
    pub const ALL: [Phase; 4] = [Phase::Prepare, Phase::Analysis, Phase::CodeGen, Phase::Misc];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Prepare => "prepare",
            Phase::Analysis => "analysis",
            Phase::CodeGen => "codegen",
            Phase::Misc => "misc",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Prepare => 0,
            Phase::Analysis => 1,
            Phase::CodeGen => 2,
            Phase::Misc => 3,
        }
    }
}

/// Accumulates wall-clock time per compilation phase.
#[derive(Debug, Default, Clone)]
pub struct PassTimings {
    totals: [Duration; 4],
}

impl PassTimings {
    /// Creates an empty timing accumulator.
    pub fn new() -> PassTimings {
        PassTimings::default()
    }

    /// Adds `dur` to the total of `phase`.
    pub fn add(&mut self, phase: Phase, dur: Duration) {
        self.totals[phase.index()] += dur;
    }

    /// Runs `f`, attributing its wall-clock time to `phase`.
    pub fn time<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let r = f();
        self.add(phase, start.elapsed());
        r
    }

    /// Total time recorded for a phase.
    pub fn total(&self, phase: Phase) -> Duration {
        self.totals[phase.index()]
    }

    /// Sum over all phases.
    pub fn grand_total(&self) -> Duration {
        self.totals.iter().sum()
    }

    /// Fraction (0..=1) of the grand total spent in `phase`.
    /// Returns 0 if nothing was recorded.
    pub fn fraction(&self, phase: Phase) -> f64 {
        let total = self.grand_total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.total(phase).as_secs_f64() / total
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &PassTimings) {
        for (a, b) in self.totals.iter_mut().zip(other.totals.iter()) {
            *a += *b;
        }
    }
}

/// Per-request timing of a [`crate::service::CompileService`] response.
#[derive(Clone, Debug, Default)]
pub struct RequestTiming {
    /// Time the request spent queued before a worker picked it up (zero for
    /// cache hits, which are answered at submission).
    pub queued: Duration,
    /// Submission-to-response latency.
    pub total: Duration,
    /// Whether the response was served from the in-memory module cache.
    pub cache_hit: bool,
    /// Whether the response was served from the persistent on-disk artifact
    /// cache (after missing the in-memory cache).
    pub disk_hit: bool,
    /// Whether the module was sharded across the pool (vs. batched onto one
    /// worker).
    pub sharded: bool,
    /// Whether the response was produced by coalescing onto an identical
    /// in-flight request (this request never occupied a worker; it shares
    /// the leader's compile byte for byte).
    pub coalesced: bool,
    /// How many times a sharded bulk compile of this request was paused by
    /// an interactive arrival and requeued before completing (zero for
    /// batched, interactive or never-preempted requests).
    pub preemptions: u32,
}

/// Aggregate request-level statistics of a
/// [`crate::service::CompileService`], snapshotted by
/// [`crate::service::CompileService::stats`].
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// Requests submitted so far.
    pub submitted: u64,
    /// Requests answered so far (compiled or served from cache).
    pub completed: u64,
    /// Requests answered from the in-memory module cache.
    pub cache_hits: u64,
    /// Cacheable requests that missed the in-memory cache (they were then
    /// answered from disk or compiled).
    pub cache_misses: u64,
    /// Requests answered from the persistent on-disk artifact cache
    /// (in-memory misses that loaded, verified and validated an artifact).
    pub disk_hits: u64,
    /// In-memory misses that also missed the disk cache (no artifact, or a
    /// corrupt one that was discarded) and fell through to a compile.
    pub disk_misses: u64,
    /// Modules written to the on-disk artifact cache.
    pub disk_stores: u64,
    /// Median (nearest-rank p50) disk-artifact load latency — mmap, verify,
    /// validate and materialize. Zero until the first disk hit.
    pub disk_load_p50: Duration,
    /// Nearest-rank p99 disk-artifact load latency.
    pub disk_load_p99: Duration,
    /// Requests compiled by sharding functions across the pool.
    pub sharded: u64,
    /// Requests compiled whole on a single worker.
    pub batched: u64,
    /// Cache entries evicted to respect the configured capacity.
    pub evictions: u64,
    /// Modules currently held by the cache.
    pub cached_modules: u64,
    /// High-water mark of concurrently in-flight requests (submitted but
    /// not yet answered) — one count per request, however many shard jobs
    /// it fanned out into.
    pub max_queue_depth: u64,
    /// Sum of submission-to-response latencies over completed requests.
    pub total_latency: Duration,
    /// Median (nearest-rank p50) submission-to-response latency.
    pub p50_latency: Duration,
    /// Nearest-rank p99 submission-to-response latency.
    pub p99_latency: Duration,
    /// Requests shed at admission because the queue was at capacity.
    pub rejected: u64,
    /// Requests rejected at admission because their IR failed
    /// [`crate::service::ServiceBackend::verify`] — answered
    /// [`crate::error::Error::InvalidIr`] immediately, never compiled.
    /// A caller error, so *not* counted by [`ServiceStats::shed`].
    pub rejected_invalid: u64,
    /// Worker panics contained on *verified* input — genuine backend bugs.
    /// With admission verification in place, malformed IR shows up in
    /// [`ServiceStats::rejected_invalid`], never here.
    pub panics_backend: u64,
    /// Requests shed because their deadline expired before (or during)
    /// compilation.
    pub deadline_expired: u64,
    /// Requests answered by coalescing onto an identical in-flight request
    /// instead of compiling again.
    pub coalesced: u64,
    /// Hung jobs whose tickets the watchdog poisoned with a timeout error.
    pub watchdog_timeouts: u64,
    /// Worker threads condemned and respawned by the watchdog.
    pub workers_respawned: u64,
    /// Transient disk cache I/O errors absorbed by retrying (`EINTR`-like;
    /// each retry would previously have been treated as corruption).
    pub disk_retries: u64,
    /// Times a running bulk shard job was cooperatively paused (and
    /// requeued) so an interactive arrival could take its workers.
    pub preemptions: u64,
    /// Ring pushes that found the submission ring full (or were forced by
    /// fault injection) and fell back to the mutex-guarded scheduler path.
    pub ring_fallbacks: u64,
    /// Per-client request statistics, one entry per [`crate::ClientId`]
    /// observed on a completed (or shed) request, in ascending client-id
    /// order. Tracked at completion time, so a client with only in-flight
    /// requests has no entry yet.
    pub clients: Vec<ClientStats>,
}

/// Per-client aggregate statistics, reported by
/// [`ServiceStats::clients`]. All counters are completion-side: a request
/// is attributed to its client when its ticket resolves.
#[derive(Clone, Debug, Default)]
pub struct ClientStats {
    /// The client these counters belong to (raw [`crate::ClientId`] value).
    pub client: u64,
    /// Requests answered successfully (compiled, cached or coalesced).
    pub completed: u64,
    /// Requests answered with an error (shed, invalid, failed, timed out).
    pub shed: u64,
    /// Times a bulk shard job from this client was cooperatively paused.
    pub preemptions: u64,
    /// Median submission-to-response latency over this client's recent
    /// completions (sliding window).
    pub p50_latency: Duration,
    /// Nearest-rank p99 submission-to-response latency over this client's
    /// recent completions (sliding window).
    pub p99_latency: Duration,
}

impl ServiceStats {
    /// In-memory cache hit rate over cacheable requests (0 when none were
    /// submitted).
    pub fn hit_rate(&self) -> f64 {
        let keyed = self.cache_hits + self.cache_misses;
        if keyed == 0 {
            0.0
        } else {
            self.cache_hits as f64 / keyed as f64
        }
    }

    /// Disk-cache hit rate over requests that reached the disk tier, i.e.
    /// cacheable in-memory misses on a service with a disk cache configured
    /// (0 when none did).
    pub fn disk_hit_rate(&self) -> f64 {
        let reached = self.disk_hits + self.disk_misses;
        if reached == 0 {
            0.0
        } else {
            self.disk_hits as f64 / reached as f64
        }
    }

    /// Requests intentionally shed by the front-end (admission rejection +
    /// deadline expiry). Every shed request still resolves its ticket with
    /// an explicit error.
    pub fn shed(&self) -> u64 {
        self.rejected + self.deadline_expired
    }

    /// Mean submission-to-response latency (zero before the first response).
    pub fn mean_latency(&self) -> Duration {
        if self.completed == 0 {
            Duration::ZERO
        } else {
            self.total_latency / self.completed as u32
        }
    }
}

/// A fixed-size lock-free reservoir sampler over `u64` observations.
///
/// The first `capacity` observations are stored verbatim; after that each
/// observation `i` replaces a uniformly chosen earlier sample with
/// probability `capacity / (i + 1)` (classic Algorithm R), using a
/// deterministic SplitMix64 hash of the observation index as the random
/// source so replays are reproducible. Recording is a `fetch_add` plus at
/// most one relaxed store — no lock, no allocation — so writers on the
/// service hot path never contend with [`Reservoir::snapshot`] readers.
///
/// Concurrent writers can interleave on the same slot; the loser's sample
/// is dropped. That bias is bounded by the write rate and acceptable for
/// the percentile estimates this feeds.
#[derive(Debug)]
pub struct Reservoir {
    count: AtomicU64,
    slots: Box<[AtomicU64]>,
}

/// SplitMix64 finalizer: a cheap, well-distributed hash of a counter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Default for Reservoir {
    /// A reservoir with the service's default sample capacity (512).
    fn default() -> Reservoir {
        Reservoir::new(512)
    }
}

impl Reservoir {
    /// Creates an empty reservoir holding at most `capacity` samples.
    pub fn new(capacity: usize) -> Reservoir {
        Reservoir {
            count: AtomicU64::new(0),
            slots: (0..capacity.max(1)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        let i = self.count.fetch_add(1, Ordering::Relaxed);
        let n = self.slots.len() as u64;
        if i < n {
            self.slots[i as usize].store(value, Ordering::Relaxed);
        } else {
            let j = splitmix64(i) % (i + 1);
            if j < n {
                self.slots[j as usize].store(value, Ordering::Relaxed);
            }
        }
    }

    /// Total observations recorded (not capped at capacity).
    pub fn len(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the currently held samples out (at most `capacity` values,
    /// unsorted). Never blocks a concurrent writer.
    pub fn snapshot(&self) -> Vec<u64> {
        let filled = (self.count.load(Ordering::Relaxed) as usize).min(self.slots.len());
        self.slots[..filled]
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_stats_rates() {
        let s = ServiceStats {
            completed: 4,
            cache_hits: 3,
            cache_misses: 1,
            total_latency: Duration::from_millis(8),
            ..ServiceStats::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(s.mean_latency(), Duration::from_millis(2));
        assert_eq!(ServiceStats::default().hit_rate(), 0.0);
        assert_eq!(ServiceStats::default().mean_latency(), Duration::ZERO);
    }

    #[test]
    fn disk_hit_rate_counts_only_requests_that_reached_disk() {
        let s = ServiceStats {
            cache_hits: 10,
            cache_misses: 4,
            disk_hits: 3,
            disk_misses: 1,
            ..ServiceStats::default()
        };
        assert!((s.disk_hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(ServiceStats::default().disk_hit_rate(), 0.0);
    }

    #[test]
    fn time_accumulates() {
        let mut t = PassTimings::new();
        t.add(Phase::Analysis, Duration::from_millis(10));
        t.add(Phase::Analysis, Duration::from_millis(5));
        t.add(Phase::CodeGen, Duration::from_millis(15));
        assert_eq!(t.total(Phase::Analysis), Duration::from_millis(15));
        assert_eq!(t.grand_total(), Duration::from_millis(30));
        assert!((t.fraction(Phase::CodeGen) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn time_closure_runs_and_attributes() {
        let mut t = PassTimings::new();
        let v = t.time(Phase::Prepare, || 41 + 1);
        assert_eq!(v, 42);
        assert!(t.total(Phase::Prepare) >= Duration::ZERO);
    }

    #[test]
    fn merge_adds_all_phases() {
        let mut a = PassTimings::new();
        a.add(Phase::Misc, Duration::from_millis(1));
        let mut b = PassTimings::new();
        b.add(Phase::Misc, Duration::from_millis(2));
        a.merge(&b);
        assert_eq!(a.total(Phase::Misc), Duration::from_millis(3));
    }

    #[test]
    fn empty_fraction_is_zero() {
        let t = PassTimings::new();
        assert_eq!(t.fraction(Phase::CodeGen), 0.0);
    }

    #[test]
    fn reservoir_below_capacity_keeps_everything() {
        let r = Reservoir::new(8);
        for v in 1..=5u64 {
            r.record(v * 10);
        }
        let mut s = r.snapshot();
        s.sort_unstable();
        assert_eq!(s, [10, 20, 30, 40, 50]);
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn reservoir_over_capacity_stays_bounded_and_samples_the_stream() {
        let r = Reservoir::new(16);
        for v in 0..10_000u64 {
            r.record(v);
        }
        let s = r.snapshot();
        assert_eq!(s.len(), 16);
        assert_eq!(r.len(), 10_000);
        // Algorithm R keeps a sample spread across the whole stream, not
        // just the head: with 16 slots over 10k observations, at least one
        // survivor should come from the later half.
        assert!(s.iter().any(|&v| v >= 5_000), "{s:?}");
    }

    #[test]
    fn reservoir_is_deterministic() {
        let a = Reservoir::new(8);
        let b = Reservoir::new(8);
        for v in 0..1000u64 {
            a.record(v);
            b.record(v);
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn reservoir_concurrent_writers_never_lose_the_structure() {
        use std::sync::Arc;
        let r = Arc::new(Reservoir::new(32));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for v in 0..1000u64 {
                        r.record(t * 10_000 + v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.len(), 4000);
        assert_eq!(r.snapshot().len(), 32);
    }
}
