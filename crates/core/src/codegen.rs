//! The single-pass code-generation driver.
//!
//! [`CodeGen`] drives module compilation: for every defined function it runs
//! the analysis pass and then walks the blocks in layout order exactly once,
//! delegating the semantics of each instruction to a user-provided
//! [`InstCompiler`]. The per-function context handed to instruction
//! compilers is [`FuncCodeGen`]; it provides operand handles, register
//! allocation, scratch registers, spilling, phi/branch handling, calls and
//! returns — everything described in §3.4 of the paper.

use crate::adapter::{BlockRef, FuncRef, InstRef, IrAdapter, Linkage, ValueRef};
use crate::analysis::{Analysis, Analyzer};
use crate::assignments::{Assignment, AssignmentTable, FrameAlloc, PartList, PartState, Recompute};
use crate::bitset::DenseBitSet;
use crate::callconv::ArgLoc;
use crate::codebuf::{CodeBuffer, FixupPool, Label, SectionKind, SymbolBinding, SymbolId};
use crate::error::{Error, Result};
use crate::regalloc::{RegFile, RegOwner};
use crate::regs::{Reg, RegBank, RegSet};
use crate::target::{FrameState, Target};
use crate::timing::{PassTimings, Phase};
use std::time::Instant;

/// Options controlling code generation; the non-default settings exist for
/// the ablation studies described in DESIGN.md.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CompileOptions {
    /// Pin single-part phi values of innermost loop headers to callee-saved
    /// registers (§3.4.5).
    pub fixed_loop_regs: bool,
    /// Hint for back-ends whether to fuse adjacent instructions
    /// (compare+branch, address+memory access). The framework only exposes
    /// the flag; back-ends consult it.
    pub fusion: bool,
    /// Ablation: ignore liveness and treat every value as live until the end
    /// of the function (mimics the copy-and-patch situation of having no
    /// liveness information).
    pub assume_all_live: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            fixed_loop_regs: true,
            fusion: true,
            assume_all_live: false,
        }
    }
}

/// Tier-0 instrumentation emitted by the code generator (see the call-stub
/// contract in [`crate::codebuf`]). The default (both off) compiles exactly
/// as before; tiered drivers enable both so a `TieringController` can
/// observe entry counts and redirect calls to recompiled functions.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct TierConfig {
    /// Emit a per-function entry-counter increment after the prologue.
    pub entry_counters: bool,
    /// Route direct calls to module-local functions through the patchable
    /// call-slot table instead of direct relocations.
    pub patchable_calls: bool,
}

impl TierConfig {
    /// A configuration with both instrumentations enabled (the tier-0
    /// profile).
    pub fn tier0() -> TierConfig {
        TierConfig {
            entry_counters: true,
            patchable_calls: true,
        }
    }

    /// Whether any instrumentation is enabled.
    pub fn enabled(&self) -> bool {
        self.entry_counters || self.patchable_calls
    }
}

/// Counters collected during compilation (used by the benches and tests).
#[derive(Clone, Debug, Default)]
pub struct CompileStats {
    /// Number of compiled functions.
    pub funcs: usize,
    /// Number of compiled basic blocks.
    pub blocks: usize,
    /// Number of compiled IR instructions.
    pub insts: usize,
    /// Number of emitted spill stores.
    pub spills: usize,
    /// Number of emitted reloads.
    pub reloads: usize,
    /// Number of emitted register/memory moves (excluding spills/reloads).
    pub moves: usize,
}

impl CompileStats {
    /// Adds another set of counters (used to combine per-worker statistics
    /// of a parallel compile; the sums are independent of worker order).
    pub fn merge(&mut self, other: &CompileStats) {
        self.funcs += other.funcs;
        self.blocks += other.blocks;
        self.insts += other.insts;
        self.spills += other.spills;
        self.reloads += other.reloads;
        self.moves += other.moves;
    }
}

/// A compiled module: the filled code buffer plus statistics and timings.
#[derive(Clone, Debug)]
pub struct CompiledModule {
    /// All sections, symbols and relocations of the module.
    pub buf: CodeBuffer,
    /// Event counters.
    pub stats: CompileStats,
    /// Per-pass wall-clock timings.
    pub timings: PassTimings,
}

impl CompiledModule {
    /// Size of the generated text section in bytes.
    pub fn text_size(&self) -> u64 {
        self.buf.section_size(SectionKind::Text)
    }

    /// Structural consistency check of the compiled module: every defined
    /// symbol lies within its section, every relocation patches a field that
    /// exists and targets a symbol that exists, and the tier tables (if
    /// present) obey the adjacency contract of
    /// [`CodeBuffer::define_tier_tables`].
    ///
    /// The compiler upholds these invariants by construction; the check
    /// exists for modules that arrive from *outside* a compile — above all
    /// artifacts deserialized from the on-disk cache ([`crate::diskcache`]
    /// runs it on every load so a hash-consistent but structurally bogus
    /// artifact is a cache miss, never a wrong answer) — and as a debug
    /// assertion in the service determinism suite.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Emit`] describing the first violated invariant.
    pub fn validate(&self) -> Result<()> {
        let buf = &self.buf;
        let corrupt = |what: String| Err(Error::Emit(format!("invalid module: {what}")));
        for i in 0..buf.symbols().len() as u32 {
            let id = crate::codebuf::SymbolId(i);
            let sym = buf.symbol(id);
            if let Some(kind) = sym.section {
                let limit = buf.section_size(kind);
                match sym.offset.checked_add(sym.size) {
                    Some(end) if end <= limit => {}
                    _ => {
                        return corrupt(format!(
                            "symbol {i} ({}) extends past the end of {}",
                            buf.symbol_name(id),
                            kind.name()
                        ))
                    }
                }
            }
        }
        for (i, reloc) in buf.relocs().iter().enumerate() {
            if reloc.symbol.0 as usize >= buf.symbols().len() {
                return corrupt(format!(
                    "relocation {i} targets a symbol that does not exist"
                ));
            }
            if reloc.section == SectionKind::Bss {
                return corrupt(format!("relocation {i} patches .bss, which has no bytes"));
            }
            match reloc.offset.checked_add(reloc.kind.field_len()) {
                Some(end) if end <= buf.section_size(reloc.section) => {}
                _ => {
                    return corrupt(format!(
                        "relocation {i} field extends past the end of {}",
                        reloc.section.name()
                    ))
                }
            }
        }
        // Tier-table adjacency: the slot table sits directly after the
        // counter table (JitImage derives the function count from the
        // distance between the two symbols).
        if let (Some(counters), Some(slots)) = (
            buf.symbol_by_name(crate::codebuf::TIER_COUNTERS_SYM),
            buf.symbol_by_name(crate::codebuf::TIER_SLOTS_SYM),
        ) {
            let (c, s) = (buf.symbol(counters), buf.symbol(slots));
            if let (Some(_), Some(_)) = (c.section, s.section) {
                if c.section != s.section
                    || c.size != s.size
                    || !c.size.is_multiple_of(8)
                    || s.offset != c.offset + c.size
                {
                    return corrupt("tier tables violate the adjacency contract".into());
                }
            }
        }
        Ok(())
    }
}

/// User-provided instruction compilers: generates machine code for a single
/// IR instruction by calling back into [`FuncCodeGen`].
pub trait InstCompiler<A: IrAdapter, T: Target> {
    /// Compiles one instruction. Terminators must use the branch/return API
    /// of [`FuncCodeGen`].
    fn compile_inst(&mut self, cg: &mut FuncCodeGen<'_, A, T>, inst: InstRef) -> Result<()>;
}

impl<A: IrAdapter, T: Target, F> InstCompiler<A, T> for F
where
    F: FnMut(&mut FuncCodeGen<'_, A, T>, InstRef) -> Result<()>,
{
    fn compile_inst(&mut self, cg: &mut FuncCodeGen<'_, A, T>, inst: InstRef) -> Result<()> {
        self(cg, inst)
    }
}

/// Handle to one part of an IR value operand or result (§3.4.3 step 1).
///
/// Obtaining a handle through [`FuncCodeGen::val_ref`] counts as observing
/// one use of the value.
#[derive(Copy, Clone, Debug)]
pub struct ValuePartRef {
    /// The referenced value.
    pub val: ValueRef,
    /// The referenced part.
    pub part: u32,
    /// Register bank of the part.
    pub bank: RegBank,
    /// Size of the part in bytes.
    pub size: u32,
    /// Whether the value is an IR constant.
    pub is_const: bool,
    /// Constant bits (only meaningful if `is_const`).
    pub const_val: u64,
}

/// An abstract location used for value moves.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MoveLoc {
    /// In a register.
    Reg(Reg),
    /// In the stack frame at the given frame-pointer-relative offset.
    Frame(i32),
    /// A constant.
    Const(u64),
}

#[derive(Copy, Clone, Debug)]
struct MoveDesc {
    dst: MoveLoc,
    src: MoveLoc,
    bank: RegBank,
    size: u32,
}

/// A deferred critical-edge block: label to bind, jump target, and the range
/// of this edge's moves within the session's pooled `edge_moves` buffer.
#[derive(Copy, Clone, Debug)]
struct PendingEdge {
    label: Label,
    succ_label: Label,
    moves_start: u32,
    moves_end: u32,
}

/// Call target for [`FuncCodeGen::emit_call`].
#[derive(Clone, Debug)]
pub enum CallTarget {
    /// Direct call to a symbol.
    Sym(SymbolId),
    /// Indirect call through the address held by a value part.
    Indirect(ValuePartRef),
}

/// Per-function scratch state of the code generator, hoisted out of
/// [`FuncCodeGen`] so one instance can be reused across all functions of a
/// module (and across modules). Every buffer is cleared — never dropped —
/// between functions, so the steady-state compile loop performs no heap
/// allocation here once the buffers have grown to the largest function.
#[derive(Debug, Default)]
struct FuncScratch {
    assignments: AssignmentTable,
    frame: FrameAlloc,
    block_labels: Vec<Label>,
    inst_locked: Vec<Reg>,
    inst_scratch: Vec<Reg>,
    maybe_dead: Vec<ValueRef>,
    /// Deferred critical-edge blocks of the current block.
    pending_edges: Vec<PendingEdge>,
    /// Pooled backing storage for the moves of all pending edges.
    edge_moves: Vec<MoveDesc>,
    /// General move-list scratch (phi edges, returns, call arguments).
    move_scratch: Vec<MoveDesc>,
    /// Worklist of the parallel-move resolver.
    pm_pending: Vec<MoveDesc>,
    /// Values found dead during the block-boundary sweep.
    sweep_dead: Vec<ValueRef>,
    /// Instructions marked fused (dense, indexed by [`InstRef`]).
    fused: DenseBitSet,
    /// Part descriptors for ABI assignment (prologue, calls, returns).
    parts_desc: Vec<(RegBank, u32)>,
    /// (value, part) owner of each prologue part descriptor.
    arg_owners: Vec<(ValueRef, u32)>,
    /// Argument locations from the calling convention.
    arg_locs: Vec<ArgLoc>,
    /// Return registers from the calling convention.
    ret_regs: Vec<Reg>,
    /// Call arguments materialized after the parallel moves.
    recompute_args: Vec<(Reg, ValuePartRef)>,
    /// Registers currently owned by values (spill sweeps around branches/calls).
    owned_regs: Vec<(Reg, ValueRef, u32)>,
    /// Registers cleared at block boundaries.
    cleared_regs: Vec<(Reg, RegOwner)>,
}

/// Reusable compile session: the analysis pass working memory, the analysis
/// result, the register file and all per-function codegen scratch.
///
/// [`CodeGen::compile_module`] creates one internally; drivers that compile
/// many modules (e.g. a JIT serving many requests) should allocate a session
/// once and pass it to [`CodeGen::compile_module_with`] so the steady-state
/// compile loop is allocation-free.
#[derive(Debug, Default)]
pub struct CompileSession {
    analyzer: Analyzer,
    analysis: Analysis,
    regfile: RegFile,
    scratch: FuncScratch,
    /// Label/fixup storage, lent to each module's [`CodeBuffer`] and
    /// recycled at every function boundary (see [`crate::codebuf`]).
    pub(crate) fixups: FixupPool,
}

impl CompileSession {
    /// Creates a session with empty buffers.
    pub fn new() -> CompileSession {
        CompileSession::default()
    }
}

/// The module-level compilation driver.
#[derive(Debug)]
pub struct CodeGen<T: Target> {
    target: T,
    opts: CompileOptions,
    tier: TierConfig,
}

impl<T: Target> CodeGen<T> {
    /// Creates a driver for the given target and options (no tier-0
    /// instrumentation).
    pub fn new(target: T, opts: CompileOptions) -> CodeGen<T> {
        CodeGen {
            target,
            opts,
            tier: TierConfig::default(),
        }
    }

    /// Creates a driver that additionally emits the given tier-0
    /// instrumentation.
    pub fn with_tier(target: T, opts: CompileOptions, tier: TierConfig) -> CodeGen<T> {
        CodeGen { target, opts, tier }
    }

    /// The tier-0 instrumentation this driver emits.
    pub fn tier(&self) -> TierConfig {
        self.tier
    }

    /// The target this driver generates code for.
    pub fn target(&self) -> &T {
        &self.target
    }

    /// Compiles all defined functions of the adapter's module with a fresh
    /// [`CompileSession`]. Drivers compiling many modules should reuse a
    /// session via [`CodeGen::compile_module_with`] instead.
    ///
    /// # Errors
    ///
    /// Propagates any error produced by the analysis pass, the register
    /// allocator or the instruction compilers.
    pub fn compile_module<A: IrAdapter, C: InstCompiler<A, T>>(
        &self,
        adapter: &mut A,
        compiler: &mut C,
    ) -> Result<CompiledModule> {
        let mut session = CompileSession::new();
        self.compile_module_with(&mut session, adapter, compiler)
    }

    /// Compiles all defined functions of the adapter's module, reusing the
    /// given session's working memory. After the first function, the
    /// steady-state compile loop performs no per-function heap allocation
    /// in the analysis and codegen layers.
    ///
    /// # Errors
    ///
    /// Propagates any error produced by the analysis pass, the register
    /// allocator or the instruction compilers.
    pub fn compile_module_with<A: IrAdapter, C: InstCompiler<A, T>>(
        &self,
        session: &mut CompileSession,
        adapter: &mut A,
        compiler: &mut C,
    ) -> Result<CompiledModule> {
        let mut buf = CodeBuffer::new();
        // Lend the session's recycled label/fixup pool to this module's
        // buffer so the steady-state loop reuses its allocations.
        buf.adopt_fixup_pool(std::mem::take(&mut session.fixups));
        let mut stats = CompileStats::default();
        let mut timings = PassTimings::new();

        self.prepare_session(session);
        let syms = declare_func_symbols(&*adapter, &mut buf);

        // The body runs in a closure so the pool is handed back to the
        // session even when a function fails to compile.
        let result = (|| -> Result<()> {
            for (i, &sym) in syms.iter().enumerate() {
                let f = FuncRef(i as u32);
                if !adapter.func_is_definition(f) {
                    continue;
                }
                self.compile_func_into(
                    session,
                    adapter,
                    compiler,
                    &mut buf,
                    f,
                    sym,
                    &mut stats,
                    &mut timings,
                )?;
            }
            // With tier-0 instrumentation enabled, the function bodies
            // declared the tier tables; define them once per module (a no-op
            // otherwise). The sharded pipeline does the same after its merge,
            // keeping both outputs byte-identical.
            buf.define_tier_tables(syms.len());
            Ok(())
        })();

        session.fixups = buf.release_fixup_pool();
        result?;
        Ok(CompiledModule {
            buf,
            stats,
            timings,
        })
    }

    /// Configures the session's register file for this driver's target.
    /// Called once per module by [`CodeGen::compile_module_with`]; parallel
    /// drivers call it once per worker session before the first
    /// [`CodeGen::compile_func_into`].
    pub fn prepare_session(&self, session: &mut CompileSession) {
        session.regfile.configure(
            self.target.allocatable_regs(RegBank::GP),
            self.target.allocatable_regs(RegBank::FP),
        );
    }

    /// Compiles a single function into `buf`: switches the adapter to `f`,
    /// runs the analysis pass, generates code, defines `sym` over the
    /// emitted range and resolves the function's fixups.
    ///
    /// This is the self-contained per-function compilation unit the parallel
    /// pipeline shards across workers (see [`crate::parallel`]); the
    /// session's register file must have been configured via
    /// [`CodeGen::prepare_session`] first, and `buf`'s fixup pool is used
    /// as-is (callers that recycle a pool adopt/release it around this
    /// call).
    ///
    /// # Errors
    ///
    /// Propagates any error produced by the analysis pass, the register
    /// allocator or the instruction compilers.
    #[allow(clippy::too_many_arguments)]
    pub fn compile_func_into<A: IrAdapter, C: InstCompiler<A, T>>(
        &self,
        session: &mut CompileSession,
        adapter: &mut A,
        compiler: &mut C,
        buf: &mut CodeBuffer,
        f: FuncRef,
        sym: SymbolId,
        stats: &mut CompileStats,
        timings: &mut PassTimings,
    ) -> Result<()> {
        adapter.switch_func(f);
        let CompileSession {
            analyzer,
            analysis,
            regfile,
            scratch,
            fixups: _,
        } = &mut *session;
        timings.time(Phase::Analysis, || {
            analyzer.analyze_into(&*adapter, analysis)
        })?;
        let cg_start = Instant::now();
        let func_off = buf.text_offset();
        buf.define_symbol(sym, SectionKind::Text, func_off, 0);
        {
            let mut fcg = FuncCodeGen::new(
                &*adapter,
                &self.target,
                buf,
                analysis,
                &self.opts,
                self.tier,
                stats,
                sym,
                scratch,
                regfile,
            );
            fcg.compile_function(compiler)?;
        }
        let size = buf.text_offset() - func_off;
        buf.set_symbol_size(sym, size);
        buf.finish_func_fixups()?;
        timings.add(Phase::CodeGen, cg_start.elapsed());
        adapter.finalize_func();
        stats.funcs += 1;
        Ok(())
    }

    /// The worker-side sharding unit: compiles function `f` into `buf` with
    /// `SymbolId(f.0)` as its symbol, lending the session's recycled fixup
    /// pool to `buf` for the duration of the call, and skips declarations
    /// (returns `Ok(false)`).
    ///
    /// Both the scoped [`crate::parallel::ParallelDriver`] workers and the
    /// persistent [`crate::service::CompileService`] workers call this from
    /// their shard loops, which is what keeps the two pipelines
    /// byte-identical: they emit through the exact same unit.
    ///
    /// # Errors
    ///
    /// Propagates any error produced by the analysis pass, the register
    /// allocator or the instruction compilers.
    #[allow(clippy::too_many_arguments)]
    pub fn compile_func_pooled<A: IrAdapter, C: InstCompiler<A, T>>(
        &self,
        session: &mut CompileSession,
        adapter: &mut A,
        compiler: &mut C,
        buf: &mut CodeBuffer,
        f: FuncRef,
        stats: &mut CompileStats,
        timings: &mut PassTimings,
    ) -> Result<bool> {
        if !adapter.func_is_definition(f) {
            return Ok(false);
        }
        buf.adopt_fixup_pool(std::mem::take(&mut session.fixups));
        let r = self.compile_func_into(
            session,
            adapter,
            compiler,
            buf,
            f,
            SymbolId(f.0),
            stats,
            timings,
        );
        session.fixups = buf.release_fixup_pool();
        r.map(|()| true)
    }
}

/// Declares one symbol per module function, in function-index order, with
/// the binding derived from the function's linkage. Returns the symbol ids;
/// for a fresh buffer and unique function names these are `0..func_count`.
///
/// Used by [`CodeGen::compile_module_with`] and by the parallel pipeline,
/// which relies on every worker shard and the merged buffer pre-declaring
/// the identical symbol prefix.
pub fn declare_func_symbols<A: IrAdapter>(adapter: &A, buf: &mut CodeBuffer) -> Vec<SymbolId> {
    let nfuncs = adapter.func_count();
    let mut syms = Vec::with_capacity(nfuncs);
    for i in 0..nfuncs {
        let f = FuncRef(i as u32);
        let binding = match adapter.func_linkage(f) {
            Linkage::External => SymbolBinding::Global,
            Linkage::Internal => SymbolBinding::Local,
            Linkage::Weak => SymbolBinding::Weak,
        };
        syms.push(buf.declare_symbol(adapter.func_name(f), binding, true));
    }
    syms
}

/// Per-function code-generation context handed to instruction compilers.
pub struct FuncCodeGen<'a, A: IrAdapter, T: Target> {
    /// The IR adapter (also usable for IR-specific queries by the compiler).
    pub adapter: &'a A,
    /// The target.
    pub target: &'a T,
    /// The code buffer instructions are emitted into.
    pub buf: &'a mut CodeBuffer,
    /// The analysis result of the current function.
    pub analysis: &'a Analysis,

    opts: &'a CompileOptions,
    tier: TierConfig,
    /// Tier table symbols `(counters, slots)`, declared at the start of the
    /// function body when tiering is enabled.
    tier_syms: Option<(SymbolId, SymbolId)>,
    stats: &'a mut CompileStats,
    /// Reused per-function scratch state (see [`FuncScratch`]).
    s: &'a mut FuncScratch,
    regfile: &'a mut RegFile,
    frame_state: FrameState,
    cur_pos: u32,
    entry_state_valid: bool,
    state_valid_next: bool,
    used_callee_saved: RegSet,
    func_sym: SymbolId,
    cycle_temp: Option<i32>,
}

impl<'a, A: IrAdapter, T: Target> FuncCodeGen<'a, A, T> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        adapter: &'a A,
        target: &'a T,
        buf: &'a mut CodeBuffer,
        analysis: &'a Analysis,
        opts: &'a CompileOptions,
        tier: TierConfig,
        stats: &'a mut CompileStats,
        func_sym: SymbolId,
        s: &'a mut FuncScratch,
        regfile: &'a mut RegFile,
    ) -> FuncCodeGen<'a, A, T> {
        regfile.reset();
        s.assignments.reset(adapter.value_count());
        s.frame.reset(target.callee_save_area_size());
        s.block_labels.clear();
        s.inst_locked.clear();
        s.inst_scratch.clear();
        s.maybe_dead.clear();
        s.pending_edges.clear();
        s.edge_moves.clear();
        s.fused.reset(adapter.inst_count());
        FuncCodeGen {
            adapter,
            target,
            buf,
            analysis,
            opts,
            tier,
            tier_syms: None,
            stats,
            s,
            regfile,
            frame_state: FrameState::default(),
            cur_pos: 0,
            entry_state_valid: true,
            state_valid_next: false,
            used_callee_saved: RegSet::empty(),
            func_sym,
            cycle_temp: None,
        }
    }

    // ---- general accessors --------------------------------------------------

    /// Compile options in effect.
    pub fn options(&self) -> &CompileOptions {
        self.opts
    }

    /// Statistics counters (back-ends may add their own events).
    pub fn stats_mut(&mut self) -> &mut CompileStats {
        self.stats
    }

    /// Symbol of the function being compiled.
    pub fn func_symbol(&self) -> SymbolId {
        self.func_sym
    }

    /// The block currently being compiled.
    pub fn cur_block(&self) -> BlockRef {
        self.analysis.layout[self.cur_pos as usize]
    }

    /// Layout position of the block currently being compiled.
    pub fn cur_pos(&self) -> u32 {
        self.cur_pos
    }

    /// Label of a basic block (created on demand, bound when the block is
    /// compiled).
    pub fn block_label(&self, block: BlockRef) -> Label {
        self.s.block_labels[self.analysis.pos(block) as usize]
    }

    /// Marks an instruction as fused: the main loop will skip it. Used by
    /// instruction compilers that emit the code of a later instruction early
    /// (e.g. compare+branch fusion, §3.4.4).
    pub fn mark_fused(&mut self, inst: InstRef) {
        self.s.fused.insert(inst.0);
    }

    /// Whether an instruction was marked fused by an earlier compiler call.
    pub fn is_fused(&self, inst: InstRef) -> bool {
        self.s.fused.contains(inst.0)
    }

    // ---- function driver ------------------------------------------------------

    fn compile_function<C: InstCompiler<A, T>>(&mut self, compiler: &mut C) -> Result<()> {
        // Tier tables are declared (not defined) at the very start of every
        // instrumented function body so the declaration-log replay of the
        // sharded pipeline interns them at the same ids as sequential
        // compilation — directly after the predeclared function symbols.
        if self.tier.enabled() {
            self.tier_syms = Some(self.buf.declare_tier_symbols());
        }
        let n = self.analysis.layout.len();
        for _ in 0..n {
            let l = self.buf.new_label();
            self.s.block_labels.push(l);
        }
        self.emit_prologue_and_args()?;
        self.assign_fixed_loop_regs()?;

        let adapter = self.adapter;
        for pos in 0..n as u32 {
            self.begin_block(pos)?;
            let block = self.analysis.layout[pos as usize];
            for &inst in adapter.block_insts(block) {
                if self.s.fused.take(inst.0) {
                    continue;
                }
                compiler.compile_inst(self, inst)?;
                self.end_inst();
                self.stats.insts += 1;
            }
            self.finish_terminator()?;
            self.stats.blocks += 1;
        }

        self.target.finish_func(
            self.buf,
            &self.frame_state,
            self.s.frame.frame_size(),
            self.used_callee_saved,
        );
        Ok(())
    }

    fn emit_prologue_and_args(&mut self) -> Result<()> {
        self.frame_state = self.target.emit_prologue(self.buf);
        // Tier-0 entry counter: emitted right after the prologue, where the
        // flags are dead and no argument register has been touched yet.
        if self.tier.entry_counters {
            if let Some((counters, _)) = self.tier_syms {
                self.target
                    .emit_tier_counter(self.buf, counters, self.func_sym.0);
            }
        }
        let adapter = self.adapter;

        // Static stack variables: allocated in the frame, value = address,
        // trivially recomputable (never spilled).
        for sv in adapter.static_stack_vars() {
            let off = self.s.frame.alloc(sv.size, sv.align);
            self.ensure_assignment(sv.value);
            if let Some(a) = self.s.assignments.get_mut(sv.value) {
                a.parts[0].recompute = Some(Recompute::StackAddr(off));
            }
        }

        // Arguments.
        self.s.parts_desc.clear();
        self.s.arg_owners.clear();
        for &v in adapter.args() {
            for p in 0..adapter.val_part_count(v) {
                self.s
                    .parts_desc
                    .push((adapter.val_part_bank(v, p), adapter.val_part_size(v, p)));
                self.s.arg_owners.push((v, p));
            }
        }
        let cc = self.target.call_conv();
        self.s.arg_locs.clear();
        cc.assign_args_into(&self.s.parts_desc, &mut self.s.arg_locs);
        for i in 0..self.s.arg_owners.len() {
            let (v, p) = self.s.arg_owners[i];
            let loc = self.s.arg_locs[i];
            self.ensure_assignment(v);
            match loc {
                ArgLoc::Reg(r) => {
                    if let Some(a) = self.s.assignments.get_mut(v) {
                        a.parts[p as usize].reg = Some(r);
                        a.parts[p as usize].in_mem = false;
                    }
                    self.regfile.set_owner(r, RegOwner::Value(v, p));
                }
                ArgLoc::Stack(off) => {
                    // Incoming stack arguments live above the saved frame
                    // pointer and return address.
                    let fp_off = 16 + off as i32;
                    if adapter.val_part_count(v) == 1 {
                        if let Some(a) = self.s.assignments.get_mut(v) {
                            a.frame_off = Some(fp_off);
                            a.parts[0].in_mem = true;
                        }
                    } else {
                        // Rare: a part of a multi-part value on the stack.
                        // Load it into a register right away.
                        let bank = adapter.val_part_bank(v, p);
                        let size = adapter.val_part_size(v, p);
                        let reg = self.alloc_reg(bank, None)?;
                        self.target
                            .emit_frame_load(self.buf, bank, size, reg, fp_off);
                        if let Some(a) = self.s.assignments.get_mut(v) {
                            a.parts[p as usize].reg = Some(reg);
                        }
                        self.regfile.set_owner(reg, RegOwner::Value(v, p));
                    }
                }
            }
        }

        // If the entry block can also be reached by a branch (it has
        // predecessors), its entry register state must be the canonical one:
        // spill all register arguments now.
        let entry = self.analysis.layout[0];
        if self.analysis.num_preds[entry.idx()] > 0 {
            self.spill_all_register_values()?;
            self.entry_state_valid = false;
        }
        Ok(())
    }

    fn assign_fixed_loop_regs(&mut self) -> Result<()> {
        if !self.opts.fixed_loop_regs {
            return Ok(());
        }
        let adapter = self.adapter;
        let mut next_idx = [0usize; RegBank::COUNT];
        for pos in 0..self.analysis.layout.len() as u32 {
            if !self.analysis.is_loop_header(pos) {
                continue;
            }
            let block = self.analysis.layout[pos as usize];
            for &phi in adapter.block_phis(block) {
                if adapter.val_part_count(phi) != 1 {
                    continue;
                }
                let bank = adapter.val_part_bank(phi, 0);
                let candidates = self.target.fixed_reg_candidates(bank);
                let idx = &mut next_idx[bank.index()];
                if *idx >= candidates.len() {
                    continue;
                }
                let reg = candidates[*idx];
                *idx += 1;
                self.ensure_assignment(phi);
                if let Some(a) = self.s.assignments.get_mut(phi) {
                    a.parts[0].fixed = true;
                    a.parts[0].reg = Some(reg);
                    a.parts[0].in_mem = false;
                }
                self.regfile.set_fixed(reg, phi, 0);
                self.used_callee_saved.insert(reg);
            }
        }
        Ok(())
    }

    fn begin_block(&mut self, pos: u32) -> Result<()> {
        self.cur_pos = pos;
        self.sweep_dead_values(pos);
        self.buf.bind_label(self.s.block_labels[pos as usize]);

        let keep_state = if pos == 0 {
            self.entry_state_valid
        } else {
            self.state_valid_next
        };
        if !keep_state {
            self.s.cleared_regs.clear();
            self.regfile.reset_non_fixed_into(&mut self.s.cleared_regs);
            for i in 0..self.s.cleared_regs.len() {
                let (_, owner) = self.s.cleared_regs[i];
                if let RegOwner::Value(v, p) = owner {
                    if let Some(a) = self.s.assignments.get_mut(v) {
                        a.parts[p as usize].reg = None;
                    }
                }
            }
        }

        // Phi values arrive through edge moves: their canonical location is
        // their stack slot (or fixed register).
        let adapter = self.adapter;
        let block = self.analysis.layout[pos as usize];
        for &phi in adapter.block_phis(block) {
            self.ensure_assignment(phi);
            let nparts = adapter.val_part_count(phi);
            for p in 0..nparts {
                let fixed = self
                    .s
                    .assignments
                    .get(phi)
                    .map(|a| a.parts[p as usize].fixed)
                    .unwrap_or(false);
                if !fixed {
                    self.ensure_frame_slot(phi);
                    if let Some(a) = self.s.assignments.get_mut(phi) {
                        a.parts[p as usize].in_mem = true;
                        a.parts[p as usize].reg = None;
                    }
                }
            }
        }
        Ok(())
    }

    fn sweep_dead_values(&mut self, pos: u32) {
        let mut dead = std::mem::take(&mut self.s.sweep_dead);
        dead.clear();
        for &v in self.s.assignments.active() {
            if let Some(a) = self.s.assignments.get(v) {
                if a.last_pos < pos {
                    dead.push(v);
                }
            }
        }
        for &v in &dead {
            self.free_value(v);
        }
        self.s.assignments.prune_active();
        self.s.sweep_dead = dead;
    }

    fn free_value(&mut self, v: ValueRef) {
        if let Some(a) = self.s.assignments.remove(v) {
            for (p, part) in a.parts.iter().enumerate() {
                if let Some(r) = part.reg {
                    if self.regfile.owner(r) == Some(RegOwner::Value(v, p as u32)) {
                        self.regfile.clear(r);
                    }
                }
            }
            if let Some(off) = a.frame_off {
                if off < 0 {
                    self.s.frame.free(off, a.spill_size());
                }
            }
        }
    }

    // ---- assignments -----------------------------------------------------------

    fn ensure_assignment(&mut self, v: ValueRef) {
        if self.s.assignments.contains(v) {
            return;
        }
        let live = self
            .analysis
            .liveness
            .get(v.idx())
            .copied()
            .unwrap_or_default();
        let nparts = self.adapter.val_part_count(v).max(1);
        let mut parts = PartList::new();
        for p in 0..nparts {
            parts.push(PartState {
                reg: None,
                size: self.adapter.val_part_size(v, p).max(1),
                bank: self.adapter.val_part_bank(v, p),
                in_mem: false,
                fixed: false,
                recompute: None,
            });
        }
        let (last_pos, last_full, uses) = if self.opts.assume_all_live {
            (self.analysis.layout.len() as u32 - 1, true, u32::MAX / 2)
        } else {
            (live.last, live.last_full, live.uses)
        };
        self.s.assignments.insert(
            v,
            Assignment {
                frame_off: None,
                remaining_uses: uses,
                last_pos,
                last_full,
                parts,
            },
        );
    }

    fn ensure_frame_slot(&mut self, v: ValueRef) -> i32 {
        self.ensure_assignment(v);
        let a = self.s.assignments.get(v).unwrap();
        if let Some(off) = a.frame_off {
            return off;
        }
        let size = a.spill_size();
        let off = self.s.frame.alloc(size, 8);
        self.s.assignments.get_mut(v).unwrap().frame_off = Some(off);
        off
    }

    /// Remaining (not yet observed) uses of a value.
    pub fn remaining_uses(&self, v: ValueRef) -> u32 {
        self.s
            .assignments
            .get(v)
            .map(|a| a.remaining_uses)
            .unwrap_or(0)
    }

    // ---- operand handles ---------------------------------------------------------

    /// Obtains a handle to one part of an operand value; counts as one use
    /// (for part 0).
    pub fn val_ref(&mut self, v: ValueRef, part: u32) -> Result<ValuePartRef> {
        let bank = self.adapter.val_part_bank(v, part);
        let size = self.adapter.val_part_size(v, part).max(1);
        if self.adapter.val_is_const(v) {
            return Ok(ValuePartRef {
                val: v,
                part,
                bank,
                size,
                is_const: true,
                const_val: self.adapter.val_const_data(v, part),
            });
        }
        self.ensure_assignment(v);
        if part == 0 {
            let a = self.s.assignments.get_mut(v).unwrap();
            if a.remaining_uses > 0 {
                a.remaining_uses -= 1;
                if a.remaining_uses == 0 {
                    self.s.maybe_dead.push(v);
                }
            }
        }
        Ok(ValuePartRef {
            val: v,
            part,
            bank,
            size,
            is_const: false,
            const_val: 0,
        })
    }

    /// Whether a value part is currently spilled (only in memory), and at
    /// which frame offset — used by back-ends that can fold memory operands.
    pub fn val_mem_loc(&self, p: &ValuePartRef) -> Option<i32> {
        if p.is_const {
            return None;
        }
        let a = self.s.assignments.get(p.val)?;
        let ps = &a.parts[p.part as usize];
        if ps.reg.is_none() && ps.in_mem {
            a.frame_off.map(|off| off + a.part_offset(p.part))
        } else {
            None
        }
    }

    /// Current register of a value part, if it happens to be in one.
    pub fn val_cur_reg(&self, p: &ValuePartRef) -> Option<Reg> {
        self.s
            .assignments
            .get(p.val)
            .and_then(|a| a.parts[p.part as usize].reg)
    }

    /// Whether this handle observes the last use of the value (so its
    /// register may be reused for a result).
    pub fn val_is_last_use(&self, p: &ValuePartRef) -> bool {
        if p.is_const {
            return false;
        }
        match self.s.assignments.get(p.val) {
            Some(a) => {
                a.remaining_uses == 0
                    && a.last_pos == self.cur_pos
                    && !a.last_full
                    && !a.parts[p.part as usize].fixed
            }
            None => false,
        }
    }

    /// Ensures the value part is in a register and returns it. The register
    /// is locked until the end of the instruction.
    pub fn val_as_reg(&mut self, p: &ValuePartRef) -> Result<Reg> {
        self.val_as_reg_impl(p, None)
    }

    /// Like [`FuncCodeGen::val_as_reg`], but restricts the register to the
    /// given set (instruction constraints like x86 shifts using `cl`).
    pub fn val_as_reg_in(&mut self, p: &ValuePartRef, allowed: RegSet) -> Result<Reg> {
        self.val_as_reg_impl(p, Some(allowed))
    }

    fn val_as_reg_impl(&mut self, p: &ValuePartRef, allowed: Option<RegSet>) -> Result<Reg> {
        if p.is_const {
            let reg = self.alloc_reg(p.bank, allowed)?;
            self.target
                .emit_const(self.buf, p.bank, p.size, reg, p.const_val);
            self.regfile.set_owner(reg, RegOwner::Scratch);
            self.lock_for_inst(reg);
            self.s.inst_scratch.push(reg);
            return Ok(reg);
        }
        self.ensure_assignment(p.val);
        let cur = self.s.assignments.get(p.val).unwrap().parts[p.part as usize];
        if let Some(reg) = cur.reg {
            if allowed.is_none_or(|set| set.contains(reg)) {
                self.lock_for_inst(reg);
                return Ok(reg);
            }
            // move to a register within the constraint set
            let dst = self.alloc_reg(p.bank, allowed)?;
            self.target
                .emit_mov_rr(self.buf, p.bank, 8.max(p.size), dst, reg);
            self.stats.moves += 1;
            if !cur.fixed {
                self.regfile.clear(reg);
                let a = self.s.assignments.get_mut(p.val).unwrap();
                a.parts[p.part as usize].reg = Some(dst);
                self.regfile.set_owner(dst, RegOwner::Value(p.val, p.part));
            } else {
                // fixed values stay in their register; the copy is a scratch
                self.regfile.set_owner(dst, RegOwner::Scratch);
                self.s.inst_scratch.push(dst);
            }
            self.lock_for_inst(dst);
            return Ok(dst);
        }
        // not in a register: materialize
        let reg = self.alloc_reg(p.bank, allowed)?;
        let a = self.s.assignments.get(p.val).unwrap();
        let ps = a.parts[p.part as usize];
        let frame_off = a.frame_off.map(|o| o + a.part_offset(p.part));
        match (ps.recompute, frame_off, ps.in_mem) {
            (Some(Recompute::StackAddr(off)), _, _) => {
                self.target.emit_frame_addr(self.buf, reg, off);
            }
            (Some(Recompute::Const(c)), _, _) => {
                self.target.emit_const(self.buf, p.bank, p.size, reg, c);
            }
            (None, Some(off), true) => {
                self.target
                    .emit_frame_load(self.buf, p.bank, p.size, reg, off);
                self.stats.reloads += 1;
            }
            _ => {
                // Undefined value (e.g. LLVM `undef`): materialize zero.
                self.target.emit_const(self.buf, p.bank, p.size, reg, 0);
            }
        }
        let a = self.s.assignments.get_mut(p.val).unwrap();
        a.parts[p.part as usize].reg = Some(reg);
        self.regfile.set_owner(reg, RegOwner::Value(p.val, p.part));
        self.lock_for_inst(reg);
        Ok(reg)
    }

    // ---- results & scratch registers -------------------------------------------------

    /// Allocates a register for one part of an instruction result.
    pub fn result_reg(&mut self, v: ValueRef, part: u32) -> Result<Reg> {
        self.ensure_assignment(v);
        let bank = self.adapter.val_part_bank(v, part);
        let reg = self.alloc_reg(bank, None)?;
        let a = self.s.assignments.get_mut(v).unwrap();
        a.parts[part as usize].reg = Some(reg);
        a.parts[part as usize].in_mem = false;
        self.regfile.set_owner(reg, RegOwner::Value(v, part));
        self.lock_for_inst(reg);
        Ok(reg)
    }

    /// Allocates a register for a result, reusing the operand's register if
    /// this is the operand's last use (otherwise a copy is emitted). This is
    /// the `result_ref_will_overwrite` pattern from the paper's Listing 1.
    pub fn result_reuse(&mut self, v: ValueRef, part: u32, op: &ValuePartRef) -> Result<Reg> {
        if !op.is_const && self.val_is_last_use(op) {
            if let Some(reg) = self.val_cur_reg(op) {
                // transfer ownership from the dying operand to the result
                if let Some(a) = self.s.assignments.get_mut(op.val) {
                    a.parts[op.part as usize].reg = None;
                }
                self.ensure_assignment(v);
                let a = self.s.assignments.get_mut(v).unwrap();
                a.parts[part as usize].reg = Some(reg);
                a.parts[part as usize].in_mem = false;
                self.regfile.set_owner(reg, RegOwner::Value(v, part));
                self.lock_for_inst(reg);
                return Ok(reg);
            }
        }
        let src = self.val_as_reg(op)?;
        let dst = self.result_reg(v, part)?;
        let bank = self.adapter.val_part_bank(v, part);
        self.target
            .emit_mov_rr(self.buf, bank, 8.max(op.size), dst, src);
        self.stats.moves += 1;
        Ok(dst)
    }

    /// Allocates an unevictable scratch register, released at the end of the
    /// instruction (or explicitly via [`FuncCodeGen::free_scratch`]).
    pub fn alloc_scratch(&mut self, bank: RegBank) -> Result<Reg> {
        let reg = self.alloc_reg(bank, None)?;
        self.regfile.set_owner(reg, RegOwner::Scratch);
        self.lock_for_inst(reg);
        self.s.inst_scratch.push(reg);
        Ok(reg)
    }

    /// Allocates a scratch register from a constrained set.
    pub fn alloc_scratch_in(&mut self, bank: RegBank, allowed: RegSet) -> Result<Reg> {
        let reg = self.alloc_reg(bank, Some(allowed))?;
        self.regfile.set_owner(reg, RegOwner::Scratch);
        self.lock_for_inst(reg);
        self.s.inst_scratch.push(reg);
        Ok(reg)
    }

    /// Releases a scratch register before the end of the instruction.
    pub fn free_scratch(&mut self, reg: Reg) {
        if let Some(idx) = self.s.inst_scratch.iter().position(|&r| r == reg) {
            self.s.inst_scratch.swap_remove(idx);
        }
        if self.regfile.owner(reg) == Some(RegOwner::Scratch) {
            self.regfile.clear(reg);
        }
    }

    /// Declares that a value part now lives in `reg` (typically a scratch
    /// register the instruction's result ended up in).
    pub fn set_result_reg(&mut self, v: ValueRef, part: u32, reg: Reg) {
        self.ensure_assignment(v);
        if let Some(idx) = self.s.inst_scratch.iter().position(|&r| r == reg) {
            self.s.inst_scratch.swap_remove(idx);
        }
        let a = self.s.assignments.get_mut(v).unwrap();
        a.parts[part as usize].reg = Some(reg);
        a.parts[part as usize].in_mem = false;
        self.regfile.set_owner(reg, RegOwner::Value(v, part));
        self.lock_for_inst(reg);
    }

    /// Marks the end of an instruction: releases operand locks and scratch
    /// registers and frees values whose last use was in this instruction.
    pub fn end_inst(&mut self) {
        for reg in std::mem::take(&mut self.s.inst_scratch) {
            if self.regfile.owner(reg) == Some(RegOwner::Scratch) {
                self.regfile.clear(reg);
            }
        }
        self.regfile.unlock_all();
        self.s.inst_locked.clear();
        let dead = std::mem::take(&mut self.s.maybe_dead);
        for v in dead {
            if let Some(a) = self.s.assignments.get(v) {
                if a.remaining_uses == 0 && a.last_pos == self.cur_pos && !a.last_full {
                    self.free_value(v);
                }
            }
        }
    }

    fn lock_for_inst(&mut self, reg: Reg) {
        self.regfile.lock(reg);
        self.s.inst_locked.push(reg);
    }

    // ---- register allocation ------------------------------------------------------

    fn alloc_reg(&mut self, bank: RegBank, within: Option<RegSet>) -> Result<Reg> {
        let reg = if let Some(r) = self.regfile.find_free(bank, RegSet::empty(), within) {
            r
        } else {
            let victim = self
                .regfile
                .pick_eviction(bank, RegSet::empty(), within)
                .ok_or(Error::RegisterExhausted { bank: bank.name() })?;
            self.evict(victim)?;
            victim
        };
        if self.target.call_conv().callee_saved.contains(reg) {
            self.used_callee_saved.insert(reg);
        }
        Ok(reg)
    }

    fn evict(&mut self, reg: Reg) -> Result<()> {
        match self.regfile.owner(reg) {
            Some(RegOwner::Value(v, p)) => {
                self.spill_part_if_needed(v, p)?;
                if let Some(a) = self.s.assignments.get_mut(v) {
                    a.parts[p as usize].reg = None;
                }
                self.regfile.clear(reg);
            }
            Some(RegOwner::Scratch) | None => {
                self.regfile.clear(reg);
            }
        }
        Ok(())
    }

    fn spill_part_if_needed(&mut self, v: ValueRef, p: u32) -> Result<()> {
        let Some(a) = self.s.assignments.get(v) else {
            return Ok(());
        };
        let ps = a.parts[p as usize];
        let live = a.remaining_uses > 0
            || a.last_pos > self.cur_pos
            || (a.last_pos == self.cur_pos && a.last_full);
        if !live || ps.in_mem || ps.recompute.is_some() || ps.fixed {
            return Ok(());
        }
        let Some(reg) = ps.reg else { return Ok(()) };
        let off = self.ensure_frame_slot(v);
        let a = self.s.assignments.get(v).unwrap();
        let part_off = off + a.part_offset(p);
        self.target
            .emit_frame_store(self.buf, ps.bank, ps.size, part_off, reg);
        self.stats.spills += 1;
        self.s.assignments.get_mut(v).unwrap().parts[p as usize].in_mem = true;
        Ok(())
    }

    fn spill_all_register_values(&mut self) -> Result<()> {
        self.s.owned_regs.clear();
        self.regfile.value_owned_into(&mut self.s.owned_regs);
        for i in 0..self.s.owned_regs.len() {
            let (reg, v, p) = self.s.owned_regs[i];
            if self.regfile.is_fixed(reg) {
                continue;
            }
            self.spill_part_if_needed(v, p)?;
        }
        Ok(())
    }

    // ---- branches & phi handling -----------------------------------------------------

    /// Spills all live register-resident values before a branch, if required
    /// by any successor (§3.4.5: values must be in a well-known location
    /// when entering a block with multiple or non-fallthrough predecessors).
    pub fn spill_before_branch(&mut self) -> Result<()> {
        let block = self.cur_block();
        let succs = self.adapter.block_succs(block);
        let need = succs.iter().any(|&s| !self.succ_keeps_state(s));
        if need {
            self.spill_all_register_values()?;
        }
        // Determine whether the register state stays valid for the next
        // layout block.
        let next_pos = self.cur_pos + 1;
        self.state_valid_next = (next_pos as usize) < self.analysis.layout.len() && {
            let next = self.analysis.layout[next_pos as usize];
            self.analysis.num_preds[next.idx()] == 1 && succs.contains(&next)
        };
        Ok(())
    }

    fn succ_keeps_state(&self, succ: BlockRef) -> bool {
        self.analysis.num_preds[succ.idx()] == 1 && self.analysis.pos(succ) == self.cur_pos + 1
    }

    /// Returns the label a conditional branch should target for `succ`.
    /// If the edge requires phi moves, a critical-edge block is created and
    /// its label returned; the block is emitted by
    /// [`FuncCodeGen::finish_terminator`] (called automatically at the end of
    /// the block).
    pub fn branch_target(&mut self, succ: BlockRef) -> Result<Label> {
        let mut moves = std::mem::take(&mut self.s.move_scratch);
        moves.clear();
        let result = self.phi_moves_for_edge(succ, &mut moves);
        let out = match result {
            Err(e) => Err(e),
            Ok(()) if moves.is_empty() => Ok(self.block_label(succ)),
            Ok(()) => {
                let succ_label = self.block_label(succ);
                let label = self.buf.new_label();
                let start = self.s.edge_moves.len() as u32;
                self.s.edge_moves.extend_from_slice(&moves);
                self.s.pending_edges.push(PendingEdge {
                    label,
                    succ_label,
                    moves_start: start,
                    moves_end: start + moves.len() as u32,
                });
                Ok(label)
            }
        };
        self.s.move_scratch = moves;
        out
    }

    /// Finishes the terminator along the "fallthrough" edge: emits phi moves
    /// inline and a jump to `succ` unless the block can fall through.
    pub fn terminator_fallthrough(&mut self, succ: BlockRef) -> Result<()> {
        let mut moves = std::mem::take(&mut self.s.move_scratch);
        moves.clear();
        let result = self
            .phi_moves_for_edge(succ, &mut moves)
            .and_then(|()| self.emit_parallel_moves(&moves));
        self.s.move_scratch = moves;
        result?;
        let succ_pos = self.analysis.pos(succ);
        let fallthrough = succ_pos == self.cur_pos + 1 && self.s.pending_edges.is_empty();
        if !fallthrough {
            let label = self.block_label(succ);
            self.target.emit_jump(self.buf, label);
        }
        Ok(())
    }

    /// Emits any pending critical-edge blocks. Called automatically after the
    /// last instruction of each block; calling it again is a no-op.
    pub fn finish_terminator(&mut self) -> Result<()> {
        let edges = std::mem::take(&mut self.s.pending_edges);
        let edge_moves = std::mem::take(&mut self.s.edge_moves);
        let mut result = Ok(());
        for e in &edges {
            self.buf.bind_label(e.label);
            let moves = &edge_moves[e.moves_start as usize..e.moves_end as usize];
            if let Err(err) = self.emit_parallel_moves(moves) {
                result = Err(err);
                break;
            }
            self.target.emit_jump(self.buf, e.succ_label);
        }
        // hand the buffers back (cleared) so their capacity is reused
        self.s.pending_edges = edges;
        self.s.pending_edges.clear();
        self.s.edge_moves = edge_moves;
        self.s.edge_moves.clear();
        result
    }

    /// Computes the phi moves of the edge `cur_block -> succ` into `out`.
    fn phi_moves_for_edge(&mut self, succ: BlockRef, out: &mut Vec<MoveDesc>) -> Result<()> {
        let pred = self.cur_block();
        let adapter = self.adapter;
        for &phi in adapter.block_phis(succ) {
            let incoming = adapter.phi_incoming(phi);
            let Some(inc) = incoming.iter().find(|i| i.block == pred) else {
                return Err(Error::InvalidIr(format!(
                    "phi {:?} has no incoming value for predecessor {:?}",
                    phi, pred
                )));
            };
            let src_val = inc.value;
            if src_val == phi {
                continue;
            }
            self.ensure_assignment(phi);
            let nparts = adapter.val_part_count(phi);
            for p in 0..nparts {
                let bank = adapter.val_part_bank(phi, p);
                let size = adapter.val_part_size(phi, p).max(1);
                // destination: fixed register or stack slot
                let dst = {
                    let fixed_reg = self.s.assignments.get(phi).and_then(|a| {
                        let ps = &a.parts[p as usize];
                        if ps.fixed {
                            ps.reg
                        } else {
                            None
                        }
                    });
                    match fixed_reg {
                        Some(r) => MoveLoc::Reg(r),
                        None => {
                            let off = self.ensure_frame_slot(phi);
                            let a = self.s.assignments.get(phi).unwrap();
                            MoveLoc::Frame(off + a.part_offset(p))
                        }
                    }
                };
                let src = self.canonical_loc(src_val, p)?;
                if src != dst {
                    out.push(MoveDesc {
                        dst,
                        src,
                        bank,
                        size,
                    });
                }
            }
        }
        Ok(())
    }

    /// Canonical (stable) location of a value part: constant, fixed/current
    /// register, or stack slot.
    fn canonical_loc(&mut self, v: ValueRef, part: u32) -> Result<MoveLoc> {
        if self.adapter.val_is_const(v) {
            return Ok(MoveLoc::Const(self.adapter.val_const_data(v, part)));
        }
        self.ensure_assignment(v);
        let a = self.s.assignments.get(v).unwrap();
        let ps = a.parts[part as usize];
        if let Some(r) = ps.reg {
            return Ok(MoveLoc::Reg(r));
        }
        if let Some(rc) = ps.recompute {
            return Ok(match rc {
                Recompute::Const(c) => MoveLoc::Const(c),
                Recompute::StackAddr(_) => {
                    // addresses of stack slots must be materialized; treat as
                    // a constant 0 source only if this ever happens for phis
                    // (back-ends materialize stack addresses explicitly).
                    MoveLoc::Const(0)
                }
            });
        }
        if ps.in_mem {
            if let Some(off) = a.frame_off {
                return Ok(MoveLoc::Frame(off + a.part_offset(part)));
            }
        }
        // Undefined along this path.
        Ok(MoveLoc::Const(0))
    }

    fn cycle_temp_slot(&mut self) -> i32 {
        if let Some(off) = self.cycle_temp {
            return off;
        }
        let off = self.s.frame.alloc(8, 8);
        self.cycle_temp = Some(off);
        off
    }

    fn emit_parallel_moves(&mut self, moves: &[MoveDesc]) -> Result<()> {
        let mut pending = std::mem::take(&mut self.s.pm_pending);
        pending.clear();
        pending.extend(moves.iter().filter(|m| m.dst != m.src).copied());
        let mut result = Ok(());
        while !pending.is_empty() {
            let ready = pending
                .iter()
                .position(|m| !pending.iter().any(|o| o.src == m.dst));
            let step = match ready {
                Some(i) => {
                    let m = pending.swap_remove(i);
                    self.emit_move(&m)
                }
                None => {
                    // break a cycle: park the first move's source in a temp slot
                    let m0 = pending[0];
                    let temp = MoveLoc::Frame(self.cycle_temp_slot());
                    let parked = self.emit_move(&MoveDesc {
                        dst: temp,
                        src: m0.src,
                        bank: m0.bank,
                        size: m0.size,
                    });
                    for m in pending.iter_mut() {
                        if m.src == m0.src {
                            m.src = temp;
                        }
                    }
                    parked
                }
            };
            if let Err(e) = step {
                result = Err(e);
                break;
            }
        }
        pending.clear();
        self.s.pm_pending = pending;
        result
    }

    fn emit_move(&mut self, m: &MoveDesc) -> Result<()> {
        let buf = &mut *self.buf;
        match (m.dst, m.src) {
            (MoveLoc::Reg(d), MoveLoc::Reg(s)) => {
                self.target.emit_mov_rr(buf, m.bank, 8.max(m.size), d, s);
                self.stats.moves += 1;
            }
            (MoveLoc::Reg(d), MoveLoc::Frame(off)) => {
                self.target.emit_frame_load(buf, m.bank, m.size, d, off);
                self.stats.reloads += 1;
            }
            (MoveLoc::Reg(d), MoveLoc::Const(c)) => {
                self.target.emit_const(buf, m.bank, m.size, d, c);
                self.stats.moves += 1;
            }
            (MoveLoc::Frame(off), MoveLoc::Reg(s)) => {
                self.target.emit_frame_store(buf, m.bank, m.size, off, s);
                self.stats.spills += 1;
            }
            (MoveLoc::Frame(doff), MoveLoc::Frame(soff)) => {
                let scratch = match m.bank {
                    RegBank::GP => self.target.scratch_gp(),
                    RegBank::FP => self.target.scratch_fp(),
                };
                self.target
                    .emit_frame_load(buf, m.bank, m.size, scratch, soff);
                self.target
                    .emit_frame_store(buf, m.bank, m.size, doff, scratch);
                self.stats.moves += 2;
            }
            (MoveLoc::Frame(doff), MoveLoc::Const(c)) => {
                let scratch = self.target.scratch_gp();
                self.target.emit_const(buf, RegBank::GP, m.size, scratch, c);
                self.target
                    .emit_frame_store(buf, RegBank::GP, m.size, doff, scratch);
                self.stats.moves += 2;
            }
            (MoveLoc::Const(_), _) => {
                return Err(Error::InvalidIr("constant as move destination".into()));
            }
        }
        Ok(())
    }

    // ---- returns & calls ------------------------------------------------------------

    /// Moves the given value parts into the ABI return registers and emits
    /// the epilogue and return.
    pub fn emit_return(&mut self, parts: &[ValuePartRef]) -> Result<()> {
        let cc = self.target.call_conv();
        self.s.parts_desc.clear();
        self.s
            .parts_desc
            .extend(parts.iter().map(|p| (p.bank, p.size)));
        self.s.ret_regs.clear();
        if !cc.assign_rets_into(&self.s.parts_desc, &mut self.s.ret_regs) {
            return Err(Error::Unsupported(
                "return value does not fit in registers".into(),
            ));
        }
        // Materialize sources into registers first so the parallel move only
        // deals with registers and constants.
        let mut moves = std::mem::take(&mut self.s.move_scratch);
        moves.clear();
        let mut prep = Ok(());
        for (i, p) in parts.iter().enumerate() {
            let dst = self.s.ret_regs[i];
            let src = if p.is_const {
                MoveLoc::Const(p.const_val)
            } else {
                match self.val_cur_reg(p) {
                    Some(r) => MoveLoc::Reg(r),
                    None => match self.val_as_reg(p) {
                        Ok(r) => MoveLoc::Reg(r),
                        Err(e) => {
                            prep = Err(e);
                            break;
                        }
                    },
                }
            };
            moves.push(MoveDesc {
                dst: MoveLoc::Reg(dst),
                src,
                bank: p.bank,
                size: p.size,
            });
        }
        let result = prep.and_then(|()| self.emit_parallel_moves(&moves));
        self.s.move_scratch = moves;
        result?;
        self.target
            .emit_epilogue_and_ret(self.buf, &mut self.frame_state);
        self.state_valid_next = false;
        Ok(())
    }

    /// Emits an epilogue and return without a return value.
    pub fn emit_return_void(&mut self) -> Result<()> {
        self.target
            .emit_epilogue_and_ret(self.buf, &mut self.frame_state);
        self.state_valid_next = false;
        Ok(())
    }

    /// Emits a call: spills caller-saved values, moves arguments into place
    /// (registers and stack), emits the call and binds the results to the
    /// ABI return registers.
    ///
    /// `rets` lists the `(value, part)` pairs the call defines, in ABI order.
    pub fn emit_call(
        &mut self,
        callee: CallTarget,
        args: &[ValuePartRef],
        rets: &[(ValueRef, u32)],
        vararg_fp_count: Option<u8>,
    ) -> Result<()> {
        let target = self.target;
        let cc = target.call_conv();

        // 1. spill caller-saved registers holding values that live past the
        //    call. The register associations stay valid until the call so
        //    argument values that only live in registers can still be read.
        self.s.owned_regs.clear();
        self.regfile.value_owned_into(&mut self.s.owned_regs);
        for i in 0..self.s.owned_regs.len() {
            let (reg, v, p) = self.s.owned_regs[i];
            if !cc.caller_saved.contains(reg) {
                continue;
            }
            self.spill_part_if_needed(v, p)?;
        }

        // 2. assign argument locations
        self.s.parts_desc.clear();
        self.s
            .parts_desc
            .extend(args.iter().map(|a| (a.bank, a.size)));
        self.s.arg_locs.clear();
        let arg_stack_bytes = cc.assign_args_into(&self.s.parts_desc, &mut self.s.arg_locs);
        let stack_bytes = (arg_stack_bytes + cc.stack_align - 1) & !(cc.stack_align - 1);
        if stack_bytes > 0 {
            self.target.emit_sp_adjust(self.buf, -(stack_bytes as i32));
        }

        // 3. stack arguments: materialize through the scratch register
        //    (argument registers are still untouched here).
        for (i, arg) in args.iter().enumerate() {
            if let ArgLoc::Stack(off) = self.s.arg_locs[i] {
                let scratch = match arg.bank {
                    RegBank::GP => self.target.scratch_gp(),
                    RegBank::FP => self.target.scratch_fp(),
                };
                self.materialize_into(scratch, arg)?;
                self.target
                    .emit_sp_store(self.buf, arg.bank, arg.size, off, scratch);
            }
        }

        // 3b. an indirect call target is moved into the scratch register
        //     before the argument registers are overwritten.
        let indirect = match &callee {
            CallTarget::Indirect(vp) => {
                let scratch = self.target.scratch_gp();
                self.materialize_into(scratch, vp)?;
                Some(scratch)
            }
            CallTarget::Sym(_) => None,
        };

        // 4. register arguments. Sources may themselves sit in argument
        //    registers, so this is a parallel-move problem; values that are
        //    trivially recomputable are materialized afterwards (their
        //    sources cannot be clobbered by the moves).
        let mut moves = std::mem::take(&mut self.s.move_scratch);
        moves.clear();
        self.s.recompute_args.clear();
        for (i, arg) in args.iter().enumerate() {
            let ArgLoc::Reg(r) = self.s.arg_locs[i] else {
                continue;
            };
            if arg.is_const {
                moves.push(MoveDesc {
                    dst: MoveLoc::Reg(r),
                    src: MoveLoc::Const(arg.const_val),
                    bank: arg.bank,
                    size: arg.size,
                });
                continue;
            }
            let a = self.s.assignments.get(arg.val);
            let ps = a.map(|a| a.parts[arg.part as usize]);
            match ps {
                Some(ps) if ps.reg.is_some() => moves.push(MoveDesc {
                    dst: MoveLoc::Reg(r),
                    src: MoveLoc::Reg(ps.reg.unwrap()),
                    bank: arg.bank,
                    size: arg.size,
                }),
                Some(ps) if ps.recompute.is_some() => self.s.recompute_args.push((r, *arg)),
                Some(ps) if ps.in_mem => {
                    let a = a.unwrap();
                    moves.push(MoveDesc {
                        dst: MoveLoc::Reg(r),
                        src: MoveLoc::Frame(a.frame_off.unwrap_or(0) + a.part_offset(arg.part)),
                        bank: arg.bank,
                        size: arg.size,
                    });
                }
                _ => moves.push(MoveDesc {
                    dst: MoveLoc::Reg(r),
                    src: MoveLoc::Const(0),
                    bank: arg.bank,
                    size: arg.size,
                }),
            }
        }
        let moved = self.emit_parallel_moves(&moves);
        self.s.move_scratch = moves;
        moved?;
        for i in 0..self.s.recompute_args.len() {
            let (r, arg) = self.s.recompute_args[i];
            self.materialize_into(r, &arg)?;
        }

        if let Some(n) = vararg_fp_count {
            self.target.emit_vararg_fp_count(self.buf, n);
        }

        // 5. the call itself; afterwards every caller-saved register is
        //    considered clobbered. With patchable calls enabled, direct
        //    calls to module-local functions (whose symbol ids index the
        //    predeclared prefix) are routed through the call-slot table.
        match callee {
            CallTarget::Sym(sym) => {
                let routed = self.tier.patchable_calls
                    && (sym.0 as usize) < self.adapter.func_count()
                    && match self.tier_syms {
                        Some((_, slots)) => self.target.emit_call_slot(self.buf, slots, sym.0),
                        None => false,
                    };
                if !routed {
                    self.target.emit_call_sym(self.buf, sym);
                }
            }
            CallTarget::Indirect(_) => self.target.emit_call_reg(self.buf, indirect.unwrap()),
        }
        self.s.owned_regs.clear();
        self.regfile.value_owned_into(&mut self.s.owned_regs);
        for i in 0..self.s.owned_regs.len() {
            let (reg, v, p) = self.s.owned_regs[i];
            if !cc.caller_saved.contains(reg) {
                continue;
            }
            if let Some(a) = self.s.assignments.get_mut(v) {
                a.parts[p as usize].reg = None;
            }
            self.regfile.clear(reg);
        }

        if stack_bytes > 0 {
            self.target.emit_sp_adjust(self.buf, stack_bytes as i32);
        }

        // 6. bind results to the return registers
        if !rets.is_empty() {
            let adapter = self.adapter;
            self.s.parts_desc.clear();
            self.s.parts_desc.extend(
                rets.iter()
                    .map(|&(v, p)| (adapter.val_part_bank(v, p), adapter.val_part_size(v, p))),
            );
            self.s.ret_regs.clear();
            if !cc.assign_rets_into(&self.s.parts_desc, &mut self.s.ret_regs) {
                return Err(Error::Unsupported(
                    "call result does not fit in registers".into(),
                ));
            }
            for (i, &(v, p)) in rets.iter().enumerate() {
                let r = self.s.ret_regs[i];
                self.ensure_assignment(v);
                let a = self.s.assignments.get_mut(v).unwrap();
                a.parts[p as usize].reg = Some(r);
                a.parts[p as usize].in_mem = false;
                self.regfile.set_owner(r, RegOwner::Value(v, p));
                self.lock_for_inst(r);
            }
        }
        Ok(())
    }

    /// Materializes a value part into a specific register (used for call
    /// arguments and indirect call targets).
    pub fn materialize_into(&mut self, dst: Reg, p: &ValuePartRef) -> Result<()> {
        if p.is_const {
            self.target
                .emit_const(self.buf, p.bank, p.size, dst, p.const_val);
            return Ok(());
        }
        self.ensure_assignment(p.val);
        let a = self.s.assignments.get(p.val).unwrap();
        let ps = a.parts[p.part as usize];
        if let Some(r) = ps.reg {
            if r != dst {
                self.target
                    .emit_mov_rr(self.buf, p.bank, 8.max(p.size), dst, r);
                self.stats.moves += 1;
            }
            return Ok(());
        }
        if let Some(rc) = ps.recompute {
            match rc {
                Recompute::StackAddr(off) => self.target.emit_frame_addr(self.buf, dst, off),
                Recompute::Const(c) => self.target.emit_const(self.buf, p.bank, p.size, dst, c),
            }
            return Ok(());
        }
        if ps.in_mem {
            if let Some(off) = a.frame_off {
                let off = off + a.part_offset(p.part);
                self.target
                    .emit_frame_load(self.buf, p.bank, p.size, dst, off);
                self.stats.reloads += 1;
                return Ok(());
            }
        }
        // undefined
        self.target.emit_const(self.buf, p.bank, p.size, dst, 0);
        Ok(())
    }

    /// Allocates (or returns) the frame slot of a value and reports its
    /// frame offset; used by back-ends that implement `alloca`-style stack
    /// variables or need to pass values by memory.
    pub fn value_frame_slot(&mut self, v: ValueRef) -> i32 {
        self.ensure_frame_slot(v)
    }

    /// Ensures the value part has an up-to-date copy in its stack slot (used
    /// by instruction compilers before an instruction that clobbers the
    /// operand's register, e.g. x86-64 division).
    pub fn ensure_spilled(&mut self, p: &ValuePartRef) -> Result<()> {
        if p.is_const {
            return Ok(());
        }
        self.spill_part_if_needed(p.val, p.part)
    }

    /// Breaks the association between a register and the value that was in
    /// it, without spilling. Used after instructions with fixed-register
    /// outputs clobbered the register. The caller must have ensured the
    /// value is dead or has a memory copy (see [`FuncCodeGen::ensure_spilled`]).
    pub fn forget_reg(&mut self, reg: Reg) {
        if let Some(RegOwner::Value(v, p)) = self.regfile.owner(reg) {
            if let Some(a) = self.s.assignments.get_mut(v) {
                a.parts[p as usize].reg = None;
            }
        }
        self.regfile.clear(reg);
    }

    /// Declares that `reg` (e.g. a fixed instruction output such as `rax`
    /// after a division) now holds the given result value part, detaching
    /// whatever value was previously associated with the register without
    /// spilling it.
    pub fn take_reg_for_result(&mut self, v: ValueRef, part: u32, reg: Reg) {
        self.forget_reg(reg);
        self.ensure_assignment(v);
        let a = self.s.assignments.get_mut(v).unwrap();
        a.parts[part as usize].reg = Some(reg);
        a.parts[part as usize].in_mem = false;
        self.regfile.set_owner(reg, RegOwner::Value(v, part));
        self.lock_for_inst(reg);
    }

    /// The set of allocatable registers of a bank, minus the given
    /// exclusions; useful for expressing instruction register constraints.
    pub fn allocatable_set(&self, bank: RegBank, exclude: &[Reg]) -> RegSet {
        let mut set: RegSet = self.target.allocatable_regs(bank).iter().copied().collect();
        for r in exclude {
            set.remove(*r);
        }
        set
    }

    /// Allocates raw frame space (e.g. for dynamic temporary storage) and
    /// returns its frame offset.
    pub fn alloc_frame_space(&mut self, size: u32, align: u32) -> i32 {
        self.s.frame.alloc(size, align)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::{FuncRef, PhiIncoming};
    use crate::callconv::{sysv_x64, CallConv};
    use crate::target::TargetArch;

    // ----- a pseudo target that emits readable byte codes --------------------

    const OP_MOV: u8 = 0x01;
    const OP_STORE: u8 = 0x02;
    const OP_LOAD: u8 = 0x03;
    const OP_CONST: u8 = 0x04;
    const OP_JUMP: u8 = 0x05;
    const OP_RET: u8 = 0x06;

    struct MockTarget {
        cc: CallConv,
        gp: Vec<Reg>,
        fp: Vec<Reg>,
        fixed: Vec<Reg>,
    }

    impl MockTarget {
        fn new() -> MockTarget {
            let cc = sysv_x64();
            let gp: Vec<Reg> = [0u8, 7, 6, 2, 1, 8, 9, 3]
                .iter()
                .map(|&i| Reg::new(RegBank::GP, i))
                .collect();
            let fp: Vec<Reg> = (0..8).map(|i| Reg::new(RegBank::FP, i)).collect();
            let fixed = vec![Reg::new(RegBank::GP, 12), Reg::new(RegBank::GP, 13)];
            MockTarget { cc, gp, fp, fixed }
        }
    }

    impl Target for MockTarget {
        fn arch(&self) -> TargetArch {
            TargetArch::X86_64
        }
        fn call_conv(&self) -> &CallConv {
            &self.cc
        }
        fn allocatable_regs(&self, bank: RegBank) -> &[Reg] {
            match bank {
                RegBank::GP => &self.gp,
                RegBank::FP => &self.fp,
            }
        }
        fn fixed_reg_candidates(&self, bank: RegBank) -> &[Reg] {
            match bank {
                RegBank::GP => &self.fixed,
                RegBank::FP => &[],
            }
        }
        fn frame_reg(&self) -> Reg {
            Reg::new(RegBank::GP, 5)
        }
        fn scratch_gp(&self) -> Reg {
            Reg::new(RegBank::GP, 11)
        }
        fn scratch_fp(&self) -> Reg {
            Reg::new(RegBank::FP, 15)
        }
        fn callee_save_area_size(&self) -> u32 {
            48
        }
        fn emit_prologue(&self, buf: &mut CodeBuffer) -> FrameState {
            let start = buf.text_offset();
            buf.emit_u8(0xAA);
            FrameState {
                func_start: start,
                ..FrameState::default()
            }
        }
        fn emit_epilogue_and_ret(&self, buf: &mut CodeBuffer, _frame: &mut FrameState) {
            buf.emit_u8(OP_RET);
        }
        fn finish_func(&self, _: &mut CodeBuffer, _: &FrameState, _: u32, _: RegSet) {}
        fn emit_mov_rr(&self, buf: &mut CodeBuffer, _: RegBank, _: u32, dst: Reg, src: Reg) {
            buf.emit_u8(OP_MOV);
            buf.emit_u8(dst.compact() as u8);
            buf.emit_u8(src.compact() as u8);
        }
        fn emit_frame_store(&self, buf: &mut CodeBuffer, _: RegBank, _: u32, _off: i32, src: Reg) {
            buf.emit_u8(OP_STORE);
            buf.emit_u8(src.compact() as u8);
        }
        fn emit_frame_load(&self, buf: &mut CodeBuffer, _: RegBank, _: u32, dst: Reg, _off: i32) {
            buf.emit_u8(OP_LOAD);
            buf.emit_u8(dst.compact() as u8);
        }
        fn emit_frame_addr(&self, buf: &mut CodeBuffer, dst: Reg, _off: i32) {
            buf.emit_u8(0x07);
            buf.emit_u8(dst.compact() as u8);
        }
        fn emit_const(&self, buf: &mut CodeBuffer, _: RegBank, _: u32, dst: Reg, _v: u64) {
            buf.emit_u8(OP_CONST);
            buf.emit_u8(dst.compact() as u8);
        }
        fn emit_jump(&self, buf: &mut CodeBuffer, label: Label) {
            buf.emit_u8(OP_JUMP);
            let off = buf.text_offset();
            buf.emit_u32(0);
            buf.add_fixup(off, label, crate::codebuf::FixupKind::AbsTextOff32);
        }
        fn emit_call_sym(&self, buf: &mut CodeBuffer, _sym: SymbolId) {
            buf.emit_u8(0x08);
        }
        fn emit_call_reg(&self, buf: &mut CodeBuffer, _reg: Reg) {
            buf.emit_u8(0x09);
        }
        fn emit_sp_adjust(&self, buf: &mut CodeBuffer, _delta: i32) {
            buf.emit_u8(0x0A);
        }
        fn emit_sp_store(&self, buf: &mut CodeBuffer, _: RegBank, _: u32, _off: u32, _src: Reg) {
            buf.emit_u8(0x0B);
        }
    }

    // ----- a tiny IR for driving the code generator ----------------------------

    #[derive(Clone, Debug)]
    enum MiniOp {
        /// result = op0 + op1 (or just "define" when no operands)
        Add(u32, Vec<u32>),
        /// jump to block
        Jump(u32),
        /// conditional branch on value to (true, false)
        Branch(u32, u32, u32),
        /// return the given value
        Ret(Option<u32>),
    }

    /// Per block: (phi value, [(pred, incoming value)]).
    type PhiList = Vec<Vec<(u32, Vec<(u32, u32)>)>>;

    struct MiniIr {
        blocks: Vec<Vec<MiniOp>>,
        phis: PhiList,
        num_args: u32,
        num_values: usize,
        // dense index tables built by switch_func
        idx_args: Vec<ValueRef>,
        idx_succs: Vec<Vec<BlockRef>>,
        idx_phis: Vec<Vec<ValueRef>>,
        idx_insts: Vec<Vec<InstRef>>,
        idx_ops: Vec<Vec<ValueRef>>,
        idx_res: Vec<Vec<ValueRef>>,
        idx_phi_inc: Vec<Vec<PhiIncoming>>,
        /// flat instruction index -> (block, index within block)
        inst_index: Vec<(u32, u32)>,
    }

    impl MiniIr {
        fn new(num_blocks: usize, num_args: u32) -> MiniIr {
            MiniIr {
                blocks: vec![Vec::new(); num_blocks],
                phis: vec![Vec::new(); num_blocks],
                num_args,
                num_values: num_args as usize,
                idx_args: Vec::new(),
                idx_succs: Vec::new(),
                idx_phis: Vec::new(),
                idx_insts: Vec::new(),
                idx_ops: Vec::new(),
                idx_res: Vec::new(),
                idx_phi_inc: Vec::new(),
                inst_index: Vec::new(),
            }
        }
        fn push(&mut self, block: u32, op: MiniOp) {
            if let MiniOp::Add(r, _) = &op {
                self.num_values = self.num_values.max(*r as usize + 1);
            }
            self.blocks[block as usize].push(op);
        }
        fn phi(&mut self, block: u32, val: u32, inc: Vec<(u32, u32)>) {
            self.num_values = self.num_values.max(val as usize + 1);
            self.phis[block as usize].push((val, inc));
        }
        fn op(&self, inst: InstRef) -> &MiniOp {
            let (b, i) = self.inst_index[inst.idx()];
            &self.blocks[b as usize][i as usize]
        }
    }

    impl IrAdapter for MiniIr {
        fn func_count(&self) -> usize {
            1
        }
        fn func_name(&self, _: FuncRef) -> &str {
            "mini"
        }
        fn func_linkage(&self, _: FuncRef) -> Linkage {
            Linkage::External
        }
        fn func_is_definition(&self, _: FuncRef) -> bool {
            true
        }
        fn switch_func(&mut self, _: FuncRef) {
            self.idx_args = (0..self.num_args).map(ValueRef).collect();
            self.idx_succs = self
                .blocks
                .iter()
                .map(|blk| {
                    let mut out = Vec::new();
                    for op in blk {
                        match op {
                            MiniOp::Jump(t) => out.push(BlockRef(*t)),
                            MiniOp::Branch(_, t, f) => {
                                out.push(BlockRef(*t));
                                out.push(BlockRef(*f));
                            }
                            _ => {}
                        }
                    }
                    out
                })
                .collect();
            self.idx_phis = self
                .phis
                .iter()
                .map(|p| p.iter().map(|&(v, _)| ValueRef(v)).collect())
                .collect();
            self.idx_phi_inc = vec![Vec::new(); self.num_values];
            for blk in &self.phis {
                for (v, inc) in blk {
                    self.idx_phi_inc[*v as usize] = inc
                        .iter()
                        .map(|&(b, val)| PhiIncoming {
                            block: BlockRef(b),
                            value: ValueRef(val),
                        })
                        .collect();
                }
            }
            self.idx_insts.clear();
            self.idx_ops.clear();
            self.idx_res.clear();
            self.inst_index.clear();
            let mut next = 0u32;
            for (bi, blk) in self.blocks.iter().enumerate() {
                let mut refs = Vec::new();
                for (ii, op) in blk.iter().enumerate() {
                    refs.push(InstRef(next));
                    next += 1;
                    self.inst_index.push((bi as u32, ii as u32));
                    self.idx_ops.push(match op {
                        MiniOp::Add(_, ops) => ops.iter().map(|&v| ValueRef(v)).collect(),
                        MiniOp::Branch(c, _, _) => vec![ValueRef(*c)],
                        MiniOp::Ret(Some(v)) => vec![ValueRef(*v)],
                        _ => Vec::new(),
                    });
                    self.idx_res.push(match op {
                        MiniOp::Add(r, _) => vec![ValueRef(*r)],
                        _ => Vec::new(),
                    });
                }
                self.idx_insts.push(refs);
            }
        }
        fn value_count(&self) -> usize {
            self.num_values
        }
        fn inst_count(&self) -> usize {
            self.inst_index.len()
        }
        fn args(&self) -> &[ValueRef] {
            &self.idx_args
        }
        fn block_count(&self) -> usize {
            self.blocks.len()
        }
        fn block_succs(&self, block: BlockRef) -> &[BlockRef] {
            &self.idx_succs[block.idx()]
        }
        fn block_phis(&self, block: BlockRef) -> &[ValueRef] {
            &self.idx_phis[block.idx()]
        }
        fn block_insts(&self, block: BlockRef) -> &[InstRef] {
            &self.idx_insts[block.idx()]
        }
        fn phi_incoming(&self, phi: ValueRef) -> &[PhiIncoming] {
            &self.idx_phi_inc[phi.idx()]
        }
        fn inst_operands(&self, inst: InstRef) -> &[ValueRef] {
            &self.idx_ops[inst.idx()]
        }
        fn inst_results(&self, inst: InstRef) -> &[ValueRef] {
            &self.idx_res[inst.idx()]
        }
        fn val_part_count(&self, _: ValueRef) -> u32 {
            1
        }
        fn val_part_size(&self, _: ValueRef, _: u32) -> u32 {
            8
        }
        fn val_part_bank(&self, _: ValueRef, _: u32) -> RegBank {
            RegBank::GP
        }
    }

    struct MiniCompiler;

    impl InstCompiler<MiniIr, MockTarget> for MiniCompiler {
        fn compile_inst(
            &mut self,
            cg: &mut FuncCodeGen<'_, MiniIr, MockTarget>,
            inst: InstRef,
        ) -> Result<()> {
            let op = cg.adapter.op(inst).clone();
            match op {
                MiniOp::Add(res, ops) => {
                    if ops.is_empty() {
                        let r = cg.result_reg(ValueRef(res), 0)?;
                        cg.target.emit_const(cg.buf, RegBank::GP, 8, r, 1);
                    } else {
                        let lhs = cg.val_ref(ValueRef(ops[0]), 0)?;
                        let mut rest = Vec::new();
                        for o in &ops[1..] {
                            let r = cg.val_ref(ValueRef(*o), 0)?;
                            rest.push(cg.val_as_reg(&r)?);
                        }
                        let dst = cg.result_reuse(ValueRef(res), 0, &lhs)?;
                        // pretend to add: just emit a mov marker per operand
                        for r in rest {
                            cg.target.emit_mov_rr(cg.buf, RegBank::GP, 8, dst, r);
                        }
                    }
                    Ok(())
                }
                MiniOp::Jump(t) => {
                    cg.spill_before_branch()?;
                    cg.terminator_fallthrough(BlockRef(t))?;
                    Ok(())
                }
                MiniOp::Branch(c, t, f) => {
                    let cref = cg.val_ref(ValueRef(c), 0)?;
                    let _creg = cg.val_as_reg(&cref)?;
                    cg.spill_before_branch()?;
                    let taken = cg.branch_target(BlockRef(t))?;
                    // pretend conditional jump
                    cg.target.emit_jump(cg.buf, taken);
                    cg.terminator_fallthrough(BlockRef(f))?;
                    Ok(())
                }
                MiniOp::Ret(v) => {
                    cg.spill_before_branch()?;
                    match v {
                        Some(v) => {
                            let r = cg.val_ref(ValueRef(v), 0)?;
                            cg.emit_return(&[r])
                        }
                        None => cg.emit_return_void(),
                    }
                }
            }
        }
    }

    fn compile(ir: &mut MiniIr) -> CompiledModule {
        let cg = CodeGen::new(MockTarget::new(), CompileOptions::default());
        cg.compile_module(ir, &mut MiniCompiler).expect("compile")
    }

    #[test]
    fn straight_line_function_compiles() {
        let mut ir = MiniIr::new(1, 2);
        ir.push(0, MiniOp::Add(2, vec![0, 1]));
        ir.push(0, MiniOp::Ret(Some(2)));
        let m = compile(&mut ir);
        assert_eq!(m.stats.funcs, 1);
        assert_eq!(m.stats.insts, 2);
        assert!(m.text_size() > 0);
        // ends with mock RET
        assert_eq!(*m.buf.text().last().unwrap(), OP_RET);
        // function symbol defined with correct size
        let sym = m.buf.symbol_by_name("mini").unwrap();
        assert_eq!(m.buf.symbol(sym).size, m.text_size());
    }

    #[test]
    fn diamond_with_phi_compiles_and_resolves_labels() {
        let mut ir = MiniIr::new(4, 1);
        ir.push(0, MiniOp::Branch(0, 1, 2));
        ir.push(1, MiniOp::Add(1, vec![0, 0]));
        ir.push(1, MiniOp::Jump(3));
        ir.push(2, MiniOp::Add(2, vec![0]));
        ir.push(2, MiniOp::Jump(3));
        ir.phi(3, 3, vec![(1, 1), (2, 2)]);
        ir.push(3, MiniOp::Ret(Some(3)));
        let m = compile(&mut ir);
        assert_eq!(m.buf.pending_fixups(), 0, "all labels resolved");
        assert_eq!(m.stats.blocks, 4);
        assert!(m.stats.spills > 0, "values spilled before the join block");
    }

    #[test]
    fn loop_with_phi_uses_fixed_register() {
        // b0 -> b1(header, phi i) -> b2(latch: i' = i + i) -> b1 or b3(ret i')
        let mut ir = MiniIr::new(4, 1);
        ir.push(0, MiniOp::Jump(1));
        ir.phi(1, 1, vec![(0, 0), (2, 2)]);
        ir.push(1, MiniOp::Jump(2));
        ir.push(2, MiniOp::Add(2, vec![1, 1]));
        ir.push(2, MiniOp::Branch(2, 1, 3));
        ir.push(3, MiniOp::Ret(Some(2)));
        let m = compile(&mut ir);
        assert_eq!(m.buf.pending_fixups(), 0);
        assert_eq!(m.stats.funcs, 1);

        // with fixed loop registers disabled it must still compile
        let cg = CodeGen::new(
            MockTarget::new(),
            CompileOptions {
                fixed_loop_regs: false,
                ..CompileOptions::default()
            },
        );
        let m2 = cg.compile_module(&mut ir, &mut MiniCompiler).unwrap();
        assert_eq!(m2.stats.funcs, 1);
    }

    #[test]
    fn assume_all_live_increases_spills() {
        let mut ir = MiniIr::new(4, 1);
        ir.push(0, MiniOp::Branch(0, 1, 2));
        for b in [1u32, 2] {
            ir.push(b, MiniOp::Add(b + 10, vec![0, 0]));
            ir.push(b, MiniOp::Jump(3));
        }
        ir.phi(3, 20, vec![(1, 11), (2, 12)]);
        ir.push(3, MiniOp::Ret(Some(20)));
        let normal = compile(&mut ir);
        let cg = CodeGen::new(
            MockTarget::new(),
            CompileOptions {
                assume_all_live: true,
                ..CompileOptions::default()
            },
        );
        let all_live = cg.compile_module(&mut ir, &mut MiniCompiler).unwrap();
        assert!(
            all_live.stats.spills >= normal.stats.spills,
            "disabling liveness must not reduce spills"
        );
    }

    #[test]
    fn call_spills_caller_saved_and_binds_results() {
        // function: v1 = def; call; use v1 afterwards -> v1 must be spilled
        struct CallCompiler;
        impl InstCompiler<MiniIr, MockTarget> for CallCompiler {
            fn compile_inst(
                &mut self,
                cg: &mut FuncCodeGen<'_, MiniIr, MockTarget>,
                inst: InstRef,
            ) -> Result<()> {
                let op = cg.adapter.op(inst).clone();
                match op {
                    MiniOp::Add(res, ops) if ops.is_empty() => {
                        let r = cg.result_reg(ValueRef(res), 0)?;
                        cg.target.emit_const(cg.buf, RegBank::GP, 8, r, 7);
                        Ok(())
                    }
                    MiniOp::Add(res, ops) => {
                        // model "call result = f(ops...)"
                        let mut args = Vec::new();
                        for o in &ops {
                            args.push(cg.val_ref(ValueRef(*o), 0)?);
                        }
                        let sym = cg.buf.declare_symbol("callee", SymbolBinding::Global, true);
                        cg.emit_call(CallTarget::Sym(sym), &args, &[(ValueRef(res), 0)], None)?;
                        Ok(())
                    }
                    MiniOp::Ret(v) => {
                        let parts = match v {
                            Some(v) => vec![cg.val_ref(ValueRef(v), 0)?],
                            None => vec![],
                        };
                        if parts.is_empty() {
                            cg.emit_return_void()
                        } else {
                            cg.emit_return(&parts)
                        }
                    }
                    _ => Ok(()),
                }
            }
        }
        let mut ir = MiniIr::new(1, 1);
        ir.push(0, MiniOp::Add(1, vec![])); // v1 = 7
        ir.push(0, MiniOp::Add(2, vec![0])); // v2 = call(arg0)
        ir.push(0, MiniOp::Add(3, vec![1, 2])); // v3 = call(v1, v2) -- v1 live across first call
        ir.push(0, MiniOp::Ret(Some(3)));
        let cg = CodeGen::new(MockTarget::new(), CompileOptions::default());
        let m = cg.compile_module(&mut ir, &mut CallCompiler).unwrap();
        assert!(m.stats.spills >= 1, "v1 must be spilled across the call");
        let text = m.buf.text();
        assert!(text.contains(&0x08), "call byte emitted");
    }

    #[test]
    fn register_pressure_causes_eviction_not_failure() {
        // define 12 values (only 8 allocatable GP regs), then use each one
        let mut ir = MiniIr::new(1, 0);
        for i in 0..12u32 {
            ir.push(0, MiniOp::Add(1 + i, vec![]));
        }
        for i in 0..12u32 {
            ir.push(0, MiniOp::Add(20 + i, vec![1 + i, 1]));
        }
        ir.push(0, MiniOp::Ret(Some(31)));
        let m = compile(&mut ir);
        assert!(m.stats.spills > 0, "eviction spills under pressure");
        assert!(m.stats.reloads > 0, "evicted values reloaded at use");
    }
}
