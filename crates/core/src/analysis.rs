//! The analysis pass: loop detection, block layout and coarse liveness.
//!
//! Following the paper (§3.3), the pass performs four steps:
//!
//! 1. number all basic blocks so per-block data can live in arrays;
//! 2. identify loops with a single-DFS algorithm in the style of Wei et al.
//!    (tolerates irreducible control flow, needs no predecessor lists and no
//!    union-find); the whole function is wrapped in a pseudo root loop;
//! 3. compute the block layout: reverse post-order, with the additional rule
//!    that the blocks of a loop are laid out contiguously;
//! 4. compute, for every value, a coarse live range — a contiguous range of
//!    layout block indices, a flag whether liveness extends to the end of
//!    the last block, and the number of uses (Kohn et al. style).
//!
//! ## Reuse
//!
//! The pass runs once per function, so its working memory is designed to be
//! reused: [`Analyzer`] owns all scratch buffers and
//! [`Analyzer::analyze_into`] clears-and-refills a caller-owned [`Analysis`].
//! A module-level driver allocates one `Analyzer` and one `Analysis` and
//! reuses them for every function, so the steady-state compile loop performs
//! no analysis allocations. [`analyze`] is the convenience wrapper that
//! allocates fresh state for one-off use (tests, tools).

use crate::adapter::{BlockRef, IrAdapter, ValueRef};
use crate::error::{Error, Result};

/// A loop in the loop forest. Loop 0 is the pseudo root covering the whole
/// function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopInfo {
    /// Parent loop id (the root loop is its own parent).
    pub parent: u32,
    /// Nesting level; the root loop has level 0.
    pub level: u32,
    /// First block of the loop in layout order (inclusive).
    pub begin: u32,
    /// Last block of the loop in layout order (inclusive).
    pub end: u32,
    /// Layout index of the loop header (== `begin` for natural loops).
    pub header: u32,
    /// Number of blocks in the loop, including nested loops.
    pub num_blocks: u32,
}

/// Coarse live range of one IR value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveRange {
    /// Layout index of the first block the value is live in (its definition).
    pub first: u32,
    /// Layout index of the last block the value is live in.
    pub last: u32,
    /// If `true`, the value is live until the *end* of block `last`
    /// (e.g. because of a loop back edge or a phi use on an outgoing edge);
    /// otherwise it dies at its last use within the block.
    pub last_full: bool,
    /// Number of uses the code generator will observe.
    pub uses: u32,
    /// Whether the value has a definition (arguments, phis, instruction
    /// results and stack variables do; constants and unused numbers do not).
    pub defined: bool,
}

impl Default for LiveRange {
    fn default() -> Self {
        LiveRange {
            first: u32::MAX,
            last: 0,
            last_full: false,
            uses: 0,
            defined: false,
        }
    }
}

/// Result of the analysis pass for one function.
///
/// Designed for reuse: [`Analyzer::analyze_into`] clears and refills all
/// vectors, preserving their capacity across functions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Analysis {
    /// Blocks in layout (compilation) order.
    pub layout: Vec<BlockRef>,
    /// Mapping from block index ([`BlockRef::idx`]) to layout position.
    pub block_pos: Vec<u32>,
    /// Innermost loop id of each block, indexed by layout position.
    pub block_loop: Vec<u32>,
    /// The loop forest. Entry 0 is the pseudo root loop.
    pub loops: Vec<LoopInfo>,
    /// Live range per value, indexed by [`ValueRef::idx`].
    pub liveness: Vec<LiveRange>,
    /// Number of predecessors per block, indexed by block index.
    pub num_preds: Vec<u32>,
}

impl Analysis {
    /// Layout position of a block.
    #[inline]
    pub fn pos(&self, block: BlockRef) -> u32 {
        self.block_pos[block.idx()]
    }

    /// Live range of a value.
    #[inline]
    pub fn live(&self, val: ValueRef) -> &LiveRange {
        &self.liveness[val.idx()]
    }

    /// Innermost loop id of the block at a layout position.
    #[inline]
    pub fn loop_of_pos(&self, pos: u32) -> u32 {
        self.block_loop[pos as usize]
    }

    /// Whether the block at layout position `pos` is the header of a
    /// non-root loop with more than one block.
    pub fn is_loop_header(&self, pos: u32) -> bool {
        let l = self.loop_of_pos(pos) as usize;
        l != 0 && self.loops[l].header == pos && self.loops[l].num_blocks > 1
    }

    /// Nesting depth of the block at layout position `pos` (0 = not in a loop).
    pub fn loop_depth_of_pos(&self, pos: u32) -> u32 {
        self.loops[self.loop_of_pos(pos) as usize].level
    }
}

/// Explicit DFS stack entry: the block and the index of the next successor
/// to visit. Successors are re-queried from the adapter (a cheap slice
/// lookup), so frames stay small and allocation-free.
#[derive(Copy, Clone, Debug, Default)]
struct Frame {
    block: u32,
    next: u32,
}

#[derive(Debug, Default)]
struct LoopDiscovery {
    traversed: Vec<bool>,
    dfsp_pos: Vec<u32>,
    iloop_header: Vec<Option<u32>>,
    is_header: Vec<bool>,
    post_order: Vec<u32>,
    dfs_stack: Vec<Frame>,
}

impl LoopDiscovery {
    /// Clears all scratch state and resizes it for `n` blocks, preserving
    /// buffer capacity.
    fn reset(&mut self, n: usize) {
        self.traversed.clear();
        self.traversed.resize(n, false);
        self.dfsp_pos.clear();
        self.dfsp_pos.resize(n, 0);
        self.iloop_header.clear();
        self.iloop_header.resize(n, None);
        self.is_header.clear();
        self.is_header.resize(n, false);
        self.post_order.clear();
        self.dfs_stack.clear();
    }

    /// `tag_lhead` from Wei et al.: records that `block` is inside the loop
    /// headed by `header`, maintaining the innermost-header chain.
    fn tag_lhead(&mut self, block: u32, header: Option<u32>) {
        let Some(header) = header else { return };
        if block == header {
            return;
        }
        let mut cur1 = block;
        let mut cur2 = header;
        loop {
            match self.iloop_header[cur1 as usize] {
                None => {
                    self.iloop_header[cur1 as usize] = Some(cur2);
                    return;
                }
                Some(ih) => {
                    if ih == cur2 {
                        return;
                    }
                    if self.dfsp_pos[ih as usize] != 0
                        && self.dfsp_pos[ih as usize] < self.dfsp_pos[cur2 as usize]
                    {
                        self.iloop_header[cur1 as usize] = Some(cur2);
                        cur1 = cur2;
                        cur2 = ih;
                    } else {
                        cur1 = ih;
                    }
                }
            }
        }
    }

    /// Iterative DFS that discovers loop headers and header chains.
    fn run<A: IrAdapter>(&mut self, adapter: &A, entry: u32) {
        let mut stack = std::mem::take(&mut self.dfs_stack);
        let mut depth = 1u32;
        self.traversed[entry as usize] = true;
        self.dfsp_pos[entry as usize] = depth;
        stack.push(Frame {
            block: entry,
            next: 0,
        });

        while let Some(frame) = stack.last_mut() {
            let succs = adapter.block_succs(BlockRef(frame.block));
            if (frame.next as usize) < succs.len() {
                let succ = succs[frame.next as usize].0;
                // Successor indices are trusted here (dense-index contract);
                // the service path bounds-checks them with `crate::verify`
                // before analysis runs. Fail with a diagnosable message in
                // debug builds instead of an opaque slice panic below.
                debug_assert!(
                    (succ as usize) < self.traversed.len(),
                    "successor b{succ} out of range — IR must pass verify::Verifier first"
                );
                frame.next += 1;
                let b0 = frame.block;
                if !self.traversed[succ as usize] {
                    self.traversed[succ as usize] = true;
                    depth += 1;
                    self.dfsp_pos[succ as usize] = depth;
                    stack.push(Frame {
                        block: succ,
                        next: 0,
                    });
                } else if self.dfsp_pos[succ as usize] > 0 {
                    // back edge: succ is a loop header on the current path
                    self.is_header[succ as usize] = true;
                    self.tag_lhead(b0, Some(succ));
                } else if let Some(mut h) = self.iloop_header[succ as usize] {
                    if self.dfsp_pos[h as usize] > 0 {
                        self.tag_lhead(b0, Some(h));
                    } else {
                        // re-entry into an already-finished loop (irreducible):
                        // find the closest enclosing header that is on the path
                        while let Some(h2) = self.iloop_header[h as usize] {
                            h = h2;
                            if self.dfsp_pos[h as usize] > 0 {
                                self.tag_lhead(b0, Some(h));
                                break;
                            }
                        }
                    }
                }
            } else {
                // all successors handled: finish this block
                let finished = stack.pop().unwrap();
                self.dfsp_pos[finished.block as usize] = 0;
                self.post_order.push(finished.block);
                // propagate this block's innermost header to its DFS parent
                let nh = self.iloop_header[finished.block as usize];
                if let Some(parent) = stack.last() {
                    // Only propagate headers that are still on the DFS path;
                    // tag_lhead itself checks positions.
                    let propagate = match nh {
                        Some(h) if self.dfsp_pos[h as usize] > 0 => Some(h),
                        _ => {
                            if self.is_header[finished.block as usize] || nh.is_some() {
                                // find closest enclosing on-path header
                                let mut cur = if self.is_header[finished.block as usize] {
                                    Some(finished.block)
                                } else {
                                    nh
                                };
                                let mut found = None;
                                while let Some(c) = cur {
                                    if self.dfsp_pos[c as usize] > 0 {
                                        found = Some(c);
                                        break;
                                    }
                                    cur = self.iloop_header[c as usize];
                                }
                                found
                            } else {
                                None
                            }
                        }
                    };
                    let parent = parent.block;
                    self.tag_lhead(parent, propagate);
                }
            }
        }
        self.dfs_stack = stack;
    }
}

/// Reusable working memory of the analysis pass.
///
/// One `Analyzer` is owned per compile session; every call to
/// [`Analyzer::analyze_into`] clears and refills the scratch buffers, so
/// once they have grown to the largest function of a module no further
/// allocations happen.
#[derive(Debug, Default)]
pub struct Analyzer {
    disc: LoopDiscovery,
    rpo: Vec<u32>,
    rpo_index: Vec<u32>,
    emitted: Vec<bool>,
    headers: Vec<u32>,
    loop_id_of_header: Vec<u32>,
}

impl Analyzer {
    /// Creates an analyzer with empty scratch buffers.
    pub fn new() -> Analyzer {
        Analyzer::default()
    }

    /// Runs the analysis pass over the current function of `adapter`,
    /// clearing and refilling `out`.
    ///
    /// The result is identical to a fresh [`analyze`] run; only the working
    /// memory is reused.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidIr`] if the function has no blocks.
    pub fn analyze_into<A: IrAdapter>(&mut self, adapter: &A, out: &mut Analysis) -> Result<()> {
        let num_blocks = adapter.block_count();
        if num_blocks == 0 {
            return Err(Error::InvalidIr("function has no basic blocks".into()));
        }
        // Block 0 is the entry by the adapter contract.
        let entry = 0u32;

        // --- step 1+2: loop discovery ------------------------------------------
        let disc = &mut self.disc;
        disc.reset(num_blocks);
        disc.run(adapter, entry);

        // --- step 3: block layout ----------------------------------------------
        // RPO over reachable blocks; unreachable blocks are appended at the
        // end in index order so they still get code generated. `traversed`
        // doubles as the reachability set (read in place, not cloned).
        let rpo = &mut self.rpo;
        rpo.clear();
        rpo.extend(disc.post_order.iter().rev().copied());
        for b in 0..num_blocks as u32 {
            if !disc.traversed[b as usize] {
                rpo.push(b);
            }
        }
        let rpo_index = &mut self.rpo_index;
        rpo_index.clear();
        rpo_index.resize(num_blocks, u32::MAX);
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b as usize] = i as u32;
        }

        // Transitive loop membership test: walk the header chain.
        let in_loop = |mut b: u32, header: u32, disc: &LoopDiscovery| -> bool {
            if b == header {
                return true;
            }
            while let Some(h) = disc.iloop_header[b as usize] {
                if h == header {
                    return true;
                }
                b = h;
            }
            false
        };

        // Emit blocks in RPO, but when reaching a loop header, emit the entire
        // loop (all blocks whose header chain contains it) contiguously.
        let layout = &mut out.layout;
        layout.clear();
        let emitted = &mut self.emitted;
        emitted.clear();
        emitted.resize(num_blocks, false);
        fn emit_block_or_loop(
            b: u32,
            rpo: &[u32],
            rpo_index: &[u32],
            disc: &LoopDiscovery,
            emitted: &mut [bool],
            layout: &mut Vec<BlockRef>,
            in_loop: &dyn Fn(u32, u32, &LoopDiscovery) -> bool,
        ) {
            if emitted[b as usize] {
                return;
            }
            if disc.is_header[b as usize] {
                // collect loop members in RPO order starting at the header
                emitted[b as usize] = true;
                layout.push(BlockRef(b));
                let start = rpo_index[b as usize] as usize;
                for &m in &rpo[start + 1..] {
                    if !emitted[m as usize] && in_loop(m, b, disc) {
                        // nested loop headers recurse so their members stay together
                        if disc.is_header[m as usize] {
                            emit_block_or_loop(m, rpo, rpo_index, disc, emitted, layout, in_loop);
                        } else {
                            emitted[m as usize] = true;
                            layout.push(BlockRef(m));
                        }
                    }
                }
            } else {
                emitted[b as usize] = true;
                layout.push(BlockRef(b));
            }
        }
        for &b in rpo.iter() {
            emit_block_or_loop(b, rpo, rpo_index, disc, emitted, layout, &in_loop);
        }
        debug_assert_eq!(layout.len(), num_blocks);

        let block_pos = &mut out.block_pos;
        block_pos.clear();
        block_pos.resize(num_blocks, u32::MAX);
        for (i, b) in layout.iter().enumerate() {
            block_pos[b.idx()] = i as u32;
        }

        // --- build the loop forest ---------------------------------------------
        // Loop 0 is the pseudo root covering the whole function.
        let loops = &mut out.loops;
        loops.clear();
        loops.push(LoopInfo {
            parent: 0,
            level: 0,
            begin: 0,
            end: (num_blocks - 1) as u32,
            header: 0,
            num_blocks: num_blocks as u32,
        });
        let loop_id_of_header = &mut self.loop_id_of_header;
        loop_id_of_header.clear();
        loop_id_of_header.resize(num_blocks, u32::MAX);
        // create loops in layout order of their headers so parents come first
        let headers = &mut self.headers;
        headers.clear();
        headers.extend((0..num_blocks as u32).filter(|&b| disc.is_header[b as usize]));
        headers.sort_unstable_by_key(|&h| block_pos[h as usize]);
        for &h in headers.iter() {
            let id = loops.len() as u32;
            loop_id_of_header[h as usize] = id;
            loops.push(LoopInfo {
                parent: 0,
                level: 1,
                begin: block_pos[h as usize],
                end: block_pos[h as usize],
                header: block_pos[h as usize],
                num_blocks: 0,
            });
        }
        // parents and levels
        for &h in headers.iter() {
            let id = loop_id_of_header[h as usize];
            let parent = match disc.iloop_header[h as usize] {
                Some(ph) => loop_id_of_header[ph as usize],
                None => 0,
            };
            let parent = if parent == u32::MAX { 0 } else { parent };
            loops[id as usize].parent = parent;
        }
        // levels need parents resolved first (parents appear before children in
        // header layout order for reducible nests; recompute iteratively to be safe)
        for _ in 0..loops.len() {
            for i in 1..loops.len() {
                let p = loops[i].parent as usize;
                loops[i].level = loops[p].level + 1;
            }
        }

        // innermost loop per block + loop extents
        let block_loop = &mut out.block_loop;
        block_loop.clear();
        block_loop.resize(num_blocks, 0);
        for (pos, b) in layout.iter().enumerate() {
            let b = b.0;
            let innermost = if disc.is_header[b as usize] {
                loop_id_of_header[b as usize]
            } else {
                match disc.iloop_header[b as usize] {
                    Some(h) => loop_id_of_header[h as usize],
                    None => 0,
                }
            };
            let innermost = if innermost == u32::MAX { 0 } else { innermost };
            block_loop[pos] = innermost;
            // extend extents of the whole loop chain
            let mut l = innermost;
            loop {
                let li = &mut loops[l as usize];
                li.begin = li.begin.min(pos as u32);
                li.end = li.end.max(pos as u32);
                li.num_blocks += 1;
                if l == 0 {
                    break;
                }
                l = loops[l as usize].parent;
            }
        }
        // the root already covers everything; fix its counters
        loops[0].begin = 0;
        loops[0].end = (num_blocks - 1) as u32;
        loops[0].num_blocks = num_blocks as u32;

        // --- predecessors counts -----------------------------------------------
        let num_preds = &mut out.num_preds;
        num_preds.clear();
        num_preds.resize(num_blocks, 0);
        for b in 0..num_blocks as u32 {
            for s in adapter.block_succs(BlockRef(b)) {
                num_preds[s.idx()] += 1;
            }
        }

        // --- step 4: liveness --------------------------------------------------
        let liveness = &mut out.liveness;
        liveness.clear();
        liveness.resize(adapter.value_count(), LiveRange::default());

        let define = |liveness: &mut Vec<LiveRange>, v: ValueRef, pos: u32| {
            if v.idx() >= liveness.len() {
                return;
            }
            let lr = &mut liveness[v.idx()];
            lr.defined = true;
            lr.first = lr.first.min(pos);
            lr.last = lr.last.max(pos);
        };

        // definitions
        let entry_pos = 0u32;
        for &arg in adapter.args() {
            define(liveness, arg, entry_pos);
        }
        for sv in adapter.static_stack_vars() {
            define(liveness, sv.value, entry_pos);
        }
        for b in 0..num_blocks as u32 {
            let pos = block_pos[b as usize];
            for &phi in adapter.block_phis(BlockRef(b)) {
                define(liveness, phi, pos);
            }
            for &inst in adapter.block_insts(BlockRef(b)) {
                for &res in adapter.inst_results(inst) {
                    define(liveness, res, pos);
                }
            }
        }

        // uses (with loop extension)
        let extend_for_loops = |liveness: &mut Vec<LiveRange>,
                                loops: &Vec<LoopInfo>,
                                block_loop: &Vec<u32>,
                                v: ValueRef,
                                use_pos: u32| {
            let lr = &mut liveness[v.idx()];
            let def_pos = if lr.defined { lr.first } else { use_pos };
            // outermost loop containing the use but not the definition
            let mut l = block_loop[use_pos as usize];
            let mut candidate: Option<u32> = None;
            while l != 0 {
                let li = &loops[l as usize];
                let contains_def = def_pos >= li.begin && def_pos <= li.end;
                if contains_def {
                    break;
                }
                candidate = Some(l);
                l = li.parent;
            }
            if let Some(c) = candidate {
                let end = loops[c as usize].end;
                if end > lr.last {
                    lr.last = end;
                    lr.last_full = true;
                } else if end == lr.last {
                    lr.last_full = true;
                }
            }
        };

        let add_use = |liveness: &mut Vec<LiveRange>, v: ValueRef, pos: u32, at_end: bool| {
            if v.idx() >= liveness.len() || adapter.val_is_const(v) {
                return;
            }
            let lr = &mut liveness[v.idx()];
            lr.uses += 1;
            lr.first = lr.first.min(pos);
            if pos > lr.last {
                lr.last = pos;
                lr.last_full = at_end;
            } else if pos == lr.last && at_end {
                lr.last_full = true;
            }
            extend_for_loops(liveness, loops, block_loop, v, pos);
        };

        for b in 0..num_blocks as u32 {
            let pos = block_pos[b as usize];
            for &inst in adapter.block_insts(BlockRef(b)) {
                for &op in adapter.inst_operands(inst) {
                    add_use(liveness, op, pos, false);
                }
            }
            // phi incoming values are used at the end of the incoming block
            for &phi in adapter.block_phis(BlockRef(b)) {
                for inc in adapter.phi_incoming(phi) {
                    let ipos = block_pos[inc.block.idx()];
                    if ipos != u32::MAX {
                        add_use(liveness, inc.value, ipos, true);
                    }
                }
                // the phi itself is "used" by each incoming edge's move target;
                // ensure its range covers all incoming blocks that are inside its
                // loop (back edges), mirroring the paper's handling.
                let ppos = block_pos[b as usize];
                for inc in adapter.phi_incoming(phi) {
                    let ipos = block_pos[inc.block.idx()];
                    if ipos != u32::MAX && ipos > ppos {
                        let lr = &mut liveness[phi.idx()];
                        if ipos > lr.last {
                            lr.last = ipos;
                            lr.last_full = true;
                        }
                    }
                }
            }
        }

        Ok(())
    }
}

/// Runs the analysis pass over the current function of `adapter` with fresh
/// working memory. Convenience wrapper around [`Analyzer::analyze_into`];
/// drivers that compile many functions should reuse an [`Analyzer`] instead.
///
/// # Errors
///
/// Returns [`Error::InvalidIr`] if the function has no blocks.
pub fn analyze<A: IrAdapter>(adapter: &A) -> Result<Analysis> {
    let mut analyzer = Analyzer::new();
    let mut out = Analysis::default();
    analyzer.analyze_into(adapter, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::{FuncRef, InstRef, Linkage, PhiIncoming};
    use crate::regs::RegBank;

    /// Minimal mock IR: a CFG plus per-block instructions described as
    /// (result, operands) pairs. Value 0..num_args are arguments.
    /// Per block: (phi value, [(pred, incoming value)]).
    type PhiList = Vec<Vec<(u32, Vec<(u32, u32)>)>>;

    struct MockIr {
        succs: Vec<Vec<u32>>,
        /// per block: list of (result value or NONE, operand values)
        insts: Vec<Vec<(Option<u32>, Vec<u32>)>>,
        phis: PhiList,
        num_args: u32,
        num_values: usize,
        // dense index tables built by switch_func (adapter contract: every
        // collection query answers with a borrowed slice)
        idx_args: Vec<ValueRef>,
        idx_succs: Vec<Vec<BlockRef>>,
        idx_phis: Vec<Vec<ValueRef>>,
        idx_insts: Vec<Vec<InstRef>>,
        idx_ops: Vec<Vec<ValueRef>>,
        idx_res: Vec<Vec<ValueRef>>,
        idx_phi_inc: Vec<Vec<PhiIncoming>>,
    }

    impl MockIr {
        fn new(succs: Vec<Vec<u32>>, num_args: u32) -> MockIr {
            let n = succs.len();
            MockIr {
                succs,
                insts: vec![Vec::new(); n],
                phis: vec![Vec::new(); n],
                num_args,
                num_values: num_args as usize,
                idx_args: Vec::new(),
                idx_succs: Vec::new(),
                idx_phis: Vec::new(),
                idx_insts: Vec::new(),
                idx_ops: Vec::new(),
                idx_res: Vec::new(),
                idx_phi_inc: Vec::new(),
            }
        }
        fn inst(&mut self, block: u32, result: Option<u32>, ops: Vec<u32>) {
            if let Some(r) = result {
                self.num_values = self.num_values.max(r as usize + 1);
            }
            self.insts[block as usize].push((result, ops));
        }
        fn phi(&mut self, block: u32, val: u32, incoming: Vec<(u32, u32)>) {
            self.num_values = self.num_values.max(val as usize + 1);
            self.phis[block as usize].push((val, incoming));
        }
    }

    /// Helper: index the mock (as `switch_func` would) and run a fresh
    /// analysis.
    fn run_analysis(ir: &mut MockIr) -> Result<Analysis> {
        ir.switch_func(FuncRef(0));
        analyze(ir)
    }

    impl IrAdapter for MockIr {
        fn func_count(&self) -> usize {
            1
        }
        fn func_name(&self, _: FuncRef) -> &str {
            "mock"
        }
        fn func_linkage(&self, _: FuncRef) -> Linkage {
            Linkage::External
        }
        fn func_is_definition(&self, _: FuncRef) -> bool {
            true
        }
        fn switch_func(&mut self, _: FuncRef) {
            self.idx_args = (0..self.num_args).map(ValueRef).collect();
            self.idx_succs = self
                .succs
                .iter()
                .map(|s| s.iter().map(|&b| BlockRef(b)).collect())
                .collect();
            self.idx_phis = self
                .phis
                .iter()
                .map(|p| p.iter().map(|&(v, _)| ValueRef(v)).collect())
                .collect();
            self.idx_phi_inc = vec![Vec::new(); self.num_values];
            for blk in &self.phis {
                for (v, inc) in blk {
                    self.idx_phi_inc[*v as usize] = inc
                        .iter()
                        .map(|&(b, val)| PhiIncoming {
                            block: BlockRef(b),
                            value: ValueRef(val),
                        })
                        .collect();
                }
            }
            // dense instruction numbering: flat index across blocks
            self.idx_insts.clear();
            self.idx_ops.clear();
            self.idx_res.clear();
            let mut next = 0u32;
            for blk in &self.insts {
                let mut refs = Vec::new();
                for (res, ops) in blk {
                    refs.push(InstRef(next));
                    next += 1;
                    self.idx_ops
                        .push(ops.iter().map(|&v| ValueRef(v)).collect());
                    self.idx_res
                        .push(res.map(|v| vec![ValueRef(v)]).unwrap_or_default());
                }
                self.idx_insts.push(refs);
            }
        }
        fn value_count(&self) -> usize {
            self.num_values
        }
        fn inst_count(&self) -> usize {
            self.idx_ops.len()
        }
        fn args(&self) -> &[ValueRef] {
            &self.idx_args
        }
        fn block_count(&self) -> usize {
            self.succs.len()
        }
        fn block_succs(&self, block: BlockRef) -> &[BlockRef] {
            &self.idx_succs[block.idx()]
        }
        fn block_phis(&self, block: BlockRef) -> &[ValueRef] {
            &self.idx_phis[block.idx()]
        }
        fn block_insts(&self, block: BlockRef) -> &[InstRef] {
            &self.idx_insts[block.idx()]
        }
        fn phi_incoming(&self, phi: ValueRef) -> &[PhiIncoming] {
            &self.idx_phi_inc[phi.idx()]
        }
        fn inst_operands(&self, inst: InstRef) -> &[ValueRef] {
            &self.idx_ops[inst.idx()]
        }
        fn inst_results(&self, inst: InstRef) -> &[ValueRef] {
            &self.idx_res[inst.idx()]
        }
        fn val_part_count(&self, _: ValueRef) -> u32 {
            1
        }
        fn val_part_size(&self, _: ValueRef, _: u32) -> u32 {
            8
        }
        fn val_part_bank(&self, _: ValueRef, _: u32) -> RegBank {
            RegBank::GP
        }
    }

    /// diamond: 0 -> {1,2} -> 3
    fn diamond() -> MockIr {
        MockIr::new(vec![vec![1, 2], vec![3], vec![3], vec![]], 1)
    }

    #[test]
    fn straight_line_layout() {
        let mut ir = MockIr::new(vec![vec![1], vec![2], vec![]], 0);
        let a = run_analysis(&mut ir).unwrap();
        assert_eq!(a.layout, vec![BlockRef(0), BlockRef(1), BlockRef(2)]);
        assert_eq!(a.loops.len(), 1);
        assert_eq!(a.num_preds, vec![0, 1, 1]);
    }

    #[test]
    fn diamond_layout_is_rpo() {
        let mut ir = diamond();
        let a = run_analysis(&mut ir).unwrap();
        assert_eq!(a.pos(BlockRef(0)), 0);
        assert_eq!(a.pos(BlockRef(3)), 3);
        // both branches before the join
        assert!(a.pos(BlockRef(1)) < 3 && a.pos(BlockRef(2)) < 3);
        assert_eq!(a.num_preds[3], 2);
    }

    #[test]
    fn simple_loop_detected_and_contiguous() {
        // 0 -> 1; 1 -> {2, 3}; 2 -> 1; 3 (exit)
        let mut ir = MockIr::new(vec![vec![1], vec![2, 3], vec![1], vec![]], 0);
        let a = run_analysis(&mut ir).unwrap();
        assert_eq!(a.loops.len(), 2, "one real loop plus the root");
        let l = &a.loops[1];
        assert_eq!(l.level, 1);
        // loop contains blocks 1 and 2 contiguously
        let p1 = a.pos(BlockRef(1));
        let p2 = a.pos(BlockRef(2));
        assert_eq!(l.begin, p1.min(p2));
        assert_eq!(l.end, p1.max(p2));
        assert_eq!(l.num_blocks, 2);
        assert_eq!(l.header, a.pos(BlockRef(1)));
        assert!(a.is_loop_header(a.pos(BlockRef(1))));
        // exit block is outside the loop
        assert_eq!(a.block_loop[a.pos(BlockRef(3)) as usize], 0);
    }

    #[test]
    fn nested_loops_have_levels() {
        // 0 -> 1; 1 -> 2; 2 -> {2? no}. Build: outer 1..4, inner 2..3
        // 0->1, 1->2, 2->3, 3->{2,4}, 4->{1,5}, 5 exit
        let mut ir = MockIr::new(
            vec![vec![1], vec![2], vec![3], vec![2, 4], vec![1, 5], vec![]],
            0,
        );
        let a = run_analysis(&mut ir).unwrap();
        assert_eq!(a.loops.len(), 3);
        let depths: Vec<u32> = (0..6)
            .map(|b| a.loop_depth_of_pos(a.pos(BlockRef(b))))
            .collect();
        assert_eq!(depths[0], 0);
        assert_eq!(depths[1], 1);
        assert_eq!(depths[2], 2);
        assert_eq!(depths[3], 2);
        assert_eq!(depths[4], 1);
        assert_eq!(depths[5], 0);
    }

    #[test]
    fn irreducible_cfg_does_not_crash() {
        // 0 -> {1, 2}; 1 -> 2; 2 -> 1; 1 -> 3; 2 -> 3 (two-entry loop {1,2})
        let mut ir = MockIr::new(vec![vec![1, 2], vec![2, 3], vec![1, 3], vec![]], 0);
        let a = run_analysis(&mut ir).unwrap();
        assert_eq!(a.layout.len(), 4);
        // every block has a position
        for b in 0..4u32 {
            assert!(a.pos(BlockRef(b)) < 4);
        }
    }

    #[test]
    fn unreachable_blocks_are_appended() {
        let mut ir = MockIr::new(vec![vec![1], vec![], vec![1]], 0); // block 2 unreachable
        let a = run_analysis(&mut ir).unwrap();
        assert_eq!(a.layout.len(), 3);
        assert_eq!(a.pos(BlockRef(2)), 2);
    }

    #[test]
    fn liveness_straight_line() {
        // b0: v1 = use(arg0); b1: v2 = use(v1); b2: use(v2)
        let mut ir = MockIr::new(vec![vec![1], vec![2], vec![]], 1);
        ir.inst(0, Some(1), vec![0]);
        ir.inst(1, Some(2), vec![1]);
        ir.inst(2, None, vec![2]);
        let a = run_analysis(&mut ir).unwrap();
        let l1 = a.live(ValueRef(1));
        assert_eq!((l1.first, l1.last, l1.uses), (0, 1, 1));
        assert!(!l1.last_full);
        let l0 = a.live(ValueRef(0));
        assert_eq!((l0.first, l0.last, l0.uses), (0, 0, 1));
        assert!(l0.defined);
    }

    #[test]
    fn liveness_extends_over_loop() {
        // v1 defined in block 0, used in loop body block 2; loop is {1,2,3}
        // 0 -> 1; 1 -> 2; 2 -> 3; 3 -> {1, 4}; 4 exit
        let mut ir = MockIr::new(vec![vec![1], vec![2], vec![3], vec![1, 4], vec![]], 0);
        ir.inst(0, Some(0), vec![]);
        ir.inst(2, None, vec![0]); // use inside loop
        let a = run_analysis(&mut ir).unwrap();
        let lr = a.live(ValueRef(0));
        // must be extended to the end of the loop (block 3's layout pos)
        assert_eq!(lr.last, a.pos(BlockRef(3)));
        assert!(lr.last_full);
    }

    #[test]
    fn liveness_not_extended_when_def_inside_loop() {
        // value defined and used entirely inside the loop
        let mut ir = MockIr::new(vec![vec![1], vec![2], vec![1, 3], vec![]], 0);
        ir.inst(1, Some(0), vec![]);
        ir.inst(2, None, vec![0]);
        let a = run_analysis(&mut ir).unwrap();
        let lr = a.live(ValueRef(0));
        assert_eq!(lr.first, a.pos(BlockRef(1)));
        assert_eq!(lr.last, a.pos(BlockRef(2)));
        assert!(!lr.last_full);
    }

    #[test]
    fn phi_incoming_counts_as_use_at_end_of_pred() {
        // 0 -> {1,2}; 1 -> 3; 2 -> 3; 3 has phi(v3) of v1 from 1, v2 from 2
        let mut ir = MockIr::new(vec![vec![1, 2], vec![3], vec![3], vec![]], 0);
        ir.inst(1, Some(1), vec![]);
        ir.inst(2, Some(2), vec![]);
        ir.phi(3, 3, vec![(1, 1), (2, 2)]);
        ir.inst(3, None, vec![3]);
        let a = run_analysis(&mut ir).unwrap();
        let l1 = a.live(ValueRef(1));
        assert_eq!(l1.last, a.pos(BlockRef(1)));
        assert!(
            l1.last_full,
            "phi use keeps the value live to the end of the pred"
        );
        let l3 = a.live(ValueRef(3));
        assert_eq!(l3.first, a.pos(BlockRef(3)));
        assert_eq!(l3.uses, 1);
    }

    #[test]
    fn loop_phi_live_range_covers_backedge() {
        // loop counter phi: blocks 0 -> 1(header, phi) -> 2(latch) -> {1, 3}
        let mut ir = MockIr::new(vec![vec![1], vec![2], vec![1, 3], vec![]], 1);
        ir.phi(1, 1, vec![(0, 0), (2, 2)]);
        ir.inst(2, Some(2), vec![1]);
        let a = run_analysis(&mut ir).unwrap();
        let lphi = a.live(ValueRef(1));
        assert_eq!(lphi.first, a.pos(BlockRef(1)));
        assert_eq!(lphi.last, a.pos(BlockRef(2)));
        assert!(lphi.last_full);
        // v2 (the next value) is used by the phi at end of block 2 but defined in 2
        let l2 = a.live(ValueRef(2));
        assert_eq!(l2.first, a.pos(BlockRef(2)));
    }

    #[test]
    fn empty_function_is_an_error() {
        let mut ir = MockIr::new(vec![], 0);
        assert!(run_analysis(&mut ir).is_err());
    }

    #[test]
    fn use_counts_accumulate() {
        let mut ir = MockIr::new(vec![vec![]], 1);
        ir.inst(0, Some(1), vec![0, 0, 0]);
        ir.inst(0, None, vec![1, 0]);
        let a = run_analysis(&mut ir).unwrap();
        assert_eq!(a.live(ValueRef(0)).uses, 4);
        assert_eq!(a.live(ValueRef(1)).uses, 1);
    }

    /// All CFG fixtures used above, for the scratch-reuse golden test.
    fn fixtures() -> Vec<MockIr> {
        let mut with_liveness = MockIr::new(vec![vec![1], vec![2], vec![]], 1);
        with_liveness.inst(0, Some(1), vec![0]);
        with_liveness.inst(1, Some(2), vec![1]);
        with_liveness.inst(2, None, vec![2]);
        let mut loop_phi = MockIr::new(vec![vec![1], vec![2], vec![1, 3], vec![]], 1);
        loop_phi.phi(1, 1, vec![(0, 0), (2, 2)]);
        loop_phi.inst(2, Some(2), vec![1]);
        vec![
            MockIr::new(vec![vec![1], vec![2], vec![]], 0),
            diamond(),
            MockIr::new(vec![vec![1], vec![2, 3], vec![1], vec![]], 0),
            MockIr::new(
                vec![vec![1], vec![2], vec![3], vec![2, 4], vec![1, 5], vec![]],
                0,
            ),
            MockIr::new(vec![vec![1, 2], vec![2, 3], vec![1, 3], vec![]], 0),
            MockIr::new(vec![vec![1], vec![], vec![1]], 0),
            with_liveness,
            loop_phi,
        ]
    }

    #[test]
    fn reused_scratch_is_bit_identical_to_fresh_analysis() {
        // Golden test: one Analyzer + one Analysis reused across every CFG
        // fixture must produce exactly the same result (layout, loops,
        // liveness, preds) as a fresh analyze() per fixture — including when
        // a large function is followed by a small one (stale-capacity case).
        let mut analyzer = Analyzer::new();
        let mut reused = Analysis::default();
        let mut fx = fixtures();
        // run twice over all fixtures so every buffer sees shrink and growth
        for _round in 0..2 {
            for ir in fx.iter_mut() {
                ir.switch_func(FuncRef(0));
                let fresh = analyze(&*ir).unwrap();
                analyzer.analyze_into(&*ir, &mut reused).unwrap();
                assert_eq!(reused, fresh);
            }
        }
    }

    #[test]
    fn adapter_slices_are_stable_across_queries() {
        // The framework may hold a returned slice across unrelated queries;
        // repeated queries must return identical (and identically-located)
        // data until the next switch_func.
        let mut ir = diamond();
        ir.inst(0, Some(1), vec![0]);
        ir.switch_func(FuncRef(0));
        let ops1 = ir.inst_operands(InstRef(0));
        let _interleaved = (ir.block_succs(BlockRef(0)), ir.block_insts(BlockRef(1)));
        let ops2 = ir.inst_operands(InstRef(0));
        assert_eq!(ops1, ops2);
        assert!(std::ptr::eq(ops1.as_ptr(), ops2.as_ptr()));
        let insts1 = ir.block_insts(BlockRef(0));
        let insts2 = ir.block_insts(BlockRef(0));
        assert!(std::ptr::eq(insts1.as_ptr(), insts2.as_ptr()));
    }
}
