//! The analysis pass: loop detection, block layout and coarse liveness.
//!
//! Following the paper (§3.3), the pass performs four steps:
//!
//! 1. number all basic blocks so per-block data can live in arrays;
//! 2. identify loops with a single-DFS algorithm in the style of Wei et al.
//!    (tolerates irreducible control flow, needs no predecessor lists and no
//!    union-find); the whole function is wrapped in a pseudo root loop;
//! 3. compute the block layout: reverse post-order, with the additional rule
//!    that the blocks of a loop are laid out contiguously;
//! 4. compute, for every value, a coarse live range — a contiguous range of
//!    layout block indices, a flag whether liveness extends to the end of
//!    the last block, and the number of uses (Kohn et al. style).

use crate::adapter::{BlockRef, IrAdapter, ValueRef};
use crate::error::{Error, Result};

/// A loop in the loop forest. Loop 0 is the pseudo root covering the whole
/// function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopInfo {
    /// Parent loop id (the root loop is its own parent).
    pub parent: u32,
    /// Nesting level; the root loop has level 0.
    pub level: u32,
    /// First block of the loop in layout order (inclusive).
    pub begin: u32,
    /// Last block of the loop in layout order (inclusive).
    pub end: u32,
    /// Layout index of the loop header (== `begin` for natural loops).
    pub header: u32,
    /// Number of blocks in the loop, including nested loops.
    pub num_blocks: u32,
}

/// Coarse live range of one IR value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveRange {
    /// Layout index of the first block the value is live in (its definition).
    pub first: u32,
    /// Layout index of the last block the value is live in.
    pub last: u32,
    /// If `true`, the value is live until the *end* of block `last`
    /// (e.g. because of a loop back edge or a phi use on an outgoing edge);
    /// otherwise it dies at its last use within the block.
    pub last_full: bool,
    /// Number of uses the code generator will observe.
    pub uses: u32,
    /// Whether the value has a definition (arguments, phis, instruction
    /// results and stack variables do; constants and unused numbers do not).
    pub defined: bool,
}

impl Default for LiveRange {
    fn default() -> Self {
        LiveRange {
            first: u32::MAX,
            last: 0,
            last_full: false,
            uses: 0,
            defined: false,
        }
    }
}

/// Result of the analysis pass for one function.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Blocks in layout (compilation) order.
    pub layout: Vec<BlockRef>,
    /// Mapping from block index ([`BlockRef::idx`]) to layout position.
    pub block_pos: Vec<u32>,
    /// Innermost loop id of each block, indexed by layout position.
    pub block_loop: Vec<u32>,
    /// The loop forest. Entry 0 is the pseudo root loop.
    pub loops: Vec<LoopInfo>,
    /// Live range per value, indexed by [`ValueRef::idx`].
    pub liveness: Vec<LiveRange>,
    /// Number of predecessors per block, indexed by block index.
    pub num_preds: Vec<u32>,
}

impl Analysis {
    /// Layout position of a block.
    #[inline]
    pub fn pos(&self, block: BlockRef) -> u32 {
        self.block_pos[block.idx()]
    }

    /// Live range of a value.
    #[inline]
    pub fn live(&self, val: ValueRef) -> &LiveRange {
        &self.liveness[val.idx()]
    }

    /// Innermost loop id of the block at a layout position.
    #[inline]
    pub fn loop_of_pos(&self, pos: u32) -> u32 {
        self.block_loop[pos as usize]
    }

    /// Whether the block at layout position `pos` is the header of a
    /// non-root loop with more than one block.
    pub fn is_loop_header(&self, pos: u32) -> bool {
        let l = self.loop_of_pos(pos) as usize;
        l != 0 && self.loops[l].header == pos && self.loops[l].num_blocks > 1
    }

    /// Nesting depth of the block at layout position `pos` (0 = not in a loop).
    pub fn loop_depth_of_pos(&self, pos: u32) -> u32 {
        self.loops[self.loop_of_pos(pos) as usize].level
    }
}

struct LoopDiscovery {
    traversed: Vec<bool>,
    dfsp_pos: Vec<u32>,
    iloop_header: Vec<Option<u32>>,
    is_header: Vec<bool>,
    post_order: Vec<u32>,
}

impl LoopDiscovery {
    fn new(n: usize) -> LoopDiscovery {
        LoopDiscovery {
            traversed: vec![false; n],
            dfsp_pos: vec![0; n],
            iloop_header: vec![None; n],
            is_header: vec![false; n],
            post_order: Vec::with_capacity(n),
        }
    }

    /// `tag_lhead` from Wei et al.: records that `block` is inside the loop
    /// headed by `header`, maintaining the innermost-header chain.
    fn tag_lhead(&mut self, block: u32, header: Option<u32>) {
        let Some(header) = header else { return };
        if block == header {
            return;
        }
        let mut cur1 = block;
        let mut cur2 = header;
        loop {
            match self.iloop_header[cur1 as usize] {
                None => {
                    self.iloop_header[cur1 as usize] = Some(cur2);
                    return;
                }
                Some(ih) => {
                    if ih == cur2 {
                        return;
                    }
                    if self.dfsp_pos[ih as usize] != 0
                        && self.dfsp_pos[ih as usize] < self.dfsp_pos[cur2 as usize]
                    {
                        self.iloop_header[cur1 as usize] = Some(cur2);
                        cur1 = cur2;
                        cur2 = ih;
                    } else {
                        cur1 = ih;
                    }
                }
            }
        }
    }

    /// Iterative DFS that discovers loop headers and header chains.
    fn run<A: IrAdapter>(&mut self, adapter: &A, entry: u32) {
        // Explicit DFS stack: (block, succs, next succ index, dfs position).
        struct Frame {
            block: u32,
            succs: Vec<BlockRef>,
            next: usize,
        }
        let mut stack: Vec<Frame> = Vec::new();
        let mut depth = 1u32;
        self.traversed[entry as usize] = true;
        self.dfsp_pos[entry as usize] = depth;
        stack.push(Frame {
            block: entry,
            succs: adapter.block_succs(BlockRef(entry)),
            next: 0,
        });

        while let Some(frame) = stack.last_mut() {
            if frame.next < frame.succs.len() {
                let succ = frame.succs[frame.next].0;
                frame.next += 1;
                let b0 = frame.block;
                if !self.traversed[succ as usize] {
                    self.traversed[succ as usize] = true;
                    depth += 1;
                    self.dfsp_pos[succ as usize] = depth;
                    stack.push(Frame {
                        block: succ,
                        succs: adapter.block_succs(BlockRef(succ)),
                        next: 0,
                    });
                } else if self.dfsp_pos[succ as usize] > 0 {
                    // back edge: succ is a loop header on the current path
                    self.is_header[succ as usize] = true;
                    self.tag_lhead(b0, Some(succ));
                } else if let Some(mut h) = self.iloop_header[succ as usize] {
                    if self.dfsp_pos[h as usize] > 0 {
                        self.tag_lhead(b0, Some(h));
                    } else {
                        // re-entry into an already-finished loop (irreducible):
                        // find the closest enclosing header that is on the path
                        while let Some(h2) = self.iloop_header[h as usize] {
                            h = h2;
                            if self.dfsp_pos[h as usize] > 0 {
                                self.tag_lhead(b0, Some(h));
                                break;
                            }
                        }
                    }
                }
            } else {
                // all successors handled: finish this block
                let finished = stack.pop().unwrap();
                self.dfsp_pos[finished.block as usize] = 0;
                self.post_order.push(finished.block);
                // propagate this block's innermost header to its DFS parent
                let nh = self.iloop_header[finished.block as usize];
                let nh = if self.is_header[finished.block as usize] {
                    // the parent is inside the loops *around* this header
                    nh
                } else {
                    nh
                };
                if let Some(parent) = stack.last() {
                    // Only propagate headers that are still on the DFS path;
                    // tag_lhead itself checks positions.
                    let propagate = match nh {
                        Some(h) if self.dfsp_pos[h as usize] > 0 => Some(h),
                        _ => {
                            if self.is_header[finished.block as usize] || nh.is_some() {
                                // find closest enclosing on-path header
                                let mut cur = if self.is_header[finished.block as usize] {
                                    Some(finished.block)
                                } else {
                                    nh
                                };
                                let mut found = None;
                                while let Some(c) = cur {
                                    if self.dfsp_pos[c as usize] > 0 {
                                        found = Some(c);
                                        break;
                                    }
                                    cur = self.iloop_header[c as usize];
                                }
                                found
                            } else {
                                None
                            }
                        }
                    };
                    self.tag_lhead(parent.block, propagate);
                }
            }
        }
    }
}

/// Runs the analysis pass over the current function of `adapter`.
///
/// # Errors
///
/// Returns [`Error::InvalidIr`] if the function has no blocks or blocks are
/// not densely numbered.
pub fn analyze<A: IrAdapter>(adapter: &A) -> Result<Analysis> {
    let blocks = adapter.blocks();
    if blocks.is_empty() {
        return Err(Error::InvalidIr("function has no basic blocks".into()));
    }
    let num_blocks = blocks.len();
    for b in &blocks {
        if b.idx() >= num_blocks {
            return Err(Error::InvalidIr(format!(
                "block index {} not dense (block count {})",
                b.0, num_blocks
            )));
        }
    }
    let entry = blocks[0].0;

    // --- step 1+2: loop discovery ------------------------------------------
    let mut disc = LoopDiscovery::new(num_blocks);
    disc.run(adapter, entry);

    // --- step 3: block layout ------------------------------------------------
    // RPO over reachable blocks; unreachable blocks are appended at the end in
    // their original order so they still get code generated.
    let mut rpo: Vec<u32> = disc.post_order.iter().rev().copied().collect();
    let reachable: Vec<bool> = disc.traversed.clone();
    for b in &blocks {
        if !reachable[b.idx()] {
            rpo.push(b.0);
        }
    }
    let rpo_index = {
        let mut v = vec![u32::MAX; num_blocks];
        for (i, &b) in rpo.iter().enumerate() {
            v[b as usize] = i as u32;
        }
        v
    };

    // Transitive loop membership test: walk the header chain.
    let in_loop = |mut b: u32, header: u32, disc: &LoopDiscovery| -> bool {
        if b == header {
            return true;
        }
        while let Some(h) = disc.iloop_header[b as usize] {
            if h == header {
                return true;
            }
            b = h;
        }
        false
    };

    // Emit blocks in RPO, but when reaching a loop header, emit the entire
    // loop (all blocks whose header chain contains it) contiguously.
    let mut layout: Vec<BlockRef> = Vec::with_capacity(num_blocks);
    let mut emitted = vec![false; num_blocks];
    fn emit_block_or_loop(
        b: u32,
        rpo: &[u32],
        rpo_index: &[u32],
        disc: &LoopDiscovery,
        emitted: &mut [bool],
        layout: &mut Vec<BlockRef>,
        in_loop: &dyn Fn(u32, u32, &LoopDiscovery) -> bool,
    ) {
        if emitted[b as usize] {
            return;
        }
        if disc.is_header[b as usize] {
            // collect loop members in RPO order starting at the header
            emitted[b as usize] = true;
            layout.push(BlockRef(b));
            let start = rpo_index[b as usize] as usize;
            for &m in &rpo[start + 1..] {
                if !emitted[m as usize] && in_loop(m, b, disc) {
                    // nested loop headers recurse so their members stay together
                    if disc.is_header[m as usize] {
                        emit_block_or_loop(m, rpo, rpo_index, disc, emitted, layout, in_loop);
                    } else {
                        emitted[m as usize] = true;
                        layout.push(BlockRef(m));
                    }
                }
            }
        } else {
            emitted[b as usize] = true;
            layout.push(BlockRef(b));
        }
    }
    for &b in &rpo {
        emit_block_or_loop(
            b,
            &rpo,
            &rpo_index,
            &disc,
            &mut emitted,
            &mut layout,
            &in_loop,
        );
    }
    debug_assert_eq!(layout.len(), num_blocks);

    let mut block_pos = vec![u32::MAX; num_blocks];
    for (i, b) in layout.iter().enumerate() {
        block_pos[b.idx()] = i as u32;
    }

    // --- build the loop forest -----------------------------------------------
    // Loop 0 is the pseudo root covering the whole function.
    let mut loops = vec![LoopInfo {
        parent: 0,
        level: 0,
        begin: 0,
        end: (num_blocks - 1) as u32,
        header: 0,
        num_blocks: num_blocks as u32,
    }];
    let mut loop_id_of_header = vec![u32::MAX; num_blocks];
    // create loops in layout order of their headers so parents come first
    let mut headers: Vec<u32> = (0..num_blocks as u32)
        .filter(|&b| disc.is_header[b as usize])
        .collect();
    headers.sort_by_key(|&h| block_pos[h as usize]);
    for &h in &headers {
        let id = loops.len() as u32;
        loop_id_of_header[h as usize] = id;
        loops.push(LoopInfo {
            parent: 0,
            level: 1,
            begin: block_pos[h as usize],
            end: block_pos[h as usize],
            header: block_pos[h as usize],
            num_blocks: 0,
        });
    }
    // parents and levels
    for &h in &headers {
        let id = loop_id_of_header[h as usize];
        let parent = match disc.iloop_header[h as usize] {
            Some(ph) => loop_id_of_header[ph as usize],
            None => 0,
        };
        let parent = if parent == u32::MAX { 0 } else { parent };
        loops[id as usize].parent = parent;
    }
    // levels need parents resolved first (parents appear before children in
    // header layout order for reducible nests; recompute iteratively to be safe)
    for _ in 0..loops.len() {
        for i in 1..loops.len() {
            let p = loops[i].parent as usize;
            loops[i].level = loops[p].level + 1;
        }
    }

    // innermost loop per block + loop extents
    let mut block_loop = vec![0u32; num_blocks];
    for (pos, b) in layout.iter().enumerate() {
        let b = b.0;
        let innermost = if disc.is_header[b as usize] {
            loop_id_of_header[b as usize]
        } else {
            match disc.iloop_header[b as usize] {
                Some(h) => loop_id_of_header[h as usize],
                None => 0,
            }
        };
        let innermost = if innermost == u32::MAX { 0 } else { innermost };
        block_loop[pos] = innermost;
        // extend extents of the whole loop chain
        let mut l = innermost;
        loop {
            let li = &mut loops[l as usize];
            li.begin = li.begin.min(pos as u32);
            li.end = li.end.max(pos as u32);
            li.num_blocks += 1;
            if l == 0 {
                break;
            }
            l = loops[l as usize].parent;
        }
    }
    // the root already covers everything; fix its counters
    loops[0].begin = 0;
    loops[0].end = (num_blocks - 1) as u32;
    loops[0].num_blocks = num_blocks as u32;

    // --- predecessors counts --------------------------------------------------
    let mut num_preds = vec![0u32; num_blocks];
    for b in &blocks {
        for s in adapter.block_succs(*b) {
            num_preds[s.idx()] += 1;
        }
    }

    // --- step 4: liveness ------------------------------------------------------
    let mut liveness = vec![LiveRange::default(); adapter.value_count()];

    let define = |liveness: &mut Vec<LiveRange>, v: ValueRef, pos: u32| {
        if v.idx() >= liveness.len() {
            return;
        }
        let lr = &mut liveness[v.idx()];
        lr.defined = true;
        lr.first = lr.first.min(pos);
        lr.last = lr.last.max(pos);
    };

    // definitions
    let entry_pos = 0u32;
    for arg in adapter.args() {
        define(&mut liveness, arg, entry_pos);
    }
    for sv in adapter.static_stack_vars() {
        define(&mut liveness, sv.value, entry_pos);
    }
    for b in &blocks {
        let pos = block_pos[b.idx()];
        for phi in adapter.block_phis(*b) {
            define(&mut liveness, phi, pos);
        }
        for inst in adapter.block_insts(*b) {
            for res in adapter.inst_results(inst) {
                define(&mut liveness, res, pos);
            }
        }
    }

    // uses (with loop extension)
    let extend_for_loops = |liveness: &mut Vec<LiveRange>,
                            loops: &Vec<LoopInfo>,
                            block_loop: &Vec<u32>,
                            v: ValueRef,
                            use_pos: u32| {
        let lr = &mut liveness[v.idx()];
        let def_pos = if lr.defined { lr.first } else { use_pos };
        // outermost loop containing the use but not the definition
        let mut l = block_loop[use_pos as usize];
        let mut candidate: Option<u32> = None;
        while l != 0 {
            let li = &loops[l as usize];
            let contains_def = def_pos >= li.begin && def_pos <= li.end;
            if contains_def {
                break;
            }
            candidate = Some(l);
            l = li.parent;
        }
        if let Some(c) = candidate {
            let end = loops[c as usize].end;
            if end > lr.last {
                lr.last = end;
                lr.last_full = true;
            } else if end == lr.last {
                lr.last_full = true;
            }
        }
    };

    let add_use = |liveness: &mut Vec<LiveRange>, v: ValueRef, pos: u32, at_end: bool| {
        if v.idx() >= liveness.len() || adapter.val_is_const(v) {
            return;
        }
        let lr = &mut liveness[v.idx()];
        lr.uses += 1;
        lr.first = lr.first.min(pos);
        if pos > lr.last {
            lr.last = pos;
            lr.last_full = at_end;
        } else if pos == lr.last && at_end {
            lr.last_full = true;
        }
        extend_for_loops(liveness, &loops, &block_loop, v, pos);
    };

    for b in &blocks {
        let pos = block_pos[b.idx()];
        for inst in adapter.block_insts(*b) {
            for op in adapter.inst_operands(inst) {
                add_use(&mut liveness, op, pos, false);
            }
        }
        // phi incoming values are used at the end of the incoming block
        for phi in adapter.block_phis(*b) {
            for inc in adapter.phi_incoming(phi) {
                let ipos = block_pos[inc.block.idx()];
                if ipos != u32::MAX {
                    add_use(&mut liveness, inc.value, ipos, true);
                }
            }
            // the phi itself is "used" by each incoming edge's move target;
            // ensure its range covers all incoming blocks that are inside its
            // loop (back edges), mirroring the paper's handling.
            let ppos = block_pos[b.idx()];
            for inc in adapter.phi_incoming(phi) {
                let ipos = block_pos[inc.block.idx()];
                if ipos != u32::MAX && ipos > ppos {
                    let lr = &mut liveness[phi.idx()];
                    if ipos > lr.last {
                        lr.last = ipos;
                        lr.last_full = true;
                    }
                }
            }
        }
    }

    Ok(Analysis {
        layout,
        block_pos,
        block_loop,
        loops,
        liveness,
        num_preds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::{FuncRef, InstRef, Linkage, PhiIncoming};
    use crate::regs::RegBank;

    /// Minimal mock IR: a CFG plus per-block instructions described as
    /// (result, operands) pairs. Value 0..num_args are arguments.
    /// Per block: (phi value, [(pred, incoming value)]).
    type PhiList = Vec<Vec<(u32, Vec<(u32, u32)>)>>;

    struct MockIr {
        succs: Vec<Vec<u32>>,
        /// per block: list of (result value or NONE, operand values)
        insts: Vec<Vec<(Option<u32>, Vec<u32>)>>,
        phis: PhiList,
        num_args: u32,
        num_values: usize,
    }

    impl MockIr {
        fn new(succs: Vec<Vec<u32>>, num_args: u32) -> MockIr {
            let n = succs.len();
            MockIr {
                succs,
                insts: vec![Vec::new(); n],
                phis: vec![Vec::new(); n],
                num_args,
                num_values: num_args as usize,
            }
        }
        fn inst(&mut self, block: u32, result: Option<u32>, ops: Vec<u32>) {
            if let Some(r) = result {
                self.num_values = self.num_values.max(r as usize + 1);
            }
            self.insts[block as usize].push((result, ops));
        }
        fn phi(&mut self, block: u32, val: u32, incoming: Vec<(u32, u32)>) {
            self.num_values = self.num_values.max(val as usize + 1);
            self.phis[block as usize].push((val, incoming));
        }
    }

    impl IrAdapter for MockIr {
        fn funcs(&self) -> Vec<FuncRef> {
            vec![FuncRef(0)]
        }
        fn func_name(&self, _: FuncRef) -> String {
            "mock".into()
        }
        fn func_linkage(&self, _: FuncRef) -> Linkage {
            Linkage::External
        }
        fn func_is_definition(&self, _: FuncRef) -> bool {
            true
        }
        fn switch_func(&mut self, _: FuncRef) {}
        fn value_count(&self) -> usize {
            self.num_values
        }
        fn args(&self) -> Vec<ValueRef> {
            (0..self.num_args).map(ValueRef).collect()
        }
        fn blocks(&self) -> Vec<BlockRef> {
            (0..self.succs.len() as u32).map(BlockRef).collect()
        }
        fn block_succs(&self, block: BlockRef) -> Vec<BlockRef> {
            self.succs[block.idx()]
                .iter()
                .map(|&b| BlockRef(b))
                .collect()
        }
        fn block_phis(&self, block: BlockRef) -> Vec<ValueRef> {
            self.phis[block.idx()]
                .iter()
                .map(|&(v, _)| ValueRef(v))
                .collect()
        }
        fn block_insts(&self, block: BlockRef) -> Vec<InstRef> {
            // encode (block, idx) as block*1000+idx
            (0..self.insts[block.idx()].len() as u32)
                .map(|i| InstRef(block.0 * 1000 + i))
                .collect()
        }
        fn phi_incoming(&self, phi: ValueRef) -> Vec<PhiIncoming> {
            for blk in &self.phis {
                for (v, inc) in blk {
                    if *v == phi.0 {
                        return inc
                            .iter()
                            .map(|&(b, val)| PhiIncoming {
                                block: BlockRef(b),
                                value: ValueRef(val),
                            })
                            .collect();
                    }
                }
            }
            Vec::new()
        }
        fn inst_operands(&self, inst: InstRef) -> Vec<ValueRef> {
            let (b, i) = (inst.0 / 1000, inst.0 % 1000);
            self.insts[b as usize][i as usize]
                .1
                .iter()
                .map(|&v| ValueRef(v))
                .collect()
        }
        fn inst_results(&self, inst: InstRef) -> Vec<ValueRef> {
            let (b, i) = (inst.0 / 1000, inst.0 % 1000);
            self.insts[b as usize][i as usize]
                .0
                .map(|v| vec![ValueRef(v)])
                .unwrap_or_default()
        }
        fn val_part_count(&self, _: ValueRef) -> u32 {
            1
        }
        fn val_part_size(&self, _: ValueRef, _: u32) -> u32 {
            8
        }
        fn val_part_bank(&self, _: ValueRef, _: u32) -> RegBank {
            RegBank::GP
        }
    }

    /// diamond: 0 -> {1,2} -> 3
    fn diamond() -> MockIr {
        MockIr::new(vec![vec![1, 2], vec![3], vec![3], vec![]], 1)
    }

    #[test]
    fn straight_line_layout() {
        let ir = MockIr::new(vec![vec![1], vec![2], vec![]], 0);
        let a = analyze(&ir).unwrap();
        assert_eq!(a.layout, vec![BlockRef(0), BlockRef(1), BlockRef(2)]);
        assert_eq!(a.loops.len(), 1);
        assert_eq!(a.num_preds, vec![0, 1, 1]);
    }

    #[test]
    fn diamond_layout_is_rpo() {
        let ir = diamond();
        let a = analyze(&ir).unwrap();
        assert_eq!(a.pos(BlockRef(0)), 0);
        assert_eq!(a.pos(BlockRef(3)), 3);
        // both branches before the join
        assert!(a.pos(BlockRef(1)) < 3 && a.pos(BlockRef(2)) < 3);
        assert_eq!(a.num_preds[3], 2);
    }

    #[test]
    fn simple_loop_detected_and_contiguous() {
        // 0 -> 1; 1 -> {2, 3}; 2 -> 1; 3 (exit)
        let ir = MockIr::new(vec![vec![1], vec![2, 3], vec![1], vec![]], 0);
        let a = analyze(&ir).unwrap();
        assert_eq!(a.loops.len(), 2, "one real loop plus the root");
        let l = &a.loops[1];
        assert_eq!(l.level, 1);
        // loop contains blocks 1 and 2 contiguously
        let p1 = a.pos(BlockRef(1));
        let p2 = a.pos(BlockRef(2));
        assert_eq!(l.begin, p1.min(p2));
        assert_eq!(l.end, p1.max(p2));
        assert_eq!(l.num_blocks, 2);
        assert_eq!(l.header, a.pos(BlockRef(1)));
        assert!(a.is_loop_header(a.pos(BlockRef(1))));
        // exit block is outside the loop
        assert_eq!(a.block_loop[a.pos(BlockRef(3)) as usize], 0);
    }

    #[test]
    fn nested_loops_have_levels() {
        // 0 -> 1; 1 -> 2; 2 -> {2? no}. Build: outer 1..4, inner 2..3
        // 0->1, 1->2, 2->3, 3->{2,4}, 4->{1,5}, 5 exit
        let ir = MockIr::new(
            vec![vec![1], vec![2], vec![3], vec![2, 4], vec![1, 5], vec![]],
            0,
        );
        let a = analyze(&ir).unwrap();
        assert_eq!(a.loops.len(), 3);
        let depths: Vec<u32> = (0..6)
            .map(|b| a.loop_depth_of_pos(a.pos(BlockRef(b))))
            .collect();
        assert_eq!(depths[0], 0);
        assert_eq!(depths[1], 1);
        assert_eq!(depths[2], 2);
        assert_eq!(depths[3], 2);
        assert_eq!(depths[4], 1);
        assert_eq!(depths[5], 0);
    }

    #[test]
    fn irreducible_cfg_does_not_crash() {
        // 0 -> {1, 2}; 1 -> 2; 2 -> 1; 1 -> 3; 2 -> 3 (two-entry loop {1,2})
        let ir = MockIr::new(vec![vec![1, 2], vec![2, 3], vec![1, 3], vec![]], 0);
        let a = analyze(&ir).unwrap();
        assert_eq!(a.layout.len(), 4);
        // every block has a position
        for b in 0..4u32 {
            assert!(a.pos(BlockRef(b)) < 4);
        }
    }

    #[test]
    fn unreachable_blocks_are_appended() {
        let ir = MockIr::new(vec![vec![1], vec![], vec![1]], 0); // block 2 unreachable
        let a = analyze(&ir).unwrap();
        assert_eq!(a.layout.len(), 3);
        assert_eq!(a.pos(BlockRef(2)), 2);
    }

    #[test]
    fn liveness_straight_line() {
        // b0: v1 = use(arg0); b1: v2 = use(v1); b2: use(v2)
        let mut ir = MockIr::new(vec![vec![1], vec![2], vec![]], 1);
        ir.inst(0, Some(1), vec![0]);
        ir.inst(1, Some(2), vec![1]);
        ir.inst(2, None, vec![2]);
        let a = analyze(&ir).unwrap();
        let l1 = a.live(ValueRef(1));
        assert_eq!((l1.first, l1.last, l1.uses), (0, 1, 1));
        assert!(!l1.last_full);
        let l0 = a.live(ValueRef(0));
        assert_eq!((l0.first, l0.last, l0.uses), (0, 0, 1));
        assert!(l0.defined);
    }

    #[test]
    fn liveness_extends_over_loop() {
        // v1 defined in block 0, used in loop body block 2; loop is {1,2,3}
        // 0 -> 1; 1 -> 2; 2 -> 3; 3 -> {1, 4}; 4 exit
        let mut ir = MockIr::new(vec![vec![1], vec![2], vec![3], vec![1, 4], vec![]], 0);
        ir.inst(0, Some(0), vec![]);
        ir.inst(2, None, vec![0]); // use inside loop
        let a = analyze(&ir).unwrap();
        let lr = a.live(ValueRef(0));
        // must be extended to the end of the loop (block 3's layout pos)
        assert_eq!(lr.last, a.pos(BlockRef(3)));
        assert!(lr.last_full);
    }

    #[test]
    fn liveness_not_extended_when_def_inside_loop() {
        // value defined and used entirely inside the loop
        let mut ir = MockIr::new(vec![vec![1], vec![2], vec![1, 3], vec![]], 0);
        ir.inst(1, Some(0), vec![]);
        ir.inst(2, None, vec![0]);
        let a = analyze(&ir).unwrap();
        let lr = a.live(ValueRef(0));
        assert_eq!(lr.first, a.pos(BlockRef(1)));
        assert_eq!(lr.last, a.pos(BlockRef(2)));
        assert!(!lr.last_full);
    }

    #[test]
    fn phi_incoming_counts_as_use_at_end_of_pred() {
        // 0 -> {1,2}; 1 -> 3; 2 -> 3; 3 has phi(v3) of v1 from 1, v2 from 2
        let mut ir = MockIr::new(vec![vec![1, 2], vec![3], vec![3], vec![]], 0);
        ir.inst(1, Some(1), vec![]);
        ir.inst(2, Some(2), vec![]);
        ir.phi(3, 3, vec![(1, 1), (2, 2)]);
        ir.inst(3, None, vec![3]);
        let a = analyze(&ir).unwrap();
        let l1 = a.live(ValueRef(1));
        assert_eq!(l1.last, a.pos(BlockRef(1)));
        assert!(
            l1.last_full,
            "phi use keeps the value live to the end of the pred"
        );
        let l3 = a.live(ValueRef(3));
        assert_eq!(l3.first, a.pos(BlockRef(3)));
        assert_eq!(l3.uses, 1);
    }

    #[test]
    fn loop_phi_live_range_covers_backedge() {
        // loop counter phi: blocks 0 -> 1(header, phi) -> 2(latch) -> {1, 3}
        let mut ir = MockIr::new(vec![vec![1], vec![2], vec![1, 3], vec![]], 1);
        ir.phi(1, 1, vec![(0, 0), (2, 2)]);
        ir.inst(2, Some(2), vec![1]);
        let a = analyze(&ir).unwrap();
        let lphi = a.live(ValueRef(1));
        assert_eq!(lphi.first, a.pos(BlockRef(1)));
        assert_eq!(lphi.last, a.pos(BlockRef(2)));
        assert!(lphi.last_full);
        // v2 (the next value) is used by the phi at end of block 2 but defined in 2
        let l2 = a.live(ValueRef(2));
        assert_eq!(l2.first, a.pos(BlockRef(2)));
    }

    #[test]
    fn empty_function_is_an_error() {
        let ir = MockIr::new(vec![], 0);
        assert!(analyze(&ir).is_err());
    }

    #[test]
    fn use_counts_accumulate() {
        let mut ir = MockIr::new(vec![vec![]], 1);
        ir.inst(0, Some(1), vec![0, 0, 0]);
        ir.inst(0, None, vec![1, 0]);
        let a = analyze(&ir).unwrap();
        assert_eq!(a.live(ValueRef(0)).uses, 4);
        assert_eq!(a.live(ValueRef(1)).uses, 1);
    }
}
