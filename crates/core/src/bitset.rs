//! A dense, reusable bit set indexed by small integers.
//!
//! Used for per-instruction flags on the code-generation hot path (e.g. the
//! compare/branch fusion marks), where a `HashSet<u32>` would hash and
//! allocate per instruction. The backing word vector is retained across
//! [`DenseBitSet::reset`] calls, so a bit set reused across functions
//! allocates only until it has grown to the largest function.

/// A growable bit set over `u32` indices.
#[derive(Debug, Default, Clone)]
pub struct DenseBitSet {
    words: Vec<u64>,
    /// Number of bits currently set (maintained for cheap emptiness checks).
    len: usize,
}

impl DenseBitSet {
    /// Creates an empty bit set.
    pub fn new() -> DenseBitSet {
        DenseBitSet::default()
    }

    /// Clears all bits and ensures capacity for indices `< bits`, keeping
    /// the backing allocation.
    pub fn reset(&mut self, bits: usize) {
        let words = bits.div_ceil(64);
        self.words.clear();
        self.words.resize(words, 0);
        self.len = 0;
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.len
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets the bit at `idx` (growing the set if needed). Returns whether
    /// the bit was newly set.
    pub fn insert(&mut self, idx: u32) -> bool {
        let (w, b) = (idx as usize / 64, idx as usize % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << b;
        let newly = self.words[w] & mask == 0;
        self.words[w] |= mask;
        self.len += newly as usize;
        newly
    }

    /// Whether the bit at `idx` is set.
    pub fn contains(&self, idx: u32) -> bool {
        let (w, b) = (idx as usize / 64, idx as usize % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Clears the bit at `idx` and returns whether it was set.
    pub fn take(&mut self, idx: u32) -> bool {
        let (w, b) = (idx as usize / 64, idx as usize % 64);
        let Some(word) = self.words.get_mut(w) else {
            return false;
        };
        let mask = 1u64 << b;
        let was = *word & mask != 0;
        *word &= !mask;
        self.len -= was as usize;
        was
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_take() {
        let mut s = DenseBitSet::new();
        assert!(s.is_empty());
        assert!(!s.contains(5));
        assert!(s.insert(5));
        assert!(!s.insert(5), "second insert reports already-set");
        assert!(s.contains(5));
        assert_eq!(s.count(), 1);
        assert!(s.take(5));
        assert!(!s.take(5));
        assert!(s.is_empty());
    }

    #[test]
    fn grows_on_demand_and_spans_words() {
        let mut s = DenseBitSet::new();
        s.insert(63);
        s.insert(64);
        s.insert(1000);
        assert!(s.contains(63) && s.contains(64) && s.contains(1000));
        assert!(!s.contains(65));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn reset_clears_but_out_of_range_queries_are_safe() {
        let mut s = DenseBitSet::new();
        s.insert(200);
        s.reset(10);
        assert!(s.is_empty());
        assert!(!s.contains(200), "cleared even beyond the new size");
        assert!(!s.take(10_000), "take out of range is a no-op");
        s.insert(9);
        assert_eq!(s.count(), 1);
    }
}
