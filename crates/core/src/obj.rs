//! Minimal ELF64 relocatable object writer.
//!
//! The framework can emit the contents of a [`CodeBuffer`] as a relocatable
//! ELF object (`ET_REL`) for x86-64 or AArch64. Only the features the
//! back-ends need are implemented: the four standard sections, a symbol
//! table, and RELA relocation sections.
//!
//! Serialization is a pure function of the buffer's sections, symbol table
//! and relocation list, in their stored order. Since the parallel
//! pipeline's shard merge ([`crate::parallel`]) reproduces all three
//! byte-for-byte, objects written from a merged buffer are identical to the
//! single-threaded output (pinned by `crates/llvm/tests/parallel.rs`).

use crate::codebuf::{CodeBuffer, RelocKind, SectionKind, SymbolBinding};
use crate::error::{Error, Result};

/// Target machine for the ELF header.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ElfMachine {
    /// EM_X86_64
    X86_64,
    /// EM_AARCH64
    Aarch64,
}

impl ElfMachine {
    fn e_machine(self) -> u16 {
        match self {
            ElfMachine::X86_64 => 62,
            ElfMachine::Aarch64 => 183,
        }
    }

    fn reloc_type(self, kind: RelocKind) -> Result<u32> {
        match (self, kind) {
            (ElfMachine::X86_64, RelocKind::Abs64) => Ok(1), // R_X86_64_64
            (ElfMachine::X86_64, RelocKind::Pc32) => Ok(2),  // R_X86_64_PC32
            (ElfMachine::Aarch64, RelocKind::Abs64) => Ok(257), // R_AARCH64_ABS64
            (ElfMachine::Aarch64, RelocKind::Pc32) => Ok(261), // R_AARCH64_PREL32
            (ElfMachine::Aarch64, RelocKind::Call26) => Ok(283), // R_AARCH64_CALL26
            (ElfMachine::Aarch64, RelocKind::AdrpPage) => Ok(275), // R_AARCH64_ADR_PREL_PG_HI21
            (ElfMachine::Aarch64, RelocKind::AddLo12) => Ok(277), // R_AARCH64_ADD_ABS_LO12_NC
            (m, k) => Err(Error::Emit(format!(
                "relocation {k:?} unsupported for {m:?}"
            ))),
        }
    }
}

const SHT_PROGBITS: u32 = 1;
const SHT_SYMTAB: u32 = 2;
const SHT_STRTAB: u32 = 3;
const SHT_RELA: u32 = 4;
const SHT_NOBITS: u32 = 8;

const SHF_WRITE: u64 = 1;
const SHF_ALLOC: u64 = 2;
const SHF_EXECINSTR: u64 = 4;

struct SectionHeader {
    name_off: u32,
    sh_type: u32,
    flags: u64,
    offset: u64,
    size: u64,
    link: u32,
    info: u32,
    addralign: u64,
    entsize: u64,
}

struct StrTab {
    data: Vec<u8>,
}

impl StrTab {
    fn new() -> StrTab {
        StrTab { data: vec![0] }
    }
    fn add(&mut self, s: &str) -> u32 {
        let off = self.data.len() as u32;
        self.data.extend_from_slice(s.as_bytes());
        self.data.push(0);
        off
    }
}

fn write_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serializes the code buffer into a relocatable ELF64 object image.
///
/// The resulting bytes can be written to a `.o` file and inspected with
/// standard binutils (`readelf`, `objdump`) or linked with a system linker.
///
/// # Errors
///
/// Returns an error if a relocation kind is not representable for the chosen
/// machine.
pub fn write_elf_object(buf: &CodeBuffer, machine: ElfMachine) -> Result<Vec<u8>> {
    // Layout:
    // [ehdr][section data...][symtab][strtab][shstrtab][rela sections...][section headers]
    let mut shstrtab = StrTab::new();
    let mut strtab = StrTab::new();

    // Symbol table: local symbols first, then globals (ELF requirement).
    // Index 0 is the null symbol; then section symbols for the 4 sections.
    let sec_order = SectionKind::ALL;

    #[derive(Clone)]
    struct ElfSym {
        name: u32,
        info: u8,
        shndx: u16,
        value: u64,
        size: u64,
    }

    let mut local_syms: Vec<ElfSym> = Vec::new();
    let mut global_syms: Vec<ElfSym> = Vec::new();
    // null symbol
    local_syms.push(ElfSym {
        name: 0,
        info: 0,
        shndx: 0,
        value: 0,
        size: 0,
    });
    // section symbols (STT_SECTION = 3, STB_LOCAL = 0); section header index
    // for section i is 1 + i (0 is the null section header).
    for (i, _k) in sec_order.iter().enumerate() {
        local_syms.push(ElfSym {
            name: 0,
            info: 3,
            shndx: (1 + i) as u16,
            value: 0,
            size: 0,
        });
    }

    // Map CodeBuffer SymbolId -> ELF symbol table index (assigned after we
    // know how many locals there are).
    let mut user_syms: Vec<(bool, ElfSym)> = Vec::new(); // (is_local, sym)
    for (i, sym) in buf.symbols().iter().enumerate() {
        let name = strtab.add(buf.symbol_name(crate::codebuf::SymbolId(i as u32)));
        let stype: u8 = if sym.is_func { 2 } else { 1 }; // FUNC / OBJECT
        let bind: u8 = match sym.binding {
            SymbolBinding::Local => 0,
            SymbolBinding::Global => 1,
            SymbolBinding::Weak => 2,
        };
        let (shndx, value) = match sym.section {
            Some(kind) => (
                (1 + sec_order.iter().position(|&s| s == kind).unwrap()) as u16,
                sym.offset,
            ),
            None => (0u16, 0u64),
        };
        // Undefined symbols must be global or weak for linking purposes.
        let info = if sym.section.is_none() && bind == 0 {
            (1 << 4) | stype
        } else {
            (bind << 4) | stype
        };
        let esym = ElfSym {
            name,
            info,
            shndx,
            value,
            size: sym.size,
        };
        user_syms.push((info >> 4 == 0, esym));
    }

    let mut symid_to_index = vec![0u32; buf.symbols().len()];
    // locals first
    for (i, (is_local, esym)) in user_syms.iter().enumerate() {
        if *is_local {
            symid_to_index[i] = local_syms.len() as u32;
            local_syms.push(esym.clone());
        }
    }
    let first_global = local_syms.len() as u32;
    for (i, (is_local, esym)) in user_syms.iter().enumerate() {
        if !*is_local {
            symid_to_index[i] = (local_syms.len() + global_syms.len()) as u32;
            global_syms.push(esym.clone());
        }
    }

    let mut symtab_data: Vec<u8> = Vec::new();
    for s in local_syms.iter().chain(global_syms.iter()) {
        write_u32(&mut symtab_data, s.name);
        symtab_data.push(s.info);
        symtab_data.push(0); // st_other
        write_u16(&mut symtab_data, s.shndx);
        write_u64(&mut symtab_data, s.value);
        write_u64(&mut symtab_data, s.size);
    }

    // Relocation sections, one per section that has relocations.
    let mut rela_data: Vec<(SectionKind, Vec<u8>)> = Vec::new();
    for &kind in &sec_order {
        let mut data = Vec::new();
        for reloc in buf.relocs().iter().filter(|r| r.section == kind) {
            let symidx = symid_to_index[reloc.symbol.0 as usize];
            // If the target symbol is defined locally we can still relocate
            // against the symbol itself; keep it simple.
            write_u64(&mut data, reloc.offset);
            let rtype = machine.reloc_type(reloc.kind)?;
            write_u64(&mut data, ((symidx as u64) << 32) | rtype as u64);
            write_u64(&mut data, reloc.addend as u64);
        }
        if !data.is_empty() {
            rela_data.push((kind, data));
        }
    }

    // Section header table: null, 4 progbits/nobits, symtab, strtab, shstrtab, rela...
    let mut headers: Vec<SectionHeader> = Vec::new();
    headers.push(SectionHeader {
        name_off: 0,
        sh_type: 0,
        flags: 0,
        offset: 0,
        size: 0,
        link: 0,
        info: 0,
        addralign: 0,
        entsize: 0,
    });

    let ehdr_size = 64u64;
    let mut data_blob: Vec<u8> = Vec::new();
    let mut sec_offsets = [0u64; 4];
    for (i, &kind) in sec_order.iter().enumerate() {
        // align to 16
        while !(ehdr_size as usize + data_blob.len()).is_multiple_of(16) {
            data_blob.push(0);
        }
        sec_offsets[i] = ehdr_size + data_blob.len() as u64;
        if kind != SectionKind::Bss {
            data_blob.extend_from_slice(buf.section_data(kind));
        }
        let (sh_type, flags) = match kind {
            SectionKind::Text => (SHT_PROGBITS, SHF_ALLOC | SHF_EXECINSTR),
            SectionKind::Data => (SHT_PROGBITS, SHF_ALLOC | SHF_WRITE),
            SectionKind::ROData => (SHT_PROGBITS, SHF_ALLOC),
            SectionKind::Bss => (SHT_NOBITS, SHF_ALLOC | SHF_WRITE),
        };
        headers.push(SectionHeader {
            name_off: shstrtab.add(kind.name()),
            sh_type,
            flags,
            offset: sec_offsets[i],
            size: buf.section_size(kind),
            link: 0,
            info: 0,
            addralign: 16,
            entsize: 0,
        });
    }

    // symtab
    while !(ehdr_size as usize + data_blob.len()).is_multiple_of(8) {
        data_blob.push(0);
    }
    let symtab_off = ehdr_size + data_blob.len() as u64;
    data_blob.extend_from_slice(&symtab_data);
    let symtab_shndx = headers.len() as u32;
    headers.push(SectionHeader {
        name_off: shstrtab.add(".symtab"),
        sh_type: SHT_SYMTAB,
        flags: 0,
        offset: symtab_off,
        size: symtab_data.len() as u64,
        link: symtab_shndx + 1, // strtab follows
        info: first_global,
        addralign: 8,
        entsize: 24,
    });

    // strtab
    let strtab_off = ehdr_size + data_blob.len() as u64;
    data_blob.extend_from_slice(&strtab.data);
    headers.push(SectionHeader {
        name_off: shstrtab.add(".strtab"),
        sh_type: SHT_STRTAB,
        flags: 0,
        offset: strtab_off,
        size: strtab.data.len() as u64,
        link: 0,
        info: 0,
        addralign: 1,
        entsize: 0,
    });

    // rela sections
    for (kind, data) in &rela_data {
        while !(ehdr_size as usize + data_blob.len()).is_multiple_of(8) {
            data_blob.push(0);
        }
        let off = ehdr_size + data_blob.len() as u64;
        data_blob.extend_from_slice(data);
        let target_shndx = 1 + sec_order.iter().position(|s| s == kind).unwrap() as u32;
        headers.push(SectionHeader {
            name_off: shstrtab.add(&format!(".rela{}", kind.name())),
            sh_type: SHT_RELA,
            flags: 0,
            offset: off,
            size: data.len() as u64,
            link: symtab_shndx,
            info: target_shndx,
            addralign: 8,
            entsize: 24,
        });
    }

    // shstrtab
    let shstrtab_name = shstrtab.add(".shstrtab");
    let shstrtab_off = ehdr_size + data_blob.len() as u64;
    let shstrtab_index = headers.len() as u16;
    // note: size computed after adding the name above
    let shstr_data = shstrtab.data.clone();
    data_blob.extend_from_slice(&shstr_data);
    headers.push(SectionHeader {
        name_off: shstrtab_name,
        sh_type: SHT_STRTAB,
        flags: 0,
        offset: shstrtab_off,
        size: shstr_data.len() as u64,
        link: 0,
        info: 0,
        addralign: 1,
        entsize: 0,
    });

    // section header table offset
    while !(ehdr_size as usize + data_blob.len()).is_multiple_of(8) {
        data_blob.push(0);
    }
    let shoff = ehdr_size + data_blob.len() as u64;

    // ELF header
    let mut out: Vec<u8> =
        Vec::with_capacity(ehdr_size as usize + data_blob.len() + headers.len() * 64);
    out.extend_from_slice(&[0x7f, b'E', b'L', b'F', 2, 1, 1, 0]); // 64-bit, LE, SysV
    out.extend_from_slice(&[0; 8]);
    write_u16(&mut out, 1); // ET_REL
    write_u16(&mut out, machine.e_machine());
    write_u32(&mut out, 1); // EV_CURRENT
    write_u64(&mut out, 0); // entry
    write_u64(&mut out, 0); // phoff
    write_u64(&mut out, shoff);
    write_u32(&mut out, 0); // flags
    write_u16(&mut out, 64); // ehsize
    write_u16(&mut out, 0); // phentsize
    write_u16(&mut out, 0); // phnum
    write_u16(&mut out, 64); // shentsize
    write_u16(&mut out, headers.len() as u16);
    write_u16(&mut out, shstrtab_index);
    debug_assert_eq!(out.len(), 64);

    out.extend_from_slice(&data_blob);

    for h in &headers {
        write_u32(&mut out, h.name_off);
        write_u32(&mut out, h.sh_type);
        write_u64(&mut out, h.flags);
        write_u64(&mut out, 0); // addr
        write_u64(&mut out, h.offset);
        write_u64(&mut out, h.size);
        write_u32(&mut out, h.link);
        write_u32(&mut out, h.info);
        write_u64(&mut out, h.addralign);
        write_u64(&mut out, h.entsize);
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebuf::{Reloc, SymbolBinding};

    fn sample_buffer() -> CodeBuffer {
        let mut buf = CodeBuffer::new();
        let sym = buf.declare_symbol("main", SymbolBinding::Global, true);
        buf.emit_u8(0xc3); // ret
        buf.define_symbol(sym, SectionKind::Text, 0, 1);
        let ext = buf.declare_symbol("memcpy", SymbolBinding::Global, true);
        buf.emit_u8(0xe8);
        let off = buf.text_offset();
        buf.emit_u32(0);
        buf.add_reloc(Reloc {
            section: SectionKind::Text,
            offset: off,
            symbol: ext,
            kind: RelocKind::Pc32,
            addend: -4,
        });
        buf.append(SectionKind::ROData, &[1, 2, 3, 4]);
        buf.reserve_bss(64, 8);
        buf
    }

    #[test]
    fn elf_header_magic_and_machine() {
        let buf = sample_buffer();
        let elf = write_elf_object(&buf, ElfMachine::X86_64).unwrap();
        assert_eq!(&elf[0..4], &[0x7f, b'E', b'L', b'F']);
        assert_eq!(elf[4], 2); // 64-bit
        assert_eq!(u16::from_le_bytes([elf[16], elf[17]]), 1); // ET_REL
        assert_eq!(u16::from_le_bytes([elf[18], elf[19]]), 62); // x86-64
        let a64 = write_elf_object(&buf, ElfMachine::Aarch64).unwrap();
        assert_eq!(u16::from_le_bytes([a64[18], a64[19]]), 183);
    }

    #[test]
    fn section_headers_parse_back() {
        let buf = sample_buffer();
        let elf = write_elf_object(&buf, ElfMachine::X86_64).unwrap();
        let shoff = u64::from_le_bytes(elf[40..48].try_into().unwrap()) as usize;
        let shnum = u16::from_le_bytes(elf[60..62].try_into().unwrap()) as usize;
        // null + 4 sections + symtab + strtab + 1 rela + shstrtab = 9
        assert_eq!(shnum, 9);
        // every header must fit in the file
        assert!(shoff + shnum * 64 <= elf.len());
        // first non-null section is .text with our 6 bytes
        let text_size =
            u64::from_le_bytes(elf[shoff + 64 + 32..shoff + 64 + 40].try_into().unwrap());
        assert_eq!(text_size, buf.section_size(SectionKind::Text));
    }

    #[test]
    fn unsupported_reloc_for_machine_errors() {
        let mut buf = CodeBuffer::new();
        let s = buf.declare_symbol("x", SymbolBinding::Global, false);
        buf.emit_u32(0);
        buf.add_reloc(Reloc {
            section: SectionKind::Text,
            offset: 0,
            symbol: s,
            kind: RelocKind::Call26,
            addend: 0,
        });
        assert!(write_elf_object(&buf, ElfMachine::X86_64).is_err());
        assert!(write_elf_object(&buf, ElfMachine::Aarch64).is_ok());
    }
}
