//! Persistent cross-process code cache: an mmap-able on-disk artifact store
//! for zero-compile warm restarts.
//!
//! The in-memory module cache of [`crate::service::CompileService`] answers
//! repeat requests at memory speed but dies with the process. This module
//! adds the tier below it: compiled modules are serialized into a
//! relocation-safe flat binary format and written to a cache directory, so a
//! *restarted* service — or a second service process on the same host —
//! answers a previously-compiled request straight from disk without invoking
//! any backend compile path.
//!
//! # Artifact format
//!
//! One artifact file per cache key, `<key:016x>.tpdeart`, little-endian
//! throughout. A fixed 64-byte header is followed by a single hash-covered
//! payload; every variable-length chunk inside the payload is padded to an
//! 8-byte boundary so the fixed-size symbol/relocation records that follow
//! it stay naturally aligned for the zero-copy views:
//!
//! ```text
//! offset  size  field
//! ------  ----  -------------------------------------------------------
//! 0x00    8     magic "TPDEART\0"
//! 0x08    4     format version (bumped on any layout change)
//! 0x0c    4     flags (0)
//! 0x10    8     cache key the artifact was stored under
//! 0x18    8     payload length (must equal file length - 64)
//! 0x20    8     FNV-1a hash of the entire payload
//! 0x28    8     .bss size
//! 0x30    4     symbol count
//! 0x34    4     relocation count
//! 0x38    4     name-arena length
//! 0x3c    4     reserved (0)
//! ------  ----  payload ------------------------------------------------
//!         8+n   .text   (u64 length + bytes, padded to 8)
//!         8+n   .data   (u64 length + bytes, padded to 8)
//!         8+n   .rodata (u64 length + bytes, padded to 8)
//!         n     symbol name arena (UTF-8, padded to 8)
//!         32*s  symbol records   (name start/end u32, offset u64,
//!               size u64, section u8, binding u8, is_func u8, pad)
//!         24*r  relocation records (offset u64, addend i64, symbol u32,
//!               section u8, kind u8, pad)
//!         48    compile stats (6 x u64)
//! ```
//!
//! Symbol names are stored in declaration order, so replaying them through
//! [`CodeBuffer::declare_symbol`] reproduces the original symbol table —
//! ids, interned arena and all — and the materialized module is
//! **byte-identical** to the one that was stored
//! ([`crate::codebuf::assert_identical`] is the contract, pinned by the
//! round-trip tests and re-asserted per request by `figures --disk-cache`).
//!
//! # Keying
//!
//! Artifacts are keyed by the same deterministic request hash the in-memory
//! cache uses ([`crate::service::ServiceBackend::request_key`], an FNV-1a
//! [`crate::service::Fnv1a`] over module content, backend kind and compile
//! options — stable across processes by construction), combined with the
//! [`FORMAT_VERSION`] stored in the header. A key or version mismatch is a
//! miss, never a wrong answer.
//!
//! # Crash safety and corruption
//!
//! Writers serialize to a process/thread-unique temp file, `fsync` it, and
//! atomically `rename` it into place (then `fsync` the directory), so a
//! concurrent reader sees either no artifact or a complete one — a crash
//! mid-store leaves at most a stale `.tmp` file. Loads verify before they
//! trust: the header is bounds-checked, the payload hash is recomputed over
//! the mapping, every record index is range-checked, and the materialized
//! module must pass [`CompiledModule::validate`]. A truncated file, a
//! flipped byte, a stale format version or a key mismatch all degrade to a
//! cache miss (the corrupt file is unlinked so the next store can heal it).
//! Transient I/O errors (`EINTR`/`EAGAIN`) are *retried* with capped
//! backoff before any such verdict — a signal-interrupted read must not
//! unlink a perfectly good artifact — and counted in
//! [`DiskCache::io_retries`]. All I/O paths carry [`crate::faultpoint`]
//! probes (`disk.read`, `disk.short_read`, `disk.rename`, `disk.flock`,
//! `disk.mmap`) so the fault-injection harness can exercise exactly these
//! degradations deterministically.
//!
//! # Concurrency
//!
//! Multiple service processes share one cache directory. Artifact files are
//! immutable once renamed into place and unlinking a mapped file is safe on
//! Unix, so readers never lock. The only shared mutable state is the LRU
//! index (`index.tpde`: `key size-tick` lines driving eviction), which is
//! updated under an exclusive `flock` on `index.lock`; artifact *presence*
//! is the source of truth and the index is rebuilt from a directory scan on
//! every eviction pass, so a lost or stale index only resets recency, never
//! correctness. Stores of a key that already has an artifact skip the write
//! entirely — determinism guarantees the bytes would be identical.

use crate::codebuf::{CodeBuffer, Reloc, RelocKind, SectionKind, SymbolBinding, SymbolId};
use crate::codegen::{CompileStats, CompiledModule};
use crate::error::{Error, Result};
use crate::faultpoint::{self, sites, IoFault};
use crate::jit::LinkView;
use crate::service::Fnv1a;
use crate::timing::PassTimings;
use std::collections::HashMap;
use std::fs::{self, File};
use std::hash::Hasher;
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Magic bytes at the start of every artifact file.
pub const MAGIC: [u8; 8] = *b"TPDEART\0";

/// Version of the artifact layout; any change to the format above bumps
/// this, and an artifact with a different version is a cache miss.
pub const FORMAT_VERSION: u32 = 1;

const HEADER_LEN: usize = 64;
const SYM_RECORD: usize = 32;
const RELOC_RECORD: usize = 24;
const STATS_LEN: usize = 48;
/// Section code of an undefined (external) symbol.
const SECTION_NONE: u8 = 0xff;

// --------------------------------------------------------------------------
// Transient-error retry
// --------------------------------------------------------------------------

/// Attempts per I/O operation before a transient error is given up on.
const IO_ATTEMPTS: u32 = 4;
/// Initial retry backoff; doubles per retry, capped at [`IO_BACKOFF_MAX`].
const IO_BACKOFF: Duration = Duration::from_micros(50);
const IO_BACKOFF_MAX: Duration = Duration::from_millis(2);

/// Whether an I/O error is transient (`EINTR`/`EAGAIN`-like): the operation
/// may well succeed if simply repeated, so treating it as corruption — and
/// unlinking a perfectly good artifact — would be wrong.
fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock
    ) || matches!(e.raw_os_error(), Some(4) | Some(11)) // EINTR, EAGAIN
}

/// Runs `f`, retrying transient failures up to [`IO_ATTEMPTS`] times with
/// capped exponential backoff. Each retry bumps `retries` (surfaced as
/// [`crate::timing::ServiceStats::disk_retries`]). The final error — still
/// transient after exhaustion, or non-transient on first sight — is
/// returned to the caller, who decides between "miss" and "corrupt".
fn retry_io<T>(retries: &AtomicU64, mut f: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut backoff = IO_BACKOFF;
    for attempt in 1.. {
        match f() {
            Ok(v) => return Ok(v),
            Err(e) if is_transient(&e) && attempt < IO_ATTEMPTS => {
                retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(IO_BACKOFF_MAX);
            }
            Err(e) => return Err(e),
        }
    }
    unreachable!("retry loop always returns")
}

// --------------------------------------------------------------------------
// Serialization
// --------------------------------------------------------------------------

fn pad8(out: &mut Vec<u8>) {
    while !out.len().is_multiple_of(8) {
        out.push(0);
    }
}

/// Serializes a compiled module into the artifact format under `key`.
///
/// The timings of the module are deliberately not stored: they describe one
/// past compile, not the module, and are excluded from the byte-identity
/// contract (`assert_identical` compares sections, symbols and relocations).
pub fn serialize_module(key: u64, module: &CompiledModule) -> Vec<u8> {
    let buf = &module.buf;
    let nsyms = buf.symbols().len();

    // Rebuild the name arena in declaration order; offsets in the artifact
    // are relative to this arena, not the buffer's internal one.
    let mut names = String::new();
    let mut name_ranges = Vec::with_capacity(nsyms);
    for i in 0..nsyms as u32 {
        let start = names.len() as u32;
        names.push_str(buf.symbol_name(SymbolId(i)));
        name_ranges.push((start, names.len() as u32));
    }

    let mut payload = Vec::new();
    for kind in [SectionKind::Text, SectionKind::Data, SectionKind::ROData] {
        let data = buf.section_data(kind);
        payload.extend_from_slice(&(data.len() as u64).to_le_bytes());
        payload.extend_from_slice(data);
        pad8(&mut payload);
    }
    payload.extend_from_slice(names.as_bytes());
    pad8(&mut payload);
    for (i, sym) in buf.symbols().iter().enumerate() {
        let (start, end) = name_ranges[i];
        payload.extend_from_slice(&start.to_le_bytes());
        payload.extend_from_slice(&end.to_le_bytes());
        payload.extend_from_slice(&sym.offset.to_le_bytes());
        payload.extend_from_slice(&sym.size.to_le_bytes());
        payload.push(sym.section.map_or(SECTION_NONE, SectionKind::code));
        payload.push(sym.binding.code());
        payload.push(sym.is_func as u8);
        payload.extend_from_slice(&[0u8; 5]);
    }
    for reloc in buf.relocs() {
        payload.extend_from_slice(&reloc.offset.to_le_bytes());
        payload.extend_from_slice(&reloc.addend.to_le_bytes());
        payload.extend_from_slice(&reloc.symbol.0.to_le_bytes());
        payload.push(reloc.section.code());
        payload.push(reloc.kind.code());
        payload.extend_from_slice(&[0u8; 2]);
    }
    let s = &module.stats;
    for v in [s.funcs, s.blocks, s.insts, s.spills, s.reloads, s.moves] {
        payload.extend_from_slice(&(v as u64).to_le_bytes());
    }

    let mut h = Fnv1a::new();
    h.write(&payload);
    let payload_hash = h.finish();

    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload_hash.to_le_bytes());
    out.extend_from_slice(&buf.section_size(SectionKind::Bss).to_le_bytes());
    out.extend_from_slice(&(nsyms as u32).to_le_bytes());
    out.extend_from_slice(&(buf.relocs().len() as u32).to_le_bytes());
    out.extend_from_slice(&(names.len() as u32).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    debug_assert_eq!(out.len(), HEADER_LEN);
    out.extend_from_slice(&payload);
    out
}

// --------------------------------------------------------------------------
// Memory mapping (no libc crate: std already links libc on Unix)
// --------------------------------------------------------------------------

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;
    const LOCK_EX: i32 = 2;
    const LOCK_UN: i32 = 8;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
        fn flock(fd: i32, operation: i32) -> i32;
    }

    /// Maps `len` bytes of `file` read-only; `None` on failure (the caller
    /// falls back to reading the file into memory).
    pub fn map_readonly(file: &File, len: usize) -> Option<*mut c_void> {
        if len == 0 {
            return None;
        }
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        (ptr as isize != -1).then_some(ptr)
    }

    pub fn unmap(ptr: *mut c_void, len: usize) {
        unsafe {
            munmap(ptr, len);
        }
    }

    /// Takes an exclusive advisory lock on `file`, blocking until available.
    /// `flock` locks the open file description, so two lock files opened by
    /// threads of one process exclude each other just like two processes do.
    pub fn lock_exclusive(file: &File) -> bool {
        unsafe { flock(file.as_raw_fd(), LOCK_EX) == 0 }
    }

    pub fn unlock(file: &File) {
        unsafe {
            flock(file.as_raw_fd(), LOCK_UN);
        }
    }
}

/// Backing storage of an [`Artifact`]: a read-only memory mapping where the
/// platform provides one, otherwise the file contents read into memory.
enum Backing {
    #[cfg(unix)]
    Map {
        ptr: *mut std::ffi::c_void,
        len: usize,
    },
    Heap(Vec<u8>),
}

impl Backing {
    /// Maps (or reads) the whole file. An injected [`sites::DISK_MMAP`]
    /// fault skips the mapping attempt, exercising the heap fallback; an
    /// injected [`sites::DISK_SHORT_READ`] truncates the buffered bytes
    /// (the hash check downstream must catch it).
    fn from_file(file: &mut File, len: usize) -> io::Result<Backing> {
        #[cfg(unix)]
        if faultpoint::trip(sites::DISK_MMAP, 0).is_none() {
            if let Some(ptr) = sys::map_readonly(file, len) {
                return Ok(Backing::Map { ptr, len });
            }
        }
        let mut bytes = Vec::with_capacity(len);
        file.read_to_end(&mut bytes)?;
        match faultpoint::trip(sites::DISK_SHORT_READ, 0) {
            Some(IoFault::Short) => bytes.truncate(bytes.len() / 2),
            Some(fault) => return Err(fault.to_io_error()),
            None => {}
        }
        Ok(Backing::Heap(bytes))
    }

    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            Backing::Map { ptr, len } => unsafe {
                std::slice::from_raw_parts(*ptr as *const u8, *len)
            },
            Backing::Heap(v) => v,
        }
    }

    /// Whether the bytes are served by a memory mapping (vs. a heap copy).
    fn is_mapped(&self) -> bool {
        match self {
            #[cfg(unix)]
            Backing::Map { .. } => true,
            Backing::Heap(_) => false,
        }
    }
}

impl Drop for Backing {
    fn drop(&mut self) {
        match self {
            #[cfg(unix)]
            Backing::Map { ptr, len } => sys::unmap(*ptr, *len),
            Backing::Heap(_) => {}
        }
    }
}

// --------------------------------------------------------------------------
// Artifact: verified zero-copy view of one stored module
// --------------------------------------------------------------------------

/// Why an artifact could not be opened (internal; the public API treats
/// every variant as a cache miss).
enum OpenError {
    /// No artifact stored under the key.
    Missing,
    /// The file exists but failed verification; the loader unlinks it.
    Corrupt,
    /// Reading failed with a transient error even after retries. The
    /// artifact is presumed intact — a miss, but **not** unlinked.
    Unavailable,
}

/// A verified, mmap-ed view of one on-disk artifact.
///
/// Section bytes, symbol records and relocation records are read directly
/// out of the mapping — nothing is copied until [`Artifact::to_module`]
/// materializes a [`CompiledModule`]. The view implements
/// [`crate::jit::LinkView`], so [`crate::jit::link_in_memory`] can produce a
/// [`crate::jit::JitImage`] straight from the mapping on a warm restart.
///
/// Every accessor is safe on a successfully opened artifact: opening
/// verifies the header, the payload hash and the bounds of every record, so
/// corruption is rejected up front rather than discovered mid-read.
pub struct Artifact {
    backing: Backing,
    bss_size: u64,
    nsyms: u32,
    nrelocs: u32,
    /// (offset, len) of .text/.data/.rodata bytes within the file.
    sections: [(usize, usize); 3],
    /// (offset, len) of the name arena within the file.
    names: (usize, usize),
    syms_off: usize,
    relocs_off: usize,
    stats: CompileStats,
}

fn rd_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(b[off..off + 4].try_into().unwrap())
}

fn rd_u64(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().unwrap())
}

fn rd_i64(b: &[u8], off: usize) -> i64 {
    i64::from_le_bytes(b[off..off + 8].try_into().unwrap())
}

impl Artifact {
    /// Opens and verifies the artifact at `path`. Each attempt re-opens the
    /// file from scratch, so transient failures (injected via
    /// [`sites::DISK_READ`] or real `EINTR`/`EAGAIN`) retry cleanly; a
    /// transient error that survives the retries is [`OpenError::Unavailable`]
    /// — a miss that must *not* unlink the (presumed intact) artifact.
    fn open(
        path: &Path,
        expect_key: u64,
        retries: &AtomicU64,
    ) -> std::result::Result<Artifact, OpenError> {
        let backing = retry_io(retries, || {
            if let Some(fault) = faultpoint::trip(sites::DISK_READ, 0) {
                return Err(fault.to_io_error());
            }
            let mut file = File::open(path)?;
            let len = file.metadata()?.len() as usize;
            Backing::from_file(&mut file, len)
        });
        let backing = match backing {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(OpenError::Missing),
            Err(e) if is_transient(&e) => return Err(OpenError::Unavailable),
            Err(_) => return Err(OpenError::Corrupt),
        };
        Artifact::parse(backing, expect_key).ok_or(OpenError::Corrupt)
    }

    /// Parses and verifies the artifact; `None` means corrupt/mismatched.
    fn parse(backing: Backing, expect_key: u64) -> Option<Artifact> {
        let b = backing.bytes();
        if b.len() < HEADER_LEN || b[..8] != MAGIC {
            return None;
        }
        if rd_u32(b, 0x08) != FORMAT_VERSION || rd_u64(b, 0x10) != expect_key {
            return None;
        }
        let payload_len = rd_u64(b, 0x18);
        if payload_len != (b.len() - HEADER_LEN) as u64 {
            return None; // truncated (or trailing garbage)
        }
        let payload = &b[HEADER_LEN..];
        let mut h = Fnv1a::new();
        h.write(payload);
        if h.finish() != rd_u64(b, 0x20) {
            return None;
        }
        let bss_size = rd_u64(b, 0x28);
        let nsyms = rd_u32(b, 0x30);
        let nrelocs = rd_u32(b, 0x34);
        let names_len = rd_u32(b, 0x38);

        // Walk the payload chunks with overflow-checked arithmetic (a
        // corrupt length field must not wrap the cursor); all offsets below
        // are file-relative.
        let align8 = |n: u64| n.checked_add(7).map(|n| n & !7);
        let file_len = b.len() as u64;
        let mut cursor = HEADER_LEN as u64;
        let mut sections = [(0usize, 0usize); 3];
        for slot in sections.iter_mut() {
            if cursor + 8 > file_len {
                return None;
            }
            let len = rd_u64(b, cursor as usize);
            let end = (cursor + 8).checked_add(len)?;
            if end > file_len {
                return None;
            }
            *slot = ((cursor + 8) as usize, len as usize);
            cursor = align8(end)?;
        }
        let names = (cursor as usize, names_len as usize);
        cursor = align8(cursor.checked_add(names_len as u64)?)?;
        let syms_off = cursor as usize;
        cursor = cursor.checked_add(nsyms as u64 * SYM_RECORD as u64)?;
        let relocs_off = cursor as usize;
        cursor = cursor.checked_add(nrelocs as u64 * RELOC_RECORD as u64)?;
        let stats_off = cursor as usize;
        cursor = cursor.checked_add(STATS_LEN as u64)?;
        if cursor != file_len {
            return None;
        }

        // Verify the name arena and every record up front so the accessors
        // are panic-free afterwards.
        let names_str = std::str::from_utf8(&b[names.0..names.0 + names.1]).ok()?;
        for i in 0..nsyms {
            let rec = syms_off + i as usize * SYM_RECORD;
            let (start, end) = (rd_u32(b, rec) as usize, rd_u32(b, rec + 4) as usize);
            if start > end
                || end > names_str.len()
                || !names_str.is_char_boundary(start)
                || !names_str.is_char_boundary(end)
            {
                return None;
            }
            let section = b[rec + 24];
            if section != SECTION_NONE && SectionKind::from_code(section).is_none() {
                return None;
            }
            if SymbolBinding::from_code(b[rec + 25]).is_none() || b[rec + 26] > 1 {
                return None;
            }
        }
        for i in 0..nrelocs {
            let rec = relocs_off + i as usize * RELOC_RECORD;
            if rd_u32(b, rec + 16) >= nsyms
                || SectionKind::from_code(b[rec + 20]).is_none()
                || RelocKind::from_code(b[rec + 21]).is_none()
            {
                return None;
            }
        }
        let stats = CompileStats {
            funcs: rd_u64(b, stats_off) as usize,
            blocks: rd_u64(b, stats_off + 8) as usize,
            insts: rd_u64(b, stats_off + 16) as usize,
            spills: rd_u64(b, stats_off + 24) as usize,
            reloads: rd_u64(b, stats_off + 32) as usize,
            moves: rd_u64(b, stats_off + 40) as usize,
        };
        Some(Artifact {
            backing,
            bss_size,
            nsyms,
            nrelocs,
            sections,
            names,
            syms_off,
            relocs_off,
            stats,
        })
    }

    /// Compile-event counters stored with the module.
    pub fn stats(&self) -> &CompileStats {
        &self.stats
    }

    /// Whether the artifact is served by a memory mapping (`false` on
    /// platforms without mmap, where the file was read into memory).
    pub fn is_mapped(&self) -> bool {
        self.backing.is_mapped()
    }

    fn sym_record(&self, i: u32) -> usize {
        self.syms_off + i as usize * SYM_RECORD
    }

    /// `(binding, is_func, size)` of symbol `i`.
    fn symbol_meta(&self, i: u32) -> (SymbolBinding, bool, u64) {
        let b = self.backing.bytes();
        let rec = self.sym_record(i);
        (
            SymbolBinding::from_code(b[rec + 25]).expect("verified at open"),
            b[rec + 26] != 0,
            rd_u64(b, rec + 8 + 8),
        )
    }

    /// Materializes the artifact into a [`CompiledModule`] byte-identical to
    /// the module that was stored, by replaying the symbol declarations,
    /// section bytes and relocations through the public [`CodeBuffer`] API.
    /// Timings start at zero (they describe a compile, and no compile
    /// happened). The result must pass [`CompiledModule::validate`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Emit`] if the (hash-consistent) artifact is
    /// structurally inconsistent; callers treat that as a cache miss.
    pub fn to_module(&self) -> Result<CompiledModule> {
        let mut buf = CodeBuffer::new();
        for i in 0..self.nsyms {
            let (binding, is_func, size) = self.symbol_meta(i);
            let id = buf.declare_symbol(self.symbol_name(i), binding, is_func);
            if id.0 != i {
                return Err(Error::Emit(
                    "invalid module: duplicate symbol name in artifact".into(),
                ));
            }
            match self.symbol_def(i) {
                Some((kind, offset)) => buf.define_symbol(id, kind, offset, size),
                None => buf.set_symbol_size(id, size),
            }
        }
        for kind in [SectionKind::Text, SectionKind::Data, SectionKind::ROData] {
            buf.append(kind, LinkView::section_data(self, kind));
        }
        if self.bss_size > 0 {
            buf.reserve_bss(self.bss_size, 1);
        }
        for i in 0..self.nrelocs as usize {
            buf.add_reloc(self.reloc(i));
        }
        let module = CompiledModule {
            buf,
            stats: self.stats.clone(),
            timings: PassTimings::new(),
        };
        module.validate()?;
        Ok(module)
    }
}

impl LinkView for Artifact {
    fn section_size(&self, kind: SectionKind) -> u64 {
        match kind {
            SectionKind::Bss => self.bss_size,
            _ => self.sections[kind.code() as usize].1 as u64,
        }
    }

    fn section_data(&self, kind: SectionKind) -> &[u8] {
        match kind {
            SectionKind::Bss => &[],
            _ => {
                let (off, len) = self.sections[kind.code() as usize];
                &self.backing.bytes()[off..off + len]
            }
        }
    }

    fn symbol_count(&self) -> u32 {
        self.nsyms
    }

    fn symbol_name(&self, i: u32) -> &str {
        let b = self.backing.bytes();
        let rec = self.sym_record(i);
        let (start, end) = (rd_u32(b, rec) as usize, rd_u32(b, rec + 4) as usize);
        std::str::from_utf8(&b[self.names.0 + start..self.names.0 + end]).expect("verified at open")
    }

    fn symbol_def(&self, i: u32) -> Option<(SectionKind, u64)> {
        let b = self.backing.bytes();
        let rec = self.sym_record(i);
        let kind = SectionKind::from_code(b[rec + 24])?;
        Some((kind, rd_u64(b, rec + 8)))
    }

    fn reloc_count(&self) -> usize {
        self.nrelocs as usize
    }

    fn reloc(&self, i: usize) -> Reloc {
        let b = self.backing.bytes();
        let rec = self.relocs_off + i * RELOC_RECORD;
        Reloc {
            offset: rd_u64(b, rec),
            addend: rd_i64(b, rec + 8),
            symbol: SymbolId(rd_u32(b, rec + 16)),
            section: SectionKind::from_code(b[rec + 20]).expect("verified at open"),
            kind: RelocKind::from_code(b[rec + 21]).expect("verified at open"),
        }
    }
}

// --------------------------------------------------------------------------
// The store: crash-safe writes, flock-ed LRU index, size-bounded eviction
// --------------------------------------------------------------------------

/// Configuration of a [`DiskCache`].
#[derive(Clone, Debug)]
pub struct DiskCacheConfig {
    /// Cache directory (created on open; shared between processes).
    pub dir: PathBuf,
    /// Size bound in bytes over all artifacts; least-recently-used
    /// artifacts are evicted when the total exceeds it. 0 means unbounded.
    pub max_bytes: u64,
}

impl DiskCacheConfig {
    /// A config for `dir` with the default 256 MiB size bound.
    pub fn new(dir: impl Into<PathBuf>) -> DiskCacheConfig {
        DiskCacheConfig {
            dir: dir.into(),
            max_bytes: 256 << 20,
        }
    }
}

/// Exclusive inter-process lock over the cache index (advisory `flock`; a
/// no-op on platforms without it, where the cache is single-process only).
struct IndexLock {
    #[cfg(unix)]
    file: File,
}

impl IndexLock {
    fn acquire(dir: &Path, retries: &AtomicU64) -> Option<IndexLock> {
        #[cfg(unix)]
        {
            let file = retry_io(retries, || {
                if let Some(fault) = faultpoint::trip(sites::DISK_FLOCK, 0) {
                    return Err(fault.to_io_error());
                }
                File::options()
                    .create(true)
                    .truncate(false)
                    .write(true)
                    .open(dir.join("index.lock"))
            })
            .ok()?;
            sys::lock_exclusive(&file).then_some(IndexLock { file })
        }
        #[cfg(not(unix))]
        {
            let _ = (dir, retries);
            Some(IndexLock {})
        }
    }
}

impl Drop for IndexLock {
    fn drop(&mut self) {
        #[cfg(unix)]
        sys::unlock(&self.file);
    }
}

/// Disambiguates temp-file names between threads of one process (the pid in
/// the name disambiguates between processes).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The persistent artifact store; see the module docs.
///
/// All methods take `&self` and are safe to call from multiple threads and
/// multiple processes sharing one directory.
pub struct DiskCache {
    cfg: DiskCacheConfig,
    /// Transient I/O errors absorbed by retrying (reads, renames, lock-file
    /// opens); surfaced as [`crate::timing::ServiceStats::disk_retries`].
    retries: AtomicU64,
}

impl DiskCache {
    /// Opens (creating if needed) the cache directory.
    ///
    /// # Errors
    ///
    /// Returns the error of the directory creation.
    pub fn open(cfg: DiskCacheConfig) -> io::Result<DiskCache> {
        fs::create_dir_all(&cfg.dir)?;
        Ok(DiskCache {
            cfg,
            retries: AtomicU64::new(0),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    /// Transient I/O errors absorbed by retrying since this handle opened.
    pub fn io_retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    fn artifact_path(&self, key: u64) -> PathBuf {
        self.cfg.dir.join(format!("{key:016x}.tpdeart"))
    }

    /// Whether an artifact is stored under `key` (no verification).
    pub fn contains(&self, key: u64) -> bool {
        self.artifact_path(key).exists()
    }

    /// Stores a module under `key`: serialize → unique temp file → `fsync`
    /// → atomic rename, then bump the key's recency and evict over-budget
    /// artifacts under the index lock. Returns `false` (without writing) if
    /// an artifact for `key` already exists — byte-determinism makes the
    /// existing one interchangeable.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error; the temp file is cleaned up.
    pub fn store(&self, key: u64, module: &CompiledModule) -> io::Result<bool> {
        let path = self.artifact_path(key);
        let fresh = !path.exists();
        if fresh {
            let bytes = serialize_module(key, module);
            let tmp = self.cfg.dir.join(format!(
                ".{key:016x}.{}-{}.tmp",
                std::process::id(),
                TMP_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let result = (|| {
                let mut f = File::create(&tmp)?;
                f.write_all(&bytes)?;
                f.sync_all()?;
                drop(f);
                retry_io(&self.retries, || {
                    if let Some(fault) = faultpoint::trip(sites::DISK_RENAME, 0) {
                        return Err(fault.to_io_error());
                    }
                    fs::rename(&tmp, &path)
                })
            })();
            if let Err(e) = result {
                let _ = fs::remove_file(&tmp);
                return Err(e);
            }
            // Make the rename itself durable.
            if let Ok(d) = File::open(&self.cfg.dir) {
                let _ = d.sync_all();
            }
        }
        self.touch_and_evict(key);
        Ok(fresh)
    }

    /// Opens the verified artifact stored under `key` as a zero-copy view;
    /// `None` if absent or corrupt (a corrupt file is unlinked so a later
    /// store heals it; a persistently *transient* read failure is a miss
    /// but leaves the artifact in place).
    pub fn open_artifact(&self, key: u64) -> Option<Artifact> {
        let path = self.artifact_path(key);
        match Artifact::open(&path, key, &self.retries) {
            Ok(a) => Some(a),
            Err(OpenError::Missing | OpenError::Unavailable) => None,
            Err(OpenError::Corrupt) => {
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Loads and materializes the module stored under `key`, verifying the
    /// artifact hash and [`CompiledModule::validate`] on the way; `None` is
    /// a miss (absent, corrupt, or structurally invalid — the latter two
    /// unlink the artifact). A hit bumps the key's LRU recency.
    pub fn load(&self, key: u64) -> Option<CompiledModule> {
        let artifact = self.open_artifact(key)?;
        match artifact.to_module() {
            Ok(module) => {
                self.touch_and_evict(key);
                Some(module)
            }
            Err(_) => {
                let _ = fs::remove_file(self.artifact_path(key));
                None
            }
        }
    }

    /// Number of artifacts currently stored.
    pub fn artifact_count(&self) -> usize {
        self.scan().len()
    }

    /// Total size in bytes of all stored artifacts.
    pub fn total_bytes(&self) -> u64 {
        self.scan().iter().map(|(_, size)| size).sum()
    }

    /// Scans the directory for `(key, size)` of every artifact. Presence on
    /// disk is the source of truth; the index only adds recency.
    fn scan(&self) -> Vec<(u64, u64)> {
        let Ok(dir) = fs::read_dir(&self.cfg.dir) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for entry in dir.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(hex) = name.strip_suffix(".tpdeart") else {
                continue;
            };
            let Ok(key) = u64::from_str_radix(hex, 16) else {
                continue;
            };
            let Ok(meta) = entry.metadata() else { continue };
            out.push((key, meta.len()));
        }
        out
    }

    fn index_path(&self) -> PathBuf {
        self.cfg.dir.join("index.tpde")
    }

    /// Reads the recency index (`key tick` per line); a missing or corrupt
    /// index is simply empty — recency resets, correctness is unaffected.
    fn read_index(&self) -> HashMap<u64, u64> {
        let Ok(text) = fs::read_to_string(self.index_path()) else {
            return HashMap::new();
        };
        let mut map = HashMap::new();
        for line in text.lines() {
            let mut it = line.split_whitespace();
            if let (Some(k), Some(t)) = (it.next(), it.next()) {
                if let (Ok(k), Ok(t)) = (u64::from_str_radix(k, 16), t.parse()) {
                    map.insert(k, t);
                }
            }
        }
        map
    }

    fn write_index(&self, ticks: &HashMap<u64, u64>) {
        let mut lines: Vec<(u64, u64)> = ticks.iter().map(|(&k, &t)| (k, t)).collect();
        lines.sort_unstable();
        let mut text = String::new();
        for (k, t) in lines {
            text.push_str(&format!("{k:016x} {t}\n"));
        }
        let tmp = self.cfg.dir.join(format!(
            ".index.{}-{}.tmp",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        if fs::write(&tmp, text).is_ok() && fs::rename(&tmp, self.index_path()).is_err() {
            let _ = fs::remove_file(&tmp);
        }
    }

    /// Under the index lock: bump `key`'s recency, then evict
    /// least-recently-used artifacts (never `key` itself) until the total
    /// size respects [`DiskCacheConfig::max_bytes`]. Failures are swallowed
    /// — recency and the size bound are best-effort properties; artifact
    /// correctness never depends on them.
    fn touch_and_evict(&self, key: u64) {
        let Some(_lock) = IndexLock::acquire(&self.cfg.dir, &self.retries) else {
            return;
        };
        let mut ticks = self.read_index();
        let next = ticks.values().copied().max().unwrap_or(0) + 1;
        ticks.insert(key, next);
        let mut entries = self.scan();
        // Forget recency of artifacts that no longer exist.
        let live: std::collections::HashSet<u64> = entries.iter().map(|&(k, _)| k).collect();
        ticks.retain(|k, _| live.contains(k));
        ticks.insert(key, next);
        if self.cfg.max_bytes > 0 {
            let mut total: u64 = entries.iter().map(|(_, size)| size).sum();
            entries.sort_by_key(|&(k, _)| ticks.get(&k).copied().unwrap_or(0));
            for (k, size) in entries {
                if total <= self.cfg.max_bytes {
                    break;
                }
                if k == key {
                    continue;
                }
                if fs::remove_file(self.artifact_path(k)).is_ok() {
                    total -= size;
                    ticks.remove(&k);
                }
            }
        }
        self.write_index(&ticks);
    }
}
