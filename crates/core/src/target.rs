//! The target abstraction: the architecture- and platform-specific part of
//! the framework that the code-generation pass delegates to.
//!
//! A [`Target`] knows the register file, the calling convention, how to emit
//! the prologue/epilogue skeleton (with reserved, patchable space, as
//! described in the paper), and how to emit the small set of "glue"
//! instructions the framework itself needs: register moves, spills, reloads,
//! constant materialization, jumps and calls. Everything else — the actual
//! semantics of IR instructions — is emitted by the user's instruction
//! compilers and snippet encoders, which write directly into the
//! [`CodeBuffer`].
//!
//! Concrete implementations for x86-64 and AArch64 live in the `tpde-enc`
//! crate ([`tpde_enc::X64Target`] and [`tpde_enc::A64Target`] in that crate).

use crate::callconv::CallConv;
use crate::codebuf::{CodeBuffer, Label, SymbolId};
use crate::regs::{Reg, RegBank, RegSet};

/// Supported target architectures.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum TargetArch {
    /// x86-64 (System V ABI).
    X86_64,
    /// AArch64 (AAPCS64).
    Aarch64,
}

impl TargetArch {
    /// Short lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            TargetArch::X86_64 => "x86-64",
            TargetArch::Aarch64 => "aarch64",
        }
    }
}

/// Per-function frame bookkeeping shared between the code generator and the
/// target.
///
/// The prologue is emitted before the frame size or the set of used
/// callee-saved registers is known; the target records the offsets of the
/// reserved (nop-padded) areas here so [`Target::finish_func`] can patch in
/// the real instructions at the end of the function, exactly as described in
/// the paper.
#[derive(Debug, Clone, Default)]
pub struct FrameState {
    /// Text offset of the first byte of the function.
    pub func_start: u64,
    /// Offsets of 32-bit immediates encoding the frame size (prologue
    /// `sub sp` and any epilogue that needs it).
    pub frame_size_patches: Vec<u64>,
    /// `(offset, length)` of the nop-padded callee-save area in the prologue.
    pub save_area: Option<(u64, u64)>,
    /// `(offset, length)` of each nop-padded callee-restore area (one per
    /// emitted epilogue).
    pub restore_areas: Vec<(u64, u64)>,
}

/// Architecture/platform-specific operations required by the code generator.
pub trait Target {
    /// The architecture this target generates code for.
    fn arch(&self) -> TargetArch;

    /// The C calling convention used for function arguments, returns and
    /// calls.
    fn call_conv(&self) -> &CallConv;

    /// Registers the framework may allocate, in allocation order (the paper
    /// allocates the lowest-numbered free register first). Must not include
    /// the stack/frame pointer or the emergency scratch register.
    fn allocatable_regs(&self, bank: RegBank) -> &[Reg];

    /// Callee-saved registers without a special purpose, usable as *fixed*
    /// registers for values kept in registers across an innermost loop.
    fn fixed_reg_candidates(&self, bank: RegBank) -> &[Reg];

    /// The frame pointer register.
    fn frame_reg(&self) -> Reg;

    /// An emergency general-purpose scratch register that is never
    /// allocated (used for address computations and FP constant
    /// materialization).
    fn scratch_gp(&self) -> Reg;

    /// An emergency floating-point scratch register that is never allocated
    /// (used for memory-to-memory moves of FP values).
    fn scratch_fp(&self) -> Reg;

    /// Size in bytes of the callee-save area reserved directly below the
    /// frame pointer (enough to save every callee-saved register).
    fn callee_save_area_size(&self) -> u32;

    // ---- function skeleton -------------------------------------------------

    /// Emits the function prologue with reserved space for callee-saved
    /// register saves and a patchable frame size.
    fn emit_prologue(&self, buf: &mut CodeBuffer) -> FrameState;

    /// Emits an epilogue (restore area + frame teardown + return) at the
    /// current position, recording its patch areas in `frame`.
    fn emit_epilogue_and_ret(&self, buf: &mut CodeBuffer, frame: &mut FrameState);

    /// Patches the prologue and all epilogues once the final frame size and
    /// set of used callee-saved registers are known.
    fn finish_func(
        &self,
        buf: &mut CodeBuffer,
        frame: &FrameState,
        frame_size: u32,
        used_callee_saved: RegSet,
    );

    // ---- framework glue instructions ----------------------------------------

    /// Register-to-register move within one bank.
    fn emit_mov_rr(&self, buf: &mut CodeBuffer, bank: RegBank, size: u32, dst: Reg, src: Reg);

    /// Store `src` to `[frame_reg + off]` (spill).
    fn emit_frame_store(&self, buf: &mut CodeBuffer, bank: RegBank, size: u32, off: i32, src: Reg);

    /// Load `[frame_reg + off]` into `dst` (reload).
    fn emit_frame_load(&self, buf: &mut CodeBuffer, bank: RegBank, size: u32, dst: Reg, off: i32);

    /// Compute `frame_reg + off` into `dst` (address of a stack variable).
    fn emit_frame_addr(&self, buf: &mut CodeBuffer, dst: Reg, off: i32);

    /// Materialize a constant into a register.
    fn emit_const(&self, buf: &mut CodeBuffer, bank: RegBank, size: u32, dst: Reg, value: u64);

    /// Unconditional jump to a label (fixed up when the label is bound).
    fn emit_jump(&self, buf: &mut CodeBuffer, label: Label);

    /// Call a symbol (emits a relocation).
    fn emit_call_sym(&self, buf: &mut CodeBuffer, sym: SymbolId);

    /// Indirect call through a register.
    fn emit_call_reg(&self, buf: &mut CodeBuffer, reg: Reg);

    /// Adjust the stack pointer by `delta` bytes (negative allocates).
    fn emit_sp_adjust(&self, buf: &mut CodeBuffer, delta: i32);

    /// Store `src` to `[sp + off]` (outgoing stack argument).
    fn emit_sp_store(&self, buf: &mut CodeBuffer, bank: RegBank, size: u32, off: u32, src: Reg);

    /// Hook for variadic calls: on x86-64 SysV, set `al` to the number of
    /// vector registers used. Default: no-op.
    fn emit_vararg_fp_count(&self, buf: &mut CodeBuffer, count: u8) {
        let _ = (buf, count);
    }

    // ---- tiered execution ---------------------------------------------------

    /// Emits the tier-0 entry-counter increment for function `index` against
    /// the counter table symbol (see the call-stub contract in
    /// [`crate::codebuf`]). Emitted directly after the prologue, where the
    /// flags are dead and only the scratch register may be clobbered.
    /// Returns `false` (the default) when the target does not support
    /// tiering; the code generator then falls back to uninstrumented code.
    fn emit_tier_counter(&self, buf: &mut CodeBuffer, counters: SymbolId, index: u32) -> bool {
        let _ = (buf, counters, index);
        false
    }

    /// Emits a call routed through patchable call slot `index` of the slot
    /// table (load the slot, then call indirect through the scratch
    /// register). Returns `false` (the default) when the target does not
    /// support tiering; the code generator then emits a plain
    /// [`Target::emit_call_sym`].
    fn emit_call_slot(&self, buf: &mut CodeBuffer, slots: SymbolId, index: u32) -> bool {
        let _ = (buf, slots, index);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_names() {
        assert_eq!(TargetArch::X86_64.name(), "x86-64");
        assert_eq!(TargetArch::Aarch64.name(), "aarch64");
    }

    #[test]
    fn frame_state_default_is_empty() {
        let f = FrameState::default();
        assert!(f.frame_size_patches.is_empty());
        assert!(f.save_area.is_none());
        assert!(f.restore_areas.is_empty());
    }
}
