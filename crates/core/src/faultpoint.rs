//! Deterministic fault injection for resilience testing.
//!
//! A *faultpoint* is a named probe compiled into a degradation-prone code
//! path — disk cache I/O, the service worker loop — that normally does
//! nothing. When the process is **armed** (via the `TPDE_FAULTS`
//! environment variable or programmatically with [`arm`]), each probe
//! consults the installed [`FaultRule`]s and may inject a fault: a
//! transient or hard I/O error, a short read, an in-place delay, or an
//! in-place panic.
//!
//! Design constraints, in order:
//!
//! * **Zero cost when disarmed.** The fast path of [`trip`] is a single
//!   relaxed atomic load and a predictable branch; no lock, no allocation,
//!   no syscall. Production builds that never set `TPDE_FAULTS` pay one
//!   lazy env lookup per process.
//! * **Deterministic.** Firing is counter-based (`every`/`offset`/`limit`
//!   per rule, optionally pinned to a probe `index`), never random, so a
//!   failing chaos run replays exactly.
//! * **Scoped.** [`arm`] returns a guard that restores the previous plan on
//!   drop and serializes armed sections process-wide, so fault tests cannot
//!   leak rules into concurrently running tests.
//!
//! `TPDE_FAULTS` accepts a comma-separated list of categories. `disk` arms
//! a low-rate mix of *transparent* disk faults (transient read/rename
//! errors that the retry path must absorb, mmap failures that must fall
//! back to heap buffers, flock contention delays); `worker` arms small
//! worker-loop delays; `ring` arms submission front-end degradations
//! (stalled ring publishes, forced ring-full fallbacks, dropped worker
//! wakeups). All are chosen so that a correct build passes its full test
//! suite unchanged while armed — that is the point: the suite *is* the
//! assertion that these degradations are invisible. Destructive actions
//! (short reads, panics) are only injected by targeted tests and the
//! `figures --chaos` harness, with explicit rules.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Faultpoint site names. Probes and rules must agree on these strings;
/// keeping them in one place makes a typo a compile error on the probe
/// side and greppable on the rule side.
pub mod sites {
    /// Reading an artifact file from the disk cache (open/read path).
    pub const DISK_READ: &str = "disk.read";
    /// Short read while buffering an artifact (delivers truncated bytes).
    pub const DISK_SHORT_READ: &str = "disk.short_read";
    /// Publishing rename of a freshly written artifact.
    pub const DISK_RENAME: &str = "disk.rename";
    /// Acquiring the disk cache index flock (contention).
    pub const DISK_FLOCK: &str = "disk.flock";
    /// Mapping an artifact file (falls back to a heap buffer on failure).
    pub const DISK_MMAP: &str = "disk.mmap";
    /// Start of one service worker job (single or shard participant).
    pub const WORKER_JOB: &str = "service.job";
    /// One function boundary inside the sharded compile loop; the probe
    /// index is the function index, so rules can target a chosen shard
    /// position.
    pub const WORKER_FUNC: &str = "service.func";
    /// The sharded merge step on the last participant.
    pub const WORKER_MERGE: &str = "service.merge";
    /// Publish window of a submission-ring slot: between the CAS that
    /// claims the slot and the sequence store that publishes it. A delay
    /// here widens the claimed-but-unpublished window consumers must
    /// tolerate (they observe `Pending`, not `Empty`).
    pub const RING_PUBLISH: &str = "ring.publish";
    /// Capacity check of the submission ring. A firing rule forces the
    /// push down the mutex-guarded overflow path even when the ring has
    /// room.
    pub const RING_FULL: &str = "ring.full";
    /// Worker wakeup after a ring push. A firing rule drops the wakeup;
    /// the bounded park timeout must recover (latency only, never a lost
    /// ticket).
    pub const RING_WAKEUP: &str = "ring.wakeup";
}

/// What an armed faultpoint injects when it fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// A transient I/O error (`EINTR`-like); retry paths must absorb it.
    Transient,
    /// A hard failure of the probed operation.
    Fail,
    /// A short read: the caller receives truncated bytes.
    Short,
    /// Sleep in place for the given duration (simulates contention and
    /// hung workers), then continue normally.
    Delay(Duration),
    /// Panic in place. Only meaningful inside a `catch_unwind` region —
    /// the service worker loop and merge step have one.
    Panic,
}

/// One armed injection rule: fire `action` at `site` on a deterministic
/// subset of probe encounters.
#[derive(Clone, Debug)]
pub struct FaultRule {
    /// Site name (see [`sites`]).
    pub site: &'static str,
    /// What to inject.
    pub action: FaultAction,
    /// Fire on every `every`-th matching encounter (1 = every one).
    pub every: u64,
    /// Skip the first `offset` matching encounters.
    pub offset: u64,
    /// Only match probes reporting this index (e.g. a function index).
    pub index: Option<u64>,
    /// Stop firing after this many injections (`None` = unlimited).
    pub limit: Option<u64>,
}

impl FaultRule {
    /// A rule that fires on every encounter of `site`.
    pub fn new(site: &'static str, action: FaultAction) -> FaultRule {
        FaultRule {
            site,
            action,
            every: 1,
            offset: 0,
            index: None,
            limit: None,
        }
    }

    /// Fire on every `n`-th matching encounter.
    pub fn every(mut self, n: u64) -> FaultRule {
        self.every = n.max(1);
        self
    }

    /// Skip the first `n` matching encounters.
    pub fn offset(mut self, n: u64) -> FaultRule {
        self.offset = n;
        self
    }

    /// Only match probes at this index.
    pub fn at_index(mut self, i: u64) -> FaultRule {
        self.index = Some(i);
        self
    }

    /// Fire at most `n` times.
    pub fn limit(mut self, n: u64) -> FaultRule {
        self.limit = Some(n);
        self
    }
}

/// The fault a probed I/O path is asked to simulate. Delays and panics are
/// applied inside [`trip`] itself and never reach the caller.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum IoFault {
    /// Simulate a transient error (`EINTR`-like).
    Transient,
    /// Simulate a hard failure.
    Fail,
    /// Simulate a short read.
    Short,
}

impl IoFault {
    /// The `std::io::Error` equivalent of this fault, for I/O call sites.
    pub fn to_io_error(self) -> std::io::Error {
        match self {
            IoFault::Transient => std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "injected transient I/O fault",
            ),
            IoFault::Fail => std::io::Error::other("injected I/O failure"),
            IoFault::Short => std::io::Error::other("injected short read"),
        }
    }
}

const UNINIT: u8 = 0;
const DISARMED: u8 = 1;
const ARMED: u8 = 2;

/// Global armed/disarmed flag — the only thing the fast path reads.
static STATE: AtomicU8 = AtomicU8::new(UNINIT);
/// The installed rules with their per-rule hit counters.
static PLAN: Mutex<Option<Plan>> = Mutex::new(None);
/// Serializes [`arm`] sections (and env initialization) process-wide.
static ARM_LOCK: Mutex<()> = Mutex::new(());

struct Rule {
    rule: FaultRule,
    /// Matching probe encounters seen so far.
    hits: AtomicU64,
    /// Times this rule fired.
    fired: AtomicU64,
}

struct Plan {
    rules: Vec<Rule>,
}

impl Plan {
    fn new(rules: Vec<FaultRule>) -> Plan {
        Plan {
            rules: rules
                .into_iter()
                .map(|rule| Rule {
                    rule,
                    hits: AtomicU64::new(0),
                    fired: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Counts the encounter on every matching rule and returns the action
    /// of the first rule that fires.
    fn fire(&self, site: &str, index: u64) -> Option<FaultAction> {
        let mut out = None;
        for r in &self.rules {
            if r.rule.site != site {
                continue;
            }
            if r.rule.index.is_some_and(|want| want != index) {
                continue;
            }
            let hit = r.hits.fetch_add(1, Ordering::Relaxed);
            if out.is_some() || hit < r.rule.offset {
                continue;
            }
            if (hit - r.rule.offset) % r.rule.every != 0 {
                continue;
            }
            if r.rule
                .limit
                .is_some_and(|l| r.fired.load(Ordering::Relaxed) >= l)
            {
                continue;
            }
            r.fired.fetch_add(1, Ordering::Relaxed);
            out = Some(r.rule.action.clone());
        }
        out
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether any fault plan is armed. One relaxed load on the fast path.
#[inline]
pub fn armed() -> bool {
    match STATE.load(Ordering::Relaxed) {
        ARMED => true,
        DISARMED => false,
        _ => init_from_env(),
    }
}

/// First probe in the process: install whatever `TPDE_FAULTS` asks for.
#[cold]
fn init_from_env() -> bool {
    let _serial = lock(&ARM_LOCK);
    ensure_init_locked();
    STATE.load(Ordering::Relaxed) == ARMED
}

/// Must run with `ARM_LOCK` held.
fn ensure_init_locked() {
    if STATE.load(Ordering::Relaxed) != UNINIT {
        return;
    }
    let rules = std::env::var("TPDE_FAULTS")
        .map(|v| env_rules(&v))
        .unwrap_or_default();
    install(if rules.is_empty() { None } else { Some(rules) });
}

/// Installs a plan (`Some`) or disarms (`None`), updating `STATE` last so
/// probes never see an armed flag without rules.
fn install(rules: Option<Vec<FaultRule>>) {
    let armed = rules.is_some();
    *lock(&PLAN) = rules.map(Plan::new);
    STATE.store(if armed { ARMED } else { DISARMED }, Ordering::SeqCst);
}

/// Built-in rule sets for the `TPDE_FAULTS` categories. Rates are chosen
/// so every injected fault is *transparent* to a correct build: transient
/// errors are retried, mmap failures fall back to heap buffers, delays
/// only add latency.
fn env_rules(spec: &str) -> Vec<FaultRule> {
    let mut rules = Vec::new();
    for cat in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
        match cat {
            "disk" => rules.extend([
                FaultRule::new(sites::DISK_READ, FaultAction::Transient)
                    .every(5)
                    .offset(2),
                FaultRule::new(sites::DISK_RENAME, FaultAction::Transient)
                    .every(7)
                    .offset(3),
                FaultRule::new(sites::DISK_MMAP, FaultAction::Fail)
                    .every(3)
                    .offset(1),
                FaultRule::new(
                    sites::DISK_FLOCK,
                    FaultAction::Delay(Duration::from_micros(500)),
                )
                .every(4),
            ]),
            "worker" => rules.extend([
                FaultRule::new(
                    sites::WORKER_JOB,
                    FaultAction::Delay(Duration::from_millis(2)),
                )
                .every(13)
                .offset(5),
                FaultRule::new(
                    sites::WORKER_FUNC,
                    FaultAction::Delay(Duration::from_micros(100)),
                )
                .every(31)
                .offset(7),
            ]),
            "ring" => rules.extend([
                FaultRule::new(
                    sites::RING_PUBLISH,
                    FaultAction::Delay(Duration::from_micros(200)),
                )
                .every(17)
                .offset(3),
                FaultRule::new(sites::RING_FULL, FaultAction::Fail)
                    .every(11)
                    .offset(2),
                FaultRule::new(sites::RING_WAKEUP, FaultAction::Fail)
                    .every(13)
                    .offset(1),
            ]),
            other => eprintln!("tpde: unknown TPDE_FAULTS category {other:?} ignored"),
        }
    }
    rules
}

/// Guard of an [`arm`] section: restores the previously installed plan
/// (env-derived or none) on drop and serializes armed sections.
pub struct FaultGuard {
    prev: Option<Vec<FaultRule>>,
    _serial: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        install(self.prev.take());
    }
}

/// Installs `rules` as the process-wide fault plan until the returned
/// guard drops. Armed sections are serialized process-wide (tests in one
/// binary cannot interleave conflicting plans); do not nest on one thread.
pub fn arm(rules: Vec<FaultRule>) -> FaultGuard {
    let serial = lock(&ARM_LOCK);
    ensure_init_locked();
    let prev = lock(&PLAN)
        .take()
        .map(|p| p.rules.into_iter().map(|r| r.rule).collect());
    install(Some(rules));
    FaultGuard {
        prev,
        _serial: serial,
    }
}

/// Probes a faultpoint with an index (function index, attempt number).
///
/// Returns the I/O fault the caller must simulate, if any; delays and
/// panics are applied here and return `None`/never. Disarmed cost: one
/// relaxed atomic load.
#[inline]
pub fn trip(site: &'static str, index: u64) -> Option<IoFault> {
    if !armed() {
        return None;
    }
    trip_slow(site, index)
}

#[cold]
fn trip_slow(site: &'static str, index: u64) -> Option<IoFault> {
    let action = lock(&PLAN).as_ref().and_then(|p| p.fire(site, index))?;
    match action {
        FaultAction::Delay(d) => {
            std::thread::sleep(d);
            None
        }
        FaultAction::Panic => panic!("injected fault: {site} panicked at index {index}"),
        FaultAction::Transient => Some(IoFault::Transient),
        FaultAction::Fail => Some(IoFault::Fail),
        FaultAction::Short => Some(IoFault::Short),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // All tests use synthetic site names so concurrently running tests of
    // real components never match these rules.

    #[test]
    fn disarmed_probe_is_silent() {
        let _g = arm(Vec::new());
        assert_eq!(trip("test.silent", 0), None);
    }

    #[test]
    fn every_offset_and_limit_are_deterministic() {
        static SITE: &str = "test.pattern";
        let _g = arm(vec![FaultRule::new(SITE, FaultAction::Fail)
            .every(3)
            .offset(1)
            .limit(2)]);
        let fired: Vec<bool> = (0..10).map(|i| trip(SITE, i).is_some()).collect();
        // Offset 1, every 3, limit 2: encounters 1 and 4 fire, then spent.
        assert_eq!(
            fired,
            [false, true, false, false, true, false, false, false, false, false]
        );
    }

    #[test]
    fn index_pins_a_rule_to_one_probe_position() {
        static SITE: &str = "test.index";
        let _g = arm(vec![FaultRule::new(SITE, FaultAction::Short).at_index(7)]);
        assert_eq!(trip(SITE, 6), None);
        assert_eq!(trip(SITE, 7), Some(IoFault::Short));
        assert_eq!(trip(SITE, 8), None);
        assert_eq!(trip(SITE, 7), Some(IoFault::Short));
    }

    #[test]
    fn guard_restores_previous_plan() {
        static SITE: &str = "test.restore";
        {
            let _outer = arm(vec![FaultRule::new(SITE, FaultAction::Fail)]);
            assert_eq!(trip(SITE, 0), Some(IoFault::Fail));
        }
        // Outer guard dropped: back to the pre-arm state (env or nothing),
        // which has no rule for this synthetic site.
        assert_eq!(trip(SITE, 0), None);
    }

    #[test]
    fn delay_applies_in_place_and_returns_none() {
        static SITE: &str = "test.delay";
        let _g = arm(vec![FaultRule::new(
            SITE,
            FaultAction::Delay(Duration::from_millis(5)),
        )]);
        let t = std::time::Instant::now();
        assert_eq!(trip(SITE, 0), None);
        assert!(t.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn panic_action_panics_in_place() {
        static SITE: &str = "test.panic";
        let _g = arm(vec![FaultRule::new(SITE, FaultAction::Panic)]);
        let r = std::panic::catch_unwind(|| trip(SITE, 3));
        let msg = *r.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("test.panic") && msg.contains("3"), "{msg}");
    }

    #[test]
    fn env_categories_parse() {
        assert!(env_rules("").is_empty());
        assert!(env_rules("disk")
            .iter()
            .all(|r| r.site.starts_with("disk.")));
        assert!(env_rules("worker")
            .iter()
            .all(|r| r.site.starts_with("service.")));
        assert!(env_rules("ring")
            .iter()
            .all(|r| r.site.starts_with("ring.")));
        let all = env_rules("disk, worker, ring");
        assert_eq!(
            all.len(),
            env_rules("disk").len() + env_rules("worker").len() + env_rules("ring").len()
        );
        assert!(env_rules("bogus").is_empty());
    }
}
