//! Machine registers, register banks and register sets.
//!
//! The framework is architecture-agnostic: it only knows about *register
//! banks* (general-purpose and floating-point/vector) and abstract register
//! indices within a bank. The target implementation maps these to concrete
//! machine registers when encoding instructions.

use std::fmt;

/// Register bank of a value part.
///
/// Values are assigned to a preferred bank by the IR adapter; the framework
/// allocates registers from that bank.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegBank {
    /// General-purpose (integer/pointer) registers.
    GP = 0,
    /// Floating-point / vector registers.
    FP = 1,
}

impl RegBank {
    /// Number of register banks known to the framework.
    pub const COUNT: usize = 2;

    /// All banks, in index order.
    pub const ALL: [RegBank; 2] = [RegBank::GP, RegBank::FP];

    /// Bank index usable for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short lowercase name, used in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            RegBank::GP => "gp",
            RegBank::FP => "fp",
        }
    }
}

impl fmt::Display for RegBank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An abstract machine register: a bank plus an index within the bank.
///
/// The index is the *architectural* register number (e.g. on x86-64,
/// `Reg::new(RegBank::GP, 0)` is `rax` and `Reg::new(RegBank::FP, 3)` is
/// `xmm3`), so encoders can use it directly.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register from a bank and an architectural index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`; both supported targets have at most 32
    /// registers per bank.
    #[inline]
    pub fn new(bank: RegBank, index: u8) -> Reg {
        assert!(index < 32, "register index {index} out of range");
        Reg(((bank as u8) << 5) | index)
    }

    /// The register's bank.
    #[inline]
    pub fn bank(self) -> RegBank {
        if self.0 & 0x20 == 0 {
            RegBank::GP
        } else {
            RegBank::FP
        }
    }

    /// The architectural index within the bank (0..32).
    #[inline]
    pub fn index(self) -> u8 {
        self.0 & 0x1f
    }

    /// A compact id unique across banks, suitable for array indexing (0..64).
    #[inline]
    pub fn compact(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.bank().name(), self.index())
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.bank().name(), self.index())
    }
}

/// A set of registers across both banks, stored as a 64-bit bitmap.
///
/// Bit layout matches [`Reg::compact`]: bits 0..32 are GP registers, bits
/// 32..64 are FP registers.
#[derive(Copy, Clone, Default, PartialEq, Eq, Hash)]
pub struct RegSet(u64);

impl RegSet {
    /// The empty set.
    #[inline]
    pub fn empty() -> RegSet {
        RegSet(0)
    }

    /// Creates a set from an iterator of registers.
    pub fn from_regs<I: IntoIterator<Item = Reg>>(iter: I) -> RegSet {
        let mut s = RegSet::empty();
        for r in iter {
            s.insert(r);
        }
        s
    }

    /// Returns `true` if no register is in the set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of registers in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Inserts a register.
    #[inline]
    pub fn insert(&mut self, r: Reg) {
        self.0 |= 1u64 << r.compact();
    }

    /// Removes a register.
    #[inline]
    pub fn remove(&mut self, r: Reg) {
        self.0 &= !(1u64 << r.compact());
    }

    /// Returns `true` if the register is in the set.
    #[inline]
    pub fn contains(self, r: Reg) -> bool {
        self.0 & (1u64 << r.compact()) != 0
    }

    /// Union of two sets.
    #[inline]
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Intersection of two sets.
    #[inline]
    pub fn intersect(self, other: RegSet) -> RegSet {
        RegSet(self.0 & other.0)
    }

    /// Set difference (`self` without `other`).
    #[inline]
    pub fn difference(self, other: RegSet) -> RegSet {
        RegSet(self.0 & !other.0)
    }

    /// Iterates over the registers in the set in ascending compact order.
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let idx = bits.trailing_zeros() as u8;
            bits &= bits - 1;
            let bank = if idx < 32 { RegBank::GP } else { RegBank::FP };
            Some(Reg::new(bank, idx & 0x1f))
        })
    }
}

impl fmt::Debug for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<I: IntoIterator<Item = Reg>>(iter: I) -> Self {
        RegSet::from_regs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip() {
        for bank in RegBank::ALL {
            for i in 0..32u8 {
                let r = Reg::new(bank, i);
                assert_eq!(r.bank(), bank);
                assert_eq!(r.index(), i);
            }
        }
    }

    #[test]
    #[should_panic]
    fn reg_index_out_of_range_panics() {
        let _ = Reg::new(RegBank::GP, 32);
    }

    #[test]
    fn compact_ids_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for bank in RegBank::ALL {
            for i in 0..32u8 {
                assert!(seen.insert(Reg::new(bank, i).compact()));
            }
        }
    }

    #[test]
    fn regset_basic_ops() {
        let mut s = RegSet::empty();
        assert!(s.is_empty());
        let a = Reg::new(RegBank::GP, 1);
        let b = Reg::new(RegBank::FP, 1);
        s.insert(a);
        s.insert(b);
        assert_eq!(s.len(), 2);
        assert!(s.contains(a));
        assert!(s.contains(b));
        s.remove(a);
        assert!(!s.contains(a));
        assert!(s.contains(b));
    }

    #[test]
    fn regset_iter_and_setops() {
        let a: RegSet = (0..4).map(|i| Reg::new(RegBank::GP, i)).collect();
        let b: RegSet = (2..6).map(|i| Reg::new(RegBank::GP, i)).collect();
        assert_eq!(a.union(b).len(), 6);
        assert_eq!(a.intersect(b).len(), 2);
        assert_eq!(a.difference(b).len(), 2);
        let collected: Vec<Reg> = a.iter().collect();
        assert_eq!(collected.len(), 4);
        assert_eq!(collected[0], Reg::new(RegBank::GP, 0));
    }

    #[test]
    fn regset_display_of_reg() {
        assert_eq!(Reg::new(RegBank::GP, 7).to_string(), "gp7");
        assert_eq!(Reg::new(RegBank::FP, 15).to_string(), "fp15");
    }
}
