//! Value assignments: the per-value state tracked during code generation.
//!
//! For every live value the framework stores an [`Assignment`]: a stack
//! frame slot for spilling, the remaining number of uses, and per value part
//! the current register, whether the stack slot holds the current value, and
//! whether the part is trivially recomputable or pinned to a fixed register
//! (§3.4.1 of the paper).

use crate::adapter::ValueRef;
use crate::regs::{Reg, RegBank};

/// How a value part can be rematerialized instead of being spilled/reloaded.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Recompute {
    /// The part is the address of a stack variable: `frame_reg + offset`.
    StackAddr(i32),
    /// The part is a constant with the given bits.
    Const(u64),
}

/// State of one part of a value.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PartState {
    /// Register currently holding the part, if any.
    pub reg: Option<Reg>,
    /// Size of the part in bytes.
    pub size: u32,
    /// Register bank of the part.
    pub bank: RegBank,
    /// Whether the stack slot currently holds the correct value. If `false`
    /// and `reg` is `Some`, the register is the only location of the value.
    pub in_mem: bool,
    /// Whether the part is pinned to `reg` for its whole live range
    /// (innermost-loop heuristic); fixed parts are never spilled or evicted.
    pub fixed: bool,
    /// If set, the part can be recomputed instead of spilled.
    pub recompute: Option<Recompute>,
}

impl PartState {
    /// Placeholder used to initialize inline storage.
    pub const EMPTY: PartState = PartState {
        reg: None,
        size: 0,
        bank: RegBank::GP,
        in_mem: false,
        fixed: false,
        recompute: None,
    };
}

/// Number of part slots stored inline in a [`PartList`]. Covers every value
/// the back-ends in this workspace produce (1 part, 2 for 128-bit ints).
const PARTS_INLINE: usize = 2;

/// Part storage with inline capacity.
///
/// An assignment is created for every value the code generator touches —
/// one heap allocation per value here would show up directly in the
/// per-instruction compile cost. Values almost always have one part, so up
/// to [`PARTS_INLINE`] parts live inline in the `Assignment` and only the
/// (in practice nonexistent) larger values spill to the heap.
#[derive(Clone, Debug)]
pub struct PartList {
    len: u32,
    inline: [PartState; PARTS_INLINE],
    heap: Vec<PartState>,
}

impl Default for PartList {
    fn default() -> PartList {
        PartList::new()
    }
}

impl PartList {
    /// Creates an empty part list.
    pub fn new() -> PartList {
        PartList {
            len: 0,
            inline: [PartState::EMPTY; PARTS_INLINE],
            heap: Vec::new(),
        }
    }

    /// Appends a part.
    pub fn push(&mut self, p: PartState) {
        let len = self.len as usize;
        if len < PARTS_INLINE {
            self.inline[len] = p;
        } else {
            if len == PARTS_INLINE {
                self.heap.clear();
                self.heap.extend_from_slice(&self.inline);
            }
            self.heap.push(p);
        }
        self.len += 1;
    }
}

impl std::ops::Deref for PartList {
    type Target = [PartState];
    #[inline]
    fn deref(&self) -> &[PartState] {
        if self.len as usize <= PARTS_INLINE {
            &self.inline[..self.len as usize]
        } else {
            &self.heap
        }
    }
}

impl std::ops::DerefMut for PartList {
    #[inline]
    fn deref_mut(&mut self) -> &mut [PartState] {
        if self.len as usize <= PARTS_INLINE {
            &mut self.inline[..self.len as usize]
        } else {
            &mut self.heap
        }
    }
}

impl FromIterator<PartState> for PartList {
    fn from_iter<I: IntoIterator<Item = PartState>>(iter: I) -> PartList {
        let mut l = PartList::new();
        for p in iter {
            l.push(p);
        }
        l
    }
}

/// Per-value state during code generation.
#[derive(Clone, Debug)]
pub struct Assignment {
    /// Frame offset (relative to the frame pointer) of the spill slot,
    /// or `None` if no slot has been allocated yet.
    pub frame_off: Option<i32>,
    /// Number of uses the code generator has not yet seen.
    pub remaining_uses: u32,
    /// Layout position of the last block the value is live in.
    pub last_pos: u32,
    /// Whether liveness extends to the end of `last_pos`.
    pub last_full: bool,
    /// Per-part state (inline for up to two parts).
    pub parts: PartList,
}

impl Assignment {
    /// Total spill size in bytes (sum of part sizes, each padded to 8 bytes
    /// so part offsets are trivially computable).
    pub fn spill_size(&self) -> u32 {
        self.parts.len() as u32 * 8
    }

    /// Byte offset of a part within the value's spill slot.
    pub fn part_offset(&self, part: u32) -> i32 {
        part as i32 * 8
    }
}

/// Table of assignments indexed by value number, plus the frame-slot
/// allocator.
#[derive(Debug, Default)]
pub struct AssignmentTable {
    slots: Vec<Option<Assignment>>,
    /// Values that currently have an assignment (for cheap sweeping).
    active: Vec<ValueRef>,
}

impl AssignmentTable {
    /// Creates a table for `value_count` values.
    pub fn new(value_count: usize) -> AssignmentTable {
        AssignmentTable {
            slots: vec![None; value_count],
            active: Vec::new(),
        }
    }

    /// Number of value slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether a value currently has an assignment.
    pub fn contains(&self, v: ValueRef) -> bool {
        self.slots.get(v.idx()).is_some_and(|s| s.is_some())
    }

    /// Inserts an assignment for a value (replacing any existing one).
    pub fn insert(&mut self, v: ValueRef, a: Assignment) {
        if self.slots[v.idx()].is_none() {
            self.active.push(v);
        }
        self.slots[v.idx()] = Some(a);
    }

    /// Shared access to a value's assignment.
    pub fn get(&self, v: ValueRef) -> Option<&Assignment> {
        self.slots.get(v.idx()).and_then(|s| s.as_ref())
    }

    /// Mutable access to a value's assignment.
    pub fn get_mut(&mut self, v: ValueRef) -> Option<&mut Assignment> {
        self.slots.get_mut(v.idx()).and_then(|s| s.as_mut())
    }

    /// Removes a value's assignment and returns it.
    pub fn remove(&mut self, v: ValueRef) -> Option<Assignment> {
        self.slots.get_mut(v.idx()).and_then(|s| s.take())
    }

    /// Values that currently (or recently) had assignments. May contain
    /// already-removed values; callers should check [`AssignmentTable::get`].
    pub fn active(&self) -> &[ValueRef] {
        &self.active
    }

    /// Removes values from the active list for which `keep` returns `false`.
    pub fn retain_active(&mut self, mut keep: impl FnMut(ValueRef) -> bool) {
        self.active.retain(|v| keep(*v));
    }

    /// Drops active-list entries whose assignment has been removed
    /// (allocation-free replacement for collecting a keep-list).
    pub fn prune_active(&mut self) {
        let slots = &self.slots;
        self.active.retain(|v| slots[v.idx()].is_some());
    }

    /// Clears all assignments (end of function).
    pub fn clear(&mut self) {
        for v in self.active.drain(..) {
            self.slots[v.idx()] = None;
        }
    }

    /// Resizes the table for a new function.
    pub fn reset(&mut self, value_count: usize) {
        self.clear();
        self.slots.clear();
        self.slots.resize(value_count, None);
    }
}

/// Allocates spill slots and stack-variable storage in the function frame.
///
/// Offsets are negative, relative to the frame pointer, growing downwards.
/// The first `reserved` bytes below the frame pointer are owned by the
/// target (callee-save area).
#[derive(Debug, Default)]
pub struct FrameAlloc {
    next_off: i32,
    free8: Vec<i32>,
    free16: Vec<i32>,
}

impl FrameAlloc {
    /// Creates a frame allocator with `reserved` bytes already used below the
    /// frame pointer.
    pub fn new(reserved: u32) -> FrameAlloc {
        FrameAlloc {
            next_off: -(reserved as i32),
            free8: Vec::new(),
            free16: Vec::new(),
        }
    }

    /// Resets the allocator for a new function, keeping the free-list
    /// buffers' capacity.
    pub fn reset(&mut self, reserved: u32) {
        self.next_off = -(reserved as i32);
        self.free8.clear();
        self.free16.clear();
    }

    /// Allocates a slot of `size` bytes with the given alignment and returns
    /// its frame offset (negative).
    pub fn alloc(&mut self, size: u32, align: u32) -> i32 {
        let size = size.max(1);
        let align = align.max(1).max(if size >= 8 {
            8
        } else {
            size.next_power_of_two()
        });
        if align <= 8 && size <= 8 {
            if let Some(off) = self.free8.pop() {
                return off;
            }
        } else if align <= 16 && size <= 16 {
            if let Some(off) = self.free16.pop() {
                return off;
            }
        }
        let size = (size + align - 1) & !(align - 1);
        let mut off = self.next_off - size as i32;
        // align the (negative) offset
        off &= !(align as i32 - 1);
        self.next_off = off;
        off
    }

    /// Returns a slot to the allocator for reuse.
    pub fn free(&mut self, off: i32, size: u32) {
        if size <= 8 {
            self.free8.push(off);
        } else if size <= 16 {
            self.free16.push(off);
        }
        // larger slots (stack variables) are not recycled
    }

    /// Total frame size in bytes used so far (positive), 16-byte aligned.
    pub fn frame_size(&self) -> u32 {
        let raw = (-self.next_off) as u32;
        (raw + 15) & !15
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part() -> PartState {
        PartState {
            reg: None,
            size: 8,
            bank: RegBank::GP,
            in_mem: false,
            fixed: false,
            recompute: None,
        }
    }

    #[test]
    fn table_insert_get_remove() {
        let mut t = AssignmentTable::new(4);
        assert!(!t.contains(ValueRef(2)));
        t.insert(
            ValueRef(2),
            Assignment {
                frame_off: None,
                remaining_uses: 3,
                last_pos: 5,
                last_full: false,
                parts: [part()].into_iter().collect(),
            },
        );
        assert!(t.contains(ValueRef(2)));
        assert_eq!(t.get(ValueRef(2)).unwrap().remaining_uses, 3);
        t.get_mut(ValueRef(2)).unwrap().remaining_uses -= 1;
        assert_eq!(t.get(ValueRef(2)).unwrap().remaining_uses, 2);
        let a = t.remove(ValueRef(2)).unwrap();
        assert_eq!(a.remaining_uses, 2);
        assert!(!t.contains(ValueRef(2)));
    }

    #[test]
    fn spill_size_and_part_offsets() {
        let a = Assignment {
            frame_off: Some(-16),
            remaining_uses: 0,
            last_pos: 0,
            last_full: false,
            parts: [part(), part()].into_iter().collect(),
        };
        assert_eq!(a.spill_size(), 16);
        assert_eq!(a.part_offset(0), 0);
        assert_eq!(a.part_offset(1), 8);
    }

    #[test]
    fn part_list_inline_and_heap_spill() {
        let mut l = PartList::new();
        assert!(l.is_empty());
        for i in 0..5u32 {
            let mut p = part();
            p.size = i + 1;
            l.push(p);
            assert_eq!(l.len(), i as usize + 1);
        }
        // contents survive the inline -> heap transition
        for (i, p) in l.iter().enumerate() {
            assert_eq!(p.size, i as u32 + 1);
        }
        l[4].size = 99;
        assert_eq!(l[4].size, 99);
    }

    #[test]
    fn prune_active_drops_removed_values() {
        let mut t = AssignmentTable::new(4);
        for i in 0..3 {
            t.insert(
                ValueRef(i),
                Assignment {
                    frame_off: None,
                    remaining_uses: 0,
                    last_pos: 0,
                    last_full: false,
                    parts: [part()].into_iter().collect(),
                },
            );
        }
        t.remove(ValueRef(1));
        t.prune_active();
        assert_eq!(t.active(), &[ValueRef(0), ValueRef(2)]);
    }

    #[test]
    fn frame_alloc_is_aligned_and_reuses_slots() {
        let mut f = FrameAlloc::new(64);
        let a = f.alloc(8, 8);
        assert!(a <= -64 - 8);
        assert_eq!(a % 8, 0);
        let b = f.alloc(8, 8);
        assert_ne!(a, b);
        f.free(a, 8);
        let c = f.alloc(8, 8);
        assert_eq!(c, a, "freed slot is reused");
        let big = f.alloc(64, 16);
        assert_eq!(big % 16, 0);
        assert!(f.frame_size().is_multiple_of(16));
        assert!(f.frame_size() >= 64 + 8 + 8 + 64);
    }

    #[test]
    fn frame_alloc_respects_reserved_area() {
        let mut f = FrameAlloc::new(48);
        let a = f.alloc(4, 4);
        assert!(a <= -48);
    }
}
