//! The IR adapter interface: the only way the framework accesses an IR.
//!
//! Per the paper, the adapter exposes all information the framework needs in
//! a canonical form: the list of functions, basic blocks and their
//! successors, phi nodes, instructions and their operands, and for every
//! value the number of *parts*, each part's size and preferred register bank.
//!
//! ## Reference types
//!
//! The paper recommends that adapters use a single integer as reference type.
//! This implementation takes that recommendation one step further and fixes
//! the reference types to dense `u32` indices ([`ValueRef`], [`BlockRef`],
//! [`InstRef`], [`FuncRef`]): the adapter must number values and blocks of
//! the current function contiguously starting at 0. This replaces the
//! paper's per-block 64-bit auxiliary storage and per-value numbering
//! requirement — the framework simply keeps its own arrays indexed by these
//! numbers, which is equivalent and keeps the adapter trait small.

use crate::regs::RegBank;

/// Reference to an IR value of the current function (dense index).
///
/// Arguments, phis, instruction results, stack variables and constants are
/// all values. Indices must be unique per function and `< value_count()`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ValueRef(pub u32);

/// Reference to a basic block of the current function (dense index).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BlockRef(pub u32);

/// Reference to an instruction of the current function (dense index).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct InstRef(pub u32);

/// Reference to a function of the module (dense index).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FuncRef(pub u32);

impl ValueRef {
    /// The dense index as a `usize` for array indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl BlockRef {
    /// The dense index as a `usize` for array indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl InstRef {
    /// The dense index as a `usize` for array indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl FuncRef {
    /// The dense index as a `usize` for array indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Symbol linkage of a function or global.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Linkage {
    /// Visible outside the object (global symbol).
    External,
    /// Local to the object.
    Internal,
    /// Weak definition (e.g. inline functions).
    Weak,
}

/// Description of a fixed-size stack variable (e.g. an LLVM static `alloca`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StackVarDesc {
    /// The IR value that refers to the variable's address.
    pub value: ValueRef,
    /// Size of the variable in bytes.
    pub size: u32,
    /// Required alignment in bytes (power of two).
    pub align: u32,
}

/// Extra per-argument information needed for ABI lowering.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ArgInfo {
    /// Size for by-value (memory) argument passing, 0 if passed normally.
    pub byval_size: u32,
    /// Alignment for by-value passing.
    pub byval_align: u32,
    /// Whether this argument is the struct-return pointer.
    pub is_sret: bool,
}

/// One incoming edge of a phi node: the value flowing in from a predecessor.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PhiIncoming {
    /// The predecessor block.
    pub block: BlockRef,
    /// The value that flows in along that edge.
    pub value: ValueRef,
}

/// Canonical access to an SSA IR, as required by the TPDE framework.
///
/// The adapter operates on a *current function*: the framework calls
/// [`IrAdapter::switch_func`] before querying any per-function information
/// and calls [`IrAdapter::finalize_func`] when it is done with the function.
///
/// All slice-returning methods return freshly allocated `Vec`s for
/// simplicity; adapters should keep these cheap (the framework caches what it
/// needs in its own dense arrays).
pub trait IrAdapter {
    // ---- module-level -----------------------------------------------------

    /// All functions that should end up in the symbol table, both defined
    /// functions and external declarations.
    fn funcs(&self) -> Vec<FuncRef>;

    /// Symbol name of a function.
    fn func_name(&self, func: FuncRef) -> String;

    /// Linkage of a function.
    fn func_linkage(&self, func: FuncRef) -> Linkage;

    /// Whether the function has a body that must be compiled.
    fn func_is_definition(&self, func: FuncRef) -> bool;

    // ---- current function -------------------------------------------------

    /// Makes `func` the current function. Called once per defined function
    /// before any of the per-function queries below. Adapters typically
    /// compute their dense value numbering here.
    fn switch_func(&mut self, func: FuncRef);

    /// Releases per-function data computed in [`IrAdapter::switch_func`].
    fn finalize_func(&mut self) {}

    /// Upper bound (exclusive) of value indices used by the current function.
    fn value_count(&self) -> usize;

    /// Whether the current function needs exception unwind information.
    fn needs_unwind_info(&self) -> bool {
        false
    }

    /// Whether the current function is variadic.
    fn is_variadic(&self) -> bool {
        false
    }

    /// The function arguments, in ABI order.
    fn args(&self) -> Vec<ValueRef>;

    /// Per-argument ABI information; same length/order as [`IrAdapter::args`].
    fn arg_info(&self) -> Vec<ArgInfo> {
        self.args().iter().map(|_| ArgInfo::default()).collect()
    }

    /// Fixed-size stack variables of the current function. The framework
    /// allocates these in the frame during prologue generation; their value
    /// is the address and is marked trivially recomputable.
    fn static_stack_vars(&self) -> Vec<StackVarDesc> {
        Vec::new()
    }

    /// Basic blocks of the current function. The entry block must be first.
    /// Block indices must be dense (`0..blocks().len()`).
    fn blocks(&self) -> Vec<BlockRef>;

    /// Successors of a block, in terminator order.
    fn block_succs(&self, block: BlockRef) -> Vec<BlockRef>;

    /// Phi nodes at the start of a block.
    fn block_phis(&self, block: BlockRef) -> Vec<ValueRef> {
        let _ = block;
        Vec::new()
    }

    /// Instructions of a block in program order, excluding phi nodes,
    /// including the terminator.
    fn block_insts(&self, block: BlockRef) -> Vec<InstRef>;

    /// Incoming edges of a phi node.
    fn phi_incoming(&self, phi: ValueRef) -> Vec<PhiIncoming>;

    // ---- instructions -----------------------------------------------------

    /// Operand values of an instruction (only those the framework should
    /// track uses for; e.g. immediate operands folded by the instruction
    /// compiler may be omitted).
    fn inst_operands(&self, inst: InstRef) -> Vec<ValueRef>;

    /// Result values defined by an instruction (usually zero or one).
    fn inst_results(&self, inst: InstRef) -> Vec<ValueRef>;

    // ---- values -----------------------------------------------------------

    /// Number of parts a value consists of (e.g. 2 for a 128-bit integer).
    fn val_part_count(&self, val: ValueRef) -> u32;

    /// Size in bytes of one part of a value.
    fn val_part_size(&self, val: ValueRef, part: u32) -> u32;

    /// Preferred register bank of one part of a value.
    fn val_part_bank(&self, val: ValueRef, part: u32) -> RegBank;

    /// Whether the value is a constant usable directly as an operand.
    fn val_is_const(&self, val: ValueRef) -> bool {
        let _ = val;
        false
    }

    /// Raw bits of one part of a constant value (zero-extended to 64 bits).
    ///
    /// Only called when [`IrAdapter::val_is_const`] returned `true`.
    fn val_const_data(&self, val: ValueRef, part: u32) -> u64 {
        let _ = (val, part);
        0
    }

    /// Optional debug name of a value, used only in diagnostics.
    fn val_name(&self, val: ValueRef) -> String {
        format!("v{}", val.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refs_are_dense_indices() {
        assert_eq!(ValueRef(7).idx(), 7);
        assert_eq!(BlockRef(3).idx(), 3);
        assert_eq!(InstRef(0).idx(), 0);
        assert_eq!(FuncRef(2).idx(), 2);
    }

    #[test]
    fn arg_info_default_is_plain() {
        let i = ArgInfo::default();
        assert_eq!(i.byval_size, 0);
        assert!(!i.is_sret);
    }
}
