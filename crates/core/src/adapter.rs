//! The IR adapter interface: the only way the framework accesses an IR.
//!
//! Per the paper, the adapter exposes all information the framework needs in
//! a canonical form: the list of functions, basic blocks and their
//! successors, phi nodes, instructions and their operands, and for every
//! value the number of *parts*, each part's size and preferred register bank.
//!
//! ## Reference types
//!
//! The paper recommends that adapters use a single integer as reference type.
//! This implementation takes that recommendation one step further and fixes
//! the reference types to dense `u32` indices ([`ValueRef`], [`BlockRef`],
//! [`InstRef`], [`FuncRef`]): the adapter must number values, blocks and
//! instructions of the current function contiguously starting at 0, with
//! block 0 being the entry block. This replaces the paper's per-block 64-bit
//! auxiliary storage and per-value numbering requirement — the framework
//! simply keeps its own arrays indexed by these numbers, which is equivalent
//! and keeps the adapter trait small.
//!
//! ## Implementing an adapter without allocating
//!
//! The adapter sits on the hottest path of the compiler: `inst_operands` and
//! `inst_results` are called for every instruction, `block_insts`,
//! `block_succs` and `block_phis` for every block — first by the analysis
//! pass and then again by the code generator. A heap allocation per query
//! would dominate the compile time of a single-pass back-end (§2 of the
//! paper), so every collection-valued query returns a **borrowed slice**
//! (`&[T]`) instead of a fresh `Vec`, and names are returned as `&str` /
//! [`Cow`].
//!
//! The recommended implementation strategy, used by all adapters in this
//! workspace, is to *pre-index* the current function in
//! [`IrAdapter::switch_func`]:
//!
//! 1. Walk the function once and append the data of every query into flat
//!    tables owned by the adapter (one `Vec<ValueRef>` holding all operand
//!    lists back to back, one `Vec<BlockRef>` holding all successor lists,
//!    and so on), recording a `(start, len)` range per instruction / block /
//!    phi in a dense side table.
//! 2. Answer each query by slicing the flat table:
//!    `&self.operands[range.0..range.1]`.
//! 3. `clear()` (never drop) the tables at the start of the next
//!    `switch_func`, so their capacity is reused and the steady-state compile
//!    loop performs **zero** allocations per function once the tables have
//!    grown to the largest function of the module.
//!
//! If the source IR already stores a list contiguously (e.g. phi incoming
//! edges), the adapter can skip the copy and slice the IR's own storage
//! directly. Repeated queries for the same reference must return the same
//! contents until the next `switch_func`/`finalize_func`; the framework is
//! free to hold a returned slice across unrelated queries on the same
//! adapter.

use crate::regs::RegBank;
use std::borrow::Cow;

/// Reference to an IR value of the current function (dense index).
///
/// Arguments, phis, instruction results, stack variables and constants are
/// all values. Indices must be unique per function and `< value_count()`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ValueRef(pub u32);

/// Reference to a basic block of the current function (dense index).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BlockRef(pub u32);

/// Reference to an instruction of the current function (dense index).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct InstRef(pub u32);

/// Reference to a function of the module (dense index).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FuncRef(pub u32);

impl ValueRef {
    /// The dense index as a `usize` for array indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl BlockRef {
    /// The dense index as a `usize` for array indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl InstRef {
    /// The dense index as a `usize` for array indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl FuncRef {
    /// The dense index as a `usize` for array indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Symbol linkage of a function or global.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Linkage {
    /// Visible outside the object (global symbol).
    External,
    /// Local to the object.
    Internal,
    /// Weak definition (e.g. inline functions).
    Weak,
}

/// Description of a fixed-size stack variable (e.g. an LLVM static `alloca`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StackVarDesc {
    /// The IR value that refers to the variable's address.
    pub value: ValueRef,
    /// Size of the variable in bytes.
    pub size: u32,
    /// Required alignment in bytes (power of two).
    pub align: u32,
}

/// Extra per-argument information needed for ABI lowering.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ArgInfo {
    /// Size for by-value (memory) argument passing, 0 if passed normally.
    pub byval_size: u32,
    /// Alignment for by-value passing.
    pub byval_align: u32,
    /// Whether this argument is the struct-return pointer.
    pub is_sret: bool,
}

/// One incoming edge of a phi node: the value flowing in from a predecessor.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PhiIncoming {
    /// The predecessor block.
    pub block: BlockRef,
    /// The value that flows in along that edge.
    pub value: ValueRef,
}

/// Canonical access to an SSA IR, as required by the TPDE framework.
///
/// The adapter operates on a *current function*: the framework calls
/// [`IrAdapter::switch_func`] before querying any per-function information
/// and calls [`IrAdapter::finalize_func`] when it is done with the function.
///
/// All collection-valued queries return borrowed slices that must stay
/// stable (same contents) until the next `switch_func`/`finalize_func`; see
/// the [module docs](self) for the recommended pre-indexing strategy that
/// makes them allocation-free.
pub trait IrAdapter {
    // ---- module-level -----------------------------------------------------

    /// Number of functions in the module (defined functions and external
    /// declarations). All of them end up in the symbol table; function
    /// indices are dense (`0..func_count()`).
    fn func_count(&self) -> usize;

    /// Symbol name of a function.
    fn func_name(&self, func: FuncRef) -> &str;

    /// Linkage of a function.
    fn func_linkage(&self, func: FuncRef) -> Linkage;

    /// Whether the function has a body that must be compiled.
    fn func_is_definition(&self, func: FuncRef) -> bool;

    // ---- current function -------------------------------------------------

    /// Makes `func` the current function. Called once per defined function
    /// before any of the per-function queries below. Adapters typically
    /// build their dense index tables here (reusing buffers from the
    /// previous function).
    fn switch_func(&mut self, func: FuncRef);

    /// Releases per-function data computed in [`IrAdapter::switch_func`].
    fn finalize_func(&mut self) {}

    /// Upper bound (exclusive) of value indices used by the current function.
    fn value_count(&self) -> usize;

    /// Upper bound (exclusive) of instruction indices used by the current
    /// function. The framework sizes dense per-instruction side tables
    /// (e.g. the fusion bitmap) with this.
    fn inst_count(&self) -> usize;

    /// Whether the current function needs exception unwind information.
    fn needs_unwind_info(&self) -> bool {
        false
    }

    /// Whether the current function is variadic.
    fn is_variadic(&self) -> bool {
        false
    }

    /// The function arguments, in ABI order.
    fn args(&self) -> &[ValueRef];

    /// ABI information of the `idx`-th argument (same order as
    /// [`IrAdapter::args`]).
    fn arg_info(&self, idx: usize) -> ArgInfo {
        let _ = idx;
        ArgInfo::default()
    }

    /// Fixed-size stack variables of the current function. The framework
    /// allocates these in the frame during prologue generation; their value
    /// is the address and is marked trivially recomputable.
    fn static_stack_vars(&self) -> &[StackVarDesc] {
        &[]
    }

    /// Number of basic blocks of the current function. Block indices are
    /// dense (`0..block_count()`) and block 0 is the entry block.
    fn block_count(&self) -> usize;

    /// Successors of a block, in terminator order.
    fn block_succs(&self, block: BlockRef) -> &[BlockRef];

    /// Phi nodes at the start of a block.
    fn block_phis(&self, block: BlockRef) -> &[ValueRef] {
        let _ = block;
        &[]
    }

    /// Instructions of a block in program order, excluding phi nodes,
    /// including the terminator.
    fn block_insts(&self, block: BlockRef) -> &[InstRef];

    /// Incoming edges of a phi node.
    fn phi_incoming(&self, phi: ValueRef) -> &[PhiIncoming];

    // ---- instructions -----------------------------------------------------

    /// Operand values of an instruction (only those the framework should
    /// track uses for; e.g. immediate operands folded by the instruction
    /// compiler may be omitted).
    fn inst_operands(&self, inst: InstRef) -> &[ValueRef];

    /// Result values defined by an instruction (usually zero or one).
    fn inst_results(&self, inst: InstRef) -> &[ValueRef];

    // ---- values -----------------------------------------------------------

    /// Number of parts a value consists of (e.g. 2 for a 128-bit integer).
    fn val_part_count(&self, val: ValueRef) -> u32;

    /// Size in bytes of one part of a value.
    fn val_part_size(&self, val: ValueRef, part: u32) -> u32;

    /// Preferred register bank of one part of a value.
    fn val_part_bank(&self, val: ValueRef, part: u32) -> RegBank;

    /// Whether the value is a constant usable directly as an operand.
    fn val_is_const(&self, val: ValueRef) -> bool {
        let _ = val;
        false
    }

    /// Raw bits of one part of a constant value (zero-extended to 64 bits).
    ///
    /// Only called when [`IrAdapter::val_is_const`] returned `true`.
    fn val_const_data(&self, val: ValueRef, part: u32) -> u64 {
        let _ = (val, part);
        0
    }

    /// Optional debug name of a value, used only in diagnostics.
    fn val_name(&self, val: ValueRef) -> Cow<'_, str> {
        Cow::Owned(format!("v{}", val.0))
    }

    // ---- verification support (optional) ----------------------------------
    //
    // The queries below exist only for the IR verifier ([`crate::verify`]).
    // They are *optional*: an adapter that cannot (or does not want to)
    // answer them returns `None`, and the verifier skips the corresponding
    // structural checks. Code generation never calls them.

    /// Whether `inst` is a block terminator (branch, return, unreachable).
    ///
    /// `None` means "unknown"; the verifier then skips terminator-placement
    /// checks for this adapter.
    fn inst_is_terminator(&self, inst: InstRef) -> Option<bool> {
        let _ = inst;
        None
    }

    /// If `inst` is a direct call, the callee and the number of arguments
    /// actually passed. `None` for non-calls, indirect calls, or adapters
    /// that do not track calls.
    fn inst_call_target(&self, inst: InstRef) -> Option<(FuncRef, usize)> {
        let _ = inst;
        None
    }

    /// Number of formal parameters of `func` (any function of the module,
    /// not just the current one). `None` if unknown; the verifier then
    /// skips call-arity checks against that callee.
    fn func_param_count(&self, func: FuncRef) -> Option<usize> {
        let _ = func;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refs_are_dense_indices() {
        assert_eq!(ValueRef(7).idx(), 7);
        assert_eq!(BlockRef(3).idx(), 3);
        assert_eq!(InstRef(0).idx(), 0);
        assert_eq!(FuncRef(2).idx(), 2);
    }

    #[test]
    fn arg_info_default_is_plain() {
        let i = ArgInfo::default();
        assert_eq!(i.byval_size, 0);
        assert!(!i.is_sret);
    }
}
