//! Tiny seeded PRNGs for deterministic tests and fuzzing.
//!
//! The workspace is built offline (no `rand` crate), but the fuzzer and the
//! stress tests need reproducible pseudo-random streams. This module provides
//! the two classic generators that cover both needs with ~30 lines of code:
//!
//! * [`SplitMix64`] — a one-instruction-per-step mixer, ideal for expanding a
//!   single `u64` seed into independent sub-seeds (and for seeding the state
//!   of the larger generator below).
//! * [`Xoshiro256`] — `xoshiro256**`, the general-purpose stream generator.
//!   Fast, 256 bits of state, passes BigCrush; more than enough statistical
//!   quality for IR fuzzing and scheduling jitter in stress tests.
//!
//! Both are fully deterministic: the same seed always yields the same stream
//! on every platform, which is what makes `(seed, shrunken IR)` fuzz
//! artifacts reproducible.

/// SplitMix64: expands a seed into a stream of well-mixed `u64`s.
///
/// Primarily used to derive independent sub-seeds (one per fuzzed module,
/// one per worker thread, ...) from a single user-visible seed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from `seed`. Any seed is fine, including 0.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// `xoshiro256**` by Blackman & Vigna: the workhorse stream generator.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator whose 256-bit state is expanded from `seed`
    /// via [`SplitMix64`] (the canonical seeding procedure, which also
    /// guarantees the all-zero state cannot occur).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `0..n` (n must be non-zero). Uses the multiply-shift
    /// reduction; the modulo bias is negligible for fuzzing purposes.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Bernoulli trial: true with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference output for seed 1234567 from the public-domain C source.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
    }

    #[test]
    fn xoshiro_is_deterministic_and_well_spread() {
        let mut a = Xoshiro256::new(42);
        let mut b = Xoshiro256::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Different seeds diverge immediately.
        let mut c = Xoshiro256::new(43);
        assert_ne!(Xoshiro256::new(42).next_u64(), c.next_u64());
        // below() respects its bound and hits both halves of the range.
        let mut r = Xoshiro256::new(7);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..200 {
            let v = r.below(10);
            assert!(v < 10);
            if v < 5 {
                lo = true;
            } else {
                hi = true;
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn pick_and_chance_cover_inputs() {
        let mut r = Xoshiro256::new(99);
        let xs = [1u32, 2, 3];
        for _ in 0..50 {
            assert!(xs.contains(r.pick(&xs)));
        }
        let mut yes = 0;
        for _ in 0..1000 {
            if r.chance(1, 2) {
                yes += 1;
            }
        }
        assert!((300..700).contains(&yes), "chance(1,2) hit {yes}/1000");
    }
}
