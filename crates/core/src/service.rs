//! Persistent compile service: pooled multi-request pipelining with a
//! content-addressed module cache.
//!
//! The one-shot entry points ([`crate::codegen::CodeGen::compile_module`],
//! [`crate::parallel::ParallelDriver`]) pay their setup cost — thread spawn,
//! session warm-up, adapter indexing — on every call. JIT-style workloads
//! instead see a *stream* of mostly small modules arriving continuously, so
//! a [`CompileService`] keeps everything warm across requests:
//!
//! * **Persistent workers.** `workers` threads are spawned once at
//!   construction; each owns a [`CompileSession`] and a backend-defined
//!   warm state ([`ServiceBackend::Worker`], e.g. pre-indexed adapter
//!   tables and an instruction compiler) that survive from request to
//!   request, so the steady-state compile loop stays allocation-free.
//! * **Pipelining.** Requests are submitted without blocking and answered
//!   through a [`Ticket`]. Small modules are batched whole onto one worker
//!   (different requests compile concurrently on different workers); large
//!   modules (≥ [`ServiceConfig::shard_threshold`] functions) are sharded
//!   *across* the pool using the same per-function units and deterministic
//!   merge as [`crate::parallel::compile_sharded`].
//! * **Module cache.** Responses of cacheable requests are stored under a
//!   content hash of the request ([`ServiceBackend::request_key`]); a
//!   repeated module skips compilation entirely and is answered at
//!   submission with a byte-identical copy of the cached buffer. The cache
//!   is LRU-bounded by [`ServiceConfig::cache_capacity`].
//! * **Disk tier.** With [`ServiceConfig::disk_cache`] set, in-memory
//!   misses consult a persistent on-disk artifact store
//!   ([`crate::diskcache::DiskCache`]) before compiling: a hit is answered
//!   at submission (like a memory hit) and promoted into the in-memory
//!   cache; compiled responses are written back to disk by the workers, off
//!   the submit path. The store survives process restarts and is shared by
//!   concurrent service processes, so the lookup order is memory LRU → disk
//!   → compile.
//!
//! # Determinism contract
//!
//! For every request, the response buffer is **byte-identical to the
//! one-shot sequential compiler** for that backend: the batched path runs
//! the sequential driver itself, the sharded path inherits the
//! [`crate::parallel`] merge contract, and cache hits replay a buffer that
//! was produced by one of the two. Pinned by `crates/llvm/tests/service.rs`
//! for every workload kind × worker count × backend.
//!
//! # Shutdown
//!
//! Dropping the service *drains* the queue: no new requests are accepted,
//! but every submitted request — queued or in flight — is compiled and its
//! ticket answered before the worker threads exit.

use crate::codebuf::CodeBuffer;
use crate::codegen::{CompileSession, CompileStats, CompiledModule};
use crate::diskcache::{DiskCache, DiskCacheConfig};
use crate::error::{Error, Result};
use crate::parallel::{check_predeclared_func_symbols, merge_shards, Shard};
use crate::timing::{PassTimings, RequestTiming, ServiceStats};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Deterministic 64-bit FNV-1a hasher, usable with `#[derive(Hash)]` types.
///
/// Unlike [`std::collections::hash_map::RandomState`], the result is stable
/// across processes and runs, which is what a content-addressed module
/// cache (and any on-disk artifact keyed by it) needs.
#[derive(Clone, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Creates a hasher with the standard FNV-1a offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

impl std::hash::Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Configuration of a [`CompileService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Number of persistent worker threads (at least 1).
    pub workers: usize,
    /// Modules with at least this many functions are sharded across the
    /// pool; smaller ones are batched whole onto one worker. Sharding also
    /// requires more than one worker.
    pub shard_threshold: usize,
    /// Maximum number of cached modules; 0 disables the cache.
    pub cache_capacity: usize,
    /// Persistent on-disk artifact store consulted between the in-memory
    /// cache and a compile; `None` (the default) disables the disk tier.
    /// If the store cannot be opened the service logs to stderr and runs
    /// without it rather than failing construction.
    pub disk_cache: Option<DiskCacheConfig>,
}

impl ServiceConfig {
    /// A config with `workers` threads and the default placement/cache
    /// settings.
    pub fn with_workers(workers: usize) -> ServiceConfig {
        ServiceConfig {
            workers,
            ..ServiceConfig::default()
        }
    }
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            shard_threshold: 64,
            cache_capacity: 128,
            disk_cache: None,
        }
    }
}

/// The IR- and target-specific half of a [`CompileService`].
///
/// A backend receives requests of its own type (typically an `Arc` of a
/// module plus a target/options selector) and provides the per-function
/// compilation units the service schedules. The three compile paths must
/// agree: [`ServiceBackend::compile_module`] is the sequential reference,
/// and [`ServiceBackend::predeclare`] + [`ServiceBackend::compile_func`]
/// must reproduce it function by function under the
/// [`crate::parallel::compile_sharded`] contract (self-contained function
/// output, one predeclared symbol per function in index order).
pub trait ServiceBackend: Send + Sync + 'static {
    /// One compile request (owned, shared across worker threads).
    type Request: Send + Sync + 'static;
    /// Warm per-thread state kept across requests (adapter tables,
    /// instruction compilers, cached target drivers).
    type Worker: Send + 'static;

    /// Creates the warm state of one worker thread.
    fn new_worker(&self) -> Self::Worker;

    /// Content hash of the request — the module cache key. Must cover
    /// everything that influences the output bytes (module content, target,
    /// backend selection, compile options). `None` makes the request
    /// uncacheable.
    fn request_key(&self, req: &Self::Request) -> Option<u64>;

    /// Number of functions in the request's module (drives placement).
    fn func_count(&self, req: &Self::Request) -> usize;

    /// Configures a session for the request's target (sharded path only;
    /// the batched path prepares inside [`ServiceBackend::compile_module`]).
    /// The worker state is available so backends can reuse warm per-target
    /// drivers instead of rebuilding them per request.
    fn prepare_session(
        &self,
        req: &Self::Request,
        worker: &mut Self::Worker,
        session: &mut CompileSession,
    );

    /// Declares one symbol per function, in function-index order (sharded
    /// path, applied to every shard buffer and the merged buffer).
    fn predeclare(&self, req: &Self::Request, buf: &mut CodeBuffer);

    /// Compiles function `f` into `buf`, returning `Ok(false)` to skip a
    /// declaration. Output must be self-contained (see [`crate::parallel`]).
    #[allow(clippy::too_many_arguments)]
    fn compile_func(
        &self,
        req: &Self::Request,
        worker: &mut Self::Worker,
        session: &mut CompileSession,
        buf: &mut CodeBuffer,
        f: u32,
        stats: &mut CompileStats,
        timings: &mut PassTimings,
    ) -> Result<bool>;

    /// Compiles the whole module on one worker — must be byte-identical to
    /// the backend's one-shot sequential entry point (the usual
    /// implementation simply calls it with the warm session).
    fn compile_module(
        &self,
        req: &Self::Request,
        worker: &mut Self::Worker,
        session: &mut CompileSession,
    ) -> Result<CompiledModule>;
}

/// A service response: the compile result plus its request-level timing.
#[derive(Debug)]
pub struct ServiceResponse {
    /// The compiled module, or the compile error.
    pub module: Result<CompiledModule>,
    /// Request-level timing and placement information.
    pub timing: RequestTiming,
}

/// Handle to one in-flight request; redeem with [`Ticket::wait`].
///
/// Tickets outlive the service: dropping the [`CompileService`] drains the
/// queue first, so a ticket submitted before the drop still resolves.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<ServiceResponse>,
}

impl Ticket {
    /// Blocks until the response is ready.
    pub fn wait(self) -> ServiceResponse {
        self.rx.recv().unwrap_or_else(|_| ServiceResponse {
            module: Err(Error::Emit(
                "compile service shut down before answering".into(),
            )),
            timing: RequestTiming::default(),
        })
    }
}

/// LRU module cache keyed by request content hash.
///
/// Entries are `Arc`-shared so lookups and inserts only touch the map under
/// the cache lock — the O(module-size) deep clone of the buffer handed to a
/// cache-hit response happens *outside* the lock, so concurrent submitters
/// never serialize behind a memcpy.
struct ModuleCache {
    capacity: usize,
    map: HashMap<u64, Arc<CacheEntry>>,
    tick: AtomicU64,
    evictions: u64,
}

struct CacheEntry {
    buf: CodeBuffer,
    stats: CompileStats,
    last_use: AtomicU64,
}

impl CacheEntry {
    /// Deep copy for a response (call without holding the cache lock).
    fn to_module(&self) -> CompiledModule {
        CompiledModule {
            buf: self.buf.clone(),
            stats: self.stats.clone(),
            timings: PassTimings::new(),
        }
    }
}

impl ModuleCache {
    fn new(capacity: usize) -> ModuleCache {
        ModuleCache {
            capacity,
            map: HashMap::new(),
            tick: AtomicU64::new(0),
            evictions: 0,
        }
    }

    fn get(&self, key: u64) -> Option<Arc<CacheEntry>> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let e = self.map.get(&key)?;
        e.last_use.store(tick, Ordering::Relaxed);
        Some(Arc::clone(e))
    }

    fn insert(&mut self, key: u64, entry: Arc<CacheEntry>) {
        if self.capacity == 0 {
            return;
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            // Evict the least recently used entry.
            if let Some((&victim, _)) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_use.load(Ordering::Relaxed))
            {
                self.map.remove(&victim);
                self.evictions += 1;
            }
        }
        entry.last_use.store(tick, Ordering::Relaxed);
        self.map.insert(key, entry);
    }
}

/// A small-module job: compiled whole on whichever worker pops it.
struct SingleJob<B: ServiceBackend> {
    req: B::Request,
    key: Option<u64>,
    tx: Sender<ServiceResponse>,
    submitted: Instant,
}

/// Mutable rendezvous state of a sharded job.
struct ShardCollect {
    shards: Vec<Shard>,
    stats: CompileStats,
    timings: PassTimings,
    /// Error of the failing function with the lowest index, if any.
    err: Option<(u32, Error)>,
    /// Workers currently participating.
    active: usize,
    /// Set once the response has been produced (later poppers skip).
    done: bool,
    tx: Option<Sender<ServiceResponse>>,
    /// Time the first participant started compiling.
    started: Option<Instant>,
}

/// A large-module job: `workers` copies are enqueued and every worker that
/// pops one joins the shared function-index queue; the last participant to
/// finish merges the shards and answers the ticket.
struct ShardJob<B: ServiceBackend> {
    req: B::Request,
    key: Option<u64>,
    nfuncs: usize,
    next: AtomicUsize,
    abort: AtomicBool,
    collect: Mutex<ShardCollect>,
    submitted: Instant,
}

enum Job<B: ServiceBackend> {
    Single(Box<SingleJob<B>>),
    Shard(Arc<ShardJob<B>>),
}

struct JobQueue<B: ServiceBackend> {
    jobs: VecDeque<Job<B>>,
    closed: bool,
}

/// Monotone service counters (snapshot via [`CompileService::stats`]).
#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    disk_stores: AtomicU64,
    sharded: AtomicU64,
    batched: AtomicU64,
    /// Requests submitted but not yet answered (cache hits pass through
    /// briefly). Its high-water mark is the queue-depth statistic — one
    /// count per *request*, independent of how many shard copies a large
    /// module fans out into.
    inflight: AtomicU64,
    max_queue_depth: AtomicU64,
    total_latency_ns: AtomicU64,
    /// Per-request latency samples (nanoseconds), recorded at completion;
    /// the source of the p50/p99 percentiles in
    /// [`crate::timing::ServiceStats`].
    latency_samples_ns: Mutex<Vec<u64>>,
    /// Disk-artifact load latency samples (nanoseconds), one per disk hit:
    /// mmap + verify + validate + materialize.
    disk_load_samples_ns: Mutex<Vec<u64>>,
}

struct Shared<B: ServiceBackend> {
    backend: B,
    cfg: ServiceConfig,
    queue: Mutex<JobQueue<B>>,
    cv: Condvar,
    cache: Mutex<ModuleCache>,
    /// Disk tier of the cache, if configured and openable.
    disk: Option<DiskCache>,
    counters: Counters,
}

impl<B: ServiceBackend> Shared<B> {
    fn finish_request(&self, tx: &Sender<ServiceResponse>, response: ServiceResponse) {
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        self.counters.inflight.fetch_sub(1, Ordering::Relaxed);
        let latency_ns = response.timing.total.as_nanos() as u64;
        self.counters
            .total_latency_ns
            .fetch_add(latency_ns, Ordering::Relaxed);
        self.counters
            .latency_samples_ns
            .lock()
            .unwrap()
            .push(latency_ns);
        // The submitter may have dropped its ticket; that is not an error.
        let _ = tx.send(response);
    }

    fn cache_store(&self, key: Option<u64>, result: &Result<CompiledModule>) {
        if let (Some(k), Ok(m)) = (key, result) {
            // Deep-clone into the entry before taking the lock; the map
            // operation itself is cheap.
            let entry = Arc::new(CacheEntry {
                buf: m.buf.clone(),
                stats: m.stats.clone(),
                last_use: AtomicU64::new(0),
            });
            self.cache.lock().unwrap().insert(k, entry);
            // Persist to the disk tier. This runs on the worker thread that
            // compiled the module (or merged the shards), so artifact I/O
            // stays off the submit path. Store failures degrade to a
            // smaller cache, never to a wrong answer.
            if let Some(disk) = &self.disk {
                match disk.store(k, m) {
                    Ok(true) => {
                        self.counters.disk_stores.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(false) => {}
                    Err(e) => eprintln!("tpde: disk cache store failed: {e}"),
                }
            }
        }
    }
}

/// A long-lived compile service; see the module docs.
pub struct CompileService<B: ServiceBackend> {
    shared: Arc<Shared<B>>,
    threads: Vec<JoinHandle<()>>,
}

impl<B: ServiceBackend> CompileService<B> {
    /// Spawns the worker threads and returns the running service.
    pub fn new(backend: B, cfg: ServiceConfig) -> CompileService<B> {
        let workers = cfg.workers.max(1);
        let cfg = ServiceConfig { workers, ..cfg };
        let disk = cfg
            .disk_cache
            .clone()
            .and_then(|dc| match DiskCache::open(dc) {
                Ok(d) => Some(d),
                Err(e) => {
                    eprintln!("tpde: disk cache disabled (open failed): {e}");
                    None
                }
            });
        let shared = Arc::new(Shared {
            cache: Mutex::new(ModuleCache::new(cfg.cache_capacity)),
            disk,
            backend,
            cfg,
            queue: Mutex::new(JobQueue {
                jobs: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            counters: Counters::default(),
        });
        let threads = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tpde-svc-{i}"))
                    .spawn(move || worker_main(&shared))
                    .expect("spawn compile service worker")
            })
            .collect();
        CompileService { shared, threads }
    }

    /// Number of persistent worker threads.
    pub fn workers(&self) -> usize {
        self.threads.len()
    }

    /// Submits a request and returns immediately with a [`Ticket`].
    ///
    /// Cache hits are answered before this returns (the ticket resolves
    /// without blocking); misses are queued for the worker pool.
    pub fn submit(&self, req: B::Request) -> Ticket {
        let submitted = Instant::now();
        let shared = &self.shared;
        shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let inflight = shared.counters.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        shared
            .counters
            .max_queue_depth
            .fetch_max(inflight, Ordering::Relaxed);
        let (tx, rx) = channel();
        let key = shared.backend.request_key(&req);

        if let Some(k) = key {
            // Hold the cache lock only for the map lookup; the deep clone
            // of the cached buffer happens after it is released.
            let hit = shared.cache.lock().unwrap().get(k);
            if let Some(entry) = hit {
                shared.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                let module = entry.to_module();
                shared.finish_request(
                    &tx,
                    ServiceResponse {
                        module: Ok(module),
                        timing: RequestTiming {
                            total: submitted.elapsed(),
                            cache_hit: true,
                            ..RequestTiming::default()
                        },
                    },
                );
                return Ticket { rx };
            }
            shared.counters.cache_misses.fetch_add(1, Ordering::Relaxed);

            // Memory miss: consult the disk tier before compiling. Like a
            // memory hit, a disk hit is answered at submission; the loaded
            // module is also promoted into the in-memory cache so repeats
            // in this process stay RAM-fast.
            if let Some(disk) = &shared.disk {
                let load_started = Instant::now();
                if let Some(module) = disk.load(k) {
                    shared.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
                    shared
                        .counters
                        .disk_load_samples_ns
                        .lock()
                        .unwrap()
                        .push(load_started.elapsed().as_nanos() as u64);
                    let entry = Arc::new(CacheEntry {
                        buf: module.buf.clone(),
                        stats: module.stats.clone(),
                        last_use: AtomicU64::new(0),
                    });
                    shared.cache.lock().unwrap().insert(k, entry);
                    shared.finish_request(
                        &tx,
                        ServiceResponse {
                            module: Ok(module),
                            timing: RequestTiming {
                                total: submitted.elapsed(),
                                disk_hit: true,
                                ..RequestTiming::default()
                            },
                        },
                    );
                    return Ticket { rx };
                }
                shared.counters.disk_misses.fetch_add(1, Ordering::Relaxed);
            }
        }

        let nfuncs = shared.backend.func_count(&req);
        let shard = shared.cfg.workers > 1 && nfuncs >= shared.cfg.shard_threshold.max(2);
        let mut queue = shared.queue.lock().unwrap();
        if queue.closed {
            drop(queue);
            shared.finish_request(
                &tx,
                ServiceResponse {
                    module: Err(Error::Emit("compile service is shutting down".into())),
                    timing: RequestTiming {
                        total: submitted.elapsed(),
                        ..RequestTiming::default()
                    },
                },
            );
            return Ticket { rx };
        }
        if shard {
            shared.counters.sharded.fetch_add(1, Ordering::Relaxed);
            let job = Arc::new(ShardJob::<B> {
                req,
                key,
                nfuncs,
                next: AtomicUsize::new(0),
                abort: AtomicBool::new(false),
                collect: Mutex::new(ShardCollect {
                    shards: Vec::new(),
                    stats: CompileStats::default(),
                    timings: PassTimings::new(),
                    err: None,
                    active: 0,
                    done: false,
                    tx: Some(tx),
                    started: None,
                }),
                submitted,
            });
            for _ in 0..shared.cfg.workers {
                queue.jobs.push_back(Job::Shard(Arc::clone(&job)));
            }
        } else {
            shared.counters.batched.fetch_add(1, Ordering::Relaxed);
            queue.jobs.push_back(Job::Single(Box::new(SingleJob {
                req,
                key,
                tx,
                submitted,
            })));
        }
        drop(queue);
        if shard {
            shared.cv.notify_all();
        } else {
            shared.cv.notify_one();
        }
        Ticket { rx }
    }

    /// Submits a request and blocks until its response is ready.
    pub fn compile(&self, req: B::Request) -> ServiceResponse {
        self.submit(req).wait()
    }

    /// Snapshot of the request-level statistics.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.shared.counters;
        let (evictions, cached_modules) = {
            let cache = self.shared.cache.lock().unwrap();
            (cache.evictions, cache.map.len() as u64)
        };
        let mut samples = c.latency_samples_ns.lock().unwrap().clone();
        samples.sort_unstable();
        let mut disk_samples = c.disk_load_samples_ns.lock().unwrap().clone();
        disk_samples.sort_unstable();
        ServiceStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            cache_misses: c.cache_misses.load(Ordering::Relaxed),
            disk_hits: c.disk_hits.load(Ordering::Relaxed),
            disk_misses: c.disk_misses.load(Ordering::Relaxed),
            disk_stores: c.disk_stores.load(Ordering::Relaxed),
            sharded: c.sharded.load(Ordering::Relaxed),
            batched: c.batched.load(Ordering::Relaxed),
            evictions,
            cached_modules,
            max_queue_depth: c.max_queue_depth.load(Ordering::Relaxed),
            total_latency: std::time::Duration::from_nanos(
                c.total_latency_ns.load(Ordering::Relaxed),
            ),
            p50_latency: std::time::Duration::from_nanos(percentile(&samples, 50)),
            p99_latency: std::time::Duration::from_nanos(percentile(&samples, 99)),
            disk_load_p50: std::time::Duration::from_nanos(percentile(&disk_samples, 50)),
            disk_load_p99: std::time::Duration::from_nanos(percentile(&disk_samples, 99)),
        }
    }

    /// Drops every cached module (for tests and memory pressure handling).
    pub fn clear_cache(&self) {
        let mut cache = self.shared.cache.lock().unwrap();
        cache.map.clear();
    }
}

impl<B: ServiceBackend> Drop for CompileService<B> {
    /// Drains the queue: already-submitted requests (queued or in flight)
    /// are compiled and answered before the worker threads exit.
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.closed = true;
        }
        self.shared.cv.notify_all();
        for t in self.threads.drain(..) {
            // A worker that panicked already poisoned its job's ticket;
            // don't double-panic during drop.
            let _ = t.join();
        }
    }
}

/// Runs a backend callback, converting a panic into [`Error::Emit`] so one
/// bad module cannot kill a persistent worker thread. The second return
/// value reports whether a panic was caught — the caller then discards its
/// warm state, which the unwound backend may have left inconsistent.
fn catch_compile<R>(what: &str, f: impl FnOnce() -> Result<R>) -> (Result<R>, bool) {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => (r, false),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            (Err(Error::Emit(format!("{what} panicked: {msg}"))), true)
        }
    }
}

fn worker_main<B: ServiceBackend>(shared: &Shared<B>) {
    let mut session = CompileSession::new();
    let mut worker = shared.backend.new_worker();
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.closed {
                    return;
                }
                queue = shared.cv.wait(queue).unwrap();
            }
        };
        let poisoned = match job {
            Job::Single(job) => run_single(shared, *job, &mut worker, &mut session),
            Job::Shard(job) => run_shard_participant(shared, &job, &mut worker, &mut session),
        };
        if poisoned {
            // A caught panic may have left the warm state half-updated;
            // start this worker over with fresh scratch. The thread — and
            // with it the pool's capacity — survives.
            session = CompileSession::new();
            worker = shared.backend.new_worker();
        }
    }
}

fn run_single<B: ServiceBackend>(
    shared: &Shared<B>,
    job: SingleJob<B>,
    worker: &mut B::Worker,
    session: &mut CompileSession,
) -> bool {
    let started = Instant::now();
    let (result, poisoned) = catch_compile("compile_module", || {
        shared.backend.compile_module(&job.req, worker, session)
    });
    shared.cache_store(job.key, &result);
    shared.finish_request(
        &job.tx,
        ServiceResponse {
            module: result,
            timing: RequestTiming {
                queued: started - job.submitted,
                total: job.submitted.elapsed(),
                cache_hit: false,
                disk_hit: false,
                sharded: false,
            },
        },
    );
    poisoned
}

fn run_shard_participant<B: ServiceBackend>(
    shared: &Shared<B>,
    job: &Arc<ShardJob<B>>,
    worker: &mut B::Worker,
    session: &mut CompileSession,
) -> bool {
    {
        let mut c = job.collect.lock().unwrap();
        if c.done {
            return false; // answered already (all work handed out and merged)
        }
        c.active += 1;
        if c.started.is_none() {
            c.started = Some(Instant::now());
        }
    }

    // The same per-worker shard loop as `compile_sharded`, but driven by a
    // persistent thread with a warm session. A panic anywhere in the loop
    // aborts the job (the indices this participant already claimed would
    // otherwise go missing from the merge) and poisons the worker state,
    // but the rendezvous bookkeeping below still runs so the ticket is
    // answered.
    let (outcome, poisoned) = catch_compile("shard compile", || {
        shared.backend.prepare_session(&job.req, worker, session);
        let mut buf = CodeBuffer::new();
        buf.enable_declare_log();
        shared.backend.predeclare(&job.req, &mut buf);
        let mut records = Vec::new();
        let mut stats = CompileStats::default();
        let mut timings = PassTimings::new();
        let mut err: Option<(u32, Error)> = None;
        loop {
            if job.abort.load(Ordering::Relaxed) {
                break;
            }
            let i = job.next.fetch_add(1, Ordering::Relaxed);
            if i >= job.nfuncs {
                break;
            }
            let start = buf.mark();
            match shared.backend.compile_func(
                &job.req,
                worker,
                session,
                &mut buf,
                i as u32,
                &mut stats,
                &mut timings,
            ) {
                Ok(true) => records.push((
                    i as u32,
                    crate::codebuf::ShardExtent {
                        start,
                        end: buf.mark(),
                    },
                )),
                Ok(false) => {}
                Err(e) => {
                    job.abort.store(true, Ordering::Relaxed);
                    err = Some((i as u32, e));
                    break;
                }
            }
        }
        Ok((buf, records, stats, timings, err))
    });
    let (buf, records, stats, timings, err) = outcome.unwrap_or_else(|panic_err| {
        job.abort.store(true, Ordering::Relaxed);
        (
            CodeBuffer::new(),
            Vec::new(),
            CompileStats::default(),
            PassTimings::new(),
            // u32::MAX so a real per-function error from another
            // participant takes precedence in the report.
            Some((u32::MAX, panic_err)),
        )
    });

    let mut c = job.collect.lock().unwrap();
    c.stats.merge(&stats);
    c.timings.merge(&timings);
    if let Some((i, e)) = err {
        if c.err.as_ref().is_none_or(|(fi, _)| i < *fi) {
            c.err = Some((i, e));
        }
    }
    c.shards.push(Shard { buf, records });
    c.active -= 1;
    let drained =
        job.next.load(Ordering::Relaxed) >= job.nfuncs || job.abort.load(Ordering::Relaxed);
    if c.active == 0 && drained && !c.done {
        c.done = true;
        let result = finish_shard_job(shared, job, &mut c);
        shared.cache_store(job.key, &result);
        let queued = c.started.map(|s| s - job.submitted).unwrap_or_default();
        let tx = c.tx.take().expect("shard response already sent");
        drop(c);
        shared.finish_request(
            &tx,
            ServiceResponse {
                module: result,
                timing: RequestTiming {
                    queued,
                    total: job.submitted.elapsed(),
                    cache_hit: false,
                    disk_hit: false,
                    sharded: true,
                },
            },
        );
    }
    poisoned
}

/// Merges a finished shard job into the response module (or surfaces the
/// lowest-index compile error).
fn finish_shard_job<B: ServiceBackend>(
    shared: &Shared<B>,
    job: &ShardJob<B>,
    c: &mut ShardCollect,
) -> Result<CompiledModule> {
    if let Some((_, e)) = c.err.take() {
        return Err(e);
    }
    let mut merged = CodeBuffer::new();
    shared.backend.predeclare(&job.req, &mut merged);
    check_predeclared_func_symbols(&merged, job.nfuncs)?;
    let shards = std::mem::take(&mut c.shards);
    merge_shards(&mut merged, job.nfuncs, &shards)?;
    // Tiered backends declare the tier tables inside function bodies; define
    // them after the merge like the sequential drivers do (no-op otherwise).
    merged.define_tier_tables(job.nfuncs);
    Ok(CompiledModule {
        buf: merged,
        stats: std::mem::take(&mut c.stats),
        timings: std::mem::replace(&mut c.timings, PassTimings::new()),
    })
}

/// Nearest-rank percentile of ascending-sorted latency samples (0 if empty).
fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct * sorted.len() as u64)
        .div_ceil(100)
        .clamp(1, sorted.len() as u64);
    sorted[(rank - 1) as usize]
}

// --------------------------------------------------------------------------
// Tiered execution: the profile-polling controller
// --------------------------------------------------------------------------

/// Drives profile-guided tier promotion: polls the tier-0 entry counters,
/// picks functions whose entry count crossed the threshold and promotes each
/// of them exactly once.
///
/// The controller is deliberately decoupled from how counters are read and
/// how a promotion is carried out — the host passes closures, so the same
/// controller works against emulator guest memory (the `figures --tiered`
/// scenario: read the counter table, recompile on the warm service workers
/// with the tier-1 backend, patch the call slot) and against plain arrays in
/// unit tests.
pub struct TieringController {
    threshold: u64,
    promoted: Vec<bool>,
    promotions: u64,
}

impl TieringController {
    /// A controller for `nfuncs` functions that promotes at `threshold`
    /// entries.
    pub fn new(nfuncs: usize, threshold: u64) -> TieringController {
        TieringController {
            threshold: threshold.max(1),
            promoted: vec![false; nfuncs],
            promotions: 0,
        }
    }

    /// The promotion threshold (entry count at which a function gets
    /// recompiled).
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Whether function `f` has been promoted to tier 1.
    pub fn is_promoted(&self, f: u32) -> bool {
        self.promoted.get(f as usize).copied().unwrap_or(false)
    }

    /// Total number of promotions carried out so far.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Whether every function has been promoted (polling is then a no-op).
    pub fn all_promoted(&self) -> bool {
        self.promoted.iter().all(|&p| p)
    }

    /// One poll cycle: reads the entry counter of every not-yet-promoted
    /// function and invokes `promote` for each one at or over the threshold,
    /// marking it promoted only when the closure succeeds. Returns the
    /// number of functions promoted by this poll.
    ///
    /// # Errors
    ///
    /// Stops at and propagates the first `promote` failure; already-promoted
    /// functions stay promoted, the failing one can be retried on the next
    /// poll.
    pub fn poll(
        &mut self,
        mut read_counter: impl FnMut(u32) -> u64,
        mut promote: impl FnMut(u32) -> crate::error::Result<()>,
    ) -> crate::error::Result<usize> {
        let mut n = 0;
        for f in 0..self.promoted.len() as u32 {
            if self.promoted[f as usize] || read_counter(f) < self.threshold {
                continue;
            }
            promote(f)?;
            self.promoted[f as usize] = true;
            self.promotions += 1;
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebuf::{SectionKind, SymbolBinding};
    use std::hash::{Hash, Hasher};
    use std::time::Duration;

    /// A toy backend: a "module" is a list of byte-sized functions; function
    /// `i` emits `data[i]` followed by its index.
    struct ByteBackend;

    struct ByteModule {
        data: Vec<u8>,
        /// Forced compile error for function index, for error-path tests.
        fail_at: Option<u32>,
        /// Forced panic for function index, for worker-survival tests.
        panic_at: Option<u32>,
    }

    impl ByteModule {
        fn new(data: Vec<u8>) -> Arc<ByteModule> {
            Arc::new(ByteModule {
                data,
                fail_at: None,
                panic_at: None,
            })
        }
    }

    impl ServiceBackend for ByteBackend {
        type Request = Arc<ByteModule>;
        type Worker = ();

        fn new_worker(&self) {}

        fn request_key(&self, req: &Arc<ByteModule>) -> Option<u64> {
            let mut h = Fnv1a::new();
            req.data.hash(&mut h);
            req.fail_at.hash(&mut h);
            req.panic_at.hash(&mut h);
            Some(h.finish())
        }

        fn func_count(&self, req: &Arc<ByteModule>) -> usize {
            req.data.len()
        }

        fn prepare_session(
            &self,
            _req: &Arc<ByteModule>,
            _worker: &mut (),
            _session: &mut CompileSession,
        ) {
        }

        fn predeclare(&self, req: &Arc<ByteModule>, buf: &mut CodeBuffer) {
            for i in 0..req.data.len() {
                buf.declare_symbol(&format!("f{i}"), SymbolBinding::Global, true);
            }
        }

        fn compile_func(
            &self,
            req: &Arc<ByteModule>,
            _worker: &mut (),
            _session: &mut CompileSession,
            buf: &mut CodeBuffer,
            f: u32,
            stats: &mut CompileStats,
            _timings: &mut PassTimings,
        ) -> Result<bool> {
            if req.fail_at == Some(f) {
                return Err(Error::Unsupported(format!("f{f}")));
            }
            if req.panic_at == Some(f) {
                panic!("synthetic backend panic at f{f}");
            }
            buf.emit_u8(req.data[f as usize]);
            buf.emit_u8(f as u8);
            stats.funcs += 1;
            Ok(true)
        }

        fn compile_module(
            &self,
            req: &Arc<ByteModule>,
            worker: &mut (),
            session: &mut CompileSession,
        ) -> Result<CompiledModule> {
            let mut buf = CodeBuffer::new();
            self.predeclare(req, &mut buf);
            let mut stats = CompileStats::default();
            let mut timings = PassTimings::new();
            for f in 0..req.data.len() as u32 {
                let start = buf.text_offset();
                self.compile_func(req, worker, session, &mut buf, f, &mut stats, &mut timings)?;
                buf.define_symbol(
                    crate::codebuf::SymbolId(f),
                    SectionKind::Text,
                    start,
                    buf.text_offset() - start,
                );
            }
            Ok(CompiledModule {
                buf,
                stats,
                timings,
            })
        }
    }

    fn service(
        workers: usize,
        shard_threshold: usize,
        cache: usize,
    ) -> CompileService<ByteBackend> {
        CompileService::new(
            ByteBackend,
            ServiceConfig {
                workers,
                shard_threshold,
                cache_capacity: cache,
                disk_cache: None,
            },
        )
    }

    /// A fresh, empty temp directory unique to `tag` (tests run in
    /// parallel within one process).
    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tpde-service-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn disk_service(
        workers: usize,
        cache: usize,
        dir: &std::path::Path,
    ) -> CompileService<ByteBackend> {
        CompileService::new(
            ByteBackend,
            ServiceConfig {
                workers,
                shard_threshold: 16,
                cache_capacity: cache,
                disk_cache: Some(crate::diskcache::DiskCacheConfig::new(dir)),
            },
        )
    }

    #[test]
    fn fnv_is_deterministic_and_spreads() {
        let mut a = Fnv1a::new();
        1234u64.hash(&mut a);
        let mut b = Fnv1a::new();
        1234u64.hash(&mut b);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv1a::new();
        1235u64.hash(&mut c);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn batched_and_sharded_agree() {
        let module = ByteModule::new((0..40).collect());
        // Batched: threshold above the module size, one worker.
        let batched = service(1, 100, 0).compile(Arc::clone(&module));
        let batched = batched.module.unwrap();
        // Sharded: threshold below, several workers.
        let svc = service(4, 8, 0);
        let response = svc.compile(Arc::clone(&module));
        assert!(response.timing.sharded);
        let sharded = response.module.unwrap();
        crate::codebuf::assert_identical(&batched.buf, &sharded.buf, "service shard vs batch");
        assert_eq!(batched.stats.funcs, sharded.stats.funcs);
    }

    #[test]
    fn pipelined_requests_all_resolve() {
        let svc = service(3, 16, 0);
        let modules: Vec<_> = (0..12u8)
            .map(|i| ByteModule::new(vec![i; (i as usize % 5) * 10 + 1]))
            .collect();
        let tickets: Vec<_> = modules.iter().map(|m| svc.submit(Arc::clone(m))).collect();
        for (m, t) in modules.iter().zip(tickets) {
            let got = t.wait().module.unwrap();
            let want = svc.compile(Arc::clone(m)); // cache may answer; still identical
            crate::codebuf::assert_identical(
                &want.module.unwrap().buf,
                &got.buf,
                "pipelined response",
            );
        }
        let stats = svc.stats();
        assert_eq!(stats.submitted, 24);
        assert_eq!(stats.completed, 24);
    }

    #[test]
    fn cache_hits_are_identical_and_counted() {
        let svc = service(2, 100, 8);
        let module = ByteModule::new(vec![7; 10]);
        let cold = svc.compile(Arc::clone(&module));
        assert!(!cold.timing.cache_hit);
        let warm = svc.compile(Arc::clone(&module));
        assert!(warm.timing.cache_hit);
        crate::codebuf::assert_identical(
            &cold.module.unwrap().buf,
            &warm.module.unwrap().buf,
            "cache hit",
        );
        // A structurally identical but distinct allocation also hits.
        let clone = ByteModule::new(vec![7; 10]);
        assert!(svc.compile(clone).timing.cache_hit);
        let stats = svc.stats();
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.cache_misses, 1);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let svc = service(1, 100, 2);
        let a = ByteModule::new(vec![1]);
        let b = ByteModule::new(vec![2]);
        let c = ByteModule::new(vec![3]);
        svc.compile(Arc::clone(&a));
        svc.compile(Arc::clone(&b));
        svc.compile(Arc::clone(&a)); // refresh a; b is now LRU
        svc.compile(Arc::clone(&c)); // evicts b
        assert!(svc.compile(Arc::clone(&a)).timing.cache_hit);
        assert!(svc.compile(Arc::clone(&c)).timing.cache_hit);
        assert!(!svc.compile(Arc::clone(&b)).timing.cache_hit);
        assert!(svc.stats().evictions >= 1);
    }

    #[test]
    fn disk_cache_survives_service_restart() {
        let dir = temp_dir("restart");
        let small = ByteModule::new(vec![3; 8]);
        let large = ByteModule::new((0..40).collect()); // sharded at threshold 16
        let (small_ref, large_ref) = {
            let svc = disk_service(2, 8, &dir);
            let a = svc.compile(Arc::clone(&small)).module.unwrap();
            let b = svc.compile(Arc::clone(&large)).module.unwrap();
            let stats = svc.stats();
            assert_eq!(stats.disk_hits, 0);
            assert_eq!(stats.disk_misses, 2);
            assert_eq!(stats.disk_stores, 2);
            (a, b)
        }; // drop = simulated process exit; artifacts persist on disk
        let svc = disk_service(2, 8, &dir);
        for (module, reference) in [(&small, &small_ref), (&large, &large_ref)] {
            let r = svc.compile(Arc::clone(module));
            assert!(r.timing.disk_hit, "restart must answer from disk");
            assert!(!r.timing.cache_hit && !r.timing.sharded);
            let got = r.module.unwrap();
            got.validate().unwrap();
            crate::codebuf::assert_identical(&reference.buf, &got.buf, "disk restart");
            assert_eq!(reference.stats.funcs, got.stats.funcs);
        }
        let stats = svc.stats();
        assert_eq!(stats.disk_hits, 2);
        assert_eq!(stats.batched + stats.sharded, 0, "no compile path ran");
        assert!(stats.disk_load_p50 <= stats.disk_load_p99);
        assert!(stats.disk_load_p99 > Duration::ZERO);
        assert!((stats.disk_hit_rate() - 1.0).abs() < 1e-9);
        drop(svc);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_hit_promotes_into_memory_cache() {
        let dir = temp_dir("promote");
        let module = ByteModule::new(vec![9; 6]);
        drop(disk_service(1, 8, &dir).compile(Arc::clone(&module)));
        let svc = disk_service(1, 8, &dir);
        assert!(svc.compile(Arc::clone(&module)).timing.disk_hit);
        // The disk hit warmed the in-memory cache; the repeat stays in RAM.
        let again = svc.compile(Arc::clone(&module));
        assert!(again.timing.cache_hit && !again.timing.disk_hit);
        assert_eq!(svc.stats().disk_hits, 1);
        drop(svc);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_cache_two_live_services_share_the_store() {
        let dir = temp_dir("shared");
        let module = ByteModule::new(vec![5; 10]);
        let writer = disk_service(1, 8, &dir);
        let reader = disk_service(1, 8, &dir);
        assert!(!writer.compile(Arc::clone(&module)).timing.disk_hit);
        // The second service instance (stands in for a second process —
        // same directory, nothing shared in memory) hits the artifact.
        let r = reader.compile(Arc::clone(&module));
        assert!(r.timing.disk_hit);
        r.module.unwrap().validate().unwrap();
        drop(reader);
        drop(writer);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_propagate_and_workers_survive() {
        let svc = service(2, 4, 0);
        let bad = Arc::new(ByteModule {
            data: (0..16).collect(),
            fail_at: Some(9),
            panic_at: None,
        });
        let r = svc.compile(Arc::clone(&bad));
        assert!(matches!(r.module.unwrap_err(), Error::Unsupported(_)));
        // The pool keeps serving after a failed module.
        let good = ByteModule::new((0..16).collect());
        assert!(svc.compile(good).module.is_ok());
    }

    #[test]
    fn worker_panics_are_contained() {
        // Batched and sharded paths: a panicking backend yields an error
        // response, and the same pool keeps serving afterwards.
        for shard_threshold in [100, 4] {
            let svc = service(2, shard_threshold, 0);
            let bad = Arc::new(ByteModule {
                data: (0..16).collect(),
                fail_at: None,
                panic_at: Some(7),
            });
            let r = svc.compile(Arc::clone(&bad));
            let err = format!("{}", r.module.unwrap_err());
            assert!(err.contains("panicked"), "unexpected error: {err}");
            let good = ByteModule::new((0..16).collect());
            assert!(svc.compile(good).module.is_ok(), "pool died after panic");
        }
    }

    #[test]
    fn drop_drains_in_flight_requests() {
        let svc = service(2, 8, 0);
        let modules: Vec<_> = (0..8u8).map(|i| ByteModule::new(vec![i; 30])).collect();
        let tickets: Vec<_> = modules.iter().map(|m| svc.submit(Arc::clone(m))).collect();
        drop(svc); // must drain, not abandon
        for t in tickets {
            assert!(t.wait().module.is_ok(), "request dropped at teardown");
        }
    }

    #[test]
    fn latency_percentiles_are_populated() {
        let svc = service(2, 8, 0);
        for i in 0..8u8 {
            svc.compile(ByteModule::new(vec![i; 4]));
        }
        let stats = svc.stats();
        assert!(stats.p50_latency <= stats.p99_latency);
        assert!(stats.p99_latency > Duration::ZERO);
        assert!(stats.p99_latency <= stats.total_latency);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[7], 99), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
        assert_eq!(percentile(&[10, 20, 30, 40], 50), 20);
        assert_eq!(percentile(&[10, 20, 30, 40], 99), 40);
    }

    #[test]
    fn tiering_controller_promotes_over_threshold_once() {
        let mut c = TieringController::new(3, 5);
        assert_eq!(c.threshold(), 5);
        let counters = [4u64, 5, 6];
        let mut promoted = Vec::new();
        let n = c
            .poll(
                |f| counters[f as usize],
                |f| {
                    promoted.push(f);
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(promoted, vec![1, 2]);
        assert!(!c.is_promoted(0));
        assert!(c.is_promoted(1) && c.is_promoted(2));
        assert!(!c.all_promoted());
        // A second poll with unchanged counters promotes nothing new.
        let n = c
            .poll(|f| counters[f as usize], |_| panic!("re-promotion"))
            .unwrap();
        assert_eq!(n, 0);
        // Once every counter crosses the threshold the controller converges.
        let n = c.poll(|_| 100, |_| Ok(())).unwrap();
        assert_eq!(n, 1);
        assert!(c.all_promoted());
        assert_eq!(c.promotions(), 3);
    }

    #[test]
    fn tiering_controller_retries_failed_promotions() {
        let mut c = TieringController::new(2, 1);
        let err = c.poll(
            |_| 1,
            |f| match f {
                0 => Ok(()),
                _ => Err(Error::Unsupported("backend busy".into())),
            },
        );
        assert!(err.is_err());
        assert!(c.is_promoted(0), "successful promotion sticks");
        assert!(!c.is_promoted(1), "failed promotion stays pending");
        // The failed function is retried on the next poll.
        let n = c.poll(|_| 1, |_| Ok(())).unwrap();
        assert_eq!(n, 1);
        assert!(c.all_promoted());
    }

    #[test]
    fn tiering_controller_zero_threshold_is_clamped() {
        let mut c = TieringController::new(1, 0);
        assert_eq!(c.threshold(), 1);
        // A never-entered function is not promoted even at threshold 0.
        assert_eq!(c.poll(|_| 0, |_| panic!("cold promotion")).unwrap(), 0);
        assert_eq!(c.poll(|_| 1, |_| Ok(())).unwrap(), 1);
    }
}
