//! In-memory (JIT) mapping of a compiled module.
//!
//! For JIT use the framework does not go through an object file: the
//! sections of the [`CodeBuffer`] are laid out at virtual addresses,
//! relocations are applied in place, and the result is a [`JitImage`] with a
//! symbol → address map. In this reproduction the image is executed by the
//! `tpde-x64emu` emulator rather than being mapped executable into the host
//! process, which keeps the test suite portable and deterministic.
//!
//! Layout and relocation application depend only on the buffer's section
//! bytes, symbol order and relocation list, so a buffer produced by the
//! parallel pipeline's deterministic merge ([`crate::parallel`]) maps to an
//! image identical to the single-threaded one.

use crate::codebuf::{
    CodeBuffer, Reloc, RelocKind, SectionKind, SymbolId, TIER_COUNTERS_SYM, TIER_SLOTS_SYM,
};
use crate::error::{Error, Result};
use std::cell::Cell;
use std::collections::HashMap;

/// Read-only view of a compiled module as the in-memory linker consumes it:
/// section bytes/sizes, the symbol table and the relocation list.
///
/// [`link_in_memory`] is generic over this trait so the same linking code
/// serves both a freshly compiled [`CodeBuffer`] and an mmap-ed on-disk
/// artifact ([`crate::diskcache::Artifact`]) — the latter without copying
/// section bytes into an intermediate buffer first.
pub trait LinkView {
    /// Size of a section in bytes (`.bss` reports its reserved size).
    fn section_size(&self, kind: SectionKind) -> u64;
    /// Section contents (empty for `.bss`).
    fn section_data(&self, kind: SectionKind) -> &[u8];
    /// Number of symbols.
    fn symbol_count(&self) -> u32;
    /// Name of symbol `i` (`i < symbol_count()`).
    fn symbol_name(&self, i: u32) -> &str;
    /// `(section, offset)` of symbol `i` if defined, `None` if external.
    fn symbol_def(&self, i: u32) -> Option<(SectionKind, u64)>;
    /// Number of relocation records.
    fn reloc_count(&self) -> usize;
    /// Relocation record `i` (`i < reloc_count()`).
    fn reloc(&self, i: usize) -> Reloc;
}

impl LinkView for CodeBuffer {
    fn section_size(&self, kind: SectionKind) -> u64 {
        CodeBuffer::section_size(self, kind)
    }

    fn section_data(&self, kind: SectionKind) -> &[u8] {
        CodeBuffer::section_data(self, kind)
    }

    fn symbol_count(&self) -> u32 {
        self.symbols().len() as u32
    }

    fn symbol_name(&self, i: u32) -> &str {
        CodeBuffer::symbol_name(self, SymbolId(i))
    }

    fn symbol_def(&self, i: u32) -> Option<(SectionKind, u64)> {
        let sym = self.symbol(SymbolId(i));
        sym.section.map(|kind| (kind, sym.offset))
    }

    fn reloc_count(&self) -> usize {
        self.relocs().len()
    }

    fn reloc(&self, i: usize) -> Reloc {
        self.relocs()[i].clone()
    }
}

/// Base virtual address at which external (unresolved) symbols are placed.
/// Calls to these addresses are treated as host call-outs by the emulator.
/// The value is kept within ±2 GiB of the usual code base addresses so that
/// x86-64 `call rel32` instructions can reach it.
pub const EXTERNAL_CALLOUT_BASE: u64 = 0x7000_0000;

/// Exclusive upper bound of the call-out address region.
pub const EXTERNAL_CALLOUT_END: u64 = 0x7100_0000;

/// A module linked for in-memory execution.
#[derive(Debug, Clone)]
pub struct JitImage {
    /// Sections with their chosen virtual address and (relocated) contents.
    /// `.bss` appears with zero-filled contents.
    pub sections: Vec<(SectionKind, u64, Vec<u8>)>,
    /// Addresses of all defined symbols.
    pub symbols: HashMap<String, u64>,
    /// Synthetic call-out addresses assigned to unresolved external symbols.
    pub externals: HashMap<String, u64>,
    /// Cached [`JitImage::fingerprint`] value, invalidated by the call-slot
    /// patch API (the only mutation the image supports after linking).
    fingerprint_cache: Cell<Option<u64>>,
}

impl JitImage {
    /// Address of a defined or external symbol, if present.
    pub fn symbol_addr(&self, name: &str) -> Option<u64> {
        self.symbols
            .get(name)
            .or_else(|| self.externals.get(name))
            .copied()
    }

    /// Virtual address and size of the text section.
    pub fn text_range(&self) -> (u64, u64) {
        for (kind, addr, data) in &self.sections {
            if *kind == SectionKind::Text {
                return (*addr, data.len() as u64);
            }
        }
        (0, 0)
    }

    /// Total number of bytes of machine code (`.text` size); the code-size
    /// metric used for Figure 7.
    pub fn text_size(&self) -> u64 {
        self.text_range().1
    }

    /// Deterministic content fingerprint of the image: section kinds,
    /// addresses and (relocated) bytes, plus the symbol and call-out maps in
    /// name order.
    ///
    /// Because in-memory linking depends only on the buffer's bytes, symbol
    /// order and relocations, two byte-identical [`CodeBuffer`]s — e.g. a
    /// compile-service cache hit and a fresh compile — map to images with
    /// equal fingerprints; the service tests and the `figures --service`
    /// scenario use this to compare whole images cheaply.
    /// The value is cached after the first computation; mutations through
    /// [`JitImage::patch_call_slot`] invalidate the cache, so a fingerprint
    /// can never go stale after call-site patching.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        if let Some(v) = self.fingerprint_cache.get() {
            return v;
        }
        let mut h = crate::service::Fnv1a::new();
        for (kind, addr, data) in &self.sections {
            (*kind as u8).hash(&mut h);
            addr.hash(&mut h);
            data.hash(&mut h);
        }
        for map in [&self.symbols, &self.externals] {
            let mut entries: Vec<(&str, u64)> = map.iter().map(|(n, a)| (n.as_str(), *a)).collect();
            entries.sort_unstable();
            entries.hash(&mut h);
        }
        let v = h.finish();
        self.fingerprint_cache.set(Some(v));
        v
    }

    // ---- tiered execution: the call-slot patch API --------------------------

    /// Number of functions covered by the tier tables, if the module was
    /// compiled with tiering enabled. Derived from the layout contract of
    /// [`crate::codebuf::CodeBuffer::define_tier_tables`]: the slot table is
    /// placed directly after the counter table, so the distance between the
    /// two symbols is the table size.
    pub fn tier_func_count(&self) -> Option<usize> {
        let counters = *self.symbols.get(TIER_COUNTERS_SYM)?;
        let slots = *self.symbols.get(TIER_SLOTS_SYM)?;
        if slots <= counters {
            return None;
        }
        Some(((slots - counters) / 8) as usize)
    }

    /// Address of the tier-0 entry counter for function index `f`.
    pub fn tier_counter_addr(&self, f: u32) -> Option<u64> {
        if (f as usize) < self.tier_func_count()? {
            Some(self.symbols[TIER_COUNTERS_SYM] + 8 * f as u64)
        } else {
            None
        }
    }

    /// Address of the patchable call slot for function index `f`.
    pub fn call_slot_addr(&self, f: u32) -> Option<u64> {
        if (f as usize) < self.tier_func_count()? {
            Some(self.symbols[TIER_SLOTS_SYM] + 8 * f as u64)
        } else {
            None
        }
    }

    /// Current target address stored in function `f`'s call slot.
    pub fn call_slot_target(&self, f: u32) -> Option<u64> {
        let addr = self.call_slot_addr(f)?;
        let (sec_base, data) = self.section_containing(addr, 8)?;
        let off = (addr - sec_base) as usize;
        Some(u64::from_le_bytes(data[off..off + 8].try_into().unwrap()))
    }

    /// Atomically redirects every slot-routed caller of function `f` to
    /// `target` by storing the new address into the function's call slot (one
    /// aligned 8-byte store — the whole patch, per the call-stub contract in
    /// [`crate::codebuf`]). Idempotent: returns `Ok(false)` without writing
    /// when the slot already holds `target`. Invalidates the cached
    /// [`JitImage::fingerprint`].
    ///
    /// # Errors
    ///
    /// Returns an error if the image has no tier tables or `f` is out of
    /// range.
    pub fn patch_call_slot(&mut self, f: u32, target: u64) -> Result<bool> {
        let addr = self
            .call_slot_addr(f)
            .ok_or_else(|| Error::Emit(format!("no patchable call slot for function {f}")))?;
        debug_assert_eq!(addr % 8, 0, "call slots are 8-byte aligned");
        let (sec_base, data) = self
            .sections
            .iter_mut()
            .find(|(_, base, data)| *base <= addr && addr + 8 <= *base + data.len() as u64)
            .map(|(_, base, data)| (*base, data))
            .ok_or_else(|| Error::Emit(format!("call slot {f} outside image sections")))?;
        let off = (addr - sec_base) as usize;
        if u64::from_le_bytes(data[off..off + 8].try_into().unwrap()) == target {
            return Ok(false);
        }
        data[off..off + 8].copy_from_slice(&target.to_le_bytes());
        self.fingerprint_cache.set(None);
        Ok(true)
    }

    fn section_containing(&self, addr: u64, len: u64) -> Option<(u64, &[u8])> {
        self.sections
            .iter()
            .find(|(_, base, data)| *base <= addr && addr + len <= *base + data.len() as u64)
            .map(|(_, base, data)| (*base, data.as_slice()))
    }
}

fn align_up(v: u64, align: u64) -> u64 {
    (v + align - 1) & !(align - 1)
}

/// Lays out all sections starting at `base`, applies relocations and returns
/// the linked image.
///
/// Accepts any [`LinkView`] — a [`CodeBuffer`] or a zero-copy view of an
/// mmap-ed disk artifact; because linking reads only section bytes, symbol
/// order and relocations, both inputs produce identical images for
/// byte-identical modules.
///
/// `resolve` is consulted for undefined symbols; symbols it does not resolve
/// are assigned synthetic call-out addresses (see [`EXTERNAL_CALLOUT_BASE`])
/// so that generated code can still be executed in the emulator, which
/// intercepts calls to that range.
///
/// # Errors
///
/// Returns an error if a relocation does not fit its field.
pub fn link_in_memory<V: LinkView + ?Sized>(
    buf: &V,
    base: u64,
    mut resolve: impl FnMut(&str) -> Option<u64>,
) -> Result<JitImage> {
    // Assign section addresses.
    let mut addr = align_up(base, 0x1000);
    let mut sec_addr: HashMap<SectionKind, u64> = HashMap::new();
    let mut sections = Vec::new();
    for kind in SectionKind::ALL {
        let size = buf.section_size(kind);
        addr = align_up(addr, 64);
        sec_addr.insert(kind, addr);
        let data = if kind == SectionKind::Bss {
            vec![0u8; size as usize]
        } else {
            buf.section_data(kind).to_vec()
        };
        sections.push((kind, addr, data));
        addr += size.max(1);
    }

    // Resolve symbols.
    let mut symbols = HashMap::new();
    let mut externals = HashMap::new();
    let mut sym_addr = vec![0u64; buf.symbol_count() as usize];
    let mut next_external = EXTERNAL_CALLOUT_BASE;
    for i in 0..buf.symbol_count() {
        let name = buf.symbol_name(i);
        let a = match buf.symbol_def(i) {
            Some((kind, offset)) => {
                let a = sec_addr[&kind] + offset;
                symbols.insert(name.to_string(), a);
                a
            }
            None => {
                if let Some(a) = resolve(name) {
                    externals.insert(name.to_string(), a);
                    a
                } else {
                    let a = next_external;
                    next_external += 16;
                    externals.insert(name.to_string(), a);
                    a
                }
            }
        };
        sym_addr[i as usize] = a;
    }

    // Apply relocations.
    for i in 0..buf.reloc_count() {
        let reloc = buf.reloc(i);
        let target = sym_addr[reloc.symbol.0 as usize] as i64 + reloc.addend;
        let (_, sec_base, data) = sections
            .iter_mut()
            .find(|(k, _, _)| *k == reloc.section)
            .expect("relocation against missing section");
        let place = *sec_base + reloc.offset;
        let off = reloc.offset as usize;
        match reloc.kind {
            RelocKind::Abs64 => {
                data[off..off + 8].copy_from_slice(&(target as u64).to_le_bytes());
            }
            RelocKind::Pc32 => {
                let disp = target - place as i64;
                let disp32 = i32::try_from(disp)
                    .map_err(|_| Error::Emit(format!("pc32 displacement {disp} overflows")))?;
                data[off..off + 4].copy_from_slice(&disp32.to_le_bytes());
            }
            RelocKind::Call26 => {
                let disp = target - place as i64;
                let words = disp >> 2;
                if !(-(1 << 25)..(1 << 25)).contains(&words) {
                    return Err(Error::Emit(format!("call26 displacement {disp} overflows")));
                }
                let mut insn = u32::from_le_bytes(data[off..off + 4].try_into().unwrap());
                insn |= (words as u32) & 0x03ff_ffff;
                data[off..off + 4].copy_from_slice(&insn.to_le_bytes());
            }
            RelocKind::AdrpPage => {
                let page_delta = ((target as u64 & !0xfff) as i64) - ((place & !0xfff) as i64);
                let pages = page_delta >> 12;
                let imm = pages as u32;
                let mut insn = u32::from_le_bytes(data[off..off + 4].try_into().unwrap());
                insn |= ((imm & 0x3) << 29) | (((imm >> 2) & 0x7ffff) << 5);
                data[off..off + 4].copy_from_slice(&insn.to_le_bytes());
            }
            RelocKind::AddLo12 => {
                let lo = (target as u64 & 0xfff) as u32;
                let mut insn = u32::from_le_bytes(data[off..off + 4].try_into().unwrap());
                insn |= lo << 10;
                data[off..off + 4].copy_from_slice(&insn.to_le_bytes());
            }
        }
    }

    Ok(JitImage {
        sections,
        symbols,
        externals,
        fingerprint_cache: Cell::new(None),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebuf::{Reloc, SymbolBinding};

    #[test]
    fn layout_and_symbol_resolution() {
        let mut buf = CodeBuffer::new();
        let f = buf.declare_symbol("f", SymbolBinding::Global, true);
        buf.emit_u8(0xc3);
        buf.define_symbol(f, SectionKind::Text, 0, 1);
        let g = buf.declare_symbol("g_data", SymbolBinding::Global, false);
        let off = buf.append(SectionKind::Data, &[0u8; 8]);
        buf.define_symbol(g, SectionKind::Data, off, 8);
        let image = link_in_memory(&buf, 0x10000, |_| None).unwrap();
        let fa = image.symbol_addr("f").unwrap();
        let ga = image.symbol_addr("g_data").unwrap();
        assert!(fa >= 0x10000);
        assert_ne!(fa, ga);
        assert_eq!(image.text_size(), 1);
    }

    #[test]
    fn abs64_and_pc32_relocations_apply() {
        let mut buf = CodeBuffer::new();
        let callee = buf.declare_symbol("callee", SymbolBinding::Global, true);
        // call rel32 at text offset 1
        buf.emit_u8(0xe8);
        let call_field = buf.text_offset();
        buf.emit_u32(0);
        buf.add_reloc(Reloc {
            section: SectionKind::Text,
            offset: call_field,
            symbol: callee,
            kind: RelocKind::Pc32,
            addend: -4,
        });
        // an 8-byte pointer to callee in .data
        let doff = buf.append(SectionKind::Data, &[0u8; 8]);
        buf.add_reloc(Reloc {
            section: SectionKind::Data,
            offset: doff,
            symbol: callee,
            kind: RelocKind::Abs64,
            addend: 0,
        });
        let image = link_in_memory(&buf, 0x40_0000, |name| {
            (name == "callee").then_some(0x50_0000)
        })
        .unwrap();
        // check data pointer
        let (_, _, data) = image
            .sections
            .iter()
            .find(|(k, _, _)| *k == SectionKind::Data)
            .unwrap();
        assert_eq!(
            u64::from_le_bytes(data[0..8].try_into().unwrap()),
            0x50_0000
        );
        // check call displacement: target - (place) - 4
        let (_, text_base, text) = image
            .sections
            .iter()
            .find(|(k, _, _)| *k == SectionKind::Text)
            .unwrap();
        let disp = i32::from_le_bytes(text[1..5].try_into().unwrap()) as i64;
        assert_eq!(text_base + 1 + disp as u64 + 4, 0x50_0000);
    }

    #[test]
    fn unresolved_externals_get_callout_addresses() {
        let mut buf = CodeBuffer::new();
        buf.declare_symbol("memset", SymbolBinding::Global, true);
        buf.declare_symbol("memcpy", SymbolBinding::Global, true);
        buf.emit_u8(0xc3);
        let image = link_in_memory(&buf, 0x10000, |_| None).unwrap();
        let a = image.symbol_addr("memset").unwrap();
        let b = image.symbol_addr("memcpy").unwrap();
        assert!(a >= EXTERNAL_CALLOUT_BASE);
        assert!(b >= EXTERNAL_CALLOUT_BASE);
        assert_ne!(a, b);
    }
}
