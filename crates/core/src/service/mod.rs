//! Persistent compile service: pooled multi-request pipelining with a
//! content-addressed module cache.
//!
//! The one-shot entry points ([`crate::codegen::CodeGen::compile_module`],
//! [`crate::parallel::ParallelDriver`]) pay their setup cost — thread spawn,
//! session warm-up, adapter indexing — on every call. JIT-style workloads
//! instead see a *stream* of mostly small modules arriving continuously, so
//! a [`CompileService`] keeps everything warm across requests:
//!
//! * **Persistent workers.** `workers` threads are spawned once at
//!   construction; each owns a [`CompileSession`] and a backend-defined
//!   warm state ([`ServiceBackend::Worker`], e.g. pre-indexed adapter
//!   tables and an instruction compiler) that survive from request to
//!   request, so the steady-state compile loop stays allocation-free.
//! * **Pipelining.** Requests are submitted without blocking and answered
//!   through a [`Ticket`]. Small modules are batched whole onto one worker
//!   (different requests compile concurrently on different workers); large
//!   modules (≥ [`ServiceConfig::shard_threshold`] functions) are sharded
//!   *across* the pool using the same per-function units and deterministic
//!   merge as [`crate::parallel::compile_sharded`].
//! * **Module cache.** Responses of cacheable requests are stored under a
//!   content hash of the request ([`ServiceBackend::request_key`]); a
//!   repeated module skips compilation entirely and is answered at
//!   submission with a byte-identical copy of the cached buffer. The cache
//!   is LRU-bounded by [`ServiceConfig::cache_capacity`].
//! * **Disk tier.** With [`ServiceConfig::disk_cache`] set, in-memory
//!   misses consult a persistent on-disk artifact store
//!   ([`crate::diskcache::DiskCache`]) before compiling: a hit is answered
//!   at submission (like a memory hit) and promoted into the in-memory
//!   cache; compiled responses are written back to disk by the workers, off
//!   the submit path. The store survives process restarts and is shared by
//!   concurrent service processes, so the lookup order is memory LRU → disk
//!   → compile.
//!
//! # Determinism contract
//!
//! For every request, the response buffer is **byte-identical to the
//! one-shot sequential compiler** for that backend: the batched path runs
//! the sequential driver itself, the sharded path inherits the
//! [`crate::parallel`] merge contract, and cache hits replay a buffer that
//! was produced by one of the two. Pinned by `crates/llvm/tests/service.rs`
//! for every workload kind × worker count × backend.
//!
//! # Async front-end
//!
//! Submission is asynchronous and lock-free on the hot path: a request is
//! admitted (cache lookup, verification, coalescing, shedding), pushed
//! into a bounded lock-free [`ring::Ring`], and exactly as many workers
//! as the job needs are woken through per-worker [`front::Parker`] state
//! machines — no mutex, no condvar, no thundering herd. Workers drain the
//! ring into a weighted deficit-round-robin scheduler
//! ([`fairness::DrrQueue`]) whose mutex is contended only
//! worker-vs-worker. Requests carry a [`ClientId`]; within a priority
//! lane the scheduler round-robins across clients (weighted), and when a
//! queue capacity is configured a client's backlog share is bounded by
//! `capacity / active_clients`, so one greedy client is shed while others
//! still admit. See [`front`] for the full picture (and the ticket
//! completion-state machine) and [`ring`] for the ingress queue.
//!
//! A running *bulk* sharded compile is additionally **preemptible**: an
//! interactive arrival sets the job's `preempt` flag, participants pause
//! at the next function boundary (the existing deadline-probe point),
//! bank their partial shards and requeue the job, freeing the pool for
//! the interactive request; the job later resumes where it left off and
//! merges byte-identically. [`WakeupMode::Condvar`] keeps the legacy
//! mutex+condvar ingress selectable as the measured baseline.
//!
//! # Resilience front-end
//!
//! Under overload or partial failure the service degrades *explicitly*,
//! never silently — every ticket resolves, every response is either byte
//! identical to the one-shot compiler or an explicit error:
//!
//! * **Admission control.** [`ServiceConfig::queue_capacity`] bounds the
//!   number of admitted-but-unstarted requests; the excess is shed at
//!   submission with [`Error::Rejected`] carrying the observed queue depth.
//!   [`ServiceConfig::bulk_queue_capacity`] gives [`Priority::Bulk`]
//!   traffic a tighter bound so bulk is shed first, and per-client
//!   fair-share bounds (see above) shed a flooding client first.
//! * **Priorities and deadlines.** A [`Request`] carries a priority and an
//!   optional deadline: [`Priority::Interactive`] requests are dequeued
//!   before [`Priority::Bulk`] ones, and a per-request deadline is enforced
//!   at dequeue (an expired request is answered with
//!   [`Error::DeadlineExceeded`] without paying for a compile) and checked
//!   again before and during expensive shard work.
//! * **Coalescing.** While a cacheable request is queued or compiling, an
//!   identical submission (same [`ServiceBackend::request_key`]) attaches
//!   to it instead of compiling twice; the result is fanned out to every
//!   waiter, closing the thundering-herd window the memory/disk caches
//!   leave open.
//! * **Watchdog.** With [`ServiceConfig::hang_timeout`] set, a monitor
//!   thread watches per-worker heartbeats (stamped at job start and at
//!   every shard function boundary). A worker stuck longer than the
//!   timeout is condemned: its ticket is poisoned with [`Error::Timeout`],
//!   and its slot gets a fresh thread with fresh warm state immediately —
//!   the stuck thread exits on its own when (if) the backend returns.
//!
//! The degradation paths are exercised deterministically by the
//! [`crate::faultpoint`] injection layer and the `figures --chaos`
//! scenario.
//!
//! # Shutdown
//!
//! Dropping the service *drains* the queue: no new requests are accepted,
//! but every submitted request — queued or in flight — is compiled and its
//! ticket answered before the worker threads exit.

pub mod fairness;
pub mod front;
pub mod ring;

pub use fairness::ClientId;
pub use front::{Request, TicketRef, WakeupMode};

use crate::codebuf::CodeBuffer;
use crate::codegen::{CompileSession, CompileStats, CompiledModule};
use crate::diskcache::{DiskCache, DiskCacheConfig};
use crate::error::{Error, Result};
use crate::faultpoint;
use crate::parallel::{check_predeclared_func_symbols, merge_shards, Shard};
use crate::timing::{ClientStats, PassTimings, RequestTiming, Reservoir, ServiceStats};
use fairness::ClientTable;
use front::{Dispatcher, Submission};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poison-tolerant lock: a panic on another thread must not cascade into
/// every thread that later touches the same service state — the panic
/// itself is already contained and reported through the ticket.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Deterministic 64-bit FNV-1a hasher, usable with `#[derive(Hash)]` types.
///
/// Unlike [`std::collections::hash_map::RandomState`], the result is stable
/// across processes and runs, which is what a content-addressed module
/// cache (and any on-disk artifact keyed by it) needs.
#[derive(Clone, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Creates a hasher with the standard FNV-1a offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

impl std::hash::Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Configuration of a [`CompileService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Number of persistent worker threads (at least 1).
    pub workers: usize,
    /// Modules with at least this many functions are sharded across the
    /// pool; smaller ones are batched whole onto one worker. Sharding also
    /// requires more than one worker.
    pub shard_threshold: usize,
    /// Maximum number of cached modules; 0 disables the cache.
    pub cache_capacity: usize,
    /// Persistent on-disk artifact store consulted between the in-memory
    /// cache and a compile; `None` (the default) disables the disk tier.
    /// If the store cannot be opened the service logs to stderr and runs
    /// without it rather than failing construction.
    pub disk_cache: Option<DiskCacheConfig>,
    /// Admission bound: maximum number of admitted-but-unstarted requests.
    /// A submission over the bound is shed immediately with
    /// [`Error::Rejected`]; 0 (the default) admits everything. Cache hits
    /// and coalesced submissions bypass admission — they never occupy a
    /// worker.
    pub queue_capacity: usize,
    /// Tighter admission bound applied to [`Priority::Bulk`] submissions,
    /// so bulk traffic is shed before interactive traffic suffers;
    /// 0 (the default) falls back to [`ServiceConfig::queue_capacity`].
    pub bulk_queue_capacity: usize,
    /// Hang threshold of the worker watchdog: a worker whose heartbeat is
    /// older than this is condemned, its ticket poisoned with
    /// [`Error::Timeout`] and its slot respawned with fresh warm state.
    /// `None` (the default) disables the watchdog. Heartbeats are stamped
    /// at job start and at shard function boundaries, so a *single-module*
    /// compile longer than the timeout is indistinguishable from a hang —
    /// pick a bound well above the largest expected module.
    pub hang_timeout: Option<Duration>,
    /// How submissions reach the worker pool: the lock-free ring with
    /// parker wakeups ([`WakeupMode::Ring`], the default) or the legacy
    /// mutex+condvar path kept as a measured baseline.
    pub wakeup: WakeupMode,
    /// Slot count of the submission ring (rounded up to a power of two);
    /// 0 (the default) picks 1024. A full ring is a latency event, not an
    /// admission event — the push spills to the scheduler mutex, counted
    /// in [`ServiceStats::ring_fallbacks`].
    pub ring_capacity: usize,
}

impl ServiceConfig {
    /// A config with `workers` threads and the default placement/cache
    /// settings.
    pub fn with_workers(workers: usize) -> ServiceConfig {
        ServiceConfig {
            workers,
            ..ServiceConfig::default()
        }
    }
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            shard_threshold: 64,
            cache_capacity: 128,
            disk_cache: None,
            queue_capacity: 0,
            bulk_queue_capacity: 0,
            hang_timeout: None,
            wakeup: WakeupMode::default(),
            ring_capacity: 0,
        }
    }
}

/// Scheduling class of a request (see [`SubmitOptions`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive JIT traffic: dequeued before any bulk work.
    #[default]
    Interactive,
    /// Throughput traffic (warm-up sweeps, tier promotions, prefetching):
    /// dequeued only when no interactive work is waiting and shed first
    /// under load.
    Bulk,
}

/// Per-request submission options of the deprecated
/// [`CompileService::submit_with`]/[`CompileService::compile_with`] shims.
/// New code builds a [`Request`] instead, which carries the same
/// attributes plus the fairness ones ([`ClientId`], weight).
#[derive(Clone, Debug, Default)]
pub struct SubmitOptions {
    /// Scheduling class; [`Priority::Interactive`] by default.
    pub priority: Priority,
    /// Time budget measured from submission. An expired request is
    /// answered with [`Error::DeadlineExceeded`] at dequeue (before the
    /// compile starts) or at the next shard function boundary; a compile
    /// already running on one worker is not interrupted. When an identical
    /// in-flight request coalesces with this one, the *loosest* deadline
    /// of the group wins — attaching a waiter never tightens the leader's
    /// budget.
    pub deadline: Option<Duration>,
}

impl SubmitOptions {
    /// Interactive priority, no deadline (the default).
    pub fn interactive() -> SubmitOptions {
        SubmitOptions::default()
    }

    /// Bulk priority, no deadline.
    pub fn bulk() -> SubmitOptions {
        SubmitOptions {
            priority: Priority::Bulk,
            ..SubmitOptions::default()
        }
    }

    /// Sets the deadline, measured from submission.
    pub fn with_deadline(mut self, deadline: Duration) -> SubmitOptions {
        self.deadline = Some(deadline);
        self
    }
}

/// The IR- and target-specific half of a [`CompileService`].
///
/// A backend receives requests of its own type (typically an `Arc` of a
/// module plus a target/options selector) and provides the per-function
/// compilation units the service schedules. The three compile paths must
/// agree: [`ServiceBackend::compile_module`] is the sequential reference,
/// and [`ServiceBackend::predeclare`] + [`ServiceBackend::compile_func`]
/// must reproduce it function by function under the
/// [`crate::parallel::compile_sharded`] contract (self-contained function
/// output, one predeclared symbol per function in index order).
pub trait ServiceBackend: Send + Sync + 'static {
    /// One compile request (owned, shared across worker threads).
    type Request: Send + Sync + 'static;
    /// Warm per-thread state kept across requests (adapter tables,
    /// instruction compilers, cached target drivers).
    type Worker: Send + 'static;

    /// Creates the warm state of one worker thread.
    fn new_worker(&self) -> Self::Worker;

    /// Content hash of the request — the module cache key. Must cover
    /// everything that influences the output bytes (module content, target,
    /// backend selection, compile options). `None` makes the request
    /// uncacheable.
    fn request_key(&self, req: &Self::Request) -> Option<u64>;

    /// Validates the request's IR before admission. Backends with a
    /// structured IR run [`crate::verify::Verifier`] here; the default
    /// accepts everything (for backends whose requests carry opaque data).
    ///
    /// An `Err` (conventionally [`Error::InvalidIr`]) rejects the request
    /// at admission: the ticket resolves immediately, no worker sees the
    /// request, and [`ServiceStats::rejected_invalid`] is incremented —
    /// malformed input is answered as an error, never absorbed by per-job
    /// panic containment.
    fn verify(&self, req: &Self::Request) -> Result<()> {
        let _ = req;
        Ok(())
    }

    /// Number of functions in the request's module (drives placement).
    fn func_count(&self, req: &Self::Request) -> usize;

    /// Configures a session for the request's target (sharded path only;
    /// the batched path prepares inside [`ServiceBackend::compile_module`]).
    /// The worker state is available so backends can reuse warm per-target
    /// drivers instead of rebuilding them per request.
    fn prepare_session(
        &self,
        req: &Self::Request,
        worker: &mut Self::Worker,
        session: &mut CompileSession,
    );

    /// Declares one symbol per function, in function-index order (sharded
    /// path, applied to every shard buffer and the merged buffer).
    fn predeclare(&self, req: &Self::Request, buf: &mut CodeBuffer);

    /// Compiles function `f` into `buf`, returning `Ok(false)` to skip a
    /// declaration. Output must be self-contained (see [`crate::parallel`]).
    #[allow(clippy::too_many_arguments)]
    fn compile_func(
        &self,
        req: &Self::Request,
        worker: &mut Self::Worker,
        session: &mut CompileSession,
        buf: &mut CodeBuffer,
        f: u32,
        stats: &mut CompileStats,
        timings: &mut PassTimings,
    ) -> Result<bool>;

    /// Compiles the whole module on one worker — must be byte-identical to
    /// the backend's one-shot sequential entry point (the usual
    /// implementation simply calls it with the warm session).
    fn compile_module(
        &self,
        req: &Self::Request,
        worker: &mut Self::Worker,
        session: &mut CompileSession,
    ) -> Result<CompiledModule>;
}

/// A service response: the compile result plus its request-level timing.
#[derive(Debug)]
pub struct ServiceResponse {
    /// The compiled module, or the compile error.
    pub module: Result<CompiledModule>,
    /// Request-level timing and placement information.
    pub timing: RequestTiming,
}

/// Handle to one in-flight request; redeem with the consuming
/// [`Ticket::wait`], or borrow a non-consuming [`TicketRef`] via
/// [`Ticket::by_ref`] for poll loops and bounded waits. The
/// completion-state machine is documented in [`front`].
///
/// Tickets outlive the service: dropping the [`CompileService`] drains the
/// queue first, so a ticket submitted before the drop still resolves.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<ServiceResponse>,
}

impl Ticket {
    /// Blocks until the response is ready.
    pub fn wait(self) -> ServiceResponse {
        self.rx
            .recv()
            .unwrap_or_else(|_| front::shutdown_response())
    }

    /// Borrows a non-consuming view for [`TicketRef::poll`] and
    /// [`TicketRef::wait_timeout`].
    pub fn by_ref(&self) -> TicketRef<'_> {
        TicketRef { rx: &self.rx }
    }

    /// Blocks until the response is ready or `timeout` elapses.
    #[deprecated(note = "use `ticket.by_ref().wait_timeout(..)`")]
    pub fn wait_timeout(&self, timeout: Duration) -> Option<ServiceResponse> {
        self.by_ref().wait_timeout(timeout)
    }
}

/// LRU module cache keyed by request content hash.
///
/// Entries are `Arc`-shared so lookups and inserts only touch the map under
/// the cache lock — the O(module-size) deep clone of the buffer handed to a
/// cache-hit response happens *outside* the lock, so concurrent submitters
/// never serialize behind a memcpy.
struct ModuleCache {
    capacity: usize,
    map: HashMap<u64, Arc<CacheEntry>>,
    tick: AtomicU64,
    evictions: u64,
}

struct CacheEntry {
    buf: CodeBuffer,
    stats: CompileStats,
    last_use: AtomicU64,
}

impl CacheEntry {
    /// Deep copy for a response (call without holding the cache lock).
    fn to_module(&self) -> CompiledModule {
        CompiledModule {
            buf: self.buf.clone(),
            stats: self.stats.clone(),
            timings: PassTimings::new(),
        }
    }
}

impl ModuleCache {
    fn new(capacity: usize) -> ModuleCache {
        ModuleCache {
            capacity,
            map: HashMap::new(),
            tick: AtomicU64::new(0),
            evictions: 0,
        }
    }

    fn get(&self, key: u64) -> Option<Arc<CacheEntry>> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let e = self.map.get(&key)?;
        e.last_use.store(tick, Ordering::Relaxed);
        Some(Arc::clone(e))
    }

    fn insert(&mut self, key: u64, entry: Arc<CacheEntry>) {
        if self.capacity == 0 {
            return;
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            // Evict the least recently used entry.
            if let Some((&victim, _)) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_use.load(Ordering::Relaxed))
            {
                self.map.remove(&victim);
                self.evictions += 1;
            }
        }
        entry.last_use.store(tick, Ordering::Relaxed);
        self.map.insert(key, entry);
    }
}

/// Scheduling attributes shared by both job kinds: who submitted it and
/// how the dispatcher should treat it.
struct JobMeta {
    client: ClientId,
    weight: u32,
    priority: Priority,
}

/// A small-module job: compiled whole on whichever worker pops it.
struct SingleJob<B: ServiceBackend> {
    req: B::Request,
    key: Option<u64>,
    meta: JobMeta,
    /// Taken exactly once by whoever answers the ticket — normally the
    /// worker, but the watchdog takes it when it poisons a hung job (the
    /// late result of the condemned worker is then discarded).
    tx: Mutex<Option<Sender<ServiceResponse>>>,
    submitted: Instant,
    /// Deadline in nanoseconds since [`Shared::epoch`]; `u64::MAX` means
    /// none. Atomic because coalescing relaxes it (`fetch_max`) when a
    /// looser identical request attaches.
    deadline_ns: AtomicU64,
}

/// Mutable rendezvous state of a sharded job.
struct ShardCollect {
    shards: Vec<Shard>,
    stats: CompileStats,
    timings: PassTimings,
    /// Error of the failing function with the lowest index, if any.
    err: Option<(u32, Error)>,
    /// Workers currently participating.
    active: usize,
    /// Set once the response has been produced (later poppers skip).
    done: bool,
    tx: Option<Sender<ServiceResponse>>,
    /// Time the first participant started compiling. Reset to `None` when
    /// the job is paused and requeued, so the resume re-runs the
    /// first-participant bookkeeping (backlog accounting, deadline
    /// re-check).
    started: Option<Instant>,
    /// Times this job was cooperatively paused by an interactive arrival.
    preemptions: u32,
}

/// A large-module job: `workers` copies are enqueued and every worker that
/// pops one joins the shared function-index queue; the last participant to
/// finish merges the shards and answers the ticket.
struct ShardJob<B: ServiceBackend> {
    req: B::Request,
    key: Option<u64>,
    meta: JobMeta,
    nfuncs: usize,
    next: AtomicUsize,
    abort: AtomicBool,
    /// Cooperative preemption request: set by an interactive admission
    /// while this *bulk* job is running. Participants check it at every
    /// function boundary (before claiming the next index, so no claimed
    /// function is ever left uncompiled), bank their partial shards and
    /// requeue the job; the resume continues from [`ShardJob::next`].
    preempt: AtomicBool,
    collect: Mutex<ShardCollect>,
    submitted: Instant,
    /// See [`SingleJob::deadline_ns`].
    deadline_ns: AtomicU64,
}

enum Job<B: ServiceBackend> {
    Single(Arc<SingleJob<B>>),
    Shard(Arc<ShardJob<B>>),
}

impl<B: ServiceBackend> Clone for Job<B> {
    fn clone(&self) -> Job<B> {
        match self {
            Job::Single(j) => Job::Single(Arc::clone(j)),
            Job::Shard(j) => Job::Shard(Arc::clone(j)),
        }
    }
}

impl<B: ServiceBackend> Job<B> {
    fn deadline_ns(&self) -> &AtomicU64 {
        match self {
            Job::Single(j) => &j.deadline_ns,
            Job::Shard(j) => &j.deadline_ns,
        }
    }

    fn meta(&self) -> &JobMeta {
        match self {
            Job::Single(j) => &j.meta,
            Job::Shard(j) => &j.meta,
        }
    }

    fn submission(&self) -> Submission<Job<B>> {
        let meta = self.meta();
        Submission {
            class: meta.priority,
            client: meta.client,
            weight: meta.weight,
            item: self.clone(),
        }
    }
}

/// A coalesced submission waiting for an in-flight identical request.
struct Waiter {
    tx: Sender<ServiceResponse>,
    submitted: Instant,
    client: ClientId,
}

/// An in-flight cacheable request: the job itself plus the identical
/// submissions that attached to it instead of compiling again.
struct InflightEntry<B: ServiceBackend> {
    job: Job<B>,
    waiters: Vec<Waiter>,
}

/// Monotone service counters (snapshot via [`CompileService::stats`]).
#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    disk_stores: AtomicU64,
    sharded: AtomicU64,
    batched: AtomicU64,
    /// Requests submitted but not yet answered (cache hits pass through
    /// briefly). Its high-water mark is the queue-depth statistic — one
    /// count per *request*, independent of how many shard copies a large
    /// module fans out into.
    inflight: AtomicU64,
    max_queue_depth: AtomicU64,
    /// Admitted-but-unstarted requests — the depth the admission bound
    /// compares against (one count per request, not per shard copy).
    queued: AtomicU64,
    rejected: AtomicU64,
    /// Requests whose IR failed [`ServiceBackend::verify`] at admission
    /// (answered `Error::InvalidIr` without touching a worker).
    rejected_invalid: AtomicU64,
    /// Worker panics contained by `catch_compile` on verified input — i.e.
    /// genuine backend bugs, now that bad input is rejected at admission.
    panics_backend: AtomicU64,
    deadline_expired: AtomicU64,
    coalesced: AtomicU64,
    watchdog_timeouts: AtomicU64,
    workers_respawned: AtomicU64,
    /// Bulk shard jobs cooperatively paused (and requeued) for an
    /// interactive arrival.
    preemptions: AtomicU64,
    total_latency_ns: AtomicU64,
    /// Per-request latency samples (nanoseconds), recorded at completion;
    /// the source of the p50/p99 percentiles in
    /// [`crate::timing::ServiceStats`]. A lock-free reservoir, so
    /// completion on the workers never contends with a concurrent
    /// [`CompileService::stats`] snapshot.
    latency_samples_ns: Reservoir,
    /// Disk-artifact load latency samples (nanoseconds), one per disk hit:
    /// mmap + verify + validate + materialize.
    disk_load_samples_ns: Reservoir,
}

/// Capacity of each client's sliding latency window (completion-side).
const CLIENT_WINDOW: usize = 128;

/// Completion-side per-client accounting behind a short-lived mutex (the
/// hot submission path never touches it; workers update it once per
/// response).
#[derive(Default)]
struct ClientRecord {
    completed: u64,
    shed: u64,
    preemptions: u64,
    /// Latency samples of the most recent completions, nanoseconds.
    window: VecDeque<u64>,
}

/// The watchdog's view of one worker: who owns the slot (generation), when
/// it last made progress (heartbeat) and what it is running (active job).
struct WorkerSlot<B: ServiceBackend> {
    /// Bumped by the watchdog when it condemns the worker. The condemned
    /// thread notices the mismatch after its (late) job, discards its
    /// result and exits; only the thread whose generation matches may
    /// touch the slot.
    generation: AtomicU64,
    /// Nanoseconds since [`Shared::epoch`] of the last heartbeat; 0 when
    /// idle. Stamped at job start and at shard function boundaries.
    heartbeat_ns: AtomicU64,
    /// The job the current worker is executing, published for the
    /// watchdog to poison.
    active: Mutex<Option<Job<B>>>,
    /// Join handle of the thread currently owning this slot.
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl<B: ServiceBackend> WorkerSlot<B> {
    fn new() -> WorkerSlot<B> {
        WorkerSlot {
            generation: AtomicU64::new(0),
            heartbeat_ns: AtomicU64::new(0),
            active: Mutex::new(None),
            handle: Mutex::new(None),
        }
    }

    /// Stamps a heartbeat, unless this worker has been condemned (a stale
    /// thread must not overwrite its replacement's state).
    fn beat(&self, generation: u64, now_ns: u64) {
        if self.generation.load(Ordering::Relaxed) == generation {
            self.heartbeat_ns.store(now_ns.max(1), Ordering::Relaxed);
        }
    }
}

struct Shared<B: ServiceBackend> {
    backend: B,
    cfg: ServiceConfig,
    /// The async front-end: lock-free ring ingress, DRR fairness
    /// scheduler, parker wakeups (or the legacy condvar, by config).
    dispatch: Dispatcher<Job<B>>,
    /// Queued-or-compiling cacheable jobs by request key — the coalescing
    /// rendezvous. Attach (submit) and remove (completion) both run under
    /// this mutex, so they cannot race; lock order is inflight → cache,
    /// never reversed.
    inflight: Mutex<HashMap<u64, InflightEntry<B>>>,
    /// Lock-free per-client backlog counts driving fair-share admission.
    client_backlog: ClientTable,
    /// Completion-side per-client statistics.
    client_stats: Mutex<HashMap<u64, ClientRecord>>,
    cache: Mutex<ModuleCache>,
    /// Disk tier of the cache, if configured and openable.
    disk: Option<DiskCache>,
    counters: Counters,
    /// Time base of deadlines and heartbeats (created before any submit,
    /// so every instant in the service's life is at or after it).
    epoch: Instant,
    /// One slot per worker thread, indexed by worker id.
    slots: Vec<WorkerSlot<B>>,
    /// Stops the watchdog thread at drop.
    shutdown: AtomicBool,
}

impl<B: ServiceBackend> Shared<B> {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Encodes an optional deadline as nanoseconds since the epoch
    /// (`u64::MAX` = none).
    fn deadline_ns_from(&self, submitted: Instant, deadline: Option<Duration>) -> u64 {
        match deadline {
            None => u64::MAX,
            Some(d) => (submitted + d)
                .saturating_duration_since(self.epoch)
                .as_nanos() as u64,
        }
    }

    fn deadline_passed(&self, deadline_ns: &AtomicU64) -> bool {
        let d = deadline_ns.load(Ordering::Relaxed);
        d != u64::MAX && self.now_ns() > d
    }

    /// A request leaves the admission backlog (its job started, or it was
    /// swept at shutdown): undo the submit-side accounting.
    fn depart_backlog(&self, client: ClientId) {
        self.counters.queued.fetch_sub(1, Ordering::Relaxed);
        self.client_backlog.decr(client);
    }

    fn finish_request(
        &self,
        tx: &Sender<ServiceResponse>,
        response: ServiceResponse,
        client: ClientId,
    ) {
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        self.counters.inflight.fetch_sub(1, Ordering::Relaxed);
        let latency_ns = response.timing.total.as_nanos() as u64;
        self.counters
            .total_latency_ns
            .fetch_add(latency_ns, Ordering::Relaxed);
        self.counters.latency_samples_ns.record(latency_ns);
        {
            let mut clients = lock(&self.client_stats);
            let rec = clients.entry(client.0).or_default();
            if response.module.is_ok() {
                rec.completed += 1;
            } else {
                rec.shed += 1;
            }
            rec.window.push_back(latency_ns);
            if rec.window.len() > CLIENT_WINDOW {
                rec.window.pop_front();
            }
        }
        // The submitter may have dropped its ticket; that is not an error.
        let _ = tx.send(response);
    }

    /// Answers the ticket of a queued job and fans the result out to every
    /// coalesced waiter. `timing` describes the leader; waiters get their
    /// own submission-to-now latency and the `coalesced` flag.
    fn complete(
        &self,
        key: Option<u64>,
        tx: Sender<ServiceResponse>,
        result: Result<CompiledModule>,
        timing: RequestTiming,
        client: ClientId,
    ) {
        let waiters = match key {
            Some(k) => lock(&self.inflight)
                .remove(&k)
                .map(|e| e.waiters)
                .unwrap_or_default(),
            None => Vec::new(),
        };
        for w in waiters {
            // Deep-clone per waiter outside every lock, exactly like a
            // cache hit: each response owns its buffer.
            let module = match &result {
                Ok(m) => Ok(CompiledModule {
                    buf: m.buf.clone(),
                    stats: m.stats.clone(),
                    timings: PassTimings::new(),
                }),
                Err(e) => Err(e.clone()),
            };
            self.finish_request(
                &w.tx,
                ServiceResponse {
                    module,
                    timing: RequestTiming {
                        queued: timing.queued,
                        total: w.submitted.elapsed(),
                        sharded: timing.sharded,
                        coalesced: true,
                        ..RequestTiming::default()
                    },
                },
                w.client,
            );
        }
        self.finish_request(
            &tx,
            ServiceResponse {
                module: result,
                timing,
            },
            client,
        );
    }

    fn cache_store(&self, key: Option<u64>, result: &Result<CompiledModule>) {
        if let (Some(k), Ok(m)) = (key, result) {
            // Deep-clone into the entry before taking the lock; the map
            // operation itself is cheap.
            let entry = Arc::new(CacheEntry {
                buf: m.buf.clone(),
                stats: m.stats.clone(),
                last_use: AtomicU64::new(0),
            });
            self.cache.lock().unwrap().insert(k, entry);
            // Persist to the disk tier. This runs on the worker thread that
            // compiled the module (or merged the shards), so artifact I/O
            // stays off the submit path. Store failures degrade to a
            // smaller cache, never to a wrong answer.
            if let Some(disk) = &self.disk {
                match disk.store(k, m) {
                    Ok(true) => {
                        self.counters.disk_stores.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(false) => {}
                    Err(e) => eprintln!("tpde: disk cache store failed: {e}"),
                }
            }
        }
    }
}

/// A long-lived compile service; see the module docs.
pub struct CompileService<B: ServiceBackend> {
    shared: Arc<Shared<B>>,
    watchdog: Option<JoinHandle<()>>,
}

impl<B: ServiceBackend> CompileService<B> {
    /// Spawns the worker threads (and the watchdog, if configured) and
    /// returns the running service.
    pub fn new(backend: B, cfg: ServiceConfig) -> CompileService<B> {
        let workers = cfg.workers.max(1);
        let cfg = ServiceConfig { workers, ..cfg };
        let disk = cfg
            .disk_cache
            .clone()
            .and_then(|dc| match DiskCache::open(dc) {
                Ok(d) => Some(d),
                Err(e) => {
                    eprintln!("tpde: disk cache disabled (open failed): {e}");
                    None
                }
            });
        let hang_timeout = cfg.hang_timeout;
        let ring_capacity = if cfg.ring_capacity == 0 {
            1024
        } else {
            cfg.ring_capacity
        };
        let shared = Arc::new(Shared {
            cache: Mutex::new(ModuleCache::new(cfg.cache_capacity)),
            disk,
            backend,
            dispatch: Dispatcher::new(cfg.wakeup, workers, ring_capacity),
            cfg,
            inflight: Mutex::new(HashMap::new()),
            client_backlog: ClientTable::new(),
            client_stats: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            epoch: Instant::now(),
            slots: (0..workers).map(|_| WorkerSlot::new()).collect(),
            shutdown: AtomicBool::new(false),
        });
        for i in 0..workers {
            *lock(&shared.slots[i].handle) = Some(spawn_worker(&shared, i, 0));
        }
        let watchdog = hang_timeout.map(|hang| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tpde-svc-watchdog".into())
                .spawn(move || watchdog_main(&shared, hang))
                .expect("spawn compile service watchdog")
        });
        CompileService { shared, watchdog }
    }

    /// Number of persistent worker threads.
    pub fn workers(&self) -> usize {
        self.shared.cfg.workers
    }

    /// Submits a request and returns immediately with a [`Ticket`].
    ///
    /// [`Request::new`] defaults to [`Priority::Interactive`], no deadline
    /// and the anonymous client; use the builder methods to override. Cache
    /// hits are answered before this returns (the ticket resolves without
    /// blocking); misses go through fair-share admission and the lock-free
    /// submission ring to the worker pool.
    pub fn submit(&self, req: Request<B>) -> Ticket {
        let Request {
            payload: req,
            priority,
            deadline,
            client,
            weight,
        } = req;
        let submitted = Instant::now();
        let shared = &self.shared;
        shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let inflight = shared.counters.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        shared
            .counters
            .max_queue_depth
            .fetch_max(inflight, Ordering::Relaxed);
        let (tx, rx) = channel();
        let key = shared.backend.request_key(&req);

        if let Some(k) = key {
            // Hold the cache lock only for the map lookup; the deep clone
            // of the cached buffer happens after it is released.
            let hit = shared.cache.lock().unwrap().get(k);
            if let Some(entry) = hit {
                shared.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                let module = entry.to_module();
                shared.finish_request(
                    &tx,
                    ServiceResponse {
                        module: Ok(module),
                        timing: RequestTiming {
                            total: submitted.elapsed(),
                            cache_hit: true,
                            ..RequestTiming::default()
                        },
                    },
                    client,
                );
                return Ticket { rx };
            }
            shared.counters.cache_misses.fetch_add(1, Ordering::Relaxed);

            // Memory miss: consult the disk tier before compiling. Like a
            // memory hit, a disk hit is answered at submission; the loaded
            // module is also promoted into the in-memory cache so repeats
            // in this process stay RAM-fast.
            if let Some(disk) = &shared.disk {
                let load_started = Instant::now();
                if let Some(module) = disk.load(k) {
                    shared.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
                    shared
                        .counters
                        .disk_load_samples_ns
                        .record(load_started.elapsed().as_nanos() as u64);
                    let entry = Arc::new(CacheEntry {
                        buf: module.buf.clone(),
                        stats: module.stats.clone(),
                        last_use: AtomicU64::new(0),
                    });
                    shared.cache.lock().unwrap().insert(k, entry);
                    shared.finish_request(
                        &tx,
                        ServiceResponse {
                            module: Ok(module),
                            timing: RequestTiming {
                                total: submitted.elapsed(),
                                disk_hit: true,
                                ..RequestTiming::default()
                            },
                        },
                        client,
                    );
                    return Ticket { rx };
                }
                shared.counters.disk_misses.fetch_add(1, Ordering::Relaxed);
            }
        }

        // Verify before admission: malformed IR is a caller error, answered
        // immediately with the typed reason. It must never reach a worker —
        // the back-ends assume the IrAdapter contract unchecked, so letting
        // bad input through would surface as a contained panic (and a
        // condemned worker) instead of an actionable `InvalidIr`.
        if let Err(e) = shared.backend.verify(&req) {
            shared
                .counters
                .rejected_invalid
                .fetch_add(1, Ordering::Relaxed);
            shared.finish_request(
                &tx,
                ServiceResponse {
                    module: Err(e),
                    timing: RequestTiming {
                        total: submitted.elapsed(),
                        ..RequestTiming::default()
                    },
                },
                client,
            );
            return Ticket { rx };
        }

        let nfuncs = shared.backend.func_count(&req);
        let shard = shared.cfg.workers > 1 && nfuncs >= shared.cfg.shard_threshold.max(2);
        let deadline_ns = shared.deadline_ns_from(submitted, deadline);
        if shared.dispatch.is_closed() {
            shared.finish_request(
                &tx,
                ServiceResponse {
                    module: Err(Error::Emit("compile service is shutting down".into())),
                    timing: RequestTiming {
                        total: submitted.elapsed(),
                        ..RequestTiming::default()
                    },
                },
                client,
            );
            return Ticket { rx };
        }

        // Coalescing, the late cache re-check and admission all run under
        // the inflight lock: the map is the rendezvous, and holding its
        // lock across the whole decision means two identical submissions
        // cannot both miss the map and both insert.
        let mut inflight = lock(&shared.inflight);

        // Coalesce: an identical cacheable request is already queued or
        // compiling — attach to it instead of compiling twice. Attaching
        // costs no worker time, so it bypasses admission control, and it
        // can only *relax* the leader's deadline.
        if let Some(k) = key {
            if let Some(entry) = inflight.get_mut(&k) {
                entry
                    .job
                    .deadline_ns()
                    .fetch_max(deadline_ns, Ordering::Relaxed);
                entry.waiters.push(Waiter {
                    tx,
                    submitted,
                    client,
                });
                shared.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                return Ticket { rx };
            }
            // An identical in-flight compile may have finished between the
            // cache lookup above and taking the inflight lock (verification
            // runs in that window). Successful compiles store into the
            // cache *before* leaving the inflight map, so re-checking the
            // cache here closes the race: a just-finished compile is
            // served as a hit rather than re-admitted as a second compile.
            // Lock order is inflight -> cache; no path acquires them
            // reversed.
            let late_hit = shared.cache.lock().unwrap().get(k);
            if let Some(entry) = late_hit {
                drop(inflight);
                shared.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                let module = entry.to_module();
                shared.finish_request(
                    &tx,
                    ServiceResponse {
                        module: Ok(module),
                        timing: RequestTiming {
                            total: submitted.elapsed(),
                            cache_hit: true,
                            ..RequestTiming::default()
                        },
                    },
                    client,
                );
                return Ticket { rx };
            }
        }

        // Admission control: bound the backlog of unstarted requests and
        // shed the excess explicitly — a rejected ticket resolves
        // immediately with the observed depth, it never hangs. The bound
        // is fair-share: each client with a backlog owns an equal slice of
        // the capacity, so one greedy client exhausts its own slice while
        // everyone else still gets in. With a single active client the
        // slice is the whole capacity — identical to the old global bound.
        let limit = match priority {
            Priority::Bulk if shared.cfg.bulk_queue_capacity > 0 => shared.cfg.bulk_queue_capacity,
            _ => shared.cfg.queue_capacity,
        } as u64;
        if limit > 0 {
            let share = (limit / shared.client_backlog.active()).max(1);
            let reject_depth = if shared.client_backlog.queued(client) >= share {
                Some(shared.counters.queued.load(Ordering::Relaxed))
            } else {
                // Keep the global bound exact under concurrent worker-side
                // decrements: claim a backlog slot only if one is free.
                shared
                    .counters
                    .queued
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                        if d >= limit {
                            None
                        } else {
                            Some(d + 1)
                        }
                    })
                    .err()
            };
            if let Some(depth) = reject_depth {
                drop(inflight);
                shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                shared.finish_request(
                    &tx,
                    ServiceResponse {
                        module: Err(Error::Rejected { queue_depth: depth }),
                        timing: RequestTiming {
                            total: submitted.elapsed(),
                            ..RequestTiming::default()
                        },
                    },
                    client,
                );
                return Ticket { rx };
            }
        } else {
            shared.counters.queued.fetch_add(1, Ordering::Relaxed);
        }
        shared.client_backlog.incr(client);

        let meta = JobMeta {
            client,
            weight,
            priority,
        };
        let job = if shard {
            shared.counters.sharded.fetch_add(1, Ordering::Relaxed);
            Job::Shard(Arc::new(ShardJob::<B> {
                req,
                key,
                nfuncs,
                next: AtomicUsize::new(0),
                abort: AtomicBool::new(false),
                preempt: AtomicBool::new(false),
                meta,
                collect: Mutex::new(ShardCollect {
                    shards: Vec::new(),
                    stats: CompileStats::default(),
                    timings: PassTimings::new(),
                    err: None,
                    active: 0,
                    done: false,
                    preemptions: 0,
                    tx: Some(tx),
                    started: None,
                }),
                submitted,
                deadline_ns: AtomicU64::new(deadline_ns),
            }))
        } else {
            shared.counters.batched.fetch_add(1, Ordering::Relaxed);
            Job::Single(Arc::new(SingleJob {
                req,
                key,
                meta,
                tx: Mutex::new(Some(tx)),
                submitted,
                deadline_ns: AtomicU64::new(deadline_ns),
            }))
        };
        if let Some(k) = key {
            inflight.insert(
                k,
                InflightEntry {
                    job: job.clone(),
                    waiters: Vec::new(),
                },
            );
        }
        drop(inflight);

        // One copy per worker for shards; every worker that pops one joins
        // the shared function-index queue.
        let copies = if shard { shared.cfg.workers } else { 1 };
        for _ in 0..copies {
            shared.dispatch.enqueue(job.submission());
        }
        shared.dispatch.wake(copies);

        // Cooperative preemption: an interactive arrival pauses running
        // bulk shard jobs so its own compile does not sit behind them. The
        // flag is polled at the per-function probe in the participant
        // loop; pausing is lossless (the job re-queues and resumes).
        if priority == Priority::Interactive {
            for slot in &shared.slots {
                if let Some(Job::Shard(j)) = &*lock(&slot.active) {
                    if j.meta.priority == Priority::Bulk {
                        j.preempt.store(true, Ordering::Relaxed);
                    }
                }
            }
        }
        Ticket { rx }
    }

    /// Submits a request and blocks until its response is ready.
    pub fn compile(&self, req: Request<B>) -> ServiceResponse {
        self.submit(req).wait()
    }

    /// Compatibility shim for the pre-[`Request`] two-method API.
    #[deprecated(note = "build a `Request` and call `submit` instead")]
    pub fn submit_with(&self, req: B::Request, opts: SubmitOptions) -> Ticket {
        let mut r = Request::new(req).priority(opts.priority);
        if let Some(d) = opts.deadline {
            r = r.deadline(d);
        }
        self.submit(r)
    }

    /// Compatibility shim for the pre-[`Request`] two-method API.
    #[deprecated(note = "build a `Request` and call `compile` instead")]
    pub fn compile_with(&self, req: B::Request, opts: SubmitOptions) -> ServiceResponse {
        #[allow(deprecated)]
        self.submit_with(req, opts).wait()
    }

    /// Snapshot of the request-level statistics.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.shared.counters;
        let (evictions, cached_modules) = {
            let cache = self.shared.cache.lock().unwrap();
            (cache.evictions, cache.map.len() as u64)
        };
        let mut samples = c.latency_samples_ns.snapshot();
        samples.sort_unstable();
        let mut disk_samples = c.disk_load_samples_ns.snapshot();
        disk_samples.sort_unstable();
        let clients = {
            let map = lock(&self.shared.client_stats);
            let mut v: Vec<ClientStats> = map
                .iter()
                .map(|(&client, rec)| {
                    let mut w: Vec<u64> = rec.window.iter().copied().collect();
                    w.sort_unstable();
                    ClientStats {
                        client,
                        completed: rec.completed,
                        shed: rec.shed,
                        preemptions: rec.preemptions,
                        p50_latency: std::time::Duration::from_nanos(percentile(&w, 50)),
                        p99_latency: std::time::Duration::from_nanos(percentile(&w, 99)),
                    }
                })
                .collect();
            v.sort_by_key(|c| c.client);
            v
        };
        ServiceStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            cache_misses: c.cache_misses.load(Ordering::Relaxed),
            disk_hits: c.disk_hits.load(Ordering::Relaxed),
            disk_misses: c.disk_misses.load(Ordering::Relaxed),
            disk_stores: c.disk_stores.load(Ordering::Relaxed),
            sharded: c.sharded.load(Ordering::Relaxed),
            batched: c.batched.load(Ordering::Relaxed),
            evictions,
            cached_modules,
            max_queue_depth: c.max_queue_depth.load(Ordering::Relaxed),
            total_latency: std::time::Duration::from_nanos(
                c.total_latency_ns.load(Ordering::Relaxed),
            ),
            p50_latency: std::time::Duration::from_nanos(percentile(&samples, 50)),
            p99_latency: std::time::Duration::from_nanos(percentile(&samples, 99)),
            disk_load_p50: std::time::Duration::from_nanos(percentile(&disk_samples, 50)),
            disk_load_p99: std::time::Duration::from_nanos(percentile(&disk_samples, 99)),
            rejected: c.rejected.load(Ordering::Relaxed),
            rejected_invalid: c.rejected_invalid.load(Ordering::Relaxed),
            panics_backend: c.panics_backend.load(Ordering::Relaxed),
            deadline_expired: c.deadline_expired.load(Ordering::Relaxed),
            coalesced: c.coalesced.load(Ordering::Relaxed),
            watchdog_timeouts: c.watchdog_timeouts.load(Ordering::Relaxed),
            workers_respawned: c.workers_respawned.load(Ordering::Relaxed),
            preemptions: c.preemptions.load(Ordering::Relaxed),
            ring_fallbacks: self.shared.dispatch.ring_fallbacks(),
            clients,
            disk_retries: self
                .shared
                .disk
                .as_ref()
                .map(|d| d.io_retries())
                .unwrap_or(0),
        }
    }

    /// Drops every cached module (for tests and memory pressure handling).
    pub fn clear_cache(&self) {
        let mut cache = self.shared.cache.lock().unwrap();
        cache.map.clear();
    }
}

impl<B: ServiceBackend> Drop for CompileService<B> {
    /// Drains the queue: already-submitted requests (queued or in flight)
    /// are compiled and answered before the worker threads exit.
    ///
    /// Shutdown routes through the ring's close protocol: workers keep
    /// consuming until the ring *and* the fairness scheduler are empty,
    /// spinning out claimed-but-unpublished slots (they read as
    /// [`ring::Pop::Pending`], never as empty), so a submission racing
    /// with drop is either answered by a worker or swept below — never
    /// silently lost.
    fn drop(&mut self) {
        self.shared.dispatch.close();
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // Join the watchdog first so it cannot condemn (and replace) a
        // worker while we are collecting the slot handles below.
        if let Some(w) = self.watchdog.take() {
            let _ = w.join();
        }
        for slot in &self.shared.slots {
            // A condemned thread's handle was already replaced (the thread
            // runs detached until its stuck job returns); we join only the
            // current owner of each slot. A worker that panicked already
            // poisoned its job's ticket; don't double-panic during drop.
            let handle = lock(&slot.handle).take();
            if let Some(t) = handle {
                let _ = t.join();
            }
        }
        // Backstop sweep: with every worker joined, anything still in the
        // front-end (e.g. a publish delayed past the last worker's exit by
        // fault injection) is answered with the shutdown error rather than
        // left to hang its ticket.
        for job in self.shared.dispatch.drain_remaining() {
            let (key, tx, submitted, client) = match &job {
                Job::Single(j) => match lock(&j.tx).take() {
                    Some(tx) => (j.key, tx, j.submitted, j.meta.client),
                    None => continue,
                },
                Job::Shard(j) => {
                    let tx = {
                        let mut c = lock(&j.collect);
                        // Only the first surviving copy of an unstarted
                        // shard job answers; the rest are duplicates.
                        if c.done || c.started.is_some() {
                            None
                        } else {
                            c.done = true;
                            c.tx.take()
                        }
                    };
                    match tx {
                        Some(tx) => (j.key, tx, j.submitted, j.meta.client),
                        None => continue,
                    }
                }
            };
            self.shared.depart_backlog(client);
            self.shared.complete(
                key,
                tx,
                Err(Error::Emit(
                    "compile service shut down before answering".into(),
                )),
                RequestTiming {
                    total: submitted.elapsed(),
                    ..RequestTiming::default()
                },
                client,
            );
        }
    }
}

/// Runs a backend callback, converting a panic into [`Error::Emit`] so one
/// bad module cannot kill a persistent worker thread. The second return
/// value reports whether a panic was caught — the caller then discards its
/// warm state, which the unwound backend may have left inconsistent.
fn catch_compile<R>(what: &str, f: impl FnOnce() -> Result<R>) -> (Result<R>, bool) {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => (r, false),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            (Err(Error::Emit(format!("{what} panicked: {msg}"))), true)
        }
    }
}

fn spawn_worker<B: ServiceBackend>(
    shared: &Arc<Shared<B>>,
    slot: usize,
    generation: u64,
) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("tpde-svc-{slot}-g{generation}"))
        .spawn(move || worker_main(&shared, slot, generation))
        .expect("spawn compile service worker")
}

fn worker_main<B: ServiceBackend>(shared: &Arc<Shared<B>>, slot_idx: usize, generation: u64) {
    let slot = &shared.slots[slot_idx];
    let mut session = CompileSession::new();
    let mut worker = shared.backend.new_worker();
    shared.dispatch.register(slot_idx);
    loop {
        let Some(job) = shared.dispatch.next(slot_idx) else {
            return;
        };
        // Publish the job and stamp a heartbeat before starting; the
        // watchdog condemns this slot if the heartbeat goes stale.
        *lock(&slot.active) = Some(job.clone());
        slot.beat(generation, shared.now_ns());
        // Codegen is gated on verified-only input: every admitted request
        // already passed `ServiceBackend::verify`, so a failure here means
        // the admission gate has a hole (or the request mutated). Checked
        // in debug builds only, like the faultpoint assertions.
        #[cfg(debug_assertions)]
        {
            let req = match &job {
                Job::Single(j) => &j.req,
                Job::Shard(j) => &j.req,
            };
            debug_assert!(
                shared.backend.verify(req).is_ok(),
                "unverified request reached a service worker"
            );
        }
        let poisoned = match &job {
            Job::Single(j) => run_single(shared, j, &mut worker, &mut session),
            Job::Shard(j) => {
                run_shard_participant(shared, slot, generation, j, &mut worker, &mut session)
            }
        };
        // Withdraw from the watchdog's view — unless this worker has been
        // condemned meanwhile, in which case the slot (and its active/
        // heartbeat state) belongs to the replacement thread now.
        let condemned = {
            let mut active = lock(&slot.active);
            if slot.generation.load(Ordering::Relaxed) == generation {
                slot.heartbeat_ns.store(0, Ordering::Relaxed);
                *active = None;
                false
            } else {
                true
            }
        };
        if condemned {
            return;
        }
        if poisoned {
            // A caught panic may have left the warm state half-updated;
            // start this worker over with fresh scratch. The thread — and
            // with it the pool's capacity — survives.
            session = CompileSession::new();
            worker = shared.backend.new_worker();
        }
    }
}

fn run_single<B: ServiceBackend>(
    shared: &Shared<B>,
    job: &Arc<SingleJob<B>>,
    worker: &mut B::Worker,
    session: &mut CompileSession,
) -> bool {
    shared.depart_backlog(job.meta.client);
    let started = Instant::now();
    // Deadline enforcement at dequeue: an expired request is answered
    // without paying for the compile.
    if shared.deadline_passed(&job.deadline_ns) {
        shared
            .counters
            .deadline_expired
            .fetch_add(1, Ordering::Relaxed);
        if let Some(tx) = lock(&job.tx).take() {
            shared.complete(
                job.key,
                tx,
                Err(Error::DeadlineExceeded),
                RequestTiming {
                    queued: started - job.submitted,
                    total: job.submitted.elapsed(),
                    ..RequestTiming::default()
                },
                job.meta.client,
            );
        }
        return false;
    }
    let (result, poisoned) = catch_compile("compile_module", || {
        if faultpoint::trip(faultpoint::sites::WORKER_JOB, 0).is_some() {
            return Err(Error::Emit("injected worker fault".into()));
        }
        shared.backend.compile_module(&job.req, worker, session)
    });
    if poisoned {
        // A contained panic on *verified* input is a genuine backend bug —
        // counted separately from invalid-IR rejections, which never reach
        // a worker. Counted before the ticket is answered so a caller that
        // waits and then snapshots stats observes it.
        shared
            .counters
            .panics_backend
            .fetch_add(1, Ordering::Relaxed);
    }
    // Whoever takes the sender answers the ticket; the watchdog takes it
    // when it poisons a hung job, and the condemned worker's late result
    // is then discarded (its warm state is suspect — don't even cache it).
    let Some(tx) = lock(&job.tx).take() else {
        return poisoned;
    };
    shared.cache_store(job.key, &result);
    shared.complete(
        job.key,
        tx,
        result,
        RequestTiming {
            queued: started - job.submitted,
            total: job.submitted.elapsed(),
            ..RequestTiming::default()
        },
        job.meta.client,
    );
    poisoned
}

fn run_shard_participant<B: ServiceBackend>(
    shared: &Shared<B>,
    slot: &WorkerSlot<B>,
    generation: u64,
    job: &Arc<ShardJob<B>>,
    worker: &mut B::Worker,
    session: &mut CompileSession,
) -> bool {
    {
        let mut c = lock(&job.collect);
        if c.done {
            return false; // answered already (merged, expired or poisoned)
        }
        if c.started.is_none() {
            // First participant (of this round — a paused job passes here
            // again on resume): the request leaves the admission backlog
            // here. Re-check the deadline before the expensive sharded
            // compile spins up the whole pool.
            c.started = Some(Instant::now());
            shared.depart_backlog(job.meta.client);
            if shared.deadline_passed(&job.deadline_ns) {
                shared
                    .counters
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
                job.abort.store(true, Ordering::Relaxed);
                c.done = true;
                let tx = c.tx.take();
                let queued = c.started.map(|s| s - job.submitted).unwrap_or_default();
                let preemptions = c.preemptions;
                drop(c);
                if let Some(tx) = tx {
                    shared.complete(
                        job.key,
                        tx,
                        Err(Error::DeadlineExceeded),
                        RequestTiming {
                            queued,
                            total: job.submitted.elapsed(),
                            sharded: true,
                            preemptions,
                            ..RequestTiming::default()
                        },
                        job.meta.client,
                    );
                }
                return false;
            }
        }
        c.active += 1;
    }

    // The same per-worker shard loop as `compile_sharded`, but driven by a
    // persistent thread with a warm session. A panic anywhere in the loop
    // aborts the job (the indices this participant already claimed would
    // otherwise go missing from the merge) and poisons the worker state,
    // but the rendezvous bookkeeping below still runs so the ticket is
    // answered.
    let (outcome, poisoned) = catch_compile("shard compile", || {
        if faultpoint::trip(faultpoint::sites::WORKER_JOB, 1).is_some() {
            return Err(Error::Emit("injected worker fault".into()));
        }
        shared.backend.prepare_session(&job.req, worker, session);
        let mut buf = CodeBuffer::new();
        buf.enable_declare_log();
        shared.backend.predeclare(&job.req, &mut buf);
        let mut records = Vec::new();
        let mut stats = CompileStats::default();
        let mut timings = PassTimings::new();
        let mut err: Option<(u32, Error)> = None;
        let mut preempted = false;
        loop {
            if job.abort.load(Ordering::Relaxed) {
                break;
            }
            // Cooperative preemption probe, *before* claiming an index: a
            // paused participant must not leave behind a claimed-but-
            // uncompiled function, or the resumed job's merge would have a
            // hole. Checked at the same cadence as the deadline probe.
            if job.preempt.load(Ordering::Relaxed) {
                preempted = true;
                break;
            }
            let i = job.next.fetch_add(1, Ordering::Relaxed);
            if i >= job.nfuncs {
                break;
            }
            // Function boundaries are the shard path's progress marks: a
            // heartbeat for the watchdog and a deadline re-check, so one
            // expired request cannot keep monopolizing the whole pool.
            slot.beat(generation, shared.now_ns());
            if shared.deadline_passed(&job.deadline_ns) {
                if !job.abort.swap(true, Ordering::Relaxed) {
                    shared
                        .counters
                        .deadline_expired
                        .fetch_add(1, Ordering::Relaxed);
                }
                err = Some((i as u32, Error::DeadlineExceeded));
                break;
            }
            if faultpoint::trip(faultpoint::sites::WORKER_FUNC, i as u64).is_some() {
                job.abort.store(true, Ordering::Relaxed);
                err = Some((
                    i as u32,
                    Error::Emit(format!("injected worker fault at f{i}")),
                ));
                break;
            }
            let start = buf.mark();
            match shared.backend.compile_func(
                &job.req,
                worker,
                session,
                &mut buf,
                i as u32,
                &mut stats,
                &mut timings,
            ) {
                Ok(true) => records.push((
                    i as u32,
                    crate::codebuf::ShardExtent {
                        start,
                        end: buf.mark(),
                    },
                )),
                Ok(false) => {}
                Err(e) => {
                    job.abort.store(true, Ordering::Relaxed);
                    err = Some((i as u32, e));
                    break;
                }
            }
        }
        Ok((buf, records, stats, timings, err, preempted))
    });
    if poisoned {
        // Backend bug on verified input (see `run_single`); counted before
        // the rendezvous below can answer the ticket.
        shared
            .counters
            .panics_backend
            .fetch_add(1, Ordering::Relaxed);
    }
    let (buf, records, stats, timings, err, _preempted) = outcome.unwrap_or_else(|panic_err| {
        job.abort.store(true, Ordering::Relaxed);
        (
            CodeBuffer::new(),
            Vec::new(),
            CompileStats::default(),
            PassTimings::new(),
            // u32::MAX so a real per-function error from another
            // participant takes precedence in the report.
            Some((u32::MAX, panic_err)),
            false,
        )
    });

    let mut c = lock(&job.collect);
    c.stats.merge(&stats);
    c.timings.merge(&timings);
    if let Some((i, e)) = err {
        if c.err.as_ref().is_none_or(|(fi, _)| i < *fi) {
            c.err = Some((i, e));
        }
    }
    // Partial shards from a paused round stay in the rendezvous; the merge
    // sorts records by function index across *all* shards, so a function
    // compiled before a pause lands exactly where it would have without
    // one — byte-identity survives preemption.
    c.shards.push(Shard { buf, records });
    c.active -= 1;
    let drained =
        job.next.load(Ordering::Relaxed) >= job.nfuncs || job.abort.load(Ordering::Relaxed);
    if c.active != 0 || c.done {
        return poisoned;
    }
    if !drained {
        // Every participant has stopped but functions remain unclaimed:
        // the job was preempted. The last participant out re-arms the
        // rendezvous (next round's first participant re-stamps `started`
        // and re-runs the deadline check), puts the request back into the
        // admission backlog it will depart again on resume, and re-queues
        // one copy per worker on the bulk lane.
        c.preemptions += 1;
        c.started = None;
        drop(c);
        shared.counters.preemptions.fetch_add(1, Ordering::Relaxed);
        lock(&shared.client_stats)
            .entry(job.meta.client.0)
            .or_default()
            .preemptions += 1;
        shared.counters.queued.fetch_add(1, Ordering::Relaxed);
        shared.client_backlog.incr(job.meta.client);
        job.preempt.store(false, Ordering::Relaxed);
        let requeued = Job::Shard(Arc::clone(job));
        for _ in 0..shared.cfg.workers {
            shared.dispatch.requeue(requeued.submission());
        }
        return poisoned;
    }
    // Last participant: take everything the merge needs out of the
    // rendezvous and run it *outside* the collect lock, in a catch region
    // of its own — a panic during the merge must answer the ticket and
    // poison only this worker's warm state, never the collect mutex.
    c.done = true;
    let first_err = c.err.take();
    let shards = std::mem::take(&mut c.shards);
    let merged_stats = std::mem::take(&mut c.stats);
    let merged_timings = std::mem::replace(&mut c.timings, PassTimings::new());
    let queued = c.started.map(|s| s - job.submitted).unwrap_or_default();
    let preemptions = c.preemptions;
    drop(c);

    let (result, merge_poisoned) = if let Some((_, e)) = first_err {
        (Err(e), false)
    } else {
        catch_compile("shard merge", || {
            merge_shard_job(shared, job, shards, merged_stats, merged_timings)
        })
    };
    if merge_poisoned {
        shared
            .counters
            .panics_backend
            .fetch_add(1, Ordering::Relaxed);
    }
    // The watchdog may have poisoned the ticket while the merge (or the
    // slowest participant) was stuck; whoever holds the sender answers.
    let tx = lock(&job.collect).tx.take();
    if let Some(tx) = tx {
        shared.cache_store(job.key, &result);
        shared.complete(
            job.key,
            tx,
            result,
            RequestTiming {
                queued,
                total: job.submitted.elapsed(),
                sharded: true,
                preemptions,
                ..RequestTiming::default()
            },
            job.meta.client,
        );
    }
    poisoned || merge_poisoned
}

/// Merges the shards of a finished job into the response module.
fn merge_shard_job<B: ServiceBackend>(
    shared: &Shared<B>,
    job: &ShardJob<B>,
    shards: Vec<Shard>,
    stats: CompileStats,
    timings: PassTimings,
) -> Result<CompiledModule> {
    if faultpoint::trip(faultpoint::sites::WORKER_MERGE, 0).is_some() {
        return Err(Error::Emit("injected merge fault".into()));
    }
    let mut merged = CodeBuffer::new();
    shared.backend.predeclare(&job.req, &mut merged);
    check_predeclared_func_symbols(&merged, job.nfuncs)?;
    merge_shards(&mut merged, job.nfuncs, &shards)?;
    // Tiered backends declare the tier tables inside function bodies; define
    // them after the merge like the sequential drivers do (no-op otherwise).
    merged.define_tier_tables(job.nfuncs);
    Ok(CompiledModule {
        buf: merged,
        stats,
        timings,
    })
}

/// The watchdog loop: scans the worker slots and condemns any worker whose
/// heartbeat is older than `hang`. Condemnation poisons the stuck job's
/// ticket with [`Error::Timeout`] (fanning the error out to coalesced
/// waiters), bumps the slot generation so the stuck thread retires itself
/// when it eventually returns, and spawns a replacement with fresh warm
/// state so pool capacity recovers immediately.
fn watchdog_main<B: ServiceBackend>(shared: &Arc<Shared<B>>, hang: Duration) {
    let hang_ns = hang.as_nanos() as u64;
    let poll = (hang / 4).clamp(Duration::from_millis(1), Duration::from_millis(10));
    while !shared.shutdown.load(Ordering::Relaxed) {
        std::thread::sleep(poll);
        let now = shared.now_ns();
        for (i, slot) in shared.slots.iter().enumerate() {
            let beat = slot.heartbeat_ns.load(Ordering::Relaxed);
            if beat == 0 || now.saturating_sub(beat) < hang_ns {
                continue;
            }
            let mut active = lock(&slot.active);
            // Re-check under the lock: the worker may have finished (or
            // made progress) between the scan and the lock.
            let beat = slot.heartbeat_ns.load(Ordering::Relaxed);
            if beat == 0 || shared.now_ns().saturating_sub(beat) < hang_ns {
                continue;
            }
            let Some(job) = active.take() else { continue };
            slot.generation.fetch_add(1, Ordering::Relaxed);
            let generation = slot.generation.load(Ordering::Relaxed);
            slot.heartbeat_ns.store(0, Ordering::Relaxed);
            shared
                .counters
                .watchdog_timeouts
                .fetch_add(1, Ordering::Relaxed);
            // Respawn (and count) before answering the ticket, so a caller
            // unblocked by the poisoned response already sees the slot's
            // replacement in the stats.
            *lock(&slot.handle) = Some(spawn_worker(shared, i, generation));
            shared
                .counters
                .workers_respawned
                .fetch_add(1, Ordering::Relaxed);
            poison_job(shared, &job, hang);
            drop(active);
        }
    }
}

/// Answers the ticket of a hung job with a timeout error (the condemned
/// worker's late result, if any, is discarded because the sender is gone).
fn poison_job<B: ServiceBackend>(shared: &Shared<B>, job: &Job<B>, hang: Duration) {
    let msg = format!("worker hung past the {hang:?} watchdog timeout");
    match job {
        Job::Single(j) => {
            if let Some(tx) = lock(&j.tx).take() {
                shared.complete(
                    j.key,
                    tx,
                    Err(Error::Timeout(msg)),
                    RequestTiming {
                        total: j.submitted.elapsed(),
                        ..RequestTiming::default()
                    },
                    j.meta.client,
                );
            }
        }
        Job::Shard(j) => {
            j.abort.store(true, Ordering::Relaxed);
            let tx = {
                let mut c = lock(&j.collect);
                if c.done {
                    None
                } else {
                    c.done = true;
                    c.tx.take()
                }
            };
            if let Some(tx) = tx {
                shared.complete(
                    j.key,
                    tx,
                    Err(Error::Timeout(msg)),
                    RequestTiming {
                        total: j.submitted.elapsed(),
                        sharded: true,
                        ..RequestTiming::default()
                    },
                    j.meta.client,
                );
            }
        }
    }
}

/// Nearest-rank percentile of ascending-sorted latency samples (0 if empty).
fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct * sorted.len() as u64)
        .div_ceil(100)
        .clamp(1, sorted.len() as u64);
    sorted[(rank - 1) as usize]
}

// --------------------------------------------------------------------------
// Tiered execution: the profile-polling controller
// --------------------------------------------------------------------------

/// Drives profile-guided tier promotion: polls the tier-0 entry counters,
/// picks functions whose entry count crossed the threshold and promotes each
/// of them exactly once.
///
/// The controller is deliberately decoupled from how counters are read and
/// how a promotion is carried out — the host passes closures, so the same
/// controller works against emulator guest memory (the `figures --tiered`
/// scenario: read the counter table, recompile on the warm service workers
/// with the tier-1 backend, patch the call slot) and against plain arrays in
/// unit tests.
pub struct TieringController {
    threshold: u64,
    promoted: Vec<bool>,
    promotions: u64,
}

impl TieringController {
    /// A controller for `nfuncs` functions that promotes at `threshold`
    /// entries.
    pub fn new(nfuncs: usize, threshold: u64) -> TieringController {
        TieringController {
            threshold: threshold.max(1),
            promoted: vec![false; nfuncs],
            promotions: 0,
        }
    }

    /// The promotion threshold (entry count at which a function gets
    /// recompiled).
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Whether function `f` has been promoted to tier 1.
    pub fn is_promoted(&self, f: u32) -> bool {
        self.promoted.get(f as usize).copied().unwrap_or(false)
    }

    /// Total number of promotions carried out so far.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Whether every function has been promoted (polling is then a no-op).
    pub fn all_promoted(&self) -> bool {
        self.promoted.iter().all(|&p| p)
    }

    /// One poll cycle: reads the entry counter of every not-yet-promoted
    /// function and invokes `promote` for each one at or over the threshold,
    /// marking it promoted only when the closure succeeds. Returns the
    /// number of functions promoted by this poll.
    ///
    /// # Errors
    ///
    /// Stops at and propagates the first `promote` failure; already-promoted
    /// functions stay promoted, the failing one can be retried on the next
    /// poll.
    pub fn poll(
        &mut self,
        mut read_counter: impl FnMut(u32) -> u64,
        mut promote: impl FnMut(u32) -> crate::error::Result<()>,
    ) -> crate::error::Result<usize> {
        let mut n = 0;
        for f in 0..self.promoted.len() as u32 {
            if self.promoted[f as usize] || read_counter(f) < self.threshold {
                continue;
            }
            promote(f)?;
            self.promoted[f as usize] = true;
            self.promotions += 1;
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebuf::{SectionKind, SymbolBinding};
    use std::hash::{Hash, Hasher};
    use std::time::Duration;

    /// A toy backend: a "module" is a list of byte-sized functions; function
    /// `i` emits `data[i]` followed by its index.
    struct ByteBackend;

    struct ByteModule {
        data: Vec<u8>,
        /// Forced compile error for function index, for error-path tests.
        fail_at: Option<u32>,
        /// Forced panic for function index, for worker-survival tests.
        panic_at: Option<u32>,
        /// Sleep per compiled function — makes compiles slow enough for the
        /// admission/deadline/watchdog tests to observe them in flight.
        delay: Duration,
    }

    impl ByteModule {
        fn new(data: Vec<u8>) -> Arc<ByteModule> {
            ByteModule::slow(data, Duration::ZERO)
        }

        fn slow(data: Vec<u8>, delay: Duration) -> Arc<ByteModule> {
            Arc::new(ByteModule {
                data,
                fail_at: None,
                panic_at: None,
                delay,
            })
        }
    }

    impl ServiceBackend for ByteBackend {
        type Request = Arc<ByteModule>;
        type Worker = ();

        fn new_worker(&self) {}

        fn request_key(&self, req: &Arc<ByteModule>) -> Option<u64> {
            let mut h = Fnv1a::new();
            req.data.hash(&mut h);
            req.fail_at.hash(&mut h);
            req.panic_at.hash(&mut h);
            Some(h.finish())
        }

        fn func_count(&self, req: &Arc<ByteModule>) -> usize {
            req.data.len()
        }

        /// Toy IR verifier: byte `0xFF` is the one malformed "function".
        fn verify(&self, req: &Arc<ByteModule>) -> Result<()> {
            match req.data.iter().position(|&b| b == 0xFF) {
                Some(i) => Err(Error::InvalidIr(format!("byte 0xFF at f{i}"))),
                None => Ok(()),
            }
        }

        fn prepare_session(
            &self,
            _req: &Arc<ByteModule>,
            _worker: &mut (),
            _session: &mut CompileSession,
        ) {
        }

        fn predeclare(&self, req: &Arc<ByteModule>, buf: &mut CodeBuffer) {
            for i in 0..req.data.len() {
                buf.declare_symbol(&format!("f{i}"), SymbolBinding::Global, true);
            }
        }

        fn compile_func(
            &self,
            req: &Arc<ByteModule>,
            _worker: &mut (),
            _session: &mut CompileSession,
            buf: &mut CodeBuffer,
            f: u32,
            stats: &mut CompileStats,
            _timings: &mut PassTimings,
        ) -> Result<bool> {
            if req.fail_at == Some(f) {
                return Err(Error::Unsupported(format!("f{f}")));
            }
            if req.panic_at == Some(f) {
                panic!("synthetic backend panic at f{f}");
            }
            if !req.delay.is_zero() {
                std::thread::sleep(req.delay);
            }
            buf.emit_u8(req.data[f as usize]);
            buf.emit_u8(f as u8);
            stats.funcs += 1;
            Ok(true)
        }

        fn compile_module(
            &self,
            req: &Arc<ByteModule>,
            worker: &mut (),
            session: &mut CompileSession,
        ) -> Result<CompiledModule> {
            let mut buf = CodeBuffer::new();
            self.predeclare(req, &mut buf);
            let mut stats = CompileStats::default();
            let mut timings = PassTimings::new();
            for f in 0..req.data.len() as u32 {
                let start = buf.text_offset();
                self.compile_func(req, worker, session, &mut buf, f, &mut stats, &mut timings)?;
                buf.define_symbol(
                    crate::codebuf::SymbolId(f),
                    SectionKind::Text,
                    start,
                    buf.text_offset() - start,
                );
            }
            Ok(CompiledModule {
                buf,
                stats,
                timings,
            })
        }
    }

    fn service(
        workers: usize,
        shard_threshold: usize,
        cache: usize,
    ) -> CompileService<ByteBackend> {
        CompileService::new(
            ByteBackend,
            ServiceConfig {
                workers,
                shard_threshold,
                cache_capacity: cache,
                ..ServiceConfig::default()
            },
        )
    }

    /// A fresh, empty temp directory unique to `tag` (tests run in
    /// parallel within one process).
    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tpde-service-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn disk_service(
        workers: usize,
        cache: usize,
        dir: &std::path::Path,
    ) -> CompileService<ByteBackend> {
        CompileService::new(
            ByteBackend,
            ServiceConfig {
                workers,
                shard_threshold: 16,
                cache_capacity: cache,
                disk_cache: Some(crate::diskcache::DiskCacheConfig::new(dir)),
                ..ServiceConfig::default()
            },
        )
    }

    #[test]
    fn fnv_is_deterministic_and_spreads() {
        let mut a = Fnv1a::new();
        1234u64.hash(&mut a);
        let mut b = Fnv1a::new();
        1234u64.hash(&mut b);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv1a::new();
        1235u64.hash(&mut c);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn batched_and_sharded_agree() {
        let module = ByteModule::new((0..40).collect());
        // Batched: threshold above the module size, one worker.
        let batched = service(1, 100, 0).compile(Request::new(Arc::clone(&module)));
        let batched = batched.module.unwrap();
        // Sharded: threshold below, several workers.
        let svc = service(4, 8, 0);
        let response = svc.compile(Request::new(Arc::clone(&module)));
        assert!(response.timing.sharded);
        let sharded = response.module.unwrap();
        crate::codebuf::assert_identical(&batched.buf, &sharded.buf, "service shard vs batch");
        assert_eq!(batched.stats.funcs, sharded.stats.funcs);
    }

    #[test]
    fn pipelined_requests_all_resolve() {
        let svc = service(3, 16, 0);
        let modules: Vec<_> = (0..12u8)
            .map(|i| ByteModule::new(vec![i; (i as usize % 5) * 10 + 1]))
            .collect();
        let tickets: Vec<_> = modules
            .iter()
            .map(|m| svc.submit(Request::new(Arc::clone(m))))
            .collect();
        for (m, t) in modules.iter().zip(tickets) {
            let got = t.wait().module.unwrap();
            let want = svc.compile(Request::new(Arc::clone(m))); // cache may answer; still identical
            crate::codebuf::assert_identical(
                &want.module.unwrap().buf,
                &got.buf,
                "pipelined response",
            );
        }
        let stats = svc.stats();
        assert_eq!(stats.submitted, 24);
        assert_eq!(stats.completed, 24);
    }

    #[test]
    fn cache_hits_are_identical_and_counted() {
        let svc = service(2, 100, 8);
        let module = ByteModule::new(vec![7; 10]);
        let cold = svc.compile(Request::new(Arc::clone(&module)));
        assert!(!cold.timing.cache_hit);
        let warm = svc.compile(Request::new(Arc::clone(&module)));
        assert!(warm.timing.cache_hit);
        crate::codebuf::assert_identical(
            &cold.module.unwrap().buf,
            &warm.module.unwrap().buf,
            "cache hit",
        );
        // A structurally identical but distinct allocation also hits.
        let clone = ByteModule::new(vec![7; 10]);
        assert!(svc.compile(Request::new(clone)).timing.cache_hit);
        let stats = svc.stats();
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.cache_misses, 1);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let svc = service(1, 100, 2);
        let a = ByteModule::new(vec![1]);
        let b = ByteModule::new(vec![2]);
        let c = ByteModule::new(vec![3]);
        svc.compile(Request::new(Arc::clone(&a)));
        svc.compile(Request::new(Arc::clone(&b)));
        svc.compile(Request::new(Arc::clone(&a))); // refresh a; b is now LRU
        svc.compile(Request::new(Arc::clone(&c))); // evicts b
        assert!(svc.compile(Request::new(Arc::clone(&a))).timing.cache_hit);
        assert!(svc.compile(Request::new(Arc::clone(&c))).timing.cache_hit);
        assert!(!svc.compile(Request::new(Arc::clone(&b))).timing.cache_hit);
        assert!(svc.stats().evictions >= 1);
    }

    #[test]
    fn disk_cache_survives_service_restart() {
        let dir = temp_dir("restart");
        let small = ByteModule::new(vec![3; 8]);
        let large = ByteModule::new((0..40).collect()); // sharded at threshold 16
        let (small_ref, large_ref) = {
            let svc = disk_service(2, 8, &dir);
            let a = svc
                .compile(Request::new(Arc::clone(&small)))
                .module
                .unwrap();
            let b = svc
                .compile(Request::new(Arc::clone(&large)))
                .module
                .unwrap();
            let stats = svc.stats();
            assert_eq!(stats.disk_hits, 0);
            assert_eq!(stats.disk_misses, 2);
            assert_eq!(stats.disk_stores, 2);
            (a, b)
        }; // drop = simulated process exit; artifacts persist on disk
        let svc = disk_service(2, 8, &dir);
        for (module, reference) in [(&small, &small_ref), (&large, &large_ref)] {
            let r = svc.compile(Request::new(Arc::clone(module)));
            assert!(r.timing.disk_hit, "restart must answer from disk");
            assert!(!r.timing.cache_hit && !r.timing.sharded);
            let got = r.module.unwrap();
            got.validate().unwrap();
            crate::codebuf::assert_identical(&reference.buf, &got.buf, "disk restart");
            assert_eq!(reference.stats.funcs, got.stats.funcs);
        }
        let stats = svc.stats();
        assert_eq!(stats.disk_hits, 2);
        assert_eq!(stats.batched + stats.sharded, 0, "no compile path ran");
        assert!(stats.disk_load_p50 <= stats.disk_load_p99);
        assert!(stats.disk_load_p99 > Duration::ZERO);
        assert!((stats.disk_hit_rate() - 1.0).abs() < 1e-9);
        drop(svc);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_hit_promotes_into_memory_cache() {
        let dir = temp_dir("promote");
        let module = ByteModule::new(vec![9; 6]);
        drop(disk_service(1, 8, &dir).compile(Request::new(Arc::clone(&module))));
        let svc = disk_service(1, 8, &dir);
        assert!(
            svc.compile(Request::new(Arc::clone(&module)))
                .timing
                .disk_hit
        );
        // The disk hit warmed the in-memory cache; the repeat stays in RAM.
        let again = svc.compile(Request::new(Arc::clone(&module)));
        assert!(again.timing.cache_hit && !again.timing.disk_hit);
        assert_eq!(svc.stats().disk_hits, 1);
        drop(svc);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_cache_two_live_services_share_the_store() {
        let dir = temp_dir("shared");
        let module = ByteModule::new(vec![5; 10]);
        let writer = disk_service(1, 8, &dir);
        let reader = disk_service(1, 8, &dir);
        assert!(
            !writer
                .compile(Request::new(Arc::clone(&module)))
                .timing
                .disk_hit
        );
        // The second service instance (stands in for a second process —
        // same directory, nothing shared in memory) hits the artifact.
        let r = reader.compile(Request::new(Arc::clone(&module)));
        assert!(r.timing.disk_hit);
        r.module.unwrap().validate().unwrap();
        drop(reader);
        drop(writer);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_propagate_and_workers_survive() {
        let svc = service(2, 4, 0);
        let bad = Arc::new(ByteModule {
            data: (0..16).collect(),
            fail_at: Some(9),
            panic_at: None,
            delay: Duration::ZERO,
        });
        let r = svc.compile(Request::new(Arc::clone(&bad)));
        assert!(matches!(r.module.unwrap_err(), Error::Unsupported(_)));
        // The pool keeps serving after a failed module.
        let good = ByteModule::new((0..16).collect());
        assert!(svc.compile(Request::new(good)).module.is_ok());
    }

    #[test]
    fn worker_panics_are_contained() {
        // Batched and sharded paths: a panicking backend yields an error
        // response, and the same pool keeps serving afterwards.
        for shard_threshold in [100, 4] {
            let svc = service(2, shard_threshold, 0);
            let bad = Arc::new(ByteModule {
                data: (0..16).collect(),
                fail_at: None,
                panic_at: Some(7),
                delay: Duration::ZERO,
            });
            let r = svc.compile(Request::new(Arc::clone(&bad)));
            let err = format!("{}", r.module.unwrap_err());
            assert!(err.contains("panicked"), "unexpected error: {err}");
            let good = ByteModule::new((0..16).collect());
            assert!(
                svc.compile(Request::new(good)).module.is_ok(),
                "pool died after panic"
            );
            // The contained panic is classified as a backend bug, not as
            // invalid input (the request passed verification).
            let stats = svc.stats();
            assert!(stats.panics_backend >= 1, "panic not counted");
            assert_eq!(stats.rejected_invalid, 0);
        }
    }

    #[test]
    fn invalid_ir_is_rejected_at_admission() {
        let svc = service(2, 100, 8);
        let bad = ByteModule::new(vec![1, 0xFF, 3]);
        let r = svc.compile(Request::new(Arc::clone(&bad)));
        match r.module {
            Err(Error::InvalidIr(what)) => assert!(what.contains("f1"), "got: {what}"),
            other => panic!("expected InvalidIr, got {other:?}"),
        }
        // Rejection happened at admission: no worker compiled (or panicked
        // over) the module, no respawn, and the dedicated counter moved.
        let stats = svc.stats();
        assert_eq!(stats.rejected_invalid, 1);
        assert_eq!(stats.panics_backend, 0);
        assert_eq!(stats.workers_respawned, 0);
        assert_eq!(stats.rejected, 0, "InvalidIr must not count as shed");
        // Invalid modules never enter the cache: resubmission is rejected
        // again rather than served.
        let r2 = svc.compile(Request::new(bad));
        assert!(matches!(r2.module, Err(Error::InvalidIr(_))));
        assert_eq!(svc.stats().rejected_invalid, 2);
        // The pool still serves valid requests.
        assert!(svc
            .compile(Request::new(ByteModule::new(vec![1, 2])))
            .module
            .is_ok());
    }

    #[test]
    fn invalid_ir_ticket_resolves_immediately() {
        // Regression test: an admission-rejected invalid-IR submission must
        // resolve without waiting out a timeout — even while every worker
        // is busy with a slow compile.
        let svc = service(1, 100, 0);
        let slow = svc.submit(Request::new(ByteModule::slow(
            vec![1; 4],
            Duration::from_millis(80),
        )));
        let started = Instant::now();
        let bad = svc.submit(Request::new(ByteModule::new(vec![0xFF])));
        let r = bad
            .by_ref()
            .wait_timeout(Duration::from_secs(10))
            .expect("invalid-IR ticket must already be resolved");
        assert!(matches!(r.module, Err(Error::InvalidIr(_))));
        assert!(
            started.elapsed() < Duration::from_millis(500),
            "rejection waited on the queue: {:?}",
            started.elapsed()
        );
        assert!(slow.wait().module.is_ok());
    }

    #[test]
    fn drop_drains_in_flight_requests() {
        let svc = service(2, 8, 0);
        let modules: Vec<_> = (0..8u8).map(|i| ByteModule::new(vec![i; 30])).collect();
        let tickets: Vec<_> = modules
            .iter()
            .map(|m| svc.submit(Request::new(Arc::clone(m))))
            .collect();
        drop(svc); // must drain, not abandon
        for t in tickets {
            assert!(t.wait().module.is_ok(), "request dropped at teardown");
        }
    }

    #[test]
    fn latency_percentiles_are_populated() {
        let svc = service(2, 8, 0);
        for i in 0..8u8 {
            svc.compile(Request::new(ByteModule::new(vec![i; 4])));
        }
        let stats = svc.stats();
        assert!(stats.p50_latency <= stats.p99_latency);
        assert!(stats.p99_latency > Duration::ZERO);
        assert!(stats.p99_latency <= stats.total_latency);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[7], 99), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
        assert_eq!(percentile(&[10, 20, 30, 40], 50), 20);
        assert_eq!(percentile(&[10, 20, 30, 40], 99), 40);
    }

    #[test]
    fn tiering_controller_promotes_over_threshold_once() {
        let mut c = TieringController::new(3, 5);
        assert_eq!(c.threshold(), 5);
        let counters = [4u64, 5, 6];
        let mut promoted = Vec::new();
        let n = c
            .poll(
                |f| counters[f as usize],
                |f| {
                    promoted.push(f);
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(promoted, vec![1, 2]);
        assert!(!c.is_promoted(0));
        assert!(c.is_promoted(1) && c.is_promoted(2));
        assert!(!c.all_promoted());
        // A second poll with unchanged counters promotes nothing new.
        let n = c
            .poll(|f| counters[f as usize], |_| panic!("re-promotion"))
            .unwrap();
        assert_eq!(n, 0);
        // Once every counter crosses the threshold the controller converges.
        let n = c.poll(|_| 100, |_| Ok(())).unwrap();
        assert_eq!(n, 1);
        assert!(c.all_promoted());
        assert_eq!(c.promotions(), 3);
    }

    #[test]
    fn tiering_controller_retries_failed_promotions() {
        let mut c = TieringController::new(2, 1);
        let err = c.poll(
            |_| 1,
            |f| match f {
                0 => Ok(()),
                _ => Err(Error::Unsupported("backend busy".into())),
            },
        );
        assert!(err.is_err());
        assert!(c.is_promoted(0), "successful promotion sticks");
        assert!(!c.is_promoted(1), "failed promotion stays pending");
        // The failed function is retried on the next poll.
        let n = c.poll(|_| 1, |_| Ok(())).unwrap();
        assert_eq!(n, 1);
        assert!(c.all_promoted());
    }

    #[test]
    fn tiering_controller_zero_threshold_is_clamped() {
        let mut c = TieringController::new(1, 0);
        assert_eq!(c.threshold(), 1);
        // A never-entered function is not promoted even at threshold 0.
        assert_eq!(c.poll(|_| 0, |_| panic!("cold promotion")).unwrap(), 0);
        assert_eq!(c.poll(|_| 1, |_| Ok(())).unwrap(), 1);
    }

    // ----------------------------------------------------------------------
    // Resilience front-end: admission, deadlines, coalescing, watchdog
    // ----------------------------------------------------------------------

    fn front_service(cfg: ServiceConfig) -> CompileService<ByteBackend> {
        CompileService::new(ByteBackend, cfg)
    }

    /// Occupies the single worker with a slow module and gives the worker
    /// time to dequeue it, so follow-up submissions sit in the backlog.
    fn occupy_worker(svc: &CompileService<ByteBackend>, delay: Duration) -> Ticket {
        let t = svc.submit(Request::new(ByteModule::slow(vec![0xEE], delay)));
        std::thread::sleep(Duration::from_millis(20));
        t
    }

    #[test]
    fn admission_rejects_over_capacity_with_observed_depth() {
        let svc = front_service(ServiceConfig {
            workers: 1,
            shard_threshold: 100,
            cache_capacity: 0,
            queue_capacity: 2,
            ..ServiceConfig::default()
        });
        let blocker = occupy_worker(&svc, Duration::from_millis(80));
        // Two distinct requests fill the backlog; the third is shed.
        let b = svc.submit(Request::new(ByteModule::new(vec![1])));
        let c = svc.submit(Request::new(ByteModule::new(vec![2])));
        let d = svc.submit(Request::new(ByteModule::new(vec![3])));
        let err = d.wait().module.unwrap_err();
        assert_eq!(err, Error::Rejected { queue_depth: 2 });
        assert!(err.is_shed());
        // Admitted requests are unaffected by the shed one.
        assert!(blocker.wait().module.is_ok());
        assert!(b.wait().module.is_ok());
        assert!(c.wait().module.is_ok());
        let stats = svc.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.shed(), 1);
        assert_eq!(stats.completed, 4);
    }

    #[test]
    fn bulk_is_shed_before_interactive() {
        let svc = front_service(ServiceConfig {
            workers: 1,
            shard_threshold: 100,
            cache_capacity: 0,
            queue_capacity: 4,
            bulk_queue_capacity: 1,
            ..ServiceConfig::default()
        });
        let blocker = occupy_worker(&svc, Duration::from_millis(80));
        let b = svc.submit(Request::new(ByteModule::new(vec![1]))); // backlog depth 1
        let c = svc.submit(Request::new(ByteModule::new(vec![2])).priority(Priority::Bulk));
        let d = svc.submit(Request::new(ByteModule::new(vec![3]))); // interactive still fits
        assert!(matches!(
            c.wait().module.unwrap_err(),
            Error::Rejected { .. }
        ));
        assert!(b.wait().module.is_ok());
        assert!(d.wait().module.is_ok());
        assert!(blocker.wait().module.is_ok());
        assert_eq!(svc.stats().rejected, 1);
    }

    #[test]
    fn interactive_dequeues_before_earlier_bulk() {
        let svc = front_service(ServiceConfig {
            workers: 1,
            shard_threshold: 100,
            cache_capacity: 0,
            ..ServiceConfig::default()
        });
        let blocker = occupy_worker(&svc, Duration::from_millis(80));
        let bulk = svc.submit(
            Request::new(ByteModule::slow(vec![1], Duration::from_millis(30)))
                .priority(Priority::Bulk),
        );
        let inter = svc.submit(Request::new(ByteModule::slow(
            vec![2],
            Duration::from_millis(30),
        )));
        let rb = bulk.wait();
        let ri = inter.wait();
        assert!(blocker.wait().module.is_ok());
        assert!(rb.module.is_ok() && ri.module.is_ok());
        // The later interactive submission ran first: it spent less time
        // queued than the bulk one that was submitted before it.
        assert!(
            ri.timing.queued < rb.timing.queued,
            "interactive queued {:?} !< bulk queued {:?}",
            ri.timing.queued,
            rb.timing.queued
        );
    }

    #[test]
    fn deadline_expired_at_dequeue_is_shed_explicitly() {
        let svc = front_service(ServiceConfig {
            workers: 1,
            shard_threshold: 100,
            cache_capacity: 0,
            ..ServiceConfig::default()
        });
        let blocker = occupy_worker(&svc, Duration::from_millis(80));
        let t =
            svc.submit(Request::new(ByteModule::new(vec![1])).deadline(Duration::from_millis(10)));
        let r = t.wait();
        assert_eq!(r.module.unwrap_err(), Error::DeadlineExceeded);
        assert!(blocker.wait().module.is_ok());
        // The pool still serves fresh requests afterwards.
        assert!(svc
            .compile(Request::new(ByteModule::new(vec![2])))
            .module
            .is_ok());
        let stats = svc.stats();
        assert_eq!(stats.deadline_expired, 1);
        assert_eq!(stats.shed(), 1);
    }

    #[test]
    fn deadline_expiring_mid_shard_aborts_the_sweep() {
        let svc = front_service(ServiceConfig {
            workers: 2,
            shard_threshold: 4,
            cache_capacity: 0,
            ..ServiceConfig::default()
        });
        // 12 functions x 10 ms across 2 workers: the 20 ms budget expires
        // mid-sweep, at a function boundary.
        let m = ByteModule::slow((0..12).collect(), Duration::from_millis(10));
        let r = svc.compile(Request::new(m).deadline(Duration::from_millis(20)));
        assert_eq!(r.module.unwrap_err(), Error::DeadlineExceeded);
        assert!(r.timing.sharded);
        assert_eq!(svc.stats().deadline_expired, 1);
        assert!(svc
            .compile(Request::new(ByteModule::new(vec![7])))
            .module
            .is_ok());
    }

    #[test]
    fn identical_inflight_requests_coalesce_onto_one_compile() {
        let svc = front_service(ServiceConfig {
            workers: 1,
            shard_threshold: 100,
            cache_capacity: 8,
            ..ServiceConfig::default()
        });
        let m = ByteModule::slow(vec![5; 4], Duration::from_millis(20));
        let t1 = svc.submit(Request::new(Arc::clone(&m)));
        let t2 = svc.submit(Request::new(Arc::clone(&m)));
        let t3 = svc.submit(Request::new(Arc::clone(&m)));
        let r1 = t1.wait();
        let r2 = t2.wait();
        let r3 = t3.wait();
        assert!(!r1.timing.coalesced);
        assert!(r2.timing.coalesced && r3.timing.coalesced);
        let lead = r1.module.unwrap();
        for r in [r2, r3] {
            crate::codebuf::assert_identical(&lead.buf, &r.module.unwrap().buf, "coalesced");
        }
        let stats = svc.stats();
        assert_eq!(stats.coalesced, 2);
        assert_eq!(stats.batched, 1, "exactly one compile ran");
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.cache_hits, 0);
    }

    #[test]
    fn wait_timeout_times_out_then_delivers() {
        let svc = front_service(ServiceConfig {
            workers: 1,
            shard_threshold: 100,
            cache_capacity: 0,
            ..ServiceConfig::default()
        });
        let t = svc.submit(Request::new(ByteModule::slow(
            vec![1],
            Duration::from_millis(60),
        )));
        assert!(t.by_ref().poll().is_none());
        assert!(t.by_ref().wait_timeout(Duration::from_millis(5)).is_none());
        let r = t
            .by_ref()
            .wait_timeout(Duration::from_secs(30))
            .expect("response after the compile finishes");
        assert!(r.module.is_ok());
        // The consuming wait still works after non-consuming polls: the
        // response was taken above, so a second wait reports shutdown-style
        // closure rather than hanging.
        assert!(t.wait().module.is_err());
    }

    #[test]
    fn watchdog_poisons_hung_job_and_respawned_worker_serves_on() {
        let svc = front_service(ServiceConfig {
            workers: 1,
            shard_threshold: 100,
            cache_capacity: 8,
            hang_timeout: Some(Duration::from_millis(40)),
            ..ServiceConfig::default()
        });
        // A single-function compile sleeping far past the hang threshold:
        // the heartbeat (stamped once, at job start) goes stale and the
        // watchdog condemns the worker instead of letting the ticket hang.
        let hung = svc.compile(Request::new(ByteModule::slow(
            vec![1],
            Duration::from_millis(250),
        )));
        let err = hung.module.unwrap_err();
        assert!(
            matches!(&err, Error::Timeout(msg) if msg.contains("hung")),
            "unexpected error: {err}"
        );
        assert!(!err.is_shed(), "a timeout is a failure, not shedding");
        let stats = svc.stats();
        assert!(stats.watchdog_timeouts >= 1);
        assert!(stats.workers_respawned >= 1);
        // The respawned worker (fresh warm state) keeps serving, and the
        // condemned thread's late result was discarded, not cached.
        let good = svc.compile(Request::new(ByteModule::new(vec![2; 6])));
        assert!(good.module.is_ok());
        assert!(!good.timing.cache_hit);
    }

    #[test]
    fn watchdog_timeout_fans_out_to_coalesced_waiters() {
        let svc = front_service(ServiceConfig {
            workers: 1,
            shard_threshold: 100,
            cache_capacity: 8,
            hang_timeout: Some(Duration::from_millis(40)),
            ..ServiceConfig::default()
        });
        let m = ByteModule::slow(vec![3], Duration::from_millis(250));
        let t1 = svc.submit(Request::new(Arc::clone(&m)));
        let t2 = svc.submit(Request::new(Arc::clone(&m)));
        for t in [t1, t2] {
            assert!(matches!(t.wait().module.unwrap_err(), Error::Timeout(_)));
        }
        assert_eq!(svc.stats().coalesced, 1);
    }

    #[test]
    fn admission_share_is_split_across_active_clients() {
        let svc = front_service(ServiceConfig {
            workers: 1,
            shard_threshold: 100,
            cache_capacity: 0,
            queue_capacity: 4,
            ..ServiceConfig::default()
        });
        let a = ClientId(1);
        let b = ClientId(2);
        let blocker = occupy_worker(&svc, Duration::from_millis(120));
        // B enters the backlog first, so when A's submissions arrive there
        // are two active clients and A's fair share is queue_capacity/2 = 2.
        let b1 = svc.submit(Request::new(ByteModule::new(vec![10])).client(b));
        let a1 = svc.submit(Request::new(ByteModule::new(vec![11])).client(a));
        let a2 = svc.submit(Request::new(ByteModule::new(vec![12])).client(a));
        let a3 = svc.submit(Request::new(ByteModule::new(vec![13])).client(a));
        // The global queue (depth 3) still has room, so only the per-client
        // share can explain the rejection.
        let err = a3.wait().module.unwrap_err();
        assert!(matches!(err, Error::Rejected { .. }), "unexpected: {err}");
        assert!(err.is_shed());
        // B is under its own share and is still admitted.
        let b2 = svc.submit(Request::new(ByteModule::new(vec![14])).client(b));
        for t in [blocker, b1, a1, a2, b2] {
            assert!(t.wait().module.is_ok());
        }
        let stats = svc.stats();
        assert_eq!(stats.rejected, 1);
        let of = |id: u64| stats.clients.iter().find(|c| c.client == id).unwrap();
        assert_eq!(of(1).completed, 2);
        assert_eq!(of(1).shed, 1);
        assert_eq!(of(2).completed, 2);
        assert_eq!(of(2).shed, 0);
        assert!(of(2).p99_latency >= of(2).p50_latency);
    }

    #[test]
    fn interactive_preempts_inflight_bulk_shard_and_resumes_identically() {
        let svc = front_service(ServiceConfig {
            workers: 2,
            shard_threshold: 4,
            cache_capacity: 0,
            ..ServiceConfig::default()
        });
        let bulk_mod = ByteModule::slow((0..12).collect(), Duration::from_millis(15));
        let bulk = svc.submit(
            Request::new(Arc::clone(&bulk_mod))
                .priority(Priority::Bulk)
                .client(ClientId(7)),
        );
        // Let both workers sink into the shard sweep (12 funcs x 15 ms over
        // 2 workers = ~90 ms), then submit an interactive request: the sweep
        // must pause at a function boundary, serve it, and resume.
        std::thread::sleep(Duration::from_millis(40));
        let inter = svc.compile(Request::new(ByteModule::new(vec![0xAB])).client(ClientId(8)));
        assert!(inter.module.is_ok());
        let rb = bulk.wait();
        assert!(rb.timing.sharded);
        assert!(rb.timing.preemptions >= 1, "bulk shard was never paused");
        // The paused-and-resumed output is byte-identical to an undisturbed
        // single-worker compile of the same module.
        let reference = service(1, 100, 0).compile(Request::new(Arc::clone(&bulk_mod)));
        crate::codebuf::assert_identical(
            &reference.module.unwrap().buf,
            &rb.module.unwrap().buf,
            "preempted shard",
        );
        let stats = svc.stats();
        assert!(stats.preemptions >= 1);
        let c7 = stats.clients.iter().find(|c| c.client == 7).unwrap();
        assert!(c7.preemptions >= 1);
        assert_eq!(c7.completed, 1);
    }

    #[test]
    fn condvar_wakeup_mode_serves_identically() {
        let ring = service(2, 4, 0);
        let cv = front_service(ServiceConfig {
            workers: 2,
            shard_threshold: 4,
            cache_capacity: 0,
            wakeup: WakeupMode::Condvar,
            ..ServiceConfig::default()
        });
        for len in [1u8, 3, 20] {
            let m = ByteModule::new((0..len).collect());
            let a = ring.compile(Request::new(Arc::clone(&m))).module.unwrap();
            let b = cv.compile(Request::new(Arc::clone(&m))).module.unwrap();
            crate::codebuf::assert_identical(&a.buf, &b.buf, "condvar vs ring");
        }
        let stats = cv.stats();
        assert_eq!(stats.completed, 3);
        assert_eq!(
            stats.ring_fallbacks, 0,
            "condvar mode never touches the ring"
        );
    }

    /// Pins the deprecated pre-`Request` surface: the shims must keep the
    /// exact old semantics (priority + deadline via [`SubmitOptions`]) until
    /// they are removed.
    #[test]
    #[allow(deprecated)]
    fn deprecated_option_shims_match_the_request_builder() {
        let svc = service(1, 100, 0);
        let m = ByteModule::new(vec![1, 2, 3]);
        let via_request = svc
            .compile(Request::new(Arc::clone(&m)).priority(Priority::Bulk))
            .module
            .unwrap();
        let via_shim = svc.compile_with(Arc::clone(&m), SubmitOptions::bulk());
        crate::codebuf::assert_identical(
            &via_request.buf,
            &via_shim.module.unwrap().buf,
            "shim vs builder",
        );
        let t = svc.submit_with(Arc::clone(&m), SubmitOptions::interactive());
        assert!(t.wait().module.is_ok());
        // An already-expired deadline still sheds through the shim.
        let late = svc.submit_with(
            ByteModule::slow(vec![9], Duration::from_millis(30)).clone(),
            SubmitOptions::bulk().with_deadline(Duration::ZERO),
        );
        assert!(late.wait().module.unwrap_err().is_shed());
    }
}
