//! Per-client fairness: weighted deficit round-robin scheduling and
//! lock-free admission accounting.
//!
//! Requests carry a [`ClientId`]. Two mechanisms keep one greedy client
//! from starving the rest:
//!
//! * **Dequeue fairness** — the worker-side backlog is a [`DrrQueue`]:
//!   two priority lanes (interactive strictly before bulk, preserving the
//!   service's existing priority semantics), and *within* each lane a
//!   weighted deficit round-robin over per-client FIFOs. Each visit tops
//!   a client's deficit up by its weight and serves up to that many
//!   requests before rotating, so a client with weight 2 drains twice as
//!   fast as a client with weight 1 — but never monopolizes the lane.
//! * **Admission fairness** — when a queue capacity is configured, a
//!   client's backlog share is bounded by `capacity / active_clients`
//!   (clients with queued work, tracked lock-free in [`ClientTable`]).
//!   With a single client this degenerates to the old global bound; with
//!   several, a flooding client is shed while the others still admit.
//!
//! Both structures are deterministic: rotation order is arrival order,
//! and the admission share uses exact integer arithmetic, so fairness
//! tests replay.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use super::Priority;

/// Identifies the submitting client of a request for fairness purposes.
///
/// An opaque caller-chosen 64-bit id: a tenant, a connection, a thread —
/// whatever granularity fairness should apply at. Requests that never set
/// one share [`ClientId::ANON`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub u64);

impl ClientId {
    /// The client id of requests that never set one.
    pub const ANON: ClientId = ClientId(0);
}

/// One client's FIFO inside a lane.
struct ClientQueue<T> {
    id: ClientId,
    weight: u32,
    deficit: u64,
    items: VecDeque<T>,
}

/// One priority lane: a rotation of per-client FIFOs served by deficit
/// round-robin.
struct Lane<T> {
    clients: Vec<ClientQueue<T>>,
    /// Rotation cursor into `clients`.
    rr: usize,
    len: usize,
}

impl<T> Lane<T> {
    fn new() -> Lane<T> {
        Lane {
            clients: Vec::new(),
            rr: 0,
            len: 0,
        }
    }

    fn push(&mut self, client: ClientId, weight: u32, item: T) {
        self.len += 1;
        if let Some(cq) = self.clients.iter_mut().find(|c| c.id == client) {
            cq.weight = weight.max(1);
            cq.items.push_back(item);
        } else {
            let mut items = VecDeque::new();
            items.push_back(item);
            self.clients.push(ClientQueue {
                id: client,
                weight: weight.max(1),
                deficit: 0,
                items,
            });
        }
    }

    fn pop(&mut self) -> Option<T> {
        loop {
            if self.clients.is_empty() {
                return None;
            }
            if self.rr >= self.clients.len() {
                self.rr = 0;
            }
            let cq = &mut self.clients[self.rr];
            if cq.items.is_empty() {
                // Drained clients leave the rotation (and forfeit any
                // unused deficit — DRR's anti-hoarding rule).
                self.clients.remove(self.rr);
                continue;
            }
            if cq.deficit > 0 {
                cq.deficit -= 1;
                self.len -= 1;
                let item = cq.items.pop_front();
                if cq.items.is_empty() {
                    self.clients.remove(self.rr);
                }
                return item;
            }
            // Deficit exhausted: refill (quantum × weight, with a quantum
            // of one request) and move to the next client. After a full
            // rotation everyone is topped up and service resumes.
            cq.deficit = u64::from(cq.weight);
            self.rr += 1;
        }
    }
}

/// The worker-side backlog: two priority lanes of weighted deficit
/// round-robin client FIFOs. Not thread-safe by itself — the service
/// guards it with a mutex contended only worker-vs-worker (submission
/// goes through the lock-free ring).
pub(crate) struct DrrQueue<T> {
    interactive: Lane<T>,
    bulk: Lane<T>,
}

impl<T> DrrQueue<T> {
    pub(crate) fn new() -> DrrQueue<T> {
        DrrQueue {
            interactive: Lane::new(),
            bulk: Lane::new(),
        }
    }

    pub(crate) fn push(&mut self, class: Priority, client: ClientId, weight: u32, item: T) {
        match class {
            Priority::Interactive => self.interactive.push(client, weight, item),
            Priority::Bulk => self.bulk.push(client, weight, item),
        }
    }

    /// Interactive lane strictly first; DRR within a lane.
    pub(crate) fn pop(&mut self) -> Option<T> {
        self.interactive.pop().or_else(|| self.bulk.pop())
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.interactive.len + self.bulk.len
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Slot count of the admission table. Fairness needs the *active client*
/// count and per-client backlog; 64 concurrently active clients is far
/// beyond any configured worker pool, and overflow degrades gracefully
/// (extra clients share the global bound only).
const TABLE_SLOTS: usize = 64;

/// Lock-free open-addressed table of per-client queued-request counts,
/// read on the admission fast path. Entries are claimed with a CAS on
/// first use and never freed (a drained client keeps its slot with count
/// zero — it no longer counts as active).
pub(crate) struct ClientTable {
    ids: [AtomicU64; TABLE_SLOTS],
    counts: [AtomicU64; TABLE_SLOTS],
}

/// Sentinel for an unclaimed id slot. Stored ids are `client.0 + 1` so
/// `ClientId(0)` is representable.
const FREE: u64 = 0;

impl ClientTable {
    pub(crate) fn new() -> ClientTable {
        ClientTable {
            ids: std::array::from_fn(|_| AtomicU64::new(FREE)),
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Finds (or claims) the slot of `client`. Returns `None` when the
    /// table is full — the caller then falls back to the global bound.
    fn slot(&self, client: ClientId) -> Option<usize> {
        let tag = client.0.wrapping_add(1);
        let start = {
            use std::hash::Hasher;
            let mut h = super::Fnv1a::new();
            h.write(&client.0.to_le_bytes());
            (h.finish() as usize) % TABLE_SLOTS
        };
        for probe in 0..TABLE_SLOTS {
            let i = (start + probe) % TABLE_SLOTS;
            let cur = self.ids[i].load(Ordering::Acquire);
            if cur == tag {
                return Some(i);
            }
            if cur == FREE
                && self.ids[i]
                    .compare_exchange(FREE, tag, Ordering::AcqRel, Ordering::Acquire)
                    .map_or_else(|found| found == tag, |_| true)
            {
                return Some(i);
            }
        }
        None
    }

    /// Counts a queued request for `client`.
    pub(crate) fn incr(&self, client: ClientId) {
        if let Some(i) = self.slot(client) {
            self.counts[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Uncounts a queued request for `client` (job started or was swept).
    pub(crate) fn decr(&self, client: ClientId) {
        if let Some(i) = self.slot(client) {
            // Saturating: a table-full incr that found a slot freed later
            // must not wrap.
            let _ = self.counts[i].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
                Some(c.saturating_sub(1))
            });
        }
    }

    /// This client's currently queued requests.
    pub(crate) fn queued(&self, client: ClientId) -> u64 {
        self.slot(client)
            .map_or(0, |i| self.counts[i].load(Ordering::Relaxed))
    }

    /// Clients with queued work right now (at least 1).
    pub(crate) fn active(&self) -> u64 {
        let n = self
            .counts
            .iter()
            .filter(|c| c.load(Ordering::Relaxed) > 0)
            .count() as u64;
        n.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T>(q: &mut DrrQueue<T>) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(v) = q.pop() {
            out.push(v);
        }
        out
    }

    #[test]
    fn interactive_lane_preempts_bulk_lane() {
        let mut q = DrrQueue::new();
        q.push(Priority::Bulk, ClientId(1), 1, "b1");
        q.push(Priority::Interactive, ClientId(1), 1, "i1");
        q.push(Priority::Bulk, ClientId(1), 1, "b2");
        assert_eq!(drain(&mut q), ["i1", "b1", "b2"]);
    }

    #[test]
    fn equal_weights_interleave_round_robin() {
        let mut q = DrrQueue::new();
        for i in 0..3 {
            q.push(Priority::Bulk, ClientId(1), 1, format!("a{i}"));
        }
        for i in 0..3 {
            q.push(Priority::Bulk, ClientId(2), 1, format!("b{i}"));
        }
        assert_eq!(drain(&mut q), ["a0", "b0", "a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn weight_two_serves_twice_per_round() {
        let mut q = DrrQueue::new();
        for i in 0..4 {
            q.push(Priority::Bulk, ClientId(1), 2, format!("a{i}"));
        }
        for i in 0..2 {
            q.push(Priority::Bulk, ClientId(2), 1, format!("b{i}"));
        }
        assert_eq!(drain(&mut q), ["a0", "a1", "b0", "a2", "a3", "b1"]);
    }

    #[test]
    fn late_client_joins_the_rotation_not_the_back_of_a_global_fifo() {
        let mut q = DrrQueue::new();
        for i in 0..5 {
            q.push(Priority::Bulk, ClientId(1), 1, format!("a{i}"));
        }
        // Serve one item, then a second client arrives.
        assert_eq!(q.pop().unwrap(), "a0");
        q.push(Priority::Bulk, ClientId(2), 1, "b0".to_string());
        // b0 is served after at most one more of client 1's items, not
        // after all four.
        let next_two = [q.pop().unwrap(), q.pop().unwrap()];
        assert!(next_two.contains(&"b0".to_string()), "{next_two:?}");
    }

    #[test]
    fn drained_client_forfeits_unused_deficit() {
        let mut q = DrrQueue::new();
        q.push(Priority::Bulk, ClientId(1), 100, "a0".to_string());
        q.push(Priority::Bulk, ClientId(2), 1, "b0".to_string());
        assert_eq!(drain(&mut q), ["a0", "b0"]);
        // Client 1 returns: its huge weight must not have banked deficit.
        for i in 0..3 {
            q.push(Priority::Bulk, ClientId(1), 1, format!("a{i}"));
        }
        q.push(Priority::Bulk, ClientId(2), 1, "b1".to_string());
        let order = drain(&mut q);
        let b1_at = order.iter().position(|v| v == &"b1".to_string()).unwrap();
        assert!(b1_at <= 1, "b1 served at {b1_at} in {order:?}");
    }

    #[test]
    fn len_tracks_both_lanes() {
        let mut q = DrrQueue::new();
        assert!(q.is_empty());
        q.push(Priority::Interactive, ClientId(1), 1, 1u32);
        q.push(Priority::Bulk, ClientId(2), 1, 2u32);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn client_table_counts_per_client() {
        let t = ClientTable::new();
        assert_eq!(t.active(), 1); // floor of 1, nothing queued
        t.incr(ClientId(7));
        t.incr(ClientId(7));
        t.incr(ClientId(9));
        assert_eq!(t.queued(ClientId(7)), 2);
        assert_eq!(t.queued(ClientId(9)), 1);
        assert_eq!(t.active(), 2);
        t.decr(ClientId(7));
        t.decr(ClientId(7));
        assert_eq!(t.queued(ClientId(7)), 0);
        assert_eq!(t.active(), 1);
        // Underflow saturates.
        t.decr(ClientId(7));
        assert_eq!(t.queued(ClientId(7)), 0);
    }

    #[test]
    fn client_table_survives_concurrent_increments() {
        use std::sync::Arc;
        let t = Arc::new(ClientTable::new());
        let handles: Vec<_> = (0..4u64)
            .map(|c| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        t.incr(ClientId(c % 2));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.queued(ClientId(0)), 2000);
        assert_eq!(t.queued(ClientId(1)), 2000);
    }
}
