//! Bounded lock-free submission ring.
//!
//! The front-end's ingress queue: producers (submitting threads) push
//! jobs without taking any lock; consumers (service workers) drain the
//! ring into the fairness scheduler. The design is the classic bounded
//! MPMC queue of Dmitry Vyukov: a power-of-two array of slots, each
//! carrying a *sequence number* that encodes, relative to the enqueue and
//! dequeue cursors, whether the slot is free, published, or mid-publish.
//!
//! ```text
//!            tail (CAS-claimed by producers)
//!              │
//!   ┌────┬────┬────┬────┬────┬────┬────┬────┐
//!   │ T7 │ T8 │ .. │    │    │ T4 │ T5 │ T6 │   seq per slot
//!   └────┴────┴────┴────┴────┴────┴────┴────┘
//!                          │
//!            head (CAS-claimed by consumers)
//! ```
//!
//! A push CAS-claims the tail cursor, writes the value, then *publishes*
//! by storing the slot's sequence. The claim→publish window is the one
//! interesting race: a consumer that reaches a claimed-but-unpublished
//! slot must not treat the ring as empty (the item is coming), and a
//! shutdown drain must not exit before the publish lands. [`Ring::pop`]
//! therefore distinguishes three results — [`Pop::Item`], [`Pop::Empty`],
//! [`Pop::Pending`] — instead of collapsing the latter two into `None`.
//!
//! Both cursors keep a *cached* copy of the opposing cursor so the common
//! full/empty checks run without touching the contended cache line of the
//! other side; the cache is refreshed (one acquire load) only when the
//! cached value says the operation cannot proceed.
//!
//! Fault injection: [`crate::faultpoint::sites::RING_PUBLISH`] sits in
//! the claim→publish window (a delay there widens the `Pending` state
//! deterministically for tests); capacity-forcing and wakeup faults live
//! in the front-end, not here.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::faultpoint::{self, sites};

/// Pads a hot atomic onto its own cache line so producer and consumer
/// cursors do not false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Slot<T> {
    /// Vyukov sequence number. `seq == pos`: free for the producer that
    /// claims position `pos`. `seq == pos + 1`: published, ready for the
    /// consumer at position `pos`. Anything in between (from a wrapped
    /// cursor's point of view) means the slot is claimed but not yet
    /// published.
    seq: AtomicUsize,
    val: UnsafeCell<MaybeUninit<T>>,
}

/// One [`Ring::pop`] outcome.
#[derive(Debug)]
pub enum Pop<T> {
    /// A published item was dequeued.
    Item(T),
    /// The ring is empty: every push that started has been consumed.
    Empty,
    /// The next slot is claimed by a producer that has not yet published.
    /// The ring is *not* empty — retry (the publish is a few instructions
    /// away on another thread), or park and let the producer's wakeup
    /// re-drive the drain.
    Pending,
}

/// A bounded lock-free multi-producer multi-consumer ring.
///
/// Capacity is rounded up to a power of two. `push` never blocks: a full
/// ring returns the value back to the caller (the service front-end then
/// takes the mutex-guarded overflow path, preserving unbounded-admission
/// semantics). `pop` never blocks either; see [`Pop`].
pub struct Ring<T> {
    buf: Box<[Slot<T>]>,
    mask: usize,
    /// Enqueue cursor, CAS-claimed by producers.
    tail: CachePadded<AtomicUsize>,
    /// Dequeue cursor, CAS-claimed by consumers.
    head: CachePadded<AtomicUsize>,
    /// Producers' cached view of `head` (refreshed only on apparent full).
    cached_head: CachePadded<AtomicUsize>,
    /// Consumers' cached view of `tail` (refreshed only on apparent empty).
    cached_tail: CachePadded<AtomicUsize>,
}

unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Ring<T> {
    /// Creates a ring holding at least `capacity` items (rounded up to a
    /// power of two, minimum 2).
    pub fn new(capacity: usize) -> Ring<T> {
        let cap = capacity.max(2).next_power_of_two();
        Ring {
            buf: (0..cap)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i),
                    val: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            mask: cap - 1,
            tail: CachePadded(AtomicUsize::new(0)),
            head: CachePadded(AtomicUsize::new(0)),
            cached_head: CachePadded(AtomicUsize::new(0)),
            cached_tail: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// Slot count (power of two).
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Items currently pushed but not yet popped (racy snapshot).
    pub fn len(&self) -> usize {
        self.tail
            .0
            .load(Ordering::Relaxed)
            .saturating_sub(self.head.0.load(Ordering::Relaxed))
    }

    /// Whether the ring currently appears empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lock-free push. Returns `Err(value)` if the ring is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let cap = self.buf.len();
        let mut pos = self.tail.0.load(Ordering::Relaxed);
        // Fast full check against the cached head; refresh once before
        // giving up so a stale cache cannot wedge the ring at "full".
        if pos.wrapping_sub(self.cached_head.0.load(Ordering::Relaxed)) >= cap {
            let head = self.head.0.load(Ordering::Acquire);
            self.cached_head.0.store(head, Ordering::Relaxed);
            if pos.wrapping_sub(head) >= cap {
                return Err(value);
            }
        }
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                match self.tail.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // Claimed. The publish window starts here; a
                        // fault-injected delay widens it deterministically.
                        faultpoint::trip(sites::RING_PUBLISH, pos as u64);
                        unsafe { (*slot.val.get()).write(value) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(now) => pos = now,
                }
            } else if dif < 0 {
                // The slot still holds an unconsumed item from one lap
                // back: the ring is full.
                return Err(value);
            } else {
                // Another producer claimed this position; reload.
                pos = self.tail.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Lock-free pop. See [`Pop`] for the three-way result.
    pub fn pop(&self) -> Pop<T> {
        let mut pos = self.head.0.load(Ordering::Relaxed);
        // Fast empty check against the cached tail.
        if pos == self.cached_tail.0.load(Ordering::Relaxed) {
            let tail = self.tail.0.load(Ordering::Acquire);
            self.cached_tail.0.store(tail, Ordering::Relaxed);
            if pos == tail {
                return Pop::Empty;
            }
        }
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos.wrapping_add(1) as isize;
            if dif == 0 {
                match self.head.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let value = unsafe { (*slot.val.get()).assume_init_read() };
                        // Free the slot for the producer one lap ahead.
                        slot.seq
                            .store(pos.wrapping_add(self.buf.len()), Ordering::Release);
                        return Pop::Item(value);
                    }
                    Err(now) => pos = now,
                }
            } else if dif < 0 {
                // Slot not published. Distinguish true empty (no producer
                // has claimed past us) from a claim still in its publish
                // window.
                if self.tail.0.load(Ordering::Acquire) == pos {
                    return Pop::Empty;
                }
                return Pop::Pending;
            } else {
                // Another consumer took this position; reload.
                pos = self.head.0.load(Ordering::Relaxed);
            }
        }
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Drop any items still published but unconsumed. `&mut self`
        // guarantees no concurrent producers/consumers.
        loop {
            match self.pop() {
                Pop::Item(v) => drop(v),
                Pop::Empty => break,
                Pop::Pending => std::hint::spin_loop(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultpoint::{arm, FaultAction, FaultRule};
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(Ring::<u32>::new(0).capacity(), 2);
        assert_eq!(Ring::<u32>::new(5).capacity(), 8);
        assert_eq!(Ring::<u32>::new(8).capacity(), 8);
    }

    #[test]
    fn fifo_within_a_single_thread() {
        let r = Ring::new(4);
        for v in 0..4 {
            r.push(v).unwrap();
        }
        for want in 0..4 {
            match r.pop() {
                Pop::Item(v) => assert_eq!(v, want),
                other => panic!("expected item, got {other:?}"),
            }
        }
        assert!(matches!(r.pop(), Pop::Empty));
    }

    #[test]
    fn full_ring_returns_the_value() {
        let r = Ring::new(2);
        r.push(1u32).unwrap();
        r.push(2).unwrap();
        assert_eq!(r.push(3), Err(3));
        assert_eq!(r.len(), 2);
        // Freeing one slot re-admits.
        assert!(matches!(r.pop(), Pop::Item(1)));
        r.push(3).unwrap();
    }

    #[test]
    fn wrap_around_many_laps() {
        let r = Ring::new(4);
        for lap in 0u64..100 {
            for i in 0..4 {
                r.push(lap * 4 + i).unwrap();
            }
            for i in 0..4 {
                match r.pop() {
                    Pop::Item(v) => assert_eq!(v, lap * 4 + i),
                    other => panic!("lap {lap}: {other:?}"),
                }
            }
        }
        assert!(r.is_empty());
    }

    #[test]
    fn drop_releases_unconsumed_items() {
        let r = Ring::new(8);
        let x = Arc::new(());
        for _ in 0..5 {
            r.push(Arc::clone(&x)).unwrap();
        }
        drop(r);
        assert_eq!(Arc::strong_count(&x), 1);
    }

    /// Loom-style interleaving pin: a producer stalled inside its publish
    /// window (via the RING_PUBLISH faultpoint) must make consumers see
    /// `Pending`, never `Empty` — the shutdown drain relies on this.
    #[test]
    fn claimed_but_unpublished_slot_reads_as_pending() {
        let _g = arm(vec![FaultRule::new(
            sites::RING_PUBLISH,
            FaultAction::Delay(Duration::from_millis(50)),
        )
        .limit(1)]);
        let r = Arc::new(Ring::new(4));
        let producer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || r.push(7u32).unwrap())
        };
        // Wait until the producer has claimed the slot (tail moved) but is
        // stalled in the injected delay before publishing.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while r.is_empty() {
            assert!(
                std::time::Instant::now() < deadline,
                "producer never claimed"
            );
            std::hint::spin_loop();
        }
        assert!(
            matches!(r.pop(), Pop::Pending),
            "mid-publish slot must read Pending, not Empty"
        );
        producer.join().unwrap();
        // After the publish lands, the item is there.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match r.pop() {
                Pop::Item(v) => {
                    assert_eq!(v, 7);
                    break;
                }
                _ => assert!(std::time::Instant::now() < deadline),
            }
        }
    }

    /// Contended MPMC stress: every pushed value is consumed exactly once,
    /// across wrap-arounds, full rings and publish/consume races.
    #[test]
    fn mpmc_stress_delivers_each_item_exactly_once() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 2_000;
        let r = Arc::new(Ring::new(8));
        let done = Arc::new(AtomicBool::new(false));
        let seen: Arc<Vec<AtomicUsize>> = Arc::new(
            (0..PRODUCERS * PER_PRODUCER)
                .map(|_| AtomicUsize::new(0))
                .collect(),
        );
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let r = Arc::clone(&r);
                let done = Arc::clone(&done);
                let seen = Arc::clone(&seen);
                std::thread::spawn(move || loop {
                    match r.pop() {
                        Pop::Item(v) => {
                            seen[v as usize].fetch_add(1, Ordering::Relaxed);
                        }
                        Pop::Pending => std::hint::spin_loop(),
                        Pop::Empty => {
                            if done.load(Ordering::Acquire) && r.is_empty() {
                                // Final strict re-check: a push may still
                                // be mid-publish.
                                match r.pop() {
                                    Pop::Item(v) => {
                                        seen[v as usize].fetch_add(1, Ordering::Relaxed);
                                    }
                                    Pop::Pending => continue,
                                    Pop::Empty => break,
                                }
                            }
                            std::hint::spin_loop();
                        }
                    }
                })
            })
            .collect();
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let mut v = p * PER_PRODUCER + i;
                        loop {
                            match r.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        done.store(true, Ordering::Release);
        for h in consumers {
            h.join().unwrap();
        }
        for (i, s) in seen.iter().enumerate() {
            assert_eq!(
                s.load(Ordering::Relaxed),
                1,
                "value {i} delivered wrong count"
            );
        }
    }
}
