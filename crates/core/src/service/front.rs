//! The service front-end: the redesigned submission API ([`Request`],
//! [`Ticket`], [`TicketRef`]) and the async ingress machinery (lock-free
//! ring → fairness scheduler → parker wakeups) behind it.
//!
//! # Submission path
//!
//! ```text
//!  submitter ──Request──▶ admission ──▶ [ lock-free ring ]──┐ push
//!     │                   (shed/verify/                     │
//!     │                    cache/coalesce)                  ▼
//!     ▼                                        worker: drain ring into
//!  Ticket ◀────────── response ◀── workers ◀── DRR scheduler, pop by
//!                                              lane + client fairness
//! ```
//!
//! Submitting threads never take the scheduler mutex: they CAS into the
//! [`super::ring::Ring`] and poke at most one worker's [`Parker`]. The
//! scheduler mutex is contended only worker-vs-worker, and only a full
//! ring (or an injected `ring.full` fault) falls back to pushing under it
//! directly — admission therefore stays effectively unbounded, exactly as
//! before, with the ring as a fast path rather than a correctness bound.
//!
//! # Wakeups
//!
//! One [`Parker`] per worker — a three-state atomic (`EMPTY`, `NOTIFIED`,
//! `PARKED`). A submitter wakes exactly as many workers as the job needs
//! (one for a batched module, all for a sharded one) instead of a global
//! `Condvar::notify_all` thundering herd. Parking always uses a bounded
//! `park_timeout`, so a *lost* wakeup (dropped by fault injection at the
//! `ring.wakeup` site, or by a genuine bug) costs bounded latency, never a
//! stranded ticket. The legacy Condvar mode is kept behind
//! [`WakeupMode::Condvar`] purely so `figures --sustained` can measure
//! ring vs. condvar on identical scheduler semantics.
//!
//! # Ticket completion-state machine
//!
//! Every submitted request owns a channel with exactly one response in
//! flight; the states a ticket observes:
//!
//! ```text
//!  SUBMITTED ──(cache/disk hit, shed, invalid)──▶ RESOLVED at submission
//!      │
//!      ├──(coalesced onto identical in-flight job)──▶ RESOLVED with leader
//!      │
//!      └──▶ QUEUED ──▶ COMPILING ──▶ RESOLVED by worker
//!                 │            └──(watchdog timeout)──▶ RESOLVED poisoned
//!                 └──(service dropped)──▶ RESOLVED by drain or sweep
//! ```
//!
//! Exactly one sender answers (worker, watchdog, submit path or shutdown
//! sweep — whoever takes the job's sender first), so a response is
//! observed *at most once*: [`Ticket::wait`] consumes the ticket, and the
//! non-consuming [`TicketRef::poll`] / [`TicketRef::wait_timeout`] return
//! the response the first time it is ready, after which the ticket is
//! spent (a later `wait` reports the service-shutdown error). Dropping a
//! ticket abandons the response; the service never blocks on it.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, TryRecvError};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use super::fairness::{ClientId, DrrQueue};
use super::ring::{Pop, Ring};
use super::{lock, Priority, ServiceBackend, ServiceResponse};
use crate::error::Error;
use crate::faultpoint::{self, sites};
use crate::timing::RequestTiming;

/// A compile request under construction: the backend payload plus the
/// front-end's scheduling attributes. Build with [`Request::new`] and the
/// chainable setters, then hand to
/// [`super::CompileService::submit`]/[`super::CompileService::compile`]:
///
/// ```ignore
/// svc.submit(Request::new(module).priority(Priority::Bulk)
///     .deadline(Duration::from_millis(25))
///     .client(ClientId(7)));
/// ```
#[derive(Debug)]
pub struct Request<B: ServiceBackend> {
    pub(crate) payload: B::Request,
    pub(crate) priority: Priority,
    pub(crate) deadline: Option<Duration>,
    pub(crate) client: ClientId,
    pub(crate) weight: u32,
}

impl<B: ServiceBackend> Request<B> {
    /// A request with the default attributes: [`Priority::Interactive`],
    /// no deadline, [`ClientId::ANON`], weight 1.
    pub fn new(payload: B::Request) -> Request<B> {
        Request {
            payload,
            priority: Priority::default(),
            deadline: None,
            client: ClientId::ANON,
            weight: 1,
        }
    }

    /// Sets the scheduling class.
    pub fn priority(mut self, priority: Priority) -> Request<B> {
        self.priority = priority;
        self
    }

    /// Sets the time budget, measured from submission (see
    /// [`super::SubmitOptions::deadline`] for the exact semantics).
    pub fn deadline(mut self, deadline: Duration) -> Request<B> {
        self.deadline = Some(deadline);
        self
    }

    /// Attributes the request to a client for fairness accounting.
    pub fn client(mut self, client: ClientId) -> Request<B> {
        self.client = client;
        self
    }

    /// Sets the client's deficit-round-robin weight (clamped to at least
    /// 1): a weight-2 client drains twice as fast per rotation as a
    /// weight-1 client in the same lane.
    pub fn weight(mut self, weight: u32) -> Request<B> {
        self.weight = weight.max(1);
        self
    }
}

/// A borrowed, non-consuming view of a [`Ticket`] for poll loops; see the
/// module docs for the completion-state machine.
#[derive(Debug)]
pub struct TicketRef<'a> {
    pub(crate) rx: &'a Receiver<ServiceResponse>,
}

impl TicketRef<'_> {
    /// Returns the response if it is ready, without blocking. `None`
    /// means still in flight — poll again or block via
    /// [`TicketRef::wait_timeout`].
    pub fn poll(&self) -> Option<ServiceResponse> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(shutdown_response()),
        }
    }

    /// Blocks until the response is ready or `timeout` elapses. Returns
    /// `None` on timeout; the ticket stays valid, so the caller can
    /// retry, do other work, or drop it.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<ServiceResponse> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Some(r),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => Some(shutdown_response()),
        }
    }
}

pub(crate) fn shutdown_response() -> ServiceResponse {
    ServiceResponse {
        module: Err(Error::Emit(
            "compile service shut down before answering".into(),
        )),
        timing: RequestTiming::default(),
    }
}

/// How the front-end hands submissions to the worker pool.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum WakeupMode {
    /// Lock-free ring ingress with per-worker parker wakeups (the
    /// default).
    #[default]
    Ring,
    /// Legacy mutex + condvar ingress. Same scheduler, same fairness —
    /// kept as the measured baseline of `figures --sustained`.
    Condvar,
}

/// Parker states. `NOTIFIED` is a sticky token: an unpark delivered to a
/// running worker is consumed at its next park attempt.
const EMPTY: u8 = 0;
const NOTIFIED: u8 = 1;
const PARKED: u8 = 2;

/// Bounded sleep per park. This is the recovery bound for a lost wakeup:
/// a worker never sleeps longer than this without re-checking the ring,
/// so a dropped notification costs at most one timeout of latency.
pub(crate) const PARK_TIMEOUT: Duration = Duration::from_millis(2);

/// One worker's wakeup state machine (see the module docs).
pub(crate) struct Parker {
    state: AtomicU8,
    /// The worker thread currently owning this parker; re-registered by
    /// watchdog replacements. Locked only on registration and on the
    /// unpark slow path (target actually parked).
    thread: Mutex<Option<std::thread::Thread>>,
}

impl Parker {
    pub(crate) fn new() -> Parker {
        Parker {
            state: AtomicU8::new(EMPTY),
            thread: Mutex::new(None),
        }
    }

    /// Binds the calling thread to this parker (worker start/respawn).
    pub(crate) fn register(&self) {
        *lock(&self.thread) = Some(std::thread::current());
    }

    /// Sleeps until notified or `timeout` elapses. A notification
    /// delivered since the last park is consumed without sleeping.
    #[cfg(test)]
    pub(crate) fn park(&self, timeout: Duration) {
        self.park_unless(timeout, || false);
    }

    /// Like [`Parker::park`], but re-evaluates `work_pending` *after*
    /// publishing the `PARKED` state and returns without sleeping if it
    /// reports work. A producer publishes its item before waking, so
    /// either this check observes the item or the producer's wake scan
    /// observes `PARKED` — the lost-wakeup window is closed and the park
    /// timeout is a backstop, not a latency floor.
    pub(crate) fn park_unless(&self, timeout: Duration, work_pending: impl Fn() -> bool) {
        if self.state.swap(EMPTY, Ordering::Acquire) == NOTIFIED {
            return;
        }
        if self
            .state
            .compare_exchange(EMPTY, PARKED, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            // NOTIFIED landed between the two operations.
            self.state.swap(EMPTY, Ordering::Acquire);
            return;
        }
        if work_pending() {
            self.state.swap(EMPTY, Ordering::Acquire);
            return;
        }
        std::thread::park_timeout(timeout);
        self.state.swap(EMPTY, Ordering::Acquire);
    }

    /// Delivers a notification; wakes the thread if it is parked. A
    /// spurious stale `std::thread` token can make one later park return
    /// early — harmless, the worker loop re-checks its queues.
    pub(crate) fn unpark(&self) {
        if self.state.swap(NOTIFIED, Ordering::AcqRel) == PARKED {
            if let Some(t) = lock(&self.thread).as_ref() {
                t.unpark();
            }
        }
    }

    fn is_parked(&self) -> bool {
        self.state.load(Ordering::Relaxed) == PARKED
    }
}

/// One enqueued unit: the item plus the scheduling attributes the DRR
/// scheduler needs.
pub(crate) struct Submission<T> {
    pub item: T,
    pub class: Priority,
    pub client: ClientId,
    pub weight: u32,
}

/// The ingress pipeline between submitters and workers: ring (or legacy
/// condvar) in front, DRR fairness scheduler behind, parkers on the side.
pub(crate) struct Dispatcher<T> {
    mode: WakeupMode,
    ring: Ring<Submission<T>>,
    /// Worker-side backlog. Submitters touch this mutex only on the
    /// ring-full fallback (and in Condvar mode).
    sched: Mutex<DrrQueue<T>>,
    cv: Condvar,
    parkers: Box<[Parker]>,
    /// Rotation cursor for picking which parker to wake.
    next_wake: AtomicUsize,
    closed: AtomicBool,
    ring_fallbacks: AtomicU64,
}

impl<T> Dispatcher<T> {
    pub(crate) fn new(mode: WakeupMode, workers: usize, ring_capacity: usize) -> Dispatcher<T> {
        Dispatcher {
            mode,
            ring: Ring::new(ring_capacity),
            sched: Mutex::new(DrrQueue::new()),
            cv: Condvar::new(),
            parkers: (0..workers).map(|_| Parker::new()).collect(),
            next_wake: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            ring_fallbacks: AtomicU64::new(0),
        }
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    pub(crate) fn ring_fallbacks(&self) -> u64 {
        self.ring_fallbacks.load(Ordering::Relaxed)
    }

    /// Binds the calling worker thread to its parker.
    pub(crate) fn register(&self, worker: usize) {
        self.parkers[worker].register();
    }

    /// Hands one submission to the pool (lock-free in Ring mode unless
    /// the ring is full or an injected `ring.full` fault forces the
    /// fallback). Call [`Dispatcher::wake`] afterwards.
    pub(crate) fn enqueue(&self, sub: Submission<T>) {
        match self.mode {
            WakeupMode::Condvar => {
                let mut sched = lock(&self.sched);
                sched.push(sub.class, sub.client, sub.weight, sub.item);
            }
            WakeupMode::Ring => {
                let forced_full = faultpoint::trip(sites::RING_FULL, 0).is_some();
                let overflow = if forced_full {
                    Some(sub)
                } else {
                    self.ring.push(sub).err()
                };
                if let Some(sub) = overflow {
                    // Capacity (or an injected fault) is a latency event,
                    // never an admission event: spill under the scheduler
                    // mutex like the legacy path.
                    self.ring_fallbacks.fetch_add(1, Ordering::Relaxed);
                    let mut sched = lock(&self.sched);
                    sched.push(sub.class, sub.client, sub.weight, sub.item);
                }
            }
        }
    }

    /// Requeue from a worker thread (paused shard jobs). Workers are on
    /// the consumer side already, so this pushes straight into the
    /// scheduler in both modes.
    pub(crate) fn requeue(&self, sub: Submission<T>) {
        let mut sched = lock(&self.sched);
        sched.push(sub.class, sub.client, sub.weight, sub.item);
    }

    /// Wakes up to `n` workers (1 for a batched job, the pool for a
    /// sharded one). Parked workers are preferred; if fewer than `n` are
    /// parked, the notification token is left on running workers, which
    /// consume it at their next park attempt. An injected `ring.wakeup`
    /// fault drops the whole wakeup — the bounded park timeout recovers.
    pub(crate) fn wake(&self, n: usize) {
        match self.mode {
            WakeupMode::Condvar => {
                if n <= 1 {
                    self.cv.notify_one();
                } else {
                    self.cv.notify_all();
                }
            }
            WakeupMode::Ring => {
                if faultpoint::trip(sites::RING_WAKEUP, n as u64).is_some() {
                    return;
                }
                let w = self.parkers.len();
                let n = n.min(w);
                let start = self.next_wake.fetch_add(1, Ordering::Relaxed);
                let mut woken = 0;
                for i in 0..w {
                    if woken >= n {
                        return;
                    }
                    let p = &self.parkers[(start + i) % w];
                    if p.is_parked() {
                        p.unpark();
                        woken += 1;
                    }
                }
                // Not enough parked workers: stamp tokens on the next few
                // in rotation so imminent parks return immediately.
                for i in 0..(n - woken) {
                    self.parkers[(start + i) % w].unpark();
                }
            }
        }
    }

    /// Closes the front-end (shutdown): no effect on already-enqueued
    /// work, but workers exit once ring and scheduler are drained.
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::Release);
        match self.mode {
            WakeupMode::Condvar => self.cv.notify_all(),
            WakeupMode::Ring => {
                // Shutdown wakeups bypass fault injection: a dropped one
                // would only add a park-timeout of drain latency, but
                // there is no reason to inject here.
                for p in self.parkers.iter() {
                    p.unpark();
                }
            }
        }
    }

    /// Blocks until a job is available, returning `None` only when the
    /// dispatcher is closed *and* fully drained — including ring slots
    /// still inside their publish window, which read as [`Pop::Pending`]
    /// and are waited out, never dropped.
    pub(crate) fn next(&self, worker: usize) -> Option<T> {
        match self.mode {
            WakeupMode::Condvar => {
                let mut sched = lock(&self.sched);
                loop {
                    if let Some(item) = sched.pop() {
                        return Some(item);
                    }
                    if self.is_closed() {
                        return None;
                    }
                    sched = self.cv.wait(sched).unwrap_or_else(|e| e.into_inner());
                }
            }
            WakeupMode::Ring => loop {
                {
                    let mut sched = lock(&self.sched);
                    while let Pop::Item(s) = self.ring.pop() {
                        sched.push(s.class, s.client, s.weight, s.item);
                    }
                    if let Some(item) = sched.pop() {
                        return Some(item);
                    }
                }
                if self.is_closed() {
                    match self.ring.pop() {
                        Pop::Item(s) => {
                            lock(&self.sched).push(s.class, s.client, s.weight, s.item);
                        }
                        Pop::Pending => std::hint::spin_loop(),
                        Pop::Empty => {
                            // One last scheduler check (a peer may have
                            // requeued a paused shard) before exiting.
                            if let Some(item) = lock(&self.sched).pop() {
                                return Some(item);
                            }
                            if self.ring.is_empty() {
                                return None;
                            }
                        }
                    }
                    continue;
                }
                // A submission published after the drain above may have
                // stamped its wakeup token on a busy peer; the post-PARKED
                // recheck inside `park_unless` closes that window, so the
                // timeout is only a backstop for injected wakeup faults.
                self.parkers[worker].park_unless(PARK_TIMEOUT, || !self.ring.is_empty());
            },
        }
    }

    /// Strict post-join drain for `Drop`: empties the ring (waiting out
    /// any publish still in flight) and the scheduler, returning the
    /// leftovers so the service can answer their tickets. Only sound once
    /// the workers have exited — they would otherwise race for the items.
    pub(crate) fn drain_remaining(&self) -> Vec<T> {
        let mut out = Vec::new();
        loop {
            match self.ring.pop() {
                Pop::Item(s) => out.push(s.item),
                Pop::Pending => std::hint::spin_loop(),
                Pop::Empty => break,
            }
        }
        let mut sched = lock(&self.sched);
        while let Some(item) = sched.pop() {
            out.push(item);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn unpark_before_park_returns_immediately() {
        let p = Parker::new();
        p.register();
        p.unpark();
        let t = Instant::now();
        p.park(Duration::from_secs(5));
        assert!(t.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn park_times_out_without_a_notification() {
        let p = Parker::new();
        p.register();
        let t = Instant::now();
        p.park(Duration::from_millis(10));
        assert!(t.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn unpark_wakes_a_parked_thread() {
        let p = Arc::new(Parker::new());
        let h = {
            let p = Arc::clone(&p);
            std::thread::spawn(move || {
                p.register();
                let t = Instant::now();
                p.park(Duration::from_secs(30));
                t.elapsed()
            })
        };
        // Give the worker time to actually park, then wake it.
        while !p.is_parked() {
            std::thread::yield_now();
        }
        p.unpark();
        let slept = h.join().unwrap();
        assert!(slept < Duration::from_secs(5), "parked thread never woke");
    }

    #[test]
    fn dispatcher_round_trips_submissions_through_the_ring() {
        let d: Dispatcher<u32> = Dispatcher::new(WakeupMode::Ring, 1, 8);
        d.register(0);
        for v in 0..5 {
            d.enqueue(Submission {
                item: v,
                class: Priority::Interactive,
                client: ClientId(1),
                weight: 1,
            });
        }
        d.wake(1);
        let got: Vec<u32> = (0..5).map(|_| d.next(0).unwrap()).collect();
        if crate::faultpoint::armed() {
            // Env-armed `ring` faults may spill pushes to the scheduler
            // queue, reordering across lanes — delivery stays exactly-once.
            let mut sorted = got.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..5).collect::<Vec<_>>());
        } else {
            assert_eq!(got, (0..5).collect::<Vec<_>>(), "same-client FIFO");
        }
        d.close();
        assert_eq!(d.next(0), None);
    }

    #[test]
    fn dispatcher_overflow_spills_to_the_scheduler_not_the_floor() {
        // Ring capacity 2 (min power of two), 10 submissions: the spill
        // path must preserve every item.
        let d: Dispatcher<u32> = Dispatcher::new(WakeupMode::Ring, 1, 2);
        d.register(0);
        for v in 0..10 {
            d.enqueue(Submission {
                item: v,
                class: Priority::Bulk,
                client: ClientId(1),
                weight: 1,
            });
        }
        assert!(d.ring_fallbacks() > 0);
        let mut got: Vec<u32> = (0..10).map(|_| d.next(0).unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn condvar_mode_delivers_and_closes() {
        let d: Dispatcher<u32> = Dispatcher::new(WakeupMode::Condvar, 2, 8);
        d.enqueue(Submission {
            item: 9,
            class: Priority::Interactive,
            client: ClientId(1),
            weight: 1,
        });
        d.wake(1);
        assert_eq!(d.next(0), Some(9));
        d.close();
        assert_eq!(d.next(0), None);
        assert_eq!(d.next(1), None);
    }
}
