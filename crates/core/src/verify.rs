//! IR verifier: the admission gate between untrusted IR and the back-ends.
//!
//! The framework trusts its [`IrAdapter`](crate::adapter::IrAdapter)
//! contract completely — analysis indexes successor arrays without bounds
//! checks, codegen assumes every block ends in a terminator, the register
//! allocator assumes every operand was defined earlier in layout order.
//! That is the right trade-off on the hot path (§2 of the paper: a
//! single-pass back-end cannot afford per-query validation), but it means a
//! malformed module turns into an out-of-bounds panic deep inside a worker
//! instead of an error the caller can act on.
//!
//! [`Verifier`] restores the error: one reusable, allocation-free pass over
//! any `IrAdapter` that checks the full contract *before* the IR reaches
//! analysis or codegen, producing a typed [`VerifyError`].
//! [`CompileService`](crate::service::CompileService) runs it at admission
//! (via [`ServiceBackend::verify`](crate::service::ServiceBackend::verify)),
//! so malformed modules answer [`Error::InvalidIr`](crate::error::Error)
//! immediately instead of tripping per-job panic containment.
//!
//! ## Invariants codegen may assume after verification
//!
//! Once `verify_func` returns `Ok(())` for a function, every later pass may
//! assume — without re-checking — that:
//!
//! 1. **Dense indices are in range.** Every `BlockRef` returned by
//!    `block_succs` and every `PhiIncoming::block` is `< block_count()`;
//!    every `InstRef` in `block_insts` is `< inst_count()` and appears in
//!    exactly one block, exactly once; every `ValueRef` appearing as an
//!    argument, stack variable, phi, operand, result or phi-incoming value
//!    is `< value_count()`.
//! 2. **Single definition.** No value is defined twice (across arguments,
//!    stack variables, phis and instruction results).
//! 3. **Terminator placement.** Every block has at least one instruction;
//!    if the adapter classifies terminators
//!    ([`inst_is_terminator`](crate::adapter::IrAdapter::inst_is_terminator)),
//!    the last instruction of each block is a terminator and no terminator
//!    appears earlier in a block.
//! 4. **Uses follow definitions in layout order** — the same dominance
//!    approximation the analyzer computes (reverse post-order with
//!    contiguous loops). A non-constant operand used at instruction `i` of
//!    block `b` was defined either at function entry (argument / stack
//!    variable), by an earlier phi or instruction of a block at an earlier
//!    layout position, or earlier within `b` itself. Phi-incoming values
//!    are uses *at the end of the incoming block*, so back-edge values
//!    defined later in layout are accepted exactly when the incoming block
//!    itself is later in layout.
//! 5. **Call arity.** If the adapter reports direct-call targets
//!    ([`inst_call_target`](crate::adapter::IrAdapter::inst_call_target))
//!    and callee signatures
//!    ([`func_param_count`](crate::adapter::IrAdapter::func_param_count)),
//!    every direct call passes exactly as many arguments as the callee
//!    declares, and the callee index is `< func_count()`.
//!
//! The verifier is deliberately *layout-order* based, not true-dominance
//! based: it accepts exactly the set of modules the single-pass back-ends
//! can compile, no fewer and no more.
//!
//! Buffers (including the embedded [`Analyzer`]) are owned by the
//! `Verifier` and reused across functions and modules, so steady-state
//! verification performs no allocations once the buffers have grown to the
//! largest function seen.

use crate::adapter::{BlockRef, FuncRef, IrAdapter, ValueRef};
use crate::analysis::{Analysis, Analyzer};
use std::fmt;

/// A structural defect found by the [`Verifier`].
///
/// Each variant corresponds to one invariant from the
/// [module docs](self); fields are the dense indices of the offending
/// entities (function / block / instruction / value), so a fuzzer can
/// assert the exact rejection class and a user can locate the defect.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The function has no basic blocks (nothing to compile, no entry).
    NoBlocks { func: u32 },
    /// A block successor index is `>= block_count()`.
    SuccOutOfRange { func: u32, block: u32, succ: u32 },
    /// An instruction index in a block is `>= inst_count()`.
    InstOutOfRange { func: u32, block: u32, inst: u32 },
    /// An instruction appears in more than one block (or twice in one).
    DuplicateInst { func: u32, inst: u32 },
    /// A value index (operand, result, phi, argument, stack variable or
    /// phi-incoming value) is `>= value_count()`.
    ValueOutOfRange { func: u32, value: u32 },
    /// A value is defined more than once.
    Redefined { func: u32, value: u32 },
    /// A block is empty or does not end in a terminator.
    MissingTerminator { func: u32, block: u32 },
    /// A terminator appears before the end of a block.
    MisplacedTerminator { func: u32, block: u32, inst: u32 },
    /// A non-constant value is used before (or without) its definition in
    /// layout order. `block` is the block containing the use.
    UseBeforeDef { func: u32, block: u32, value: u32 },
    /// A direct call targets a function index `>= func_count()`.
    CalleeOutOfRange { func: u32, inst: u32, callee: u32 },
    /// A direct call passes the wrong number of arguments.
    CallArityMismatch {
        func: u32,
        inst: u32,
        callee: u32,
        expected: u32,
        got: u32,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            VerifyError::NoBlocks { func } => write!(f, "f{func}: function has no blocks"),
            VerifyError::SuccOutOfRange { func, block, succ } => {
                write!(f, "f{func} b{block}: successor b{succ} out of range")
            }
            VerifyError::InstOutOfRange { func, block, inst } => {
                write!(f, "f{func} b{block}: instruction i{inst} out of range")
            }
            VerifyError::DuplicateInst { func, inst } => {
                write!(
                    f,
                    "f{func}: instruction i{inst} listed in more than one block"
                )
            }
            VerifyError::ValueOutOfRange { func, value } => {
                write!(f, "f{func}: value v{value} out of range")
            }
            VerifyError::Redefined { func, value } => {
                write!(f, "f{func}: value v{value} defined more than once")
            }
            VerifyError::MissingTerminator { func, block } => {
                write!(f, "f{func} b{block}: block does not end in a terminator")
            }
            VerifyError::MisplacedTerminator { func, block, inst } => {
                write!(
                    f,
                    "f{func} b{block}: terminator i{inst} before end of block"
                )
            }
            VerifyError::UseBeforeDef { func, block, value } => {
                write!(
                    f,
                    "f{func} b{block}: value v{value} used before its definition in layout order"
                )
            }
            VerifyError::CalleeOutOfRange { func, inst, callee } => {
                write!(f, "f{func} i{inst}: call target f{callee} out of range")
            }
            VerifyError::CallArityMismatch {
                func,
                inst,
                callee,
                expected,
                got,
            } => write!(
                f,
                "f{func} i{inst}: call to f{callee} passes {got} arguments, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<VerifyError> for crate::error::Error {
    fn from(e: VerifyError) -> Self {
        crate::error::Error::InvalidIr(e.to_string())
    }
}

/// Timestamp sentinel: "never defined".
const UNDEF: u32 = u32::MAX;

/// Reusable IR verifier. See the [module docs](self) for the checked
/// invariants. Create once, call [`Verifier::verify_module`] (or
/// [`Verifier::verify_func`] per function) as often as needed; all internal
/// buffers are reused.
#[derive(Default)]
pub struct Verifier {
    analyzer: Analyzer,
    analysis: Analysis,
    /// Per-instruction "already seen in some block" marker.
    seen_inst: Vec<bool>,
    /// Per-value "has a definition site" marker (structural pass).
    defined: Vec<bool>,
    /// Per-value definition timestamp (layout-order pass).
    def_time: Vec<u32>,
    /// Per-block timestamp of the block's end (layout-order pass).
    block_end: Vec<u32>,
}

impl Verifier {
    /// Creates a verifier with empty buffers.
    pub fn new() -> Verifier {
        Verifier::default()
    }

    /// Verifies every defined function of the module, switching the adapter
    /// to each function in turn. Stops at the first defect.
    pub fn verify_module<A: IrAdapter>(&mut self, adapter: &mut A) -> Result<(), VerifyError> {
        for f in 0..adapter.func_count() {
            let func = FuncRef(f as u32);
            if !adapter.func_is_definition(func) {
                continue;
            }
            adapter.switch_func(func);
            let res = self.verify_func(adapter, func);
            adapter.finalize_func();
            res?;
        }
        Ok(())
    }

    /// Verifies the adapter's *current* function (after `switch_func`).
    /// `func` is only used to label errors.
    pub fn verify_func<A: IrAdapter>(
        &mut self,
        adapter: &A,
        func: FuncRef,
    ) -> Result<(), VerifyError> {
        let fi = func.0;
        let nb = adapter.block_count();
        if nb == 0 {
            return Err(VerifyError::NoBlocks { func: fi });
        }
        let nv = adapter.value_count();
        let ni = adapter.inst_count();

        // ---- pass 1: bounds, density, terminators, calls, single-def ----
        // Everything here must hold before the analyzer may run (its DFS
        // indexes successor arrays unchecked).
        self.seen_inst.clear();
        self.seen_inst.resize(ni, false);
        self.defined.clear();
        self.defined.resize(nv, false);

        let define = |defined: &mut Vec<bool>, v: ValueRef| -> Result<(), VerifyError> {
            if v.idx() >= nv {
                return Err(VerifyError::ValueOutOfRange {
                    func: fi,
                    value: v.0,
                });
            }
            if defined[v.idx()] {
                return Err(VerifyError::Redefined {
                    func: fi,
                    value: v.0,
                });
            }
            defined[v.idx()] = true;
            Ok(())
        };

        for &a in adapter.args() {
            define(&mut self.defined, a)?;
        }
        for sv in adapter.static_stack_vars() {
            define(&mut self.defined, sv.value)?;
        }

        for b in 0..nb {
            let block = BlockRef(b as u32);
            for &s in adapter.block_succs(block) {
                if s.idx() >= nb {
                    return Err(VerifyError::SuccOutOfRange {
                        func: fi,
                        block: block.0,
                        succ: s.0,
                    });
                }
            }
            for &p in adapter.block_phis(block) {
                define(&mut self.defined, p)?;
                for inc in adapter.phi_incoming(p) {
                    if inc.block.idx() >= nb {
                        return Err(VerifyError::SuccOutOfRange {
                            func: fi,
                            block: block.0,
                            succ: inc.block.0,
                        });
                    }
                    if inc.value.idx() >= nv {
                        return Err(VerifyError::ValueOutOfRange {
                            func: fi,
                            value: inc.value.0,
                        });
                    }
                }
            }
            let insts = adapter.block_insts(block);
            if insts.is_empty() {
                return Err(VerifyError::MissingTerminator {
                    func: fi,
                    block: block.0,
                });
            }
            for (k, &inst) in insts.iter().enumerate() {
                if inst.idx() >= ni {
                    return Err(VerifyError::InstOutOfRange {
                        func: fi,
                        block: block.0,
                        inst: inst.0,
                    });
                }
                if self.seen_inst[inst.idx()] {
                    return Err(VerifyError::DuplicateInst {
                        func: fi,
                        inst: inst.0,
                    });
                }
                self.seen_inst[inst.idx()] = true;
                let last = k + 1 == insts.len();
                match adapter.inst_is_terminator(inst) {
                    Some(true) if !last => {
                        return Err(VerifyError::MisplacedTerminator {
                            func: fi,
                            block: block.0,
                            inst: inst.0,
                        });
                    }
                    Some(false) if last => {
                        return Err(VerifyError::MissingTerminator {
                            func: fi,
                            block: block.0,
                        });
                    }
                    _ => {}
                }
                for &op in adapter.inst_operands(inst) {
                    if op.idx() >= nv {
                        return Err(VerifyError::ValueOutOfRange {
                            func: fi,
                            value: op.0,
                        });
                    }
                }
                for &r in adapter.inst_results(inst) {
                    define(&mut self.defined, r)?;
                }
                if let Some((callee, got)) = adapter.inst_call_target(inst) {
                    if callee.idx() >= adapter.func_count() {
                        return Err(VerifyError::CalleeOutOfRange {
                            func: fi,
                            inst: inst.0,
                            callee: callee.0,
                        });
                    }
                    if let Some(expected) = adapter.func_param_count(callee) {
                        if expected != got {
                            return Err(VerifyError::CallArityMismatch {
                                func: fi,
                                inst: inst.0,
                                callee: callee.0,
                                expected: expected as u32,
                                got: got as u32,
                            });
                        }
                    }
                }
            }
        }

        // ---- pass 2: layout (the analyzer's dominance approximation) ----
        // Safe now: all indices are in range, so the unchecked DFS cannot
        // fault. The analyzer only errors on zero blocks, handled above.
        self.analyzer
            .analyze_into(adapter, &mut self.analysis)
            .map_err(|_| VerifyError::NoBlocks { func: fi })?;

        // ---- pass 3: use-before-def in layout order ----
        // Timestamps increase along the layout; a use is valid iff its
        // definition has a strictly smaller timestamp. Phi-incoming values
        // are uses at the *end* of the incoming block.
        self.def_time.clear();
        self.def_time.resize(nv, UNDEF);
        self.block_end.clear();
        self.block_end.resize(nb, 0);

        let mut t: u32 = 1;
        for &a in adapter.args() {
            self.def_time[a.idx()] = 0;
        }
        for sv in adapter.static_stack_vars() {
            self.def_time[sv.value.idx()] = 0;
        }
        for &block in &self.analysis.layout {
            t += 1;
            for &p in adapter.block_phis(block) {
                self.def_time[p.idx()] = t;
            }
            for &inst in adapter.block_insts(block) {
                t += 1;
                for &op in adapter.inst_operands(inst) {
                    if adapter.val_is_const(op) {
                        continue;
                    }
                    if self.def_time[op.idx()] >= t {
                        return Err(VerifyError::UseBeforeDef {
                            func: fi,
                            block: block.0,
                            value: op.0,
                        });
                    }
                }
                for &r in adapter.inst_results(inst) {
                    self.def_time[r.idx()] = t;
                }
            }
            self.block_end[block.idx()] = t;
        }
        for b in 0..nb {
            let block = BlockRef(b as u32);
            for &p in adapter.block_phis(block) {
                for inc in adapter.phi_incoming(p) {
                    if adapter.val_is_const(inc.value) {
                        continue;
                    }
                    let def = self.def_time[inc.value.idx()];
                    if def == UNDEF || def > self.block_end[inc.block.idx()] {
                        return Err(VerifyError::UseBeforeDef {
                            func: fi,
                            block: inc.block.0,
                            value: inc.value.0,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::{InstRef, Linkage, PhiIncoming, StackVarDesc};
    use crate::regs::RegBank;
    use std::borrow::Cow;

    /// Minimal scriptable adapter: one function, explicit tables.
    #[derive(Default)]
    struct TestIr {
        nvals: usize,
        ninsts: usize,
        args: Vec<ValueRef>,
        stack_vars: Vec<StackVarDesc>,
        succs: Vec<Vec<BlockRef>>,
        insts: Vec<Vec<InstRef>>,
        phis: Vec<Vec<ValueRef>>,
        phi_in: Vec<(ValueRef, Vec<PhiIncoming>)>,
        operands: Vec<Vec<ValueRef>>,
        results: Vec<Vec<ValueRef>>,
        consts: Vec<ValueRef>,
        terms: Vec<Option<bool>>,
    }

    impl IrAdapter for TestIr {
        fn func_count(&self) -> usize {
            1
        }
        fn func_name(&self, _: FuncRef) -> &str {
            "test"
        }
        fn func_linkage(&self, _: FuncRef) -> Linkage {
            Linkage::External
        }
        fn func_is_definition(&self, _: FuncRef) -> bool {
            true
        }
        fn switch_func(&mut self, _: FuncRef) {}
        fn value_count(&self) -> usize {
            self.nvals
        }
        fn inst_count(&self) -> usize {
            self.ninsts
        }
        fn args(&self) -> &[ValueRef] {
            &self.args
        }
        fn static_stack_vars(&self) -> &[StackVarDesc] {
            &self.stack_vars
        }
        fn block_count(&self) -> usize {
            self.succs.len()
        }
        fn block_succs(&self, b: BlockRef) -> &[BlockRef] {
            &self.succs[b.idx()]
        }
        fn block_phis(&self, b: BlockRef) -> &[ValueRef] {
            &self.phis[b.idx()]
        }
        fn block_insts(&self, b: BlockRef) -> &[InstRef] {
            &self.insts[b.idx()]
        }
        fn phi_incoming(&self, phi: ValueRef) -> &[PhiIncoming] {
            &self
                .phi_in
                .iter()
                .find(|(p, _)| *p == phi)
                .expect("phi incoming")
                .1
        }
        fn inst_operands(&self, i: InstRef) -> &[ValueRef] {
            &self.operands[i.idx()]
        }
        fn inst_results(&self, i: InstRef) -> &[ValueRef] {
            &self.results[i.idx()]
        }
        fn val_part_count(&self, _: ValueRef) -> u32 {
            1
        }
        fn val_part_size(&self, _: ValueRef, _: u32) -> u32 {
            8
        }
        fn val_part_bank(&self, _: ValueRef, _: u32) -> RegBank {
            RegBank::GP
        }
        fn val_is_const(&self, v: ValueRef) -> bool {
            self.consts.contains(&v)
        }
        fn val_name(&self, v: ValueRef) -> Cow<'_, str> {
            Cow::Owned(format!("v{}", v.0))
        }
        fn inst_is_terminator(&self, i: InstRef) -> Option<bool> {
            self.terms.get(i.idx()).copied().flatten()
        }
    }

    /// `f(a) { b0: r1 = op a; ret }` — a well-formed two-inst function.
    fn straight_line() -> TestIr {
        TestIr {
            nvals: 2,
            ninsts: 2,
            args: vec![ValueRef(0)],
            succs: vec![vec![]],
            insts: vec![vec![InstRef(0), InstRef(1)]],
            phis: vec![vec![]],
            operands: vec![vec![ValueRef(0)], vec![ValueRef(1)]],
            results: vec![vec![ValueRef(1)], vec![]],
            terms: vec![Some(false), Some(true)],
            ..TestIr::default()
        }
    }

    #[test]
    fn accepts_well_formed_function() {
        let mut ir = straight_line();
        assert_eq!(Verifier::new().verify_module(&mut ir), Ok(()));
    }

    #[test]
    fn rejects_layout_order_violation_but_accepts_back_edge_phi() {
        // b0 -> b1 -> b1 (self loop): phi in b1 takes the loop value from
        // b1 itself (a back edge) — legal. Using the loop value in b0 — not.
        let mut ir = TestIr {
            nvals: 3,
            ninsts: 4,
            args: vec![ValueRef(0)],
            succs: vec![vec![BlockRef(1)], vec![BlockRef(1)]],
            insts: vec![vec![InstRef(0), InstRef(1)], vec![InstRef(2), InstRef(3)]],
            phis: vec![vec![], vec![ValueRef(1)]],
            phi_in: vec![(
                ValueRef(1),
                vec![
                    PhiIncoming {
                        block: BlockRef(0),
                        value: ValueRef(0),
                    },
                    PhiIncoming {
                        block: BlockRef(1),
                        value: ValueRef(2),
                    },
                ],
            )],
            operands: vec![vec![], vec![], vec![ValueRef(1)], vec![]],
            results: vec![vec![], vec![], vec![ValueRef(2)], vec![]],
            terms: vec![Some(false), Some(true), Some(false), Some(true)],
            ..TestIr::default()
        };
        assert_eq!(Verifier::new().verify_module(&mut ir), Ok(()));

        // Now use the loop-defined v2 already in b0: layout-order violation.
        ir.operands[0] = vec![ValueRef(2)];
        assert_eq!(
            Verifier::new().verify_module(&mut ir),
            Err(VerifyError::UseBeforeDef {
                func: 0,
                block: 0,
                value: 2
            })
        );
    }

    #[test]
    fn verifier_buffers_are_reused() {
        let mut v = Verifier::new();
        let mut ir = straight_line();
        assert_eq!(v.verify_module(&mut ir), Ok(()));
        // Second run over the same shapes must not grow buffers.
        let cap = (v.seen_inst.capacity(), v.def_time.capacity());
        assert_eq!(v.verify_module(&mut ir), Ok(()));
        assert_eq!(cap, (v.seen_inst.capacity(), v.def_time.capacity()));
    }
}
