//! Verifier rejection suite: one deliberately-malformed module per
//! [`VerifyError`] variant.
//!
//! Each case asserts two things:
//!
//! 1. the [`Verifier`] reports the *exact* typed error for the defect, and
//! 2. the same module submitted to a [`CompileService`] (whose backend runs
//!    the verifier at admission) answers [`Error::InvalidIr`] carrying that
//!    error's message — without any worker compiling it, panicking over it,
//!    or being respawned.

use std::borrow::Cow;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use tpde_core::adapter::{
    BlockRef, FuncRef, InstRef, IrAdapter, Linkage, PhiIncoming, StackVarDesc, ValueRef,
};
use tpde_core::codebuf::{CodeBuffer, SectionKind, SymbolBinding};
use tpde_core::codegen::{CompileSession, CompileStats, CompiledModule};
use tpde_core::error::{Error, Result};
use tpde_core::regs::RegBank;
use tpde_core::service::{CompileService, Fnv1a, Request, ServiceBackend, ServiceConfig};
use tpde_core::timing::PassTimings;
use tpde_core::verify::{Verifier, VerifyError};

/// A scriptable single-definition mock IR: function 0 is the definition
/// whose tables are spelled out explicitly; functions `1..nfuncs` are
/// declarations that exist only as call targets.
#[derive(Clone, Default)]
struct MockModule {
    nfuncs: usize,
    /// Declared parameter count per function (None = unknown signature).
    param_counts: Vec<Option<usize>>,
    nvals: usize,
    ninsts: usize,
    args: Vec<ValueRef>,
    stack_vars: Vec<StackVarDesc>,
    succs: Vec<Vec<BlockRef>>,
    insts: Vec<Vec<InstRef>>,
    phis: Vec<Vec<ValueRef>>,
    phi_in: Vec<(ValueRef, Vec<PhiIncoming>)>,
    operands: Vec<Vec<ValueRef>>,
    results: Vec<Vec<ValueRef>>,
    /// Terminator classification per instruction (None = unknown).
    terms: Vec<Option<bool>>,
    /// Direct-call info per instruction: (callee, args passed).
    calls: Vec<Option<(FuncRef, usize)>>,
}

impl MockModule {
    /// A minimal well-formed module: `f0() { b0: i0; i1(term) }`.
    fn well_formed() -> MockModule {
        MockModule {
            nfuncs: 1,
            param_counts: vec![Some(0)],
            nvals: 2,
            ninsts: 2,
            succs: vec![vec![]],
            insts: vec![vec![InstRef(0), InstRef(1)]],
            phis: vec![vec![]],
            operands: vec![vec![], vec![ValueRef(0)]],
            results: vec![vec![ValueRef(0)], vec![]],
            terms: vec![Some(false), Some(true)],
            calls: vec![None, None],
            ..MockModule::default()
        }
    }

    fn content_hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        self.nfuncs.hash(&mut h);
        self.nvals.hash(&mut h);
        self.ninsts.hash(&mut h);
        for b in &self.insts {
            for i in b {
                i.0.hash(&mut h);
            }
        }
        for ops in &self.operands {
            for v in ops {
                v.0.hash(&mut h);
            }
        }
        for b in &self.succs {
            for s in b {
                s.0.hash(&mut h);
            }
        }
        h.finish()
    }
}

/// Borrowing adapter over a [`MockModule`] (function 0 is always current).
struct MockAdapter<'m>(&'m MockModule);

impl IrAdapter for MockAdapter<'_> {
    fn func_count(&self) -> usize {
        self.0.nfuncs
    }
    fn func_name(&self, f: FuncRef) -> &str {
        if f.0 == 0 {
            "m"
        } else {
            "decl"
        }
    }
    fn func_linkage(&self, _: FuncRef) -> Linkage {
        Linkage::External
    }
    fn func_is_definition(&self, f: FuncRef) -> bool {
        f.0 == 0
    }
    fn switch_func(&mut self, f: FuncRef) {
        assert_eq!(f.0, 0, "only f0 has a body");
    }
    fn value_count(&self) -> usize {
        self.0.nvals
    }
    fn inst_count(&self) -> usize {
        self.0.ninsts
    }
    fn args(&self) -> &[ValueRef] {
        &self.0.args
    }
    fn static_stack_vars(&self) -> &[StackVarDesc] {
        &self.0.stack_vars
    }
    fn block_count(&self) -> usize {
        self.0.succs.len()
    }
    fn block_succs(&self, b: BlockRef) -> &[BlockRef] {
        &self.0.succs[b.idx()]
    }
    fn block_phis(&self, b: BlockRef) -> &[ValueRef] {
        &self.0.phis[b.idx()]
    }
    fn block_insts(&self, b: BlockRef) -> &[InstRef] {
        &self.0.insts[b.idx()]
    }
    fn phi_incoming(&self, phi: ValueRef) -> &[PhiIncoming] {
        &self
            .0
            .phi_in
            .iter()
            .find(|(p, _)| *p == phi)
            .expect("phi incoming")
            .1
    }
    fn inst_operands(&self, i: InstRef) -> &[ValueRef] {
        &self.0.operands[i.idx()]
    }
    fn inst_results(&self, i: InstRef) -> &[ValueRef] {
        &self.0.results[i.idx()]
    }
    fn val_part_count(&self, _: ValueRef) -> u32 {
        1
    }
    fn val_part_size(&self, _: ValueRef, _: u32) -> u32 {
        8
    }
    fn val_part_bank(&self, _: ValueRef, _: u32) -> RegBank {
        RegBank::GP
    }
    fn val_name(&self, v: ValueRef) -> Cow<'_, str> {
        Cow::Owned(format!("v{}", v.0))
    }
    fn inst_is_terminator(&self, i: InstRef) -> Option<bool> {
        self.0.terms.get(i.idx()).copied().flatten()
    }
    fn inst_call_target(&self, i: InstRef) -> Option<(FuncRef, usize)> {
        self.0.calls.get(i.idx()).copied().flatten()
    }
    fn func_param_count(&self, f: FuncRef) -> Option<usize> {
        self.0.param_counts.get(f.idx()).copied().flatten()
    }
}

/// Service backend that verifies the mock IR at admission; compilation of
/// a verified module just emits a marker byte per instruction.
struct MockBackend;

impl ServiceBackend for MockBackend {
    type Request = Arc<MockModule>;
    type Worker = ();

    fn new_worker(&self) {}

    fn request_key(&self, req: &Arc<MockModule>) -> Option<u64> {
        Some(req.content_hash())
    }

    fn verify(&self, req: &Arc<MockModule>) -> Result<()> {
        let mut a = MockAdapter(req);
        Verifier::new().verify_module(&mut a).map_err(Error::from)
    }

    fn func_count(&self, _req: &Arc<MockModule>) -> usize {
        1
    }

    fn prepare_session(&self, _: &Arc<MockModule>, _: &mut (), _: &mut CompileSession) {}

    fn predeclare(&self, _req: &Arc<MockModule>, buf: &mut CodeBuffer) {
        buf.declare_symbol("m", SymbolBinding::Global, true);
    }

    fn compile_func(
        &self,
        req: &Arc<MockModule>,
        _worker: &mut (),
        _session: &mut CompileSession,
        buf: &mut CodeBuffer,
        _f: u32,
        stats: &mut CompileStats,
        _timings: &mut PassTimings,
    ) -> Result<bool> {
        for _ in 0..req.ninsts {
            buf.emit_u8(0x90);
        }
        stats.funcs += 1;
        Ok(true)
    }

    fn compile_module(
        &self,
        req: &Arc<MockModule>,
        worker: &mut (),
        session: &mut CompileSession,
    ) -> Result<CompiledModule> {
        let mut buf = CodeBuffer::new();
        self.predeclare(req, &mut buf);
        let mut stats = CompileStats::default();
        let mut timings = PassTimings::new();
        let start = buf.text_offset();
        self.compile_func(req, worker, session, &mut buf, 0, &mut stats, &mut timings)?;
        buf.define_symbol(
            tpde_core::codebuf::SymbolId(0),
            SectionKind::Text,
            start,
            buf.text_offset() - start,
        );
        Ok(CompiledModule {
            buf,
            stats,
            timings,
        })
    }
}

fn service() -> CompileService<MockBackend> {
    CompileService::new(
        MockBackend,
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    )
}

/// Asserts both halves of the contract for one malformed module.
fn assert_rejected(m: MockModule, expected: VerifyError) {
    // Typed error from the verifier itself.
    let got = Verifier::new().verify_module(&mut MockAdapter(&m));
    assert_eq!(got, Err(expected), "verifier verdict mismatch");

    // The service answers InvalidIr with the same message, without letting
    // any worker near the module.
    let svc = service();
    let resp = svc.compile(Request::new(Arc::new(m)));
    match resp.module {
        Err(Error::InvalidIr(msg)) => {
            assert_eq!(msg, expected.to_string(), "service error message");
        }
        other => panic!("expected InvalidIr, got {other:?}"),
    }
    let stats = svc.stats();
    assert_eq!(stats.rejected_invalid, 1);
    assert_eq!(stats.panics_backend, 0, "module reached a worker");
    assert_eq!(stats.workers_respawned, 0, "worker was respawned");
    assert_eq!(stats.batched + stats.sharded, 0, "module was scheduled");
}

#[test]
fn well_formed_module_compiles() {
    let svc = service();
    let resp = svc.compile(Request::new(Arc::new(MockModule::well_formed())));
    assert!(resp.module.is_ok());
    let stats = svc.stats();
    assert_eq!(stats.rejected_invalid, 0);
    assert_eq!(stats.panics_backend, 0);
}

#[test]
fn rejects_function_without_blocks() {
    let mut m = MockModule::well_formed();
    m.succs.clear();
    m.insts.clear();
    m.phis.clear();
    assert_rejected(m, VerifyError::NoBlocks { func: 0 });
}

#[test]
fn rejects_successor_out_of_range() {
    let mut m = MockModule::well_formed();
    m.succs[0] = vec![BlockRef(3)];
    assert_rejected(
        m,
        VerifyError::SuccOutOfRange {
            func: 0,
            block: 0,
            succ: 3,
        },
    );
}

#[test]
fn rejects_instruction_out_of_range() {
    let mut m = MockModule::well_formed();
    m.insts[0] = vec![InstRef(0), InstRef(9)];
    assert_rejected(
        m,
        VerifyError::InstOutOfRange {
            func: 0,
            block: 0,
            inst: 9,
        },
    );
}

#[test]
fn rejects_duplicate_instruction() {
    let mut m = MockModule::well_formed();
    m.insts[0] = vec![InstRef(0), InstRef(0)];
    assert_rejected(m, VerifyError::DuplicateInst { func: 0, inst: 0 });
}

#[test]
fn rejects_operand_out_of_range() {
    let mut m = MockModule::well_formed();
    m.operands[1] = vec![ValueRef(7)];
    assert_rejected(m, VerifyError::ValueOutOfRange { func: 0, value: 7 });
}

#[test]
fn rejects_double_definition() {
    let mut m = MockModule::well_formed();
    m.results[1] = vec![ValueRef(0)]; // i1 redefines i0's result
    assert_rejected(m, VerifyError::Redefined { func: 0, value: 0 });
}

#[test]
fn rejects_missing_terminator() {
    let mut m = MockModule::well_formed();
    m.insts[0] = vec![InstRef(0)]; // i0 is a non-terminator
    assert_rejected(m, VerifyError::MissingTerminator { func: 0, block: 0 });
}

#[test]
fn rejects_empty_block() {
    let mut m = MockModule::well_formed();
    m.insts[0] = vec![];
    assert_rejected(m, VerifyError::MissingTerminator { func: 0, block: 0 });
}

#[test]
fn rejects_misplaced_terminator() {
    let mut m = MockModule::well_formed();
    m.terms = vec![Some(true), Some(true)]; // i0 terminates mid-block
    assert_rejected(
        m,
        VerifyError::MisplacedTerminator {
            func: 0,
            block: 0,
            inst: 0,
        },
    );
}

#[test]
fn rejects_use_before_def() {
    let mut m = MockModule::well_formed();
    // i0 uses v1, which only i1 (later in the block) would define.
    m.operands[0] = vec![ValueRef(1)];
    m.operands[1] = vec![];
    m.results = vec![vec![ValueRef(0)], vec![ValueRef(1)]];
    m.terms = vec![Some(false), Some(true)];
    assert_rejected(
        m,
        VerifyError::UseBeforeDef {
            func: 0,
            block: 0,
            value: 1,
        },
    );
}

#[test]
fn rejects_callee_out_of_range() {
    let mut m = MockModule::well_formed();
    m.calls[0] = Some((FuncRef(5), 0));
    assert_rejected(
        m,
        VerifyError::CalleeOutOfRange {
            func: 0,
            inst: 0,
            callee: 5,
        },
    );
}

#[test]
fn rejects_call_arity_mismatch() {
    let mut m = MockModule::well_formed();
    m.nfuncs = 2;
    m.param_counts = vec![Some(0), Some(2)];
    m.calls[0] = Some((FuncRef(1), 3)); // callee wants 2, call passes 3
    assert_rejected(
        m,
        VerifyError::CallArityMismatch {
            func: 0,
            inst: 0,
            callee: 1,
            expected: 2,
            got: 3,
        },
    );
}
