//! Fault-injection suite: arms destructive [`tpde_core::faultpoint`] rules
//! (short reads, hard failures, panics, hangs) against the disk cache and
//! the compile service and asserts the degradation contract — every fault
//! is either absorbed (retry, fallback) or surfaces as an explicit error,
//! and the affected component heals afterwards.
//!
//! Every test wraps *all* of its cache/service activity in an [`arm`]
//! scope. Armed sections are serialized process-wide by the guard, so the
//! destructive rules of one test can never leak into another.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use tpde_core::codebuf::{assert_identical, CodeBuffer, SectionKind, SymbolBinding, SymbolId};
use tpde_core::codegen::{CompileSession, CompileStats, CompiledModule};
use tpde_core::diskcache::{DiskCache, DiskCacheConfig};
use tpde_core::error::{Error, Result};
use tpde_core::faultpoint::{arm, sites, FaultAction, FaultRule};
use tpde_core::service::{CompileService, Fnv1a, Request, ServiceBackend, ServiceConfig};
use tpde_core::timing::PassTimings;

// --------------------------------------------------------------------------
// Helpers
// --------------------------------------------------------------------------

/// A fresh, empty temp directory unique to `tag`.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tpde-resilience-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn cache(dir: &Path) -> DiskCache {
    DiskCache::open(DiskCacheConfig::new(dir)).unwrap()
}

/// A small but non-trivial module to store and reload.
fn sample_module() -> CompiledModule {
    let mut buf = CodeBuffer::new();
    let f = buf.declare_symbol("func", SymbolBinding::Global, true);
    buf.emit_slice(&[0x55, 0x48, 0x89, 0xe5, 0xc3]);
    buf.define_symbol(f, SectionKind::Text, 0, 5);
    buf.append(SectionKind::ROData, b"resilience");
    CompiledModule {
        buf,
        stats: CompileStats {
            funcs: 1,
            insts: 3,
            ..CompileStats::default()
        },
        timings: PassTimings::new(),
    }
}

/// A toy service backend over the public API: a "module" is a list of
/// byte-sized functions, each emitting its payload byte and its index.
struct ToyBackend;

struct ToyModule {
    data: Vec<u8>,
}

fn toy(data: Vec<u8>) -> Arc<ToyModule> {
    Arc::new(ToyModule { data })
}

impl ServiceBackend for ToyBackend {
    type Request = Arc<ToyModule>;
    type Worker = ();

    fn new_worker(&self) {}

    fn request_key(&self, req: &Arc<ToyModule>) -> Option<u64> {
        use std::hash::{Hash, Hasher};
        let mut h = Fnv1a::new();
        req.data.hash(&mut h);
        Some(h.finish())
    }

    fn func_count(&self, req: &Arc<ToyModule>) -> usize {
        req.data.len()
    }

    fn prepare_session(&self, _req: &Arc<ToyModule>, _w: &mut (), _s: &mut CompileSession) {}

    fn predeclare(&self, req: &Arc<ToyModule>, buf: &mut CodeBuffer) {
        for i in 0..req.data.len() {
            buf.declare_symbol(&format!("f{i}"), SymbolBinding::Global, true);
        }
    }

    fn compile_func(
        &self,
        req: &Arc<ToyModule>,
        _w: &mut (),
        _s: &mut CompileSession,
        buf: &mut CodeBuffer,
        f: u32,
        stats: &mut CompileStats,
        _t: &mut PassTimings,
    ) -> Result<bool> {
        buf.emit_u8(req.data[f as usize]);
        buf.emit_u8(f as u8);
        stats.funcs += 1;
        Ok(true)
    }

    fn compile_module(
        &self,
        req: &Arc<ToyModule>,
        worker: &mut (),
        session: &mut CompileSession,
    ) -> Result<CompiledModule> {
        let mut buf = CodeBuffer::new();
        self.predeclare(req, &mut buf);
        let mut stats = CompileStats::default();
        let mut timings = PassTimings::new();
        for f in 0..req.data.len() as u32 {
            let start = buf.text_offset();
            self.compile_func(req, worker, session, &mut buf, f, &mut stats, &mut timings)?;
            buf.define_symbol(
                SymbolId(f),
                SectionKind::Text,
                start,
                buf.text_offset() - start,
            );
        }
        Ok(CompiledModule {
            buf,
            stats,
            timings,
        })
    }
}

fn toy_service(cfg: ServiceConfig) -> CompileService<ToyBackend> {
    CompileService::new(ToyBackend, cfg)
}

// --------------------------------------------------------------------------
// Disk cache under injected faults
// --------------------------------------------------------------------------

#[test]
fn transient_read_faults_are_retried_and_absorbed() {
    let dir = temp_dir("transient-retried");
    let module = sample_module();
    let _g = arm(vec![
        // Two transient errors on the first two read attempts; the third
        // attempt succeeds within the retry budget.
        FaultRule::new(sites::DISK_READ, FaultAction::Transient).limit(2),
    ]);
    let store = cache(&dir);
    store.store(1, &module).unwrap();
    let loaded = store.load(1).expect("transient faults must be retried");
    assert_identical(&module.buf, &loaded.buf, "after transient retries");
    assert!(store.io_retries() >= 2, "retries must be counted");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn exhausted_transient_faults_miss_without_unlinking() {
    let dir = temp_dir("transient-exhausted");
    let module = sample_module();
    let store = {
        let _g = arm(Vec::new());
        let store = cache(&dir);
        store.store(2, &module).unwrap();
        store
    };
    {
        // Every read attempt fails transiently: the retry budget runs out.
        let _g = arm(vec![FaultRule::new(
            sites::DISK_READ,
            FaultAction::Transient,
        )]);
        assert!(store.load(2).is_none(), "exhausted retries are a miss");
    }
    // The artifact was NOT treated as corrupt: once the interference stops
    // it loads again, no recompile-and-heal needed.
    let _g = arm(Vec::new());
    assert!(store.contains(2), "transient failure must not unlink");
    let loaded = store.load(2).expect("artifact intact after the storm");
    assert_identical(&module.buf, &loaded.buf, "after exhausted transients");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn mmap_failure_falls_back_to_heap_buffers() {
    let dir = temp_dir("mmap-fallback");
    let module = sample_module();
    let _g = arm(vec![FaultRule::new(sites::DISK_MMAP, FaultAction::Fail)]);
    let store = cache(&dir);
    store.store(3, &module).unwrap();
    let artifact = store.open_artifact(3).expect("open via heap fallback");
    assert!(!artifact.is_mapped(), "mmap fault must force the heap path");
    let loaded = artifact.to_module().unwrap();
    assert_identical(&module.buf, &loaded.buf, "heap-backed artifact");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn short_read_is_caught_as_corruption_and_heals() {
    let dir = temp_dir("short-read");
    let module = sample_module();
    let store = {
        let _g = arm(Vec::new());
        let store = cache(&dir);
        store.store(4, &module).unwrap();
        store
    };
    {
        // Force the heap path (short reads only exist there), then truncate
        // the buffered bytes: the payload-length/hash verification must
        // reject the artifact rather than serve half a module.
        let _g = arm(vec![
            FaultRule::new(sites::DISK_MMAP, FaultAction::Fail),
            FaultRule::new(sites::DISK_SHORT_READ, FaultAction::Short),
        ]);
        assert!(store.load(4).is_none(), "short read must never verify");
    }
    // Treated as corruption: unlinked, and the next store heals it.
    let _g = arm(Vec::new());
    assert!(!store.contains(4), "corrupt artifact is unlinked");
    assert!(store.store(4, &module).unwrap());
    assert_identical(&module.buf, &store.load(4).unwrap().buf, "healed");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn hard_rename_failure_degrades_the_store_not_the_answer() {
    let dir = temp_dir("rename-fail");
    let module = sample_module();
    {
        let _g = arm(vec![FaultRule::new(sites::DISK_RENAME, FaultAction::Fail)]);
        let store = cache(&dir);
        let err = store.store(5, &module).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        assert!(!store.contains(5), "failed publish leaves no artifact");
        assert!(store.load(5).is_none(), "and the key simply misses");
    }
    // Disarmed, the same store succeeds — the failure was not sticky.
    let _g = arm(Vec::new());
    let store = cache(&dir);
    assert!(store.store(5, &module).unwrap());
    assert_identical(&module.buf, &store.load(5).unwrap().buf, "recovered");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn transient_rename_faults_are_retried() {
    let dir = temp_dir("rename-transient");
    let module = sample_module();
    let _g = arm(vec![FaultRule::new(
        sites::DISK_RENAME,
        FaultAction::Transient,
    )
    .limit(2)]);
    let store = cache(&dir);
    assert!(
        store.store(6, &module).unwrap(),
        "publish absorbs transients"
    );
    assert!(store.io_retries() >= 2);
    assert_identical(&module.buf, &store.load(6).unwrap().buf, "stored");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn flock_contention_delay_only_adds_latency() {
    let dir = temp_dir("flock-delay");
    let module = sample_module();
    let _g = arm(vec![FaultRule::new(
        sites::DISK_FLOCK,
        FaultAction::Delay(Duration::from_millis(2)),
    )]);
    let store = cache(&dir);
    store.store(7, &module).unwrap();
    assert_identical(
        &module.buf,
        &store.load(7).unwrap().buf,
        "despite lock delay",
    );
    let _ = fs::remove_dir_all(&dir);
}

// --------------------------------------------------------------------------
// Service worker loop under injected faults
// --------------------------------------------------------------------------

#[test]
fn injected_merge_panic_answers_the_ticket_and_the_pool_recovers() {
    let _g = arm(vec![FaultRule::new(
        sites::WORKER_MERGE,
        FaultAction::Panic,
    )
    .limit(1)]);
    let svc = toy_service(ServiceConfig {
        workers: 2,
        shard_threshold: 4,
        cache_capacity: 8,
        ..ServiceConfig::default()
    });
    let m = toy((0..16).collect());
    let r = svc.compile(Request::new(Arc::clone(&m)));
    let err = format!("{}", r.module.unwrap_err());
    assert!(err.contains("panicked"), "unexpected error: {err}");
    // The panic fired at the merge, past the per-shard catch regions: the
    // ticket still resolved, the collect mutex is unpoisoned, and the same
    // request now compiles correctly (the limit-1 rule is spent).
    let again = svc.compile(Request::new(Arc::clone(&m))).module.unwrap();
    let reference = ToyBackend
        .compile_module(&m, &mut (), &mut CompileSession::new())
        .unwrap();
    assert_identical(&reference.buf, &again.buf, "after merge panic");
}

#[test]
fn injected_shard_panic_at_chosen_function_is_contained() {
    let _g = arm(vec![FaultRule::new(sites::WORKER_FUNC, FaultAction::Panic)
        .at_index(5)
        .limit(1)]);
    let svc = toy_service(ServiceConfig {
        workers: 2,
        shard_threshold: 4,
        cache_capacity: 8,
        ..ServiceConfig::default()
    });
    let m = toy((0..16).collect());
    let err = format!(
        "{}",
        svc.compile(Request::new(Arc::clone(&m)))
            .module
            .unwrap_err()
    );
    assert!(
        err.contains("panicked") && err.contains("service.func"),
        "unexpected error: {err}"
    );
    let again = svc.compile(Request::new(Arc::clone(&m))).module.unwrap();
    let reference = ToyBackend
        .compile_module(&m, &mut (), &mut CompileSession::new())
        .unwrap();
    assert_identical(&reference.buf, &again.buf, "after shard panic");
}

#[test]
fn injected_hang_is_condemned_by_the_watchdog() {
    let _g = arm(vec![
        // Index 0 is the single-job probe position; the delay lands inside
        // the compile, after the start-of-job heartbeat, so the heartbeat
        // goes stale and the watchdog must poison the ticket.
        FaultRule::new(
            sites::WORKER_JOB,
            FaultAction::Delay(Duration::from_millis(250)),
        )
        .at_index(0)
        .limit(1),
    ]);
    let svc = toy_service(ServiceConfig {
        workers: 1,
        shard_threshold: 100,
        cache_capacity: 8,
        hang_timeout: Some(Duration::from_millis(40)),
        ..ServiceConfig::default()
    });
    let r = svc.compile(Request::new(toy(vec![1, 2, 3])));
    assert!(matches!(r.module.unwrap_err(), Error::Timeout(_)));
    let stats = svc.stats();
    assert!(stats.watchdog_timeouts >= 1);
    assert!(stats.workers_respawned >= 1);
    // The respawned worker serves the next request normally.
    assert!(svc.compile(Request::new(toy(vec![4, 5, 6]))).module.is_ok());
}

// --------------------------------------------------------------------------
// Submission ring under injected faults
// --------------------------------------------------------------------------

/// Shutdown under load with delayed ring publishes: `Drop` must drain the
/// ring — including slots claimed but not yet published at close time — and
/// answer every outstanding ticket instead of leaving waiters hung.
#[test]
fn drop_under_load_with_delayed_publishes_loses_no_ticket() {
    let _g = arm(vec![
        // Stretch the claim→publish window on every other push so shutdown
        // races against slots that are claimed but not yet visible.
        FaultRule::new(
            sites::RING_PUBLISH,
            FaultAction::Delay(Duration::from_micros(300)),
        )
        .every(2),
        // Slow each compile enough that a deep backlog survives to Drop.
        FaultRule::new(
            sites::WORKER_JOB,
            FaultAction::Delay(Duration::from_millis(10)),
        ),
    ]);
    let svc = Arc::new(toy_service(ServiceConfig {
        workers: 2,
        shard_threshold: 100,
        cache_capacity: 0,
        ..ServiceConfig::default()
    }));
    const THREADS: usize = 4;
    const PER_THREAD: usize = 8;
    let (tx, rx) = std::sync::mpsc::channel();
    for t in 0..THREADS {
        let svc = Arc::clone(&svc);
        let tx = tx.clone();
        std::thread::spawn(move || {
            for i in 0..PER_THREAD {
                // Payload unique per (thread, index): no two submissions
                // coalesce, so the ring sees the full load.
                let m = toy(vec![t as u8, i as u8, 0x5A]);
                let ticket = svc.submit(Request::new(Arc::clone(&m)));
                tx.send((m, ticket)).unwrap();
            }
            // Dropping this clone last runs the service's Drop while the
            // backlog is still deep.
            drop(svc);
        });
    }
    drop(tx);
    drop(svc);
    let mut answered = 0usize;
    for (m, t) in rx {
        let r = t
            .by_ref()
            .wait_timeout(Duration::from_secs(30))
            .expect("ticket lost across shutdown");
        match r.module {
            Ok(got) => {
                let reference = ToyBackend
                    .compile_module(&m, &mut (), &mut CompileSession::new())
                    .unwrap();
                assert_identical(&reference.buf, &got.buf, "drained under faults");
            }
            // A request cut off by shutdown must say so explicitly.
            Err(e) => assert!(
                format!("{e}").contains("shut down"),
                "unexpected error class: {e}"
            ),
        }
        answered += 1;
    }
    assert_eq!(answered, THREADS * PER_THREAD);
}

/// A full (or fault-failed) ring push must spill to the fallback mutex
/// queue, not drop the request: every compile still completes identically
/// and the spills are visible in the stats.
#[test]
fn ring_full_spills_to_fallback_queue() {
    let _g = arm(vec![FaultRule::new(sites::RING_FULL, FaultAction::Fail)]);
    let svc = toy_service(ServiceConfig {
        workers: 2,
        shard_threshold: 100,
        cache_capacity: 0,
        ..ServiceConfig::default()
    });
    for i in 0..8u8 {
        let m = toy(vec![i, i.wrapping_add(1)]);
        let got = svc.compile(Request::new(Arc::clone(&m))).module.unwrap();
        let reference = ToyBackend
            .compile_module(&m, &mut (), &mut CompileSession::new())
            .unwrap();
        assert_identical(&reference.buf, &got.buf, "spilled submission");
    }
    let stats = svc.stats();
    assert_eq!(stats.completed, 8);
    assert!(
        stats.ring_fallbacks >= 8,
        "expected every push to spill, saw {}",
        stats.ring_fallbacks
    );
}

/// A lost wakeup (the notify itself is swallowed) may add latency but not
/// lose work: the parker's bounded park timeout picks the job up.
#[test]
fn lost_wakeups_are_bounded_by_the_park_timeout() {
    let _g = arm(vec![FaultRule::new(sites::RING_WAKEUP, FaultAction::Fail)]);
    let svc = toy_service(ServiceConfig {
        workers: 1,
        shard_threshold: 100,
        cache_capacity: 0,
        ..ServiceConfig::default()
    });
    for i in 0..4u8 {
        let m = toy(vec![0xB0, i]);
        let r = svc
            .submit(Request::new(Arc::clone(&m)))
            .by_ref()
            .wait_timeout(Duration::from_secs(10))
            .expect("lost wakeup must not lose the job");
        let reference = ToyBackend
            .compile_module(&m, &mut (), &mut CompileSession::new())
            .unwrap();
        assert_identical(&reference.buf, &r.module.unwrap().buf, "lost wakeup");
    }
    assert_eq!(svc.stats().completed, 4);
}
