//! Round-trip and corruption-handling tests of the persistent artifact
//! store: every way an artifact can be damaged must degrade to a cache miss
//! (fall back to compile), never to a wrong answer.

use std::fs;
use std::path::{Path, PathBuf};
use tpde_core::codebuf::{
    assert_identical, CodeBuffer, Reloc, RelocKind, SectionKind, SymbolBinding,
};
use tpde_core::codegen::{CompileStats, CompiledModule};
use tpde_core::diskcache::{DiskCache, DiskCacheConfig};
use tpde_core::jit::link_in_memory;
use tpde_core::timing::PassTimings;

/// A fresh, empty temp directory unique to `tag`.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tpde-diskcache-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn cache(dir: &Path) -> DiskCache {
    DiskCache::open(DiskCacheConfig::new(dir)).unwrap()
}

/// A module exercising every serialized feature: all three byte-carrying
/// sections, a `.bss` reservation, defined/undefined symbols of every
/// binding, function and data symbols, and several relocation kinds.
fn sample_module() -> CompiledModule {
    let mut buf = CodeBuffer::new();
    let f = buf.declare_symbol("func", SymbolBinding::Global, true);
    let helper = buf.declare_symbol("helper.local", SymbolBinding::Local, true);
    let weak = buf.declare_symbol("weak_data", SymbolBinding::Weak, false);
    let external = buf.declare_symbol("memset", SymbolBinding::Global, true);
    buf.emit_slice(&[0x55, 0x48, 0x89, 0xe5, 0xe8, 0, 0, 0, 0, 0xc3]);
    buf.define_symbol(f, SectionKind::Text, 0, 10);
    buf.add_reloc(Reloc {
        section: SectionKind::Text,
        offset: 5,
        symbol: external,
        kind: RelocKind::Pc32,
        addend: -4,
    });
    buf.emit_u8(0xc3);
    buf.define_symbol(helper, SectionKind::Text, 10, 1);
    let doff = buf.append(SectionKind::Data, &[1, 2, 3, 4, 5, 6, 7, 8]);
    buf.define_symbol(weak, SectionKind::Data, doff, 8);
    buf.add_reloc(Reloc {
        section: SectionKind::Data,
        offset: doff,
        symbol: f,
        kind: RelocKind::Abs64,
        addend: 0,
    });
    buf.append(SectionKind::ROData, b"constant pool bytes");
    buf.reserve_bss(64, 1);
    buf.set_symbol_size(external, 0);
    CompiledModule {
        buf,
        stats: CompileStats {
            funcs: 2,
            blocks: 3,
            insts: 11,
            spills: 1,
            reloads: 2,
            moves: 4,
        },
        timings: PassTimings::new(),
    }
}

/// Path of the single artifact in `dir`.
fn artifact_file(dir: &Path) -> PathBuf {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "tpdeart"))
        .collect();
    assert_eq!(files.len(), 1, "expected exactly one artifact in {dir:?}");
    files.pop().unwrap()
}

#[test]
fn round_trip_is_byte_identical() {
    let dir = temp_dir("roundtrip");
    let store = cache(&dir);
    let module = sample_module();
    assert!(store.store(7, &module).unwrap());
    assert!(store.contains(7));
    // A repeated store of the same key skips the write.
    assert!(!store.store(7, &module).unwrap());

    let loaded = store.load(7).expect("artifact should load");
    assert_identical(&module.buf, &loaded.buf, "disk round trip");
    assert_eq!(module.stats.funcs, loaded.stats.funcs);
    assert_eq!(module.stats.insts, loaded.stats.insts);
    assert_eq!(module.stats.moves, loaded.stats.moves);
    loaded.validate().unwrap();

    // A second cache instance over the same directory (a stand-in for a
    // second process) sees the artifact too.
    let other = cache(&dir);
    let again = other.load(7).expect("shared store");
    assert_identical(&module.buf, &again.buf, "second cache instance");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn mmap_view_links_identically_to_the_buffer() {
    let dir = temp_dir("linkview");
    let store = cache(&dir);
    let module = sample_module();
    store.store(9, &module).unwrap();
    let artifact = store.open_artifact(9).expect("verified artifact");
    #[cfg(unix)]
    assert!(artifact.is_mapped(), "unix should serve artifacts by mmap");
    // Zero-copy link straight off the mapping vs. a link of the original
    // buffer: identical images.
    let from_disk = link_in_memory(&artifact, 0x40_0000, |_| None).unwrap();
    let from_buf = link_in_memory(&module.buf, 0x40_0000, |_| None).unwrap();
    assert_eq!(from_disk.fingerprint(), from_buf.fingerprint());
    assert_eq!(from_disk.text_size(), from_buf.text_size());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_artifact_is_a_miss() {
    let dir = temp_dir("truncated");
    let store = cache(&dir);
    let module = sample_module();
    store.store(1, &module).unwrap();
    let path = artifact_file(&dir);
    let len = fs::metadata(&path).unwrap().len();
    fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .unwrap()
        .set_len(len / 2)
        .unwrap();
    assert!(store.load(1).is_none(), "truncated artifact must miss");
    assert!(!path.exists(), "corrupt artifact should be unlinked");
    // The store heals: the next store rewrites, the next load hits.
    assert!(store.store(1, &module).unwrap());
    assert_identical(&module.buf, &store.load(1).unwrap().buf, "healed");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn flipped_section_byte_is_a_miss() {
    let dir = temp_dir("bitflip");
    let store = cache(&dir);
    store.store(2, &sample_module()).unwrap();
    let path = artifact_file(&dir);
    let mut bytes = fs::read(&path).unwrap();
    // Flip one bit inside the payload (first .text byte lives at 64 + 8).
    bytes[64 + 8] ^= 0x40;
    fs::write(&path, &bytes).unwrap();
    assert!(store.load(2).is_none(), "hash must catch a flipped byte");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stale_format_version_is_a_miss() {
    let dir = temp_dir("version");
    let store = cache(&dir);
    store.store(3, &sample_module()).unwrap();
    let path = artifact_file(&dir);
    let mut bytes = fs::read(&path).unwrap();
    bytes[0x08] = bytes[0x08].wrapping_add(1); // format version field
    fs::write(&path, &bytes).unwrap();
    assert!(store.load(3).is_none(), "future/stale version must miss");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stored_hash_mismatch_is_a_miss() {
    let dir = temp_dir("hash");
    let store = cache(&dir);
    store.store(4, &sample_module()).unwrap();
    let path = artifact_file(&dir);
    let mut bytes = fs::read(&path).unwrap();
    bytes[0x20] ^= 0xff; // stored payload hash
    fs::write(&path, &bytes).unwrap();
    assert!(store.load(4).is_none());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn key_mismatch_is_a_miss() {
    let dir = temp_dir("key");
    let store = cache(&dir);
    store.store(5, &sample_module()).unwrap();
    // Masquerade the artifact as key 6: the header still says 5.
    let path = artifact_file(&dir);
    fs::rename(&path, dir.join(format!("{:016x}.tpdeart", 6u64))).unwrap();
    assert!(store.load(6).is_none(), "header key must match the request");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn hash_consistent_but_invalid_module_is_a_miss() {
    let dir = temp_dir("invalid");
    let store = cache(&dir);
    // A well-formed, correctly hashed artifact whose module is structurally
    // bogus: a relocation field reaching past the end of .text. Every
    // byte-level check passes; CompiledModule::validate must reject it.
    let mut module = sample_module();
    module.buf.add_reloc(Reloc {
        section: SectionKind::Text,
        offset: 9, // text is 11 bytes; an 8-byte Abs64 field would end at 17
        symbol: tpde_core::codebuf::SymbolId(0),
        kind: RelocKind::Abs64,
        addend: 0,
    });
    store.store(8, &module).unwrap();
    assert!(module.validate().is_err());
    assert!(store.load(8).is_none(), "validate() must gate every load");
    assert!(!store.contains(8), "invalid artifact should be unlinked");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn eviction_respects_the_size_bound_and_recency() {
    let dir = temp_dir("evict");
    let module = sample_module();
    let one_size = tpde_core::diskcache::serialize_module(0, &module).len() as u64;
    let store = DiskCache::open(DiskCacheConfig {
        dir: dir.clone(),
        max_bytes: 2 * one_size, // room for two artifacts
    })
    .unwrap();
    store.store(1, &module).unwrap();
    store.store(2, &module).unwrap();
    store.load(1).unwrap(); // refresh 1; 2 is now least recently used
    store.store(3, &module).unwrap(); // must evict 2
    assert!(store.contains(1), "recently used artifact survives");
    assert!(!store.contains(2), "LRU artifact is evicted");
    assert!(store.contains(3), "just-stored artifact survives");
    assert!(store.total_bytes() <= 2 * one_size);
    assert_eq!(store.artifact_count(), 2);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn lost_index_resets_recency_not_correctness() {
    let dir = temp_dir("lostindex");
    let store = cache(&dir);
    let module = sample_module();
    store.store(11, &module).unwrap();
    fs::remove_file(dir.join("index.tpde")).unwrap();
    // Artifact presence is the source of truth: loads still hit, stores
    // still dedup, and the index is rebuilt as a side effect.
    assert_identical(&module.buf, &store.load(11).unwrap().buf, "no index");
    assert!(!store.store(11, &module).unwrap());
    assert!(dir.join("index.tpde").exists(), "index rebuilt");
    let _ = fs::remove_dir_all(&dir);
}
