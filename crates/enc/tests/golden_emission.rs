//! Differential golden test for the instruction encoders.
//!
//! The catalogue below invokes every public encoder function of
//! `tpde_enc::x64` and `tpde_enc::a64` across a spread of operand shapes
//! (sizes, low/high registers, addressing modes, immediate widths, forward
//! and backward branches). The resulting text bytes are compared against
//! checked-in golden files captured from the seed byte-at-a-time encoders,
//! proving that the batched-write emission layer produces byte-identical
//! machine code.
//!
//! Regenerate the goldens (only when intentionally changing encodings) with
//! `BLESS_GOLDEN=1 cargo test -p tpde-enc --test golden_emission`.

use tpde_core::codebuf::{CodeBuffer, FixupKind, SymbolBinding};
use tpde_enc::{a64, x64};
use x64::{Alu, Cond, Gp, Mem, Shift, Xmm};

fn x64_catalogue(buf: &mut CodeBuffer) {
    let regs = [
        Gp::RAX,
        Gp::RCX,
        Gp::RSI,
        Gp::RDI,
        Gp::RSP,
        Gp::RBP,
        Gp::R8,
        Gp::R13,
        Gp::R15,
    ];
    let mems = [
        Mem::base(Gp::RAX),
        Mem::base(Gp::RSP),
        Mem::base(Gp::RBP),
        Mem::base(Gp::R13),
        Mem::base_disp(Gp::RBP, -8),
        Mem::base_disp(Gp::RSP, 16),
        Mem::base_disp(Gp::RAX, -0x1000),
        Mem::base_disp(Gp::R12, 0x7fff_0000),
        Mem::sib(Gp::RDI, Gp::RSI, 8, 0),
        Mem::sib(Gp::RAX, Gp::RCX, 4, 3),
        Mem::sib(Gp::R12, Gp::R9, 2, 0x100),
        Mem::sib(Gp::RBP, Gp::R15, 1, -64),
    ];
    let sizes = [1u32, 2, 4, 8];
    let conds = [
        Cond::O,
        Cond::NO,
        Cond::B,
        Cond::AE,
        Cond::E,
        Cond::NE,
        Cond::BE,
        Cond::A,
        Cond::S,
        Cond::NS,
        Cond::P,
        Cond::NP,
        Cond::L,
        Cond::GE,
        Cond::LE,
        Cond::G,
    ];
    let alus = [
        Alu::Add,
        Alu::Or,
        Alu::Adc,
        Alu::Sbb,
        Alu::And,
        Alu::Sub,
        Alu::Xor,
        Alu::Cmp,
    ];

    // moves
    for &size in &sizes {
        for (i, &dst) in regs.iter().enumerate() {
            let src = regs[(i + 3) % regs.len()];
            x64::mov_rr(buf, size, dst, src);
        }
    }
    for &imm in &[
        0u64,
        42,
        0x7fff_ffff,
        0x8000_0000,
        (-1i64) as u64,
        0x1234_5678_9abc_def0,
    ] {
        for &size in &[4u32, 8] {
            x64::mov_ri(buf, size, Gp::RAX, imm);
            x64::mov_ri(buf, size, Gp::R9, imm);
        }
    }
    for &size in &sizes {
        for &mem in &mems {
            x64::mov_rm(buf, size, Gp::RDX, mem);
            x64::mov_rm(buf, size, Gp::R10, mem);
            x64::mov_mr(buf, size, mem, Gp::RDX);
            x64::mov_mr(buf, size, mem, Gp::R10);
            x64::mov_mi(buf, size, mem, -2);
        }
    }
    for &from in &[1u32, 2] {
        x64::movzx_rr(buf, Gp::RAX, Gp::RSI, from);
        x64::movzx_rr(buf, Gp::R9, Gp::RDI, from);
        x64::movzx_rm(buf, Gp::RCX, mems[4], from);
        x64::movzx_rm(buf, Gp::R11, mems[8], from);
    }
    for &to in &[4u32, 8] {
        for &from in &[1u32, 2, 4] {
            x64::movsx_rr(buf, to, Gp::RAX, Gp::RSI, from);
            x64::movsx_rm(buf, to, Gp::R9, mems[5], from);
        }
    }
    for &mem in &mems {
        x64::lea(buf, Gp::RAX, mem);
        x64::lea(buf, Gp::R14, mem);
    }

    // ALU
    for &op in &alus {
        for &size in &sizes {
            x64::alu_rr(buf, op, size, Gp::RAX, Gp::RCX);
            x64::alu_rr(buf, op, size, Gp::R8, Gp::R9);
            x64::alu_ri(buf, op, size, Gp::RDX, 7);
            x64::alu_ri(buf, op, size, Gp::RDX, 0x200);
            x64::alu_ri(buf, op, size, Gp::R12, -1);
            x64::alu_rm(buf, op, size, Gp::RSI, mems[4]);
            x64::alu_mr(buf, op, size, mems[8], Gp::RDI);
        }
    }
    for &size in &sizes {
        x64::test_rr(buf, size, Gp::RAX, Gp::RBX);
        x64::test_ri(buf, size, Gp::RSI, 5);
        x64::imul_rr(buf, size, Gp::RAX, Gp::RCX);
        x64::imul_rri(buf, size, Gp::RAX, Gp::RCX, 10);
        x64::imul_rri(buf, size, Gp::R8, Gp::RCX, 1000);
        x64::neg(buf, size, Gp::RDI);
        x64::not(buf, size, Gp::R11);
        x64::mul_unsigned(buf, size, Gp::RCX);
        x64::imul_wide(buf, size, Gp::RCX);
        x64::div(buf, size, Gp::RSI);
        x64::idiv(buf, size, Gp::R9);
    }
    x64::cqo(buf, 4);
    x64::cqo(buf, 8);
    for kind in [Shift::Shl, Shift::Shr, Shift::Sar, Shift::Rol, Shift::Ror] {
        for &size in &sizes {
            x64::shift_ri(buf, kind, size, Gp::RAX, 1);
            x64::shift_ri(buf, kind, size, Gp::R10, 13);
            x64::shift_cl(buf, kind, size, Gp::RDX);
        }
    }
    for &cc in &conds {
        x64::setcc(buf, cc, Gp::RAX);
        x64::setcc(buf, cc, Gp::RSI);
        x64::setcc(buf, cc, Gp::R9);
        x64::cmovcc(buf, cc, 4, Gp::RAX, Gp::RCX);
        x64::cmovcc(buf, cc, 8, Gp::R8, Gp::R15);
    }

    // control flow: forward and backward branches
    let back = buf.new_label();
    buf.bind_label(back);
    x64::nops(buf, 3);
    let fwd = buf.new_label();
    x64::jmp_label(buf, fwd);
    x64::jmp_label(buf, back);
    for &cc in &conds {
        x64::jcc_label(buf, cc, fwd);
        x64::jcc_label(buf, cc, back);
    }
    buf.bind_label(fwd);
    x64::jmp_reg(buf, Gp::RAX);
    x64::jmp_reg(buf, Gp::R11);
    let sym = buf.declare_symbol("ext_fn", SymbolBinding::Global, true);
    x64::call_sym(buf, sym);
    x64::call_reg(buf, Gp::RAX);
    x64::call_reg(buf, Gp::R11);
    x64::ret(buf);
    for &r in &regs {
        if r != Gp::RSP {
            x64::push_r(buf, r);
            x64::pop_r(buf, r);
        }
    }
    x64::nops(buf, 5);
    let data = buf.declare_symbol("ext_data", SymbolBinding::Global, false);
    x64::mov_sym_abs(buf, Gp::RDI, data, 8);

    // SSE scalar floating point
    let xs = [Xmm(0), Xmm(1), Xmm(7), Xmm(8), Xmm(15)];
    for &size in &[4u32, 8] {
        for (i, &dst) in xs.iter().enumerate() {
            let src = xs[(i + 2) % xs.len()];
            x64::fp_mov_rr(buf, size, dst, src);
            x64::fp_ucomis(buf, size, dst, src);
            x64::fp_xor(buf, size, dst, src);
            x64::cvt_fp_to_fp(buf, if size == 4 { 8 } else { 4 }, dst, src);
            for &opc in &[0x58u8, 0x5c, 0x59, 0x5e, 0x51] {
                x64::fp_arith(buf, size, opc, dst, src);
            }
        }
        for &mem in &mems {
            x64::fp_load(buf, size, Xmm(3), mem);
            x64::fp_load(buf, size, Xmm(12), mem);
            x64::fp_store(buf, size, mem, Xmm(3));
            x64::fp_store(buf, size, mem, Xmm(12));
            x64::sse_rm(buf, 0xf2, 0x58, Xmm(9), mem);
        }
        x64::sse_rr(buf, 0x66, 0x2e, Xmm(2), Xmm(11));
        for &int_size in &[4u32, 8] {
            x64::cvt_int_to_fp(buf, size, int_size, Xmm(0), Gp::RAX);
            x64::cvt_int_to_fp(buf, size, int_size, Xmm(9), Gp::R10);
            x64::cvt_fp_to_int(buf, size, int_size, Gp::RAX, Xmm(0));
            x64::cvt_fp_to_int(buf, size, int_size, Gp::R10, Xmm(9));
        }
    }
    x64::movq_xr(buf, Xmm(0), Gp::RAX);
    x64::movq_xr(buf, Xmm(9), Gp::R10);
    x64::movq_rx(buf, Gp::RAX, Xmm(0));
    x64::movq_rx(buf, Gp::R10, Xmm(9));

    buf.resolve_fixups().expect("all labels bound");
}

fn a64_catalogue(buf: &mut CodeBuffer) {
    use a64::{Cond, FpOp, ShiftOp, FP, LR, SP, ZR};
    let conds = [
        Cond::Eq,
        Cond::Ne,
        Cond::Hs,
        Cond::Lo,
        Cond::Mi,
        Cond::Pl,
        Cond::Vs,
        Cond::Vc,
        Cond::Hi,
        Cond::Ls,
        Cond::Ge,
        Cond::Lt,
        Cond::Gt,
        Cond::Le,
        Cond::Al,
    ];
    for &is64 in &[false, true] {
        for &(rd, rn, rm) in &[(0u8, 1u8, 2u8), (3, 29, 15), (19, 28, 9)] {
            a64::mov_rr(buf, is64, rd, rm);
            a64::add_rr(buf, is64, rd, rn, rm);
            a64::sub_rr(buf, is64, rd, rn, rm);
            a64::subs_rr(buf, is64, rd, rn, rm);
            a64::adds_rr(buf, is64, rd, rn, rm);
            a64::cmp_rr(buf, is64, rn, rm);
            a64::and_rr(buf, is64, rd, rn, rm);
            a64::orr_rr(buf, is64, rd, rn, rm);
            a64::eor_rr(buf, is64, rd, rn, rm);
            a64::tst_rr(buf, is64, rn, rm);
            a64::madd(buf, is64, rd, rn, rm, 7);
            a64::msub(buf, is64, rd, rn, rm, 7);
            a64::mul(buf, is64, rd, rn, rm);
            a64::sdiv(buf, is64, rd, rn, rm);
            a64::udiv(buf, is64, rd, rn, rm);
            for op in [ShiftOp::Lsl, ShiftOp::Lsr, ShiftOp::Asr] {
                a64::shift_rr(buf, is64, op, rd, rn, rm);
            }
        }
        for &imm in &[0u32, 1, 32, 4095] {
            a64::add_imm(buf, is64, 0, 1, imm);
            a64::sub_imm(buf, is64, 0, 1, imm);
            a64::cmp_imm(buf, is64, 2, imm);
        }
        for &hw in &[0u8, 1, 2, 3] {
            a64::movz(buf, is64, 5, 0xbeef, hw);
            a64::movk(buf, is64, 5, 0xbeef, hw);
            a64::movn(buf, is64, 5, 0xbeef, hw);
        }
        for &sh in &[1u8, 4, 17] {
            a64::lsl_imm(buf, is64, 0, 1, sh);
            a64::lsr_imm(buf, is64, 0, 1, sh);
            a64::asr_imm(buf, is64, 0, 1, sh);
        }
        a64::ubfm(buf, is64, 0, 1, 3, 9);
        a64::sbfm(buf, is64, 0, 1, 3, 9);
        for &cc in &conds {
            a64::csel(buf, is64, 0, 1, 2, cc);
            a64::cset(buf, is64, 0, cc);
        }
    }
    a64::mov_sp(buf, 0, SP);
    a64::mov_sp(buf, SP, 0);
    a64::sub_sp_reg(buf, 9);
    a64::add_sp_reg(buf, 9);
    for &v in &[
        0u64,
        42,
        0xffff_0000,
        0x0001_0000_0000_002a,
        0x1234_5678_9abc_def0,
        u64::MAX,
    ] {
        a64::mov_imm64(buf, 3, v);
    }
    for &(rd, rn) in &[(0u8, 1u8), (19, 28)] {
        for &fs in &[1u32, 2, 4, 8] {
            a64::sxt(buf, fs, rd, rn);
            a64::uxt(buf, fs, rd, rn);
        }
    }

    // loads & stores: scaled, unscaled, fp, sign-extending, pairs
    for &size in &[1u32, 2, 4, 8] {
        for &off in &[0i32, 8, 16, 255, 256, 4088, -8, -255] {
            a64::ldr(buf, size, 0, SP, off);
            a64::str(buf, size, 0, FP, off);
            if size <= 4 {
                a64::ldrs(buf, size, 1, FP, off);
            }
        }
    }
    for &size in &[4u32, 8] {
        for &off in &[0i32, 8, 255, -8] {
            a64::ldr_fp(buf, size, 0, SP, off);
            a64::str_fp(buf, size, 0, FP, off);
        }
    }
    a64::stp_pre(buf, FP, LR, SP, -16);
    a64::ldp_post(buf, FP, LR, SP, 16);
    a64::stp(buf, 0, 1, SP, 32);
    a64::ldp(buf, 0, 1, SP, 32);

    // branches forward and backward
    let back = buf.new_label();
    buf.bind_label(back);
    a64::nop(buf);
    let fwd = buf.new_label();
    a64::b_label(buf, fwd);
    a64::b_label(buf, back);
    for &cc in &conds {
        a64::bcond_label(buf, cc, fwd);
        a64::bcond_label(buf, cc, back);
    }
    for &is64 in &[false, true] {
        for &nz in &[false, true] {
            a64::cbz_label(buf, is64, nz, 3, fwd);
            a64::cbz_label(buf, is64, nz, 3, back);
        }
    }
    buf.bind_label(fwd);
    let sym = buf.declare_symbol("callee", SymbolBinding::Global, true);
    a64::bl_sym(buf, sym);
    a64::blr(buf, 9);
    a64::br(buf, 10);
    a64::ret(buf);
    a64::nop(buf);
    let gv = buf.declare_symbol("gv", SymbolBinding::Global, false);
    a64::adr_sym(buf, 2, gv);

    // scalar floating point
    for &size in &[4u32, 8] {
        for &(rd, rn, rm) in &[(0u8, 1u8, 2u8), (15, 30, 7)] {
            a64::fmov_rr(buf, size, rd, rn);
            for op in [FpOp::Add, FpOp::Sub, FpOp::Mul, FpOp::Div] {
                a64::fp_arith(buf, size, op, rd, rn, rm);
            }
            a64::fneg(buf, size, rd, rn);
            a64::fcmp(buf, size, rn, rm);
        }
        for &i64_ in &[false, true] {
            a64::scvtf(buf, size, i64_, 0, 1);
            a64::ucvtf(buf, size, i64_, 0, 1);
            a64::fcvtzs(buf, size, i64_, 0, 1);
        }
        a64::fcvt(buf, size, 0, 1);
        a64::fmov_to_gp(buf, size, 0, 1);
        a64::fmov_from_gp(buf, size, 0, 1);
    }
    let _ = ZR;

    buf.resolve_fixups().expect("all labels bound");
}

fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2 + bytes.len() / 16);
    for (i, b) in bytes.iter().enumerate() {
        use std::fmt::Write as _;
        let _ = write!(s, "{b:02x}");
        if i % 32 == 31 {
            s.push('\n');
        }
    }
    if !s.ends_with('\n') {
        s.push('\n');
    }
    s
}

fn check_golden(name: &str, text: &[u8]) {
    let path = format!("{}/tests/{name}", env!("CARGO_MANIFEST_DIR"));
    let hex = to_hex(text);
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(&path, &hex).expect("write golden");
        return;
    }
    let expected =
        std::fs::read_to_string(&path).expect("golden file missing; run with BLESS_GOLDEN=1");
    assert_eq!(
        hex, expected,
        "{name}: emitted bytes differ from the seed encoders"
    );
}

#[test]
fn x64_matches_seed_bytes() {
    let mut buf = CodeBuffer::new();
    x64_catalogue(&mut buf);
    check_golden("golden_x64.hex", buf.text());
}

#[test]
fn a64_matches_seed_bytes() {
    let mut buf = CodeBuffer::new();
    a64_catalogue(&mut buf);
    check_golden("golden_a64.hex", buf.text());
}

// ---- fixup edge cases -------------------------------------------------------

/// A forward conditional branch whose target lands exactly on the ±1 MiB
/// branch19 boundary must resolve; one word further must error.
#[test]
fn a64_branch19_boundary() {
    // In range: displacement of exactly (1 << 18) - 1 words forward.
    let mut buf = CodeBuffer::new();
    let l = buf.new_label();
    a64::bcond_label(&mut buf, a64::Cond::Eq, l);
    for _ in 0..(1 << 18) - 2 {
        a64::nop(&mut buf);
    }
    buf.bind_label(l);
    a64::ret(&mut buf);
    buf.resolve_fixups().expect("boundary displacement fits");
    let insn = u32::from_le_bytes(buf.text()[0..4].try_into().unwrap());
    assert_eq!((insn >> 5) & 0x7ffff, (1 << 18) - 1);

    // Out of range: one word further.
    let mut buf = CodeBuffer::new();
    let l = buf.new_label();
    a64::bcond_label(&mut buf, a64::Cond::Eq, l);
    for _ in 0..(1 << 18) - 1 {
        a64::nop(&mut buf);
    }
    buf.bind_label(l);
    a64::ret(&mut buf);
    assert!(buf.resolve_fixups().is_err(), "1 MiB + 4 must overflow");
}

/// Backward branches to bound labels must produce exactly the same bytes as
/// the label + fixup + resolve path.
#[test]
fn back_branch_immediate_equals_fixup_resolution() {
    // x86-64: jmp/jcc to an already-bound label.
    let mut direct = CodeBuffer::new();
    let l = direct.new_label();
    direct.bind_label(l);
    x64::nops(&mut direct, 2);
    x64::jmp_label(&mut direct, l);
    x64::jcc_label(&mut direct, Cond::NE, l);
    direct.resolve_fixups().unwrap();

    let mut via_fixup = CodeBuffer::new();
    via_fixup.emit_u8(0x90);
    via_fixup.emit_u8(0x90);
    via_fixup.emit_u8(0xe9);
    let off = via_fixup.text_offset();
    via_fixup.emit_u32(0);
    let l2 = via_fixup.new_label();
    via_fixup.add_fixup(off, l2, FixupKind::X64Rel32);
    via_fixup.emit_u8(0x0f);
    via_fixup.emit_u8(0x80 + Cond::NE as u8);
    let off = via_fixup.text_offset();
    via_fixup.emit_u32(0);
    via_fixup.add_fixup(off, l2, FixupKind::X64Rel32);
    // bind retroactively at offset 0 by resolving against a label bound there
    let mut reference = CodeBuffer::new();
    let l3 = reference.new_label();
    reference.bind_label(l3);
    reference.emit_u8(0x90);
    reference.emit_u8(0x90);
    reference.emit_u8(0xe9);
    let off = reference.text_offset();
    reference.emit_u32(0);
    reference.add_fixup(off, l3, FixupKind::X64Rel32);
    reference.emit_u8(0x0f);
    reference.emit_u8(0x80 + Cond::NE as u8);
    let off = reference.text_offset();
    reference.emit_u32(0);
    reference.add_fixup(off, l3, FixupKind::X64Rel32);
    reference.resolve_fixups().unwrap();
    assert_eq!(direct.text(), reference.text());
    let _ = via_fixup;

    // AArch64: b / b.cond / cbz to an already-bound label.
    let mut direct = CodeBuffer::new();
    let l = direct.new_label();
    direct.bind_label(l);
    a64::nop(&mut direct);
    a64::b_label(&mut direct, l);
    a64::bcond_label(&mut direct, a64::Cond::Lt, l);
    a64::cbz_label(&mut direct, true, false, 5, l);
    direct.resolve_fixups().unwrap();

    let mut reference = CodeBuffer::new();
    let l = reference.new_label();
    reference.bind_label(l);
    reference.emit_u32(0xd503_201f);
    let off = reference.text_offset();
    reference.emit_u32(0x1400_0000);
    reference.add_fixup(off, l, FixupKind::A64Branch26);
    let off = reference.text_offset();
    reference.emit_u32(0x5400_0000 | a64::Cond::Lt as u32);
    reference.add_fixup(off, l, FixupKind::A64Branch19);
    let off = reference.text_offset();
    reference.emit_u32((1 << 31) | 0x3400_0000 | 5);
    reference.add_fixup(off, l, FixupKind::A64Branch19);
    reference.resolve_fixups().unwrap();
    assert_eq!(direct.text(), reference.text());
}
