//! x86-64 instruction encoder.
//!
//! Emits raw bytes into a [`CodeBuffer`]. Only the subset used by the TPDE
//! back-ends and snippet encoders is implemented: 8/16/32/64-bit integer
//! ALU operations, moves with full ModRM/SIB addressing, shifts, multiply
//! and divide, conditional set/move, branches, calls, and SSE2 scalar
//! floating-point operations.
//!
//! All functions append at the current end of the text section. Each
//! encoder assembles its instruction into an on-stack
//! [`tpde_core::codebuf::InstBuf`] window and commits it with a single
//! batched write (see the reserve/commit contract in
//! [`tpde_core::codebuf`]). Branches to labels that are already bound
//! (back-edges) encode their `rel32` displacement immediately; forward
//! branches are patched through the code buffer's fixup mechanism.

use tpde_core::codebuf::{
    CodeBuffer, FixupKind, InstBuf, Label, Reloc, RelocKind, SectionKind, SymbolId,
};
use tpde_core::regs::{Reg, RegBank};

/// A general-purpose register (architectural number 0–15).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Gp(pub u8);

#[allow(missing_docs)]
impl Gp {
    pub const RAX: Gp = Gp(0);
    pub const RCX: Gp = Gp(1);
    pub const RDX: Gp = Gp(2);
    pub const RBX: Gp = Gp(3);
    pub const RSP: Gp = Gp(4);
    pub const RBP: Gp = Gp(5);
    pub const RSI: Gp = Gp(6);
    pub const RDI: Gp = Gp(7);
    pub const R8: Gp = Gp(8);
    pub const R9: Gp = Gp(9);
    pub const R10: Gp = Gp(10);
    pub const R11: Gp = Gp(11);
    pub const R12: Gp = Gp(12);
    pub const R13: Gp = Gp(13);
    pub const R14: Gp = Gp(14);
    pub const R15: Gp = Gp(15);

    fn lo(self) -> u8 {
        self.0 & 7
    }
    fn hi(self) -> bool {
        self.0 >= 8
    }
}

impl From<Reg> for Gp {
    fn from(r: Reg) -> Gp {
        debug_assert_eq!(r.bank(), RegBank::GP);
        Gp(r.index())
    }
}

/// An SSE register (xmm0–xmm15).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Xmm(pub u8);

impl Xmm {
    fn hi(self) -> bool {
        self.0 >= 8
    }
}

impl From<Reg> for Xmm {
    fn from(r: Reg) -> Xmm {
        debug_assert_eq!(r.bank(), RegBank::FP);
        Xmm(r.index())
    }
}

/// A memory operand: `[base + index*scale + disp]`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Mem {
    /// Base register.
    pub base: Gp,
    /// Optional index register and scale (1, 2, 4 or 8). The index must not
    /// be `rsp`.
    pub index: Option<(Gp, u8)>,
    /// Constant displacement.
    pub disp: i32,
}

impl Mem {
    /// `[base]`
    pub fn base(base: Gp) -> Mem {
        Mem {
            base,
            index: None,
            disp: 0,
        }
    }
    /// `[base + disp]`
    pub fn base_disp(base: Gp, disp: i32) -> Mem {
        Mem {
            base,
            index: None,
            disp,
        }
    }
    /// `[base + index*scale + disp]`
    pub fn sib(base: Gp, index: Gp, scale: u8, disp: i32) -> Mem {
        debug_assert!(matches!(scale, 1 | 2 | 4 | 8));
        debug_assert!(index != Gp::RSP, "rsp cannot be an index register");
        Mem {
            base,
            index: Some((index, scale)),
            disp,
        }
    }
}

/// Condition codes (the low nibble of `Jcc`/`SETcc`/`CMOVcc` opcodes).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Cond {
    O = 0x0,
    NO = 0x1,
    B = 0x2,
    AE = 0x3,
    E = 0x4,
    NE = 0x5,
    BE = 0x6,
    A = 0x7,
    S = 0x8,
    NS = 0x9,
    P = 0xa,
    NP = 0xb,
    L = 0xc,
    GE = 0xd,
    LE = 0xe,
    G = 0xf,
}

impl Cond {
    /// The inverted condition.
    pub fn invert(self) -> Cond {
        match self {
            Cond::O => Cond::NO,
            Cond::NO => Cond::O,
            Cond::B => Cond::AE,
            Cond::AE => Cond::B,
            Cond::E => Cond::NE,
            Cond::NE => Cond::E,
            Cond::BE => Cond::A,
            Cond::A => Cond::BE,
            Cond::S => Cond::NS,
            Cond::NS => Cond::S,
            Cond::P => Cond::NP,
            Cond::NP => Cond::P,
            Cond::L => Cond::GE,
            Cond::GE => Cond::L,
            Cond::LE => Cond::G,
            Cond::G => Cond::LE,
        }
    }
}

/// Binary ALU operations sharing the standard opcode pattern.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Alu {
    Add = 0,
    Or = 1,
    Adc = 2,
    Sbb = 3,
    And = 4,
    Sub = 5,
    Xor = 6,
    Cmp = 7,
}

// --- low-level helpers -------------------------------------------------------

fn op_size_prefix(i: &mut InstBuf, size: u32) {
    if size == 2 {
        i.push_u8(0x66);
    }
}

/// Pushes a REX prefix if needed. `r`, `x`, `b` are the high bits of the
/// reg field, index and base/rm. `force` requires a REX byte even without
/// bits (for spl/bpl/sil/dil access).
fn rex(i: &mut InstBuf, w: bool, r: bool, x: bool, b: bool, force: bool) {
    let mut v = 0x40u8;
    if w {
        v |= 8;
    }
    if r {
        v |= 4;
    }
    if x {
        v |= 2;
    }
    if b {
        v |= 1;
    }
    if v != 0x40 || force {
        i.push_u8(v);
    }
}

fn needs_rex8(reg: u8) -> bool {
    (4..8).contains(&reg)
}

fn modrm(i: &mut InstBuf, md: u8, reg: u8, rm: u8) {
    i.push_u8((md << 6) | ((reg & 7) << 3) | (rm & 7));
}

/// Pushes ModRM for a register-direct operand.
fn modrm_rr(i: &mut InstBuf, reg: u8, rm: u8) {
    modrm(i, 3, reg, rm);
}

/// Pushes ModRM/SIB/disp for a memory operand with `reg` in the reg field.
fn modrm_mem(i: &mut InstBuf, reg: u8, mem: Mem) {
    let base = mem.base;
    let disp = mem.disp;
    // choose mod encoding
    let (md, disp_bytes): (u8, u8) = if disp == 0 && base.lo() != 5 {
        (0, 0)
    } else if (-128..=127).contains(&disp) {
        (1, 1)
    } else {
        (2, 4)
    };
    match mem.index {
        None => {
            if base.lo() == 4 {
                // rsp/r12 base requires SIB
                modrm(i, md, reg, 4);
                i.push_u8(0x24); // scale=0, index=100 (none), base=rsp
            } else {
                modrm(i, md, reg, base.lo());
            }
        }
        Some((index, scale)) => {
            let ss = match scale {
                1 => 0,
                2 => 1,
                4 => 2,
                8 => 3,
                _ => unreachable!(),
            };
            modrm(i, md, reg, 4);
            i.push_u8((ss << 6) | (index.lo() << 3) | base.lo());
        }
    }
    match disp_bytes {
        0 => {}
        1 => i.push_u8(disp as i8 as u8),
        _ => i.push_i32(disp),
    }
}

fn rex_for_rm(i: &mut InstBuf, size: u32, reg: u8, rm: u8) {
    op_size_prefix(i, size);
    let force = size == 1 && (needs_rex8(reg) || needs_rex8(rm));
    rex(i, size == 8, reg >= 8, false, rm >= 8, force);
}

fn rex_for_mem(i: &mut InstBuf, size: u32, reg: u8, mem: Mem) {
    op_size_prefix(i, size);
    let x = mem.index.is_some_and(|(idx, _)| idx.hi());
    let force = size == 1 && needs_rex8(reg);
    rex(i, size == 8, reg >= 8, x, mem.base.hi(), force);
}

// --- moves --------------------------------------------------------------------

/// `mov dst, src` (register to register).
pub fn mov_rr(buf: &mut CodeBuffer, size: u32, dst: Gp, src: Gp) {
    let mut i = InstBuf::new();
    rex_for_rm(&mut i, size, src.0, dst.0);
    i.push_u8(if size == 1 { 0x88 } else { 0x89 });
    modrm_rr(&mut i, src.0, dst.0);
    buf.emit_inst(i);
}

/// `mov dst, imm`. Chooses the shortest usable encoding
/// (`mov r32, imm32`, sign-extended `imm32`, or `movabs`).
pub fn mov_ri(buf: &mut CodeBuffer, size: u32, dst: Gp, imm: u64) {
    let mut i = InstBuf::new();
    if size <= 4 || imm <= u32::MAX as u64 {
        // 32-bit move zero-extends to 64 bits
        rex(&mut i, false, false, false, dst.hi(), false);
        i.push_u8(0xb8 + dst.lo());
        i.push_u32(imm as u32);
    } else if (imm as i64) >= i32::MIN as i64 && (imm as i64) <= i32::MAX as i64 {
        rex(&mut i, true, false, false, dst.hi(), false);
        i.push_u8(0xc7);
        modrm_rr(&mut i, 0, dst.0);
        i.push_u32(imm as u32);
    } else {
        rex(&mut i, true, false, false, dst.hi(), false);
        i.push_u8(0xb8 + dst.lo());
        i.push_u64(imm);
    }
    buf.emit_inst(i);
}

/// `mov dst, [mem]` (load).
pub fn mov_rm(buf: &mut CodeBuffer, size: u32, dst: Gp, mem: Mem) {
    let mut i = InstBuf::new();
    rex_for_mem(&mut i, size, dst.0, mem);
    i.push_u8(if size == 1 { 0x8a } else { 0x8b });
    modrm_mem(&mut i, dst.0, mem);
    buf.emit_inst(i);
}

/// `mov [mem], src` (store).
pub fn mov_mr(buf: &mut CodeBuffer, size: u32, mem: Mem, src: Gp) {
    let mut i = InstBuf::new();
    rex_for_mem(&mut i, size, src.0, mem);
    i.push_u8(if size == 1 { 0x88 } else { 0x89 });
    modrm_mem(&mut i, src.0, mem);
    buf.emit_inst(i);
}

/// `mov dword/qword ptr [mem], imm32` (sign-extended for 64-bit).
pub fn mov_mi(buf: &mut CodeBuffer, size: u32, mem: Mem, imm: i32) {
    let mut i = InstBuf::new();
    rex_for_mem(&mut i, size, 0, mem);
    i.push_u8(if size == 1 { 0xc6 } else { 0xc7 });
    modrm_mem(&mut i, 0, mem);
    match size {
        1 => i.push_u8(imm as u8),
        2 => i.push_u16(imm as u16),
        _ => i.push_i32(imm),
    }
    buf.emit_inst(i);
}

/// `movzx dst, src` where `src` is an 8- or 16-bit register.
pub fn movzx_rr(buf: &mut CodeBuffer, dst: Gp, src: Gp, from_size: u32) {
    let mut i = InstBuf::new();
    let force = from_size == 1 && needs_rex8(src.0);
    rex(&mut i, false, dst.hi(), false, src.hi(), force);
    i.push_u8(0x0f);
    i.push_u8(if from_size == 1 { 0xb6 } else { 0xb7 });
    modrm_rr(&mut i, dst.0, src.0);
    buf.emit_inst(i);
}

/// `movzx dst, <size> ptr [mem]` (zero-extending load, 8/16 bit).
pub fn movzx_rm(buf: &mut CodeBuffer, dst: Gp, mem: Mem, from_size: u32) {
    let mut i = InstBuf::new();
    let x = mem.index.is_some_and(|(idx, _)| idx.hi());
    rex(&mut i, false, dst.hi(), x, mem.base.hi(), false);
    i.push_u8(0x0f);
    i.push_u8(if from_size == 1 { 0xb6 } else { 0xb7 });
    modrm_mem(&mut i, dst.0, mem);
    buf.emit_inst(i);
}

fn movsx_opcode(i: &mut InstBuf, from_size: u32) {
    match from_size {
        1 => {
            i.push_u8(0x0f);
            i.push_u8(0xbe);
        }
        2 => {
            i.push_u8(0x0f);
            i.push_u8(0xbf);
        }
        4 => i.push_u8(0x63), // movsxd
        _ => panic!("invalid movsx source size"),
    }
}

/// `movsx dst, src` (sign extension from 8, 16 or 32 bits to `to_size`).
pub fn movsx_rr(buf: &mut CodeBuffer, to_size: u32, dst: Gp, src: Gp, from_size: u32) {
    let mut i = InstBuf::new();
    let force = from_size == 1 && needs_rex8(src.0);
    rex(&mut i, to_size == 8, dst.hi(), false, src.hi(), force);
    movsx_opcode(&mut i, from_size);
    modrm_rr(&mut i, dst.0, src.0);
    buf.emit_inst(i);
}

/// `movsx dst, <size> ptr [mem]` (sign-extending load).
pub fn movsx_rm(buf: &mut CodeBuffer, to_size: u32, dst: Gp, mem: Mem, from_size: u32) {
    let mut i = InstBuf::new();
    let x = mem.index.is_some_and(|(idx, _)| idx.hi());
    rex(&mut i, to_size == 8, dst.hi(), x, mem.base.hi(), false);
    movsx_opcode(&mut i, from_size);
    modrm_mem(&mut i, dst.0, mem);
    buf.emit_inst(i);
}

/// `lea dst, [mem]`.
pub fn lea(buf: &mut CodeBuffer, dst: Gp, mem: Mem) {
    let mut i = InstBuf::new();
    rex_for_mem(&mut i, 8, dst.0, mem);
    i.push_u8(0x8d);
    modrm_mem(&mut i, dst.0, mem);
    buf.emit_inst(i);
}

// --- ALU ------------------------------------------------------------------------

/// `op dst, src` (register-register ALU operation).
pub fn alu_rr(buf: &mut CodeBuffer, op: Alu, size: u32, dst: Gp, src: Gp) {
    let mut i = InstBuf::new();
    rex_for_rm(&mut i, size, src.0, dst.0);
    let base = (op as u8) * 8;
    i.push_u8(if size == 1 { base } else { base + 1 });
    modrm_rr(&mut i, src.0, dst.0);
    buf.emit_inst(i);
}

/// `op dst, imm` (immediate ALU operation; chooses imm8 when possible).
pub fn alu_ri(buf: &mut CodeBuffer, op: Alu, size: u32, dst: Gp, imm: i32) {
    let mut i = InstBuf::new();
    rex_for_rm(&mut i, size, 0, dst.0);
    if size == 1 {
        i.push_u8(0x80);
        modrm_rr(&mut i, op as u8, dst.0);
        i.push_u8(imm as u8);
    } else if (-128..=127).contains(&imm) {
        i.push_u8(0x83);
        modrm_rr(&mut i, op as u8, dst.0);
        i.push_u8(imm as u8);
    } else {
        i.push_u8(0x81);
        modrm_rr(&mut i, op as u8, dst.0);
        if size == 2 {
            i.push_u16(imm as u16);
        } else {
            i.push_i32(imm);
        }
    }
    buf.emit_inst(i);
}

/// `op dst, [mem]`.
pub fn alu_rm(buf: &mut CodeBuffer, op: Alu, size: u32, dst: Gp, mem: Mem) {
    let mut i = InstBuf::new();
    rex_for_mem(&mut i, size, dst.0, mem);
    let base = (op as u8) * 8;
    i.push_u8(if size == 1 { base + 2 } else { base + 3 });
    modrm_mem(&mut i, dst.0, mem);
    buf.emit_inst(i);
}

/// `op [mem], src`.
pub fn alu_mr(buf: &mut CodeBuffer, op: Alu, size: u32, mem: Mem, src: Gp) {
    let mut i = InstBuf::new();
    rex_for_mem(&mut i, size, src.0, mem);
    let base = (op as u8) * 8;
    i.push_u8(if size == 1 { base } else { base + 1 });
    modrm_mem(&mut i, src.0, mem);
    buf.emit_inst(i);
}

/// `op <size> ptr [mem], imm` (immediate ALU on memory; chooses imm8 when
/// possible). Used for the tier-0 entry counters (`add qword [r11], 1`).
pub fn alu_mi(buf: &mut CodeBuffer, op: Alu, size: u32, mem: Mem, imm: i32) {
    let mut i = InstBuf::new();
    rex_for_mem(&mut i, size, 0, mem);
    if size == 1 {
        i.push_u8(0x80);
        modrm_mem(&mut i, op as u8, mem);
        i.push_u8(imm as u8);
    } else if (-128..=127).contains(&imm) {
        i.push_u8(0x83);
        modrm_mem(&mut i, op as u8, mem);
        i.push_u8(imm as u8);
    } else {
        i.push_u8(0x81);
        modrm_mem(&mut i, op as u8, mem);
        if size == 2 {
            i.push_u16(imm as u16);
        } else {
            i.push_i32(imm);
        }
    }
    buf.emit_inst(i);
}

/// `test dst, src`.
pub fn test_rr(buf: &mut CodeBuffer, size: u32, dst: Gp, src: Gp) {
    let mut i = InstBuf::new();
    rex_for_rm(&mut i, size, src.0, dst.0);
    i.push_u8(if size == 1 { 0x84 } else { 0x85 });
    modrm_rr(&mut i, src.0, dst.0);
    buf.emit_inst(i);
}

/// `test dst, imm32`.
pub fn test_ri(buf: &mut CodeBuffer, size: u32, dst: Gp, imm: i32) {
    let mut i = InstBuf::new();
    rex_for_rm(&mut i, size, 0, dst.0);
    i.push_u8(if size == 1 { 0xf6 } else { 0xf7 });
    modrm_rr(&mut i, 0, dst.0);
    if size == 1 {
        i.push_u8(imm as u8);
    } else {
        i.push_i32(imm);
    }
    buf.emit_inst(i);
}

/// `imul dst, src` (two-operand signed multiply).
pub fn imul_rr(buf: &mut CodeBuffer, size: u32, dst: Gp, src: Gp) {
    let mut i = InstBuf::new();
    rex_for_rm(&mut i, size, dst.0, src.0);
    i.push_u8(0x0f);
    i.push_u8(0xaf);
    modrm_rr(&mut i, dst.0, src.0);
    buf.emit_inst(i);
}

/// `imul dst, src, imm32`.
pub fn imul_rri(buf: &mut CodeBuffer, size: u32, dst: Gp, src: Gp, imm: i32) {
    let mut i = InstBuf::new();
    rex_for_rm(&mut i, size, dst.0, src.0);
    if (-128..=127).contains(&imm) {
        i.push_u8(0x6b);
        modrm_rr(&mut i, dst.0, src.0);
        i.push_u8(imm as u8);
    } else {
        i.push_u8(0x69);
        modrm_rr(&mut i, dst.0, src.0);
        i.push_i32(imm);
    }
    buf.emit_inst(i);
}

/// Single-operand `0xf6/0xf7` group instruction (`neg`, `not`, `mul`, ...).
fn grp3(buf: &mut CodeBuffer, size: u32, ext: u8, rm: Gp) {
    let mut i = InstBuf::new();
    rex_for_rm(&mut i, size, 0, rm.0);
    i.push_u8(if size == 1 { 0xf6 } else { 0xf7 });
    modrm_rr(&mut i, ext, rm.0);
    buf.emit_inst(i);
}

/// `neg dst`.
pub fn neg(buf: &mut CodeBuffer, size: u32, dst: Gp) {
    grp3(buf, size, 3, dst);
}

/// `not dst`.
pub fn not(buf: &mut CodeBuffer, size: u32, dst: Gp) {
    grp3(buf, size, 2, dst);
}

/// `mul src` (unsigned widening multiply of rax by src into rdx:rax).
pub fn mul_unsigned(buf: &mut CodeBuffer, size: u32, src: Gp) {
    grp3(buf, size, 4, src);
}

/// `imul src` (signed widening multiply into rdx:rax).
pub fn imul_wide(buf: &mut CodeBuffer, size: u32, src: Gp) {
    grp3(buf, size, 5, src);
}

/// `div src` (unsigned divide of rdx:rax).
pub fn div(buf: &mut CodeBuffer, size: u32, src: Gp) {
    grp3(buf, size, 6, src);
}

/// `idiv src` (signed divide of rdx:rax).
pub fn idiv(buf: &mut CodeBuffer, size: u32, src: Gp) {
    grp3(buf, size, 7, src);
}

/// `cdq` (size 4) / `cqo` (size 8): sign-extend rax into rdx.
pub fn cqo(buf: &mut CodeBuffer, size: u32) {
    let mut i = InstBuf::new();
    if size == 8 {
        i.push_u8(0x48);
    }
    i.push_u8(0x99);
    buf.emit_inst(i);
}

/// Shift kinds for [`shift_ri`] / [`shift_cl`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Shift {
    Shl = 4,
    Shr = 5,
    Sar = 7,
    Rol = 0,
    Ror = 1,
}

/// `shl/shr/sar dst, imm`.
pub fn shift_ri(buf: &mut CodeBuffer, kind: Shift, size: u32, dst: Gp, imm: u8) {
    let mut i = InstBuf::new();
    rex_for_rm(&mut i, size, 0, dst.0);
    if imm == 1 {
        i.push_u8(if size == 1 { 0xd0 } else { 0xd1 });
        modrm_rr(&mut i, kind as u8, dst.0);
    } else {
        i.push_u8(if size == 1 { 0xc0 } else { 0xc1 });
        modrm_rr(&mut i, kind as u8, dst.0);
        i.push_u8(imm);
    }
    buf.emit_inst(i);
}

/// `shl/shr/sar dst, cl`.
pub fn shift_cl(buf: &mut CodeBuffer, kind: Shift, size: u32, dst: Gp) {
    let mut i = InstBuf::new();
    rex_for_rm(&mut i, size, 0, dst.0);
    i.push_u8(if size == 1 { 0xd2 } else { 0xd3 });
    modrm_rr(&mut i, kind as u8, dst.0);
    buf.emit_inst(i);
}

/// `setcc dst` (8-bit destination).
pub fn setcc(buf: &mut CodeBuffer, cc: Cond, dst: Gp) {
    let mut i = InstBuf::new();
    let force = needs_rex8(dst.0);
    rex(&mut i, false, false, false, dst.hi(), force);
    i.push_u8(0x0f);
    i.push_u8(0x90 + cc as u8);
    modrm_rr(&mut i, 0, dst.0);
    buf.emit_inst(i);
}

/// `cmovcc dst, src`.
pub fn cmovcc(buf: &mut CodeBuffer, cc: Cond, size: u32, dst: Gp, src: Gp) {
    let mut i = InstBuf::new();
    rex_for_rm(&mut i, size.max(4), dst.0, src.0);
    i.push_u8(0x0f);
    i.push_u8(0x40 + cc as u8);
    modrm_rr(&mut i, dst.0, src.0);
    buf.emit_inst(i);
}

// --- control flow -----------------------------------------------------------------

/// Commits a branch whose rel32 field starts at `i.len()` bytes into the
/// window. Already-bound labels (back-edges) get their displacement encoded
/// immediately; forward references record a fixup.
fn emit_rel32_branch(buf: &mut CodeBuffer, mut i: InstBuf, label: Label) {
    let field_off = buf.text_offset() + i.len() as u64;
    if let Some(target) = buf.label_offset(label) {
        if let Ok(disp) = i32::try_from(target as i64 - (field_off + 4) as i64) {
            i.push_i32(disp);
            buf.emit_inst(i);
            return;
        }
    }
    i.push_u32(0);
    buf.emit_inst(i);
    buf.add_fixup(field_off, label, FixupKind::X64Rel32);
}

/// `jmp label` (rel32; encoded immediately for bound labels, fixed up
/// otherwise).
pub fn jmp_label(buf: &mut CodeBuffer, label: Label) {
    let mut i = InstBuf::new();
    i.push_u8(0xe9);
    emit_rel32_branch(buf, i, label);
}

/// `jcc label` (rel32; encoded immediately for bound labels, fixed up
/// otherwise).
pub fn jcc_label(buf: &mut CodeBuffer, cc: Cond, label: Label) {
    let mut i = InstBuf::new();
    i.push_u8(0x0f);
    i.push_u8(0x80 + cc as u8);
    emit_rel32_branch(buf, i, label);
}

/// `jmp reg` (indirect).
pub fn jmp_reg(buf: &mut CodeBuffer, reg: Gp) {
    let mut i = InstBuf::new();
    rex(&mut i, false, false, false, reg.hi(), false);
    i.push_u8(0xff);
    modrm_rr(&mut i, 4, reg.0);
    buf.emit_inst(i);
}

/// `call sym` (rel32 with a PC-relative relocation).
pub fn call_sym(buf: &mut CodeBuffer, sym: SymbolId) {
    let mut i = InstBuf::new();
    i.push_u8(0xe8);
    let off = buf.text_offset() + 1;
    i.push_u32(0);
    buf.emit_inst(i);
    buf.add_reloc(Reloc {
        section: SectionKind::Text,
        offset: off,
        symbol: sym,
        kind: RelocKind::Pc32,
        addend: -4,
    });
}

/// `call reg` (indirect).
pub fn call_reg(buf: &mut CodeBuffer, reg: Gp) {
    let mut i = InstBuf::new();
    rex(&mut i, false, false, false, reg.hi(), false);
    i.push_u8(0xff);
    modrm_rr(&mut i, 2, reg.0);
    buf.emit_inst(i);
}

/// `ret`.
pub fn ret(buf: &mut CodeBuffer) {
    buf.emit_u8(0xc3);
}

/// `push reg`.
pub fn push_r(buf: &mut CodeBuffer, reg: Gp) {
    let mut i = InstBuf::new();
    rex(&mut i, false, false, false, reg.hi(), false);
    i.push_u8(0x50 + reg.lo());
    buf.emit_inst(i);
}

/// `pop reg`.
pub fn pop_r(buf: &mut CodeBuffer, reg: Gp) {
    let mut i = InstBuf::new();
    rex(&mut i, false, false, false, reg.hi(), false);
    i.push_u8(0x58 + reg.lo());
    buf.emit_inst(i);
}

/// Emits `len` bytes of (single-byte) NOPs with one resize.
pub fn nops(buf: &mut CodeBuffer, len: usize) {
    let text = buf.text_mut();
    let new_len = text.len() + len;
    text.resize(new_len, 0x90);
}

/// Loads the address of `sym` into `dst` via `movabs` + absolute relocation.
pub fn mov_sym_abs(buf: &mut CodeBuffer, dst: Gp, sym: SymbolId, addend: i64) {
    let mut i = InstBuf::new();
    rex(&mut i, true, false, false, dst.hi(), false);
    i.push_u8(0xb8 + dst.lo());
    let off = buf.text_offset() + i.len() as u64;
    i.push_u64(0);
    buf.emit_inst(i);
    buf.add_reloc(Reloc {
        section: SectionKind::Text,
        offset: off,
        symbol: sym,
        kind: RelocKind::Abs64,
        addend,
    });
}

// --- SSE scalar floating point ------------------------------------------------------

fn sse_prefix(i: &mut InstBuf, prefix: u8, w: bool, r: bool, x: bool, b: bool) {
    if prefix != 0 {
        i.push_u8(prefix);
    }
    rex(i, w, r, x, b, false);
    i.push_u8(0x0f);
}

/// Scalar SSE op `xmm, xmm` with the given mandatory prefix and opcode
/// (e.g. `addsd` = prefix `0xF2`, opcode `0x58`).
pub fn sse_rr(buf: &mut CodeBuffer, prefix: u8, opcode: u8, dst: Xmm, src: Xmm) {
    let mut i = InstBuf::new();
    sse_prefix(&mut i, prefix, false, dst.hi(), false, src.hi());
    i.push_u8(opcode);
    modrm_rr(&mut i, dst.0, src.0);
    buf.emit_inst(i);
}

/// Scalar SSE op `xmm, [mem]`.
pub fn sse_rm(buf: &mut CodeBuffer, prefix: u8, opcode: u8, dst: Xmm, mem: Mem) {
    let mut i = InstBuf::new();
    let x = mem.index.is_some_and(|(idx, _)| idx.hi());
    sse_prefix(&mut i, prefix, false, dst.hi(), x, mem.base.hi());
    i.push_u8(opcode);
    modrm_mem(&mut i, dst.0, mem);
    buf.emit_inst(i);
}

/// `movsd dst, [mem]` / `movss` when `size == 4`.
pub fn fp_load(buf: &mut CodeBuffer, size: u32, dst: Xmm, mem: Mem) {
    let prefix = if size == 4 { 0xf3 } else { 0xf2 };
    sse_rm(buf, prefix, 0x10, dst, mem);
}

/// `movsd [mem], src` / `movss` when `size == 4`.
pub fn fp_store(buf: &mut CodeBuffer, size: u32, mem: Mem, src: Xmm) {
    let mut i = InstBuf::new();
    let prefix = if size == 4 { 0xf3 } else { 0xf2 };
    let x = mem.index.is_some_and(|(idx, _)| idx.hi());
    sse_prefix(&mut i, prefix, false, src.hi(), x, mem.base.hi());
    i.push_u8(0x11);
    modrm_mem(&mut i, src.0, mem);
    buf.emit_inst(i);
}

/// `movsd/movss dst, src` (register move).
pub fn fp_mov_rr(buf: &mut CodeBuffer, size: u32, dst: Xmm, src: Xmm) {
    let prefix = if size == 4 { 0xf3 } else { 0xf2 };
    sse_rr(buf, prefix, 0x10, dst, src);
}

/// Scalar FP arithmetic: add/sub/mul/div/sqrt, selected by opcode
/// (0x58 add, 0x5c sub, 0x59 mul, 0x5e div, 0x51 sqrt).
pub fn fp_arith(buf: &mut CodeBuffer, size: u32, opcode: u8, dst: Xmm, src: Xmm) {
    let prefix = if size == 4 { 0xf3 } else { 0xf2 };
    sse_rr(buf, prefix, opcode, dst, src);
}

/// `ucomisd/ucomiss dst, src` (FP compare setting flags).
pub fn fp_ucomis(buf: &mut CodeBuffer, size: u32, dst: Xmm, src: Xmm) {
    let prefix = if size == 4 { 0x00 } else { 0x66 };
    sse_rr(buf, prefix, 0x2e, dst, src);
}

/// `xorps/xorpd dst, src` (used for FP zero and negation).
pub fn fp_xor(buf: &mut CodeBuffer, size: u32, dst: Xmm, src: Xmm) {
    let prefix = if size == 4 { 0x00 } else { 0x66 };
    sse_rr(buf, prefix, 0x57, dst, src);
}

/// `cvtsi2sd/cvtsi2ss dst, src` (integer to FP; `int_size` 4 or 8).
pub fn cvt_int_to_fp(buf: &mut CodeBuffer, fp_size: u32, int_size: u32, dst: Xmm, src: Gp) {
    let mut i = InstBuf::new();
    i.push_u8(if fp_size == 4 { 0xf3 } else { 0xf2 });
    rex(&mut i, int_size == 8, dst.hi(), false, src.hi(), false);
    i.push_u8(0x0f);
    i.push_u8(0x2a);
    modrm_rr(&mut i, dst.0, src.0);
    buf.emit_inst(i);
}

/// `cvttsd2si/cvttss2si dst, src` (FP to integer, truncating).
pub fn cvt_fp_to_int(buf: &mut CodeBuffer, fp_size: u32, int_size: u32, dst: Gp, src: Xmm) {
    let mut i = InstBuf::new();
    i.push_u8(if fp_size == 4 { 0xf3 } else { 0xf2 });
    rex(&mut i, int_size == 8, dst.hi(), false, src.hi(), false);
    i.push_u8(0x0f);
    i.push_u8(0x2c);
    modrm_rr(&mut i, dst.0, src.0);
    buf.emit_inst(i);
}

/// `cvtsd2ss` (`to_size` 4) or `cvtss2sd` (`to_size` 8).
pub fn cvt_fp_to_fp(buf: &mut CodeBuffer, to_size: u32, dst: Xmm, src: Xmm) {
    let prefix = if to_size == 4 { 0xf2 } else { 0xf3 };
    sse_rr(buf, prefix, 0x5a, dst, src);
}

/// `movq xmm, gp` (raw 64-bit bit move).
pub fn movq_xr(buf: &mut CodeBuffer, dst: Xmm, src: Gp) {
    let mut i = InstBuf::new();
    i.push_u8(0x66);
    rex(&mut i, true, dst.hi(), false, src.hi(), false);
    i.push_u8(0x0f);
    i.push_u8(0x6e);
    modrm_rr(&mut i, dst.0, src.0);
    buf.emit_inst(i);
}

/// `movq gp, xmm` (raw 64-bit bit move).
pub fn movq_rx(buf: &mut CodeBuffer, dst: Gp, src: Xmm) {
    let mut i = InstBuf::new();
    i.push_u8(0x66);
    rex(&mut i, true, src.hi(), false, dst.hi(), false);
    i.push_u8(0x0f);
    i.push_u8(0x7e);
    modrm_rr(&mut i, src.0, dst.0);
    buf.emit_inst(i);
}

/// `movd xmm, gp32` / `movd gp32, xmm` are provided through
/// [`movq_xr`]/[`movq_rx`] with 64-bit width; 32-bit floats are handled by
/// the back-ends by moving the full 64 bits.
///
/// (No separate function needed.)
#[cfg(test)]
mod tests {
    use super::*;

    fn enc(f: impl FnOnce(&mut CodeBuffer)) -> Vec<u8> {
        let mut buf = CodeBuffer::new();
        f(&mut buf);
        buf.text().to_vec()
    }

    #[test]
    fn mov_and_alu_rr() {
        assert_eq!(
            enc(|b| mov_rr(b, 8, Gp::RAX, Gp::RBX)),
            vec![0x48, 0x89, 0xd8]
        );
        assert_eq!(enc(|b| mov_rr(b, 4, Gp::RAX, Gp::RBX)), vec![0x89, 0xd8]);
        assert_eq!(
            enc(|b| alu_rr(b, Alu::Add, 8, Gp::RAX, Gp::RCX)),
            vec![0x48, 0x01, 0xc8]
        );
        assert_eq!(
            enc(|b| alu_rr(b, Alu::Sub, 4, Gp::RDX, Gp::RSI)),
            vec![0x29, 0xf2]
        );
        assert_eq!(
            enc(|b| alu_rr(b, Alu::Cmp, 8, Gp::RAX, Gp::RCX)),
            vec![0x48, 0x39, 0xc8]
        );
        assert_eq!(
            enc(|b| alu_rr(b, Alu::Xor, 8, Gp::R8, Gp::R9)),
            vec![0x4d, 0x31, 0xc8]
        );
    }

    #[test]
    fn mov_imm_forms() {
        assert_eq!(enc(|b| mov_ri(b, 4, Gp::RAX, 42)), vec![0xb8, 42, 0, 0, 0]);
        assert_eq!(
            enc(|b| mov_ri(b, 8, Gp::RAX, 0x1_2345_6789)),
            vec![0x48, 0xb8, 0x89, 0x67, 0x45, 0x23, 0x01, 0, 0, 0]
        );
        // small positive 64-bit constants use the 32-bit zero-extending form
        assert_eq!(enc(|b| mov_ri(b, 8, Gp::RCX, 7)), vec![0xb9, 7, 0, 0, 0]);
        // negative needs sign-extended form
        assert_eq!(
            enc(|b| mov_ri(b, 8, Gp::RAX, (-1i64) as u64)),
            vec![0x48, 0xc7, 0xc0, 0xff, 0xff, 0xff, 0xff]
        );
    }

    #[test]
    fn loads_and_stores() {
        assert_eq!(
            enc(|b| mov_rm(b, 8, Gp::RAX, Mem::base_disp(Gp::RBP, -8))),
            vec![0x48, 0x8b, 0x45, 0xf8]
        );
        assert_eq!(
            enc(|b| mov_mr(b, 8, Mem::base_disp(Gp::RBP, 16), Gp::RDI)),
            vec![0x48, 0x89, 0x7d, 0x10]
        );
        assert_eq!(
            enc(|b| mov_rm(b, 4, Gp::RCX, Mem::base(Gp::RAX))),
            vec![0x8b, 0x08]
        );
        // rsp base requires SIB
        assert_eq!(
            enc(|b| mov_mr(b, 8, Mem::base_disp(Gp::RSP, 8), Gp::RAX)),
            vec![0x48, 0x89, 0x44, 0x24, 0x08]
        );
        // scaled index
        assert_eq!(
            enc(|b| mov_rm(b, 8, Gp::RAX, Mem::sib(Gp::RDI, Gp::RSI, 8, 0))),
            vec![0x48, 0x8b, 0x04, 0xf7]
        );
        // large displacement
        assert_eq!(
            enc(|b| mov_rm(b, 8, Gp::RAX, Mem::base_disp(Gp::RBP, -0x1000))),
            vec![0x48, 0x8b, 0x85, 0x00, 0xf0, 0xff, 0xff]
        );
    }

    #[test]
    fn lea_and_stack_addressing() {
        assert_eq!(
            enc(|b| lea(b, Gp::RAX, Mem::base_disp(Gp::RBP, -16))),
            vec![0x48, 0x8d, 0x45, 0xf0]
        );
        assert_eq!(
            enc(|b| lea(b, Gp::RDX, Mem::sib(Gp::RAX, Gp::RCX, 4, 3))),
            vec![0x48, 0x8d, 0x54, 0x88, 0x03]
        );
    }

    #[test]
    fn imm_alu_choose_width() {
        assert_eq!(
            enc(|b| alu_ri(b, Alu::Add, 8, Gp::RSP, 8)),
            vec![0x48, 0x83, 0xc4, 0x08]
        );
        assert_eq!(
            enc(|b| alu_ri(b, Alu::Sub, 8, Gp::RSP, 0x200)),
            vec![0x48, 0x81, 0xec, 0x00, 0x02, 0x00, 0x00]
        );
        assert_eq!(
            enc(|b| alu_ri(b, Alu::Cmp, 4, Gp::RAX, 1)),
            vec![0x83, 0xf8, 0x01]
        );
    }

    #[test]
    fn mul_div_shift() {
        assert_eq!(
            enc(|b| imul_rr(b, 8, Gp::RAX, Gp::RCX)),
            vec![0x48, 0x0f, 0xaf, 0xc1]
        );
        assert_eq!(enc(|b| idiv(b, 8, Gp::RCX)), vec![0x48, 0xf7, 0xf9]);
        assert_eq!(enc(|b| div(b, 4, Gp::RSI)), vec![0xf7, 0xf6]);
        assert_eq!(enc(|b| cqo(b, 8)), vec![0x48, 0x99]);
        assert_eq!(enc(|b| cqo(b, 4)), vec![0x99]);
        assert_eq!(
            enc(|b| shift_cl(b, Shift::Shl, 8, Gp::RAX)),
            vec![0x48, 0xd3, 0xe0]
        );
        assert_eq!(
            enc(|b| shift_ri(b, Shift::Sar, 8, Gp::RDX, 3)),
            vec![0x48, 0xc1, 0xfa, 0x03]
        );
        assert_eq!(
            enc(|b| shift_ri(b, Shift::Shl, 4, Gp::RAX, 1)),
            vec![0xd1, 0xe0]
        );
    }

    #[test]
    fn setcc_and_cmov() {
        assert_eq!(enc(|b| setcc(b, Cond::E, Gp::RAX)), vec![0x0f, 0x94, 0xc0]);
        // sil needs a REX prefix
        assert_eq!(
            enc(|b| setcc(b, Cond::NE, Gp::RSI)),
            vec![0x40, 0x0f, 0x95, 0xc6]
        );
        assert_eq!(
            enc(|b| movzx_rr(b, Gp::RAX, Gp::RAX, 1)),
            vec![0x0f, 0xb6, 0xc0]
        );
        assert_eq!(
            enc(|b| cmovcc(b, Cond::L, 8, Gp::RAX, Gp::RCX)),
            vec![0x48, 0x0f, 0x4c, 0xc1]
        );
    }

    #[test]
    fn extensions() {
        assert_eq!(
            enc(|b| movsx_rr(b, 8, Gp::RAX, Gp::RCX, 4)),
            vec![0x48, 0x63, 0xc1]
        );
        assert_eq!(
            enc(|b| movsx_rr(b, 8, Gp::RAX, Gp::RCX, 1)),
            vec![0x48, 0x0f, 0xbe, 0xc1]
        );
        assert_eq!(
            enc(|b| movzx_rr(b, Gp::RAX, Gp::RCX, 2)),
            vec![0x0f, 0xb7, 0xc1]
        );
    }

    #[test]
    fn control_flow_and_fixups() {
        let mut buf = CodeBuffer::new();
        let l = buf.new_label();
        jcc_label(&mut buf, Cond::E, l);
        jmp_label(&mut buf, l);
        buf.bind_label(l);
        ret(&mut buf);
        buf.resolve_fixups().unwrap();
        let text = buf.text().to_vec();
        assert_eq!(&text[0..2], &[0x0f, 0x84]);
        // je displacement: target 11, end of field 6 -> 5
        assert_eq!(i32::from_le_bytes(text[2..6].try_into().unwrap()), 5);
        assert_eq!(text[6], 0xe9);
        assert_eq!(i32::from_le_bytes(text[7..11].try_into().unwrap()), 0);
        assert_eq!(text[11], 0xc3);
    }

    #[test]
    fn push_pop_ret_call() {
        assert_eq!(enc(|b| push_r(b, Gp::RBP)), vec![0x55]);
        assert_eq!(enc(|b| push_r(b, Gp::R15)), vec![0x41, 0x57]);
        assert_eq!(enc(|b| pop_r(b, Gp::RBP)), vec![0x5d]);
        assert_eq!(enc(ret), vec![0xc3]);
        assert_eq!(enc(|b| call_reg(b, Gp::R11)), vec![0x41, 0xff, 0xd3]);
        assert_eq!(enc(|b| jmp_reg(b, Gp::RAX)), vec![0xff, 0xe0]);
    }

    #[test]
    fn sse_encodings() {
        assert_eq!(
            enc(|b| fp_arith(b, 8, 0x58, Xmm(0), Xmm(1))),
            vec![0xf2, 0x0f, 0x58, 0xc1]
        );
        assert_eq!(
            enc(|b| fp_arith(b, 4, 0x59, Xmm(2), Xmm(3))),
            vec![0xf3, 0x0f, 0x59, 0xd3]
        );
        assert_eq!(
            enc(|b| fp_load(b, 8, Xmm(0), Mem::base_disp(Gp::RBP, -8))),
            vec![0xf2, 0x0f, 0x10, 0x45, 0xf8]
        );
        assert_eq!(
            enc(|b| fp_store(b, 8, Mem::base_disp(Gp::RBP, -8), Xmm(0))),
            vec![0xf2, 0x0f, 0x11, 0x45, 0xf8]
        );
        assert_eq!(
            enc(|b| fp_ucomis(b, 8, Xmm(0), Xmm(1))),
            vec![0x66, 0x0f, 0x2e, 0xc1]
        );
        assert_eq!(
            enc(|b| fp_ucomis(b, 4, Xmm(0), Xmm(1))),
            vec![0x0f, 0x2e, 0xc1]
        );
        assert_eq!(
            enc(|b| cvt_int_to_fp(b, 8, 8, Xmm(0), Gp::RAX)),
            vec![0xf2, 0x48, 0x0f, 0x2a, 0xc0]
        );
        assert_eq!(
            enc(|b| cvt_fp_to_int(b, 8, 8, Gp::RAX, Xmm(0))),
            vec![0xf2, 0x48, 0x0f, 0x2c, 0xc0]
        );
        assert_eq!(
            enc(|b| movq_xr(b, Xmm(0), Gp::RAX)),
            vec![0x66, 0x48, 0x0f, 0x6e, 0xc0]
        );
        assert_eq!(
            enc(|b| movq_rx(b, Gp::RAX, Xmm(0))),
            vec![0x66, 0x48, 0x0f, 0x7e, 0xc0]
        );
        assert_eq!(
            enc(|b| fp_xor(b, 8, Xmm(1), Xmm(1))),
            vec![0x66, 0x0f, 0x57, 0xc9]
        );
        assert_eq!(
            enc(|b| cvt_fp_to_fp(b, 8, Xmm(0), Xmm(1))),
            vec![0xf3, 0x0f, 0x5a, 0xc1]
        );
    }

    #[test]
    fn cond_invert_roundtrip() {
        for cc in [
            Cond::O,
            Cond::NO,
            Cond::B,
            Cond::AE,
            Cond::E,
            Cond::NE,
            Cond::BE,
            Cond::A,
            Cond::S,
            Cond::NS,
            Cond::P,
            Cond::NP,
            Cond::L,
            Cond::GE,
            Cond::LE,
            Cond::G,
        ] {
            assert_eq!(cc.invert().invert(), cc);
        }
    }

    #[test]
    fn mov_mi_store_immediate() {
        assert_eq!(
            enc(|b| mov_mi(b, 8, Mem::base_disp(Gp::RBP, -8), 5)),
            vec![0x48, 0xc7, 0x45, 0xf8, 0x05, 0x00, 0x00, 0x00]
        );
        assert_eq!(
            enc(|b| mov_mi(b, 4, Mem::base(Gp::RAX), -1)),
            vec![0xc7, 0x00, 0xff, 0xff, 0xff, 0xff]
        );
    }

    #[test]
    fn byte_ops_use_rex_for_high_low_regs() {
        // mov dil, al needs REX
        assert_eq!(
            enc(|b| mov_rr(b, 1, Gp::RDI, Gp::RAX)),
            vec![0x40, 0x88, 0xc7]
        );
        // mov cl, al does not
        assert_eq!(enc(|b| mov_rr(b, 1, Gp::RCX, Gp::RAX)), vec![0x88, 0xc1]);
    }

    #[test]
    fn abs_symbol_move_has_relocation() {
        let mut buf = CodeBuffer::new();
        let sym = buf.declare_symbol("data", tpde_core::codebuf::SymbolBinding::Global, false);
        mov_sym_abs(&mut buf, Gp::RDI, sym, 0);
        assert_eq!(buf.relocs().len(), 1);
        assert_eq!(buf.relocs()[0].kind, RelocKind::Abs64);
        assert_eq!(buf.text()[0..2], [0x48, 0xbf]);
        assert_eq!(buf.text().len(), 10);
    }
}
