//! The AArch64 (AAPCS64) implementation of the framework's [`Target`] trait.

use crate::a64;
use tpde_core::callconv::{aapcs_a64, CallConv};
use tpde_core::codebuf::{CodeBuffer, Label, SymbolId};
use tpde_core::regs::{Reg, RegBank, RegSet};
use tpde_core::target::{FrameState, Target, TargetArch};

/// Callee-saved GP registers handled by the save/restore patch areas.
const GP_SAVE_ORDER: [u8; 10] = [19, 20, 21, 22, 23, 24, 25, 26, 27, 28];
/// Callee-saved FP registers (low 64 bits are callee-saved per AAPCS64).
const FP_SAVE_ORDER: [u8; 8] = [8, 9, 10, 11, 12, 13, 14, 15];
/// Every save/restore instruction is one 4-byte A64 instruction.
const SAVE_INSN_LEN: usize = 4;
/// Internal scratch register used for address computations that do not fit
/// an immediate offset. Distinct from the framework-visible scratch (x16).
const ADDR_SCRATCH: u8 = 17;

/// AArch64 AAPCS64 target.
#[derive(Debug)]
pub struct A64Target {
    cc: CallConv,
    gp: Vec<Reg>,
    fp: Vec<Reg>,
    fixed_gp: Vec<Reg>,
    fixed_fp: Vec<Reg>,
}

impl Default for A64Target {
    fn default() -> Self {
        Self::new()
    }
}

impl A64Target {
    /// Creates the target with its default register configuration.
    pub fn new() -> A64Target {
        let mut gp: Vec<Reg> = (0..16).map(|i| Reg::new(RegBank::GP, i)).collect();
        gp.extend((19..29).map(|i| Reg::new(RegBank::GP, i)));
        // x16/x17 are scratch, x18 is the platform register, x29/x30 fp/lr.
        gp.retain(|r| ![16, 17, 18].contains(&r.index()));
        let fp: Vec<Reg> = (0..31).map(|i| Reg::new(RegBank::FP, i)).collect();
        let fixed_gp = (25..29).map(|i| Reg::new(RegBank::GP, i)).collect();
        let fixed_fp = (12..16).map(|i| Reg::new(RegBank::FP, i)).collect();
        A64Target {
            cc: aapcs_a64(),
            gp,
            fp,
            fixed_gp,
            fixed_fp,
        }
    }

    fn total_save_slots() -> usize {
        GP_SAVE_ORDER.len() + FP_SAVE_ORDER.len()
    }

    fn save_slot_off(idx: usize) -> i32 {
        -(8 * (idx as i32 + 1))
    }

    /// Stores/loads relative to the frame pointer, falling back to an
    /// address computation in `x17` when the offset does not fit.
    fn frame_mem_access(
        &self,
        buf: &mut CodeBuffer,
        bank: RegBank,
        size: u32,
        off: i32,
        reg: Reg,
        is_store: bool,
    ) {
        let fits = (-256..256).contains(&off) || (off >= 0 && off < 4096 * size as i32);
        let (base, off) = if fits {
            (a64::FP, off)
        } else {
            // x17 = fp + off
            if off < 0 && -off < 4096 {
                a64::sub_imm(buf, true, ADDR_SCRATCH, a64::FP, (-off) as u32);
            } else if (0..4096).contains(&off) {
                a64::add_imm(buf, true, ADDR_SCRATCH, a64::FP, off as u32);
            } else {
                a64::mov_imm64(buf, ADDR_SCRATCH, off as i64 as u64);
                a64::add_rr(buf, true, ADDR_SCRATCH, a64::FP, ADDR_SCRATCH);
            }
            (ADDR_SCRATCH, 0)
        };
        match (bank, is_store) {
            (RegBank::GP, true) => a64::str(buf, size, reg.index(), base, off),
            (RegBank::GP, false) => a64::ldr(buf, size, reg.index(), base, off),
            (RegBank::FP, true) => a64::str_fp(buf, size, reg.index(), base, off),
            (RegBank::FP, false) => a64::ldr_fp(buf, size, reg.index(), base, off),
        }
    }
}

impl Target for A64Target {
    fn arch(&self) -> TargetArch {
        TargetArch::Aarch64
    }

    fn call_conv(&self) -> &CallConv {
        &self.cc
    }

    fn allocatable_regs(&self, bank: RegBank) -> &[Reg] {
        match bank {
            RegBank::GP => &self.gp,
            RegBank::FP => &self.fp,
        }
    }

    fn fixed_reg_candidates(&self, bank: RegBank) -> &[Reg] {
        match bank {
            RegBank::GP => &self.fixed_gp,
            RegBank::FP => &self.fixed_fp,
        }
    }

    fn frame_reg(&self) -> Reg {
        Reg::new(RegBank::GP, 29)
    }

    fn scratch_gp(&self) -> Reg {
        Reg::new(RegBank::GP, 16)
    }

    fn scratch_fp(&self) -> Reg {
        Reg::new(RegBank::FP, 31)
    }

    fn callee_save_area_size(&self) -> u32 {
        (Self::total_save_slots() as u32) * 8
    }

    fn emit_prologue(&self, buf: &mut CodeBuffer) -> FrameState {
        let func_start = buf.text_offset();
        a64::stp_pre(buf, a64::FP, a64::LR, a64::SP, -16);
        a64::mov_sp(buf, a64::FP, a64::SP);
        // movz x16, #framesize (patched) ; sub sp, sp, x16
        let patch = buf.text_offset();
        a64::movz(buf, true, 16, 0, 0);
        a64::sub_sp_reg(buf, 16);
        let save_area = buf.text_offset();
        for _ in 0..Self::total_save_slots() {
            a64::nop(buf);
        }
        FrameState {
            func_start,
            frame_size_patches: vec![patch],
            save_area: Some((save_area, (Self::total_save_slots() * SAVE_INSN_LEN) as u64)),
            restore_areas: Vec::new(),
        }
    }

    fn emit_epilogue_and_ret(&self, buf: &mut CodeBuffer, frame: &mut FrameState) {
        let restore_area = buf.text_offset();
        for _ in 0..Self::total_save_slots() {
            a64::nop(buf);
        }
        frame.restore_areas.push((
            restore_area,
            (Self::total_save_slots() * SAVE_INSN_LEN) as u64,
        ));
        a64::mov_sp(buf, a64::SP, a64::FP);
        a64::ldp_post(buf, a64::FP, a64::LR, a64::SP, 16);
        a64::ret(buf);
    }

    fn finish_func(
        &self,
        buf: &mut CodeBuffer,
        frame: &FrameState,
        frame_size: u32,
        used_callee_saved: RegSet,
    ) {
        let size = (frame_size + 15) & !15;
        assert!(size < 65536, "frame larger than 64 KiB not supported");
        for &off in &frame.frame_size_patches {
            // patch the imm16 of the movz (bits 5..21)
            let word = crate::a64::movz_word(true, 16, size as u16, 0);
            buf.patch_text(off, &word.to_le_bytes());
        }
        let mut tmp = CodeBuffer::new();
        let mut emit_area = |tmp: &mut CodeBuffer, area: Option<(u64, u64)>, is_save: bool| {
            let Some((start, _)) = area else { return };
            tmp.text_mut().clear();
            for (idx, reg) in GP_SAVE_ORDER
                .iter()
                .map(|&i| Reg::new(RegBank::GP, i))
                .chain(FP_SAVE_ORDER.iter().map(|&i| Reg::new(RegBank::FP, i)))
                .enumerate()
            {
                if !used_callee_saved.contains(reg) {
                    continue;
                }
                let off = Self::save_slot_off(idx);
                match (reg.bank(), is_save) {
                    (RegBank::GP, true) => a64::str(tmp, 8, reg.index(), a64::FP, off),
                    (RegBank::GP, false) => a64::ldr(tmp, 8, reg.index(), a64::FP, off),
                    (RegBank::FP, true) => a64::str_fp(tmp, 8, reg.index(), a64::FP, off),
                    (RegBank::FP, false) => a64::ldr_fp(tmp, 8, reg.index(), a64::FP, off),
                }
            }
            buf.patch_text(start, tmp.text());
        };
        emit_area(&mut tmp, frame.save_area, true);
        for &(start, len) in &frame.restore_areas {
            emit_area(&mut tmp, Some((start, len)), false);
        }
    }

    fn emit_mov_rr(&self, buf: &mut CodeBuffer, bank: RegBank, size: u32, dst: Reg, src: Reg) {
        match bank {
            RegBank::GP => a64::mov_rr(
                buf,
                size > 4 || size == 0 || size >= 8,
                dst.index(),
                src.index(),
            ),
            RegBank::FP => a64::fmov_rr(buf, size, dst.index(), src.index()),
        }
    }

    fn emit_frame_store(&self, buf: &mut CodeBuffer, bank: RegBank, size: u32, off: i32, src: Reg) {
        self.frame_mem_access(buf, bank, size, off, src, true);
    }

    fn emit_frame_load(&self, buf: &mut CodeBuffer, bank: RegBank, size: u32, dst: Reg, off: i32) {
        self.frame_mem_access(buf, bank, size, off, dst, false);
    }

    fn emit_frame_addr(&self, buf: &mut CodeBuffer, dst: Reg, off: i32) {
        if off < 0 && -off < 4096 {
            a64::sub_imm(buf, true, dst.index(), a64::FP, (-off) as u32);
        } else if (0..4096).contains(&off) {
            a64::add_imm(buf, true, dst.index(), a64::FP, off as u32);
        } else {
            a64::mov_imm64(buf, dst.index(), off as i64 as u64);
            a64::add_rr(buf, true, dst.index(), a64::FP, dst.index());
        }
    }

    fn emit_const(&self, buf: &mut CodeBuffer, bank: RegBank, _size: u32, dst: Reg, value: u64) {
        match bank {
            RegBank::GP => a64::mov_imm64(buf, dst.index(), value),
            RegBank::FP => {
                let scratch = self.scratch_gp();
                a64::mov_imm64(buf, scratch.index(), value);
                a64::fmov_from_gp(buf, 8, dst.index(), scratch.index());
            }
        }
    }

    fn emit_jump(&self, buf: &mut CodeBuffer, label: Label) {
        a64::b_label(buf, label);
    }

    fn emit_call_sym(&self, buf: &mut CodeBuffer, sym: SymbolId) {
        a64::bl_sym(buf, sym);
    }

    fn emit_call_reg(&self, buf: &mut CodeBuffer, reg: Reg) {
        a64::blr(buf, reg.index());
    }

    fn emit_sp_adjust(&self, buf: &mut CodeBuffer, delta: i32) {
        if delta < 0 {
            a64::sub_imm(buf, true, a64::SP, a64::SP, (-delta) as u32);
        } else if delta > 0 {
            a64::add_imm(buf, true, a64::SP, a64::SP, delta as u32);
        }
    }

    fn emit_sp_store(&self, buf: &mut CodeBuffer, bank: RegBank, size: u32, off: u32, src: Reg) {
        match bank {
            RegBank::GP => a64::str(buf, size, src.index(), a64::SP, off as i32),
            RegBank::FP => a64::str_fp(buf, size, src.index(), a64::SP, off as i32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prologue_epilogue_patch() {
        let t = A64Target::new();
        let mut buf = CodeBuffer::new();
        let mut frame = t.emit_prologue(&mut buf);
        a64::nop(&mut buf);
        t.emit_epilogue_and_ret(&mut buf, &mut frame);
        let mut used = RegSet::empty();
        used.insert(Reg::new(RegBank::GP, 19));
        used.insert(Reg::new(RegBank::FP, 8));
        t.finish_func(&mut buf, &frame, 64, used);
        let w0 = u32::from_le_bytes(buf.text()[0..4].try_into().unwrap());
        assert_eq!(w0, 0xa9bf7bfd); // stp x29, x30, [sp, #-16]!
                                    // movz x16, #64 patched in
        let w2 = u32::from_le_bytes(buf.text()[8..12].try_into().unwrap());
        assert_eq!(w2, 0xd2800810);
        // save area: first instruction saves x19 at [x29, #-8] (stur form)
        let w4 = u32::from_le_bytes(buf.text()[16..20].try_into().unwrap());
        let mut tmp = CodeBuffer::new();
        a64::str(&mut tmp, 8, 19, a64::FP, -8);
        assert_eq!(w4, u32::from_le_bytes(tmp.text()[0..4].try_into().unwrap()));
        // ends with ret
        let last = u32::from_le_bytes(buf.text()[buf.text().len() - 4..].try_into().unwrap());
        assert_eq!(last, 0xd65f03c0);
    }

    #[test]
    fn reserved_registers_not_allocatable() {
        let t = A64Target::new();
        let gp = t.allocatable_regs(RegBank::GP);
        for bad in [16u8, 17, 18, 29, 30, 31] {
            assert!(
                !gp.iter().any(|r| r.index() == bad),
                "x{bad} must not be allocatable"
            );
        }
        assert_eq!(t.callee_save_area_size(), 144);
    }

    #[test]
    fn frame_access_far_offsets_use_scratch() {
        let t = A64Target::new();
        let mut buf = CodeBuffer::new();
        t.emit_frame_store(&mut buf, RegBank::GP, 8, -1000, Reg::new(RegBank::GP, 0));
        // must emit more than one instruction (address computation + store)
        assert!(buf.text().len() >= 8);
        let mut buf2 = CodeBuffer::new();
        t.emit_frame_load(&mut buf2, RegBank::GP, 8, Reg::new(RegBank::GP, 0), -8);
        assert_eq!(buf2.text().len(), 4);
    }

    #[test]
    fn const_materialization() {
        let t = A64Target::new();
        let mut buf = CodeBuffer::new();
        t.emit_const(
            &mut buf,
            RegBank::GP,
            8,
            Reg::new(RegBank::GP, 0),
            0x1234_5678_9abc_def0,
        );
        assert_eq!(buf.text().len(), 16); // movz + 3x movk
        let mut buf = CodeBuffer::new();
        t.emit_const(
            &mut buf,
            RegBank::FP,
            8,
            Reg::new(RegBank::FP, 0),
            0x3ff0000000000000,
        );
        assert!(buf.text().len() >= 8);
    }
}
