//! AArch64 (A64) instruction encoder.
//!
//! Emits 32-bit instruction words into a [`CodeBuffer`]. The subset covers
//! what the TPDE back-ends and snippet encoders need: integer ALU and
//! logical operations, multiply/divide, shifts, loads/stores (scaled and
//! unscaled), load/store pairs for the prologue, branches, compares,
//! conditional select, and scalar floating-point operations.
//!
//! Every instruction is committed as one whole little-endian word;
//! multi-instruction sequences (`mov_imm64`, `adr_sym`) are assembled in an
//! on-stack [`tpde_core::codebuf::InstBuf`] window and committed with a
//! single batched write. Branches to labels that are already bound
//! (back-edges) encode their displacement immediately; forward branches go
//! through the code buffer's fixup machinery.
//!
//! Registers are architectural numbers (`0..=30`; 31 is `xzr`/`wzr` or `sp`
//! depending on the instruction, as in the ISA).

use tpde_core::codebuf::{
    branch19_imm, branch26_imm, CodeBuffer, FixupKind, InstBuf, Label, Reloc, RelocKind,
    SectionKind, SymbolId,
};

/// The zero register / stack pointer number.
pub const ZR: u8 = 31;
/// The stack pointer number (same encoding slot as `ZR`).
pub const SP: u8 = 31;
/// Frame pointer.
pub const FP: u8 = 29;
/// Link register.
pub const LR: u8 = 30;

/// AArch64 condition codes.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Cond {
    Eq = 0,
    Ne = 1,
    Hs = 2,
    Lo = 3,
    Mi = 4,
    Pl = 5,
    Vs = 6,
    Vc = 7,
    Hi = 8,
    Ls = 9,
    Ge = 10,
    Lt = 11,
    Gt = 12,
    Le = 13,
    Al = 14,
}

impl Cond {
    /// The inverted condition.
    pub fn invert(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Hs => Cond::Lo,
            Cond::Lo => Cond::Hs,
            Cond::Mi => Cond::Pl,
            Cond::Pl => Cond::Mi,
            Cond::Vs => Cond::Vc,
            Cond::Vc => Cond::Vs,
            Cond::Hi => Cond::Ls,
            Cond::Ls => Cond::Hi,
            Cond::Ge => Cond::Lt,
            Cond::Lt => Cond::Ge,
            Cond::Gt => Cond::Le,
            Cond::Le => Cond::Gt,
            Cond::Al => Cond::Al,
        }
    }
}

fn emit(buf: &mut CodeBuffer, word: u32) {
    buf.emit_u32(word);
}

fn sf(is64: bool) -> u32 {
    if is64 {
        1 << 31
    } else {
        0
    }
}

// --- moves and constants ----------------------------------------------------------

/// `mov rd, rm` (register move via `orr rd, zr, rm`).
pub fn mov_rr(buf: &mut CodeBuffer, is64: bool, rd: u8, rm: u8) {
    emit(
        buf,
        sf(is64) | 0x2A00_03E0 | ((rm as u32) << 16) | rd as u32,
    );
}

/// `mov rd, sp` / `mov sp, rd` (uses `add rd, rn, #0` which allows SP).
pub fn mov_sp(buf: &mut CodeBuffer, rd: u8, rn: u8) {
    add_imm(buf, true, rd, rn, 0);
}

pub(crate) fn movz_word(is64: bool, rd: u8, imm16: u16, hw: u8) -> u32 {
    sf(is64) | 0x5280_0000 | ((hw as u32) << 21) | ((imm16 as u32) << 5) | rd as u32
}

fn movk_word(is64: bool, rd: u8, imm16: u16, hw: u8) -> u32 {
    sf(is64) | 0x7280_0000 | ((hw as u32) << 21) | ((imm16 as u32) << 5) | rd as u32
}

/// `movz rd, #imm16, lsl #(hw*16)`.
pub fn movz(buf: &mut CodeBuffer, is64: bool, rd: u8, imm16: u16, hw: u8) {
    emit(buf, movz_word(is64, rd, imm16, hw));
}

/// `movk rd, #imm16, lsl #(hw*16)`.
pub fn movk(buf: &mut CodeBuffer, is64: bool, rd: u8, imm16: u16, hw: u8) {
    emit(buf, movk_word(is64, rd, imm16, hw));
}

/// `movn rd, #imm16, lsl #(hw*16)`.
pub fn movn(buf: &mut CodeBuffer, is64: bool, rd: u8, imm16: u16, hw: u8) {
    emit(
        buf,
        sf(is64) | 0x1280_0000 | ((hw as u32) << 21) | ((imm16 as u32) << 5) | rd as u32,
    );
}

/// Materializes an arbitrary 64-bit constant using `movz`/`movk` (1–4
/// instructions), committed as one batched write.
pub fn mov_imm64(buf: &mut CodeBuffer, rd: u8, value: u64) {
    if value == 0 {
        movz(buf, true, rd, 0, 0);
        return;
    }
    let mut seq = InstBuf::new();
    let mut first = true;
    for hw in 0..4u8 {
        let chunk = ((value >> (hw * 16)) & 0xffff) as u16;
        if chunk != 0 || (hw == 3 && first) {
            if first {
                seq.push_u32(movz_word(true, rd, chunk, hw));
                first = false;
            } else {
                seq.push_u32(movk_word(true, rd, chunk, hw));
            }
        }
    }
    if first {
        seq.push_u32(movz_word(true, rd, 0, 0));
    }
    buf.emit_inst(seq);
}

// --- integer arithmetic --------------------------------------------------------------

/// `add rd, rn, rm`.
pub fn add_rr(buf: &mut CodeBuffer, is64: bool, rd: u8, rn: u8, rm: u8) {
    emit(
        buf,
        sf(is64) | 0x0B00_0000 | ((rm as u32) << 16) | ((rn as u32) << 5) | rd as u32,
    );
}

/// `sub rd, rn, rm`.
pub fn sub_rr(buf: &mut CodeBuffer, is64: bool, rd: u8, rn: u8, rm: u8) {
    emit(
        buf,
        sf(is64) | 0x4B00_0000 | ((rm as u32) << 16) | ((rn as u32) << 5) | rd as u32,
    );
}

/// `subs rd, rn, rm` (also `cmp` when `rd == zr`).
pub fn subs_rr(buf: &mut CodeBuffer, is64: bool, rd: u8, rn: u8, rm: u8) {
    emit(
        buf,
        sf(is64) | 0x6B00_0000 | ((rm as u32) << 16) | ((rn as u32) << 5) | rd as u32,
    );
}

/// `adds rd, rn, rm`.
pub fn adds_rr(buf: &mut CodeBuffer, is64: bool, rd: u8, rn: u8, rm: u8) {
    emit(
        buf,
        sf(is64) | 0x2B00_0000 | ((rm as u32) << 16) | ((rn as u32) << 5) | rd as u32,
    );
}

/// `cmp rn, rm`.
pub fn cmp_rr(buf: &mut CodeBuffer, is64: bool, rn: u8, rm: u8) {
    subs_rr(buf, is64, ZR, rn, rm);
}

/// `add rd, rn, #imm12` (also valid for SP operands).
pub fn add_imm(buf: &mut CodeBuffer, is64: bool, rd: u8, rn: u8, imm12: u32) {
    debug_assert!(imm12 < 4096);
    emit(
        buf,
        sf(is64) | 0x1100_0000 | (imm12 << 10) | ((rn as u32) << 5) | rd as u32,
    );
}

/// `sub rd, rn, #imm12`.
pub fn sub_imm(buf: &mut CodeBuffer, is64: bool, rd: u8, rn: u8, imm12: u32) {
    debug_assert!(imm12 < 4096);
    emit(
        buf,
        sf(is64) | 0x5100_0000 | (imm12 << 10) | ((rn as u32) << 5) | rd as u32,
    );
}

/// `sub sp, sp, rm` (extended-register form, usable with SP operands).
pub fn sub_sp_reg(buf: &mut CodeBuffer, rm: u8) {
    emit(buf, 0xCB20_63FF | ((rm as u32) << 16));
}

/// `add sp, sp, rm` (extended-register form, usable with SP operands).
pub fn add_sp_reg(buf: &mut CodeBuffer, rm: u8) {
    emit(buf, 0x8B20_63FF | ((rm as u32) << 16));
}

/// `subs zr, rn, #imm12` (`cmp rn, #imm`).
pub fn cmp_imm(buf: &mut CodeBuffer, is64: bool, rn: u8, imm12: u32) {
    debug_assert!(imm12 < 4096);
    emit(
        buf,
        sf(is64) | 0x7100_0000 | (imm12 << 10) | ((rn as u32) << 5) | ZR as u32,
    );
}

/// `and rd, rn, rm`.
pub fn and_rr(buf: &mut CodeBuffer, is64: bool, rd: u8, rn: u8, rm: u8) {
    emit(
        buf,
        sf(is64) | 0x0A00_0000 | ((rm as u32) << 16) | ((rn as u32) << 5) | rd as u32,
    );
}

/// `orr rd, rn, rm`.
pub fn orr_rr(buf: &mut CodeBuffer, is64: bool, rd: u8, rn: u8, rm: u8) {
    emit(
        buf,
        sf(is64) | 0x2A00_0000 | ((rm as u32) << 16) | ((rn as u32) << 5) | rd as u32,
    );
}

/// `eor rd, rn, rm`.
pub fn eor_rr(buf: &mut CodeBuffer, is64: bool, rd: u8, rn: u8, rm: u8) {
    emit(
        buf,
        sf(is64) | 0x4A00_0000 | ((rm as u32) << 16) | ((rn as u32) << 5) | rd as u32,
    );
}

/// `ands zr, rn, rm` (`tst rn, rm`).
pub fn tst_rr(buf: &mut CodeBuffer, is64: bool, rn: u8, rm: u8) {
    emit(
        buf,
        sf(is64) | 0x6A00_0000 | ((rm as u32) << 16) | ((rn as u32) << 5) | ZR as u32,
    );
}

/// `madd rd, rn, rm, ra` (`rd = ra + rn*rm`); `mul` when `ra == zr`.
pub fn madd(buf: &mut CodeBuffer, is64: bool, rd: u8, rn: u8, rm: u8, ra: u8) {
    emit(
        buf,
        sf(is64)
            | 0x1B00_0000
            | ((rm as u32) << 16)
            | ((ra as u32) << 10)
            | ((rn as u32) << 5)
            | rd as u32,
    );
}

/// `msub rd, rn, rm, ra` (`rd = ra - rn*rm`); used for remainders.
pub fn msub(buf: &mut CodeBuffer, is64: bool, rd: u8, rn: u8, rm: u8, ra: u8) {
    emit(
        buf,
        sf(is64)
            | 0x1B00_8000
            | ((rm as u32) << 16)
            | ((ra as u32) << 10)
            | ((rn as u32) << 5)
            | rd as u32,
    );
}

/// `mul rd, rn, rm`.
pub fn mul(buf: &mut CodeBuffer, is64: bool, rd: u8, rn: u8, rm: u8) {
    madd(buf, is64, rd, rn, rm, ZR);
}

/// `sdiv rd, rn, rm`.
pub fn sdiv(buf: &mut CodeBuffer, is64: bool, rd: u8, rn: u8, rm: u8) {
    emit(
        buf,
        sf(is64) | 0x1AC0_0C00 | ((rm as u32) << 16) | ((rn as u32) << 5) | rd as u32,
    );
}

/// `udiv rd, rn, rm`.
pub fn udiv(buf: &mut CodeBuffer, is64: bool, rd: u8, rn: u8, rm: u8) {
    emit(
        buf,
        sf(is64) | 0x1AC0_0800 | ((rm as u32) << 16) | ((rn as u32) << 5) | rd as u32,
    );
}

/// Variable shifts: `lslv`, `lsrv`, `asrv`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum ShiftOp {
    Lsl,
    Lsr,
    Asr,
}

/// `lslv/lsrv/asrv rd, rn, rm`.
pub fn shift_rr(buf: &mut CodeBuffer, is64: bool, op: ShiftOp, rd: u8, rn: u8, rm: u8) {
    let opc = match op {
        ShiftOp::Lsl => 0x2000,
        ShiftOp::Lsr => 0x2400,
        ShiftOp::Asr => 0x2800,
    };
    emit(
        buf,
        sf(is64) | 0x1AC0_0000 | opc | ((rm as u32) << 16) | ((rn as u32) << 5) | rd as u32,
    );
}

/// `ubfm rd, rn, #immr, #imms` (64-bit uses N=1).
pub fn ubfm(buf: &mut CodeBuffer, is64: bool, rd: u8, rn: u8, immr: u8, imms: u8) {
    let n = if is64 { 1 << 22 } else { 0 };
    emit(
        buf,
        sf(is64)
            | 0x5300_0000
            | n
            | ((immr as u32) << 16)
            | ((imms as u32) << 10)
            | ((rn as u32) << 5)
            | rd as u32,
    );
}

/// `sbfm rd, rn, #immr, #imms`.
pub fn sbfm(buf: &mut CodeBuffer, is64: bool, rd: u8, rn: u8, immr: u8, imms: u8) {
    let n = if is64 { 1 << 22 } else { 0 };
    emit(
        buf,
        sf(is64)
            | 0x1300_0000
            | n
            | ((immr as u32) << 16)
            | ((imms as u32) << 10)
            | ((rn as u32) << 5)
            | rd as u32,
    );
}

/// `lsl rd, rn, #shift` (immediate form, via `ubfm`).
pub fn lsl_imm(buf: &mut CodeBuffer, is64: bool, rd: u8, rn: u8, shift: u8) {
    let bits = if is64 { 64u8 } else { 32 };
    ubfm(buf, is64, rd, rn, (bits - shift) % bits, bits - 1 - shift);
}

/// `lsr rd, rn, #shift` (immediate form).
pub fn lsr_imm(buf: &mut CodeBuffer, is64: bool, rd: u8, rn: u8, shift: u8) {
    let bits = if is64 { 63u8 } else { 31 };
    ubfm(buf, is64, rd, rn, shift, bits);
}

/// `asr rd, rn, #shift` (immediate form).
pub fn asr_imm(buf: &mut CodeBuffer, is64: bool, rd: u8, rn: u8, shift: u8) {
    let bits = if is64 { 63u8 } else { 31 };
    sbfm(buf, is64, rd, rn, shift, bits);
}

/// Sign-extend byte/halfword/word to 64 bits.
pub fn sxt(buf: &mut CodeBuffer, from_size: u32, rd: u8, rn: u8) {
    match from_size {
        1 => sbfm(buf, true, rd, rn, 0, 7),
        2 => sbfm(buf, true, rd, rn, 0, 15),
        4 => sbfm(buf, true, rd, rn, 0, 31),
        _ => mov_rr(buf, true, rd, rn),
    }
}

/// Zero-extend byte/halfword to 32 bits (words are zero-extended implicitly).
pub fn uxt(buf: &mut CodeBuffer, from_size: u32, rd: u8, rn: u8) {
    match from_size {
        1 => ubfm(buf, false, rd, rn, 0, 7),
        2 => ubfm(buf, false, rd, rn, 0, 15),
        _ => mov_rr(buf, false, rd, rn),
    }
}

/// `csel rd, rn, rm, cond`.
pub fn csel(buf: &mut CodeBuffer, is64: bool, rd: u8, rn: u8, rm: u8, cond: Cond) {
    emit(
        buf,
        sf(is64)
            | 0x1A80_0000
            | ((rm as u32) << 16)
            | ((cond as u32) << 12)
            | ((rn as u32) << 5)
            | rd as u32,
    );
}

/// `cset rd, cond` (via `csinc rd, zr, zr, !cond`).
pub fn cset(buf: &mut CodeBuffer, is64: bool, rd: u8, cond: Cond) {
    let inv = cond.invert();
    emit(
        buf,
        sf(is64)
            | 0x1A80_0400
            | ((ZR as u32) << 16)
            | ((inv as u32) << 12)
            | ((ZR as u32) << 5)
            | rd as u32,
    );
}

// --- loads & stores ---------------------------------------------------------------------

fn ldst_size_bits(size: u32) -> (u32, u32) {
    // returns (size field, scale)
    match size {
        1 => (0, 0),
        2 => (1, 1),
        4 => (2, 2),
        _ => (3, 3),
    }
}

/// Integer load from `[rn + offset]`. Picks the scaled unsigned-offset form
/// when possible, otherwise the unscaled (`ldur`) form; large offsets are
/// not supported directly (callers materialize the address).
pub fn ldr(buf: &mut CodeBuffer, size: u32, rt: u8, rn: u8, offset: i32) {
    let (sz, scale) = ldst_size_bits(size);
    let base = (sz << 30) | 0x3940_0000;
    if offset >= 0 && (offset as u32).is_multiple_of(1 << scale) && (offset as u32 >> scale) < 4096
    {
        emit(
            buf,
            base | (((offset as u32) >> scale) << 10) | ((rn as u32) << 5) | rt as u32,
        );
    } else {
        debug_assert!((-256..256).contains(&offset), "ldur offset out of range");
        let imm9 = (offset as u32) & 0x1ff;
        emit(
            buf,
            (sz << 30) | 0x3840_0000 | (imm9 << 12) | ((rn as u32) << 5) | rt as u32,
        );
    }
}

/// Integer store to `[rn + offset]`.
pub fn str(buf: &mut CodeBuffer, size: u32, rt: u8, rn: u8, offset: i32) {
    let (sz, scale) = ldst_size_bits(size);
    let base = (sz << 30) | 0x3900_0000;
    if offset >= 0 && (offset as u32).is_multiple_of(1 << scale) && (offset as u32 >> scale) < 4096
    {
        emit(
            buf,
            base | (((offset as u32) >> scale) << 10) | ((rn as u32) << 5) | rt as u32,
        );
    } else {
        debug_assert!((-256..256).contains(&offset), "stur offset out of range");
        let imm9 = (offset as u32) & 0x1ff;
        emit(
            buf,
            (sz << 30) | 0x3800_0000 | (imm9 << 12) | ((rn as u32) << 5) | rt as u32,
        );
    }
}

/// FP/SIMD load from `[rn + offset]` (4 or 8 bytes).
pub fn ldr_fp(buf: &mut CodeBuffer, size: u32, rt: u8, rn: u8, offset: i32) {
    let (sz, scale) = ldst_size_bits(size);
    if offset >= 0 && (offset as u32).is_multiple_of(1 << scale) && (offset as u32 >> scale) < 4096
    {
        emit(
            buf,
            (sz << 30)
                | 0x3D40_0000
                | (((offset as u32) >> scale) << 10)
                | ((rn as u32) << 5)
                | rt as u32,
        );
    } else {
        let imm9 = (offset as u32) & 0x1ff;
        emit(
            buf,
            (sz << 30) | 0x3C40_0000 | (imm9 << 12) | ((rn as u32) << 5) | rt as u32,
        );
    }
}

/// FP/SIMD store to `[rn + offset]`.
pub fn str_fp(buf: &mut CodeBuffer, size: u32, rt: u8, rn: u8, offset: i32) {
    let (sz, scale) = ldst_size_bits(size);
    if offset >= 0 && (offset as u32).is_multiple_of(1 << scale) && (offset as u32 >> scale) < 4096
    {
        emit(
            buf,
            (sz << 30)
                | 0x3D00_0000
                | (((offset as u32) >> scale) << 10)
                | ((rn as u32) << 5)
                | rt as u32,
        );
    } else {
        let imm9 = (offset as u32) & 0x1ff;
        emit(
            buf,
            (sz << 30) | 0x3C00_0000 | (imm9 << 12) | ((rn as u32) << 5) | rt as u32,
        );
    }
}

/// Sign-extending load (8/16/32 bits into a 64-bit register).
pub fn ldrs(buf: &mut CodeBuffer, from_size: u32, rt: u8, rn: u8, offset: i32) {
    let (sz, scale) = ldst_size_bits(from_size);
    debug_assert!(from_size <= 4);
    // opc = 10 (sign-extend to 64 bit)
    let base = (sz << 30) | 0x3980_0000;
    if offset >= 0 && (offset as u32).is_multiple_of(1 << scale) && (offset as u32 >> scale) < 4096
    {
        emit(
            buf,
            base | (((offset as u32) >> scale) << 10) | ((rn as u32) << 5) | rt as u32,
        );
    } else {
        let imm9 = (offset as u32) & 0x1ff;
        emit(
            buf,
            (sz << 30) | 0x3880_0000 | (imm9 << 12) | ((rn as u32) << 5) | rt as u32,
        );
    }
}

/// `stp rt, rt2, [rn, #offset]!` (pre-index).
pub fn stp_pre(buf: &mut CodeBuffer, rt: u8, rt2: u8, rn: u8, offset: i32) {
    let imm7 = ((offset / 8) as u32) & 0x7f;
    emit(
        buf,
        0xA980_0000 | (imm7 << 15) | ((rt2 as u32) << 10) | ((rn as u32) << 5) | rt as u32,
    );
}

/// `ldp rt, rt2, [rn], #offset` (post-index).
pub fn ldp_post(buf: &mut CodeBuffer, rt: u8, rt2: u8, rn: u8, offset: i32) {
    let imm7 = ((offset / 8) as u32) & 0x7f;
    emit(
        buf,
        0xA8C0_0000 | (imm7 << 15) | ((rt2 as u32) << 10) | ((rn as u32) << 5) | rt as u32,
    );
}

/// `stp rt, rt2, [rn, #offset]` (signed offset, no writeback).
pub fn stp(buf: &mut CodeBuffer, rt: u8, rt2: u8, rn: u8, offset: i32) {
    let imm7 = ((offset / 8) as u32) & 0x7f;
    emit(
        buf,
        0xA900_0000 | (imm7 << 15) | ((rt2 as u32) << 10) | ((rn as u32) << 5) | rt as u32,
    );
}

/// `ldp rt, rt2, [rn, #offset]` (signed offset, no writeback).
pub fn ldp(buf: &mut CodeBuffer, rt: u8, rt2: u8, rn: u8, offset: i32) {
    let imm7 = ((offset / 8) as u32) & 0x7f;
    emit(
        buf,
        0xA940_0000 | (imm7 << 15) | ((rt2 as u32) << 10) | ((rn as u32) << 5) | rt as u32,
    );
}

// --- branches ------------------------------------------------------------------------------

/// `b label`. Back-edges (bound labels) encode their displacement
/// immediately; forward references record a fixup.
pub fn b_label(buf: &mut CodeBuffer, label: Label) {
    let off = buf.text_offset();
    if let Some(target) = buf.label_offset(label) {
        if let Ok(imm) = branch26_imm(off, target) {
            emit(buf, 0x1400_0000 | imm);
            return;
        }
    }
    emit(buf, 0x1400_0000);
    buf.add_fixup(off, label, FixupKind::A64Branch26);
}

/// Commits a branch19-class instruction word: immediate encoding for bound
/// labels whose displacement fits, fixup otherwise.
fn emit_branch19(buf: &mut CodeBuffer, word: u32, label: Label) {
    let off = buf.text_offset();
    if let Some(target) = buf.label_offset(label) {
        if let Ok(imm) = branch19_imm(off, target) {
            emit(buf, word | (imm << 5));
            return;
        }
    }
    emit(buf, word);
    buf.add_fixup(off, label, FixupKind::A64Branch19);
}

/// `b.cond label`.
pub fn bcond_label(buf: &mut CodeBuffer, cond: Cond, label: Label) {
    emit_branch19(buf, 0x5400_0000 | cond as u32, label);
}

/// `cbz rt, label` / `cbnz rt, label`.
pub fn cbz_label(buf: &mut CodeBuffer, is64: bool, nonzero: bool, rt: u8, label: Label) {
    let op = if nonzero { 0x3500_0000 } else { 0x3400_0000 };
    emit_branch19(buf, sf(is64) | op | rt as u32, label);
}

/// `bl sym` (with a CALL26 relocation).
pub fn bl_sym(buf: &mut CodeBuffer, sym: SymbolId) {
    let off = buf.text_offset();
    emit(buf, 0x9400_0000);
    buf.add_reloc(Reloc {
        section: SectionKind::Text,
        offset: off,
        symbol: sym,
        kind: RelocKind::Call26,
        addend: 0,
    });
}

/// `blr rn` (indirect call).
pub fn blr(buf: &mut CodeBuffer, rn: u8) {
    emit(buf, 0xD63F_0000 | ((rn as u32) << 5));
}

/// `br rn` (indirect branch).
pub fn br(buf: &mut CodeBuffer, rn: u8) {
    emit(buf, 0xD61F_0000 | ((rn as u32) << 5));
}

/// `ret`.
pub fn ret(buf: &mut CodeBuffer) {
    emit(buf, 0xD65F_03C0);
}

/// `nop`.
pub fn nop(buf: &mut CodeBuffer) {
    emit(buf, 0xD503_201F);
}

/// Loads the 64-bit absolute address of a symbol using a `movz`/`movk`
/// sequence patched via an `Abs64` relocation stored in a literal-free way:
/// we emit `adrp`+`add` instead, which is the conventional approach.
pub fn adr_sym(buf: &mut CodeBuffer, rd: u8, sym: SymbolId) {
    let off = buf.text_offset();
    let mut seq = InstBuf::new();
    seq.push_u32(0x9000_0000 | rd as u32); // adrp rd, sym
    seq.push_u32(0x9100_0000 | ((rd as u32) << 5) | rd as u32); // add rd, rd, #lo12
    buf.emit_inst(seq);
    buf.add_reloc(Reloc {
        section: SectionKind::Text,
        offset: off,
        symbol: sym,
        kind: RelocKind::AdrpPage,
        addend: 0,
    });
    buf.add_reloc(Reloc {
        section: SectionKind::Text,
        offset: off + 4,
        symbol: sym,
        kind: RelocKind::AddLo12,
        addend: 0,
    });
}

// --- scalar floating point ----------------------------------------------------------------

fn fp_type(size: u32) -> u32 {
    if size == 4 {
        0
    } else {
        1 << 22
    }
}

/// `fmov fd, fn` (register move).
pub fn fmov_rr(buf: &mut CodeBuffer, size: u32, rd: u8, rn: u8) {
    emit(
        buf,
        0x1E20_4000 | fp_type(size) | ((rn as u32) << 5) | rd as u32,
    );
}

/// Scalar FP arithmetic: `fadd`, `fsub`, `fmul`, `fdiv`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum FpOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// `fadd/fsub/fmul/fdiv fd, fn, fm`.
pub fn fp_arith(buf: &mut CodeBuffer, size: u32, op: FpOp, rd: u8, rn: u8, rm: u8) {
    let opc = match op {
        FpOp::Add => 0x2800,
        FpOp::Sub => 0x3800,
        FpOp::Mul => 0x0800,
        FpOp::Div => 0x1800,
    };
    emit(
        buf,
        0x1E20_0000 | fp_type(size) | opc | ((rm as u32) << 16) | ((rn as u32) << 5) | rd as u32,
    );
}

/// `fneg fd, fn`.
pub fn fneg(buf: &mut CodeBuffer, size: u32, rd: u8, rn: u8) {
    emit(
        buf,
        0x1E21_4000 | fp_type(size) | ((rn as u32) << 5) | rd as u32,
    );
}

/// `fcmp fn, fm`.
pub fn fcmp(buf: &mut CodeBuffer, size: u32, rn: u8, rm: u8) {
    emit(
        buf,
        0x1E20_2000 | fp_type(size) | ((rm as u32) << 16) | ((rn as u32) << 5),
    );
}

/// `scvtf fd, rn` (signed integer to FP; `int64` selects the source width).
pub fn scvtf(buf: &mut CodeBuffer, fp_size: u32, int64: bool, rd: u8, rn: u8) {
    emit(
        buf,
        sf(int64) | 0x1E22_0000 | fp_type(fp_size) | ((rn as u32) << 5) | rd as u32,
    );
}

/// `ucvtf fd, rn` (unsigned integer to FP).
pub fn ucvtf(buf: &mut CodeBuffer, fp_size: u32, int64: bool, rd: u8, rn: u8) {
    emit(
        buf,
        sf(int64) | 0x1E23_0000 | fp_type(fp_size) | ((rn as u32) << 5) | rd as u32,
    );
}

/// `fcvtzs rd, fn` (FP to signed integer, truncating).
pub fn fcvtzs(buf: &mut CodeBuffer, fp_size: u32, int64: bool, rd: u8, rn: u8) {
    emit(
        buf,
        sf(int64) | 0x1E38_0000 | fp_type(fp_size) | ((rn as u32) << 5) | rd as u32,
    );
}

/// `fcvt` between single and double precision (`to_size` 4 or 8).
pub fn fcvt(buf: &mut CodeBuffer, to_size: u32, rd: u8, rn: u8) {
    let (ty, opc) = if to_size == 8 {
        (0u32, 1u32) // from single to double
    } else {
        (1 << 22, 0) // from double to single
    };
    emit(
        buf,
        0x1E22_4000 | ty | (opc << 15) | ((rn as u32) << 5) | rd as u32,
    );
}

/// `fmov xd, dn` / `fmov wd, sn` (FP to GP bit move).
pub fn fmov_to_gp(buf: &mut CodeBuffer, size: u32, rd: u8, rn: u8) {
    if size == 8 {
        emit(buf, 0x9E66_0000 | ((rn as u32) << 5) | rd as u32);
    } else {
        emit(buf, 0x1E26_0000 | ((rn as u32) << 5) | rd as u32);
    }
}

/// `fmov dd, xn` / `fmov sd, wn` (GP to FP bit move).
pub fn fmov_from_gp(buf: &mut CodeBuffer, size: u32, rd: u8, rn: u8) {
    if size == 8 {
        emit(buf, 0x9E67_0000 | ((rn as u32) << 5) | rd as u32);
    } else {
        emit(buf, 0x1E27_0000 | ((rn as u32) << 5) | rd as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc1(f: impl FnOnce(&mut CodeBuffer)) -> u32 {
        let mut buf = CodeBuffer::new();
        f(&mut buf);
        assert_eq!(buf.text().len(), 4);
        u32::from_le_bytes(buf.text()[0..4].try_into().unwrap())
    }

    #[test]
    fn basic_arithmetic() {
        assert_eq!(enc1(|b| add_rr(b, true, 0, 1, 2)), 0x8b020020);
        assert_eq!(enc1(|b| sub_rr(b, true, 3, 4, 5)), 0xcb050083);
        assert_eq!(enc1(|b| add_rr(b, false, 0, 1, 2)), 0x0b020020);
        assert_eq!(enc1(|b| cmp_rr(b, true, 0, 1)), 0xeb01001f);
        assert_eq!(enc1(|b| mul(b, true, 0, 1, 2)), 0x9b027c20);
        assert_eq!(enc1(|b| sdiv(b, true, 0, 1, 2)), 0x9ac20c20);
        assert_eq!(enc1(|b| udiv(b, false, 0, 1, 2)), 0x1ac20820);
    }

    #[test]
    fn moves_and_constants() {
        assert_eq!(enc1(|b| mov_rr(b, true, 0, 1)), 0xaa0103e0);
        assert_eq!(enc1(|b| movz(b, true, 0, 42, 0)), 0xd2800540);
        assert_eq!(enc1(|b| movk(b, true, 0, 1, 1)), 0xf2a00020);
        let mut buf = CodeBuffer::new();
        mov_imm64(&mut buf, 0, 0x0001_0000_0000_002a);
        // movz #0x2a, lsl 0 ; movk #1, lsl 48
        assert_eq!(buf.text().len(), 8);
        let mut buf = CodeBuffer::new();
        mov_imm64(&mut buf, 3, 0);
        assert_eq!(buf.text().len(), 4);
    }

    #[test]
    fn immediates_and_stack() {
        assert_eq!(enc1(|b| sub_imm(b, true, SP, SP, 32)), 0xd10083ff);
        assert_eq!(enc1(|b| add_imm(b, true, SP, SP, 32)), 0x910083ff);
        assert_eq!(enc1(|b| cmp_imm(b, true, 0, 7)), 0xf1001c1f);
    }

    #[test]
    fn loads_and_stores() {
        assert_eq!(enc1(|b| str(b, 8, 0, SP, 16)), 0xf9000be0);
        assert_eq!(enc1(|b| ldr(b, 8, 0, SP, 16)), 0xf9400be0);
        // negative offset falls back to unscaled form
        assert_eq!(enc1(|b| ldr(b, 8, 0, FP, -8)), 0xf85f83a0);
        assert_eq!(enc1(|b| str(b, 4, 1, FP, -12)), 0xb81f43a1);
        assert_eq!(enc1(|b| ldr(b, 1, 2, 3, 0)), 0x39400062);
        assert_eq!(enc1(|b| stp_pre(b, FP, LR, SP, -16)), 0xa9bf7bfd);
        assert_eq!(enc1(|b| ldp_post(b, FP, LR, SP, 16)), 0xa8c17bfd);
    }

    #[test]
    fn branches_and_fixups() {
        let mut buf = CodeBuffer::new();
        let l = buf.new_label();
        b_label(&mut buf, l);
        nop(&mut buf);
        buf.bind_label(l);
        ret(&mut buf);
        buf.resolve_fixups().unwrap();
        let w = u32::from_le_bytes(buf.text()[0..4].try_into().unwrap());
        assert_eq!(w, 0x1400_0002);
        assert_eq!(
            u32::from_le_bytes(buf.text()[8..12].try_into().unwrap()),
            0xd65f03c0
        );

        let mut buf = CodeBuffer::new();
        let l = buf.new_label();
        bcond_label(&mut buf, Cond::Eq, l);
        nop(&mut buf);
        buf.bind_label(l);
        buf.resolve_fixups().unwrap();
        let w = u32::from_le_bytes(buf.text()[0..4].try_into().unwrap());
        assert_eq!(w, 0x5400_0040); // imm19 = 2
    }

    #[test]
    fn calls_and_relocations() {
        let mut buf = CodeBuffer::new();
        let sym = buf.declare_symbol("callee", tpde_core::codebuf::SymbolBinding::Global, true);
        bl_sym(&mut buf, sym);
        assert_eq!(buf.relocs().len(), 1);
        assert_eq!(buf.relocs()[0].kind, RelocKind::Call26);
        assert_eq!(enc1(|b| blr(b, 9)), 0xd63f0120);
        assert_eq!(enc1(ret), 0xd65f03c0);
        let mut buf = CodeBuffer::new();
        let sym = buf.declare_symbol("gv", tpde_core::codebuf::SymbolBinding::Global, false);
        adr_sym(&mut buf, 0, sym);
        assert_eq!(buf.text().len(), 8);
        assert_eq!(buf.relocs().len(), 2);
    }

    #[test]
    fn shifts_and_extensions() {
        assert_eq!(
            enc1(|b| shift_rr(b, true, ShiftOp::Lsl, 0, 1, 2)),
            0x9ac22020
        );
        // lsl x0, x1, #4 == ubfm x0, x1, #60, #59
        assert_eq!(enc1(|b| lsl_imm(b, true, 0, 1, 4)), 0xd37cec20);
        // lsr x0, x1, #4 == ubfm x0, x1, #4, #63
        assert_eq!(enc1(|b| lsr_imm(b, true, 0, 1, 4)), 0xd344fc20);
        // sxtw x0, w1
        assert_eq!(enc1(|b| sxt(b, 4, 0, 1)), 0x93407c20);
        // uxtb w0, w1
        assert_eq!(enc1(|b| uxt(b, 1, 0, 1)), 0x53001c20);
    }

    #[test]
    fn conditional_select() {
        assert_eq!(enc1(|b| csel(b, true, 0, 1, 2, Cond::Lt)), 0x9a82b020);
        // cset x0, eq == csinc x0, xzr, xzr, ne
        assert_eq!(enc1(|b| cset(b, true, 0, Cond::Eq)), 0x9a9f17e0);
    }

    #[test]
    fn floating_point() {
        assert_eq!(enc1(|b| fp_arith(b, 8, FpOp::Add, 0, 1, 2)), 0x1e622820);
        assert_eq!(enc1(|b| fp_arith(b, 4, FpOp::Mul, 0, 1, 2)), 0x1e220820);
        assert_eq!(enc1(|b| fcmp(b, 8, 0, 1)), 0x1e612000);
        assert_eq!(enc1(|b| fmov_rr(b, 8, 0, 1)), 0x1e604020);
        assert_eq!(enc1(|b| scvtf(b, 8, true, 0, 1)), 0x9e620020);
        assert_eq!(enc1(|b| fcvtzs(b, 8, true, 0, 1)), 0x9e780020);
        assert_eq!(enc1(|b| fmov_to_gp(b, 8, 0, 1)), 0x9e660020);
        assert_eq!(enc1(|b| fmov_from_gp(b, 8, 1, 0)), 0x9e670001);
        assert_eq!(enc1(|b| ldr_fp(b, 8, 0, FP, 16)), 0xfd400ba0);
        assert_eq!(enc1(|b| str_fp(b, 8, 0, SP, 8)), 0xfd0007e0);
    }

    #[test]
    fn cond_invert() {
        assert_eq!(Cond::Eq.invert(), Cond::Ne);
        assert_eq!(Cond::Lt.invert(), Cond::Ge);
        assert_eq!(Cond::Hi.invert(), Cond::Ls);
    }
}
