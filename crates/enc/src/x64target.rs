//! The x86-64 (System V) implementation of the framework's [`Target`] trait.

use crate::x64::{self, Alu, Gp, Mem, Xmm};
use tpde_core::callconv::{sysv_x64, CallConv};
use tpde_core::codebuf::{CodeBuffer, InstBuf, Label, SymbolId};
use tpde_core::regs::{Reg, RegBank, RegSet};
use tpde_core::target::{FrameState, Target, TargetArch};

/// Callee-saved registers handled by the prologue/epilogue patch areas, in
/// slot order (slot `i` is stored at `[rbp - 8*(i+1)]`). `rbp` itself is
/// saved by `push rbp`.
const SAVE_ORDER: [u8; 5] = [3, 12, 13, 14, 15]; // rbx, r12..r15

/// Bytes of one save/restore instruction (`mov [rbp+disp8], reg`).
const SAVE_INSN_LEN: usize = 4;

/// x86-64 System V target.
#[derive(Debug)]
pub struct X64Target {
    cc: CallConv,
    gp: Vec<Reg>,
    fp: Vec<Reg>,
    fixed_gp: Vec<Reg>,
    fixed_fp: Vec<Reg>,
}

impl Default for X64Target {
    fn default() -> Self {
        Self::new()
    }
}

impl X64Target {
    /// Creates the target with its default register configuration.
    pub fn new() -> X64Target {
        let gp_order = [
            0u8, 1, 2, 6, 7, 8, 9, 10, // caller-saved first: rax rcx rdx rsi rdi r8 r9 r10
            3, 12, 13, 14, 15, // then callee-saved: rbx r12 r13 r14 r15
        ];
        let gp = gp_order.iter().map(|&i| Reg::new(RegBank::GP, i)).collect();
        let fp = (0..15).map(|i| Reg::new(RegBank::FP, i)).collect();
        let fixed_gp = [12u8, 13, 14, 15]
            .iter()
            .map(|&i| Reg::new(RegBank::GP, i))
            .collect();
        X64Target {
            cc: sysv_x64(),
            gp,
            fp,
            fixed_gp,
            fixed_fp: Vec::new(),
        }
    }

    fn save_slot_off(idx: usize) -> i32 {
        -(8 * (idx as i32 + 1))
    }
}

impl Target for X64Target {
    fn arch(&self) -> TargetArch {
        TargetArch::X86_64
    }

    fn call_conv(&self) -> &CallConv {
        &self.cc
    }

    fn allocatable_regs(&self, bank: RegBank) -> &[Reg] {
        match bank {
            RegBank::GP => &self.gp,
            RegBank::FP => &self.fp,
        }
    }

    fn fixed_reg_candidates(&self, bank: RegBank) -> &[Reg] {
        match bank {
            RegBank::GP => &self.fixed_gp,
            RegBank::FP => &self.fixed_fp,
        }
    }

    fn frame_reg(&self) -> Reg {
        Reg::new(RegBank::GP, 5)
    }

    fn scratch_gp(&self) -> Reg {
        Reg::new(RegBank::GP, 11)
    }

    fn scratch_fp(&self) -> Reg {
        Reg::new(RegBank::FP, 15)
    }

    fn callee_save_area_size(&self) -> u32 {
        (SAVE_ORDER.len() as u32) * 8
    }

    fn emit_prologue(&self, buf: &mut CodeBuffer) -> FrameState {
        let func_start = buf.text_offset();
        x64::push_r(buf, Gp::RBP);
        x64::mov_rr(buf, 8, Gp::RBP, Gp::RSP);
        // sub rsp, imm32 (patched)
        let mut i = InstBuf::new();
        i.push_u8(0x48);
        i.push_u8(0x81);
        i.push_u8(0xec);
        let patch = buf.text_offset() + i.len() as u64;
        i.push_u32(0);
        buf.emit_inst(i);
        // reserved callee-save area (patched at finish)
        let save_area = buf.text_offset();
        x64::nops(buf, SAVE_ORDER.len() * SAVE_INSN_LEN);
        FrameState {
            func_start,
            frame_size_patches: vec![patch],
            save_area: Some((save_area, (SAVE_ORDER.len() * SAVE_INSN_LEN) as u64)),
            restore_areas: Vec::new(),
        }
    }

    fn emit_epilogue_and_ret(&self, buf: &mut CodeBuffer, frame: &mut FrameState) {
        let restore_area = buf.text_offset();
        x64::nops(buf, SAVE_ORDER.len() * SAVE_INSN_LEN);
        frame
            .restore_areas
            .push((restore_area, (SAVE_ORDER.len() * SAVE_INSN_LEN) as u64));
        // mov rsp, rbp ; pop rbp ; ret
        x64::mov_rr(buf, 8, Gp::RSP, Gp::RBP);
        x64::pop_r(buf, Gp::RBP);
        x64::ret(buf);
    }

    fn finish_func(
        &self,
        buf: &mut CodeBuffer,
        frame: &FrameState,
        frame_size: u32,
        used_callee_saved: RegSet,
    ) {
        let size = (frame_size + 15) & !15;
        for &off in &frame.frame_size_patches {
            buf.patch_text(off, &size.to_le_bytes());
        }
        // saves: encode the used-register subset into one scratch buffer and
        // patch it over the nop-filled area in a single write
        let mut tmp = CodeBuffer::new();
        let mut emit_area = |tmp: &mut CodeBuffer, area: Option<(u64, u64)>, is_save: bool| {
            let Some((start, _len)) = area else { return };
            tmp.text_mut().clear();
            for (idx, &regno) in SAVE_ORDER.iter().enumerate() {
                let reg = Reg::new(RegBank::GP, regno);
                if !used_callee_saved.contains(reg) {
                    continue;
                }
                let mem = Mem::base_disp(Gp::RBP, Self::save_slot_off(idx));
                if is_save {
                    x64::mov_mr(tmp, 8, mem, Gp(regno));
                } else {
                    x64::mov_rm(tmp, 8, Gp(regno), mem);
                }
            }
            buf.patch_text(start, tmp.text());
        };
        emit_area(&mut tmp, frame.save_area, true);
        for &(start, len) in &frame.restore_areas {
            emit_area(&mut tmp, Some((start, len)), false);
        }
    }

    fn emit_mov_rr(&self, buf: &mut CodeBuffer, bank: RegBank, size: u32, dst: Reg, src: Reg) {
        match bank {
            RegBank::GP => x64::mov_rr(buf, size.max(4), Gp::from(dst), Gp::from(src)),
            RegBank::FP => x64::fp_mov_rr(buf, size, Xmm::from(dst), Xmm::from(src)),
        }
    }

    fn emit_frame_store(&self, buf: &mut CodeBuffer, bank: RegBank, size: u32, off: i32, src: Reg) {
        let mem = Mem::base_disp(Gp::RBP, off);
        match bank {
            RegBank::GP => x64::mov_mr(buf, size, mem, Gp::from(src)),
            RegBank::FP => x64::fp_store(buf, size, mem, Xmm::from(src)),
        }
    }

    fn emit_frame_load(&self, buf: &mut CodeBuffer, bank: RegBank, size: u32, dst: Reg, off: i32) {
        let mem = Mem::base_disp(Gp::RBP, off);
        match bank {
            RegBank::GP => {
                if size < 4 {
                    x64::movzx_rm(buf, Gp::from(dst), mem, size);
                } else {
                    x64::mov_rm(buf, size, Gp::from(dst), mem);
                }
            }
            RegBank::FP => x64::fp_load(buf, size, Xmm::from(dst), mem),
        }
    }

    fn emit_frame_addr(&self, buf: &mut CodeBuffer, dst: Reg, off: i32) {
        x64::lea(buf, Gp::from(dst), Mem::base_disp(Gp::RBP, off));
    }

    fn emit_const(&self, buf: &mut CodeBuffer, bank: RegBank, size: u32, dst: Reg, value: u64) {
        match bank {
            RegBank::GP => x64::mov_ri(buf, size.max(4), Gp::from(dst), value),
            RegBank::FP => {
                let x = Xmm::from(dst);
                if value == 0 {
                    x64::fp_xor(buf, 8, x, x);
                } else {
                    let scratch = Gp::from(self.scratch_gp());
                    x64::mov_ri(buf, 8, scratch, value);
                    x64::movq_xr(buf, x, scratch);
                }
            }
        }
    }

    fn emit_jump(&self, buf: &mut CodeBuffer, label: Label) {
        x64::jmp_label(buf, label);
    }

    fn emit_call_sym(&self, buf: &mut CodeBuffer, sym: SymbolId) {
        x64::call_sym(buf, sym);
    }

    fn emit_call_reg(&self, buf: &mut CodeBuffer, reg: Reg) {
        x64::call_reg(buf, Gp::from(reg));
    }

    fn emit_sp_adjust(&self, buf: &mut CodeBuffer, delta: i32) {
        if delta < 0 {
            x64::alu_ri(buf, Alu::Sub, 8, Gp::RSP, -delta);
        } else if delta > 0 {
            x64::alu_ri(buf, Alu::Add, 8, Gp::RSP, delta);
        }
    }

    fn emit_sp_store(&self, buf: &mut CodeBuffer, bank: RegBank, size: u32, off: u32, src: Reg) {
        let mem = Mem::base_disp(Gp::RSP, off as i32);
        match bank {
            RegBank::GP => x64::mov_mr(buf, size, mem, Gp::from(src)),
            RegBank::FP => x64::fp_store(buf, size, mem, Xmm::from(src)),
        }
    }

    fn emit_vararg_fp_count(&self, buf: &mut CodeBuffer, count: u8) {
        x64::mov_ri(buf, 4, Gp::RAX, count as u64);
    }

    fn emit_tier_counter(&self, buf: &mut CodeBuffer, counters: SymbolId, index: u32) -> bool {
        // movabs r11, &counters[index] ; add qword [r11], 1
        let r11 = Gp::from(self.scratch_gp());
        x64::mov_sym_abs(buf, r11, counters, 8 * index as i64);
        x64::alu_mi(buf, Alu::Add, 8, Mem::base(r11), 1);
        true
    }

    fn emit_call_slot(&self, buf: &mut CodeBuffer, slots: SymbolId, index: u32) -> bool {
        // movabs r11, &slots[index] ; mov r11, [r11] ; call r11
        let r11 = Gp::from(self.scratch_gp());
        x64::mov_sym_abs(buf, r11, slots, 8 * index as i64);
        x64::mov_rm(buf, 8, r11, Mem::base(r11));
        x64::call_reg(buf, r11);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prologue_epilogue_patching_roundtrip() {
        let t = X64Target::new();
        let mut buf = CodeBuffer::new();
        let mut frame = t.emit_prologue(&mut buf);
        let body_start = buf.text_offset();
        x64::nops(&mut buf, 3);
        t.emit_epilogue_and_ret(&mut buf, &mut frame);
        let mut used = RegSet::empty();
        used.insert(Reg::new(RegBank::GP, 3)); // rbx
        used.insert(Reg::new(RegBank::GP, 12)); // r12
        t.finish_func(&mut buf, &frame, 40, used);
        let text = buf.text();
        // push rbp ; mov rbp, rsp
        assert_eq!(&text[0..4], &[0x55, 0x48, 0x89, 0xe5]);
        // sub rsp, 48 (40 rounded up to 16)
        assert_eq!(&text[4..7], &[0x48, 0x81, 0xec]);
        assert_eq!(u32::from_le_bytes(text[7..11].try_into().unwrap()), 48);
        // save area starts with mov [rbp-8], rbx
        assert_eq!(&text[11..15], &[0x48, 0x89, 0x5d, 0xf8]);
        // then mov [rbp-16], r12
        assert_eq!(&text[15..19], &[0x4c, 0x89, 0x65, 0xf0]);
        // remaining save slots stay nops
        assert_eq!(text[19], 0x90);
        // function ends with ret
        assert_eq!(*text.last().unwrap(), 0xc3);
        let _ = body_start;
    }

    #[test]
    fn frame_loads_and_stores_select_encodings() {
        let t = X64Target::new();
        let mut buf = CodeBuffer::new();
        t.emit_frame_store(&mut buf, RegBank::GP, 8, -8, Reg::new(RegBank::GP, 0));
        t.emit_frame_load(&mut buf, RegBank::GP, 1, Reg::new(RegBank::GP, 1), -9);
        t.emit_frame_load(&mut buf, RegBank::FP, 8, Reg::new(RegBank::FP, 0), -24);
        t.emit_frame_addr(&mut buf, Reg::new(RegBank::GP, 0), -32);
        assert!(!buf.text().is_empty());
    }

    #[test]
    fn fp_constant_materialization() {
        let t = X64Target::new();
        let mut buf = CodeBuffer::new();
        t.emit_const(&mut buf, RegBank::FP, 8, Reg::new(RegBank::FP, 2), 0);
        // xorpd xmm2, xmm2
        assert_eq!(buf.text(), &[0x66, 0x0f, 0x57, 0xd2]);
        let mut buf = CodeBuffer::new();
        t.emit_const(
            &mut buf,
            RegBank::FP,
            8,
            Reg::new(RegBank::FP, 0),
            0x3ff0000000000000,
        );
        // movabs r11, imm ; movq xmm0, r11
        assert_eq!(buf.text()[0..2], [0x49, 0xbb]);
        assert_eq!(&buf.text()[10..], &[0x66, 0x49, 0x0f, 0x6e, 0xc3]);
    }

    #[test]
    fn allocatable_sets_exclude_reserved() {
        let t = X64Target::new();
        let gp = t.allocatable_regs(RegBank::GP);
        assert!(!gp.contains(&Reg::new(RegBank::GP, 4))); // rsp
        assert!(!gp.contains(&Reg::new(RegBank::GP, 5))); // rbp
        assert!(!gp.contains(&Reg::new(RegBank::GP, 11))); // scratch
        let fp = t.allocatable_regs(RegBank::FP);
        assert!(!fp.contains(&Reg::new(RegBank::FP, 15))); // scratch
        assert_eq!(t.callee_save_area_size(), 40);
    }
}
