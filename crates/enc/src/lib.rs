//! # tpde-enc
//!
//! Instruction encoders for x86-64 and AArch64 plus the concrete
//! [`tpde_core::target::Target`] implementations used by the TPDE back-ends.
//!
//! The encoders emit raw machine-code bytes directly into a
//! [`tpde_core::codebuf::CodeBuffer`]; there is no intermediate
//! machine-instruction data structure (this is what makes the single-pass
//! design fast). Branch targets are expressed as labels and patched through
//! the code buffer's fixup machinery.
//!
//! ```
//! use tpde_core::codebuf::CodeBuffer;
//! use tpde_enc::x64::{self, Gp};
//!
//! let mut buf = CodeBuffer::new();
//! x64::alu_rr(&mut buf, x64::Alu::Add, 8, Gp::RAX, Gp::RCX);
//! x64::ret(&mut buf);
//! assert_eq!(buf.text(), &[0x48, 0x01, 0xc8, 0xc3]);
//! ```

pub mod a64;
pub mod a64target;
pub mod x64;
pub mod x64target;

pub use a64target::A64Target;
pub use x64target::X64Target;
