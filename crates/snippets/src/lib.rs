//! # tpde-snippets
//!
//! Snippet encoders: target-specific instruction sequences behind an
//! architecture-independent interface.
//!
//! In the paper, snippet encoders are generated ahead-of-time from C
//! functions compiled to LLVM Machine IR; at compile time they morph the
//! extracted instruction sequence to the actual operands (folding
//! immediates, reusing dying operand registers, using memory operands for
//! spilled values). This crate provides the equivalent *runtime* layer as a
//! hand-written library: the [`SnippetEmitter`] trait exposes one `enc_*`
//! function per operation class, and the implementations for
//! [`tpde_enc::X64Target`] and [`tpde_enc::A64Target`] perform exactly those
//! operand-dependent decisions. Instruction compilers written against
//! [`SnippetEmitter`] are therefore architecture-independent, which is what
//! lets the LLVM, WebAssembly and Umbra back-ends in this workspace share
//! one implementation per IR.

mod a64_impl;
mod ops;
mod x64_impl;

pub use ops::{AsmOperand, BinOp, FBinOp, FCmp, ICmp, ShiftKind};

use tpde_core::adapter::{BlockRef, IrAdapter, ValueRef};
use tpde_core::codegen::FuncCodeGen;
use tpde_core::error::Result;
use tpde_core::target::Target;

/// A result destination: one part of an IR value.
pub type ResultPart = (ValueRef, u32);

/// Architecture-independent interface to the snippet encoders.
///
/// Every method emits the machine code for one IR-level operation, handling
/// operand placement (registers, spilled stack slots, immediates) and result
/// register allocation through the framework callbacks of [`FuncCodeGen`].
pub trait SnippetEmitter: Target + Sized {
    /// Integer binary operation (`add`, `sub`, `and`, `or`, `xor`, `mul`).
    fn enc_bin<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        op: BinOp,
        size: u32,
        res: ResultPart,
        lhs: &AsmOperand,
        rhs: &AsmOperand,
    ) -> Result<()>;

    /// Integer division or remainder.
    fn enc_divrem<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        signed: bool,
        rem: bool,
        size: u32,
        res: ResultPart,
        lhs: &AsmOperand,
        rhs: &AsmOperand,
    ) -> Result<()>;

    /// Shift operation; the amount may be a constant or a value.
    fn enc_shift<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        kind: ShiftKind,
        size: u32,
        res: ResultPart,
        lhs: &AsmOperand,
        rhs: &AsmOperand,
    ) -> Result<()>;

    /// Integer comparison producing a 0/1 value.
    fn enc_icmp<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        cc: ICmp,
        size: u32,
        res: ResultPart,
        lhs: &AsmOperand,
        rhs: &AsmOperand,
    ) -> Result<()>;

    /// Fused compare-and-branch (§3.4.4 / §5.1.2 of the paper): emits the
    /// comparison, the spill code required before the branch and the
    /// conditional + unconditional jumps.
    fn enc_icmp_branch<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        cc: ICmp,
        size: u32,
        lhs: &AsmOperand,
        rhs: &AsmOperand,
        if_true: BlockRef,
        if_false: BlockRef,
    ) -> Result<()>;

    /// Branch on a value being non-zero (or zero when `branch_if_zero`).
    fn enc_branch_nonzero<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        size: u32,
        val: &AsmOperand,
        branch_if_zero: bool,
        if_true: BlockRef,
        if_false: BlockRef,
    ) -> Result<()>;

    /// Unconditional jump (handles phi moves and fallthrough).
    fn enc_jump<A: IrAdapter>(cg: &mut FuncCodeGen<'_, A, Self>, target: BlockRef) -> Result<()> {
        cg.spill_before_branch()?;
        cg.terminator_fallthrough(target)
    }

    /// Memory load of `mem_size` bytes from `[addr + offset]`, optionally
    /// sign-extended, into a result of `res_size` bytes in bank `fp`/`gp`.
    #[allow(clippy::too_many_arguments)]
    fn enc_load<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        mem_size: u32,
        sign_extend: bool,
        fp: bool,
        res: ResultPart,
        addr: &AsmOperand,
        offset: i32,
    ) -> Result<()>;

    /// Memory store of `mem_size` bytes of `value` to `[addr + offset]`.
    fn enc_store<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        mem_size: u32,
        fp: bool,
        addr: &AsmOperand,
        offset: i32,
        value: &AsmOperand,
    ) -> Result<()>;

    /// Integer extension (zero or sign) or truncation.
    fn enc_ext<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        signed: bool,
        from_size: u32,
        to_size: u32,
        res: ResultPart,
        src: &AsmOperand,
    ) -> Result<()>;

    /// Integer select (`res = cond != 0 ? tval : fval`).
    fn enc_select<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        size: u32,
        res: ResultPart,
        cond: &AsmOperand,
        tval: &AsmOperand,
        fval: &AsmOperand,
    ) -> Result<()>;

    /// Scalar floating-point binary operation.
    fn enc_fbin<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        op: FBinOp,
        size: u32,
        res: ResultPart,
        lhs: &AsmOperand,
        rhs: &AsmOperand,
    ) -> Result<()>;

    /// Scalar floating-point comparison producing 0/1.
    fn enc_fcmp<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        cc: FCmp,
        size: u32,
        res: ResultPart,
        lhs: &AsmOperand,
        rhs: &AsmOperand,
    ) -> Result<()>;

    /// Floating-point negation.
    fn enc_fneg<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        size: u32,
        res: ResultPart,
        src: &AsmOperand,
    ) -> Result<()>;

    /// Signed integer to floating point.
    fn enc_int_to_fp<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        int_size: u32,
        fp_size: u32,
        res: ResultPart,
        src: &AsmOperand,
    ) -> Result<()>;

    /// Floating point to signed integer (truncating).
    fn enc_fp_to_int<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        fp_size: u32,
        int_size: u32,
        res: ResultPart,
        src: &AsmOperand,
    ) -> Result<()>;

    /// Conversion between `f32` and `f64`.
    fn enc_fp_convert<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        from_size: u32,
        to_size: u32,
        res: ResultPart,
        src: &AsmOperand,
    ) -> Result<()>;
}
