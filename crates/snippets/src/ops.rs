//! Operand and operation descriptions shared by all snippet encoders.

use tpde_core::codegen::ValuePartRef;

/// An operand of a snippet encoder: either a handle to an IR value part
/// (which may currently live in a register, in a stack slot or be an IR
/// constant) or an immediate produced by the instruction compiler itself.
#[derive(Clone, Debug)]
pub enum AsmOperand {
    /// A framework value-part handle.
    Val(ValuePartRef),
    /// An immediate produced during instruction selection.
    Imm(u64),
}

impl AsmOperand {
    /// The constant bits if the operand is an immediate or an IR constant.
    pub fn as_imm(&self) -> Option<u64> {
        match self {
            AsmOperand::Imm(v) => Some(*v),
            AsmOperand::Val(p) if p.is_const => Some(p.const_val),
            _ => None,
        }
    }

    /// Whether the immediate fits a sign-extended 32-bit field (given the
    /// operation size).
    pub fn as_imm32(&self, size: u32) -> Option<i32> {
        let v = self.as_imm()?;
        let v = match size {
            1 => v as u8 as i8 as i64,
            2 => v as u16 as i16 as i64,
            4 => v as u32 as i32 as i64,
            _ => v as i64,
        };
        i32::try_from(v).ok()
    }
}

impl From<ValuePartRef> for AsmOperand {
    fn from(p: ValuePartRef) -> AsmOperand {
        AsmOperand::Val(p)
    }
}

impl From<u64> for AsmOperand {
    fn from(v: u64) -> AsmOperand {
        AsmOperand::Imm(v)
    }
}

/// Integer binary operations.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Mul,
}

impl BinOp {
    /// Whether the operation is commutative (so constant operands can be
    /// moved to the right-hand side).
    pub fn commutative(self) -> bool {
        !matches!(self, BinOp::Sub)
    }
}

/// Shift kinds.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ShiftKind {
    Shl,
    LShr,
    AShr,
}

/// Integer comparison predicates (LLVM `icmp` naming).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ICmp {
    Eq,
    Ne,
    Slt,
    Sle,
    Sgt,
    Sge,
    Ult,
    Ule,
    Ugt,
    Uge,
}

impl ICmp {
    /// The predicate with the operands swapped.
    pub fn swapped(self) -> ICmp {
        match self {
            ICmp::Eq => ICmp::Eq,
            ICmp::Ne => ICmp::Ne,
            ICmp::Slt => ICmp::Sgt,
            ICmp::Sle => ICmp::Sge,
            ICmp::Sgt => ICmp::Slt,
            ICmp::Sge => ICmp::Sle,
            ICmp::Ult => ICmp::Ugt,
            ICmp::Ule => ICmp::Uge,
            ICmp::Ugt => ICmp::Ult,
            ICmp::Uge => ICmp::Ule,
        }
    }

    /// The inverted predicate.
    pub fn inverted(self) -> ICmp {
        match self {
            ICmp::Eq => ICmp::Ne,
            ICmp::Ne => ICmp::Eq,
            ICmp::Slt => ICmp::Sge,
            ICmp::Sle => ICmp::Sgt,
            ICmp::Sgt => ICmp::Sle,
            ICmp::Sge => ICmp::Slt,
            ICmp::Ult => ICmp::Uge,
            ICmp::Ule => ICmp::Ugt,
            ICmp::Ugt => ICmp::Ule,
            ICmp::Uge => ICmp::Ult,
        }
    }
}

/// Floating-point binary operations.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FBinOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Floating-point comparison predicates (ordered comparisons only).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FCmp {
    Oeq,
    One,
    Olt,
    Ole,
    Ogt,
    Oge,
}
