//! Snippet encoders for AArch64.
//!
//! The AArch64 sequences are simpler than their x86-64 counterparts because
//! the ISA is three-operand and load/store based: operands are brought into
//! registers (folding small immediates into `add`/`sub`/`cmp` and shift
//! amounts), and there are no fixed-register constraints to satisfy.

use crate::ops::{AsmOperand, BinOp, FBinOp, FCmp, ICmp, ShiftKind};
use crate::{ResultPart, SnippetEmitter};
use tpde_core::adapter::{BlockRef, IrAdapter};
use tpde_core::codegen::FuncCodeGen;
use tpde_core::error::Result;
use tpde_core::regs::RegBank;
use tpde_core::target::Target;
use tpde_enc::a64::{self, Cond, FpOp, ShiftOp};
use tpde_enc::A64Target;

type Cg<'a, 'b, A> = &'a mut FuncCodeGen<'b, A, A64Target>;

fn op_as_reg<A: IrAdapter>(
    cg: Cg<'_, '_, A>,
    op: &AsmOperand,
    bank: RegBank,
    size: u32,
) -> Result<u8> {
    match op {
        AsmOperand::Val(p) => Ok(cg.val_as_reg(p)?.index()),
        AsmOperand::Imm(v) => {
            let r = cg.alloc_scratch(bank)?;
            cg.target.emit_const(cg.buf, bank, size, r, *v);
            Ok(r.index())
        }
    }
}

fn result_reg<A: IrAdapter>(cg: Cg<'_, '_, A>, res: ResultPart) -> Result<u8> {
    Ok(cg.result_reg(res.0, res.1)?.index())
}

fn icmp_cond(cc: ICmp) -> Cond {
    match cc {
        ICmp::Eq => Cond::Eq,
        ICmp::Ne => Cond::Ne,
        ICmp::Slt => Cond::Lt,
        ICmp::Sle => Cond::Le,
        ICmp::Sgt => Cond::Gt,
        ICmp::Sge => Cond::Ge,
        ICmp::Ult => Cond::Lo,
        ICmp::Ule => Cond::Ls,
        ICmp::Ugt => Cond::Hi,
        ICmp::Uge => Cond::Hs,
    }
}

fn fcmp_cond(cc: FCmp) -> Cond {
    match cc {
        FCmp::Oeq => Cond::Eq,
        FCmp::One => Cond::Ne,
        FCmp::Olt => Cond::Mi,
        FCmp::Ole => Cond::Ls,
        FCmp::Ogt => Cond::Gt,
        FCmp::Oge => Cond::Ge,
    }
}

fn signed_pred(cc: ICmp) -> bool {
    matches!(cc, ICmp::Slt | ICmp::Sle | ICmp::Sgt | ICmp::Sge)
}

/// Emits the comparison and returns the condition code to branch/set on.
fn emit_icmp<A: IrAdapter>(
    cg: Cg<'_, '_, A>,
    cc: ICmp,
    size: u32,
    lhs: &AsmOperand,
    rhs: &AsmOperand,
) -> Result<Cond> {
    let is64 = size == 8;
    let mut lreg = op_as_reg(cg, lhs, RegBank::GP, size)?;
    // sub-word comparisons must normalize the upper bits first
    if size < 4 {
        let t = cg.alloc_scratch(RegBank::GP)?.index();
        if signed_pred(cc) {
            a64::sxt(cg.buf, size, t, lreg);
        } else {
            a64::uxt(cg.buf, size, t, lreg);
        }
        lreg = t;
    }
    if let Some(imm) = rhs.as_imm() {
        if size >= 4 && imm < 4096 {
            a64::cmp_imm(cg.buf, is64, lreg, imm as u32);
            return Ok(icmp_cond(cc));
        }
    }
    let mut rreg = op_as_reg(cg, rhs, RegBank::GP, size)?;
    if size < 4 {
        let t = cg.alloc_scratch(RegBank::GP)?.index();
        if signed_pred(cc) {
            a64::sxt(cg.buf, size, t, rreg);
        } else {
            a64::uxt(cg.buf, size, t, rreg);
        }
        rreg = t;
    }
    a64::cmp_rr(cg.buf, is64, lreg, rreg);
    Ok(icmp_cond(cc))
}

impl SnippetEmitter for A64Target {
    fn enc_bin<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        op: BinOp,
        size: u32,
        res: ResultPart,
        lhs: &AsmOperand,
        rhs: &AsmOperand,
    ) -> Result<()> {
        let is64 = size == 8;
        let (lhs, rhs) = if op.commutative() && lhs.as_imm().is_some() && rhs.as_imm().is_none() {
            (rhs, lhs)
        } else {
            (lhs, rhs)
        };
        let lreg = op_as_reg(cg, lhs, RegBank::GP, size)?;
        // small immediates fold into add/sub
        if let (Some(imm), BinOp::Add | BinOp::Sub) = (rhs.as_imm(), op) {
            if imm < 4096 {
                let dst = result_reg(cg, res)?;
                match op {
                    BinOp::Add => a64::add_imm(cg.buf, is64, dst, lreg, imm as u32),
                    _ => a64::sub_imm(cg.buf, is64, dst, lreg, imm as u32),
                }
                return Ok(());
            }
        }
        let rreg = op_as_reg(cg, rhs, RegBank::GP, size)?;
        let dst = result_reg(cg, res)?;
        match op {
            BinOp::Add => a64::add_rr(cg.buf, is64, dst, lreg, rreg),
            BinOp::Sub => a64::sub_rr(cg.buf, is64, dst, lreg, rreg),
            BinOp::And => a64::and_rr(cg.buf, is64, dst, lreg, rreg),
            BinOp::Or => a64::orr_rr(cg.buf, is64, dst, lreg, rreg),
            BinOp::Xor => a64::eor_rr(cg.buf, is64, dst, lreg, rreg),
            BinOp::Mul => a64::mul(cg.buf, is64, dst, lreg, rreg),
        }
        Ok(())
    }

    fn enc_divrem<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        signed: bool,
        rem: bool,
        size: u32,
        res: ResultPart,
        lhs: &AsmOperand,
        rhs: &AsmOperand,
    ) -> Result<()> {
        let is64 = size == 8;
        let lreg = op_as_reg(cg, lhs, RegBank::GP, size)?;
        let rreg = op_as_reg(cg, rhs, RegBank::GP, size)?;
        if rem {
            let q = cg.alloc_scratch(RegBank::GP)?.index();
            if signed {
                a64::sdiv(cg.buf, is64, q, lreg, rreg);
            } else {
                a64::udiv(cg.buf, is64, q, lreg, rreg);
            }
            let dst = result_reg(cg, res)?;
            a64::msub(cg.buf, is64, dst, q, rreg, lreg);
        } else {
            let dst = result_reg(cg, res)?;
            if signed {
                a64::sdiv(cg.buf, is64, dst, lreg, rreg);
            } else {
                a64::udiv(cg.buf, is64, dst, lreg, rreg);
            }
        }
        Ok(())
    }

    fn enc_shift<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        kind: ShiftKind,
        size: u32,
        res: ResultPart,
        lhs: &AsmOperand,
        rhs: &AsmOperand,
    ) -> Result<()> {
        let is64 = size == 8;
        let lreg = op_as_reg(cg, lhs, RegBank::GP, size)?;
        if let Some(imm) = rhs.as_imm() {
            let dst = result_reg(cg, res)?;
            let sh = (imm as u8) & if is64 { 63 } else { 31 };
            match kind {
                ShiftKind::Shl => a64::lsl_imm(cg.buf, is64, dst, lreg, sh),
                ShiftKind::LShr => a64::lsr_imm(cg.buf, is64, dst, lreg, sh),
                ShiftKind::AShr => a64::asr_imm(cg.buf, is64, dst, lreg, sh),
            }
            return Ok(());
        }
        let rreg = op_as_reg(cg, rhs, RegBank::GP, size)?;
        let dst = result_reg(cg, res)?;
        let op = match kind {
            ShiftKind::Shl => ShiftOp::Lsl,
            ShiftKind::LShr => ShiftOp::Lsr,
            ShiftKind::AShr => ShiftOp::Asr,
        };
        a64::shift_rr(cg.buf, is64, op, dst, lreg, rreg);
        Ok(())
    }

    fn enc_icmp<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        cc: ICmp,
        size: u32,
        res: ResultPart,
        lhs: &AsmOperand,
        rhs: &AsmOperand,
    ) -> Result<()> {
        let cond = emit_icmp(cg, cc, size, lhs, rhs)?;
        let dst = result_reg(cg, res)?;
        a64::cset(cg.buf, true, dst, cond);
        Ok(())
    }

    fn enc_icmp_branch<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        cc: ICmp,
        size: u32,
        lhs: &AsmOperand,
        rhs: &AsmOperand,
        if_true: BlockRef,
        if_false: BlockRef,
    ) -> Result<()> {
        let cond = emit_icmp(cg, cc, size, lhs, rhs)?;
        cg.spill_before_branch()?;
        let taken = cg.branch_target(if_true)?;
        a64::bcond_label(cg.buf, cond, taken);
        cg.terminator_fallthrough(if_false)
    }

    fn enc_branch_nonzero<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        size: u32,
        val: &AsmOperand,
        branch_if_zero: bool,
        if_true: BlockRef,
        if_false: BlockRef,
    ) -> Result<()> {
        let reg = op_as_reg(cg, val, RegBank::GP, size)?;
        cg.spill_before_branch()?;
        let taken = cg.branch_target(if_true)?;
        a64::cbz_label(cg.buf, size == 8, !branch_if_zero, reg, taken);
        cg.terminator_fallthrough(if_false)
    }

    fn enc_load<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        mem_size: u32,
        sign_extend: bool,
        fp: bool,
        res: ResultPart,
        addr: &AsmOperand,
        offset: i32,
    ) -> Result<()> {
        let base = op_as_reg(cg, addr, RegBank::GP, 8)?;
        let dst = result_reg(cg, res)?;
        if fp {
            a64::ldr_fp(cg.buf, mem_size, dst, base, offset);
        } else if sign_extend && mem_size < 8 {
            a64::ldrs(cg.buf, mem_size, dst, base, offset);
        } else {
            a64::ldr(cg.buf, mem_size, dst, base, offset);
        }
        Ok(())
    }

    fn enc_store<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        mem_size: u32,
        fp: bool,
        addr: &AsmOperand,
        offset: i32,
        value: &AsmOperand,
    ) -> Result<()> {
        let base = op_as_reg(cg, addr, RegBank::GP, 8)?;
        if fp {
            let src = op_as_reg(cg, value, RegBank::FP, mem_size)?;
            a64::str_fp(cg.buf, mem_size, src, base, offset);
        } else {
            let src = op_as_reg(cg, value, RegBank::GP, mem_size)?;
            a64::str(cg.buf, mem_size, src, base, offset);
        }
        Ok(())
    }

    fn enc_ext<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        signed: bool,
        from_size: u32,
        to_size: u32,
        res: ResultPart,
        src: &AsmOperand,
    ) -> Result<()> {
        let sreg = op_as_reg(cg, src, RegBank::GP, from_size)?;
        let dst = result_reg(cg, res)?;
        if to_size <= from_size {
            a64::mov_rr(cg.buf, to_size == 8, dst, sreg);
        } else if signed {
            a64::sxt(cg.buf, from_size, dst, sreg);
        } else {
            a64::uxt(cg.buf, from_size.min(4), dst, sreg);
        }
        Ok(())
    }

    fn enc_select<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        size: u32,
        res: ResultPart,
        cond: &AsmOperand,
        tval: &AsmOperand,
        fval: &AsmOperand,
    ) -> Result<()> {
        let is64 = size == 8;
        let creg = op_as_reg(cg, cond, RegBank::GP, 1)?;
        let treg = op_as_reg(cg, tval, RegBank::GP, size)?;
        let freg = op_as_reg(cg, fval, RegBank::GP, size)?;
        let dst = result_reg(cg, res)?;
        a64::cmp_imm(cg.buf, false, creg, 0);
        a64::csel(cg.buf, is64, dst, treg, freg, Cond::Ne);
        Ok(())
    }

    fn enc_fbin<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        op: FBinOp,
        size: u32,
        res: ResultPart,
        lhs: &AsmOperand,
        rhs: &AsmOperand,
    ) -> Result<()> {
        let lreg = op_as_reg(cg, lhs, RegBank::FP, size)?;
        let rreg = op_as_reg(cg, rhs, RegBank::FP, size)?;
        let dst = result_reg(cg, res)?;
        let fop = match op {
            FBinOp::Add => FpOp::Add,
            FBinOp::Sub => FpOp::Sub,
            FBinOp::Mul => FpOp::Mul,
            FBinOp::Div => FpOp::Div,
        };
        a64::fp_arith(cg.buf, size, fop, dst, lreg, rreg);
        Ok(())
    }

    fn enc_fcmp<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        cc: FCmp,
        size: u32,
        res: ResultPart,
        lhs: &AsmOperand,
        rhs: &AsmOperand,
    ) -> Result<()> {
        let lreg = op_as_reg(cg, lhs, RegBank::FP, size)?;
        let rreg = op_as_reg(cg, rhs, RegBank::FP, size)?;
        a64::fcmp(cg.buf, size, lreg, rreg);
        let dst = result_reg(cg, res)?;
        a64::cset(cg.buf, true, dst, fcmp_cond(cc));
        Ok(())
    }

    fn enc_fneg<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        size: u32,
        res: ResultPart,
        src: &AsmOperand,
    ) -> Result<()> {
        let sreg = op_as_reg(cg, src, RegBank::FP, size)?;
        let dst = result_reg(cg, res)?;
        a64::fneg(cg.buf, size, dst, sreg);
        Ok(())
    }

    fn enc_int_to_fp<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        int_size: u32,
        fp_size: u32,
        res: ResultPart,
        src: &AsmOperand,
    ) -> Result<()> {
        let sreg = op_as_reg(cg, src, RegBank::GP, int_size)?;
        let dst = result_reg(cg, res)?;
        a64::scvtf(cg.buf, fp_size, int_size == 8, dst, sreg);
        Ok(())
    }

    fn enc_fp_to_int<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        fp_size: u32,
        int_size: u32,
        res: ResultPart,
        src: &AsmOperand,
    ) -> Result<()> {
        let sreg = op_as_reg(cg, src, RegBank::FP, fp_size)?;
        let dst = result_reg(cg, res)?;
        a64::fcvtzs(cg.buf, fp_size, int_size == 8, dst, sreg);
        Ok(())
    }

    fn enc_fp_convert<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        _from_size: u32,
        to_size: u32,
        res: ResultPart,
        src: &AsmOperand,
    ) -> Result<()> {
        let sreg = op_as_reg(cg, src, RegBank::FP, 8)?;
        let dst = result_reg(cg, res)?;
        a64::fcvt(cg.buf, to_size, dst, sreg);
        Ok(())
    }
}
