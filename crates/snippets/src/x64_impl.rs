//! Snippet encoders for x86-64.
//!
//! These perform the operand-dependent decisions the paper's generated
//! snippet encoders make: folding immediates into instructions, using memory
//! operands for spilled values, reusing a dying operand's register for the
//! result, and satisfying fixed-register constraints (division, shifts).

use crate::ops::{AsmOperand, BinOp, FBinOp, FCmp, ICmp, ShiftKind};
use crate::{ResultPart, SnippetEmitter};
use tpde_core::adapter::{BlockRef, IrAdapter};
use tpde_core::codegen::FuncCodeGen;
use tpde_core::error::Result;
use tpde_core::regs::{Reg, RegBank, RegSet};
use tpde_core::target::Target;
use tpde_enc::x64::{self, Alu, Cond, Gp, Mem, Shift, Xmm};
use tpde_enc::X64Target;

type Cg<'a, 'b, A> = &'a mut FuncCodeGen<'b, A, X64Target>;

fn gp(i: u8) -> Reg {
    Reg::new(RegBank::GP, i)
}

fn op_as_reg<A: IrAdapter>(
    cg: Cg<'_, '_, A>,
    op: &AsmOperand,
    bank: RegBank,
    size: u32,
) -> Result<Reg> {
    match op {
        AsmOperand::Val(p) => cg.val_as_reg(p),
        AsmOperand::Imm(v) => {
            let r = cg.alloc_scratch(bank)?;
            cg.target.emit_const(cg.buf, bank, size.max(4), r, *v);
            Ok(r)
        }
    }
}

fn op_as_reg_in<A: IrAdapter>(
    cg: Cg<'_, '_, A>,
    op: &AsmOperand,
    bank: RegBank,
    size: u32,
    allowed: RegSet,
) -> Result<Reg> {
    match op {
        AsmOperand::Val(p) => cg.val_as_reg_in(p, allowed),
        AsmOperand::Imm(v) => {
            let r = cg.alloc_scratch_in(bank, allowed)?;
            cg.target.emit_const(cg.buf, bank, size.max(4), r, *v);
            Ok(r)
        }
    }
}

/// Memory location of an operand if it is a spilled value (no register).
fn op_mem<A: IrAdapter>(cg: Cg<'_, '_, A>, op: &AsmOperand) -> Option<Mem> {
    match op {
        AsmOperand::Val(p) => cg.val_mem_loc(p).map(|off| Mem::base_disp(Gp::RBP, off)),
        AsmOperand::Imm(_) => None,
    }
}

/// Allocates the result register, reusing the operand's register if this is
/// its last use, or materializing immediates directly.
fn result_from<A: IrAdapter>(
    cg: Cg<'_, '_, A>,
    res: ResultPart,
    op: &AsmOperand,
    bank: RegBank,
    size: u32,
) -> Result<Reg> {
    match op {
        AsmOperand::Val(p) if !p.is_const => cg.result_reuse(res.0, res.1, p),
        _ => {
            let dst = cg.result_reg(res.0, res.1)?;
            let v = op.as_imm().unwrap_or(0);
            cg.target.emit_const(cg.buf, bank, size.max(4), dst, v);
            Ok(dst)
        }
    }
}

fn icmp_cond(cc: ICmp) -> Cond {
    match cc {
        ICmp::Eq => Cond::E,
        ICmp::Ne => Cond::NE,
        ICmp::Slt => Cond::L,
        ICmp::Sle => Cond::LE,
        ICmp::Sgt => Cond::G,
        ICmp::Sge => Cond::GE,
        ICmp::Ult => Cond::B,
        ICmp::Ule => Cond::BE,
        ICmp::Ugt => Cond::A,
        ICmp::Uge => Cond::AE,
    }
}

fn fcmp_cond(cc: FCmp) -> Cond {
    match cc {
        FCmp::Oeq => Cond::E,
        FCmp::One => Cond::NE,
        FCmp::Olt => Cond::B,
        FCmp::Ole => Cond::BE,
        FCmp::Ogt => Cond::A,
        FCmp::Oge => Cond::AE,
    }
}

/// Emits a comparison of `lhs` and `rhs`, returning the condition to test
/// (which may differ from `cc` if the operands were swapped).
fn emit_icmp<A: IrAdapter>(
    cg: Cg<'_, '_, A>,
    mut cc: ICmp,
    size: u32,
    lhs: &AsmOperand,
    rhs: &AsmOperand,
) -> Result<Cond> {
    let (lhs, rhs) = if lhs.as_imm().is_some() && rhs.as_imm().is_none() {
        cc = cc.swapped();
        (rhs, lhs)
    } else {
        (lhs, rhs)
    };
    let lreg = Gp::from(op_as_reg(cg, lhs, RegBank::GP, size)?);
    if let Some(imm) = rhs.as_imm32(size) {
        x64::alu_ri(cg.buf, Alu::Cmp, size, lreg, imm);
    } else if let Some(mem) = op_mem(cg, rhs) {
        x64::alu_rm(cg.buf, Alu::Cmp, size, lreg, mem);
    } else {
        let rreg = Gp::from(op_as_reg(cg, rhs, RegBank::GP, size)?);
        x64::alu_rr(cg.buf, Alu::Cmp, size, lreg, rreg);
    }
    Ok(icmp_cond(cc))
}

impl SnippetEmitter for X64Target {
    fn enc_bin<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        op: BinOp,
        size: u32,
        res: ResultPart,
        lhs: &AsmOperand,
        rhs: &AsmOperand,
    ) -> Result<()> {
        let osize = size.max(4);
        // prefer the constant on the right for commutative operations
        let (lhs, rhs) = if op.commutative() && lhs.as_imm().is_some() && rhs.as_imm().is_none() {
            (rhs, lhs)
        } else {
            (lhs, rhs)
        };
        // make sure the rhs is loaded before the result possibly reuses lhs
        let rhs_reg = if rhs.as_imm32(osize).is_none() && op_mem(cg, rhs).is_none() {
            Some(op_as_reg(cg, rhs, RegBank::GP, osize)?)
        } else {
            None
        };
        let dst = Gp::from(result_from(cg, res, lhs, RegBank::GP, osize)?);
        match op {
            BinOp::Mul => {
                if let Some(imm) = rhs.as_imm32(osize) {
                    x64::imul_rri(cg.buf, osize, dst, dst, imm);
                } else if let Some(r) = rhs_reg {
                    x64::imul_rr(cg.buf, osize, dst, Gp::from(r));
                } else {
                    let r = op_as_reg(cg, rhs, RegBank::GP, osize)?;
                    x64::imul_rr(cg.buf, osize, dst, Gp::from(r));
                }
            }
            _ => {
                let alu = match op {
                    BinOp::Add => Alu::Add,
                    BinOp::Sub => Alu::Sub,
                    BinOp::And => Alu::And,
                    BinOp::Or => Alu::Or,
                    BinOp::Xor => Alu::Xor,
                    BinOp::Mul => unreachable!(),
                };
                if let Some(imm) = rhs.as_imm32(osize) {
                    x64::alu_ri(cg.buf, alu, osize, dst, imm);
                } else if let Some(mem) = op_mem(cg, rhs) {
                    x64::alu_rm(cg.buf, alu, osize, dst, mem);
                } else if let Some(r) = rhs_reg {
                    x64::alu_rr(cg.buf, alu, osize, dst, Gp::from(r));
                } else {
                    let r = op_as_reg(cg, rhs, RegBank::GP, osize)?;
                    x64::alu_rr(cg.buf, alu, osize, dst, Gp::from(r));
                }
            }
        }
        Ok(())
    }

    fn enc_divrem<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        signed: bool,
        rem: bool,
        size: u32,
        res: ResultPart,
        lhs: &AsmOperand,
        rhs: &AsmOperand,
    ) -> Result<()> {
        let osize = size.max(4);
        let rax = gp(0);
        let rdx = gp(2);
        // divisor anywhere but rax/rdx
        let allowed = cg.allocatable_set(RegBank::GP, &[rax, rdx]);
        let rhs_reg = op_as_reg_in(cg, rhs, RegBank::GP, osize, allowed)?;
        // dividend in rax; keep a memory copy if the value lives on
        if let AsmOperand::Val(p) = lhs {
            cg.ensure_spilled(p)?;
        }
        let lhs_reg = op_as_reg_in(cg, lhs, RegBank::GP, osize, RegSet::from_regs([rax]))?;
        debug_assert_eq!(lhs_reg, rax);
        // rdx is clobbered by the division
        let _rdx_scratch = cg.alloc_scratch_in(RegBank::GP, RegSet::from_regs([rdx]))?;
        if signed {
            x64::cqo(cg.buf, osize);
            x64::idiv(cg.buf, osize, Gp::from(rhs_reg));
        } else {
            x64::alu_rr(cg.buf, Alu::Xor, 4, Gp::RDX, Gp::RDX);
            x64::div(cg.buf, osize, Gp::from(rhs_reg));
        }
        // rax/rdx now hold quotient/remainder; detach the dividend value
        cg.forget_reg(rax);
        let out = if rem { rdx } else { rax };
        cg.take_reg_for_result(res.0, res.1, out);
        Ok(())
    }

    fn enc_shift<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        kind: ShiftKind,
        size: u32,
        res: ResultPart,
        lhs: &AsmOperand,
        rhs: &AsmOperand,
    ) -> Result<()> {
        let osize = size.max(4);
        let skind = match kind {
            ShiftKind::Shl => Shift::Shl,
            ShiftKind::LShr => Shift::Shr,
            ShiftKind::AShr => Shift::Sar,
        };
        if let Some(imm) = rhs.as_imm() {
            let dst = Gp::from(result_from(cg, res, lhs, RegBank::GP, osize)?);
            x64::shift_ri(
                cg.buf,
                skind,
                osize,
                dst,
                (imm as u8) & (osize as u8 * 8 - 1),
            );
            return Ok(());
        }
        let rcx = gp(1);
        let amt = op_as_reg_in(cg, rhs, RegBank::GP, osize, RegSet::from_regs([rcx]))?;
        debug_assert_eq!(amt, rcx);
        // make sure the result register is not rcx
        let dst = match lhs {
            AsmOperand::Val(p) if !p.is_const && cg.val_cur_reg(p) != Some(rcx) => {
                cg.result_reuse(res.0, res.1, p)?
            }
            _ => {
                let dst = cg.result_reg(res.0, res.1)?;
                let src = op_as_reg(cg, lhs, RegBank::GP, osize)?;
                cg.target.emit_mov_rr(cg.buf, RegBank::GP, 8, dst, src);
                dst
            }
        };
        x64::shift_cl(cg.buf, skind, osize, Gp::from(dst));
        Ok(())
    }

    fn enc_icmp<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        cc: ICmp,
        size: u32,
        res: ResultPart,
        lhs: &AsmOperand,
        rhs: &AsmOperand,
    ) -> Result<()> {
        let cond = emit_icmp(cg, cc, size, lhs, rhs)?;
        let dst = Gp::from(cg.result_reg(res.0, res.1)?);
        x64::setcc(cg.buf, cond, dst);
        x64::movzx_rr(cg.buf, dst, dst, 1);
        Ok(())
    }

    fn enc_icmp_branch<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        cc: ICmp,
        size: u32,
        lhs: &AsmOperand,
        rhs: &AsmOperand,
        if_true: BlockRef,
        if_false: BlockRef,
    ) -> Result<()> {
        let cond = emit_icmp(cg, cc, size, lhs, rhs)?;
        cg.spill_before_branch()?;
        let taken = cg.branch_target(if_true)?;
        x64::jcc_label(cg.buf, cond, taken);
        cg.terminator_fallthrough(if_false)
    }

    fn enc_branch_nonzero<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        size: u32,
        val: &AsmOperand,
        branch_if_zero: bool,
        if_true: BlockRef,
        if_false: BlockRef,
    ) -> Result<()> {
        let reg = Gp::from(op_as_reg(cg, val, RegBank::GP, size)?);
        x64::test_rr(cg.buf, size.max(4), reg, reg);
        cg.spill_before_branch()?;
        let cond = if branch_if_zero { Cond::E } else { Cond::NE };
        let taken = cg.branch_target(if_true)?;
        x64::jcc_label(cg.buf, cond, taken);
        cg.terminator_fallthrough(if_false)
    }

    fn enc_load<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        mem_size: u32,
        sign_extend: bool,
        fp: bool,
        res: ResultPart,
        addr: &AsmOperand,
        offset: i32,
    ) -> Result<()> {
        let base = Gp::from(op_as_reg(cg, addr, RegBank::GP, 8)?);
        let mem = Mem::base_disp(base, offset);
        if fp {
            let dst = Xmm::from(cg.result_reg(res.0, res.1)?);
            x64::fp_load(cg.buf, mem_size, dst, mem);
        } else {
            let dst = Gp::from(cg.result_reg(res.0, res.1)?);
            match (mem_size, sign_extend) {
                (8, _) => x64::mov_rm(cg.buf, 8, dst, mem),
                (4, false) => x64::mov_rm(cg.buf, 4, dst, mem),
                (4, true) => x64::movsx_rm(cg.buf, 8, dst, mem, 4),
                (s, false) => x64::movzx_rm(cg.buf, dst, mem, s),
                (s, true) => x64::movsx_rm(cg.buf, 8, dst, mem, s),
            }
        }
        Ok(())
    }

    fn enc_store<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        mem_size: u32,
        fp: bool,
        addr: &AsmOperand,
        offset: i32,
        value: &AsmOperand,
    ) -> Result<()> {
        let base = Gp::from(op_as_reg(cg, addr, RegBank::GP, 8)?);
        let mem = Mem::base_disp(base, offset);
        if fp {
            let src = Xmm::from(op_as_reg(cg, value, RegBank::FP, mem_size)?);
            x64::fp_store(cg.buf, mem_size, mem, src);
        } else if let Some(imm) = value.as_imm32(mem_size) {
            x64::mov_mi(cg.buf, mem_size, mem, imm);
        } else {
            let src = Gp::from(op_as_reg(cg, value, RegBank::GP, mem_size)?);
            x64::mov_mr(cg.buf, mem_size, mem, src);
        }
        Ok(())
    }

    fn enc_ext<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        signed: bool,
        from_size: u32,
        to_size: u32,
        res: ResultPart,
        src: &AsmOperand,
    ) -> Result<()> {
        let sreg = Gp::from(op_as_reg(cg, src, RegBank::GP, from_size)?);
        let dst = Gp::from(cg.result_reg(res.0, res.1)?);
        if to_size <= from_size {
            // truncation: move, a 32-bit move clears the upper bits
            x64::mov_rr(cg.buf, to_size.max(4), dst, sreg);
        } else if signed {
            x64::movsx_rr(cg.buf, to_size, dst, sreg, from_size);
        } else if from_size == 4 {
            x64::mov_rr(cg.buf, 4, dst, sreg);
        } else {
            x64::movzx_rr(cg.buf, dst, sreg, from_size);
        }
        Ok(())
    }

    fn enc_select<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        size: u32,
        res: ResultPart,
        cond: &AsmOperand,
        tval: &AsmOperand,
        fval: &AsmOperand,
    ) -> Result<()> {
        let osize = size.max(4);
        let creg = Gp::from(op_as_reg(cg, cond, RegBank::GP, 1)?);
        let freg = op_as_reg(cg, fval, RegBank::GP, osize)?;
        let dst = Gp::from(result_from(cg, res, tval, RegBank::GP, osize)?);
        x64::test_rr(cg.buf, 4, creg, creg);
        x64::cmovcc(cg.buf, Cond::E, osize, dst, Gp::from(freg));
        Ok(())
    }

    fn enc_fbin<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        op: FBinOp,
        size: u32,
        res: ResultPart,
        lhs: &AsmOperand,
        rhs: &AsmOperand,
    ) -> Result<()> {
        let opcode = match op {
            FBinOp::Add => 0x58,
            FBinOp::Sub => 0x5c,
            FBinOp::Mul => 0x59,
            FBinOp::Div => 0x5e,
        };
        let rhs_mem = op_mem(cg, rhs);
        let rhs_reg = if rhs_mem.is_none() {
            Some(op_as_reg(cg, rhs, RegBank::FP, size)?)
        } else {
            None
        };
        let dst = match lhs {
            AsmOperand::Val(p) if !p.is_const => Xmm::from(cg.result_reuse(res.0, res.1, p)?),
            _ => {
                let dst = cg.result_reg(res.0, res.1)?;
                let v = lhs.as_imm().unwrap_or(0);
                cg.target.emit_const(cg.buf, RegBank::FP, size, dst, v);
                Xmm::from(dst)
            }
        };
        if let Some(mem) = rhs_mem {
            x64::sse_rm(
                cg.buf,
                if size == 4 { 0xf3 } else { 0xf2 },
                opcode,
                dst,
                mem,
            );
        } else {
            x64::fp_arith(cg.buf, size, opcode, dst, Xmm::from(rhs_reg.unwrap()));
        }
        Ok(())
    }

    fn enc_fcmp<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        cc: FCmp,
        size: u32,
        res: ResultPart,
        lhs: &AsmOperand,
        rhs: &AsmOperand,
    ) -> Result<()> {
        let lreg = Xmm::from(op_as_reg(cg, lhs, RegBank::FP, size)?);
        let rreg = Xmm::from(op_as_reg(cg, rhs, RegBank::FP, size)?);
        x64::fp_ucomis(cg.buf, size, lreg, rreg);
        let dst = Gp::from(cg.result_reg(res.0, res.1)?);
        x64::setcc(cg.buf, fcmp_cond(cc), dst);
        x64::movzx_rr(cg.buf, dst, dst, 1);
        Ok(())
    }

    fn enc_fneg<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        size: u32,
        res: ResultPart,
        src: &AsmOperand,
    ) -> Result<()> {
        let sign_bit = if size == 4 { 1u64 << 31 } else { 1u64 << 63 };
        let dst = match src {
            AsmOperand::Val(p) if !p.is_const => Xmm::from(cg.result_reuse(res.0, res.1, p)?),
            _ => {
                let dst = cg.result_reg(res.0, res.1)?;
                cg.target
                    .emit_const(cg.buf, RegBank::FP, size, dst, src.as_imm().unwrap_or(0));
                Xmm::from(dst)
            }
        };
        let mask = cg.alloc_scratch(RegBank::FP)?;
        cg.target
            .emit_const(cg.buf, RegBank::FP, size, mask, sign_bit);
        x64::fp_xor(cg.buf, size, dst, Xmm::from(mask));
        Ok(())
    }

    fn enc_int_to_fp<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        int_size: u32,
        fp_size: u32,
        res: ResultPart,
        src: &AsmOperand,
    ) -> Result<()> {
        let sreg = Gp::from(op_as_reg(cg, src, RegBank::GP, int_size)?);
        let dst = Xmm::from(cg.result_reg(res.0, res.1)?);
        x64::cvt_int_to_fp(cg.buf, fp_size, int_size.max(4), dst, sreg);
        Ok(())
    }

    fn enc_fp_to_int<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        fp_size: u32,
        int_size: u32,
        res: ResultPart,
        src: &AsmOperand,
    ) -> Result<()> {
        let sreg = Xmm::from(op_as_reg(cg, src, RegBank::FP, fp_size)?);
        let dst = Gp::from(cg.result_reg(res.0, res.1)?);
        x64::cvt_fp_to_int(cg.buf, fp_size, int_size.max(4), dst, sreg);
        Ok(())
    }

    fn enc_fp_convert<A: IrAdapter>(
        cg: &mut FuncCodeGen<'_, A, Self>,
        _from_size: u32,
        to_size: u32,
        res: ResultPart,
        src: &AsmOperand,
    ) -> Result<()> {
        let sreg = Xmm::from(op_as_reg(cg, src, RegBank::FP, 8)?);
        let dst = Xmm::from(cg.result_reg(res.0, res.1)?);
        x64::cvt_fp_to_fp(cg.buf, to_size, dst, sreg);
        Ok(())
    }
}
