//! End-to-end correctness: every back-end must produce code that computes
//! the same checksums as the Rust reference implementation of the workloads.

use tpde_core::codegen::CompileOptions;
use tpde_core::jit::link_in_memory;
use tpde_llvm::ir::{BinOp, FunctionBuilder, ICmp, Module, Type};
use tpde_llvm::workloads::{build_workload, expected_result, spec_workloads, IrStyle, Workload};
use tpde_llvm::{compile_a64, compile_baseline, compile_copy_patch, compile_x64};
use tpde_x64emu::run_function;

fn run_buf(buf: &tpde_core::codebuf::CodeBuffer, func: &str, args: &[u64]) -> u64 {
    let image = link_in_memory(buf, 0x40_0000, |_| None).unwrap();
    let (ret, _) = run_function(&image, func, args).expect("execution");
    ret
}

#[test]
fn simple_function_all_backends_agree() {
    let mut m = Module::new();
    let mut b = FunctionBuilder::new("calc", &[Type::I64, Type::I64], Type::I64);
    let sum = b.bin(BinOp::Add, Type::I64, b.arg(0), b.arg(1));
    let c = b.iconst(Type::I64, 10);
    let prod = b.bin(BinOp::Mul, Type::I64, sum, c);
    let cond = b.icmp(ICmp::Ult, Type::I64, prod, b.arg(0));
    let sel = b.select(Type::I64, cond, b.arg(0), prod);
    b.ret(Some(sel));
    m.add_function(b.build());

    let expected = (7u64 + 5) * 10; // 120; not < 7 so select picks prod
    let tpde = compile_x64(&m, &CompileOptions::default()).unwrap();
    assert_eq!(run_buf(&tpde.buf, "calc", &[7, 5]), expected);
    let cp = compile_copy_patch(&m).unwrap();
    assert_eq!(run_buf(&cp.buf, "calc", &[7, 5]), expected);
    let base = compile_baseline(&m, 0).unwrap();
    assert_eq!(run_buf(&base.buf, "calc", &[7, 5]), expected);
    let a64 = compile_a64(&m, &CompileOptions::default()).unwrap();
    assert!(a64.text_size() > 0);
}

fn check_workload(w: &Workload, style: IrStyle) {
    let module = build_workload(w, style);
    let expected = expected_result(w);

    let tpde = compile_x64(&module, &CompileOptions::default()).unwrap();
    let got = run_buf(&tpde.buf, "bench_main", &[w.input]);
    assert_eq!(
        got, expected,
        "TPDE x86-64 wrong for {} ({:?})",
        w.name, style
    );

    let cp = compile_copy_patch(&module).unwrap();
    let got = run_buf(&cp.buf, "bench_main", &[w.input]);
    assert_eq!(
        got, expected,
        "copy-and-patch wrong for {} ({:?})",
        w.name, style
    );

    let base = compile_baseline(&module, 0).unwrap();
    let got = run_buf(&base.buf, "bench_main", &[w.input]);
    assert_eq!(got, expected, "baseline wrong for {} ({:?})", w.name, style);

    // AArch64: compile-only (executed targets are x86-64; see DESIGN.md)
    let a64 = compile_a64(&module, &CompileOptions::default()).unwrap();
    assert!(a64.text_size() > 0, "empty AArch64 code for {}", w.name);
}

#[test]
fn workload_intloop_is_correct_in_both_styles() {
    let w = Workload {
        input: 2_000,
        ..spec_workloads()[6].clone()
    };
    check_workload(&w, IrStyle::O0);
    check_workload(&w, IrStyle::O1);
}

#[test]
fn workload_branchy_is_correct() {
    let w = Workload {
        input: 2_000,
        funcs: 4,
        ..spec_workloads()[0].clone()
    };
    check_workload(&w, IrStyle::O0);
    check_workload(&w, IrStyle::O1);
}

#[test]
fn workload_memory_is_correct() {
    let w = Workload {
        input: 2_000,
        funcs: 2,
        ..spec_workloads()[2].clone()
    };
    check_workload(&w, IrStyle::O0);
}

#[test]
fn workload_callheavy_is_correct() {
    let w = Workload {
        input: 2_000,
        funcs: 4,
        ..spec_workloads()[3].clone()
    };
    check_workload(&w, IrStyle::O0);
    check_workload(&w, IrStyle::O1);
}

#[test]
fn workload_fp_is_correct() {
    let w = Workload {
        input: 2_000,
        funcs: 2,
        ..spec_workloads()[7].clone()
    };
    check_workload(&w, IrStyle::O0);
}

#[test]
fn ablation_options_still_produce_correct_code() {
    let w = Workload {
        input: 1_000,
        funcs: 2,
        ..spec_workloads()[6].clone()
    };
    let module = build_workload(&w, IrStyle::O1);
    let expected = expected_result(&w);
    for opts in [
        CompileOptions {
            fixed_loop_regs: false,
            ..CompileOptions::default()
        },
        CompileOptions {
            fusion: false,
            ..CompileOptions::default()
        },
        CompileOptions {
            assume_all_live: true,
            ..CompileOptions::default()
        },
    ] {
        let compiled = compile_x64(&module, &opts).unwrap();
        assert_eq!(run_buf(&compiled.buf, "bench_main", &[w.input]), expected);
    }
}

#[test]
fn tpde_code_is_smaller_than_copy_patch() {
    let w = Workload {
        input: 100,
        funcs: 3,
        ..spec_workloads()[0].clone()
    };
    let module = build_workload(&w, IrStyle::O0);
    let tpde = compile_x64(&module, &CompileOptions::default()).unwrap();
    let cp = compile_copy_patch(&module).unwrap();
    assert!(
        tpde.text_size() < cp.buf.section_size(tpde_core::codebuf::SectionKind::Text),
        "TPDE code should be smaller than copy-and-patch code"
    );
}
