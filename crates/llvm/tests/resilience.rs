//! Resilience suite over the real LLVM-IR backends: injected worker
//! hangs and merge panics must surface as explicit per-request errors,
//! and the service must keep producing byte-identical output afterwards
//! — the respawned worker's rebuilt warm state may not change a single
//! output byte.

use std::sync::Arc;
use std::time::Duration;
use tpde_core::codebuf::assert_identical;
use tpde_core::codegen::CompileOptions;
use tpde_core::error::Error;
use tpde_core::faultpoint::{arm, sites, FaultAction, FaultRule};
use tpde_core::service::{Request, ServiceConfig};
use tpde_llvm::workloads::{build_workload, spec_workloads, IrStyle, Workload};
use tpde_llvm::{compile_service, compile_x64, ModuleRequest, ServiceBackendKind};

fn workload_module(index: usize, funcs_scale: u32) -> Arc<tpde_llvm::ir::Module> {
    let w = spec_workloads()[index].clone();
    let w = Workload {
        input: w.input.min(500),
        funcs: w.funcs * funcs_scale,
        ..w
    };
    Arc::new(build_workload(&w, IrStyle::O0))
}

#[test]
fn respawned_worker_rebuilds_warm_state_byte_identically() {
    let opts = CompileOptions::default();
    let module = workload_module(1, 1);
    let want = compile_x64(&module, &opts).unwrap();
    // The first (and only the first) single-module job stalls for far
    // longer than the hang budget, inside the compile region.
    let _g = arm(vec![FaultRule::new(
        sites::WORKER_JOB,
        FaultAction::Delay(Duration::from_millis(300)),
    )
    .at_index(0)
    .limit(1)]);
    let svc = compile_service(ServiceConfig {
        workers: 1,
        shard_threshold: 1000,
        cache_capacity: 8,
        hang_timeout: Some(Duration::from_millis(50)),
        ..ServiceConfig::default()
    });
    let hung = svc.compile(Request::new(ModuleRequest::new(
        Arc::clone(&module),
        ServiceBackendKind::TpdeX64,
    )));
    assert!(
        matches!(hung.module, Err(Error::Timeout(_))),
        "stalled job must be poisoned by the watchdog"
    );
    let stats = svc.stats();
    assert!(stats.watchdog_timeouts >= 1);
    assert!(stats.workers_respawned >= 1);
    // The replacement worker rebuilt its warm state (adapter tables, target
    // drivers) from scratch; its output must not differ in a single byte —
    // and must really recompile, since a poisoned result is never cached.
    let again = svc.compile(Request::new(ModuleRequest::new(
        Arc::clone(&module),
        ServiceBackendKind::TpdeX64,
    )));
    assert!(
        !again.timing.cache_hit,
        "poisoned result must not be cached"
    );
    assert_identical(
        &want.buf,
        &again.module.expect("respawned worker compile").buf,
        "after watchdog respawn",
    );
}

#[test]
fn merge_panic_is_one_failed_request_not_a_wedged_pool() {
    let opts = CompileOptions::default();
    let module = workload_module(2, 8); // enlarged: forces the sharded path
    let want = compile_x64(&module, &opts).unwrap();
    let _g = arm(vec![FaultRule::new(
        sites::WORKER_MERGE,
        FaultAction::Panic,
    )
    .limit(1)]);
    let svc = compile_service(ServiceConfig {
        workers: 4,
        shard_threshold: 16,
        cache_capacity: 8,
        ..ServiceConfig::default()
    });
    let r = svc.compile(Request::new(ModuleRequest::new(
        Arc::clone(&module),
        ServiceBackendKind::TpdeX64,
    )));
    let err = format!("{}", r.module.expect_err("merge must panic"));
    assert!(err.contains("panicked"), "unexpected error: {err}");
    assert!(svc.stats().sharded >= 1, "panic must have hit a real merge");
    // Same request again: the merging worker was rebuilt after the panic
    // and the pool still produces the reference bytes.
    let again = svc
        .compile(Request::new(ModuleRequest::new(
            Arc::clone(&module),
            ServiceBackendKind::TpdeX64,
        )))
        .module
        .expect("pool must survive a merge panic");
    assert_identical(&want.buf, &again.buf, "after merge panic");
}

#[test]
fn coalesced_waiters_get_byte_identical_modules() {
    let opts = CompileOptions::default();
    let module = workload_module(3, 4);
    let want = compile_x64(&module, &opts).unwrap();
    let svc = compile_service(ServiceConfig {
        workers: 1,
        shard_threshold: 1000,
        cache_capacity: 8,
        ..ServiceConfig::default()
    });
    // Same content, submitted back-to-back while the first is still in
    // flight on the single worker: late submissions either attach to the
    // in-flight compile or (if it already finished) hit the cache — in
    // both cases exactly one real compile runs.
    const N: usize = 6;
    let tickets: Vec<_> = (0..N)
        .map(|_| {
            svc.submit(Request::new(ModuleRequest::new(
                Arc::clone(&module),
                ServiceBackendKind::TpdeX64,
            )))
        })
        .collect();
    for t in tickets {
        let got = t.wait().module.expect("coalesced compile");
        assert_identical(&want.buf, &got.buf, "coalesced waiter");
    }
    let stats = svc.stats();
    assert_eq!(
        stats.coalesced + stats.cache_hits,
        (N - 1) as u64,
        "all but one submission must be deduplicated"
    );
    assert_eq!(stats.batched + stats.sharded, 1, "exactly one real compile");
}
