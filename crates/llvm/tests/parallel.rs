//! Determinism suite for the function-sharded parallel pipeline: for every
//! workload kind, both IR styles and 1/2/4/8 workers, the parallel output —
//! text bytes, symbol table, relocations and the serialized ELF object —
//! must be byte-identical to single-threaded compilation, and the generated
//! code must still execute correctly.

use tpde_core::codebuf::assert_identical;
use tpde_core::codegen::CompileOptions;
use tpde_core::obj::{write_elf_object, ElfMachine};
use tpde_core::parallel::WorkerPool;
use tpde_llvm::backend::compile_with_pool;
use tpde_llvm::workloads::{build_workload, expected_result, spec_workloads, IrStyle, Workload};
use tpde_llvm::{
    compile_a64, compile_a64_parallel, compile_baseline, compile_baseline_parallel,
    compile_copy_patch, compile_copy_patch_parallel, compile_x64, compile_x64_parallel,
};

const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn small(w: &Workload) -> Workload {
    Workload {
        input: w.input.min(500),
        ..w.clone()
    }
}

#[test]
fn tpde_x64_parallel_is_byte_identical_for_all_workloads() {
    let opts = CompileOptions::default();
    for w in spec_workloads() {
        let w = small(&w);
        for style in [IrStyle::O0, IrStyle::O1] {
            let module = build_workload(&w, style);
            let seq = compile_x64(&module, &opts).expect("sequential compile");
            for threads in WORKERS {
                let what = format!("{} {:?} x64 threads={threads}", w.name, style);
                let par = compile_x64_parallel(&module, &opts, threads).expect(&what);
                assert_identical(&seq.buf, &par.buf, &what);
                // The serialized relocatable object is byte-identical too.
                assert_eq!(
                    write_elf_object(&seq.buf, ElfMachine::X86_64).unwrap(),
                    write_elf_object(&par.buf, ElfMachine::X86_64).unwrap(),
                    "{what}: ELF object differs"
                );
                // Event counters are worker-order-independent sums.
                assert_eq!(seq.stats.funcs, par.stats.funcs, "{what}");
                assert_eq!(seq.stats.blocks, par.stats.blocks, "{what}");
                assert_eq!(seq.stats.insts, par.stats.insts, "{what}");
                assert_eq!(seq.stats.spills, par.stats.spills, "{what}");
                assert_eq!(seq.stats.reloads, par.stats.reloads, "{what}");
                assert_eq!(seq.stats.moves, par.stats.moves, "{what}");
            }
        }
    }
}

#[test]
fn tpde_a64_parallel_is_byte_identical() {
    let opts = CompileOptions::default();
    for w in spec_workloads().iter().step_by(2) {
        let w = small(w);
        for style in [IrStyle::O0, IrStyle::O1] {
            let module = build_workload(&w, style);
            let seq = compile_a64(&module, &opts).expect("sequential compile");
            for threads in [2, 8] {
                let what = format!("{} {:?} a64 threads={threads}", w.name, style);
                let par = compile_a64_parallel(&module, &opts, threads).expect(&what);
                assert_identical(&seq.buf, &par.buf, &what);
                assert_eq!(
                    write_elf_object(&seq.buf, ElfMachine::Aarch64).unwrap(),
                    write_elf_object(&par.buf, ElfMachine::Aarch64).unwrap(),
                    "{what}: ELF object differs"
                );
            }
        }
    }
}

#[test]
fn baseline_backends_parallel_are_byte_identical() {
    for w in spec_workloads().iter().take(3) {
        let w = small(w);
        let module = build_workload(&w, IrStyle::O0);
        let seq_cp = compile_copy_patch(&module).unwrap();
        let seq_o0 = compile_baseline(&module, 0).unwrap();
        let seq_o1 = compile_baseline(&module, 1).unwrap();
        for threads in WORKERS {
            let par = compile_copy_patch_parallel(&module, threads).unwrap();
            assert_identical(&seq_cp.buf, &par.buf, "copy-patch");
            assert_eq!(seq_cp.insts, par.insts);
            let par = compile_baseline_parallel(&module, 0, threads).unwrap();
            assert_identical(&seq_o0.buf, &par.buf, "baseline O0");
            let par = compile_baseline_parallel(&module, 1, threads).unwrap();
            assert_identical(&seq_o1.buf, &par.buf, "baseline O1");
        }
    }
}

/// A module where `first` calls `third` — a *forward* reference to a
/// function defined later in the module — plus an external declaration.
/// This is the shape that distinguishes upfront symbol declaration from
/// lazy at-call-site declaration, so it pins that sequential and parallel
/// compilers produce the same symbol-table order even then.
fn forward_call_module() -> tpde_llvm::ir::Module {
    use tpde_llvm::ir::{BinOp, FuncId, FunctionBuilder, Module, Type};
    let mut m = Module::new();
    // function ids are dense indices in add order: first=0, second=1, third=2
    let mut b = FunctionBuilder::new("first", &[Type::I64], Type::I64);
    let r = b.call(FuncId(2), Type::I64, vec![b.arg(0)]);
    b.ret(Some(r));
    m.add_function(b.build());
    let mut b = FunctionBuilder::new("second", &[Type::I64], Type::I64);
    let two = b.iconst(Type::I64, 2);
    let r = b.bin(BinOp::Mul, Type::I64, b.arg(0), two);
    b.ret(Some(r));
    m.add_function(b.build());
    let mut b = FunctionBuilder::new("third", &[Type::I64], Type::I64);
    let one = b.iconst(Type::I64, 1);
    let r = b.bin(BinOp::Add, Type::I64, b.arg(0), one);
    b.ret(Some(r));
    m.add_function(b.build());
    m.declare("external_helper", vec![Type::I64], Type::I64);
    m
}

#[test]
fn forward_calls_keep_sequential_and_parallel_identical() {
    let m = forward_call_module();
    let opts = CompileOptions::default();
    let seq = compile_x64(&m, &opts).unwrap();
    let seq_cp = compile_copy_patch(&m).unwrap();
    let seq_o0 = compile_baseline(&m, 0).unwrap();
    for threads in WORKERS {
        let par = compile_x64_parallel(&m, &opts, threads).unwrap();
        assert_identical(&seq.buf, &par.buf, "tpde forward call");
        let par = compile_copy_patch_parallel(&m, threads).unwrap();
        assert_identical(&seq_cp.buf, &par.buf, "copy-patch forward call");
        let par = compile_baseline_parallel(&m, 0, threads).unwrap();
        assert_identical(&seq_o0.buf, &par.buf, "baseline forward call");
    }
}

#[test]
fn parallel_output_executes_correctly() {
    let w = small(&spec_workloads()[6]);
    let module = build_workload(&w, IrStyle::O0);
    let compiled = compile_x64_parallel(&module, &CompileOptions::default(), 4).unwrap();
    let image = tpde_core::jit::link_in_memory(&compiled.buf, 0x40_0000, |_| None).unwrap();
    let (ret, _) = tpde_x64emu::run_function(&image, "bench_main", &[w.input]).unwrap();
    assert_eq!(ret, expected_result(&w));
}

#[test]
fn worker_pool_reuse_across_modules_stays_identical() {
    let opts = CompileOptions::default();
    let mut pool = WorkerPool::new();
    // Compile several different modules through the same pool; reused worker
    // sessions must not leak state between modules.
    for w in spec_workloads().iter().take(4) {
        let w = small(w);
        for style in [IrStyle::O0, IrStyle::O1] {
            let module = build_workload(&w, style);
            let seq = compile_x64(&module, &opts).unwrap();
            let par = compile_with_pool(&module, tpde_enc::X64Target::new(), &opts, 3, &mut pool)
                .unwrap();
            let what = format!("pooled {} {:?}", w.name, style);
            assert_identical(&seq.buf, &par.buf, &what);
        }
    }
    assert!(pool.sessions() > 0, "sessions returned to the pool");
}

#[test]
fn worker_pool_serves_heterogeneous_targets_without_rebuild() {
    let opts = CompileOptions::default();
    let mut pool = WorkerPool::new();
    // One pool, alternating targets: prepare_session reconfigures the
    // register file per compile, so sessions warmed by one target must
    // produce byte-identical output when reused for the other.
    for w in spec_workloads().iter().take(3) {
        let w = small(w);
        let module = build_workload(&w, IrStyle::O1);
        let seq_x64 = compile_x64(&module, &opts).unwrap();
        let seq_a64 = compile_a64(&module, &opts).unwrap();
        for _ in 0..2 {
            let par = compile_with_pool(&module, tpde_enc::X64Target::new(), &opts, 3, &mut pool)
                .unwrap();
            assert_identical(&seq_x64.buf, &par.buf, &format!("{} x64 pooled", w.name));
            let par = compile_with_pool(&module, tpde_enc::A64Target::new(), &opts, 3, &mut pool)
                .unwrap();
            assert_identical(&seq_a64.buf, &par.buf, &format!("{} a64 pooled", w.name));
        }
    }
    assert!(pool.sessions() > 0, "sessions returned to the pool");
}
