//! Workload generator coverage: the IR emitted by `build_workload` must
//! compute exactly the checksum `expected_result` predicts, verified by
//! compiling with the TPDE back-end and executing in the emulator.

use tpde_core::codegen::CompileOptions;
use tpde_core::jit::link_in_memory;
use tpde_llvm::compile_x64;
use tpde_llvm::workloads::{build_workload, expected_result, spec_workloads, IrStyle, Workload};
use tpde_x64emu::run_function;

fn emulated_result(w: &Workload, style: IrStyle) -> u64 {
    let module = build_workload(w, style);
    let compiled = compile_x64(&module, &CompileOptions::default()).unwrap();
    let image = link_in_memory(&compiled.buf, 0x40_0000, |_| None).unwrap();
    let (ret, _) = run_function(&image, "bench_main", &[w.input]).expect("execution");
    ret
}

fn check(index: usize, styles: &[IrStyle]) {
    let w = Workload {
        input: 1_000,
        funcs: 2,
        ..spec_workloads()[index].clone()
    };
    for &style in styles {
        assert_eq!(
            emulated_result(&w, style),
            expected_result(&w),
            "generator/reference mismatch for {} ({:?})",
            w.name,
            style
        );
    }
}

#[test]
fn branchy_generator_matches_reference_in_both_styles() {
    // 600.perl: Branchy kind
    check(0, &[IrStyle::O0, IrStyle::O1]);
}

#[test]
fn memory_generator_matches_reference_in_both_styles() {
    // 605.mcf: Memory kind
    check(2, &[IrStyle::O0, IrStyle::O1]);
}

#[test]
fn callheavy_generator_matches_reference_in_both_styles() {
    // 620.omnetpp: CallHeavy kind
    check(3, &[IrStyle::O0, IrStyle::O1]);
}

#[test]
fn intloop_generator_matches_reference_in_both_styles() {
    // 631.deepsjeng: IntLoop kind
    check(6, &[IrStyle::O0, IrStyle::O1]);
}

#[test]
fn expected_result_is_input_dependent() {
    // Sanity on the reference itself: different inputs must give different
    // checksums (otherwise a back-end could pass by accident).
    let base = spec_workloads()[6].clone();
    let a = expected_result(&Workload {
        input: 1_000,
        ..base.clone()
    });
    let b = expected_result(&Workload {
        input: 1_001,
        ..base
    });
    assert_ne!(a, b);
}
