//! Determinism, stress and cache suite for the persistent compile service:
//! for every workload kind, worker count and backend, a service response
//! must be byte-identical to the one-shot sequential compiler — whether the
//! module was batched onto one worker, sharded across the pool, or served
//! from the content-addressed module cache.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use tpde_core::codebuf::assert_identical;
use tpde_core::codegen::{CompileOptions, CompiledModule};
use tpde_core::diskcache::DiskCacheConfig;
use tpde_core::faultpoint::{arm, sites, FaultAction, FaultRule};
use tpde_core::service::{Request, ServiceConfig};
use tpde_llvm::ir::Module;
use tpde_llvm::workloads::{build_workload, expected_result, spec_workloads, IrStyle, Workload};
use tpde_llvm::{
    compile_a64, compile_baseline, compile_copy_patch, compile_copy_patch_tiered, compile_service,
    compile_service_a64, compile_service_x64, compile_x64, compile_x64_tier0, LlvmCompileService,
    ModuleRequest, ServiceBackendKind,
};

const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn small(w: &Workload) -> Workload {
    Workload {
        input: w.input.min(500),
        ..w.clone()
    }
}

/// A service with a low shard threshold so the standard workloads (8–24
/// functions) exercise both placements across the suite.
fn service(workers: usize, cache: usize) -> LlvmCompileService {
    compile_service(ServiceConfig {
        workers,
        shard_threshold: 16,
        cache_capacity: cache,
        disk_cache: None,
        ..ServiceConfig::default()
    })
}

/// A fresh, empty temp directory unique to `tag`.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tpde-llvm-disk-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A service backed by the persistent disk cache at `dir`.
fn disk_service(workers: usize, cache: usize, dir: &Path) -> LlvmCompileService {
    compile_service(ServiceConfig {
        workers,
        shard_threshold: 16,
        cache_capacity: cache,
        disk_cache: Some(DiskCacheConfig::new(dir)),
        ..ServiceConfig::default()
    })
}

/// One-shot reference output for a request.
fn one_shot(module: &Module, kind: ServiceBackendKind, opts: &CompileOptions) -> CompiledModule {
    match kind {
        ServiceBackendKind::TpdeX64 => compile_x64(module, opts).unwrap(),
        ServiceBackendKind::TpdeA64 => compile_a64(module, opts).unwrap(),
        ServiceBackendKind::BaselineO0 => {
            let o = compile_baseline(module, 0).unwrap();
            CompiledModule {
                buf: o.buf,
                stats: Default::default(),
                timings: Default::default(),
            }
        }
        ServiceBackendKind::BaselineO1 => {
            let o = compile_baseline(module, 1).unwrap();
            CompiledModule {
                buf: o.buf,
                stats: Default::default(),
                timings: Default::default(),
            }
        }
        ServiceBackendKind::CopyPatch => {
            let o = compile_copy_patch(module).unwrap();
            CompiledModule {
                buf: o.buf,
                stats: Default::default(),
                timings: Default::default(),
            }
        }
        ServiceBackendKind::TpdeX64Tier0 => compile_x64_tier0(module, opts).unwrap(),
        ServiceBackendKind::CopyPatchTier0 => {
            let o = compile_copy_patch_tiered(module).unwrap();
            CompiledModule {
                buf: o.buf,
                stats: Default::default(),
                timings: Default::default(),
            }
        }
    }
}

#[test]
fn service_matches_one_shot_for_all_workloads_and_worker_counts() {
    let opts = CompileOptions::default();
    for workers in WORKERS {
        // Cache disabled: every request must really compile.
        let svc = service(workers, 0);
        for w in spec_workloads() {
            let w = small(&w);
            for style in [IrStyle::O0, IrStyle::O1] {
                let module = Arc::new(build_workload(&w, style));
                let seq = compile_x64(&module, &opts).unwrap();
                let got = compile_service_x64(&svc, &module, &opts);
                let what = format!("{} {:?} workers={workers}", w.name, style);
                let got_module = got.module.expect(&what);
                got_module
                    .validate()
                    .unwrap_or_else(|e| panic!("structurally invalid module for {what}: {e}"));
                assert_identical(&seq.buf, &got_module.buf, &what);
                assert_eq!(seq.stats.funcs, got_module.stats.funcs, "{what}");
                assert_eq!(seq.stats.insts, got_module.stats.insts, "{what}");
            }
        }
        let stats = svc.stats();
        assert_eq!(stats.completed, 18);
        if workers > 1 {
            assert!(
                stats.sharded > 0,
                "no workload sharded at {workers} workers"
            );
            assert!(
                stats.batched > 0,
                "no workload batched at {workers} workers"
            );
        }
    }
}

#[test]
fn heterogeneous_backends_share_one_pool() {
    let opts = CompileOptions::default();
    let svc = service(4, 0);
    let kinds = [
        ServiceBackendKind::TpdeX64,
        ServiceBackendKind::TpdeA64,
        ServiceBackendKind::BaselineO0,
        ServiceBackendKind::BaselineO1,
        ServiceBackendKind::CopyPatch,
        ServiceBackendKind::TpdeX64Tier0,
        ServiceBackendKind::CopyPatchTier0,
    ];
    for w in spec_workloads().iter().step_by(2) {
        let module = Arc::new(build_workload(&small(w), IrStyle::O0));
        // Interleave targets and pipelines request by request on the same
        // persistent threads; each must match its own sequential compiler.
        for kind in kinds {
            let want = one_shot(&module, kind, &opts);
            let got = svc
                .compile(Request::new(ModuleRequest::new(Arc::clone(&module), kind)))
                .module
                .unwrap();
            assert_identical(&want.buf, &got.buf, &format!("{} {kind:?}", w.name));
        }
    }
    assert_eq!(svc.workers(), 4);
}

#[test]
fn concurrent_stress_interleaves_small_and_large_modules() {
    let opts = CompileOptions::default();
    let svc = service(4, 0);
    // Build a mix: every workload kind (small modules, batched) plus
    // enlarged copies of a few workloads (sharded), with a seeded PRNG
    // picking backends and enlargements so the interleaving varies more
    // than a fixed modulus while staying reproducible.
    let mut rng = tpde_core::rng::Xoshiro256::new(0x0057_A355);
    let mut requests: Vec<(String, ModuleRequest)> = Vec::new();
    let mut enlarged = 0;
    for (i, w) in spec_workloads().iter().enumerate() {
        let w = small(w);
        let module = Arc::new(build_workload(&w, IrStyle::O0));
        let kind = *rng.pick(&[ServiceBackendKind::TpdeX64, ServiceBackendKind::TpdeA64]);
        requests.push((
            format!("{} {kind:?}", w.name),
            ModuleRequest::new(module, kind),
        ));
        // Always shard the first workload (the queue-depth assertion below
        // needs at least one slow module), then a random ~quarter of the rest.
        if i == 0 || (rng.chance(1, 4) && enlarged < 3) {
            enlarged += 1;
            let big = Workload {
                funcs: w.funcs * 8,
                ..w.clone()
            };
            let module = Arc::new(build_workload(&big, IrStyle::O1));
            requests.push((
                format!("{}x8 TpdeX64", w.name),
                ModuleRequest::new(module, ServiceBackendKind::TpdeX64),
            ));
        }
    }
    // Submit everything up front (pipelined), then verify each response
    // against the one-shot compiler. A sharded (slow) module goes first,
    // and worker jobs are delayed for the duration of the submit loop so
    // the queue verifiably builds up: on a single-CPU host an unpark can
    // otherwise context-switch straight to a worker that finishes each
    // small module before the next submit lands, never overlapping.
    let big_first = requests
        .iter()
        .position(|(what, _)| what.contains("x8"))
        .expect("an enlarged module");
    requests.swap(0, big_first);
    let slow_workers = arm(vec![FaultRule::new(
        sites::WORKER_JOB,
        FaultAction::Delay(Duration::from_millis(5)),
    )
    .every(1)]);
    let tickets: Vec<_> = requests
        .iter()
        .map(|(_, r)| svc.submit(Request::new(r.clone())))
        .collect();
    drop(slow_workers);
    for ((what, req), ticket) in requests.iter().zip(tickets) {
        let want = one_shot(&req.module, req.backend, &opts);
        let got = ticket.wait().module.expect(what);
        assert_identical(&want.buf, &got.buf, what);
    }
    let stats = svc.stats();
    assert!(stats.sharded >= 3, "enlarged modules must shard");
    assert!(
        stats.max_queue_depth > 1,
        "requests must overlap in the queue"
    );
}

#[test]
fn service_output_executes_correctly() {
    let w = small(&spec_workloads()[6]);
    let module = Arc::new(build_workload(&w, IrStyle::O0));
    let svc = service(4, 8);
    let compiled = compile_service_x64(&svc, &module, &CompileOptions::default())
        .module
        .unwrap();
    let image = tpde_core::jit::link_in_memory(&compiled.buf, 0x40_0000, |_| None).unwrap();
    let (ret, _) = tpde_x64emu::run_function(&image, "bench_main", &[w.input]).unwrap();
    assert_eq!(ret, expected_result(&w));

    // A cache hit links to an identical image (same fingerprint) and runs
    // to the same result.
    let warm = compile_service_x64(&svc, &module, &CompileOptions::default());
    assert!(warm.timing.cache_hit);
    let warm_image =
        tpde_core::jit::link_in_memory(&warm.module.unwrap().buf, 0x40_0000, |_| None).unwrap();
    assert_eq!(image.fingerprint(), warm_image.fingerprint());
    let (warm_ret, _) = tpde_x64emu::run_function(&warm_image, "bench_main", &[w.input]).unwrap();
    assert_eq!(warm_ret, ret);
}

#[test]
fn cache_hits_are_deterministic_across_equal_modules() {
    let opts = CompileOptions::default();
    let svc = service(2, 16);
    let w = small(&spec_workloads()[2]);
    let module = Arc::new(build_workload(&w, IrStyle::O0));
    let cold = compile_service_x64(&svc, &module, &opts);
    assert!(!cold.timing.cache_hit);
    // A structurally equal module in a different allocation hits the cache
    // (content-addressed, not pointer-addressed)...
    let rebuilt = Arc::new(build_workload(&w, IrStyle::O0));
    let warm = compile_service_x64(&svc, &rebuilt, &opts);
    assert!(warm.timing.cache_hit, "content-equal module must hit");
    assert_identical(
        &cold.module.unwrap().buf,
        &warm.module.unwrap().buf,
        "cache hit",
    );
    // ...while a different target, different options or different content
    // each miss.
    assert!(!compile_service_a64(&svc, &module, &opts).timing.cache_hit);
    let other_opts = CompileOptions {
        fusion: false,
        ..CompileOptions::default()
    };
    assert!(
        !compile_service_x64(&svc, &module, &other_opts)
            .timing
            .cache_hit
    );
    let different = Arc::new(build_workload(&small(&spec_workloads()[3]), IrStyle::O0));
    assert!(
        !compile_service_x64(&svc, &different, &opts)
            .timing
            .cache_hit
    );
    let stats = svc.stats();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 4);
}

#[test]
fn cache_eviction_keeps_serving_correct_bytes() {
    let opts = CompileOptions::default();
    // Capacity 2: compiling a third distinct module evicts the LRU entry.
    let svc = compile_service(ServiceConfig {
        workers: 1,
        shard_threshold: 1000,
        cache_capacity: 2,
        disk_cache: None,
        ..ServiceConfig::default()
    });
    let modules: Vec<Arc<Module>> = spec_workloads()
        .iter()
        .take(3)
        .map(|w| Arc::new(build_workload(&small(w), IrStyle::O0)))
        .collect();
    let references: Vec<CompiledModule> = modules
        .iter()
        .map(|m| compile_x64(m, &opts).unwrap())
        .collect();
    for (m, want) in modules.iter().zip(&references) {
        let got = compile_service_x64(&svc, m, &opts).module.unwrap();
        assert_identical(&want.buf, &got.buf, "cold fill");
    }
    // modules[0] was evicted (LRU); recompiling it must still be identical.
    let again = compile_service_x64(&svc, &modules[0], &opts);
    assert!(!again.timing.cache_hit, "evicted module must recompile");
    assert_identical(
        &references[0].buf,
        &again.module.unwrap().buf,
        "recompile after eviction",
    );
    let stats = svc.stats();
    assert!(stats.evictions >= 1);
    assert!(stats.cached_modules <= 2);
}

#[test]
fn restarted_process_answers_from_disk_byte_identically() {
    let opts = CompileOptions::default();
    let dir = temp_dir("restart");
    let kinds = [
        ServiceBackendKind::TpdeX64,
        ServiceBackendKind::TpdeA64,
        ServiceBackendKind::BaselineO1,
        ServiceBackendKind::CopyPatch,
        ServiceBackendKind::TpdeX64Tier0,
    ];
    let modules: Vec<Arc<Module>> = spec_workloads()
        .iter()
        .take(kinds.len())
        .map(|w| Arc::new(build_workload(&small(w), IrStyle::O0)))
        .collect();

    // "Process one": compile every (module, backend) pair and populate the
    // artifact store as a side effect.
    {
        let svc = disk_service(2, 8, &dir);
        for (m, &kind) in modules.iter().zip(&kinds) {
            let r = svc.compile(Request::new(ModuleRequest::new(Arc::clone(m), kind)));
            assert!(!r.timing.disk_hit, "cold run must not hit disk");
            r.module.expect("cold compile");
        }
        let stats = svc.stats();
        assert_eq!(stats.disk_misses, kinds.len() as u64);
        assert_eq!(stats.disk_stores, kinds.len() as u64);
        assert_eq!(stats.disk_hits, 0);
    } // drop: simulated process exit (memory cache and workers are gone)

    // "Process two": a fresh service over the same directory must answer
    // every request from disk — byte-identical to the one-shot compiler —
    // without invoking any backend compile path.
    let svc = disk_service(2, 8, &dir);
    for (m, &kind) in modules.iter().zip(&kinds) {
        let r = svc.compile(Request::new(ModuleRequest::new(Arc::clone(m), kind)));
        let what = format!("{kind:?} after restart");
        assert!(r.timing.disk_hit, "{what}: must be served from disk");
        assert!(!r.timing.cache_hit, "{what}: memory cache starts empty");
        let got = r.module.expect(&what);
        got.validate().unwrap();
        let want = one_shot(m, kind, &opts);
        assert_identical(&want.buf, &got.buf, &what);
        // The disk-loaded module links to the same image as a fresh compile.
        let a = tpde_core::jit::link_in_memory(&got.buf, 0x40_0000, |_| None).unwrap();
        let b = tpde_core::jit::link_in_memory(&want.buf, 0x40_0000, |_| None).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint(), "{what}");
    }
    let stats = svc.stats();
    assert_eq!(stats.disk_hits, kinds.len() as u64, "all served from disk");
    assert_eq!(stats.batched + stats.sharded, 0, "no compile path ran");
    assert!((stats.disk_hit_rate() - 1.0).abs() < 1e-9);
    assert!(stats.disk_load_p99 >= stats.disk_load_p50);

    // Re-asking within the same process now hits the promoted memory entry.
    let again = svc.compile(Request::new(ModuleRequest::new(
        Arc::clone(&modules[0]),
        kinds[0],
    )));
    assert!(again.timing.cache_hit);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_loaded_tiered_module_still_patches_and_executes() {
    let dir = temp_dir("tiered");
    let w = spec_workloads()
        .into_iter()
        .find(|w| w.name == "620.omnetpp")
        .expect("call-heavy workload");
    let w = Workload { input: 500, ..w };
    let module = Arc::new(build_workload(&w, IrStyle::O0));
    let expected = expected_result(&w);

    {
        let svc = disk_service(2, 8, &dir);
        svc.compile(Request::new(ModuleRequest::new(
            Arc::clone(&module),
            ServiceBackendKind::CopyPatchTier0,
        )))
        .module
        .expect("cold tiered compile");
    }

    // Restart; the tiered module comes back from disk with its counter and
    // call-slot tables intact, executes, and accepts call-slot patches.
    let svc = disk_service(2, 8, &dir);
    let r = svc.compile(Request::new(ModuleRequest::new(
        Arc::clone(&module),
        ServiceBackendKind::CopyPatchTier0,
    )));
    assert!(r.timing.disk_hit);
    let t0 = r.module.unwrap().buf;
    let mut image = tpde_core::jit::link_in_memory(&t0, 0x40_0000, |_| None).unwrap();
    let mut m = tpde_x64emu::Machine::new();
    m.load_image(&image);
    tpde_x64emu::register_default_hostcalls(&mut m, &image);
    assert_eq!(image.tier_func_count(), Some(module.funcs.len()));
    let main = image.symbol_addr("bench_main").unwrap();
    assert_eq!(m.call(main, &[w.input]).unwrap(), expected);

    // Patch kernel 0 into its tier-1 compile and re-run: result unchanged,
    // counter frozen — call-slot patching works on disk-loaded artifacts.
    let t1 = compile_baseline(&module, 1).unwrap().buf;
    let tier1 = tpde_core::jit::link_in_memory(&t1, 0x80_0000, |_| None).unwrap();
    m.load_image(&tier1);
    tpde_x64emu::register_default_hostcalls(&mut m, &tier1);
    let k0_tier1 = tier1.symbol_addr(&module.funcs[0].name).unwrap();
    assert!(m.apply_call_patch(&mut image, 0, k0_tier1).unwrap());
    assert_eq!(m.call(main, &[w.input]).unwrap(), expected);
    let frozen = m.mem.read(image.tier_counter_addr(0).expect("counter"), 8);
    assert_eq!(frozen, 1, "patched kernel must have left tier 0");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn teardown_drains_pipelined_requests() {
    let opts = CompileOptions::default();
    let svc = service(2, 0);
    let modules: Vec<Arc<Module>> = spec_workloads()
        .iter()
        .map(|w| Arc::new(build_workload(&small(w), IrStyle::O0)))
        .collect();
    let tickets: Vec<_> = modules
        .iter()
        .map(|m| {
            svc.submit(Request::new(ModuleRequest::new(
                Arc::clone(m),
                ServiceBackendKind::TpdeX64,
            )))
        })
        .collect();
    drop(svc); // must drain the queue, not abandon the tickets
    for (m, t) in modules.iter().zip(tickets) {
        let want = compile_x64(m, &opts).unwrap();
        let got = t.wait().module.expect("request dropped at teardown");
        assert_identical(&want.buf, &got.buf, "drained at teardown");
    }
}
