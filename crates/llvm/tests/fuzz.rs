//! Differential-fuzzing integration tests: the emulator-executed half of
//! the harness (the generator/mutator/minimizer unit tests live in
//! `tpde_llvm::fuzz`). Everything here is seeded and deterministic.

use tpde_core::codebuf::CodeBuffer;
use tpde_core::codegen::CompileOptions;
use tpde_core::jit::link_in_memory;
use tpde_llvm::fuzz::{gen_module, inject_miscompile, minimize, run_fuzz, FuzzConfig};
use tpde_llvm::ir::Module;
use tpde_x64emu::{register_default_hostcalls, Machine};

/// Runs `bench_main(input)` from a compiled buffer under an instruction
/// budget, so candidates the minimizer breaks into infinite loops fail
/// with a timeout instead of hanging the test.
fn exec_budgeted(buf: &CodeBuffer, input: u64, max_insts: u64) -> Result<u64, String> {
    let image = link_in_memory(buf, 0x40_0000, |_| None).map_err(|e| e.to_string())?;
    let mut m = Machine::new();
    m.max_insts = max_insts;
    m.load_image(&image);
    register_default_hostcalls(&mut m, &image);
    let addr = image
        .symbol_addr("bench_main")
        .ok_or_else(|| "no bench_main symbol".to_string())?;
    m.call(addr, &[input]).map_err(|e| format!("{e:?}"))
}

/// A short but complete campaign: every module through all seven backend
/// kinds (service vs one-shot byte identity, which is the whole AArch64
/// check), emulator-equal results across the four executable x86-64
/// kinds, and one verifier-rejected mutant per module.
#[test]
fn fuzz_campaign_quick() {
    let cfg = FuzzConfig {
        modules: 30,
        seed: 0xC60_2026,
        mutants_per_module: 1,
        workers: 2,
    };
    let rep = run_fuzz(&cfg, &|b, i| exec_budgeted(b, i, 100_000_000));
    assert!(rep.ok(), "{}\n{:#?}", rep.summary(), rep.failures);
    assert_eq!(rep.modules, cfg.modules);
    assert_eq!(rep.mutants, cfg.modules * cfg.mutants_per_module);
    // Every mutant was shed at admission with a typed error — no panic
    // containment, no watchdog respawn involved.
    assert_eq!(rep.rejected_invalid as usize, rep.mutants);
    assert_eq!(rep.panics_backend, 0);
    assert_eq!(rep.workers_respawned, 0);
    assert_eq!(rep.compared, cfg.modules * 7);
    assert_eq!(rep.executed, cfg.modules * 4);
}

/// An intentionally planted single-instruction miscompile (first integer
/// `Add` flipped to `Sub`, standing in for a backend bug) must be caught
/// by the differential check and shrink to a handful of instructions.
#[test]
fn injected_miscompile_is_caught_and_minimized() {
    let opts = CompileOptions::default();
    let input = 5u64;
    // "Failing" = the planted bug changes the executed result relative to
    // the O0 baseline compiling the unmodified module.
    let mut differs = |m: &Module| -> bool {
        let Some(bad) = inject_miscompile(m) else {
            return false;
        };
        let good = match tpde_llvm::compile_baseline(m, 0) {
            Ok(c) => c.buf,
            Err(_) => return false,
        };
        let buggy = match tpde_llvm::compile_x64(&bad, &opts) {
            Ok(c) => c.buf,
            Err(_) => return false,
        };
        // A tight budget: generated loops run a handful of iterations, and
        // candidates the minimizer breaks into infinite loops must time out
        // quickly rather than stall the shrink.
        match (
            exec_budgeted(&good, input, 200_000),
            exec_budgeted(&buggy, input, 200_000),
        ) {
            (Ok(a), Ok(b)) => a != b,
            _ => false,
        }
    };

    let m = gen_module(2);
    assert!(differs(&m), "seed must make the planted bug observable");
    let small = minimize(&m, &mut differs, 800);
    assert!(differs(&small), "shrinking must preserve the failure");
    assert!(
        small.inst_count() <= 10,
        "minimized to {} instructions, want <= 10:\n{}",
        small.inst_count(),
        small.dump()
    );
}
