//! Tiered-execution suite: tier-0 instrumentation (entry counters and
//! patchable call slots) must execute correctly under the x64 decoder, the
//! call-slot patch API must be atomic and idempotent, tiered compiles must
//! stay deterministic across the sequential, sharded and service pipelines,
//! and every tier-1 recompiled function must be byte-identical to a direct
//! one-shot tier-1 compile.

use std::sync::Arc;
use tpde_core::codebuf::{assert_identical, CodeBuffer, SectionKind, SymbolId};
use tpde_core::codegen::CompileOptions;
use tpde_core::jit::{link_in_memory, JitImage};
use tpde_core::service::{Request, ServiceConfig, TieringController};
use tpde_llvm::ir::Module;
use tpde_llvm::workloads::{build_workload, expected_result, spec_workloads, IrStyle, Workload};
use tpde_llvm::{
    compile_baseline, compile_copy_patch, compile_copy_patch_tiered,
    compile_copy_patch_tiered_parallel, compile_service, compile_x64_tier0,
    compile_x64_tier0_parallel, ModuleRequest, ServiceBackendKind,
};
use tpde_x64emu::{register_default_hostcalls, Machine};

/// The call-heavy workload, scaled down for test speed: 18 kernels plus
/// `bench_main`, which calls every kernel exactly once per invocation.
fn call_workload() -> (Workload, Module) {
    let base = spec_workloads()
        .into_iter()
        .find(|w| w.name == "620.omnetpp")
        .expect("call-heavy workload");
    let w = Workload { input: 500, ..base };
    let module = build_workload(&w, IrStyle::O0);
    (w, module)
}

/// Links a tier-0 buffer, loads it into a fresh machine and returns both.
fn boot(buf: &tpde_core::codebuf::CodeBuffer) -> (Machine, JitImage) {
    let image = link_in_memory(buf, 0x40_0000, |_| None).expect("link");
    let mut m = Machine::new();
    m.load_image(&image);
    register_default_hostcalls(&mut m, &image);
    (m, image)
}

/// Reads the tier-0 entry counter of function `f` from guest memory (the
/// executing machine increments its own copy of the counter table).
fn counter(m: &Machine, image: &JitImage, f: u32) -> u64 {
    m.mem.read(image.tier_counter_addr(f).expect("counter"), 8)
}

#[test]
fn tier0_copy_patch_counts_entries_and_computes_correctly() {
    let (w, module) = call_workload();
    let buf = compile_copy_patch_tiered(&module).unwrap().buf;
    let (mut m, image) = boot(&buf);
    let nfuncs = module.funcs.len();
    assert_eq!(image.tier_func_count(), Some(nfuncs));
    let main = image.symbol_addr("bench_main").unwrap();
    for run in 1..=3u64 {
        assert_eq!(m.call(main, &[w.input]).unwrap(), expected_result(&w));
        // bench_main calls every kernel once, and is entered once itself.
        for f in 0..nfuncs as u32 {
            assert_eq!(counter(&m, &image, f), run, "function {f} after {run} runs");
        }
    }
}

#[test]
fn tier0_tpde_counts_entries_and_computes_correctly() {
    let (w, module) = call_workload();
    let buf = compile_x64_tier0(&module, &CompileOptions::default())
        .unwrap()
        .buf;
    let (mut m, image) = boot(&buf);
    let nfuncs = module.funcs.len();
    assert_eq!(image.tier_func_count(), Some(nfuncs));
    let main = image.symbol_addr("bench_main").unwrap();
    for run in 1..=2u64 {
        assert_eq!(m.call(main, &[w.input]).unwrap(), expected_result(&w));
        for f in 0..nfuncs as u32 {
            assert_eq!(counter(&m, &image, f), run, "function {f} after {run} runs");
        }
    }
}

#[test]
fn untiered_compiles_carry_no_tier_tables() {
    let (_, module) = call_workload();
    for buf in [
        compile_copy_patch(&module).unwrap().buf,
        compile_baseline(&module, 1).unwrap().buf,
    ] {
        let image = link_in_memory(&buf, 0x40_0000, |_| None).unwrap();
        assert_eq!(image.tier_func_count(), None);
        assert!(image.call_slot_addr(0).is_none());
    }
}

#[test]
fn patched_slot_routes_to_tier1_and_unpatched_stubs_stay_tier0() {
    let (w, module) = call_workload();
    let expected = expected_result(&w);
    let t0 = compile_copy_patch_tiered(&module).unwrap().buf;
    let t1 = compile_baseline(&module, 1).unwrap().buf;
    let (mut m, mut image) = boot(&t0);
    let tier1 = link_in_memory(&t1, 0x80_0000, |_| None).unwrap();
    m.load_image(&tier1);
    register_default_hostcalls(&mut m, &tier1);
    let main = image.symbol_addr("bench_main").unwrap();

    // Before any patch, every slot holds its own tier-0 entry.
    for (f, func) in module.funcs.iter().enumerate() {
        assert_eq!(
            image.call_slot_target(f as u32),
            image.symbol_addr(&func.name),
            "unpatched slot of {}",
            func.name
        );
    }
    assert_eq!(m.call(main, &[w.input]).unwrap(), expected);

    // Patch kernel 0 to its tier-1 compile and run again: the result is
    // unchanged, the call decodes through the patched slot into tier-1 code
    // (which has no counter, so kernel 0's counter freezes), while the
    // unpatched stubs keep reaching the instrumented tier-0 bodies.
    let k0_tier1 = tier1.symbol_addr(&module.funcs[0].name).unwrap();
    assert!(m.apply_call_patch(&mut image, 0, k0_tier1).unwrap());
    assert_eq!(image.call_slot_target(0), Some(k0_tier1));
    assert_eq!(m.call(main, &[w.input]).unwrap(), expected);
    assert_eq!(counter(&m, &image, 0), 1, "patched kernel left tier 0");
    for f in 1..module.funcs.len() as u32 {
        assert_eq!(counter(&m, &image, f), 2, "unpatched function {f}");
    }

    // Double-patching with the same target is a no-op.
    assert!(!m.apply_call_patch(&mut image, 0, k0_tier1).unwrap());
    assert_eq!(image.call_slot_target(0), Some(k0_tier1));
    assert_eq!(m.call(main, &[w.input]).unwrap(), expected);

    // Out-of-range indices are a patch error, not a crash.
    assert!(m
        .apply_call_patch(&mut image, module.funcs.len() as u32, 0x1234)
        .is_err());
}

#[test]
fn patching_invalidates_the_image_fingerprint() {
    let (_, module) = call_workload();
    let buf = compile_copy_patch_tiered(&module).unwrap().buf;
    let mut image = link_in_memory(&buf, 0x40_0000, |_| None).unwrap();
    let original = image.fingerprint();
    let old_target = image.call_slot_target(0).unwrap();

    assert!(image.patch_call_slot(0, 0x80_1234).unwrap());
    let patched = image.fingerprint();
    assert_ne!(
        original, patched,
        "fingerprint must track the patched bytes"
    );

    // An idempotent re-patch writes nothing and keeps the fingerprint.
    assert!(!image.patch_call_slot(0, 0x80_1234).unwrap());
    assert_eq!(image.fingerprint(), patched);

    // Restoring the original target restores the original content hash.
    assert!(image.patch_call_slot(0, old_target).unwrap());
    assert_eq!(image.fingerprint(), original);
}

#[test]
fn tiered_compiles_are_deterministic_across_pipelines() {
    let (_, module) = call_workload();
    let opts = CompileOptions::default();
    let module = Arc::new(module);

    let seq_cp = compile_copy_patch_tiered(&module).unwrap().buf;
    let par_cp = compile_copy_patch_tiered_parallel(&module, 4).unwrap().buf;
    assert_identical(&seq_cp, &par_cp, "tiered copy-patch sharded");

    let seq_tpde = compile_x64_tier0(&module, &opts).unwrap().buf;
    let par_tpde = compile_x64_tier0_parallel(&module, &opts, 4).unwrap().buf;
    assert_identical(&seq_tpde, &par_tpde, "tiered TPDE sharded");

    // Service responses — batched (high threshold) and sharded (low
    // threshold) — must match the one-shot compiles byte for byte.
    for shard_threshold in [1000, 16] {
        let svc = compile_service(ServiceConfig {
            workers: 4,
            shard_threshold,
            cache_capacity: 0,
            disk_cache: None,
            ..ServiceConfig::default()
        });
        let got = svc
            .compile(Request::new(ModuleRequest::new(
                Arc::clone(&module),
                ServiceBackendKind::CopyPatchTier0,
            )))
            .module
            .unwrap()
            .buf;
        assert_identical(
            &seq_cp,
            &got,
            &format!("service tiered copy-patch threshold={shard_threshold}"),
        );
        let got = svc
            .compile(Request::new(ModuleRequest::new(
                Arc::clone(&module),
                ServiceBackendKind::TpdeX64Tier0,
            )))
            .module
            .unwrap()
            .buf;
        assert_identical(
            &seq_tpde,
            &got,
            &format!("service tiered TPDE threshold={shard_threshold}"),
        );
    }
}

/// The text bytes of a named function in a compiled buffer.
fn func_bytes<'a>(buf: &'a CodeBuffer, name: &str) -> &'a [u8] {
    let sym = buf
        .symbols()
        .iter()
        .enumerate()
        .find(|(i, s)| {
            s.section == Some(SectionKind::Text) && buf.symbol_name(SymbolId(*i as u32)) == name
        })
        .map(|(_, s)| s)
        .unwrap_or_else(|| panic!("no text symbol {name}"));
    assert!(sym.size > 0, "{name} has no recorded size");
    &buf.section_data(SectionKind::Text)[sym.offset as usize..(sym.offset + sym.size) as usize]
}

#[test]
fn tier1_recompiles_are_byte_identical_per_function() {
    let (_, module) = call_workload();
    let one_shot = compile_baseline(&module, 1).unwrap().buf;
    let module = Arc::new(module);
    let svc = compile_service(ServiceConfig {
        workers: 2,
        shard_threshold: 16,
        cache_capacity: 4,
        disk_cache: None,
        ..ServiceConfig::default()
    });
    let recompiled = svc
        .compile(Request::new(ModuleRequest::new(
            Arc::clone(&module),
            ServiceBackendKind::BaselineO1,
        )))
        .module
        .unwrap()
        .buf;
    assert_identical(&one_shot, &recompiled, "tier-1 recompile whole module");
    for func in &module.funcs {
        assert_eq!(
            func_bytes(&one_shot, &func.name),
            func_bytes(&recompiled, &func.name),
            "tier-1 bytes of {}",
            func.name
        );
    }
}

#[test]
fn controller_driven_promotion_reaches_tier1_steady_state() {
    let (w, module) = call_workload();
    let expected = expected_result(&w);
    let nfuncs = module.funcs.len();
    let t0 = compile_copy_patch_tiered(&module).unwrap().buf;
    let t1 = compile_baseline(&module, 1).unwrap().buf;

    let (mut m, mut image) = boot(&t0);
    let tier1 = link_in_memory(&t1, 0x80_0000, |_| None).unwrap();
    m.load_image(&tier1);
    register_default_hostcalls(&mut m, &tier1);
    let mut entry = image.symbol_addr("bench_main").unwrap();

    let mut controller = TieringController::new(nfuncs, 2);
    let mut iters = 0;
    while !controller.all_promoted() {
        iters += 1;
        assert!(iters <= 8, "promotion did not converge");
        assert_eq!(m.call(entry, &[w.input]).unwrap(), expected);
        let counters: Vec<u64> = (0..nfuncs as u32).map(|f| counter(&m, &image, f)).collect();
        controller
            .poll(
                |f| counters[f as usize],
                |f| {
                    let target = tier1.symbol_addr(&module.funcs[f as usize].name).unwrap();
                    m.apply_call_patch(&mut image, f, target)
                        .map(|_| ())
                        .map_err(|e| tpde_core::error::Error::Emit(e.to_string()))
                },
            )
            .unwrap();
        if controller.is_promoted(nfuncs as u32 - 1) {
            entry = tier1.symbol_addr("bench_main").unwrap();
        }
    }
    assert_eq!(controller.promotions(), nfuncs as u64);

    // Steady state runs pure tier-1 code: the same cycle count as a
    // tier-1-only machine, and no tier-0 counter moves any more.
    let before: Vec<u64> = (0..nfuncs as u32).map(|f| counter(&m, &image, f)).collect();
    m.reset_stats();
    assert_eq!(m.call(entry, &[w.input]).unwrap(), expected);
    let tiered_cycles = m.stats().cycles;
    let after: Vec<u64> = (0..nfuncs as u32).map(|f| counter(&m, &image, f)).collect();
    assert_eq!(before, after, "steady state must not touch tier-0 counters");

    let (mut t1m, t1_image) = boot(&t1);
    let t1_main = t1_image.symbol_addr("bench_main").unwrap();
    assert_eq!(t1m.call(t1_main, &[w.input]).unwrap(), expected);
    t1m.reset_stats();
    assert_eq!(t1m.call(t1_main, &[w.input]).unwrap(), expected);
    assert_eq!(
        tiered_cycles,
        t1m.stats().cycles,
        "tiered steady state must match tier-1-only execution"
    );

    // And the instrumented tier-0 machine is strictly slower.
    let (mut t0m, t0_image) = boot(&t0);
    let t0_main = t0_image.symbol_addr("bench_main").unwrap();
    assert_eq!(t0m.call(t0_main, &[w.input]).unwrap(), expected);
    t0m.reset_stats();
    assert_eq!(t0m.call(t0_main, &[w.input]).unwrap(), expected);
    assert!(
        tiered_cycles < t0m.stats().cycles,
        "tier-1 steady state must beat instrumented tier-0"
    );
}
