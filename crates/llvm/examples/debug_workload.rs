//! Small debugging helper: compares back-end results against the reference
//! for single kernels at small iteration counts.

use tpde_core::codegen::CompileOptions;
use tpde_core::jit::link_in_memory;
use tpde_llvm::workloads::{build_workload, expected_result, spec_workloads, IrStyle, Workload};
use tpde_llvm::{compile_baseline, compile_copy_patch, compile_x64};
use tpde_x64emu::run_function;

fn run_buf(buf: &tpde_core::codebuf::CodeBuffer, func: &str, args: &[u64]) -> u64 {
    let image = link_in_memory(buf, 0x40_0000, |_| None).unwrap();
    match run_function(&image, func, args) {
        Ok((ret, _)) => ret,
        Err(e) => {
            println!("    execution error: {e}");
            u64::MAX
        }
    }
}

fn main() {
    for n in [0u64, 1, 2, 3, 10, 100] {
        for idx in [6usize, 0, 2, 3] {
            let w = Workload {
                input: n,
                funcs: 1,
                ..spec_workloads()[idx].clone()
            };
            for style in [IrStyle::O0, IrStyle::O1] {
                let module = build_workload(&w, style);
                let expected = expected_result(&w);
                let tpde = compile_x64(&module, &CompileOptions::default()).unwrap();
                let t = run_buf(&tpde.buf, "bench_main", &[w.input]);
                let cp = compile_copy_patch(&module).unwrap();
                let c = run_buf(&cp.buf, "bench_main", &[w.input]);
                let base = compile_baseline(&module, 0).unwrap();
                let b = run_buf(&base.buf, "bench_main", &[w.input]);
                let ok = if t == expected && c == expected && b == expected {
                    "ok"
                } else {
                    "MISMATCH"
                };
                println!(
                    "{:16} n={:<4} {:?}: expected={:<22} tpde={:<22} cp={:<22} base={:<22} {}",
                    w.name, n, style, expected, t, c, b, ok
                );
            }
        }
    }
}
