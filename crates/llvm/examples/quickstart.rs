//! Quickstart: build a tiny LLVM-IR-like function, compile it with the TPDE
//! back-end for x86-64 and AArch64, and execute the x86-64 code in the
//! emulator.
//!
//! Run with: `cargo run -p tpde-llvm --example quickstart`

use tpde_core::codegen::CompileOptions;
use tpde_core::jit::link_in_memory;
use tpde_llvm::ir::{BinOp, FunctionBuilder, ICmp, Module, Type};
use tpde_llvm::{compile_a64, compile_x64};
use tpde_x64emu::run_function;

fn main() {
    // fib(n): iterative Fibonacci
    let mut m = Module::new();
    let mut b = FunctionBuilder::new("fib", &[Type::I64], Type::I64);
    let entry = b.current_block();
    let head = b.create_block();
    let body = b.create_block();
    let exit = b.create_block();
    let zero = b.iconst(Type::I64, 0);
    let one = b.iconst(Type::I64, 1);
    b.br(head);
    b.switch_to(head);
    let a = b.phi(Type::I64);
    let c = b.phi(Type::I64);
    let i = b.phi(Type::I64);
    let done = b.icmp(ICmp::Eq, Type::I64, i, b.arg(0));
    b.cond_br(done, exit, body);
    b.switch_to(body);
    let next = b.bin(BinOp::Add, Type::I64, a, c);
    let i1 = b.bin(BinOp::Add, Type::I64, i, one);
    b.br(head);
    let bend = b.current_block();
    b.phi_add_incoming(a, entry, zero);
    b.phi_add_incoming(a, bend, c);
    b.phi_add_incoming(c, entry, one);
    b.phi_add_incoming(c, bend, next);
    b.phi_add_incoming(i, entry, zero);
    b.phi_add_incoming(i, bend, i1);
    b.switch_to(exit);
    b.ret(Some(a));
    m.add_function(b.build());

    // Compile with the TPDE single-pass back-end.
    let x64 = compile_x64(&m, &CompileOptions::default()).expect("compile x86-64");
    let a64 = compile_a64(&m, &CompileOptions::default()).expect("compile aarch64");
    println!(
        "x86-64 code: {} bytes, AArch64 code: {} bytes",
        x64.text_size(),
        a64.text_size()
    );
    println!(
        "compiled {} instructions with {} spills and {} reloads",
        x64.stats.insts, x64.stats.spills, x64.stats.reloads
    );

    // JIT-map and run on the emulator.
    let image = link_in_memory(&x64.buf, 0x40_0000, |_| None).expect("link");
    for n in [0u64, 1, 10, 50, 90] {
        let (result, stats) = run_function(&image, "fib", &[n]).expect("run");
        println!(
            "fib({n}) = {result}   ({} emulated instructions)",
            stats.insts
        );
    }
}
