//! Compares the three back-ends (TPDE, LLVM-O0-like baseline, copy-and-patch)
//! on one SPEC-like workload: compile time, code size and emulated run time.
//!
//! Run with: `cargo run --release -p tpde-llvm --example backend_comparison`

use std::time::Instant;
use tpde_core::codegen::CompileOptions;
use tpde_core::jit::link_in_memory;
use tpde_llvm::workloads::{build_workload, expected_result, spec_workloads, IrStyle, Workload};
use tpde_llvm::{compile_baseline, compile_copy_patch, compile_x64};
use tpde_x64emu::run_function;

fn main() {
    let w = Workload {
        input: 20_000,
        ..spec_workloads()[6].clone()
    }; // 631.deepsjeng-like
    let module = build_workload(&w, IrStyle::O0);
    let expected = expected_result(&w);
    println!(
        "workload {} ({} IR instructions)",
        w.name,
        module.inst_count()
    );

    let report = |name: &str, buf: &tpde_core::codebuf::CodeBuffer, compile_time| {
        let image = link_in_memory(buf, 0x40_0000, |_| None).unwrap();
        let (ret, stats) = run_function(&image, "bench_main", &[w.input]).unwrap();
        println!(
            "{:<14} compile {:>8.3} ms   text {:>7} B   cycles {:>12}   correct: {}",
            name,
            1000.0 * f64::from_bits(compile_time),
            buf.section_size(tpde_core::codebuf::SectionKind::Text),
            stats.cycles,
            ret == expected
        );
    };

    let t = Instant::now();
    let tpde = compile_x64(&module, &CompileOptions::default()).unwrap();
    report("TPDE", &tpde.buf, t.elapsed().as_secs_f64().to_bits());

    let t = Instant::now();
    let base = compile_baseline(&module, 0).unwrap();
    report(
        "LLVM-O0-like",
        &base.buf,
        t.elapsed().as_secs_f64().to_bits(),
    );

    let t = Instant::now();
    let cp = compile_copy_patch(&module).unwrap();
    report("Copy-Patch", &cp.buf, t.elapsed().as_secs_f64().to_bits());
}
