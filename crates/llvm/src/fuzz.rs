//! Differential fuzzing over randomly generated IR modules.
//!
//! This module is the adversarial half of the correctness backstop (the
//! constructive half is [`tpde_core::verify`]): a seeded, deterministic
//! random-IR generator whose output is fed to every
//! [`ServiceBackendKind`], a mutation mode that corrupts valid modules to
//! drive the verifier's rejection classes, and a greedy test-case
//! minimizer that shrinks a failing module while a caller-supplied
//! predicate keeps failing.
//!
//! The split between this crate and its callers is deliberate:
//! everything here is *execution-agnostic* (generation, mutation, byte
//! identity between the service and the one-shot entry points,
//! shrinking against an opaque predicate). Actually *running* the
//! compiled x86-64 code requires the emulator crate, which depends on
//! this one for its tests — so the execution-differential harness is
//! injected as a closure ([`ExecFn`]) by the integration tests and the
//! `figures --fuzz` scenario.
//!
//! Reproducing a failure is always two numbers: the run seed selects the
//! per-module seeds, and every [`FuzzFailure`] records the per-module
//! seed so `gen_module(seed)` (plus the recorded mutation seed, if any)
//! rebuilds the exact input. The IR dump of the (minimized) module is
//! embedded in the failure for offline triage.

use std::sync::Arc;

use tpde_core::codebuf::{CodeBuffer, SectionKind};
use tpde_core::codegen::CompileOptions;
use tpde_core::error::Error;
use tpde_core::rng::Xoshiro256;
use tpde_core::service::{Request, ServiceConfig};
use tpde_core::verify::{Verifier, VerifyError};

use crate::adapter::LlvmAdapter;
use crate::backend::{compile_service, ModuleRequest, ServiceBackendKind};
use crate::ir::{
    BinOp, FBinOp, FuncId, Function, FunctionBuilder, ICmp, Inst, Module, ShiftKind, Type, Value,
    ValueDef,
};

/// Executes the `bench_main` symbol of a compiled buffer with one `u64`
/// argument and returns the result, or a human-readable error. Supplied
/// by callers that can link against the emulator; see the module docs.
pub type ExecFn<'a> = &'a dyn Fn(&CodeBuffer, u64) -> std::result::Result<u64, String>;

/// All service backend kinds, in a fixed order.
pub const ALL_KINDS: [ServiceBackendKind; 7] = [
    ServiceBackendKind::TpdeX64,
    ServiceBackendKind::TpdeA64,
    ServiceBackendKind::BaselineO0,
    ServiceBackendKind::BaselineO1,
    ServiceBackendKind::CopyPatch,
    ServiceBackendKind::TpdeX64Tier0,
    ServiceBackendKind::CopyPatchTier0,
];

/// The x86-64 kinds whose output the emulator can execute directly (the
/// tier-0 variants carry patchable slots and counters and are checked by
/// byte identity only).
pub const EXEC_KINDS: [ServiceBackendKind; 4] = [
    ServiceBackendKind::TpdeX64,
    ServiceBackendKind::BaselineO0,
    ServiceBackendKind::BaselineO1,
    ServiceBackendKind::CopyPatch,
];

/// Non-panicking twin of [`tpde_core::codebuf::assert_identical`]:
/// `true` iff every section of `a` and `b` is byte-identical.
pub fn buffers_equal(a: &CodeBuffer, b: &CodeBuffer) -> bool {
    SectionKind::ALL
        .iter()
        .all(|&k| a.section_data(k) == b.section_data(k))
}

/// Compiles `m` with the one-shot entry point matching `kind` (the
/// reference the service output must be byte-identical to).
pub fn one_shot_buf(m: &Module, kind: ServiceBackendKind) -> tpde_core::error::Result<CodeBuffer> {
    let opts = CompileOptions::default();
    Ok(match kind {
        ServiceBackendKind::TpdeX64 => crate::backend::compile_x64(m, &opts)?.buf,
        ServiceBackendKind::TpdeA64 => crate::backend::compile_a64(m, &opts)?.buf,
        ServiceBackendKind::BaselineO0 => crate::baselines::compile_baseline(m, 0)?.buf,
        ServiceBackendKind::BaselineO1 => crate::baselines::compile_baseline(m, 1)?.buf,
        ServiceBackendKind::CopyPatch => crate::baselines::compile_copy_patch(m)?.buf,
        ServiceBackendKind::TpdeX64Tier0 => crate::backend::compile_x64_tier0(m, &opts)?.buf,
        ServiceBackendKind::CopyPatchTier0 => crate::baselines::compile_copy_patch_tiered(m)?.buf,
    })
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

/// Builds a random, well-formed, deterministic module from a seed.
///
/// The module has 1–3 internal "kernel" functions (arity 0–4, all-`i64`
/// signatures) plus an exported `bench_main(i64) -> i64` that calls every
/// kernel and folds the results. Generation follows a strict dominance
/// discipline (values cross control flow only through phis, memory is
/// loaded only from offsets unconditionally stored earlier, divisors are
/// forced odd, shift amounts are masked constants, loops have constant
/// trip counts), so the result both passes [`tpde_core::verify`] and
/// computes the same value on every correct backend.
pub fn gen_module(seed: u64) -> Module {
    let mut rng = Xoshiro256::new(seed);
    let mut m = Module::new();
    let nkernels = 1 + rng.below(3) as usize;
    let mut kernels: Vec<(FuncId, usize)> = Vec::new();
    for k in 0..nkernels {
        let arity = rng.below(5) as usize;
        let f = gen_kernel(&mut rng, &format!("kernel{k}"), arity, &kernels);
        let id = m.add_function(f);
        kernels.push((id, arity));
    }
    m.add_function(gen_bench_main(&mut rng, &kernels));
    m
}

/// Generation context for one function body.
struct GenCtx {
    /// `i64` values legal to use from the current insertion point onwards
    /// (defined in a block that dominates everything generated later).
    pool: Vec<Value>,
    /// The 64-byte scratch slot address.
    slot: Value,
    /// Slot offsets that have been stored unconditionally.
    stored: Vec<i32>,
}

impl GenCtx {
    fn pick(&self, rng: &mut Xoshiro256) -> Value {
        self.pool[rng.below(self.pool.len() as u64) as usize]
    }
}

const BIN_OPS: [BinOp; 6] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Mul,
];
const SHIFT_KINDS: [ShiftKind; 3] = [ShiftKind::Shl, ShiftKind::LShr, ShiftKind::AShr];
const ICMP_CCS: [ICmp; 10] = [
    ICmp::Eq,
    ICmp::Ne,
    ICmp::Slt,
    ICmp::Sle,
    ICmp::Sgt,
    ICmp::Sge,
    ICmp::Ult,
    ICmp::Ule,
    ICmp::Ugt,
    ICmp::Uge,
];

/// Emits one random straight-line op and returns its `i64` result.
/// `register_stores` is false inside conditional arms and loop bodies,
/// where a store must not unlock later loads (the later load would read
/// memory that is only written on one path — frame garbage on the other,
/// which legitimately differs between backends).
fn rand_op(
    b: &mut FunctionBuilder,
    rng: &mut Xoshiro256,
    cx: &mut GenCtx,
    callees: &[(FuncId, usize)],
    register_stores: bool,
) -> Value {
    match rng.below(8) {
        0 => {
            let op = *rng.pick(&BIN_OPS);
            let (l, r) = (cx.pick(rng), cx.pick(rng));
            b.bin(op, Type::I64, l, r)
        }
        1 => {
            let kind = *rng.pick(&SHIFT_KINDS);
            let amt = b.iconst(Type::I64, rng.below(64) as i64);
            let l = cx.pick(rng);
            b.shift(kind, Type::I64, l, amt)
        }
        2 => {
            // Unsigned div/rem with a forced-odd divisor: no div-by-zero,
            // no INT_MIN / -1 overflow.
            let one = b.iconst(Type::I64, 1);
            let d = cx.pick(rng);
            let rhs = b.bin(BinOp::Or, Type::I64, d, one);
            let l = cx.pick(rng);
            b.div(false, rng.chance(1, 2), Type::I64, l, rhs)
        }
        3 => {
            let cc = *rng.pick(&ICMP_CCS);
            let (l, r) = (cx.pick(rng), cx.pick(rng));
            let c = b.icmp(cc, Type::I64, l, r);
            let (t, f) = (cx.pick(rng), cx.pick(rng));
            b.select(Type::I64, c, t, f)
        }
        4 => {
            // Store-then-load through the scratch slot, optionally via a GEP
            // so address arithmetic is exercised without leaking the (frame-
            // layout-dependent) address value into the result.
            let off = (rng.below(8) * 8) as i32;
            let v = cx.pick(rng);
            if rng.chance(1, 2) {
                let addr = b.gep(cx.slot, None, 0, off as i64);
                b.store(Type::I64, addr, 0, v);
                if register_stores {
                    cx.stored.push(off);
                }
                b.load(Type::I64, addr, 0)
            } else {
                b.store(Type::I64, cx.slot, off, v);
                if register_stores {
                    cx.stored.push(off);
                }
                b.load(Type::I64, cx.slot, off)
            }
        }
        5 => {
            // i64 -> i32 -> i64 narrow/widen chain; wrap-around is
            // deterministic so any sign choice is fine.
            let v = cx.pick(rng);
            let t = b.cast(false, Type::I64, Type::I32, v);
            let op = *rng.pick(&BIN_OPS);
            let w = cx.pick(rng);
            let t2 = b.cast(false, Type::I64, Type::I32, w);
            let r = b.bin(op, Type::I32, t, t2);
            b.cast(rng.chance(1, 2), Type::I32, Type::I64, r)
        }
        6 => {
            // Bounded FP round-trip: mask to 16 bits so every intermediate
            // is exact in f64 and the fp->int result is well defined.
            let mask = b.iconst(Type::I64, 0xFFFF);
            let v = cx.pick(rng);
            let small = b.bin(BinOp::And, Type::I64, v, mask);
            let f = b.int_to_fp(Type::I64, Type::F64, small);
            let op = *rng.pick(&[FBinOp::Add, FBinOp::Sub, FBinOp::Mul]);
            let k = b.fconst((1 + rng.below(7)) as f64 * 0.5);
            let f2 = b.fbin(op, Type::F64, f, k);
            b.fp_to_int(Type::F64, Type::I64, f2)
        }
        _ => {
            if !callees.is_empty() && rng.chance(1, 2) {
                let (id, arity) = *rng.pick(callees);
                let args = (0..arity).map(|_| cx.pick(rng)).collect();
                b.call(id, Type::I64, args)
            } else if !cx.stored.is_empty() {
                let off = *rng.pick(&cx.stored);
                b.load(Type::I64, cx.slot, off)
            } else {
                let (l, r) = (cx.pick(rng), cx.pick(rng));
                b.bin(BinOp::Add, Type::I64, l, r)
            }
        }
    }
}

/// Emits a run of 2–5 straight-line ops into the current block.
fn straight_segment(
    b: &mut FunctionBuilder,
    rng: &mut Xoshiro256,
    cx: &mut GenCtx,
    callees: &[(FuncId, usize)],
) {
    for _ in 0..2 + rng.below(4) {
        let v = rand_op(b, rng, cx, callees, true);
        cx.pool.push(v);
    }
}

/// Emits an if/else diamond whose arms compute independent values merged
/// by a phi at the join; only the phi result joins the pool.
fn diamond_segment(
    b: &mut FunctionBuilder,
    rng: &mut Xoshiro256,
    cx: &mut GenCtx,
    callees: &[(FuncId, usize)],
) {
    let cc = *rng.pick(&ICMP_CCS);
    let (l, r) = (cx.pick(rng), cx.pick(rng));
    let cond = b.icmp(cc, Type::I64, l, r);
    let tb = b.create_block();
    let eb = b.create_block();
    let jb = b.create_block();
    b.cond_br(cond, tb, eb);
    b.switch_to(tb);
    let tv = rand_op(b, rng, cx, callees, false);
    b.br(jb);
    b.switch_to(eb);
    let ev = rand_op(b, rng, cx, callees, false);
    b.br(jb);
    b.switch_to(jb);
    let p = b.phi(Type::I64);
    b.phi_add_incoming(p, tb, tv);
    b.phi_add_incoming(p, eb, ev);
    cx.pool.push(p);
}

/// Emits a counted loop (constant trip count 2–8) accumulating into a
/// phi; the accumulator phi joins the pool after the exit (the header
/// dominates the exit, so that is legal everywhere downstream).
fn loop_segment(b: &mut FunctionBuilder, rng: &mut Xoshiro256, cx: &mut GenCtx) {
    let trip = b.iconst(Type::I64, (2 + rng.below(7)) as i64);
    let zero = b.iconst(Type::I64, 0);
    let one = b.iconst(Type::I64, 1);
    let init = cx.pick(rng);
    let pre = b.current_block();
    let hdr = b.create_block();
    let body = b.create_block();
    let exit = b.create_block();
    b.br(hdr);
    b.switch_to(hdr);
    let i = b.phi(Type::I64);
    let acc = b.phi(Type::I64);
    b.phi_add_incoming(i, pre, zero);
    b.phi_add_incoming(acc, pre, init);
    let c = b.icmp(ICmp::Ult, Type::I64, i, trip);
    b.cond_br(c, body, exit);
    b.switch_to(body);
    // The body may only use loop-invariant pool values plus i/acc; its
    // temporaries never escape except through the back-edge phis.
    let mixer = cx.pick(rng);
    let op = *rng.pick(&BIN_OPS);
    let mut a = b.bin(op, Type::I64, acc, mixer);
    if rng.chance(1, 2) {
        let op2 = *rng.pick(&[BinOp::Add, BinOp::Xor]);
        a = b.bin(op2, Type::I64, a, i);
    }
    let inext = b.bin(BinOp::Add, Type::I64, i, one);
    b.phi_add_incoming(i, body, inext);
    b.phi_add_incoming(acc, body, a);
    b.br(hdr);
    b.switch_to(exit);
    cx.pool.push(acc);
}

fn gen_kernel(
    rng: &mut Xoshiro256,
    name: &str,
    arity: usize,
    callees: &[(FuncId, usize)],
) -> Function {
    let params = vec![Type::I64; arity];
    let mut b = FunctionBuilder::new(name, &params, Type::I64);
    b.set_internal();
    let mut pool: Vec<Value> = (0..arity).map(|i| b.arg(i)).collect();
    for _ in 0..2 {
        pool.push(b.iconst(Type::I64, (rng.next_u64() & 0xFFFF) as i64));
    }
    let slot = b.alloca(64, 8);
    let mut cx = GenCtx {
        pool,
        slot,
        stored: Vec::new(),
    };
    for _ in 0..1 + rng.below(3) {
        match rng.below(3) {
            0 => straight_segment(&mut b, rng, &mut cx, callees),
            1 => diamond_segment(&mut b, rng, &mut cx, callees),
            _ => loop_segment(&mut b, rng, &mut cx),
        }
    }
    let mut r = *cx.pool.last().unwrap();
    let other = cx.pick(rng);
    r = b.bin(BinOp::Xor, Type::I64, r, other);
    b.ret(Some(r));
    b.build()
}

fn gen_bench_main(rng: &mut Xoshiro256, kernels: &[(FuncId, usize)]) -> Function {
    let mut b = FunctionBuilder::new("bench_main", &[Type::I64], Type::I64);
    let x = b.arg(0);
    let salt = b.iconst(Type::I64, (rng.next_u64() & 0xFFF) as i64);
    // A guaranteed integer Add so miscompile injection always has a target
    // even after heavy minimization.
    let mut acc = b.bin(BinOp::Add, Type::I64, x, salt);
    for &(id, arity) in kernels {
        let args = (0..arity)
            .map(|a| if a % 2 == 0 { x } else { acc })
            .collect();
        let r = b.call(id, Type::I64, args);
        acc = b.bin(BinOp::Xor, Type::I64, acc, r);
    }
    b.ret(Some(acc));
    b.build()
}

// ---------------------------------------------------------------------------
// Mutation
// ---------------------------------------------------------------------------

/// A class of IR corruption applied by [`mutate_module`], chosen to map
/// 1:1 onto a [`VerifyError`] rejection class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Corruption {
    /// An instruction operand rewritten to a value id past the table.
    OperandOutOfRange,
    /// The terminator of one block removed.
    DroppedTerminator,
    /// A call handed one argument too many.
    CallArityMismatch,
    /// An early operand rewritten to a value defined later in layout.
    UseBeforeDef,
}

/// `true` iff the verifier rejected a [`Corruption`] with the matching
/// error class.
pub fn corruption_matches(c: Corruption, e: &VerifyError) -> bool {
    matches!(
        (c, e),
        (
            Corruption::OperandOutOfRange,
            VerifyError::ValueOutOfRange { .. }
        ) | (
            Corruption::DroppedTerminator,
            VerifyError::MissingTerminator { .. }
        ) | (
            Corruption::CallArityMismatch,
            VerifyError::CallArityMismatch { .. }
        ) | (Corruption::UseBeforeDef, VerifyError::UseBeforeDef { .. })
    )
}

/// Corrupts a well-formed module in one [`Corruption`] class chosen by
/// `seed`, returning the mutant and the class the verifier must report.
/// Falls back through the classes if the preferred one has no applicable
/// site (e.g. no call instruction in the module).
pub fn mutate_module(m: &Module, seed: u64) -> (Module, Corruption) {
    let mut rng = Xoshiro256::new(seed);
    let start = rng.below(4) as usize;
    for i in 0..4 {
        let c = [
            Corruption::OperandOutOfRange,
            Corruption::DroppedTerminator,
            Corruption::CallArityMismatch,
            Corruption::UseBeforeDef,
        ][(start + i) % 4];
        let mut out = m.clone();
        if apply_corruption(&mut out, &mut rng, c) {
            return (out, c);
        }
    }
    unreachable!("a generated module always has a corruptible site");
}

fn apply_corruption(m: &mut Module, rng: &mut Xoshiro256, c: Corruption) -> bool {
    let bodies: Vec<usize> = (0..m.funcs.len())
        .filter(|&i| !m.funcs[i].is_decl)
        .collect();
    if bodies.is_empty() {
        return false;
    }
    match c {
        Corruption::OperandOutOfRange => {
            let fi = *rng.pick(&bodies);
            let f = &mut m.funcs[fi];
            let bogus = Value(f.values.len() as u32 + 7);
            for blk in &mut f.blocks {
                for inst in &mut blk.insts {
                    let mut done = false;
                    inst.visit_operands_mut(|v| {
                        if !done {
                            *v = bogus;
                            done = true;
                        }
                    });
                    if done {
                        return true;
                    }
                }
            }
            false
        }
        Corruption::DroppedTerminator => {
            let fi = *rng.pick(&bodies);
            let f = &mut m.funcs[fi];
            let bi = rng.below(f.blocks.len() as u64) as usize;
            f.blocks[bi].insts.pop().is_some()
        }
        Corruption::CallArityMismatch => {
            for &fi in &bodies {
                let f = &mut m.funcs[fi];
                let has_values = !f.values.is_empty();
                for blk in &mut f.blocks {
                    for inst in &mut blk.insts {
                        if let Inst::Call { args, .. } = inst {
                            let extra = args
                                .first()
                                .copied()
                                .or_else(|| has_values.then_some(Value(0)));
                            if let Some(v) = extra {
                                args.push(v);
                                return true;
                            }
                        }
                    }
                }
            }
            false
        }
        Corruption::UseBeforeDef => {
            for &fi in &bodies {
                let f = &mut m.funcs[fi];
                // A definition from a non-entry block (always after the
                // entry in layout), or failing that a later entry-block
                // instruction.
                let mut target: Option<(usize, usize, Value)> = None;
                for (bi, blk) in f.blocks.iter().enumerate() {
                    for (ii, inst) in blk.insts.iter().enumerate() {
                        if let Some(r) = inst.result() {
                            target = Some((bi, ii, r));
                        }
                    }
                }
                let Some((dbi, dii, res)) = target else {
                    continue;
                };
                // First entry-block instruction with operands strictly
                // before the definition site.
                for (ii, inst) in f.blocks[0].insts.iter_mut().enumerate() {
                    if dbi == 0 && ii >= dii {
                        break;
                    }
                    let mut done = false;
                    inst.visit_operands_mut(|v| {
                        if !done {
                            *v = res;
                            done = true;
                        }
                    });
                    if done {
                        return true;
                    }
                }
            }
            false
        }
    }
}

// ---------------------------------------------------------------------------
// Minimizer
// ---------------------------------------------------------------------------

/// Greedily shrinks `m` while `fails` keeps returning `true`, evaluating
/// at most `max_evals` candidates.
///
/// The predicate fully defines "interesting": for a differential failure
/// it is typically "some pair of backends disagrees on the result";
/// hand it a low emulator instruction budget so candidates that loop
/// forever count as not-failing instead of hanging the shrink. Reduction
/// passes, repeated to a fixpoint: drop uncalled functions (with
/// [`FuncId`] remapping), collapse conditional branches and prune
/// unreachable blocks, delete instructions (rewriting their result to
/// constant zero), and delete phis the same way. Candidates stay
/// verifier-clean by construction, but shrinking — like any fuzzing
/// reducer — may change program semantics; only the predicate is
/// preserved.
pub fn minimize(m: &Module, fails: &mut dyn FnMut(&Module) -> bool, max_evals: usize) -> Module {
    let mut cur = m.clone();
    let mut evals = 0usize;
    loop {
        let mut changed = false;

        // Pass A: drop functions nothing calls, highest index first.
        let mut fi = cur.funcs.len();
        while fi > 0 {
            fi -= 1;
            if evals >= max_evals {
                return cur;
            }
            if let Some(cand) = remove_func(&cur, fi) {
                evals += 1;
                if fails(&cand) {
                    cur = cand;
                    changed = true;
                }
            }
        }

        // Pass B: collapse conditional branches to one arm.
        'outer: for fi in 0..cur.funcs.len() {
            for bi in 0..cur.funcs[fi].blocks.len() {
                let (t, e) = match cur.funcs[fi].blocks[bi].insts.last() {
                    Some(&Inst::CondBr {
                        if_true, if_false, ..
                    }) => (if_true, if_false),
                    _ => continue,
                };
                for arm in [t, e] {
                    if evals >= max_evals {
                        return cur;
                    }
                    let mut cand = cur.clone();
                    *cand.funcs[fi].blocks[bi].insts.last_mut().unwrap() = Inst::Br { target: arm };
                    prune_unreachable(&mut cand.funcs[fi]);
                    evals += 1;
                    if fails(&cand) {
                        cur = cand;
                        changed = true;
                        continue 'outer; // block indices shifted; restart func scan
                    }
                }
            }
        }

        // Pass C: delete non-terminator instructions; a deleted result
        // becomes the constant 0 of its type so uses stay well-formed.
        for fi in 0..cur.funcs.len() {
            for bi in 0..cur.funcs[fi].blocks.len() {
                let mut ii = 0;
                while ii + 1 < cur.funcs[fi].blocks[bi].insts.len() {
                    if evals >= max_evals {
                        return cur;
                    }
                    let mut cand = cur.clone();
                    let removed = cand.funcs[fi].blocks[bi].insts.remove(ii);
                    if let Some(r) = removed.result() {
                        cand.funcs[fi].values[r.0 as usize].def = ValueDef::Const(0);
                    }
                    evals += 1;
                    if fails(&cand) {
                        cur = cand;
                        changed = true;
                    } else {
                        ii += 1;
                    }
                }
            }
        }

        // Pass D: delete phis the same way.
        for fi in 0..cur.funcs.len() {
            for bi in 0..cur.funcs[fi].blocks.len() {
                let mut pi = 0;
                while pi < cur.funcs[fi].blocks[bi].phis.len() {
                    if evals >= max_evals {
                        return cur;
                    }
                    let mut cand = cur.clone();
                    let phi = cand.funcs[fi].blocks[bi].phis.remove(pi);
                    cand.funcs[fi].values[phi.res.0 as usize].def = ValueDef::Const(0);
                    evals += 1;
                    if fails(&cand) {
                        cur = cand;
                        changed = true;
                    } else {
                        pi += 1;
                    }
                }
            }
        }

        if !changed {
            return cur;
        }
    }
}

/// Rebuilds `m` without function `idx`, remapping call targets; `None`
/// if some other function still calls it.
fn remove_func(m: &Module, idx: usize) -> Option<Module> {
    for (fi, f) in m.funcs.iter().enumerate() {
        if fi == idx {
            continue;
        }
        for blk in &f.blocks {
            for inst in &blk.insts {
                if let Inst::Call { callee, .. } = inst {
                    if callee.0 as usize == idx {
                        return None;
                    }
                }
            }
        }
    }
    let mut out = Module::new();
    for (fi, f) in m.funcs.iter().enumerate() {
        if fi == idx {
            continue;
        }
        let mut nf = f.clone();
        for blk in &mut nf.blocks {
            for inst in &mut blk.insts {
                if let Inst::Call { callee, .. } = inst {
                    if callee.0 as usize > idx {
                        callee.0 -= 1;
                    }
                }
            }
        }
        out.add_function(nf);
    }
    Some(out)
}

/// Removes blocks unreachable from the entry, remapping block ids in
/// branches and phi incomings. Phis left with no incoming edge become
/// constant zero.
fn prune_unreachable(f: &mut Function) {
    let n = f.blocks.len();
    let mut reach = vec![false; n];
    let mut stack = vec![0usize];
    reach[0] = true;
    while let Some(b) = stack.pop() {
        if let Some(t) = f.blocks[b].insts.last() {
            t.visit_successors(|s| {
                if !reach[s.0 as usize] {
                    reach[s.0 as usize] = true;
                    stack.push(s.0 as usize);
                }
            });
        }
    }
    if reach.iter().all(|&r| r) {
        return;
    }
    let mut map = vec![u32::MAX; n];
    let mut blocks = Vec::new();
    for i in 0..n {
        if reach[i] {
            map[i] = blocks.len() as u32;
            blocks.push(f.blocks[i].clone());
        }
    }
    let mut orphaned = Vec::new();
    for blk in &mut blocks {
        blk.phis.retain_mut(|p| {
            p.incoming.retain(|(b, _)| reach[b.0 as usize]);
            for (b, _) in &mut p.incoming {
                b.0 = map[b.0 as usize];
            }
            if p.incoming.is_empty() {
                orphaned.push(p.res);
                false
            } else {
                true
            }
        });
        if let Some(t) = blk.insts.last_mut() {
            match t {
                Inst::Br { target } => target.0 = map[target.0 as usize],
                Inst::CondBr {
                    if_true, if_false, ..
                } => {
                    if_true.0 = map[if_true.0 as usize];
                    if_false.0 = map[if_false.0 as usize];
                }
                _ => {}
            }
        }
    }
    for v in orphaned {
        f.values[v.0 as usize].def = ValueDef::Const(0);
    }
    f.blocks = blocks;
}

/// Flips the first integer `Add` in the module to `Sub` — a stand-in for
/// a single-instruction backend bug, used to prove the harness catches
/// and minimizes real miscompiles. `None` if the module has no `Add`.
pub fn inject_miscompile(m: &Module) -> Option<Module> {
    let mut out = m.clone();
    for f in &mut out.funcs {
        for blk in &mut f.blocks {
            for inst in &mut blk.insts {
                if let Inst::Bin { op, .. } = inst {
                    if *op == BinOp::Add {
                        *op = BinOp::Sub;
                        return Some(out);
                    }
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// Configuration for one [`run_fuzz`] campaign.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// Number of well-formed modules to generate and cross-check.
    pub modules: usize,
    /// Campaign seed; per-module and per-mutant seeds derive from it.
    pub seed: u64,
    /// Invalid mutants derived from each module.
    pub mutants_per_module: usize,
    /// Worker threads of the embedded compile service.
    pub workers: usize,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            modules: 50,
            seed: 0x5EED_CAFE,
            mutants_per_module: 1,
            workers: 2,
        }
    }
}

/// One failure found by [`run_fuzz`]; `seed` + (for mutants) the seed
/// recorded in `detail` reproduce the input via [`gen_module`] /
/// [`mutate_module`].
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// The per-module generator seed.
    pub seed: u64,
    /// Failure class, e.g. `"result mismatch"`.
    pub kind: String,
    /// Human-readable specifics (backend kind, values, mutation seed).
    pub detail: String,
    /// IR dump of the offending module.
    pub ir: String,
}

/// Aggregate result of a [`run_fuzz`] campaign.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Well-formed modules generated.
    pub modules: usize,
    /// Total instructions across generated modules.
    pub total_insts: usize,
    /// Invalid mutants generated.
    pub mutants: usize,
    /// Emulator executions performed.
    pub executed: usize,
    /// Service-vs-one-shot byte-identity comparisons performed.
    pub compared: usize,
    /// Service admission rejections (must equal `mutants` on a clean run).
    pub rejected_invalid: u64,
    /// Backend panics on verified input (must be 0).
    pub panics_backend: u64,
    /// Watchdog respawns (must be 0).
    pub workers_respawned: u64,
    /// Everything that went wrong; empty on a clean run.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// `true` iff the campaign found nothing.
    pub fn ok(&self) -> bool {
        self.failures.is_empty() && self.panics_backend == 0 && self.workers_respawned == 0
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} modules ({} insts), {} mutants rejected, {} execs, {} byte comparisons, {} failures",
            self.modules, self.total_insts, self.mutants, self.executed, self.compared,
            self.failures.len()
        )
    }
}

/// Runs a differential fuzzing campaign.
///
/// Every generated module must pass the verifier, compile byte-identically
/// through the service and the one-shot entry point for **all seven**
/// backend kinds (this is the whole AArch64 check — no AArch64 emulator
/// exists), and produce the same executed result for every kind in
/// [`EXEC_KINDS`]. Every mutant must be rejected by the verifier with the
/// matching [`VerifyError`] class and by the service with
/// [`Error::InvalidIr`], without a panic or worker respawn.
pub fn run_fuzz(cfg: &FuzzConfig, exec: ExecFn<'_>) -> FuzzReport {
    let svc = compile_service(ServiceConfig {
        workers: cfg.workers.max(1),
        cache_capacity: 32,
        ..ServiceConfig::default()
    });
    let mut rng = Xoshiro256::new(cfg.seed);
    let mut verifier = Verifier::new();
    let mut rep = FuzzReport::default();

    for _ in 0..cfg.modules {
        let mseed = rng.next_u64();
        let m = gen_module(mseed);
        rep.modules += 1;
        rep.total_insts += m.inst_count();

        if let Err(e) = verifier.verify_module(&mut LlvmAdapter::new(&m)) {
            rep.failures.push(FuzzFailure {
                seed: mseed,
                kind: "generator produced invalid IR".into(),
                detail: e.to_string(),
                ir: m.dump(),
            });
            continue;
        }

        let arc = Arc::new(m);
        let input = mseed & 0x3F;
        let mut reference: Option<(ServiceBackendKind, u64)> = None;
        for kind in ALL_KINDS {
            let resp = svc.compile(Request::new(ModuleRequest::new(Arc::clone(&arc), kind)));
            let served = match resp.module {
                Ok(c) => c,
                Err(e) => {
                    rep.failures.push(FuzzFailure {
                        seed: mseed,
                        kind: "service compile failed".into(),
                        detail: format!("{kind:?}: {e}"),
                        ir: arc.dump(),
                    });
                    continue;
                }
            };
            let one = match one_shot_buf(&arc, kind) {
                Ok(b) => b,
                Err(e) => {
                    rep.failures.push(FuzzFailure {
                        seed: mseed,
                        kind: "one-shot compile failed".into(),
                        detail: format!("{kind:?}: {e}"),
                        ir: arc.dump(),
                    });
                    continue;
                }
            };
            rep.compared += 1;
            if !buffers_equal(&served.buf, &one) {
                rep.failures.push(FuzzFailure {
                    seed: mseed,
                    kind: "service/one-shot bytes differ".into(),
                    detail: format!("{kind:?}"),
                    ir: arc.dump(),
                });
            }
            if EXEC_KINDS.contains(&kind) {
                match exec(&one, input) {
                    Ok(r) => {
                        rep.executed += 1;
                        match reference {
                            None => reference = Some((kind, r)),
                            Some((k0, r0)) if r0 != r => rep.failures.push(FuzzFailure {
                                seed: mseed,
                                kind: "result mismatch".into(),
                                detail: format!(
                                    "{k0:?} returned {r0:#x}, {kind:?} returned {r:#x} (input {input:#x})"
                                ),
                                ir: arc.dump(),
                            }),
                            Some(_) => {}
                        }
                    }
                    Err(e) => rep.failures.push(FuzzFailure {
                        seed: mseed,
                        kind: "execution failed".into(),
                        detail: format!("{kind:?}: {e}"),
                        ir: arc.dump(),
                    }),
                }
            }
        }

        for _ in 0..cfg.mutants_per_module {
            let mutseed = rng.next_u64();
            let (bad, class) = mutate_module(&arc, mutseed);
            rep.mutants += 1;
            match verifier.verify_module(&mut LlvmAdapter::new(&bad)) {
                Err(e) if corruption_matches(class, &e) => {}
                Err(e) => rep.failures.push(FuzzFailure {
                    seed: mseed,
                    kind: "wrong rejection class".into(),
                    detail: format!("mutation seed {mutseed:#x}, {class:?} rejected as {e}"),
                    ir: bad.dump(),
                }),
                Ok(()) => rep.failures.push(FuzzFailure {
                    seed: mseed,
                    kind: "mutant passed the verifier".into(),
                    detail: format!("mutation seed {mutseed:#x}, {class:?}"),
                    ir: bad.dump(),
                }),
            }
            let resp = svc.compile(Request::new(ModuleRequest::new(
                Arc::new(bad),
                ServiceBackendKind::TpdeX64,
            )));
            match resp.module {
                Err(Error::InvalidIr(_)) => {}
                other => rep.failures.push(FuzzFailure {
                    seed: mseed,
                    kind: "service accepted a mutant".into(),
                    detail: format!(
                        "mutation seed {mutseed:#x}, {class:?}: {:?}",
                        other.map(|c| c.text_size())
                    ),
                    ir: String::new(),
                }),
            }
        }
    }

    let stats = svc.stats();
    rep.rejected_invalid = stats.rejected_invalid;
    rep.panics_backend = stats.panics_backend;
    rep.workers_respawned = stats.workers_respawned;
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        for seed in [1u64, 42, 0xDEAD_BEEF] {
            let a = gen_module(seed);
            let b = gen_module(seed);
            assert_eq!(a.content_hash(), b.content_hash(), "seed {seed}");
            assert_eq!(a.dump(), b.dump(), "seed {seed}");
        }
        assert_ne!(gen_module(1).content_hash(), gen_module(2).content_hash());
    }

    #[test]
    fn generated_modules_pass_the_verifier() {
        let mut v = Verifier::new();
        let mut rng = Xoshiro256::new(7);
        for _ in 0..64 {
            let seed = rng.next_u64();
            let m = gen_module(seed);
            let r = v.verify_module(&mut LlvmAdapter::new(&m));
            assert!(r.is_ok(), "seed {seed:#x}: {:?}\n{}", r, m.dump());
        }
    }

    #[test]
    fn mutants_are_rejected_with_the_matching_class() {
        let mut v = Verifier::new();
        let mut rng = Xoshiro256::new(9);
        for _ in 0..64 {
            let (mseed, cseed) = (rng.next_u64(), rng.next_u64());
            let m = gen_module(mseed);
            let (bad, class) = mutate_module(&m, cseed);
            match v.verify_module(&mut LlvmAdapter::new(&bad)) {
                Err(e) => assert!(
                    corruption_matches(class, &e),
                    "seeds {mseed:#x}/{cseed:#x}: {class:?} rejected as {e}"
                ),
                Ok(()) => panic!(
                    "seeds {mseed:#x}/{cseed:#x}: {class:?} mutant passed\n{}",
                    bad.dump()
                ),
            }
        }
    }

    #[test]
    fn minimizer_shrinks_against_a_structural_predicate() {
        let m = gen_module(0xFEED);
        let before = m.inst_count();
        // "Interesting" = still contains an integer Mul anywhere.
        let has_mul = |m: &Module| {
            m.funcs.iter().any(|f| {
                f.blocks.iter().any(|b| {
                    b.insts
                        .iter()
                        .any(|i| matches!(i, Inst::Bin { op: BinOp::Mul, .. }))
                })
            })
        };
        if !has_mul(&m) {
            return; // seed happens to have no Mul; nothing to shrink against
        }
        let small = minimize(&m, &mut |c| has_mul(c), 2000);
        assert!(has_mul(&small));
        assert!(small.inst_count() <= before);
        // The shrunken module must still be well-formed.
        assert!(Verifier::new()
            .verify_module(&mut LlvmAdapter::new(&small))
            .is_ok());
        // And meaningfully smaller: one Mul + its ret at the limit.
        assert!(
            small.inst_count() <= 8,
            "only shrank to {} insts:\n{}",
            small.inst_count(),
            small.dump()
        );
    }

    #[test]
    fn miscompile_injection_flips_one_add() {
        let m = gen_module(3);
        let bad = inject_miscompile(&m).expect("bench_main always holds an Add");
        assert_ne!(m.content_hash(), bad.content_hash());
        // Still valid IR — the bug is semantic, not structural.
        assert!(Verifier::new()
            .verify_module(&mut LlvmAdapter::new(&bad))
            .is_ok());
    }
}
