//! SPEC-like synthetic workload generator.
//!
//! The paper evaluates on SPECint 2017 compiled by Clang at `-O0` and `-O1`.
//! We cannot redistribute SPEC, so this module generates nine synthetic
//! modules named after the SPEC benchmarks whose *structure* mirrors the
//! relevant characteristics: loop-heavy integer code, branchy code,
//! pointer-chasing/memory-bound code, call-heavy code and floating-point
//! kernels. Every module exposes a `bench_main(n)` entry point that returns
//! a checksum so all back-ends can be validated against the Rust reference
//! implementation in [`expected_result`].
//!
//! Each workload can be generated in two styles:
//!
//! * **O0 style** — local variables live in stack slots (`alloca`), values
//!   are loaded/stored around every operation and there are almost no phis;
//!   this mirrors Clang `-O0` output.
//! * **O1 style** — values are kept in SSA form with phis for loop-carried
//!   variables, mirroring optimized IR.

use crate::ir::{BinOp, Block, FBinOp, FunctionBuilder, ICmp, Module, ShiftKind, Type};

/// IR style, mirroring the paper's unoptimized/optimized input IR.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum IrStyle {
    /// Stack-allocated locals, very few phis (Clang -O0-like).
    O0,
    /// SSA form with phis (optimized, -O1-like).
    O1,
}

/// Description of one workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// SPEC-like benchmark name (e.g. `600.perl`).
    pub name: &'static str,
    /// Kernel family used for generation.
    pub kind: WorkloadKind,
    /// Number of cloned "hot" functions (controls module size).
    pub funcs: u32,
    /// Input parameter passed to `bench_main`.
    pub input: u64,
}

/// The kernel families the workloads are drawn from.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Loop-heavy integer arithmetic (hashing / mixing).
    IntLoop,
    /// Branch-heavy state machine.
    Branchy,
    /// Array/pointer memory traffic.
    Memory,
    /// Many small functions calling each other.
    CallHeavy,
    /// Floating-point stencil/reduction kernel.
    FpKernel,
}

/// The nine SPECint-2017-like workloads used by the figures.
pub fn spec_workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "600.perl",
            kind: WorkloadKind::Branchy,
            funcs: 14,
            input: 40_000,
        },
        Workload {
            name: "602.gcc",
            kind: WorkloadKind::Branchy,
            funcs: 22,
            input: 60_000,
        },
        Workload {
            name: "605.mcf",
            kind: WorkloadKind::Memory,
            funcs: 8,
            input: 30_000,
        },
        Workload {
            name: "620.omnetpp",
            kind: WorkloadKind::CallHeavy,
            funcs: 18,
            input: 25_000,
        },
        Workload {
            name: "623.xalanc",
            kind: WorkloadKind::CallHeavy,
            funcs: 24,
            input: 25_000,
        },
        Workload {
            name: "625.x264",
            kind: WorkloadKind::IntLoop,
            funcs: 12,
            input: 50_000,
        },
        Workload {
            name: "631.deepsjeng",
            kind: WorkloadKind::IntLoop,
            funcs: 10,
            input: 50_000,
        },
        Workload {
            name: "641.leela",
            kind: WorkloadKind::FpKernel,
            funcs: 10,
            input: 20_000,
        },
        Workload {
            name: "657.xz",
            kind: WorkloadKind::Memory,
            funcs: 9,
            input: 40_000,
        },
    ]
}

/// Builds the module for a workload in the given IR style.
pub fn build_workload(w: &Workload, style: IrStyle) -> Module {
    let mut m = Module::new();
    let mut kernel_ids = Vec::new();
    for i in 0..w.funcs {
        let name = format!("kernel_{}_{i}", kind_name(w.kind));
        let f = match (w.kind, style) {
            (WorkloadKind::IntLoop, IrStyle::O0) => int_loop_o0(&name, i),
            (WorkloadKind::IntLoop, IrStyle::O1) => int_loop_o1(&name, i),
            (WorkloadKind::Branchy, IrStyle::O0) => branchy_o0(&name, i),
            (WorkloadKind::Branchy, IrStyle::O1) => branchy_o1(&name, i),
            (WorkloadKind::Memory, _) => memory_kernel(&name, i, style),
            (WorkloadKind::CallHeavy, _) => int_loop_small(&name, i, style),
            (WorkloadKind::FpKernel, _) => fp_kernel(&name, i, style),
        };
        kernel_ids.push(m.add_function(f));
    }
    // bench_main(n): calls every kernel and mixes the results.
    let mut b = FunctionBuilder::new("bench_main", &[Type::I64], Type::I64);
    let mut acc = b.iconst(Type::I64, 0);
    for (i, k) in kernel_ids.iter().enumerate() {
        let arg = if matches!(w.kind, WorkloadKind::FpKernel) {
            // FP kernels take the iteration count scaled down
            b.arg(0)
        } else {
            let c = b.iconst(Type::I64, i as i64 + 1);
            b.bin(BinOp::Add, Type::I64, b.arg(0), c)
        };
        let r = b.call(*k, Type::I64, vec![arg]);
        let mixed = b.bin(BinOp::Xor, Type::I64, acc, r);
        let c3 = b.iconst(Type::I64, 3);
        let rot = b.shift(ShiftKind::Shl, Type::I64, mixed, c3);
        let __c1 = b.iconst(Type::I64, 61);
        let hi = b.shift(ShiftKind::LShr, Type::I64, mixed, __c1);
        acc = b.bin(BinOp::Or, Type::I64, rot, hi);
    }
    b.ret(Some(acc));
    m.add_function(b.build());
    m
}

fn kind_name(k: WorkloadKind) -> &'static str {
    match k {
        WorkloadKind::IntLoop => "intloop",
        WorkloadKind::Branchy => "branchy",
        WorkloadKind::Memory => "memory",
        WorkloadKind::CallHeavy => "call",
        WorkloadKind::FpKernel => "fp",
    }
}

// ---- reference implementations (ground truth) ---------------------------------

fn ref_int_loop(seed: u32, n: u64) -> u64 {
    let mut h: u64 = 0x9e37_79b9 ^ seed as u64;
    let mut i: u64 = 0;
    while i != n {
        h = h.wrapping_add(i);
        h ^= h.wrapping_mul(2654435761) >> 13;
        h = h.wrapping_add(h << 7);
        i += 1;
    }
    h
}

fn ref_int_loop_small(seed: u32, n: u64) -> u64 {
    let mut h: u64 = seed as u64 + 1;
    let mut i: u64 = 0;
    while i != n % 1024 {
        h = h.wrapping_mul(31).wrapping_add(i ^ (seed as u64));
        i += 1;
    }
    h
}

fn ref_branchy(seed: u32, n: u64) -> u64 {
    let mut state: u64 = seed as u64 + 1;
    let mut acc: u64 = 0;
    let mut i: u64 = 0;
    while i != n {
        let sel = state % 5;
        if sel == 0 {
            acc = acc.wrapping_add(state >> 3);
        } else if sel == 1 {
            acc ^= state.wrapping_mul(7);
        } else if sel == 2 {
            acc = acc.wrapping_sub(i);
        } else if sel == 3 {
            acc = acc.wrapping_add(i.wrapping_mul(state & 0xff));
        } else {
            acc = acc.rotate_left(1);
        }
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        i += 1;
    }
    acc
}

fn ref_memory(seed: u32, n: u64) -> u64 {
    const LEN: usize = 4096;
    let mut arr = [0u64; LEN];
    for (i, v) in arr.iter_mut().enumerate() {
        *v = (i as u64).wrapping_mul(seed as u64 + 13) & 0xffff;
    }
    let mut acc: u64 = 0;
    let mut idx: u64 = seed as u64 % LEN as u64;
    let mut i = 0u64;
    while i != n {
        let v = arr[idx as usize];
        acc = acc.wrapping_add(v ^ i);
        arr[(i % LEN as u64) as usize] = acc & 0xffff;
        idx = (idx + v + 1) % LEN as u64;
        i += 1;
    }
    acc
}

fn ref_fp(seed: u32, n: u64) -> u64 {
    let mut x = 1.0f64 + seed as f64 * 0.25;
    let mut sum = 0.0f64;
    let mut i = 0u64;
    while i != n {
        x = x * 1.000001 + 0.5;
        let y = x / 3.0 - (i as f64) * 0.125;
        sum += y * y * 0.001;
        if sum > 1.0e12 {
            sum *= 0.5;
        }
        i += 1;
    }
    sum as u64
}

/// Rust reference value of `bench_main(input)` for a workload; used to check
/// that every back-end generates correct code.
pub fn expected_result(w: &Workload) -> u64 {
    let mut acc: u64 = 0;
    for i in 0..w.funcs {
        let r = match w.kind {
            WorkloadKind::IntLoop => ref_int_loop(i, w.input + i as u64 + 1),
            WorkloadKind::Branchy => ref_branchy(i, w.input + i as u64 + 1),
            WorkloadKind::Memory => ref_memory(i, w.input + i as u64 + 1),
            WorkloadKind::CallHeavy => ref_int_loop_small(i, w.input + i as u64 + 1),
            WorkloadKind::FpKernel => ref_fp(i, w.input),
        };
        let mixed = acc ^ r;
        acc = mixed.rotate_left(3);
    }
    acc
}

// ---- IR kernels -------------------------------------------------------------

/// O1-style integer hash loop with a phi-carried accumulator.
fn int_loop_o1(name: &str, seed: u32) -> crate::ir::Function {
    let mut b = FunctionBuilder::new(name, &[Type::I64], Type::I64);
    let entry = b.current_block();
    let head = b.create_block();
    let body = b.create_block();
    let exit = b.create_block();
    let init = b.iconst(Type::I64, 0x9e37_79b9 ^ seed as i64);
    let zero = b.iconst(Type::I64, 0);
    b.br(head);
    b.switch_to(head);
    let h = b.phi(Type::I64);
    let i = b.phi(Type::I64);
    let done = b.icmp(ICmp::Eq, Type::I64, i, b.arg(0));
    b.cond_br(done, exit, body);
    b.switch_to(body);
    let h1 = b.bin(BinOp::Add, Type::I64, h, i);
    let c = b.iconst(Type::I64, 2654435761);
    let m = b.bin(BinOp::Mul, Type::I64, h1, c);
    let __c2 = b.iconst(Type::I64, 13);
    let s = b.shift(ShiftKind::LShr, Type::I64, m, __c2);
    let h2 = b.bin(BinOp::Xor, Type::I64, h1, s);
    let __c3 = b.iconst(Type::I64, 7);
    let sh = b.shift(ShiftKind::Shl, Type::I64, h2, __c3);
    let h3 = b.bin(BinOp::Add, Type::I64, h2, sh);
    let one = b.iconst(Type::I64, 1);
    let i1 = b.bin(BinOp::Add, Type::I64, i, one);
    b.br(head);
    let body_end = b.current_block();
    b.phi_add_incoming(h, entry, init);
    b.phi_add_incoming(h, body_end, h3);
    b.phi_add_incoming(i, entry, zero);
    b.phi_add_incoming(i, body_end, i1);
    b.switch_to(exit);
    b.ret(Some(h));
    b.build()
}

/// O0-style version: `h` and `i` live in stack slots.
fn int_loop_o0(name: &str, seed: u32) -> crate::ir::Function {
    let mut b = FunctionBuilder::new(name, &[Type::I64], Type::I64);
    let h_slot = b.alloca(8, 8);
    let i_slot = b.alloca(8, 8);
    let head = b.create_block();
    let body = b.create_block();
    let exit = b.create_block();
    let init = b.iconst(Type::I64, 0x9e37_79b9 ^ seed as i64);
    let zero = b.iconst(Type::I64, 0);
    b.store(Type::I64, h_slot, 0, init);
    b.store(Type::I64, i_slot, 0, zero);
    b.br(head);
    b.switch_to(head);
    let i = b.load(Type::I64, i_slot, 0);
    let done = b.icmp(ICmp::Eq, Type::I64, i, b.arg(0));
    b.cond_br(done, exit, body);
    b.switch_to(body);
    let h = b.load(Type::I64, h_slot, 0);
    let i2 = b.load(Type::I64, i_slot, 0);
    let h1 = b.bin(BinOp::Add, Type::I64, h, i2);
    let c = b.iconst(Type::I64, 2654435761);
    let m = b.bin(BinOp::Mul, Type::I64, h1, c);
    let __c4 = b.iconst(Type::I64, 13);
    let s = b.shift(ShiftKind::LShr, Type::I64, m, __c4);
    let h2 = b.bin(BinOp::Xor, Type::I64, h1, s);
    let __c5 = b.iconst(Type::I64, 7);
    let sh = b.shift(ShiftKind::Shl, Type::I64, h2, __c5);
    let h3 = b.bin(BinOp::Add, Type::I64, h2, sh);
    b.store(Type::I64, h_slot, 0, h3);
    let one = b.iconst(Type::I64, 1);
    let i3 = b.bin(BinOp::Add, Type::I64, i2, one);
    b.store(Type::I64, i_slot, 0, i3);
    b.br(head);
    b.switch_to(exit);
    let hr = b.load(Type::I64, h_slot, 0);
    b.ret(Some(hr));
    b.build()
}

/// Small hash loop used by the call-heavy workloads.
fn int_loop_small(name: &str, seed: u32, style: IrStyle) -> crate::ir::Function {
    let mut b = FunctionBuilder::new(name, &[Type::I64], Type::I64);
    let n_mod = {
        let c = b.iconst(Type::I64, 1024);
        b.div(false, true, Type::I64, b.arg(0), c)
    };
    match style {
        IrStyle::O1 => {
            let entry = b.current_block();
            let head = b.create_block();
            let body = b.create_block();
            let exit = b.create_block();
            let one = b.iconst(Type::I64, 1);
            let __c6 = b.iconst(Type::I64, seed as i64);
            let init = b.bin(BinOp::Add, Type::I64, __c6, one);
            let zero = b.iconst(Type::I64, 0);
            b.br(head);
            b.switch_to(head);
            let h = b.phi(Type::I64);
            let i = b.phi(Type::I64);
            let done = b.icmp(ICmp::Eq, Type::I64, i, n_mod);
            b.cond_br(done, exit, body);
            b.switch_to(body);
            let c31 = b.iconst(Type::I64, 31);
            let hm = b.bin(BinOp::Mul, Type::I64, h, c31);
            let seedc = b.iconst(Type::I64, seed as i64);
            let ix = b.bin(BinOp::Xor, Type::I64, i, seedc);
            let h1 = b.bin(BinOp::Add, Type::I64, hm, ix);
            let i1 = b.bin(BinOp::Add, Type::I64, i, one);
            b.br(head);
            let bend = b.current_block();
            b.phi_add_incoming(h, entry, init);
            b.phi_add_incoming(h, bend, h1);
            b.phi_add_incoming(i, entry, zero);
            b.phi_add_incoming(i, bend, i1);
            b.switch_to(exit);
            b.ret(Some(h));
        }
        IrStyle::O0 => {
            let h_slot = b.alloca(8, 8);
            let i_slot = b.alloca(8, 8);
            let one = b.iconst(Type::I64, 1);
            let __c7 = b.iconst(Type::I64, seed as i64);
            let init = b.bin(BinOp::Add, Type::I64, __c7, one);
            b.store(Type::I64, h_slot, 0, init);
            let __c8 = b.iconst(Type::I64, 0);
            b.store(Type::I64, i_slot, 0, __c8);
            let head = b.create_block();
            let body = b.create_block();
            let exit = b.create_block();
            b.br(head);
            b.switch_to(head);
            let i = b.load(Type::I64, i_slot, 0);
            let done = b.icmp(ICmp::Eq, Type::I64, i, n_mod);
            b.cond_br(done, exit, body);
            b.switch_to(body);
            let h = b.load(Type::I64, h_slot, 0);
            let i2 = b.load(Type::I64, i_slot, 0);
            let c31 = b.iconst(Type::I64, 31);
            let hm = b.bin(BinOp::Mul, Type::I64, h, c31);
            let seedc = b.iconst(Type::I64, seed as i64);
            let ix = b.bin(BinOp::Xor, Type::I64, i2, seedc);
            let h1 = b.bin(BinOp::Add, Type::I64, hm, ix);
            b.store(Type::I64, h_slot, 0, h1);
            let i3 = b.bin(BinOp::Add, Type::I64, i2, one);
            b.store(Type::I64, i_slot, 0, i3);
            b.br(head);
            b.switch_to(exit);
            let hr = b.load(Type::I64, h_slot, 0);
            b.ret(Some(hr));
        }
    }
    b.build()
}

/// Branch-heavy LCG-driven state machine (perl/gcc-like control flow).
fn branchy_o1(name: &str, seed: u32) -> crate::ir::Function {
    branchy_impl(name, seed, IrStyle::O1)
}

fn branchy_o0(name: &str, seed: u32) -> crate::ir::Function {
    branchy_impl(name, seed, IrStyle::O0)
}

fn branchy_impl(name: &str, seed: u32, style: IrStyle) -> crate::ir::Function {
    let mut b = FunctionBuilder::new(name, &[Type::I64], Type::I64);
    // locals: state, acc, i  (slots in O0, phis in O1)
    let use_slots = style == IrStyle::O0;
    let state_slot = if use_slots {
        Some(b.alloca(8, 8))
    } else {
        None
    };
    let acc_slot = if use_slots {
        Some(b.alloca(8, 8))
    } else {
        None
    };
    let i_slot = if use_slots {
        Some(b.alloca(8, 8))
    } else {
        None
    };
    let entry = b.current_block();
    let head = b.create_block();
    let dispatch: Vec<Block> = (0..5).map(|_| b.create_block()).collect();
    let join = b.create_block();
    let exit = b.create_block();

    let one = b.iconst(Type::I64, 1);
    let __c9 = b.iconst(Type::I64, seed as i64);
    let init_state = b.bin(BinOp::Add, Type::I64, __c9, one);
    let zero = b.iconst(Type::I64, 0);
    if use_slots {
        b.store(Type::I64, state_slot.unwrap(), 0, init_state);
        b.store(Type::I64, acc_slot.unwrap(), 0, zero);
        b.store(Type::I64, i_slot.unwrap(), 0, zero);
    }
    b.br(head);

    b.switch_to(head);
    let (state, acc, i) = if use_slots {
        (
            b.load(Type::I64, state_slot.unwrap(), 0),
            b.load(Type::I64, acc_slot.unwrap(), 0),
            b.load(Type::I64, i_slot.unwrap(), 0),
        )
    } else {
        (b.phi(Type::I64), b.phi(Type::I64), b.phi(Type::I64))
    };
    let done = b.icmp(ICmp::Eq, Type::I64, i, b.arg(0));
    let sel_block = b.create_block();
    b.cond_br(done, exit, sel_block);
    b.switch_to(sel_block);
    let five = b.iconst(Type::I64, 5);
    let sel = b.div(false, true, Type::I64, state, five);
    // chain of compares (like a switch lowered to branches)
    let mut cur = b.current_block();
    for (k, target) in dispatch.iter().enumerate() {
        b.switch_to(cur);
        let kc = b.iconst(Type::I64, k as i64);
        let is_k = b.icmp(ICmp::Eq, Type::I64, sel, kc);
        if k + 1 < dispatch.len() {
            let next = b.create_block();
            b.cond_br(is_k, *target, next);
            cur = next;
        } else {
            b.cond_br(is_k, *target, dispatch[4]);
        }
    }
    // dispatch targets compute the new acc
    let mut acc_variants = Vec::new();
    for (k, blk) in dispatch.iter().enumerate() {
        b.switch_to(*blk);
        let new_acc = match k {
            0 => {
                let __c10 = b.iconst(Type::I64, 3);
                let s3 = b.shift(ShiftKind::LShr, Type::I64, state, __c10);
                b.bin(BinOp::Add, Type::I64, acc, s3)
            }
            1 => {
                let __c11 = b.iconst(Type::I64, 7);
                let s7 = b.bin(BinOp::Mul, Type::I64, state, __c11);
                b.bin(BinOp::Xor, Type::I64, acc, s7)
            }
            2 => b.bin(BinOp::Sub, Type::I64, acc, i),
            3 => {
                let __c12 = b.iconst(Type::I64, 0xff);
                let masked = b.bin(BinOp::And, Type::I64, state, __c12);
                let prod = b.bin(BinOp::Mul, Type::I64, i, masked);
                b.bin(BinOp::Add, Type::I64, acc, prod)
            }
            _ => {
                let __c13 = b.iconst(Type::I64, 63);
                let hi = b.shift(ShiftKind::LShr, Type::I64, acc, __c13);
                let __c14 = b.iconst(Type::I64, 1);
                let lo = b.shift(ShiftKind::Shl, Type::I64, acc, __c14);
                b.bin(BinOp::Or, Type::I64, lo, hi)
            }
        };
        acc_variants.push((b.current_block(), new_acc));
        b.br(join);
    }
    b.switch_to(join);
    let acc_next = if use_slots {
        // in O0 style every variant stored to the slot; emulate by a phi-free
        // merge: store in each dispatch block instead
        let merged = b.phi(Type::I64);
        for (blk, v) in &acc_variants {
            b.phi_add_incoming(merged, *blk, *v);
        }
        merged
    } else {
        let merged = b.phi(Type::I64);
        for (blk, v) in &acc_variants {
            b.phi_add_incoming(merged, *blk, *v);
        }
        merged
    };
    let mul = b.iconst(Type::I64, 6364136223846793005);
    let inc = b.iconst(Type::I64, 1442695040888963407);
    let sm = b.bin(BinOp::Mul, Type::I64, state, mul);
    let state_next = b.bin(BinOp::Add, Type::I64, sm, inc);
    let i_next = b.bin(BinOp::Add, Type::I64, i, one);
    if use_slots {
        b.store(Type::I64, state_slot.unwrap(), 0, state_next);
        b.store(Type::I64, acc_slot.unwrap(), 0, acc_next);
        b.store(Type::I64, i_slot.unwrap(), 0, i_next);
    }
    b.br(head);
    let join_end = b.current_block();
    if !use_slots {
        b.phi_add_incoming(state, entry, init_state);
        b.phi_add_incoming(state, join_end, state_next);
        b.phi_add_incoming(acc, entry, zero);
        b.phi_add_incoming(acc, join_end, acc_next);
        b.phi_add_incoming(i, entry, zero);
        b.phi_add_incoming(i, join_end, i_next);
    }
    b.switch_to(exit);
    let result = if use_slots {
        b.load(Type::I64, acc_slot.unwrap(), 0)
    } else {
        acc
    };
    b.ret(Some(result));
    b.build()
}

/// Array walking kernel with data-dependent indices (mcf/xz-like).
fn memory_kernel(name: &str, seed: u32, style: IrStyle) -> crate::ir::Function {
    let _ = style; // the kernel is memory-bound either way; locals are slots
    let mut b = FunctionBuilder::new(name, &[Type::I64], Type::I64);
    const LEN: i64 = 4096;
    let arr = b.alloca((LEN * 8) as u32, 8);
    let acc_slot = b.alloca(8, 8);
    let idx_slot = b.alloca(8, 8);
    let i_slot = b.alloca(8, 8);

    // init loop
    let init_head = b.create_block();
    let init_body = b.create_block();
    let main_entry = b.create_block();
    let zero = b.iconst(Type::I64, 0);
    b.store(Type::I64, i_slot, 0, zero);
    b.br(init_head);
    b.switch_to(init_head);
    let i = b.load(Type::I64, i_slot, 0);
    let len = b.iconst(Type::I64, LEN);
    let done = b.icmp(ICmp::Eq, Type::I64, i, len);
    b.cond_br(done, main_entry, init_body);
    b.switch_to(init_body);
    let i2 = b.load(Type::I64, i_slot, 0);
    let seedc = b.iconst(Type::I64, seed as i64 + 13);
    let v = b.bin(BinOp::Mul, Type::I64, i2, seedc);
    let mask = b.iconst(Type::I64, 0xffff);
    let vm = b.bin(BinOp::And, Type::I64, v, mask);
    let slot = b.gep(arr, Some(i2), 8, 0);
    b.store(Type::I64, slot, 0, vm);
    let one = b.iconst(Type::I64, 1);
    let i3 = b.bin(BinOp::Add, Type::I64, i2, one);
    b.store(Type::I64, i_slot, 0, i3);
    b.br(init_head);

    // main loop
    b.switch_to(main_entry);
    b.store(Type::I64, acc_slot, 0, zero);
    let seed_mod = b.iconst(Type::I64, (seed as i64) % LEN);
    b.store(Type::I64, idx_slot, 0, seed_mod);
    b.store(Type::I64, i_slot, 0, zero);
    let head = b.create_block();
    let body = b.create_block();
    let exit = b.create_block();
    b.br(head);
    b.switch_to(head);
    let i = b.load(Type::I64, i_slot, 0);
    let done = b.icmp(ICmp::Eq, Type::I64, i, b.arg(0));
    b.cond_br(done, exit, body);
    b.switch_to(body);
    let i2 = b.load(Type::I64, i_slot, 0);
    let idx = b.load(Type::I64, idx_slot, 0);
    let slot = b.gep(arr, Some(idx), 8, 0);
    let v = b.load(Type::I64, slot, 0);
    let acc = b.load(Type::I64, acc_slot, 0);
    let vx = b.bin(BinOp::Xor, Type::I64, v, i2);
    let acc1 = b.bin(BinOp::Add, Type::I64, acc, vx);
    b.store(Type::I64, acc_slot, 0, acc1);
    let lenc = b.iconst(Type::I64, LEN);
    let imod = b.div(false, true, Type::I64, i2, lenc);
    let wslot = b.gep(arr, Some(imod), 8, 0);
    let accm = b.bin(BinOp::And, Type::I64, acc1, mask);
    b.store(Type::I64, wslot, 0, accm);
    let idx1 = b.bin(BinOp::Add, Type::I64, idx, v);
    let one = b.iconst(Type::I64, 1);
    let idx2 = b.bin(BinOp::Add, Type::I64, idx1, one);
    let idx3 = b.div(false, true, Type::I64, idx2, lenc);
    b.store(Type::I64, idx_slot, 0, idx3);
    let i3 = b.bin(BinOp::Add, Type::I64, i2, one);
    b.store(Type::I64, i_slot, 0, i3);
    b.br(head);
    b.switch_to(exit);
    let result = b.load(Type::I64, acc_slot, 0);
    b.ret(Some(result));
    b.build()
}

/// Floating-point reduction kernel (leela-like numeric code).
fn fp_kernel(name: &str, seed: u32, style: IrStyle) -> crate::ir::Function {
    let _ = style;
    let mut b = FunctionBuilder::new(name, &[Type::I64], Type::I64);
    let x_slot = b.alloca(8, 8);
    let sum_slot = b.alloca(8, 8);
    let i_slot = b.alloca(8, 8);
    let x0 = b.fconst(1.0 + seed as f64 * 0.25);
    let zero_f = b.fconst(0.0);
    let zero = b.iconst(Type::I64, 0);
    b.store(Type::F64, x_slot, 0, x0);
    b.store(Type::F64, sum_slot, 0, zero_f);
    b.store(Type::I64, i_slot, 0, zero);
    let head = b.create_block();
    let body = b.create_block();
    let clamp = b.create_block();
    let cont = b.create_block();
    let exit = b.create_block();
    b.br(head);
    b.switch_to(head);
    let i = b.load(Type::I64, i_slot, 0);
    let done = b.icmp(ICmp::Eq, Type::I64, i, b.arg(0));
    b.cond_br(done, exit, body);
    b.switch_to(body);
    let x = b.load(Type::F64, x_slot, 0);
    let c1 = b.fconst(1.000001);
    let half = b.fconst(0.5);
    let xm = b.fbin(FBinOp::Mul, Type::F64, x, c1);
    let x1 = b.fbin(FBinOp::Add, Type::F64, xm, half);
    b.store(Type::F64, x_slot, 0, x1);
    let three = b.fconst(3.0);
    let xd = b.fbin(FBinOp::Div, Type::F64, x1, three);
    let i2 = b.load(Type::I64, i_slot, 0);
    let fi = b.int_to_fp(Type::I64, Type::F64, i2);
    let c0125 = b.fconst(0.125);
    let fi2 = b.fbin(FBinOp::Mul, Type::F64, fi, c0125);
    let y = b.fbin(FBinOp::Sub, Type::F64, xd, fi2);
    let y2 = b.fbin(FBinOp::Mul, Type::F64, y, y);
    let c0001 = b.fconst(0.001);
    let contrib = b.fbin(FBinOp::Mul, Type::F64, y2, c0001);
    let sum = b.load(Type::F64, sum_slot, 0);
    let sum1 = b.fbin(FBinOp::Add, Type::F64, sum, contrib);
    b.store(Type::F64, sum_slot, 0, sum1);
    let limit = b.fconst(1.0e12);
    let too_big = b.fcmp(crate::ir::FCmp::Ogt, Type::F64, sum1, limit);
    b.cond_br(too_big, clamp, cont);
    b.switch_to(clamp);
    let sum2 = b.load(Type::F64, sum_slot, 0);
    let halfc = b.fconst(0.5);
    let sum3 = b.fbin(FBinOp::Mul, Type::F64, sum2, halfc);
    b.store(Type::F64, sum_slot, 0, sum3);
    b.br(cont);
    b.switch_to(cont);
    let one = b.iconst(Type::I64, 1);
    let i3 = b.bin(BinOp::Add, Type::I64, i, one);
    b.store(Type::I64, i_slot, 0, i3);
    b.br(head);
    b.switch_to(exit);
    let fsum = b.load(Type::F64, sum_slot, 0);
    let ret = b.fp_to_int(Type::F64, Type::I64, fsum);
    b.ret(Some(ret));
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_build_in_both_styles() {
        for w in spec_workloads() {
            for style in [IrStyle::O0, IrStyle::O1] {
                let m = build_workload(&w, style);
                assert!(m.func_by_name("bench_main").is_some(), "{}", w.name);
                assert!(m.inst_count() > 50, "{} too small", w.name);
                // every block ends with a terminator
                for f in &m.funcs {
                    for blk in &f.blocks {
                        assert!(blk.insts.last().map(|i| i.is_terminator()).unwrap_or(false));
                    }
                }
            }
        }
    }

    #[test]
    fn all_workloads_pass_the_verifier() {
        // The verifier now gates service admission, so a false rejection
        // here would make every benchmark module uncompilable.
        let mut v = tpde_core::verify::Verifier::new();
        for w in spec_workloads() {
            for style in [IrStyle::O0, IrStyle::O1] {
                let m = build_workload(&w, style);
                let mut a = crate::adapter::LlvmAdapter::new(&m);
                let r = v.verify_module(&mut a);
                assert!(r.is_ok(), "{} ({style:?}): {:?}", w.name, r);
            }
        }
    }

    #[test]
    fn o1_style_has_phis_o0_mostly_not() {
        let w = &spec_workloads()[5]; // int loop
        let o0 = build_workload(w, IrStyle::O0);
        let o1 = build_workload(w, IrStyle::O1);
        let phis = |m: &Module| -> usize {
            m.funcs
                .iter()
                .map(|f| f.blocks.iter().map(|b| b.phis.len()).sum::<usize>())
                .sum()
        };
        assert!(phis(&o1) > phis(&o0));
    }
}
