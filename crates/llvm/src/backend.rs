//! The TPDE back-end for the LLVM-IR-like module.
//!
//! The instruction compiler is architecture-independent: it maps IR
//! instructions onto the snippet encoders of [`tpde_snippets::SnippetEmitter`]
//! and only uses the framework for calls, returns and branch bookkeeping,
//! mirroring §5.1.2 of the paper (calls/returns/branches and compare+branch
//! fusion are the only parts that are not expressed through snippets).

use crate::adapter::{block_ref, value_ref, AdapterScratch, LlvmAdapter};
use crate::baselines::{
    compile_function_baseline, compile_function_stacky, compile_function_stacky_tiered,
    declare_baseline_symbols, BaselineOutput,
};
use crate::ir::{Function, Inst, Module, Type};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Weak};
use tpde_core::adapter::{FuncRef, InstRef, IrAdapter};
use tpde_core::codebuf::{CodeBuffer, SymbolBinding};
use tpde_core::codegen::{
    declare_func_symbols, CallTarget, CodeGen, CompileOptions, CompileSession, CompileStats,
    CompiledModule, FuncCodeGen, InstCompiler, TierConfig,
};
use tpde_core::error::{Error, Result};
use tpde_core::parallel::{ParallelDriver, WorkerPool};
use tpde_core::service::{
    CompileService, Fnv1a, Request, ServiceBackend, ServiceConfig, ServiceResponse,
};
use tpde_core::target::Target;
use tpde_core::timing::PassTimings;
use tpde_core::verify::Verifier;
use tpde_enc::{A64Target, X64Target};
use tpde_snippets::{AsmOperand, SnippetEmitter};

/// The instruction compiler for the LLVM-IR-like IR, generic over the target
/// through the snippet-encoder abstraction.
///
/// Holds a reusable call-argument buffer and a per-module callee symbol
/// cache so compiling a call instruction does not allocate or re-intern the
/// callee name in steady state.
#[derive(Default)]
pub struct LlvmInstCompiler {
    arg_refs: Vec<tpde_core::codegen::ValuePartRef>,
    /// Cached `SymbolId` per IR function index, filled on first call. The
    /// ids belong to one module's `CodeBuffer`, so the cache is tagged with
    /// the module's address and dropped when a different module shows up.
    callee_syms: Vec<Option<tpde_core::codebuf::SymbolId>>,
    callee_syms_module: usize,
}

impl LlvmInstCompiler {
    /// Drops the per-module callee-symbol cache (keeping its capacity).
    /// Long-lived workers call this when they move to a different module,
    /// since the address tag alone cannot distinguish a new module that
    /// reuses a dropped module's allocation.
    fn reset(&mut self) {
        self.callee_syms.clear();
        self.callee_syms_module = 0;
    }

    fn operand<'m, T: SnippetEmitter>(
        cg: &mut FuncCodeGen<'_, LlvmAdapter<'m>, T>,
        v: crate::ir::Value,
    ) -> Result<AsmOperand> {
        Ok(AsmOperand::Val(cg.val_ref(value_ref(v), 0)?))
    }
}

impl<'m, T: SnippetEmitter> InstCompiler<LlvmAdapter<'m>, T> for LlvmInstCompiler {
    fn compile_inst(
        &mut self,
        cg: &mut FuncCodeGen<'_, LlvmAdapter<'m>, T>,
        inst: InstRef,
    ) -> Result<()> {
        // `inst()` borrows from the module ('m), not from the adapter
        // borrow, so no clone is needed before mutating `cg`.
        let adapter = cg.adapter;
        let ir: &'m Inst = adapter.inst(inst);
        match *ir {
            Inst::Bin {
                op,
                ty,
                res,
                lhs,
                rhs,
            } => {
                let l = Self::operand(cg, lhs)?;
                let r = Self::operand(cg, rhs)?;
                T::enc_bin(cg, op, ty.size(), (value_ref(res), 0), &l, &r)
            }
            Inst::Div {
                signed,
                rem,
                ty,
                res,
                lhs,
                rhs,
            } => {
                let l = Self::operand(cg, lhs)?;
                let r = Self::operand(cg, rhs)?;
                T::enc_divrem(cg, signed, rem, ty.size(), (value_ref(res), 0), &l, &r)
            }
            Inst::Shift {
                kind,
                ty,
                res,
                lhs,
                rhs,
            } => {
                let l = Self::operand(cg, lhs)?;
                let r = Self::operand(cg, rhs)?;
                T::enc_shift(cg, kind, ty.size(), (value_ref(res), 0), &l, &r)
            }
            Inst::Icmp {
                cc,
                ty,
                res,
                lhs,
                rhs,
            } => {
                // compare + branch fusion (§3.4.4): if the next instruction is
                // a conditional branch on this result and this is its only
                // use, emit the fused form and skip the branch.
                if cg.options().fusion {
                    if let Some(next) = cg.adapter.next_inst_in_block(inst) {
                        if let Inst::CondBr {
                            cond,
                            if_true,
                            if_false,
                        } = cg.adapter.inst(next)
                        {
                            if *cond == res && cg.adapter.count_uses(res) == 1 {
                                let (it, if_) = (*if_true, *if_false);
                                let l = Self::operand(cg, lhs)?;
                                let r = Self::operand(cg, rhs)?;
                                cg.mark_fused(next);
                                return T::enc_icmp_branch(
                                    cg,
                                    cc,
                                    ty.size(),
                                    &l,
                                    &r,
                                    block_ref(it),
                                    block_ref(if_),
                                );
                            }
                        }
                    }
                }
                let l = Self::operand(cg, lhs)?;
                let r = Self::operand(cg, rhs)?;
                T::enc_icmp(cg, cc, ty.size(), (value_ref(res), 0), &l, &r)
            }
            Inst::Fbin {
                op,
                ty,
                res,
                lhs,
                rhs,
            } => {
                let l = Self::operand(cg, lhs)?;
                let r = Self::operand(cg, rhs)?;
                T::enc_fbin(cg, op, ty.size(), (value_ref(res), 0), &l, &r)
            }
            Inst::Fcmp {
                cc,
                ty,
                res,
                lhs,
                rhs,
            } => {
                let l = Self::operand(cg, lhs)?;
                let r = Self::operand(cg, rhs)?;
                T::enc_fcmp(cg, cc, ty.size(), (value_ref(res), 0), &l, &r)
            }
            Inst::Fneg { ty, res, v } => {
                let s = Self::operand(cg, v)?;
                T::enc_fneg(cg, ty.size(), (value_ref(res), 0), &s)
            }
            Inst::Load { ty, res, addr, off } => {
                let a = Self::operand(cg, addr)?;
                T::enc_load(
                    cg,
                    ty.size(),
                    // The IR has no sign-extending loads; sub-64-bit loads
                    // always zero-extend.
                    false,
                    ty.is_fp(),
                    (value_ref(res), 0),
                    &a,
                    off,
                )
            }
            Inst::Store {
                ty,
                addr,
                off,
                value,
            } => {
                let a = Self::operand(cg, addr)?;
                let v = Self::operand(cg, value)?;
                T::enc_store(cg, ty.size(), ty.is_fp(), &a, off, &v)
            }
            Inst::Gep {
                res,
                base,
                index,
                scale,
                off,
            } => {
                // res = base + index*scale + off, computed with integer snippets
                let b = Self::operand(cg, base)?;
                match index {
                    None => {
                        let o = AsmOperand::Imm(off as u64);
                        T::enc_bin(cg, crate::ir::BinOp::Add, 8, (value_ref(res), 0), &b, &o)
                    }
                    Some(i) => {
                        let iv = Self::operand(cg, i)?;
                        // res = index * scale; res = res + base; res = res + off
                        // The intermediate references to `res` are built
                        // directly (not via val_ref) so they do not count as
                        // additional uses of the result.
                        let res_ref = |cg: &FuncCodeGen<'_, LlvmAdapter<'m>, T>| {
                            tpde_core::codegen::ValuePartRef {
                                val: value_ref(res),
                                part: 0,
                                bank: cg.adapter.val_part_bank(value_ref(res), 0),
                                size: 8,
                                is_const: false,
                                const_val: 0,
                            }
                        };
                        T::enc_bin(
                            cg,
                            crate::ir::BinOp::Mul,
                            8,
                            (value_ref(res), 0),
                            &iv,
                            &AsmOperand::Imm(scale as u64),
                        )?;
                        let partial = AsmOperand::Val(res_ref(cg));
                        T::enc_bin(
                            cg,
                            crate::ir::BinOp::Add,
                            8,
                            (value_ref(res), 0),
                            &partial,
                            &b,
                        )?;
                        if off != 0 {
                            let partial = AsmOperand::Val(res_ref(cg));
                            T::enc_bin(
                                cg,
                                crate::ir::BinOp::Add,
                                8,
                                (value_ref(res), 0),
                                &partial,
                                &AsmOperand::Imm(off as u64),
                            )?;
                        }
                        Ok(())
                    }
                }
            }
            Inst::Cast {
                signed,
                from,
                to,
                res,
                v,
            } => {
                let s = Self::operand(cg, v)?;
                T::enc_ext(cg, signed, from.size(), to.size(), (value_ref(res), 0), &s)
            }
            Inst::IntToFp { from, to, res, v } => {
                let s = Self::operand(cg, v)?;
                T::enc_int_to_fp(cg, from.size(), to.size(), (value_ref(res), 0), &s)
            }
            Inst::FpToInt { from, to, res, v } => {
                let s = Self::operand(cg, v)?;
                T::enc_fp_to_int(cg, from.size(), to.size(), (value_ref(res), 0), &s)
            }
            Inst::FpConvert { from, to, res, v } => {
                let s = Self::operand(cg, v)?;
                T::enc_fp_convert(cg, from.size(), to.size(), (value_ref(res), 0), &s)
            }
            Inst::Select {
                ty,
                res,
                cond,
                tval,
                fval,
            } => {
                let c = Self::operand(cg, cond)?;
                let t = Self::operand(cg, tval)?;
                let f = Self::operand(cg, fval)?;
                T::enc_select(cg, ty.size(), (value_ref(res), 0), &c, &t, &f)
            }
            Inst::Call {
                callee,
                res,
                ret_ty,
                ref args,
            } => {
                let module_tag = adapter.module as *const Module as usize;
                if self.callee_syms_module != module_tag {
                    self.callee_syms.clear();
                    self.callee_syms_module = module_tag;
                }
                if self.callee_syms.len() <= callee.0 as usize {
                    self.callee_syms.resize(adapter.module.funcs.len(), None);
                }
                let sym = match self.callee_syms[callee.0 as usize] {
                    Some(sym) => sym,
                    None => {
                        let f = &adapter.module.funcs[callee.0 as usize];
                        let binding = if f.internal {
                            SymbolBinding::Local
                        } else {
                            SymbolBinding::Global
                        };
                        let sym = cg.buf.declare_symbol(&f.name, binding, true);
                        self.callee_syms[callee.0 as usize] = Some(sym);
                        sym
                    }
                };
                self.arg_refs.clear();
                for a in args {
                    let r = cg.val_ref(value_ref(*a), 0)?;
                    self.arg_refs.push(r);
                }
                let ret_slot;
                let rets: &[_] = match res {
                    Some(r) if ret_ty != Type::Void => {
                        ret_slot = [(value_ref(r), 0)];
                        &ret_slot
                    }
                    _ => &[],
                };
                cg.emit_call(CallTarget::Sym(sym), &self.arg_refs, rets, None)
            }
            Inst::Br { target } => T::enc_jump(cg, block_ref(target)),
            Inst::CondBr {
                cond,
                if_true,
                if_false,
            } => {
                let c = Self::operand(cg, cond)?;
                T::enc_branch_nonzero(cg, 4, &c, false, block_ref(if_true), block_ref(if_false))
            }
            Inst::Ret { value } => match value {
                Some(v) => {
                    let p = cg.val_ref(value_ref(v), 0)?;
                    cg.emit_return(&[p])
                }
                None => cg.emit_return_void(),
            },
        }
    }
}

/// Compiles a module with the TPDE back-end for x86-64.
pub fn compile_x64(module: &Module, opts: &CompileOptions) -> Result<CompiledModule> {
    compile_with_target(module, X64Target::new(), opts)
}

/// Compiles a module with the TPDE back-end for AArch64.
pub fn compile_a64(module: &Module, opts: &CompileOptions) -> Result<CompiledModule> {
    compile_with_target(module, A64Target::new(), opts)
}

/// Compiles a module with the x86-64 TPDE back-end and full tier-0
/// instrumentation (entry counters + patchable call slots); the one-shot
/// reference for [`ServiceBackendKind::TpdeX64Tier0`].
pub fn compile_x64_tier0(module: &Module, opts: &CompileOptions) -> Result<CompiledModule> {
    let mut adapter = LlvmAdapter::new(module);
    let cg = CodeGen::with_tier(X64Target::new(), opts.clone(), TierConfig::tier0());
    cg.compile_module(&mut adapter, &mut LlvmInstCompiler::default())
}

/// Function-sharded parallel variant of [`compile_x64_tier0`];
/// byte-identical to the sequential compiler for any thread count.
pub fn compile_x64_tier0_parallel(
    module: &Module,
    opts: &CompileOptions,
    threads: usize,
) -> Result<CompiledModule> {
    let cg = CodeGen::with_tier(X64Target::new(), opts.clone(), TierConfig::tier0());
    ParallelDriver::new(threads).compile_module(
        &cg,
        || LlvmAdapter::new(module),
        LlvmInstCompiler::default,
    )
}

/// Compiles a module with the TPDE back-end for an arbitrary target that has
/// snippet encoders.
pub fn compile_with_target<T: Target + SnippetEmitter>(
    module: &Module,
    target: T,
    opts: &CompileOptions,
) -> Result<CompiledModule> {
    let mut adapter = LlvmAdapter::new(module);
    let cg = CodeGen::new(target, opts.clone());
    cg.compile_module(&mut adapter, &mut LlvmInstCompiler::default())
}

/// Like [`compile_with_target`], but reuses the given compile session's
/// working memory. Drivers compiling many modules (JIT-style workloads)
/// keep one session so the steady-state compile loop is allocation-free.
pub fn compile_with_session<T: Target + SnippetEmitter>(
    module: &Module,
    target: T,
    opts: &CompileOptions,
    session: &mut tpde_core::codegen::CompileSession,
) -> Result<CompiledModule> {
    let mut adapter = LlvmAdapter::new(module);
    let cg = CodeGen::new(target, opts.clone());
    cg.compile_module_with(session, &mut adapter, &mut LlvmInstCompiler::default())
}

/// Compiles a module for x86-64 with functions sharded across `threads`
/// worker threads. The output is byte-identical to [`compile_x64`] for any
/// thread count (see [`tpde_core::parallel`] for the determinism contract).
pub fn compile_x64_parallel(
    module: &Module,
    opts: &CompileOptions,
    threads: usize,
) -> Result<CompiledModule> {
    compile_with_target_parallel(module, X64Target::new(), opts, threads)
}

/// Compiles a module for AArch64 with functions sharded across `threads`
/// worker threads; byte-identical to [`compile_a64`].
pub fn compile_a64_parallel(
    module: &Module,
    opts: &CompileOptions,
    threads: usize,
) -> Result<CompiledModule> {
    compile_with_target_parallel(module, A64Target::new(), opts, threads)
}

/// Parallel variant of [`compile_with_target`]: every worker owns a full
/// compile session, an [`LlvmAdapter`] that pre-indexes functions
/// independently, and its own instruction compiler (so the per-module
/// callee-symbol cache is worker-local).
pub fn compile_with_target_parallel<T: Target + SnippetEmitter + Sync>(
    module: &Module,
    target: T,
    opts: &CompileOptions,
    threads: usize,
) -> Result<CompiledModule> {
    let cg = CodeGen::new(target, opts.clone());
    ParallelDriver::new(threads).compile_module(
        &cg,
        || LlvmAdapter::new(module),
        LlvmInstCompiler::default,
    )
}

/// Parallel variant of [`compile_with_session`]: reuses the pool's worker
/// sessions so the steady-state loop of every worker is allocation-free
/// across modules.
pub fn compile_with_pool<T: Target + SnippetEmitter + Sync>(
    module: &Module,
    target: T,
    opts: &CompileOptions,
    threads: usize,
    pool: &mut WorkerPool,
) -> Result<CompiledModule> {
    let cg = CodeGen::new(target, opts.clone());
    ParallelDriver::new(threads).compile_module_with(
        pool,
        &cg,
        || LlvmAdapter::new(module),
        LlvmInstCompiler::default,
    )
}

// --------------------------------------------------------------------------
// Persistent compile service
// --------------------------------------------------------------------------

/// Which compiler answers a [`ModuleRequest`].
///
/// One [`LlvmCompileService`] serves all of these from the same persistent
/// worker pool — heterogeneous targets (x86-64 and AArch64) and
/// heterogeneous pipelines (TPDE and the paper's baselines) can be
/// interleaved request by request without re-spawning threads.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ServiceBackendKind {
    /// TPDE targeting x86-64 (byte-identical to [`compile_x64`]).
    TpdeX64,
    /// TPDE targeting AArch64 (byte-identical to [`compile_a64`]).
    TpdeA64,
    /// The multi-pass LLVM-O0-like baseline, x86-64
    /// (byte-identical to [`crate::baselines::compile_baseline`] at level 0).
    BaselineO0,
    /// The multi-pass LLVM-O1-like baseline, x86-64 (level 1).
    BaselineO1,
    /// The copy-and-patch-style baseline, x86-64
    /// (byte-identical to [`crate::baselines::compile_copy_patch`]).
    CopyPatch,
    /// TPDE targeting x86-64 with tier-0 instrumentation (entry counters and
    /// patchable call slots; byte-identical to [`compile_x64_tier0`]).
    TpdeX64Tier0,
    /// The copy-and-patch baseline with tier-0 instrumentation
    /// (byte-identical to [`crate::baselines::compile_copy_patch_tiered`]).
    CopyPatchTier0,
}

impl ServiceBackendKind {
    /// Stable identity of the backend for artifact keying: unlike the
    /// derived `Hash` (which hashes the declaration-order discriminant,
    /// stable only within one build), these values are pinned forever, so a
    /// disk-cache key computed by one build of the service means the same
    /// backend to every other build. New variants get new tags; existing
    /// tags never change or get reused.
    pub fn artifact_tag(self) -> u8 {
        match self {
            ServiceBackendKind::TpdeX64 => 0,
            ServiceBackendKind::TpdeA64 => 1,
            ServiceBackendKind::BaselineO0 => 2,
            ServiceBackendKind::BaselineO1 => 3,
            ServiceBackendKind::CopyPatch => 4,
            ServiceBackendKind::TpdeX64Tier0 => 5,
            ServiceBackendKind::CopyPatchTier0 => 6,
        }
    }
}

/// One compile request for the LLVM-IR-like module service.
#[derive(Clone)]
pub struct ModuleRequest {
    /// The module to compile, shared with the worker threads.
    pub module: Arc<Module>,
    /// Which compiler/target answers the request.
    pub backend: ServiceBackendKind,
    /// Compile options (part of the cache key).
    pub opts: CompileOptions,
}

impl ModuleRequest {
    /// A request with default compile options.
    pub fn new(module: Arc<Module>, backend: ServiceBackendKind) -> ModuleRequest {
        ModuleRequest {
            module,
            backend,
            opts: CompileOptions::default(),
        }
    }
}

/// A [`CodeGen`] cached per worker, rebuilt only when a request carries
/// different options than the previous one for the same target and tier.
struct CachedCg<T: Target> {
    opts: CompileOptions,
    tier: TierConfig,
    cg: CodeGen<T>,
}

impl<T: Target> CachedCg<T> {
    fn new(make: impl Fn() -> T, tier: TierConfig) -> CachedCg<T> {
        CachedCg {
            opts: CompileOptions::default(),
            tier,
            cg: CodeGen::with_tier(make(), CompileOptions::default(), tier),
        }
    }

    fn get(&mut self, opts: &CompileOptions, make: impl Fn() -> T) -> &CodeGen<T> {
        if self.opts != *opts {
            self.cg = CodeGen::with_tier(make(), opts.clone(), self.tier);
            self.opts = opts.clone();
        }
        &self.cg
    }
}

/// Warm per-thread state of the LLVM service: the instruction compiler, the
/// adapter's flat-table scratch and the per-target code generators, all
/// kept across requests so the steady-state request loop is allocation-free.
pub struct LlvmServiceWorker {
    compiler: LlvmInstCompiler,
    scratch: AdapterScratch,
    x64: CachedCg<X64Target>,
    a64: CachedCg<A64Target>,
    x64_tier0: CachedCg<X64Target>,
    /// The previous request's module. Holding a `Weak` pins the allocation's
    /// address (the control block outlives the module), so pointer equality
    /// is a sound "same module?" test and the callee-symbol cache is cleared
    /// exactly when the module really changes.
    last_module: Weak<Module>,
}

impl LlvmServiceWorker {
    fn sync_module(&mut self, module: &Arc<Module>) {
        if !std::ptr::eq(self.last_module.as_ptr(), Arc::as_ptr(module)) {
            self.compiler.reset();
            self.last_module = Arc::downgrade(module);
        }
    }
}

/// The [`ServiceBackend`] for the LLVM-IR-like module; see
/// [`ServiceBackendKind`] for the compilers it dispatches to.
pub struct LlvmServiceBackend;

/// A persistent compile service for the LLVM-IR-like module.
pub type LlvmCompileService = CompileService<LlvmServiceBackend>;

/// Wraps a baseline result as a [`CompiledModule`] (the baselines track an
/// instruction count but no per-pass timings).
fn wrap_baseline(out: BaselineOutput, module: &Module) -> CompiledModule {
    CompiledModule {
        buf: out.buf,
        stats: CompileStats {
            funcs: module.funcs.iter().filter(|f| !f.is_decl).count(),
            insts: out.insts,
            ..CompileStats::default()
        },
        timings: PassTimings::new(),
    }
}

/// Sequential whole-module TPDE compile with warm worker state — this *is*
/// the one-shot path ([`CodeGen::compile_module_with`]), so the batched
/// service output is byte-identical by construction.
fn tpde_service_module<T: Target + SnippetEmitter>(
    cg: &CodeGen<T>,
    compiler: &mut LlvmInstCompiler,
    scratch: &mut AdapterScratch,
    module: &Module,
    session: &mut CompileSession,
) -> Result<CompiledModule> {
    let mut adapter = LlvmAdapter::with_scratch(module, std::mem::take(scratch));
    let r = cg.compile_module_with(session, &mut adapter, compiler);
    *scratch = adapter.into_scratch();
    r
}

/// Per-function TPDE shard unit with warm worker state; the same
/// [`CodeGen::compile_func_pooled`] unit the scoped parallel driver uses.
#[allow(clippy::too_many_arguments)]
fn tpde_service_func<T: Target + SnippetEmitter>(
    cg: &CodeGen<T>,
    compiler: &mut LlvmInstCompiler,
    scratch: &mut AdapterScratch,
    module: &Module,
    session: &mut CompileSession,
    buf: &mut CodeBuffer,
    f: u32,
    stats: &mut CompileStats,
    timings: &mut PassTimings,
) -> Result<bool> {
    let mut adapter = LlvmAdapter::with_scratch(module, std::mem::take(scratch));
    let r = cg.compile_func_pooled(
        session,
        &mut adapter,
        compiler,
        buf,
        FuncRef(f),
        stats,
        timings,
    );
    *scratch = adapter.into_scratch();
    r
}

/// Per-function baseline shard unit (the closure body of the scoped
/// `compile_baseline_sharded` harness, reused by the service).
fn baseline_service_func(
    f: &Function,
    buf: &mut CodeBuffer,
    stats: &mut CompileStats,
    compile_fn: impl FnOnce(&Function, &mut CodeBuffer) -> Result<()>,
) -> Result<bool> {
    if f.is_decl {
        return Ok(false);
    }
    compile_fn(f, buf)?;
    buf.finish_func_fixups()?;
    stats.funcs += 1;
    stats.insts += f.inst_count();
    Ok(true)
}

impl ServiceBackend for LlvmServiceBackend {
    type Request = ModuleRequest;
    type Worker = LlvmServiceWorker;

    fn new_worker(&self) -> LlvmServiceWorker {
        LlvmServiceWorker {
            compiler: LlvmInstCompiler::default(),
            scratch: AdapterScratch::default(),
            x64: CachedCg::new(X64Target::new, TierConfig::default()),
            a64: CachedCg::new(A64Target::new, TierConfig::default()),
            x64_tier0: CachedCg::new(X64Target::new, TierConfig::tier0()),
            last_module: Weak::new(),
        }
    }

    fn request_key(&self, req: &ModuleRequest) -> Option<u64> {
        let mut h = Fnv1a::new();
        // The backend enters the key via its pinned artifact tag, not its
        // derived discriminant hash, so keys stay comparable across builds
        // (the on-disk cache outlives any single binary).
        req.backend.artifact_tag().hash(&mut h);
        req.opts.hash(&mut h);
        req.module.content_hash().hash(&mut h);
        Some(h.finish())
    }

    /// Admission-time IR verification: every defined function must satisfy
    /// the adapter contract (see [`tpde_core::verify`]) before any worker
    /// compiles it. Runs on the submitting thread, so a fresh verifier per
    /// call keeps concurrent submitters from serializing on shared scratch;
    /// the cold rejection path may allocate.
    fn verify(&self, req: &ModuleRequest) -> Result<()> {
        let mut adapter = LlvmAdapter::new(&req.module);
        Verifier::new()
            .verify_module(&mut adapter)
            .map_err(Error::from)
    }

    fn func_count(&self, req: &ModuleRequest) -> usize {
        req.module.funcs.len()
    }

    fn prepare_session(
        &self,
        req: &ModuleRequest,
        worker: &mut LlvmServiceWorker,
        session: &mut CompileSession,
    ) {
        match req.backend {
            ServiceBackendKind::TpdeX64 => {
                worker
                    .x64
                    .get(&req.opts, X64Target::new)
                    .prepare_session(session);
            }
            ServiceBackendKind::TpdeA64 => {
                worker
                    .a64
                    .get(&req.opts, A64Target::new)
                    .prepare_session(session);
            }
            ServiceBackendKind::TpdeX64Tier0 => {
                worker
                    .x64_tier0
                    .get(&req.opts, X64Target::new)
                    .prepare_session(session);
            }
            // The baselines do not use the framework session.
            _ => {}
        }
    }

    fn predeclare(&self, req: &ModuleRequest, buf: &mut CodeBuffer) {
        match req.backend {
            ServiceBackendKind::TpdeX64
            | ServiceBackendKind::TpdeA64
            | ServiceBackendKind::TpdeX64Tier0 => {
                let _ = declare_func_symbols(&LlvmAdapter::new(&req.module), buf);
            }
            _ => declare_baseline_symbols(&req.module, buf),
        }
    }

    fn compile_func(
        &self,
        req: &ModuleRequest,
        worker: &mut LlvmServiceWorker,
        session: &mut CompileSession,
        buf: &mut CodeBuffer,
        f: u32,
        stats: &mut CompileStats,
        timings: &mut PassTimings,
    ) -> Result<bool> {
        let module = &*req.module;
        worker.sync_module(&req.module);
        match req.backend {
            ServiceBackendKind::TpdeX64 => tpde_service_func(
                worker.x64.get(&req.opts, X64Target::new),
                &mut worker.compiler,
                &mut worker.scratch,
                module,
                session,
                buf,
                f,
                stats,
                timings,
            ),
            ServiceBackendKind::TpdeA64 => tpde_service_func(
                worker.a64.get(&req.opts, A64Target::new),
                &mut worker.compiler,
                &mut worker.scratch,
                module,
                session,
                buf,
                f,
                stats,
                timings,
            ),
            ServiceBackendKind::BaselineO0 => {
                baseline_service_func(&module.funcs[f as usize], buf, stats, |func, buf| {
                    compile_function_baseline(module, func, buf, 0)
                })
            }
            ServiceBackendKind::BaselineO1 => {
                baseline_service_func(&module.funcs[f as usize], buf, stats, |func, buf| {
                    compile_function_baseline(module, func, buf, 1)
                })
            }
            ServiceBackendKind::CopyPatch => {
                baseline_service_func(&module.funcs[f as usize], buf, stats, |func, buf| {
                    compile_function_stacky(module, func, buf)
                })
            }
            ServiceBackendKind::TpdeX64Tier0 => tpde_service_func(
                worker.x64_tier0.get(&req.opts, X64Target::new),
                &mut worker.compiler,
                &mut worker.scratch,
                module,
                session,
                buf,
                f,
                stats,
                timings,
            ),
            ServiceBackendKind::CopyPatchTier0 => {
                baseline_service_func(&module.funcs[f as usize], buf, stats, |func, buf| {
                    compile_function_stacky_tiered(module, func, f, buf)
                })
            }
        }
    }

    fn compile_module(
        &self,
        req: &ModuleRequest,
        worker: &mut LlvmServiceWorker,
        session: &mut CompileSession,
    ) -> Result<CompiledModule> {
        let module = &*req.module;
        worker.sync_module(&req.module);
        match req.backend {
            ServiceBackendKind::TpdeX64 => tpde_service_module(
                worker.x64.get(&req.opts, X64Target::new),
                &mut worker.compiler,
                &mut worker.scratch,
                module,
                session,
            ),
            ServiceBackendKind::TpdeA64 => tpde_service_module(
                worker.a64.get(&req.opts, A64Target::new),
                &mut worker.compiler,
                &mut worker.scratch,
                module,
                session,
            ),
            ServiceBackendKind::BaselineO0 => {
                crate::baselines::compile_baseline(module, 0).map(|o| wrap_baseline(o, module))
            }
            ServiceBackendKind::BaselineO1 => {
                crate::baselines::compile_baseline(module, 1).map(|o| wrap_baseline(o, module))
            }
            ServiceBackendKind::CopyPatch => {
                crate::baselines::compile_copy_patch(module).map(|o| wrap_baseline(o, module))
            }
            ServiceBackendKind::TpdeX64Tier0 => tpde_service_module(
                worker.x64_tier0.get(&req.opts, X64Target::new),
                &mut worker.compiler,
                &mut worker.scratch,
                module,
                session,
            ),
            ServiceBackendKind::CopyPatchTier0 => {
                crate::baselines::compile_copy_patch_tiered(module)
                    .map(|o| wrap_baseline(o, module))
            }
        }
    }
}

/// Creates a persistent compile service for the LLVM-IR-like module. All
/// [`ServiceBackendKind`]s are served by the same worker pool; see
/// [`tpde_core::service`] for the scheduling and caching behaviour.
pub fn compile_service(cfg: ServiceConfig) -> LlvmCompileService {
    CompileService::new(LlvmServiceBackend, cfg)
}

/// Submits an x86-64 TPDE compile to a service and waits for the response;
/// the output is byte-identical to [`compile_x64`].
pub fn compile_service_x64(
    svc: &LlvmCompileService,
    module: &Arc<Module>,
    opts: &CompileOptions,
) -> ServiceResponse {
    svc.compile(Request::new(ModuleRequest {
        module: Arc::clone(module),
        backend: ServiceBackendKind::TpdeX64,
        opts: opts.clone(),
    }))
}

/// Submits an AArch64 TPDE compile to a service and waits for the response;
/// the output is byte-identical to [`compile_a64`].
pub fn compile_service_a64(
    svc: &LlvmCompileService,
    module: &Arc<Module>,
    opts: &CompileOptions,
) -> ServiceResponse {
    svc.compile(Request::new(ModuleRequest {
        module: Arc::clone(module),
        backend: ServiceBackendKind::TpdeA64,
        opts: opts.clone(),
    }))
}
